// Benchmarks named after the paper's tables and figures: each runs the
// corresponding experiment and reports its headline quantity as a custom
// metric, so `go test -bench=. -benchmem` regenerates the evaluation in
// one sweep. Prototype-path experiments (Fig6–Fig9) drive real TCP over
// shaped loopback connections and take seconds per iteration; run them
// on an otherwise idle machine.
package threegol_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"threegol/internal/capacity"
	"threegol/internal/cellular"
	"threegol/internal/diurnal"
	"threegol/internal/evalwild"
	"threegol/internal/fleet"
	"threegol/internal/hls"
	"threegol/internal/measure"
	"threegol/internal/mptcp"
	"threegol/internal/quota"
	"threegol/internal/scheduler"
	"threegol/internal/traces"
	"threegol/internal/tracesim"
)

// ----- §2 context -----

func BenchmarkContextCapacity(b *testing.B) {
	var oom float64
	for i := 0; i < b.N; i++ {
		oom = capacity.PaperDefaults().Compute().OrdersOfMagnitude()
	}
	b.ReportMetric(oom, "orders-of-magnitude")
}

func BenchmarkFig1Diurnal(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		v += diurnal.Mobile.At(float64(i%24)) + diurnal.Wired.At(float64(i%24))
	}
	_ = v
	b.ReportMetric(float64(diurnal.Mobile.PeakHour()), "mobile-peak-hour")
	b.ReportMetric(float64(diurnal.Wired.PeakHour()), "wired-peak-hour")
}

// ----- §3 measurement study -----

func BenchmarkFig3Aggregate(b *testing.B) {
	loc, _ := cellular.FindLocation(cellular.MeasurementLocations, "loc1")
	var dl10, ul10 float64
	for i := 0; i < b.N; i++ {
		pts := measure.Fig3(loc, 10, 4, int64(42+i))
		dl10, ul10 = pts[9].DownMbps, pts[9].UpMbps
	}
	b.ReportMetric(dl10, "down-Mbps@10dev")
	b.ReportMetric(ul10, "up-Mbps@10dev(plateau)")
}

func BenchmarkFig4Diurnal(b *testing.B) {
	loc, _ := cellular.FindLocation(cellular.MeasurementLocations, "loc2")
	var n int
	for i := 0; i < b.N; i++ {
		samples := measure.Campaign(loc, 5, []int{5, 3, 1}, int64(7+i))
		n = len(measure.Fig4(samples))
	}
	b.ReportMetric(float64(n), "hourly-points")
}

func BenchmarkFig5PerBS(b *testing.B) {
	loc, _ := cellular.FindLocation(cellular.MeasurementLocations, "loc4")
	var n int
	for i := 0; i < b.N; i++ {
		samples := measure.Campaign(loc, 5, []int{1}, int64(13+i))
		n = len(measure.Fig5(samples, 12))
	}
	b.ReportMetric(float64(n), "violins")
}

func BenchmarkTable2Speedup(b *testing.B) {
	var up float64
	for i := 0; i < b.N; i++ {
		rows := measure.Table2(cellular.MeasurementLocations, 4, int64(42+i))
		up = rows[0].SpeedupUp // loc1's headline ×12.9-class uplink speedup
	}
	b.ReportMetric(up, "loc1-uplink-speedup")
}

func BenchmarkTable3Clusters(b *testing.B) {
	var singleDL float64
	for i := 0; i < b.N; i++ {
		var samples []measure.Sample
		for _, p := range cellular.MeasurementLocations[:3] {
			samples = append(samples, measure.Campaign(p, 2, []int{5, 3, 1}, int64(17+i))...)
		}
		rows := measure.Table3(samples)
		singleDL = rows[0].DownMean
	}
	b.ReportMetric(singleDL, "single-dev-down-Mbps")
}

// ----- §5 prototype path (real TCP over shaped loopback) -----

func benchSetup(i int) evalwild.Setup {
	return evalwild.Setup{TimeScale: 100, Seed: int64(42 + i), Reps: 1, Variability: 0.2}
}

func BenchmarkFig6Schedulers(b *testing.B) {
	var grdAdvantage float64
	for i := 0; i < b.N; i++ {
		rows, err := evalwild.Fig6(benchSetup(i))
		if err != nil {
			b.Fatal(err)
		}
		var grd, rr time.Duration
		for _, r := range rows {
			if r.Quality == "q4" && r.Phones == 2 {
				switch r.Scheme {
				case "3GOL_GRD":
					grd = r.Mean
				case "3GOL_RR":
					rr = r.Mean
				}
			}
		}
		grdAdvantage = rr.Seconds() / grd.Seconds()
	}
	b.ReportMetric(grdAdvantage, "RR/GRD-q4-2ph")
}

func BenchmarkFig7Prebuffer(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := evalwild.Fig7(benchSetup(i), []string{"loc4"}, []float64{0.2, 1.0}, []string{"q4"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Prebuffer == 1.0 && r.Phones == 2 && r.Warm {
				gain = r.GainSec
			}
		}
	}
	b.ReportMetric(gain, "gain-s-q4-100pc-2ph")
}

func BenchmarkFig8FullDownload(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		rows, err := evalwild.Fig8(benchSetup(i), []string{"q3"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.ReductionPct > best {
				best = r.ReductionPct
			}
		}
	}
	b.ReportMetric(best, "best-reduction-pct")
}

func BenchmarkFig9Upload(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := evalwild.Fig9(benchSetup(i), 6)
		if err != nil {
			b.Fatal(err)
		}
		var adsl, two time.Duration
		for _, r := range rows {
			if r.Location == "loc4" {
				switch r.Phones {
				case 0:
					adsl = r.Mean
				case 2:
					two = r.Mean
				}
			}
		}
		speedup = adsl.Seconds() / two.Seconds()
	}
	b.ReportMetric(speedup, "loc4-2ph-upload-speedup")
}

// ----- §6 trace-driven analyses -----

func BenchmarkFig10CapCDF(b *testing.B) {
	var at01 float64
	for i := 0; i < b.N; i++ {
		users := traces.GenerateMNO(traces.MNOConfig{Users: 20000}, int64(1+i))
		at01 = tracesim.Fig10(users).At(0.1)
	}
	b.ReportMetric(at01, "P(frac<=0.1)")
}

func BenchmarkEstimator(b *testing.B) {
	users := traces.GenerateMNO(traces.MNOConfig{Users: 20000}, 1)
	series := make([][]float64, len(users))
	for i, u := range users {
		series[i] = u.FreeSeries()
	}
	b.ResetTimer()
	var res quota.EvalResult
	for i := 0; i < b.N; i++ {
		res = quota.Estimator{}.Evaluate(series)
	}
	b.ReportMetric(100*res.UtilizedFraction, "utilised-pct")
	b.ReportMetric(res.OverrunDaysPerMonth, "overrun-days-per-month")
}

func BenchmarkFig11aSpeedupCDF(b *testing.B) {
	tr := traces.GenerateDSLAM(traces.DSLAMConfig{Users: 18000}, 7)
	b.ResetTimer()
	var median float64
	for i := 0; i < b.N; i++ {
		outcomes := tracesim.Fig11a(tr, tracesim.Config{})
		median = tracesim.SpeedupCDF(outcomes).Quantile(0.5)
	}
	b.ReportMetric(median, "median-speedup")
}

func BenchmarkFig11bLoad(b *testing.B) {
	tr := traces.GenerateDSLAM(traces.DSLAMConfig{Users: 18000}, 7)
	b.ResetTimer()
	var budgeted, unlimited float64
	for i := 0; i < b.N; i++ {
		ls := tracesim.Fig11b(tr, tracesim.Config{}, 300)
		budgeted = tracesim.PeakMbps(ls.BudgetedMbps)
		unlimited = tracesim.PeakMbps(ls.UnlimitedMbps)
	}
	b.ReportMetric(budgeted, "budgeted-peak-Mbps")
	b.ReportMetric(unlimited, "unlimited-peak-Mbps")
}

func BenchmarkFig11cAdoption(b *testing.B) {
	users := traces.GenerateMNO(traces.MNOConfig{Users: 20000}, 3)
	b.ResetTimer()
	var full float64
	for i := 0; i < b.N; i++ {
		pts := tracesim.Fig11c(users, []float64{1}, 20*traces.MB)
		full = pts[0].TotalIncrease
	}
	b.ReportMetric(100*full, "full-adoption-increase-pct")
}

// BenchmarkFleetThroughput measures the sharded fleet engine's
// simulation rate (homes/sec) as the worker pool grows: 1, 4 and
// NumCPU shards, each shard on its own worker. The merged report is
// identical at every scale for a fixed (homes, shards, seed) — this
// benchmark varies shards *with* workers because it measures
// throughput, not the determinism contract (internal/fleet's golden
// test pins that).
func BenchmarkFleetThroughput(b *testing.B) {
	const homes = 100_000
	widths := []int{1, 4}
	if n := runtime.NumCPU(); n >= 16 {
		widths = append(widths, 16)
	}
	if n := runtime.NumCPU(); n > 4 && n != 16 {
		widths = append(widths, n)
	}
	for _, n := range widths {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			cfg := fleet.Config{Homes: homes, Days: 1, Shards: n, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(cfg, n); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(homes)*float64(b.N)/b.Elapsed().Seconds(), "homes/s")
		})
	}
}

func BenchmarkMPTCPBaseline(b *testing.B) {
	var coupled, uncoupled float64
	for i := 0; i < b.N; i++ {
		coupled = mptcp.Simulate(mptcp.Coupled, mptcp.ADSLPlus3G(), 20000, int64(1+i)).Aggregate
		uncoupled = mptcp.Simulate(mptcp.Uncoupled, mptcp.ADSLPlus3G(), 20000, int64(1+i)).Aggregate
	}
	b.ReportMetric(coupled, "coupled-pkts-per-rtt")
	b.ReportMetric(uncoupled, "uncoupled-pkts-per-rtt")
}

// ----- Ablations (DESIGN.md §5) -----

// sleepPath is a synthetic scheduler path with a fixed byte rate,
// suitable for isolating scheduler behaviour from HTTP mechanics.
type sleepPath struct {
	name string
	rate float64 // bytes/s
}

func (p *sleepPath) Name() string { return p.name }

func (p *sleepPath) Transfer(ctx context.Context, item scheduler.Item) (int64, error) {
	d := time.Duration(float64(item.Size) / p.rate * float64(time.Second))
	select {
	case <-time.After(d):
		return item.Size, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func ablationItems(n int) []scheduler.Item {
	items := make([]scheduler.Item, n)
	for i := range items {
		items[i] = scheduler.Item{ID: i, Name: fmt.Sprintf("i%d", i), Size: 200_000}
	}
	return items
}

func ablationPaths() []scheduler.Path {
	return []scheduler.Path{
		&sleepPath{name: "adsl", rate: 2e6},
		&sleepPath{name: "ph1", rate: 600e3},
	}
}

// BenchmarkAblationDuplication quantifies GRD's endgame duplication (the
// paper's design choice of re-assigning the oldest in-flight item). The
// workload is the canonical case where it matters: the slow path holds
// the final item while the fast path idles — without duplication the
// transaction waits for the slow replica (0.8 s here); with it the fast
// path re-fetches and wins (0.6 s).
func BenchmarkAblationDuplication(b *testing.B) {
	items := make([]scheduler.Item, 3)
	for i := range items {
		items[i] = scheduler.Item{ID: i, Name: fmt.Sprintf("i%d", i), Size: 400_000}
	}
	paths := func() []scheduler.Path {
		return []scheduler.Path{
			&sleepPath{name: "fast", rate: 2e6},
			&sleepPath{name: "slow", rate: 500e3},
		}
	}
	for _, dup := range []bool{true, false} {
		name := "with-duplication"
		if !dup {
			name = "without-duplication"
		}
		b.Run(name, func(b *testing.B) {
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				rep, err := scheduler.Run(context.Background(), scheduler.Greedy,
					items, paths(), scheduler.Options{DisableDuplication: !dup})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = rep.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "transaction-s")
		})
	}
}

// BenchmarkAblationMinAlpha sweeps MIN's smoothing parameter around the
// paper's 0.75.
func BenchmarkAblationMinAlpha(b *testing.B) {
	for _, alpha := range []float64{0.25, 0.5, 0.75, 0.95} {
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				rep, err := scheduler.Run(context.Background(), scheduler.MinTime,
					ablationItems(9), ablationPaths(), scheduler.Options{MinAlpha: alpha})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = rep.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "transaction-s")
		})
	}
}

// BenchmarkAblationPlayoutStalls compares GRD's oldest-item endgame with
// the Playout variant's head-of-line endgame on the metric that matters
// to a player: rebuffering time reconstructed from segment completion
// times (the paper's deferred §4.1.1 extension).
func BenchmarkAblationPlayoutStalls(b *testing.B) {
	mkPaths := func() []scheduler.Path {
		return []scheduler.Path{
			&sleepPath{name: "adsl", rate: 1e6},
			&sleepPath{name: "ph1", rate: 300e3},
			&sleepPath{name: "ph2", rate: 250e3},
		}
	}
	items := make([]scheduler.Item, 12)
	for i := range items {
		items[i] = scheduler.Item{ID: i, Name: fmt.Sprintf("seg%d", i), Size: 120_000}
	}
	for _, algo := range []scheduler.Algo{scheduler.Greedy, scheduler.Playout} {
		b.Run(algo.String(), func(b *testing.B) {
			var stallSec, startupSec float64
			for i := 0; i < b.N; i++ {
				rep, err := scheduler.Run(context.Background(), algo, items, mkPaths(), scheduler.Options{})
				if err != nil {
					b.Fatal(err)
				}
				// Each "segment" carries 1 s of media; player buffers 2.
				st := hls.SimulatePlayout(rep.ItemDone, 1.0, 2)
				stallSec = st.StallTime.Seconds()
				startupSec = st.Startup.Seconds()
			}
			b.ReportMetric(stallSec, "stall-s")
			b.ReportMetric(startupSec, "startup-s")
		})
	}
}
