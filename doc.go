// Package threegol is a from-scratch reproduction of "3GOL:
// Power-boosting ADSL using 3G OnLoading" (CoNEXT 2013): a system that
// accelerates a residential ADSL line by onloading part of a transfer
// onto 3G-connected phones sitting on the home Wi-Fi LAN.
//
// The repository is organised as a set of substrates under internal/
// (fluid network simulator, HSPA cellular model, real-TCP link emulation,
// HLS machinery, discovery/permit/quota control planes, synthetic trace
// generators) with the paper's contribution — the multipath transfer
// scheduler and the 3GOL client/device components — layered on top.
// Binaries under cmd/ regenerate every table and figure of the paper's
// evaluation; see DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for measured-versus-paper results.
//
// The benchmarks in bench_test.go are named after the paper's tables and
// figures; each reports the experiment's headline quantity as a custom
// benchmark metric.
package threegol
