#!/usr/bin/env sh
# check.sh — the repo's Tier-1 verification gate. Runs the full static
# and dynamic check pipeline, failing fast at the first broken stage:
#
#   1. gofmt       — tree must be canonically formatted
#   2. go vet      — stdlib static checks
#   3. go build    — everything compiles
#   4. 3golvet     — repo-specific determinism/concurrency analyzers
#      (type-aware, ratcheted against lint/baseline.json; emits
#      vet-report.json for CI artifact upload)
#   5. go test -race — full suite under the race detector
#   6. fleet smoke — 3golfleet city-scale engine run inside a time
#      budget, with its -json report validated for shape
#   7. trace smoke — 3golfleet -events flight-recorder capture piped
#      through 3goltrace -check (stream invariants)
#   8. chaos smoke — 3golfleet -chaos runs the fault-injection harness
#      under a hostile scenario and under blackout-all; the command
#      exits non-zero if any resilience invariant (exactly-once
#      delivery, duplicate-waste bound, ADSL-only completion) breaks
#   9. chaos at scale — the hostile scenario again at 100k homes: the
#      invariants must hold, and the run must fit the time budget, at a
#      population three orders of magnitude above the race-detector
#      tests (which cap at tens of homes for wall-time reasons)
#  10. permit smoke — 3golpermitload -smoke drives a few thousand
#      simulated clients through an in-process sharded permit plane
#      over real HTTP and asserts the decision invariants (no errors,
#      every client served, mixed grant/deny split); the JSON report is
#      left at bench-permit-smoke.json for CI artifact upload
#  11. permit chaos smoke — 3golpermitload -chaos spawns a real
#      3golpermitd with a WAL, SIGKILLs it mid-load, independently
#      replays the WAL, restarts the daemon and cross-checks every
#      shard's recovered state hash; the command exits non-zero on any
#      recovery-invariant violation. The lifecycle eventlog is left at
#      chaos-permit-events.jsonl for CI artifact upload
#  12. metrics docs — METRICS.md must match the live registry
#      (3golobs gen-docs -check)
#  13. package docs — every package must carry a godoc comment
#      (go list's .Doc field is empty otherwise)
#
# Usage: ./scripts/check.sh   (from anywhere; cd's to the repo root)
set -eu

cd "$(dirname "$0")/.."

echo '==> gofmt'
# Fixture files under testdata deliberately contain unidiomatic code but
# are still kept gofmt-clean; no exclusions needed.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '==> go vet ./...'
go vet ./...

echo '==> go build ./...'
go build ./...

echo '==> go run ./cmd/3golvet -baseline lint/baseline.json -json vet-report.json ./...'
# Type-aware determinism/concurrency analyzers with the one-way ratchet:
# fresh findings fail; findings frozen in lint/baseline.json are
# tolerated (and reported to stderr); fixing frozen debt never fails.
# The JSON report is left at the repo root for CI to upload.
go run ./cmd/3golvet -baseline lint/baseline.json -json vet-report.json ./...

echo '==> go test -race ./...'
# The prototype-path experiments run at gentler time scales under the
# race detector (see the race_test.go files), which lengthens wall time;
# give the slowest package headroom beyond the default 10m.
go test -race -timeout 20m ./...

echo '==> fleet smoke (3golfleet -json inside a time budget)'
# A small city-scale run must finish inside the time budget (a hang or
# quadratic regression in the engine trips the timeout) and must emit a
# report that -validate accepts (malformed JSON or out-of-range metrics
# fail the gate).
smoke=$(mktemp)
events=$(mktemp)
trap 'rm -f "$smoke" "$events"' EXIT
timeout 180 go run ./cmd/3golfleet -homes 2000 -days 1 -shards 4 -json > "$smoke"
go run ./cmd/3golfleet -validate < "$smoke"

echo '==> trace smoke (3golfleet -events | 3goltrace -check)'
# The flight recorder must capture a small run and the stream must pass
# the analyzer's structural invariants (per-shard ordering, span
# pairing) — the same stream internal/fleet pins byte-identical across
# worker counts.
timeout 180 go run ./cmd/3golfleet -homes 500 -days 1 -shards 4 -events "$events" > /dev/null
go run ./cmd/3goltrace -check "$events"

echo '==> chaos smoke (3golfleet -chaos invariants)'
# The chaos harness replays the hostile scenario (every fault class
# layered) and total 3G blackout across a small fleet; 3golfleet itself
# asserts the resilience invariants and exits non-zero on any violation.
# The captured eventlog must also pass the trace analyzer's checks.
timeout 180 go run ./cmd/3golfleet -chaos hostile -homes 256 -seed 1 -json > /dev/null
timeout 180 go run ./cmd/3golfleet -chaos blackout-all -homes 128 -seed 1 -events "$events" > /dev/null
go run ./cmd/3goltrace -check "$events"

echo '==> chaos at scale (3golfleet -chaos hostile, 100k homes)'
# The same invariants at a 100,000-home population: every transaction
# exactly-once under the full hostile fault stack, inside a time budget
# that a scheduling or merge regression would blow. Runs without the
# race detector — the scale, not the interleaving, is what this stage
# adds over the go test chaos suite.
timeout 300 go run ./cmd/3golfleet -chaos hostile -homes 100000 -shards 32 -seed 1 -json > /dev/null

echo '==> permit smoke (3golpermitload -smoke)'
# The permit-plane load harness runs a small population against an
# in-process sharded backend and asserts its own invariants, exiting
# non-zero on any violation. The report is kept for CI upload.
timeout 120 go run ./cmd/3golpermitload -smoke -json bench-permit-smoke.json

echo '==> permit chaos smoke (3golpermitload -chaos kill/recover invariants)'
# Process-level durability: kill -9 a loaded daemon, verify the WAL
# replays to exactly the pre-kill grant state (modulo TTL expiries),
# and that the client fleet rides through the outage without crashes or
# double-counted outcomes. The harness exits non-zero on any violation.
permitd=$(mktemp)
go build -o "$permitd" ./cmd/3golpermitd
timeout 120 go run ./cmd/3golpermitload -chaos -smoke -permitd "$permitd" \
    -events chaos-permit-events.jsonl > /dev/null
rm -f "$permitd"

echo '==> metrics docs (3golobs gen-docs -check)'
# METRICS.md is rendered from the live metric registry; adding, renaming
# or relabelling a metric without regenerating the reference fails here.
go run ./cmd/3golobs gen-docs -check

echo '==> package docs (every package carries a godoc comment)'
# godoc renders the first comment ahead of the package clause; a package
# without one shows up blank on pkg.go.dev and in go doc. go list's .Doc
# field holds that comment, so an empty field names the offender.
undocumented=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)
if [ -n "$undocumented" ]; then
    echo "check.sh: packages missing a package-level doc comment:" >&2
    echo "$undocumented" >&2
    exit 1
fi

echo 'check.sh: all stages passed'
