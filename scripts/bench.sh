#!/usr/bin/env sh
# bench.sh — the repo's performance trajectory snapshot. Runs the fast
# simulation-path benchmarks and writes BENCH_fleet.json at the repo
# root so successive PRs can diff engine throughput:
#
#   1. 3golfleet -json            — city-scale engine run (wall time,
#      homes/sec, evaluation aggregates)
#   2. 3golbench fig11a -json     — the speedup-CDF experiment's wall
#      time and headline metrics
#   3. BenchmarkFleetThroughput   — go test -bench engine scaling
#      (homes/s at shard widths 1, 4, NumCPU)
#   4. 3golvet -json              — analyzer wall time over the whole
#      module (vet_seconds), so pass regressions show up in the diff
#
# It also writes BENCH_chaos.json: the chaos harness run under the
# hostile scenario, tracking the fault-injection engine's wall time and
# the resilience counters (requeues, stall aborts, breaker opens) so a
# PR that regresses recovery behaviour shows up as a diff.
#
# And BENCH_permit.json: 3golpermitload drives 100k simulated clients
# against a real sharded 3golpermitd over HTTP, tracking decisions/sec,
# grant ratio and p50/p99 RPC latency so a PR that regresses the permit
# plane's hot path shows up as a diff.
#
# Only simulation-path work runs here: the prototype-path experiments
# (fig6–fig9) drive real sockets for seconds per rep and belong to
# manual runs, not the perf trajectory.
#
# Usage: ./scripts/bench.sh   (from anywhere; cd's to the repo root)
set -eu

cd "$(dirname "$0")/.."

command -v jq > /dev/null || { echo "bench.sh: jq is required to compose BENCH_fleet.json" >&2; exit 1; }

fleet=$(mktemp)
sim=$(mktemp)
bench=$(mktemp)
tput=$(mktemp)
chaos=$(mktemp)
vet=$(mktemp)
trap 'rm -f "$fleet" "$sim" "$bench" "$tput" "$chaos" "$vet"' EXIT

echo '==> 3golvet -json (analyzer wall time)'
# The analyzer's own latency is part of the perf trajectory: check.sh
# runs it on every push, so a pass that regresses from seconds to
# minutes is a real cost. elapsed_seconds comes from the tool's report.
go run ./cmd/3golvet -baseline lint/baseline.json -json "$vet" ./...

echo '==> 3golfleet -json (engine throughput + aggregates)'
go run ./cmd/3golfleet -homes 18000 -days 1 -shards 8 -json > "$fleet"
go run ./cmd/3golfleet -validate < "$fleet"

echo '==> 3golbench fig11a -json'
go run ./cmd/3golbench fig11a -json > "$sim"

echo '==> go test -bench BenchmarkFleetThroughput'
go test -run '^$' -bench '^BenchmarkFleetThroughput$' -benchtime 1x . | tee "$bench"

# Reduce the go-test bench lines to {name, homes_per_sec} records: the
# custom homes/s metric precedes its unit token.
awk '
    /^BenchmarkFleetThroughput/ {
        hs = ""
        for (i = 1; i <= NF; i++) if ($i == "homes/s") hs = $(i-1)
        if (hs != "") printf "{\"name\":\"%s\",\"homes_per_sec\":%s}\n", $1, hs
    }' "$bench" > "$tput"

jq -n \
    --slurpfile fleet "$fleet" \
    --slurpfile sim "$sim" \
    --slurpfile tput "$tput" \
    --slurpfile vet "$vet" \
    '{generated_by: "scripts/bench.sh",
      vet_seconds: $vet[0].elapsed_seconds,
      fleet_throughput: $tput,
      fleet_report: $fleet[0],
      fig11a: $sim[0]}' > BENCH_fleet.json

echo "bench.sh: wrote BENCH_fleet.json"

echo '==> 3golfleet -chaos hostile -json (fault-injection engine)'
go run ./cmd/3golfleet -chaos hostile -homes 4096 -seed 1 -json > "$chaos"

jq -n \
    --slurpfile chaos "$chaos" \
    '{generated_by: "scripts/bench.sh",
      chaos_report: $chaos[0]}' > BENCH_chaos.json

echo "bench.sh: wrote BENCH_chaos.json"

echo '==> 3golpermitload vs sharded 3golpermitd (permit plane)'
# A real daemon on a loopback port, fed the same cell population the
# harness simulates (utilisation cycles 0.0–0.9 across cell-0..255),
# running with -deny-unknown so the feed is load-bearing. The harness
# waits for the port to come up, then drives 100k clients; the final
# kill exercises the daemon's graceful drain.
permit=$(mktemp)
feed=$(mktemp)
permitd_bin=$(mktemp)
trap 'rm -f "$fleet" "$sim" "$bench" "$tput" "$chaos" "$vet" "$permit" "$feed" "$permitd_bin"' EXIT
awk 'BEGIN { for (i = 0; i < 256; i++) printf "cell-%d %.1f\n", i, (i % 10) / 10 }' > "$feed"
go build -o "$permitd_bin" ./cmd/3golpermitd
"$permitd_bin" -listen 127.0.0.1:7391 -shards 4 -deny-unknown -stdin-feed < "$feed" &
permitd_pid=$!
timeout 120 go run ./cmd/3golpermitload \
    -backend http://127.0.0.1:7391 -clients 100000 -duration 300 -json "$permit"
kill "$permitd_pid"
wait "$permitd_pid" 2> /dev/null || true

jq -n \
    --slurpfile permit "$permit" \
    '{generated_by: "scripts/bench.sh",
      permit_report: $permit[0]}' > BENCH_permit.json

echo "bench.sh: wrote BENCH_permit.json"
