#!/usr/bin/env sh
# bench.sh — the repo's performance trajectory snapshot. Runs the fast
# simulation-path benchmarks and writes BENCH_fleet.json at the repo
# root so successive PRs can diff engine throughput:
#
#   1. 3golfleet -json            — city-scale engine run (wall time,
#      homes/sec, memory envelope, evaluation aggregates)
#   2. 3golbench fig11a -json     — the speedup-CDF experiment's wall
#      time and headline metrics
#   3. BenchmarkFleetThroughput   — go test -bench -benchmem engine
#      scaling (homes/s + allocs/op at shard widths 1, 4, 16, NumCPU)
#   4. BenchmarkFleetInnerLoop    — the engine's per-home hot path over
#      a warmed scratch; must report exactly 0 allocs/op
#   5. million-home run           — 3golfleet at ≥1M homes × 1 day via
#      -scale, gated at 10 s wall; archived as bench-fleet-1m.json for
#      CI artifact upload and embedded as fleet_report_1m
#   6. 3golvet -json              — analyzer wall time over the whole
#      module (vet_seconds), so pass regressions show up in the diff
#
# The script is also the engine's perf ratchet: before overwriting
# BENCH_fleet.json it compares the fresh numbers against the committed
# ones and fails on a real regression — homes/s falling below half the
# previous figure at any width (wide tolerance: widths run for seconds,
# but machines differ), allocs/op growing past 2x + 16 (allocation
# counts are stable, so the slack only covers iteration-count rounding),
# the 16-shard/1-shard scaling ratio dropping under 12x, or the inner
# loop allocating at all. Fields absent from the old file (first run
# after a schema change) skip their comparison rather than fail.
#
# It also writes BENCH_chaos.json: the chaos harness run under the
# hostile scenario, tracking the fault-injection engine's wall time and
# the resilience counters (requeues, stall aborts, breaker opens) so a
# PR that regresses recovery behaviour shows up as a diff.
#
# And BENCH_permit.json: 3golpermitload drives 100k simulated clients
# against a real sharded 3golpermitd over HTTP — running durable
# (-wal), so the WAL append sits in the measured hot path — tracking
# decisions/sec, grant ratio and p50/p99 RPC latency so a PR that
# regresses the permit plane's hot path shows up as a diff. A second,
# chaos run SIGKILLs the daemon mid-load and records recovery_seconds,
# outage_seconds and the phase-split client error counters; recovery
# time is ratcheted against the committed figure (5x + 0.5 s slack) so
# a replay regression fails the bench.
#
# Only simulation-path work runs here: the prototype-path experiments
# (fig6–fig9) drive real sockets for seconds per rep and belong to
# manual runs, not the perf trajectory.
#
# Usage: ./scripts/bench.sh   (from anywhere; cd's to the repo root)
set -eu

cd "$(dirname "$0")/.."

command -v jq > /dev/null || { echo "bench.sh: jq is required to compose BENCH_fleet.json" >&2; exit 1; }

fleet=$(mktemp)
fleet1m=$(mktemp)
sim=$(mktemp)
bench=$(mktemp)
tput=$(mktemp)
inner=$(mktemp)
innertp=$(mktemp)
chaos=$(mktemp)
vet=$(mktemp)
fresh=$(mktemp)
trap 'rm -f "$fleet" "$fleet1m" "$sim" "$bench" "$tput" "$inner" "$innertp" "$chaos" "$vet" "$fresh"' EXIT

echo '==> 3golvet -json (analyzer wall time)'
# The analyzer's own latency is part of the perf trajectory: check.sh
# runs it on every push, so a pass that regresses from seconds to
# minutes is a real cost. elapsed_seconds comes from the tool's report.
go run ./cmd/3golvet -baseline lint/baseline.json -json "$vet" ./...

echo '==> 3golfleet -json (engine throughput + aggregates)'
go run ./cmd/3golfleet -homes 18000 -days 1 -shards 8 -json > "$fleet"
go run ./cmd/3golfleet -validate < "$fleet"

echo '==> 3golbench fig11a -json'
go run ./cmd/3golbench fig11a -json > "$sim"

echo '==> go test -bench BenchmarkFleetThroughput -benchmem'
# 2 s per width so the scratch pool warms past its cold first iteration
# (the ratchet compares steady-state throughput, not startup).
go test -run '^$' -bench '^BenchmarkFleetThroughput$' -benchtime 2s -benchmem . | tee "$bench"

# Reduce the go-test bench lines to {name, homes_per_sec, allocs_per_op}
# records: each custom or -benchmem metric value precedes its unit token.
awk '
    /^BenchmarkFleetThroughput/ {
        hs = ""; al = ""
        for (i = 1; i <= NF; i++) {
            if ($i == "homes/s") hs = $(i-1)
            if ($i == "allocs/op") al = $(i-1)
        }
        if (hs != "" && al != "")
            printf "{\"name\":\"%s\",\"homes_per_sec\":%s,\"allocs_per_op\":%s}\n", $1, hs, al
    }' "$bench" > "$tput"

echo '==> go test -bench BenchmarkFleetInnerLoop -benchmem (zero-alloc gate)'
go test -run '^$' -bench '^BenchmarkFleetInnerLoop$' -benchtime 200x -benchmem ./internal/fleet | tee "$inner"
awk '
    /^BenchmarkFleetInnerLoop/ {
        hs = ""; al = ""
        for (i = 1; i <= NF; i++) {
            if ($i == "homes/s") hs = $(i-1)
            if ($i == "allocs/op") al = $(i-1)
        }
        if (hs != "" && al != "")
            printf "{\"homes_per_sec\":%s,\"allocs_per_op\":%s}\n", hs, al
    }' "$inner" > "$innertp"
inner_allocs=$(jq '.allocs_per_op' "$innertp")
if [ "$inner_allocs" != "0" ]; then
    echo "bench.sh: FAIL — per-home inner loop allocates ($inner_allocs allocs/op, want 0)" >&2
    exit 1
fi

echo '==> 3golfleet -scale 56 (million-home run, 10 s wall budget)'
# The headline scale point: ≥1M homes × 1 day through the streaming
# merge. -scale grows homes and shards together (56 × 18000 = 1,008,000
# homes over 448 shards), so per-shard memory stays flat and the run
# exercises the same shard size as the DSLAM-scale report above.
go run ./cmd/3golfleet -scale 56 -days 1 -seed 1 -workers 16 -json > "$fleet1m"
go run ./cmd/3golfleet -validate < "$fleet1m"
wall_1m=$(jq '.wall_seconds' "$fleet1m")
if [ "$(awk -v w="$wall_1m" 'BEGIN { print (w > 10) ? 1 : 0 }')" = "1" ]; then
    echo "bench.sh: FAIL — million-home run took ${wall_1m}s, budget 10s" >&2
    exit 1
fi
cp "$fleet1m" bench-fleet-1m.json
echo "bench.sh: wrote bench-fleet-1m.json (${wall_1m}s wall)"

jq -n \
    --slurpfile fleet "$fleet" \
    --slurpfile fleet1m "$fleet1m" \
    --slurpfile sim "$sim" \
    --slurpfile tput "$tput" \
    --slurpfile inner "$innertp" \
    --slurpfile vet "$vet" \
    '{generated_by: "scripts/bench.sh",
      vet_seconds: $vet[0].elapsed_seconds,
      fleet_throughput: $tput,
      fleet_inner_loop: $inner[0],
      scaling_16x: (
        ([$tput[] | select(.name | startswith("BenchmarkFleetThroughput/shards=16-"))] | first) as $wide
        | ([$tput[] | select(.name | startswith("BenchmarkFleetThroughput/shards=1-"))] | first) as $one
        | if $wide and $one then ($wide.homes_per_sec / $one.homes_per_sec) else null end),
      fleet_report: $fleet[0],
      fleet_report_1m: $fleet1m[0],
      fig11a: $sim[0]}' > "$fresh"

# --- perf ratchet: compare against the committed BENCH_fleet.json ---
ratio=$(jq '.scaling_16x // empty' "$fresh")
if [ -n "$ratio" ] && [ "$(awk -v r="$ratio" 'BEGIN { print (r < 12) ? 1 : 0 }')" = "1" ]; then
    echo "bench.sh: FAIL — 16-shard scaling is ${ratio}x single-shard throughput, want >= 12x" >&2
    exit 1
fi
if [ -f BENCH_fleet.json ]; then
    jq -n --slurpfile old BENCH_fleet.json --slurpfile new "$fresh" '
        [ $new[0].fleet_throughput[] as $n
          | ($old[0].fleet_throughput // [])[]
          | select(.name == $n.name)
          | {name,
             hs_regressed: (($n.homes_per_sec < .homes_per_sec * 0.5)),
             allocs_regressed: ((.allocs_per_op != null)
                                and ($n.allocs_per_op > .allocs_per_op * 2 + 16)),
             old_hs: .homes_per_sec, new_hs: $n.homes_per_sec,
             old_allocs: .allocs_per_op, new_allocs: $n.allocs_per_op}
          | select(.hs_regressed or .allocs_regressed) ]
        | if length > 0 then (. | tostring | halt_error(1)) else empty end' \
    || { echo "bench.sh: FAIL — fleet throughput or allocs/op regressed vs committed BENCH_fleet.json (see record above)" >&2; exit 1; }
fi
mv "$fresh" BENCH_fleet.json
fresh=$(mktemp) # the EXIT trap still removes a fresh temp

echo "bench.sh: wrote BENCH_fleet.json"

echo '==> 3golfleet -chaos hostile -json (fault-injection engine)'
go run ./cmd/3golfleet -chaos hostile -homes 4096 -seed 1 -json > "$chaos"

jq -n \
    --slurpfile chaos "$chaos" \
    '{generated_by: "scripts/bench.sh",
      chaos_report: $chaos[0]}' > BENCH_chaos.json

echo "bench.sh: wrote BENCH_chaos.json"

echo '==> 3golpermitload vs sharded 3golpermitd (permit plane)'
# A real daemon on a loopback port, fed the same cell population the
# harness simulates (utilisation cycles 0.0–0.9 across cell-0..255),
# running with -deny-unknown so the feed is load-bearing. The harness
# waits for the port to come up, then drives 100k clients; the final
# kill exercises the daemon's graceful drain.
# Fail fast if the port is occupied: otherwise the fresh daemon dies on
# bind, the harness silently measures whatever stale process answers,
# and the snapshot lies.
if ss -tln 2> /dev/null | grep -q ':7391 '; then
    echo "bench.sh: port 7391 already in use — kill the stale listener first (ss -tlnp | grep 7391)" >&2
    exit 1
fi
permit=$(mktemp)
permitchaos=$(mktemp)
feed=$(mktemp)
permitd_bin=$(mktemp)
wal_dir=$(mktemp -d)
trap 'rm -f "$fleet" "$sim" "$bench" "$tput" "$chaos" "$vet" "$permit" "$permitchaos" "$feed" "$permitd_bin"; rm -rf "$wal_dir"' EXIT
awk 'BEGIN { for (i = 0; i < 256; i++) printf "cell-%d %.1f\n", i, (i % 10) / 10 }' > "$feed"
go build -o "$permitd_bin" ./cmd/3golpermitd
"$permitd_bin" -listen 127.0.0.1:7391 -shards 4 -deny-unknown -stdin-feed -wal "$wal_dir" < "$feed" &
permitd_pid=$!
timeout 120 go run ./cmd/3golpermitload \
    -backend http://127.0.0.1:7391 -clients 100000 -duration 300 -json "$permit"
kill "$permitd_pid"
wait "$permitd_pid" 2> /dev/null || true

echo '==> 3golpermitload -chaos (kill -9 / recovery trajectory)'
# A real daemon SIGKILLed mid-load: the harness independently replays
# the WAL, restarts the daemon on the same port, and cross-checks every
# shard's recovered state hash, exiting non-zero on any divergence.
# The lifecycle eventlog lands at chaos-permit-events.jsonl for CI.
timeout 120 go run ./cmd/3golpermitload -chaos -permitd "$permitd_bin" \
    -clients 20000 -cells 256 -duration 300 -timescale 30 \
    -events chaos-permit-events.jsonl -json "$permitchaos"

# --- recovery ratchet: replay time must not blow up across PRs ---
new_rec=$(jq '.chaos.recovery_seconds' "$permitchaos")
if [ -f BENCH_permit.json ]; then
    old_rec=$(jq '.chaos_report.chaos.recovery_seconds // empty' BENCH_permit.json)
    if [ -n "$old_rec" ] && [ "$(awk -v n="$new_rec" -v o="$old_rec" 'BEGIN { print (n > o * 5 + 0.5) ? 1 : 0 }')" = "1" ]; then
        echo "bench.sh: FAIL — WAL recovery took ${new_rec}s, committed figure ${old_rec}s (ratchet: 5x + 0.5s)" >&2
        exit 1
    fi
fi

jq -n \
    --slurpfile permit "$permit" \
    --slurpfile pchaos "$permitchaos" \
    '{generated_by: "scripts/bench.sh",
      permit_report: $permit[0],
      chaos_report: $pchaos[0]}' > BENCH_permit.json

echo "bench.sh: wrote BENCH_permit.json (chaos recovery ${new_rec}s)"
