module threegol

go 1.22
