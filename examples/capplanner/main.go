// Cap planner: the multi-provider machinery of §6. Given a user's past
// monthly usage, the estimator computes the guarded monthly/daily 3GOL
// allowance 3GOLa(t) = F̄u(t) − α·σ̄u(t); the on-device tracker then
// meters onloaded bytes against it and withdraws the device from the
// admissible set when the budget is gone.
//
//	go run ./examples/capplanner
package main

import (
	"fmt"

	"threegol/internal/quota"
	"threegol/internal/traces"
)

func main() {
	// A user on a 1 GB plan who used these amounts (MB) over the last
	// six months.
	cap := 1024.0
	usedMB := []float64{180, 240, 150, 300, 210, 260}
	free := make([]float64, len(usedMB))
	for i, u := range usedMB {
		free[i] = (cap - u) * traces.MB
	}

	est := quota.Estimator{} // paper's τ=5, α=4
	monthly := est.MonthlyAllowance(free) / traces.MB
	daily := est.DailyAllowance(free) / traces.MB
	fmt.Printf("history (MB used): %v on a %.0f MB plan\n", usedMB, cap)
	fmt.Printf("3GOL allowance: %.0f MB this month (%.1f MB/day)\n", monthly, daily)

	// The device-side tracker gates advertisement on A(t) > 0.
	tr := quota.NewTracker(int64(daily * traces.MB))
	fmt.Printf("\nsimulating a day of onloading (%.1f MB budget):\n", daily)
	for _, transfer := range []int64{5 << 20, 8 << 20, 10 << 20} {
		if !tr.ShouldAdvertise() {
			fmt.Printf("  %2d MB transfer: device has withdrawn from Φ\n", transfer>>20)
			continue
		}
		tr.Use(transfer)
		fmt.Printf("  %2d MB onloaded, %5.1f MB remaining, advertising=%v\n",
			transfer>>20, float64(tr.Available())/traces.MB, tr.ShouldAdvertise())
	}

	// Population view: back-test the estimator on a synthetic MNO
	// population at several guard levels.
	users := traces.GenerateMNO(traces.MNOConfig{Users: 10000}, 42)
	series := make([][]float64, len(users))
	for i, u := range users {
		series[i] = u.FreeSeries()
	}
	fmt.Println("\nestimator back-test over 10k subscribers:")
	for _, alpha := range []float64{1, 2, 4, 6} {
		res := quota.Estimator{Alpha: alpha}.Evaluate(series)
		fmt.Printf("  α=%.0f: %4.1f%% of free capacity usable, %.2f overrun days/month\n",
			alpha, 100*res.UtilizedFraction, res.OverrunDaysPerMonth)
	}
	fmt.Println("the paper operates at α=4: ≈65% utilisation, <1 overrun day")
}
