// VoD powerboost: the paper's headline application. An HLS player is
// pointed at the 3GOL client proxy; the proxy intercepts the media
// playlist, prefetches segments over the ADSL line and two 3G phones in
// parallel, and the player's startup latency ("pre-buffering time")
// drops — the ADSL PowerBoost the paper builds out of cellular capacity.
//
//	go run ./examples/vod
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"threegol/internal/core"
	"threegol/internal/hls"
	"threegol/internal/scheduler"
)

func main() {
	// The paper's test asset: 200 s bipbop at four qualities.
	origin := httptest.NewServer(hls.NewOrigin(hls.BipBop()))
	defer origin.Close()

	// A slow residential line: 3 Mbps down — the DSLAM trace population.
	home, err := core.NewHome(core.HomeConfig{
		DSLDown:   3e6,
		DSLUp:     0.4e6,
		TimeScale: 40,
		Seed:      7,
		Phones: []core.PhoneConfig{
			{Name: "phone1", Down: 2.2e6, Up: 1.4e6, Variability: 0.2},
			{Name: "phone2", Down: 1.9e6, Up: 1.2e6, Variability: 0.2},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer home.Close()
	phones := home.AdmissibleDevices(2, 3*time.Second)

	fmt.Println("playing 200s video at q3 (484 kbps), 20% pre-buffer")
	for _, quality := range []string{"q3", "q4"} {
		base, err := home.BaselineVoD(context.Background(), origin.URL, "/bipbop/master.m3u8", 0.2, quality)
		if err != nil {
			log.Fatal(err)
		}
		// The paper's "H" mode: warm the channel right before the boost.
		for _, ph := range phones {
			ph.WarmUp()
		}
		boost, err := home.BoostVoD(context.Background(), origin.URL, "/bipbop/master.m3u8", core.VoDOptions{
			Algo:          scheduler.Greedy,
			Phones:        phones,
			PrebufferFrac: 0.2,
			Quality:       quality,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: startup %5.1fs → %5.1fs (gain %.1fs), full download %5.1fs → %5.1fs (×%.2f)\n",
			quality,
			base.Prebuffer.Seconds(), boost.Prebuffer.Seconds(),
			base.Prebuffer.Seconds()-boost.Prebuffer.Seconds(),
			base.Total.Seconds(), boost.Total.Seconds(),
			base.Total.Seconds()/boost.Total.Seconds())
		if rep := boost.SchedulerReport; rep != nil {
			fmt.Printf("     segment split:")
			for name, st := range rep.PerPath {
				fmt.Printf(" %s=%d", name, st.Items)
			}
			if rep.WastedBytes > 0 {
				fmt.Printf("  (endgame duplication wasted %d bytes ≤ (N−1)·Sm)", rep.WastedBytes)
			}
			fmt.Println()
		}
	}
}
