// Quickstart: build an emulated home (a 6 Mbps ADSL line plus two 3G
// phones on the Wi-Fi LAN), download a batch of files with and without
// 3GOL, and print the speedup. Everything runs over real loopback TCP;
// only the links are emulated, accelerated 20× (reported times are
// de-scaled back to network time).
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"threegol/internal/core"
	"threegol/internal/scheduler"
	"threegol/internal/transfer"
)

func main() {
	// An origin server with ten 1 MB files.
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(bytes.Repeat([]byte("3GOL"), 256*1024))
	}))
	defer origin.Close()

	// The home: ADSL 6/0.6 Mbps, two phones with ≈2 Mbps HSPA downlinks.
	home, err := core.NewHome(core.HomeConfig{
		DSLDown:   6e6,
		DSLUp:     0.6e6,
		TimeScale: 20,
		Seed:      1,
		Phones: []core.PhoneConfig{
			{Name: "kitchen-phone", Down: 2.2e6, Up: 1.4e6, Warm: true},
			{Name: "hall-phone", Down: 1.8e6, Up: 1.1e6, Warm: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer home.Close()

	// The client discovers the admissible set Φ over the LAN.
	phones := home.AdmissibleDevices(2, 3*time.Second)
	fmt.Printf("discovered %d devices:", len(phones))
	for _, ph := range phones {
		fmt.Printf(" %s", ph.Name)
	}
	fmt.Println()

	items := make([]scheduler.Item, 10)
	for i := range items {
		items[i] = scheduler.Item{
			ID:   i,
			Name: fmt.Sprintf("%s/file%d", origin.URL, i),
			Size: 1 << 20,
		}
	}

	// Baseline: everything over the ADSL line.
	baseline := run(items, []scheduler.Path{
		&transfer.DownloadPath{PathName: "adsl", Client: home.ADSLClient()},
	})

	// 3GOL: the ADSL line plus both phones, greedy scheduler.
	paths := []scheduler.Path{
		&transfer.DownloadPath{PathName: "adsl", Client: home.ADSLClient()},
	}
	for _, ph := range phones {
		paths = append(paths, &transfer.DownloadPath{
			PathName: ph.Name, Client: home.PhoneClient(ph),
		})
	}
	boosted := run(items, paths)

	fmt.Printf("ADSL alone: %6.1fs network time\n", home.ScaleDuration(baseline).Seconds())
	fmt.Printf("with 3GOL:  %6.1fs network time (×%.2f speedup)\n",
		home.ScaleDuration(boosted).Seconds(),
		baseline.Seconds()/boosted.Seconds())
}

func run(items []scheduler.Item, paths []scheduler.Path) time.Duration {
	rep, err := scheduler.Run(context.Background(), scheduler.Greedy, items, paths, scheduler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for name, st := range rep.PerPath {
		fmt.Printf("  %-14s %2d files, %5.1f MB\n", name, st.Items, float64(st.Bytes)/(1<<20))
	}
	return rep.Elapsed
}
