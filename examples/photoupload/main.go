// Photo upload boost: the paper's uplink application. A 30-photo set
// (2.5 MB mean, the paper's iPhone corpus) is uploaded as multipart
// POSTs. ADSL uplinks are tiny (here 0.5 Mbps), so onloading onto two
// phones' HSPA uplinks yields the paper's largest speedups (×2–×6).
//
//	go run ./examples/photoupload
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"threegol/internal/core"
	"threegol/internal/scheduler"
	"threegol/internal/upload"
)

func main() {
	// The photo-sharing service endpoint: a multipart upload server that
	// deduplicates replayed items (the greedy endgame may deliver an
	// item twice).
	service := &upload.Server{}
	sink := httptest.NewServer(service)
	defer sink.Close()

	home, err := core.NewHome(core.HomeConfig{
		DSLDown:   6e6,
		DSLUp:     0.5e6, // the ADSL asymmetry that motivates uplink onloading
		TimeScale: 60,
		Seed:      11,
		Phones: []core.PhoneConfig{
			{Name: "phone1", Down: 2.0e6, Up: 1.4e6, Warm: true},
			{Name: "phone2", Down: 1.8e6, Up: 1.2e6, Warm: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer home.Close()
	phones := home.AdmissibleDevices(2, 3*time.Second)

	photos := core.GeneratePhotos(30, 3)
	fmt.Printf("uploading %d photos (%.1f MB total) over a 0.5 Mbps uplink\n",
		len(photos), float64(core.TotalBytes(photos))/(1<<20))

	base, err := home.BaselineUpload(context.Background(), photos, sink.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ADSL alone: %6.1fs network time\n", base.Elapsed.Seconds())

	for _, n := range []int{1, 2} {
		boost, err := home.UploadPhotos(context.Background(), photos, core.UploadOptions{
			Algo:      scheduler.Greedy,
			Phones:    phones[:n],
			TargetURL: sink.URL,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d phone(s):  %6.1fs network time (×%.2f speedup)\n",
			n, boost.Elapsed.Seconds(), base.Elapsed.Seconds()/boost.Elapsed.Seconds())
	}
	st := service.Stats()
	fmt.Printf("service stored %d photos over %d requests (%d duplicate replays)\n",
		st.Files, st.Requests, st.Duplicates)
}
