// Command 3gold is the 3GOL device daemon — the component that runs on a
// 3G-connected phone (§4.1). It serves an HTTP proxy that pipes requests
// from the home LAN out through the cellular interface, advertises itself
// to the client's discovery endpoint while it is allowed to onload, and
// enforces either a permit (network-integrated mode, -backend) or a daily
// quota (multi-provider mode, -quota-mb).
//
// Example (multi-provider, 20 MB/day):
//
//	3gold -name kitchen-phone -listen 127.0.0.1:8081 \
//	      -discovery 127.0.0.1:5353 -quota-mb 20
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"threegol/internal/discovery"
	"threegol/internal/obs"
	"threegol/internal/obs/eventlog"
	"threegol/internal/permitplane"
	"threegol/internal/proxy"
	"threegol/internal/quota"
)

// eventRingSize bounds the daemon's in-memory flight recorder; the
// /debug/events endpoint serves the most recent events.
const eventRingSize = 4096

func main() {
	var (
		name      = flag.String("name", hostnameDefault(), "device name advertised on the LAN")
		listen    = flag.String("listen", "127.0.0.1:0", "proxy listen address")
		disco     = flag.String("discovery", "", "client discovery UDP endpoint (host:port); empty disables advertising")
		quotaMB   = flag.Int64("quota-mb", 0, "daily 3GOL allowance in MB (multi-provider mode); 0 = unlimited")
		backend   = flag.String("backend", "", "permit backend base URL (network-integrated mode)")
		cell      = flag.String("cell", "", "serving cell id reported to the permit backend")
		failOpen  = flag.Bool("permit-fail-open", false, "keep honouring the last permit for -permit-grace when the backend is unreachable (default: fail closed, stop onloading)")
		grace     = flag.Duration("permit-grace", permitplane.DefaultGrace, "how long past its expiry a stale permit is honoured while fail-open and degraded")
		iface3g   = flag.String("bind-3g", "", "local address of the cellular interface to dial from (optional)")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the proxy's debug mux")
		verbosity = flag.Bool("v", false, "verbose logging")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg, nil)
	// Seed per process so span IDs from two daemons never collide when
	// their logs are stitched together.
	events := eventlog.NewRing(0, int64(os.Getpid()), eventlog.SinceStart(nil), eventRingSize)
	srv := &proxy.Server{Dial: dialer(*iface3g), Metrics: proxy.NewMetrics(reg), Events: events}
	if *verbosity {
		srv.Logf = log.Printf
	}
	debugMux := http.NewServeMux()
	debugMux.Handle("/debug/metrics", obs.Handler(reg))
	debugMux.Handle("/debug/spans", obs.SpansHandler(tracer))
	debugMux.Handle("/debug/events", eventlog.Handler(events))
	if *pprofOn {
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv.Debug = debugMux

	var tracker *quota.Tracker
	if *quotaMB > 0 {
		tracker = quota.NewTracker(*quotaMB << 20)
		srv.OnBytes = tracker.Use
	}
	// Network-integrated mode: the device-side permit cache refreshes
	// through the batch RPC (degrading to GET /permit against old
	// backends) at a TTL-jittered point before expiry, so a whole fleet
	// granted together never stampedes the backend together. The jitter
	// seed is per-process; the cache also mixes in the device name.
	// When the backend becomes unreachable the cache trips a circuit
	// breaker and goes degraded: fail-closed by default (no permit, no
	// onloading — traffic falls back to ADSL), or with -permit-fail-open
	// it honours the last granted permit for up to -permit-grace past
	// its expiry while probing for the backend's return.
	var permits *permitplane.Cache
	if *backend != "" {
		pm := permitplane.NewMetrics(reg)
		permits = &permitplane.Cache{
			Fetch:    (&permitplane.BatchClient{BackendURL: *backend, Metrics: pm}).Fetch,
			Device:   *name,
			Cell:     *cell,
			Seed:     int64(os.Getpid()),
			Metrics:  pm,
			Events:   events,
			FailOpen: *failOpen,
			Grace:    *grace,
		}
	}
	srv.Admit = func(ctx context.Context) bool {
		defer tracer.Start("admit").End()
		if permits != nil && !permits.Allowed(ctx) {
			return false
		}
		if tracker != nil && !tracker.ShouldAdvertise() {
			return false
		}
		return true
	}

	addr, shutdown, err := srv.ListenAndServe(context.Background(), *listen)
	if err != nil {
		log.Fatalf("3gold: starting proxy: %v", err)
	}
	defer shutdown()
	log.Printf("3gold: %s proxying on %s (metrics at http://%s/debug/metrics)", *name, addr, addr)

	if *disco != "" {
		beacon := &discovery.Beacon{
			Target: *disco,
			Announce: func() (discovery.Announcement, bool) {
				if !srv.Admit(context.Background()) {
					return discovery.Announcement{}, false
				}
				ann := discovery.Announcement{Name: *name, ProxyAddr: addr, Cell: *cell}
				if tracker != nil {
					ann.AllowanceBytes = tracker.Available()
				}
				return ann, true
			},
		}
		if err := beacon.Start(); err != nil {
			log.Fatalf("3gold: starting beacon: %v", err)
		}
		defer beacon.Stop()
		log.Printf("3gold: advertising to %s", *disco)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("3gold: %d bytes onloaded this session", srv.BytesTotal())
}

// dialer binds outgoing connections to the cellular interface address
// when one is given — the daemon's equivalent of routing via rmnet0.
func dialer(bind string) proxy.Dialer {
	d := &net.Dialer{}
	if bind != "" {
		d.LocalAddr = &net.TCPAddr{IP: net.ParseIP(bind)}
	}
	return d
}

func hostnameDefault() string {
	if h, err := os.Hostname(); err == nil {
		return fmt.Sprintf("3gol-%s", h)
	}
	return "3gol-device"
}
