// Command tracegen emits the synthetic datasets of Table 1 as CSV so the
// trace-driven analyses can be inspected or re-used outside Go:
//
//	tracegen dslam -users 18000 > dslam.csv   # userid,time_s,size_bytes
//	tracegen mno   -users 20000 > mno.csv     # userid,cap_bytes,used_frac,month0,month1,...
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"threegol/internal/traces"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracegen <dslam|mno> [flags]")
		os.Exit(2)
	}
	fs := flag.NewFlagSet(os.Args[1], flag.ExitOnError)
	users := fs.Int("users", 18000, "population size")
	seed := fs.Int64("seed", 42, "random seed")
	fs.Parse(os.Args[2:])

	w := csv.NewWriter(os.Stdout)
	defer func() {
		w.Flush()
		if err := w.Error(); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: writing output: %v\n", err)
			os.Exit(1)
		}
	}()

	switch os.Args[1] {
	case "dslam":
		tr := traces.GenerateDSLAM(traces.DSLAMConfig{Users: *users}, *seed)
		_ = w.Write([]string{"userid", "time_s", "size_bytes"}) // sticky; checked via w.Error at exit
		for _, s := range tr.Sessions {
			_ = w.Write([]string{
				strconv.Itoa(s.UserID),
				strconv.FormatFloat(s.Time, 'f', 1, 64),
				strconv.FormatFloat(s.SizeBytes, 'f', 0, 64),
			})
		}
	case "mno":
		population := traces.GenerateMNO(traces.MNOConfig{Users: *users}, *seed)
		header := []string{"userid", "cap_bytes", "used_frac"}
		if len(population) > 0 {
			for m := range population[0].MonthlyUsage {
				header = append(header, fmt.Sprintf("month%d", m))
			}
		}
		_ = w.Write(header) // sticky; checked via w.Error at exit
		for _, u := range population {
			row := []string{
				strconv.Itoa(u.ID),
				strconv.FormatFloat(u.CapBytes, 'f', 0, 64),
				strconv.FormatFloat(u.UsedFrac, 'f', 4, 64),
			}
			for _, m := range u.MonthlyUsage {
				row = append(row, strconv.FormatFloat(m, 'f', 0, 64))
			}
			_ = w.Write(row)
		}
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown dataset %q\n", os.Args[1])
		os.Exit(2)
	}
}
