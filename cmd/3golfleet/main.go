// Command 3golfleet runs the sharded fleet-simulation engine at city
// scale and reports the paper's §6 evaluation aggregates — the speedup
// CDF anchors, backhaul crossings and traffic increases — together with
// engine throughput (wall time, homes/sec).
//
// The run is deterministic in (-homes, -days, -shards, -seed): the
// -workers flag only sets concurrency and can never change results.
// -scale multiplies -homes and -shards together — the population scale
// axis from one DSLAM (-scale 1) to a million-home city (-scale 56) —
// and the -json report carries the memory envelope (peak RSS, heap
// totals) next to wall time so both regress visibly in CI.
//
//	3golfleet -homes 18000 -days 1 -shards 8 -workers 8 -json
//	3golfleet -scale 56 -workers 16 -json        # ≈1M homes, 448 shards
//
// With -validate it instead reads a -json report from stdin and exits
// non-zero if it is malformed — the CI smoke gate. With -events FILE the
// run also records the deterministic flight recorder and writes the
// merged event log as JSON Lines for cmd/3goltrace.
//
// With -chaos SCENARIO the command runs the chaos harness instead: every
// home executes one virtual-time transaction under the named fault
// scenario (see internal/fault) and the merged report asserts the
// resilience invariants — exactly-once delivery, the (N−1)·Sm
// duplicate-waste bound, and 100% completion over ADSL when every phone
// is dead. The exit status is non-zero if any invariant broke, so the
// command doubles as the CI chaos gate:
//
//	3golfleet -chaos hostile -homes 64 -seed 1 -json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"threegol/internal/fault"
	"threegol/internal/fleet"
	"threegol/internal/obs/eventlog"
)

// fleetReport is the -json document: the engine's evaluation report plus
// the run's performance envelope.
type fleetReport struct {
	Experiment  string    `json:"experiment"`
	Shards      int       `json:"shards"`
	Workers     int       `json:"workers"`
	Seed        int64     `json:"seed"`
	WallSecs    float64   `json:"wall_seconds"`
	HomesPerSec float64   `json:"homes_per_sec"`
	Mem         memReport `json:"mem"`
	fleet.Report
	// Metrics is the merged obs registry dump (-metrics); unlike the
	// wall-time fields it is bit-identical across worker counts.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

func main() {
	var (
		homes    = flag.Int("homes", 18000, "households to simulate")
		days     = flag.Int("days", 1, "days of demand per household")
		shards   = flag.Int("shards", 8, "logical shards (part of the population definition)")
		scale    = flag.Int("scale", 1, "multiply -homes and -shards by this factor (one DSLAM at -scale 1, a city at -scale 56 ≈ 1M homes)")
		workers  = flag.Int("workers", runtime.NumCPU(), "concurrent shard simulations (never affects results)")
		seed     = flag.Int64("seed", 1, "seed deriving every shard's RNG stream")
		asJSON   = flag.Bool("json", false, "emit the machine-readable report")
		metrics  = flag.Bool("metrics", false, "run with obs instrumentation and dump the merged registry")
		events   = flag.String("events", "", "run with the flight recorder and write the merged event log (JSONL) to this file; \"-\" = stdout")
		validate = flag.Bool("validate", false, "validate a -json report read from stdin and exit")
		chaos    = flag.String("chaos", "", "run the chaos harness under this fault scenario instead of the fleet simulation (\"list\" prints the catalogue)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memprof  = flag.String("memprofile", "", "write an allocation profile after the run to this file (inspect with go tool pprof)")
	)
	flag.Parse()

	if *scale < 1 {
		fmt.Fprintln(os.Stderr, "3golfleet: -scale must be ≥ 1")
		os.Exit(2)
	}
	// -scale grows population and partition together so per-shard work —
	// and with it the memory envelope per worker — stays constant along
	// the scale axis. (Changing shards changes the RNG streams, so runs
	// at different scales are different populations, not refinements.)
	*homes *= *scale
	*shards *= *scale

	if *validate {
		if err := validateReport(os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, "3golfleet: invalid report:", err)
			os.Exit(1)
		}
		fmt.Println("report ok")
		return
	}

	stopProf := startProfiles(*cpuprof, *memprof)

	if *chaos != "" {
		runChaos(*chaos, *homes, *shards, *seed, *workers, *asJSON, *events, stopProf)
		return
	}

	cfg := fleet.Config{Homes: *homes, Days: *days, Shards: *shards, Seed: *seed,
		Metrics: *metrics, Events: *events != ""}
	start := time.Now() //3golvet:allow wallclock — measuring real engine throughput
	res, err := fleet.Run(cfg, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3golfleet:", err)
		os.Exit(1)
	}
	wall := time.Since(start) //3golvet:allow wallclock — measuring real engine throughput
	stopProf()

	if *events != "" {
		if err := writeEventLog(res.EventLog(), *events); err != nil {
			fmt.Fprintln(os.Stderr, "3golfleet: writing events:", err)
			os.Exit(1)
		}
	}

	rep := fleetReport{
		Experiment:  "fleet",
		Shards:      *shards,
		Workers:     *workers,
		Seed:        *seed,
		WallSecs:    wall.Seconds(),
		HomesPerSec: float64(*homes) / wall.Seconds(),
		Mem:         readMem(),
		Report:      res.Report(),
	}
	if r := res.MetricsRegistry(); r != nil {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			fmt.Fprintln(os.Stderr, "3golfleet: dumping metrics:", err)
			os.Exit(1)
		}
		rep.Metrics = json.RawMessage(buf.Bytes())
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "3golfleet:", err)
			os.Exit(1)
		}
		return
	}
	printHuman(rep)
	if rep.Metrics != nil {
		fmt.Println("metrics:")
		_, _ = os.Stdout.Write(rep.Metrics) // stdout write failure is fatal anyway
		fmt.Println()
	}
}

// memReport is the run's memory envelope, reported alongside wall time
// so a throughput regression and a footprint regression are caught by
// the same artifact (scripts/bench.sh archives these documents).
type memReport struct {
	// PeakRSSBytes is the process high-water resident set (VmHWM); 0 on
	// platforms without /proc.
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
	// TotalAllocBytes and Mallocs are runtime.MemStats cumulative heap
	// counters: bytes ever allocated and the number of heap objects. The
	// streaming merge keeps both near-flat along the -scale axis.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	Mallocs         uint64 `json:"mallocs"`
	// HeapSysBytes is the heap memory held from the OS at report time.
	HeapSysBytes uint64 `json:"heap_sys_bytes"`
}

// readMem snapshots the process memory envelope after a run.
func readMem() memReport {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memReport{
		PeakRSSBytes:    readPeakRSS(),
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		HeapSysBytes:    ms.HeapSys,
	}
}

// readPeakRSS reads the process's peak resident set from
// /proc/self/status (VmHWM, reported in kB), falling back to the current
// resident set (VmRSS) on kernels that omit the high-water mark. Returns
// 0 when neither is available (non-Linux), so callers treat the field as
// best-effort.
func readPeakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	var rss int64
	for _, line := range strings.Split(string(data), "\n") {
		hwm := strings.HasPrefix(line, "VmHWM:")
		if !hwm && !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		if hwm {
			return kb * 1024 // the true high-water mark wins outright
		}
		rss = kb * 1024
	}
	return rss
}

// chaosReport is the -chaos -json document.
type chaosReport struct {
	Experiment string    `json:"experiment"`
	Shards     int       `json:"shards"`
	Workers    int       `json:"workers"`
	Seed       int64     `json:"seed"`
	WallSecs   float64   `json:"wall_seconds"`
	Mem        memReport `json:"mem"`
	Healthy    bool      `json:"healthy"`
	fleet.ChaosReport
}

// startProfiles turns on the requested pprof captures and returns the
// function that finishes them: it stops the CPU profile and writes the
// allocation profile (after a GC, so the live-heap numbers are exact).
// Call it exactly once, right after the timed run — both paths do it
// before composing their report so the profiles cover only engine work.
func startProfiles(cpuprof, memprof string) func() {
	if cpuprof != "" {
		f, err := os.Create(cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "3golfleet: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "3golfleet: cpuprofile:", err)
			os.Exit(1)
		}
	}
	return func() {
		if cpuprof != "" {
			pprof.StopCPUProfile()
		}
		if memprof == "" {
			return
		}
		f, err := os.Create(memprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "3golfleet: memprofile:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "3golfleet: memprofile:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "3golfleet: memprofile:", err)
			os.Exit(1)
		}
	}
}

// runChaos executes the chaos harness and exits non-zero when any
// resilience invariant broke — the CI chaos gate.
func runChaos(scenario string, homes, shards int, seed int64, workers int, asJSON bool, events string, stopProf func()) {
	if scenario == "list" {
		for _, s := range fault.Scenarios() {
			fmt.Println(s)
		}
		return
	}
	sc, err := fault.ParseScenario(scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3golfleet:", err)
		fmt.Fprintln(os.Stderr, "3golfleet: known scenarios:", fault.Scenarios())
		os.Exit(2)
	}
	cfg := fleet.ChaosConfig{Homes: homes, Shards: shards, Seed: seed,
		Scenario: sc, Events: events != ""}
	start := time.Now() //3golvet:allow wallclock — measuring real engine throughput
	res, err := fleet.RunChaos(cfg, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3golfleet:", err)
		os.Exit(1)
	}
	wall := time.Since(start) //3golvet:allow wallclock — measuring real engine throughput
	stopProf()
	if events != "" {
		if err := writeEventLog(res.EventLog(), events); err != nil {
			fmt.Fprintln(os.Stderr, "3golfleet: writing events:", err)
			os.Exit(1)
		}
	}
	rep := chaosReport{
		Experiment:  "chaos",
		Shards:      shards,
		Workers:     workers,
		Seed:        seed,
		WallSecs:    wall.Seconds(),
		Mem:         readMem(),
		ChaosReport: res.Report(sc),
	}
	rep.Healthy = rep.ChaosReport.Healthy()
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "3golfleet:", err)
			os.Exit(1)
		}
	} else {
		printChaos(rep)
	}
	if !rep.Healthy {
		fmt.Fprintln(os.Stderr, "3golfleet: chaos invariants violated")
		os.Exit(1)
	}
}

func printChaos(rep chaosReport) {
	fmt.Printf("chaos: scenario %s, %d homes, %d shards on %d workers, seed %d (%.2fs wall)\n",
		rep.Scenario, rep.Homes, rep.Shards, rep.Workers, rep.Seed, rep.WallSecs)
	fmt.Printf("  delivery   %d/%d items (adsl %d, phones %d), %d failed transactions\n",
		rep.Delivered, rep.Items, rep.ADSLItems, rep.PhoneItems, rep.Failed)
	fmt.Printf("  resilience %d requeues, %d duplicates, %d stall aborts, %d breaker opens\n",
		rep.Requeues, rep.Duplicates, rep.StallAborts, rep.BreakerOpens)
	fmt.Printf("  waste      %d duplicate bytes (worst completion %d), %d failure bytes; mean elapsed %.1fs\n",
		rep.DuplicateWaste, rep.MaxComplWaste, rep.FailureWaste, rep.MeanElapsedSecs)
	verdict := "all invariants held"
	if !rep.Healthy {
		verdict = fmt.Sprintf("VIOLATIONS: %d not-exactly-once, %d waste-bound",
			rep.NotExactlyOnce, rep.WasteBoundBreak)
	}
	fmt.Printf("  invariants %s\n", verdict)
}

// writeEventLog dumps a merged flight-recorder stream as JSON Lines —
// the capture surface cmd/3goltrace ingests. The bytes depend only on
// the run config, never on -workers.
func writeEventLog(log *eventlog.Log, dest string) error {
	if dest == "-" {
		return log.WriteJSONL(os.Stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := log.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printHuman(rep fleetReport) {
	fmt.Printf("fleet: %d homes (%d viewers), %d day(s), %d shards on %d workers, seed %d\n",
		rep.Homes, rep.Viewers, rep.Days, rep.Shards, rep.Workers, rep.Seed)
	fmt.Printf("  engine     %.2fs wall, %.0f homes/sec\n", rep.WallSecs, rep.HomesPerSec)
	fmt.Printf("  memory     %.0f MB peak RSS, %.0f MB allocated over %d objects\n",
		float64(rep.Mem.PeakRSSBytes)/(1<<20), float64(rep.Mem.TotalAllocBytes)/(1<<20), rep.Mem.Mallocs)
	fmt.Printf("  sessions   %d total, %d boosted, %.2f MB onloaded per home-day\n",
		rep.Sessions, rep.BoostedSessions, rep.OnloadedMBPerH)
	fmt.Printf("  speedup    p50 %.2fx  p90 %.2fx  p99 %.2fx  (%.0f%% of homes ≥1.2x)\n",
		rep.SpeedupP50, rep.SpeedupP90, rep.SpeedupP99, 100*rep.FracSpeedup12)
	fmt.Printf("  backhaul   %.1f Mbps; budgeted peak %.1f Mbps crosses %d bins, unlimited %.1f Mbps crosses %d\n",
		rep.BackhaulMbps, rep.BudgetedPeakMbps, rep.BudgetedCrossBins,
		rep.UnlimitedPeakMbps, rep.UnlimitedCross)
	fmt.Printf("  3G load    +%.0f%% total, +%.0f%% at the mobile peak hour\n",
		100*rep.TotalIncrease, 100*rep.PeakIncrease)
}

// validateReport checks that r holds one 3golfleet -json document with
// the fields CI depends on, all in range.
func validateReport(r *os.File) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rep fleetReport
	if err := dec.Decode(&rep); err != nil {
		return err
	}
	switch {
	case rep.Experiment != "fleet":
		return fmt.Errorf("experiment = %q, want \"fleet\"", rep.Experiment)
	case rep.Homes <= 0:
		return fmt.Errorf("homes = %d, want > 0", rep.Homes)
	case rep.Viewers <= 0 || rep.Viewers > rep.Homes:
		return fmt.Errorf("viewers = %d outside (0, homes]", rep.Viewers)
	case rep.Sessions <= 0:
		return fmt.Errorf("sessions = %d, want > 0", rep.Sessions)
	case rep.WallSecs <= 0:
		return fmt.Errorf("wall_seconds = %v, want > 0", rep.WallSecs)
	case rep.HomesPerSec <= 0:
		return fmt.Errorf("homes_per_sec = %v, want > 0", rep.HomesPerSec)
	case rep.Mem.TotalAllocBytes == 0 || rep.Mem.Mallocs == 0:
		return fmt.Errorf("mem counters empty: total_alloc_bytes=%d mallocs=%d",
			rep.Mem.TotalAllocBytes, rep.Mem.Mallocs)
	case rep.SpeedupP50 < 1:
		return fmt.Errorf("speedup_p50 = %v, want ≥ 1", rep.SpeedupP50)
	case rep.BackhaulMbps <= 0:
		return fmt.Errorf("backhaul_mbps = %v, want > 0", rep.BackhaulMbps)
	}
	return nil
}
