// Command 3goltrace analyses flight-recorder event logs — the JSONL
// streams captured by `3golfleet -events` or a daemon's /debug/events
// endpoint. It reconstructs causal traces and reports what the paper's
// aggregate metrics cannot: why one transaction was slow.
//
//	3goltrace events.jsonl               # summary + anomalies
//	3goltrace -check events.jsonl        # validate stream invariants (CI smoke)
//	3goltrace -timeline -top 5 ev.jsonl  # per-item timelines, 5 longest traces
//	3goltrace -critical ev.jsonl         # critical-path breakdown per trace
//	3goltrace -anomalies ev.jsonl        # retry storms, stragglers, duplicate waste
//	3goltrace -chrome out.json ev.jsonl  # Chrome trace_event export (chrome://tracing)
//
// With no file argument the stream is read from stdin, so daemon logs
// pipe straight in:
//
//	curl -s http://device:8081/debug/events | 3goltrace -check -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"threegol/internal/obs/eventlog"
)

func main() {
	var (
		check     = flag.Bool("check", false, "validate stream invariants and exit non-zero on violation")
		timeline  = flag.Bool("timeline", false, "print a per-item timeline for each trace")
		critical  = flag.Bool("critical", false, "print the critical-path breakdown for each trace")
		anomalies = flag.Bool("anomalies", false, "print the anomaly summary")
		chrome    = flag.String("chrome", "", "write a Chrome trace_event JSON export to this file; \"-\" = stdout")
		top       = flag.Int("top", 10, "with -timeline/-critical: only the N longest traces (0 = all)")
	)
	flag.Parse()

	events, err := readEvents(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "3goltrace:", err)
		os.Exit(1)
	}

	if *check {
		st, err := eventlog.Check(events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "3goltrace: check failed:", err)
			os.Exit(1)
		}
		fmt.Printf("ok: %d events, %d traces, %d spans (%d unended), %d points\n",
			st.Events, st.Traces, st.Spans, st.Unended, st.Points)
		return
	}

	a := eventlog.Assemble(events)
	if *chrome != "" {
		if err := writeChrome(events, *chrome); err != nil {
			fmt.Fprintln(os.Stderr, "3goltrace: chrome export:", err)
			os.Exit(1)
		}
	}
	specific := *timeline || *critical || *anomalies || *chrome != ""
	if *timeline {
		printTimelines(a, *top)
	}
	if *critical {
		printCritical(a, *top)
	}
	if *anomalies || !specific {
		if !specific {
			printSummary(a, events)
		}
		printAnomalies(a.FindAnomalies())
	}
}

// readEvents loads a JSONL stream from the named file, or stdin when
// the name is empty or "-".
func readEvents(name string) ([]eventlog.Event, error) {
	var r io.Reader = os.Stdin
	if name != "" && name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return eventlog.ReadJSONL(r)
}

func writeChrome(events []eventlog.Event, dest string) error {
	if dest == "-" {
		return eventlog.WriteChromeTrace(os.Stdout, events)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := eventlog.WriteChromeTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// traceExtent is a trace's [start, end] over its ended spans.
func traceExtent(t *eventlog.Trace) (start, end float64, ok bool) {
	first := true
	for _, n := range t.Spans {
		if !n.Ended {
			continue
		}
		if first || n.Start < start {
			start = n.Start
		}
		if first || n.End > end {
			end = n.End
		}
		first = false
	}
	return start, end, !first
}

// longestTraces orders traces by extent (longest first), keeping at
// most top (0 = all).
func longestTraces(a *eventlog.Analysis, top int) []*eventlog.Trace {
	type ranked struct {
		t   *eventlog.Trace
		dur float64
	}
	var rs []ranked
	for _, t := range a.Traces {
		if s, e, ok := traceExtent(t); ok {
			rs = append(rs, ranked{t, e - s})
		}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].dur > rs[j].dur })
	if top > 0 && len(rs) > top {
		rs = rs[:top]
	}
	out := make([]*eventlog.Trace, len(rs))
	for i, r := range rs {
		out[i] = r.t
	}
	return out
}

func printSummary(a *eventlog.Analysis, events []eventlog.Event) {
	spans, points := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case eventlog.KindBegin:
			spans++
		case eventlog.KindPoint:
			points++
		}
	}
	fmt.Printf("%d events: %d traces, %d spans, %d points\n",
		len(events), len(a.Traces), spans, points)
}

func printTimelines(a *eventlog.Analysis, top int) {
	for _, t := range longestTraces(a, top) {
		start, end, _ := traceExtent(t)
		fmt.Printf("trace %s  [%.3fs – %.3fs]\n", t.ID, start, end)
		for _, root := range t.Roots {
			printSpanTree(root, start, 1)
		}
		for _, p := range t.Points {
			fmt.Printf("  · %-24s +%.3fs  %s\n", p.Name, p.T-start, attrLine(p.Attrs))
		}
	}
}

func printSpanTree(n *eventlog.SpanNode, base float64, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.Ended {
		fmt.Printf("%s%-24s +%.3fs  %.3fs  %s\n",
			indent, n.Name, n.Start-base, n.Duration(), attrLine(n.Attrs))
	} else {
		fmt.Printf("%s%-24s +%.3fs  (unended)  %s\n",
			indent, n.Name, n.Start-base, attrLine(n.Attrs))
	}
	for _, p := range n.Points {
		fmt.Printf("%s  · %-22s +%.3fs  %s\n", indent, p.Name, p.T-base, attrLine(p.Attrs))
	}
	for _, c := range n.Children {
		printSpanTree(c, base, depth+1)
	}
}

func printCritical(a *eventlog.Analysis, top int) {
	for _, t := range longestTraces(a, top) {
		steps := t.CriticalPath()
		if len(steps) == 0 {
			continue
		}
		total := steps[0].Span.Duration()
		fmt.Printf("trace %s  total %.3fs\n", t.ID, total)
		for _, st := range steps {
			pct := 0.0
			if total > 0 {
				pct = 100 * st.Self / total
			}
			fmt.Printf("  %-24s self %.3fs (%.0f%%)  %s\n",
				st.Span.Name, st.Self, pct, attrLine(st.Span.Attrs))
		}
	}
}

func printAnomalies(an eventlog.Anomalies) {
	fmt.Printf("anomalies:\n")
	fmt.Printf("  retry storms      %d trace(s) with ≥%d retries\n",
		len(an.RetryStorms), eventlog.RetryStormThreshold)
	for i, s := range an.RetryStorms {
		if i == 5 {
			fmt.Printf("    … %d more\n", len(an.RetryStorms)-5)
			break
		}
		fmt.Printf("    %s: %d retries\n", s.Trace, s.Count)
	}
	fmt.Printf("  straggler paths   %d\n", len(an.StragglerPaths))
	for _, s := range an.StragglerPaths {
		fmt.Printf("    %s: mean %.3fs over %d attempts\n", s.Path, s.MeanSecs, s.Attempts)
	}
	fmt.Printf("  duplicate waste   %d replica(s), %d bytes lost\n",
		an.DuplicateEvents, an.WastedBytes)
	fmt.Printf("  budget exhausted  %d event(s)\n", an.BudgetExhausted)
}

// attrLine renders attrs as "k=v k=v" in sorted key order.
func attrLine(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k]
	}
	return strings.Join(parts, " ")
}
