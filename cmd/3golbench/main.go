// Command 3golbench regenerates every table and figure of the paper's
// evaluation. Each subcommand prints the corresponding rows/series; the
// mapping to the paper is documented in DESIGN.md and EXPERIMENTS.md.
//
// Usage:
//
//	3golbench <experiment> [flags]
//
// Experiments:
//
//	context    §2.1 capacity back-of-the-envelope
//	fig1       diurnal wired/mobile traffic shapes
//	table1     synthetic data-source inventory
//	fig3       aggregate 3G throughput vs number of devices
//	fig4       per-device throughput by hour of day
//	fig5       per-base-station throughput distributions
//	table2     DSL vs 3-device 3G throughput per location
//	table3     per-device throughput stats by cluster size
//	table4     eval-location ADSL speeds and signal
//	fig6       scheduler comparison (prototype path)
//	fig7       pre-buffer gains (prototype path)
//	fig8       full-download reductions (prototype path)
//	fig9       upload times (prototype path)
//	fig10      cap-usage CDF
//	estimator  §6 allowance estimator back-test
//	fig11a     speedup CDF under budgets
//	fig11b     onloaded load vs backhaul
//	fig11c     traffic increase vs adoption
//	mptcp      coupled vs uncoupled congestion control baseline
//	lte        §2.3 outlook: the same boost with 4G/LTE devices
//	ablation   scheduler design-choice ablations (endgame duplication,
//	           MIN smoothing, playout endgame)
//	sim        every simulation-only experiment (excludes fig6–fig9, lte)
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"threegol/internal/capacity"
	"threegol/internal/cellular"
	"threegol/internal/diurnal"
	"threegol/internal/dsl"
	"threegol/internal/evalwild"
	"threegol/internal/hls"
	"threegol/internal/linksim"
	"threegol/internal/measure"
	"threegol/internal/mptcp"
	"threegol/internal/quota"
	"threegol/internal/scheduler"
	"threegol/internal/traces"
	"threegol/internal/tracesim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 42, "random seed")
	reps := fs.Int("reps", 3, "repetitions per configuration (prototype-path experiments)")
	timeScale := fs.Float64("timescale", 60, "emulation acceleration factor (prototype-path experiments)")
	users := fs.Int("users", 18000, "DSLAM subscriber population")
	mnoUsers := fs.Int("mno-users", 20000, "MNO subscriber population")
	asJSON := fs.Bool("json", false, "emit a machine-readable result document instead of tables")
	fs.Parse(os.Args[2:])

	setup := evalwild.Setup{Seed: *seed, Reps: *reps, TimeScale: *timeScale}

	var run func(name string) error
	run = func(name string) error {
		switch name {
		case "context":
			return runContext()
		case "fig1":
			return runFig1()
		case "table1":
			return runTable1(*users, *mnoUsers, *seed)
		case "fig3":
			return runFig3(*seed)
		case "fig4":
			return runFig4(*seed)
		case "fig5":
			return runFig5(*seed)
		case "table2":
			return runTable2(*seed)
		case "table3":
			return runTable3(*seed)
		case "table4":
			return runTable4()
		case "fig6":
			return runFig6(setup)
		case "fig7":
			return runFig7(setup)
		case "fig8":
			return runFig8(setup)
		case "fig9":
			return runFig9(setup)
		case "fig10":
			return runFig10(*mnoUsers, *seed)
		case "estimator":
			return runEstimator(*mnoUsers, *seed)
		case "fig11a":
			return runFig11a(*users, *seed)
		case "fig11b":
			return runFig11b(*users, *seed)
		case "fig11c":
			return runFig11c(*mnoUsers, *seed)
		case "mptcp":
			return runMPTCP(*seed)
		case "lte":
			return runLTE(setup)
		case "ablation":
			return runAblation()
		case "sim":
			for _, n := range []string{
				"context", "fig1", "table1", "fig3", "fig4", "fig5",
				"table2", "table3", "table4", "fig10", "estimator",
				"fig11a", "fig11b", "fig11c", "mptcp",
			} {
				fmt.Printf("\n════════ %s ════════\n", n)
				if err := run(n); err != nil {
					return err
				}
			}
			return nil
		default:
			usage()
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	// Indirect recursion for "sim".
	var err error
	if *asJSON {
		err = runJSON(cmd, run)
	} else {
		err = run(cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "3golbench:", err)
		os.Exit(1)
	}
}

// jsonMetrics collects named scalar results while an experiment runs
// under -json; the run* functions report through metric(). nil outside
// -json runs, so reporting is free on the table path.
var jsonMetrics map[string]float64

// metric records one machine-readable result value.
func metric(name string, v float64) {
	if jsonMetrics != nil {
		jsonMetrics[name] = v
	}
}

// benchResult is the -json document.
type benchResult struct {
	Experiment  string             `json:"experiment"`
	WallSeconds float64            `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics"`
	Output      []string           `json:"output"`
}

// runJSON runs one experiment with its table output captured, then emits
// a benchResult on the real stdout: the experiment id, wall time, the
// metrics the experiment reported, and the human tables as lines.
func runJSON(name string, run func(string) error) error {
	jsonMetrics = map[string]float64{}
	r, w, err := os.Pipe()
	if err != nil {
		return err
	}
	lines := make(chan []string)
	go func() {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		var out []string
		for sc.Scan() {
			out = append(out, sc.Text())
		}
		lines <- out
	}()

	real := os.Stdout
	os.Stdout = w
	start := time.Now() //3golvet:allow wallclock — reporting real experiment wall time
	runErr := run(name)
	wall := time.Since(start) //3golvet:allow wallclock — reporting real experiment wall time
	w.Close()
	os.Stdout = real
	captured := <-lines
	if runErr != nil {
		return runErr
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(benchResult{
		Experiment:  name,
		WallSeconds: wall.Seconds(),
		Metrics:     jsonMetrics,
		Output:      captured,
	})
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: 3golbench <experiment> [flags]")
	fmt.Fprintln(os.Stderr, "experiments: context fig1 table1 fig3 fig4 fig5 table2 table3 table4")
	fmt.Fprintln(os.Stderr, "             fig6 fig7 fig8 fig9 fig10 estimator fig11a fig11b fig11c mptcp lte ablation sim")
}

func runContext() error {
	r := capacity.PaperDefaults().Compute()
	fmt.Println("§2.1 capacity comparison (paper assumptions)")
	fmt.Printf("  cell coverage area          %8.4f km²\n", r.AreaKm2)
	fmt.Printf("  subscribers per cell        %8.0f   (paper: 4375)\n", r.Subscribers)
	fmt.Printf("  ADSL lines per cell         %8.0f   (paper: 875)\n", r.ADSLLines)
	fmt.Printf("  aggregate wired downlink    %8.3f Gbps (paper: 5.863)\n", r.WiredDownGbps)
	fmt.Printf("  aggregate wired uplink      %8.3f Gbps\n", r.WiredUpGbps)
	fmt.Printf("  cell backhaul               %8.3f Gbps\n", r.CellGbps)
	fmt.Printf("  wired/cell downlink ratio   %8.1f× (%.2f orders of magnitude)\n",
		r.DownRatio, r.OrdersOfMagnitude())
	fmt.Printf("  wired/cell uplink ratio     %8.1f×\n", r.UpRatio)
	metric("wired_down_gbps", r.WiredDownGbps)
	metric("down_ratio", r.DownRatio)
	metric("up_ratio", r.UpRatio)
	return nil
}

func runFig1() error {
	fmt.Println("Fig 1: normalised diurnal traffic (hour, mobile, wired)")
	for h := 0; h < 24; h++ {
		fmt.Printf("  %02d:00  mobile %.3f  wired %.3f\n",
			h, diurnal.Mobile.At(float64(h)), diurnal.Wired.At(float64(h)))
	}
	fmt.Printf("  peaks: mobile %02d:00, wired %02d:00 (misaligned, as in the paper)\n",
		diurnal.Mobile.PeakHour(), diurnal.Wired.PeakHour())
	return nil
}

func runTable1(users, mnoUsers int, seed int64) error {
	fmt.Println("Table 1: synthetic data sources standing in for the paper's datasets")
	tr := traces.GenerateDSLAM(traces.DSLAMConfig{Users: users}, seed)
	mno := traces.GenerateMNO(traces.MNOConfig{Users: mnoUsers}, seed)
	fmt.Printf("  DSLAM   %d DSL lines, %d video sessions, %d viewers (%.0f%%)\n",
		tr.NumUsers, len(tr.Sessions), tr.Viewers(), 100*float64(tr.Viewers())/float64(tr.NumUsers))
	fmt.Printf("  MNO     %d subscribers, mean daily leftover %.1f MB\n",
		len(mno), traces.MeanDailyLeftoverBytes(mno)/traces.MB)
	fmt.Printf("  Handset experiments: cellular model presets (%d measurement + %d eval locations)\n",
		len(cellular.MeasurementLocations), len(cellular.EvalLocations))
	return nil
}

func runFig3(seed int64) error {
	fmt.Println("Fig 3: aggregate throughput vs number of devices (Mbps)")
	for _, name := range []string{"loc1", "loc2", "loc3", "loc4"} {
		p, _ := cellular.FindLocation(cellular.MeasurementLocations, name)
		pts := measure.Fig3(p, 10, 4, seed)
		fmt.Printf("  %s (%s, hour %.0f)\n", p.Name, p.Description, p.Hour)
		for _, pt := range pts {
			fmt.Printf("    n=%2d  down %6.2f  up %6.2f\n", pt.Devices, pt.DownMbps, pt.UpMbps)
		}
	}
	return nil
}

func runFig4(seed int64) error {
	fmt.Println("Fig 4: per-device throughput by hour (Mbps, 5-day campaign)")
	for _, name := range []string{"loc1", "loc2", "loc4"} {
		p, _ := cellular.FindLocation(cellular.MeasurementLocations, name)
		samples := measure.Campaign(p, 5, []int{5, 3, 1}, seed)
		pts := measure.Fig4(samples)
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].Group != pts[j].Group {
				return pts[i].Group < pts[j].Group
			}
			if pts[i].Dir != pts[j].Dir {
				return pts[i].Dir < pts[j].Dir
			}
			return pts[i].Hour < pts[j].Hour
		})
		fmt.Printf("  %s:\n", p.Name)
		for _, g := range []int{1, 5} {
			for _, dir := range []cellular.Direction{cellular.Downlink, cellular.Uplink} {
				fmt.Printf("    group=%d %s:", g, dir)
				for _, pt := range pts {
					if pt.Group == g && pt.Dir == dir && pt.Hour%4 == 2 {
						fmt.Printf("  %02dh %.2f", pt.Hour, pt.MeanMbps)
					}
				}
				fmt.Println()
			}
		}
	}
	return nil
}

func runFig5(seed int64) error {
	fmt.Println("Fig 5: single-device throughput per base station (Mbps)")
	for _, name := range []string{"loc1", "loc3", "loc4"} {
		p, _ := cellular.FindLocation(cellular.MeasurementLocations, name)
		samples := measure.Campaign(p, 5, []int{1}, seed)
		violins := measure.Fig5(samples, 12)
		sort.Slice(violins, func(i, j int) bool {
			if violins[i].BS != violins[j].BS {
				return violins[i].BS < violins[j].BS
			}
			return violins[i].Dir < violins[j].Dir
		})
		for _, v := range violins {
			s := v.Violin.Summary
			fmt.Printf("  %-14s %-8s n=%3d  q1=%.2f med=%.2f q3=%.2f  range [%.2f, %.2f]\n",
				v.BS, v.Dir, s.N, v.Violin.Q1, v.Violin.Q2, v.Violin.Q3, s.Min, s.Max)
		}
	}
	fmt.Println("  reference: dedicated-channel floors 0.36 (down) / 0.064 (up) Mbps")
	return nil
}

func runTable2(seed int64) error {
	rows := measure.Table2(cellular.MeasurementLocations, 4, seed)
	fmt.Println("Table 2: DSL vs 3-device 3G throughput (Mbps) and 3GOL speedup")
	fmt.Println("  loc   hour  DSL d/u        3G d/u (paper d/u)      3GOL/DSL d/u")
	for _, r := range rows {
		fmt.Printf("  %-5s %4.0f  %5.2f/%5.2f  %5.2f/%5.2f (%4.2f/%4.2f)  %5.2f/%6.2f\n",
			r.Location, r.Hour, r.DSLDown, r.DSLUp,
			r.ThreeGDown, r.ThreeGUp, r.PaperDown, r.PaperUp,
			r.SpeedupDown, r.SpeedupUp)
	}
	return nil
}

func runTable3(seed int64) error {
	var samples []measure.Sample
	for _, p := range cellular.MeasurementLocations {
		samples = append(samples, measure.Campaign(p, 5, []int{5, 3, 1}, seed)...)
	}
	rows := measure.Table3(samples)
	fmt.Println("Table 3: per-device throughput by cluster size (Mbps)")
	fmt.Println("  cluster  uplink mean/max/sd     downlink mean/max/sd    (paper up | down)")
	paper := map[int]string{
		1: "1.09/2.32/0.72 | 1.61/2.65/0.57",
		3: "0.90/2.47/0.60 | 1.33/2.32/0.51",
		5: "0.65/2.44/0.50 | 1.16/3.44/0.56",
	}
	for _, r := range rows {
		fmt.Printf("  %7d  %4.2f/%4.2f/%4.2f        %4.2f/%4.2f/%4.2f        (%s)\n",
			r.Cluster, r.UpMean, r.UpMax, r.UpSd, r.DownMean, r.DownMax, r.DownSd, paper[r.Cluster])
	}
	return nil
}

func runTable4() error {
	fmt.Println("Table 4: evaluation locations")
	fmt.Println("  loc   DSL down/up (Mbps)   3G signal (dBm)")
	for _, p := range cellular.EvalLocations {
		fmt.Printf("  %-5s %6.2f/%5.2f         %5.0f\n",
			p.Name, p.DSLDown/linksim.Mbps, p.DSLUp/linksim.Mbps, p.SignalDBm)
	}
	return nil
}

func runFig6(s evalwild.Setup) error {
	fmt.Printf("Fig 6: scheduler comparison (200 s HLS video, 2 Mbps ADSL; %d reps, emulated seconds)\n", s.Reps)
	rows, err := evalwild.Fig6(s)
	if err != nil {
		return err
	}
	for _, phones := range []int{1, 2} {
		fmt.Printf("  %d phone(s):\n", phones)
		fmt.Printf("    %-8s", "quality")
		for _, scheme := range []string{"ADSL", "3GOL_MIN", "3GOL_RR", "3GOL_GRD"} {
			fmt.Printf("  %-14s", scheme)
		}
		fmt.Println()
		for _, q := range []string{"q1", "q2", "q3", "q4"} {
			fmt.Printf("    %-8s", q)
			for _, scheme := range []string{"ADSL", "3GOL_MIN", "3GOL_RR", "3GOL_GRD"} {
				for _, r := range rows {
					if r.Quality == q && r.Scheme == scheme && r.Phones == phones {
						fmt.Printf("  %5.1fs ±%4.1fs ", r.Mean.Seconds(), r.Std.Seconds())
					}
				}
			}
			fmt.Println()
		}
	}
	return nil
}

func runFig7(s evalwild.Setup) error {
	fmt.Println("Fig 7: pre-buffer gain in emulated seconds (GRD scheduler)")
	rows, err := evalwild.Fig7(s, nil, nil, nil)
	if err != nil {
		return err
	}
	for _, loc := range []string{"loc2", "loc4"} {
		for _, phones := range []int{1, 2} {
			for _, warm := range []bool{false, true} {
				mode := "3G"
				if warm {
					mode = "H"
				}
				fmt.Printf("  %s %dPH %s:\n", loc, phones, mode)
				for _, q := range []string{"q1", "q2", "q3", "q4"} {
					fmt.Printf("    %s:", q)
					for _, r := range rows {
						if r.Location == loc && r.Phones == phones && r.Warm == warm && r.Quality == q {
							fmt.Printf("  %3.0f%%→%5.1fs", r.Prebuffer*100, r.GainSec)
						}
					}
					fmt.Println()
				}
			}
		}
	}
	return nil
}

func runFig8(s evalwild.Setup) error {
	fmt.Println("Fig 8: full-video download time reduction (%)")
	rows, err := evalwild.Fig8(s, nil)
	if err != nil {
		return err
	}
	fmt.Println("  loc    3G_1PH  H_1PH  3G_2PH  H_2PH")
	for _, loc := range []string{"loc1", "loc2", "loc3", "loc4", "loc5"} {
		fmt.Printf("  %-5s", loc)
		for _, cfg := range []struct {
			phones int
			warm   bool
		}{{1, false}, {1, true}, {2, false}, {2, true}} {
			for _, r := range rows {
				if r.Location == loc && r.Phones == cfg.phones && r.Warm == cfg.warm {
					fmt.Printf("  %5.1f%%", r.ReductionPct)
				}
			}
		}
		fmt.Println()
	}
	return nil
}

func runFig9(s evalwild.Setup) error {
	fmt.Println("Fig 9: 30-photo upload time (emulated seconds)")
	rows, err := evalwild.Fig9(s, 30)
	if err != nil {
		return err
	}
	fmt.Println("  loc    ADSL      1PH       2PH")
	for _, loc := range []string{"loc1", "loc2", "loc3", "loc4", "loc5"} {
		fmt.Printf("  %-5s", loc)
		for _, phones := range []int{0, 1, 2} {
			for _, r := range rows {
				if r.Location == loc && r.Phones == phones {
					fmt.Printf("  %7.1fs", r.Mean.Seconds())
				}
			}
		}
		fmt.Println()
	}
	return nil
}

func runFig10(mnoUsers int, seed int64) error {
	users := traces.GenerateMNO(traces.MNOConfig{Users: mnoUsers}, seed)
	cdf := tracesim.Fig10(users)
	fmt.Println("Fig 10: CDF of fraction of cap used")
	for _, x := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0} {
		fmt.Printf("  P(frac ≤ %.2f) = %.3f\n", x, cdf.At(x))
	}
	fmt.Printf("  anchors: paper has P(≤0.1)=0.40, P(≤0.5)=0.75\n")
	fmt.Printf("  mean daily leftover: %.1f MB/device (paper: ≈20 MB)\n",
		traces.MeanDailyLeftoverBytes(users)/traces.MB)
	metric("p_frac_le_0.1", cdf.At(0.1))
	metric("p_frac_le_0.5", cdf.At(0.5))
	metric("mean_daily_leftover_mb", traces.MeanDailyLeftoverBytes(users)/traces.MB)
	return nil
}

func runEstimator(mnoUsers int, seed int64) error {
	users := traces.GenerateMNO(traces.MNOConfig{Users: mnoUsers}, seed)
	series := make([][]float64, len(users))
	for i, u := range users {
		series[i] = u.FreeSeries()
	}
	fmt.Println("§6 estimator back-test: 3GOLa(t) = F̄u(t) − α·σ̄u(t)")
	fmt.Println("  τ    α     utilised%   overrun days/month")
	for _, cfg := range []quota.Estimator{
		{Tau: 5, Alpha: 4}, // the paper's operating point
		{Tau: 5, Alpha: 2},
		{Tau: 5, Alpha: 1},
		{Tau: 3, Alpha: 4},
		{Tau: 8, Alpha: 4},
	} {
		res := cfg.Evaluate(series)
		marker := ""
		if cfg.Tau == 5 && cfg.Alpha == 4 {
			marker = "   ← paper (≈65%, <1 day)"
			metric("utilised_frac", res.UtilizedFraction)
			metric("overrun_days_per_month", res.OverrunDaysPerMonth)
		}
		fmt.Printf("  %-4d %-4.0f  %6.1f%%     %.2f%s\n",
			cfg.Tau, cfg.Alpha, 100*res.UtilizedFraction, res.OverrunDaysPerMonth, marker)
	}
	return nil
}

func runFig11a(users int, seed int64) error {
	tr := traces.GenerateDSLAM(traces.DSLAMConfig{Users: users}, seed)
	outcomes := tracesim.Fig11a(tr, tracesim.Config{})
	cdf := tracesim.SpeedupCDF(outcomes)
	fmt.Println("Fig 11(a): per-user DSL/3GOL latency ratio under 40 MB/day budget")
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		fmt.Printf("  p%-3.0f speedup ×%.2f\n", q*100, cdf.Quantile(q))
	}
	fmt.Printf("  fraction with ≥1.2× speedup: %.2f (paper: ≥0.50)\n", 1-cdf.At(1.2))
	fmt.Printf("  mean onloaded: %.1f MB/user/day (paper: 29.78)\n",
		tracesim.MeanOnloadedBytesPerUser(outcomes)/traces.MB)
	metric("speedup_p50", cdf.Quantile(0.5))
	metric("speedup_p90", cdf.Quantile(0.9))
	metric("frac_speedup_ge_1.2", 1-cdf.At(1.2))
	metric("mean_onloaded_mb", tracesim.MeanOnloadedBytesPerUser(outcomes)/traces.MB)

	// Extension: the same analysis over a heterogeneous loop plant (the
	// paper's uniform 3 Mbps population replaced by dsl rate-reach
	// populations) — rural lines see the larger tail speedups.
	fmt.Println("  heterogeneous-plant extension (p50 / p90 speedups):")
	for _, pop := range []struct {
		name string
		p    dsl.Population
	}{
		{"urban ADSL2+ (0.6 km loops)", dsl.Population{Technology: dsl.ADSL2Plus, MeanLoopMetres: 600}},
		{"rural ADSL (3 km loops)", dsl.Population{Technology: dsl.ADSL1, MeanLoopMetres: 3000}},
	} {
		rates := tracesim.AssignLineRates(tr, pop.p, seed)
		het := tracesim.SpeedupCDF(tracesim.Fig11aHeterogeneous(tr, rates, tracesim.Config{}))
		fmt.Printf("    %-28s ×%.2f / ×%.2f\n", pop.name, het.Quantile(0.5), het.Quantile(0.9))
	}
	return nil
}

func runFig11b(users int, seed int64) error {
	tr := traces.GenerateDSLAM(traces.DSLAMConfig{Users: users}, seed)
	ls := tracesim.Fig11b(tr, tracesim.Config{}, 300)
	fmt.Println("Fig 11(b): onloaded cellular load, 5-min bins (Mbps)")
	fmt.Printf("  backhaul capacity: %.0f Mbps (2 towers × 40)\n", ls.BackhaulMbps)
	fmt.Printf("  budgeted  peak %8.1f Mbps\n", tracesim.PeakMbps(ls.BudgetedMbps))
	fmt.Printf("  unlimited peak %8.1f Mbps\n", tracesim.PeakMbps(ls.UnlimitedMbps))
	metric("backhaul_mbps", ls.BackhaulMbps)
	metric("budgeted_peak_mbps", tracesim.PeakMbps(ls.BudgetedMbps))
	metric("unlimited_peak_mbps", tracesim.PeakMbps(ls.UnlimitedMbps))
	fmt.Printf("  mean onloaded under the first-video rule: %.1f MB/user/day (paper: 29.78)\n",
		tracesim.MeanOnloadedFirstVideoBytes(tr, tracesim.Config{})/traces.MB)
	fmt.Println("  hour  budgeted  unlimited")
	for h := 0; h < 24; h += 2 {
		bin := h * 12
		fmt.Printf("  %02d:00 %8.1f  %9.1f\n", h, ls.BudgetedMbps[bin], ls.UnlimitedMbps[bin])
	}
	return nil
}

func runFig11c(mnoUsers int, seed int64) error {
	users := traces.GenerateMNO(traces.MNOConfig{Users: mnoUsers}, seed)
	fracs := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	pts := tracesim.Fig11c(users, fracs, 20*traces.MB)
	fmt.Println("Fig 11(c): relative 3G traffic increase vs 3GOL adoption")
	fmt.Println("  adoption  total increase  peak-hour increase")
	for _, p := range pts {
		fmt.Printf("  %7.0f%%  %13.1f%%  %17.1f%%\n",
			p.Fraction*100, p.TotalIncrease*100, p.PeakIncrease*100)
		if p.Fraction == 1.0 {
			metric("total_increase_full_adoption", p.TotalIncrease)
			metric("peak_increase_full_adoption", p.PeakIncrease)
		}
	}
	return nil
}

// ratePath is a synthetic fixed-rate scheduler path used by the
// ablation experiments (isolating scheduler behaviour from HTTP).
type ratePath struct {
	name string
	rate float64 // bytes per second
}

func (p *ratePath) Name() string { return p.name }

func (p *ratePath) Transfer(ctx context.Context, item scheduler.Item) (int64, error) {
	select {
	case <-time.After(time.Duration(float64(item.Size) / p.rate * float64(time.Second))):
		return item.Size, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func runAblation() error {
	mkItems := func(n int, size int64) []scheduler.Item {
		items := make([]scheduler.Item, n)
		for i := range items {
			items[i] = scheduler.Item{ID: i, Name: fmt.Sprintf("i%d", i), Size: size}
		}
		return items
	}
	twoPaths := func() []scheduler.Path {
		return []scheduler.Path{
			&ratePath{name: "fast", rate: 2e6},
			&ratePath{name: "slow", rate: 500e3},
		}
	}

	fmt.Println("Ablation 1: GRD endgame duplication (3 items, 4:1 path asymmetry)")
	for _, dup := range []bool{true, false} {
		rep, err := scheduler.Run(context.Background(), scheduler.Greedy,
			mkItems(3, 400_000), twoPaths(), scheduler.Options{DisableDuplication: !dup})
		if err != nil {
			return err
		}
		fmt.Printf("  duplication=%-5v  transaction %6.2fs  wasted %d bytes\n",
			dup, rep.Elapsed.Seconds(), rep.WastedBytes)
	}

	fmt.Println("Ablation 2: MIN smoothing parameter α (paper: 0.75)")
	for _, alpha := range []float64{0.25, 0.5, 0.75, 0.95} {
		rep, err := scheduler.Run(context.Background(), scheduler.MinTime,
			mkItems(9, 200_000), twoPaths(), scheduler.Options{MinAlpha: alpha})
		if err != nil {
			return err
		}
		fmt.Printf("  α=%.2f  transaction %6.2fs\n", alpha, rep.Elapsed.Seconds())
	}

	fmt.Println("Ablation 3: playout-aware endgame (12 one-second segments, prebuffer 2)")
	for _, algo := range []scheduler.Algo{scheduler.Greedy, scheduler.Playout} {
		paths := []scheduler.Path{
			&ratePath{name: "adsl", rate: 1e6},
			&ratePath{name: "ph1", rate: 300e3},
			&ratePath{name: "ph2", rate: 250e3},
		}
		rep, err := scheduler.Run(context.Background(), algo, mkItems(12, 120_000), paths, scheduler.Options{})
		if err != nil {
			return err
		}
		st := hls.SimulatePlayout(rep.ItemDone, 1.0, 2)
		fmt.Printf("  %-8s startup %5.2fs  stalls %d (%.2fs)  total %5.2fs\n",
			algo, st.Startup.Seconds(), st.Stalls, st.StallTime.Seconds(), st.Finished.Seconds())
	}
	return nil
}

func runLTE(s evalwild.Setup) error {
	fmt.Println("§2.3 outlook: powerboost with 3G vs 4G devices (loc4, q4, 20% pre-buffer)")
	rows, err := evalwild.LTEComparison(s, "loc4")
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  %-10s per-device %4.1f Mbps, RRC %5v:  startup %5.1fs → %5.1fs, full download %5.1fs\n",
			r.Tech, r.PhoneDown/1e6, r.RRCPromotion,
			r.BaselineStartup.Seconds(), r.BoostedStartup.Seconds(), r.BoostedTotal.Seconds())
	}
	fmt.Println("  (the paper: with 4G \"the period of powerboosting time might be extremely short\")")
	return nil
}

func runMPTCP(seed int64) error {
	fmt.Println("§5.2 MPTCP note: coupled vs uncoupled congestion control (pkts/round)")
	paths := mptcp.ADSLPlus3G()
	for _, cc := range []mptcp.CongestionControl{mptcp.Uncoupled, mptcp.Coupled} {
		res := mptcp.Simulate(cc, paths, 50000, seed)
		var parts []string
		for i, p := range paths {
			parts = append(parts, fmt.Sprintf("%s %.1f (util %.0f%%)",
				p.Name, res.Goodput[i], 100*res.Utilization[i]))
		}
		fmt.Printf("  %-14s aggregate %5.1f   %s\n", cc, res.Aggregate, strings.Join(parts, ", "))
	}
	adslOnly := mptcp.Simulate(mptcp.Uncoupled, paths[:1], 50000, seed)
	fmt.Printf("  ADSL-only TCP  aggregate %5.1f   (coupled MPTCP adds little — the paper's finding)\n",
		adslOnly.Aggregate)
	return nil
}
