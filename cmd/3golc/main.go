// Command 3golc is the 3GOL client component — it runs on the machine to
// be augmented (§4.1). It discovers 3GOL devices on the LAN, builds the
// admissible set Φ, and either:
//
//	vod     starts the HLS-aware accelerating proxy and (optionally)
//	        plays a video through it, reporting startup latency;
//	upload  uploads a set of files to a server as multipart POSTs over
//	        all paths in parallel.
//
// Examples:
//
//	3golc vod -origin http://videos.example.com -path /clip/master.m3u8 \
//	      -discovery 127.0.0.1:5353 -quality q3 -prebuffer 0.2
//	3golc upload -target http://photos.example.com/upload -discovery \
//	      127.0.0.1:5353 photo1.jpg photo2.jpg
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"time"

	"threegol/internal/core"
	"threegol/internal/discovery"
	"threegol/internal/hls"
	"threegol/internal/permit"
	"threegol/internal/permitplane"
	"threegol/internal/scheduler"
	"threegol/internal/transfer"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: 3golc <vod|upload> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "vod":
		err = runVoD(os.Args[2:])
	case "upload":
		err = runUpload(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		log.Fatalf("3golc: %v", err)
	}
}

// discoverRoutes listens for device announcements and returns one HTTP
// route per admissible device.
func discoverRoutes(listenAddr string, want int, wait time.Duration) ([]core.Route, func(), error) {
	br := &discovery.Browser{}
	addr, err := br.Listen(listenAddr)
	if err != nil {
		return nil, nil, err
	}
	log.Printf("3golc: browsing for devices on %s", addr)
	anns := br.WaitFor(want, wait)
	routes := make([]core.Route, 0, len(anns))
	for _, ann := range anns {
		proxyURL := &url.URL{Scheme: "http", Host: ann.ProxyAddr}
		routes = append(routes, core.Route{
			Name: ann.Name,
			Cell: ann.Cell,
			Client: &http.Client{Transport: &http.Transport{
				Proxy: http.ProxyURL(proxyURL),
			}},
		})
		log.Printf("3golc: admissible device %s via %s (allowance %d bytes)",
			ann.Name, ann.ProxyAddr, ann.AllowanceBytes)
	}
	return routes, br.Close, nil
}

func parseAlgo(s string) (scheduler.Algo, error) {
	switch s {
	case "grd", "greedy":
		return scheduler.Greedy, nil
	case "rr", "roundrobin":
		return scheduler.RoundRobin, nil
	case "min", "mintime":
		return scheduler.MinTime, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q (want grd, rr or min)", s)
	}
}

func runVoD(args []string) error {
	fs := flag.NewFlagSet("vod", flag.ExitOnError)
	origin := fs.String("origin", "", "origin server base URL (required)")
	path := fs.String("path", "", "master playlist path, e.g. /clip/master.m3u8")
	quality := fs.String("quality", "", "variant to play (empty = lowest bandwidth)")
	prebuffer := fs.Float64("prebuffer", 0.2, "pre-buffer fraction of video duration")
	disco := fs.String("discovery", "127.0.0.1:0", "UDP address to receive device announcements on")
	devices := fs.Int("devices", 2, "number of devices to wait for")
	wait := fs.Duration("wait", 2*time.Second, "discovery wait timeout")
	algoName := fs.String("algo", "grd", "multipath scheduler: grd, rr or min")
	serveOnly := fs.Bool("serve", false, "serve the accelerating proxy without playing")
	listen := fs.String("listen", "127.0.0.1:0", "accelerating proxy listen address")
	fs.Parse(args)
	if *origin == "" {
		return fmt.Errorf("vod: -origin is required")
	}
	algo, err := parseAlgo(*algoName)
	if err != nil {
		return err
	}

	routes, closeBrowser, err := discoverRoutes(*disco, *devices, *wait)
	if err != nil {
		return err
	}
	defer closeBrowser()

	handler, err := core.NewVoDProxy(http.DefaultClient, routes, *origin, algo, scheduler.Options{})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln) //3golvet:allow goroleak — bounded by the deferred srv.Close, which makes Serve return
	defer srv.Close()
	log.Printf("3golc: accelerating proxy on http://%s (origin %s, %d devices, %s scheduler)",
		ln.Addr(), *origin, len(routes), algo)

	if *serveOnly {
		select {} // serve until killed
	}
	if *path == "" {
		return fmt.Errorf("vod: -path is required unless -serve is set")
	}
	player := &hls.Player{Client: &http.Client{}, PrebufferFrac: *prebuffer}
	res, err := player.Play(context.Background(), "http://"+ln.Addr().String()+*path, *quality)
	if err != nil {
		return err
	}
	fmt.Printf("startup latency: %v\n", res.PrebufferTime.Round(time.Millisecond))
	fmt.Printf("total download:  %v (%d segments, %d bytes)\n",
		res.TotalTime.Round(time.Millisecond), res.Segments, res.Bytes)
	return nil
}

func runUpload(args []string) error {
	fs := flag.NewFlagSet("upload", flag.ExitOnError)
	target := fs.String("target", "", "upload endpoint URL (required)")
	disco := fs.String("discovery", "127.0.0.1:0", "UDP address to receive device announcements on")
	devices := fs.Int("devices", 2, "number of devices to wait for")
	wait := fs.Duration("wait", 2*time.Second, "discovery wait timeout")
	algoName := fs.String("algo", "grd", "multipath scheduler: grd, rr or min")
	field := fs.String("field", "file", "multipart form field name")
	permitBackend := fs.String("permit-backend", "", "permit backend base URL; gates each device path on its announced serving cell")
	permitFailOpen := fs.Bool("permit-fail-open", false, "honour stale permits for -permit-grace when the permit backend is unreachable (default: fail closed onto ADSL)")
	permitGrace := fs.Duration("permit-grace", permitplane.DefaultGrace, "stale-permit grace window while fail-open and degraded")
	fs.Parse(args)
	if *target == "" {
		return fmt.Errorf("upload: -target is required")
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("upload: no files given")
	}
	algo, err := parseAlgo(*algoName)
	if err != nil {
		return err
	}

	routes, closeBrowser, err := discoverRoutes(*disco, *devices, *wait)
	if err != nil {
		return err
	}
	defer closeBrowser()

	items := make([]scheduler.Item, len(files))
	for i, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			return fmt.Errorf("upload: %w", err)
		}
		items[i] = scheduler.Item{ID: i, Name: f, Size: info.Size()}
	}
	source := func(item scheduler.Item) (io.ReadCloser, error) {
		return os.Open(item.Name)
	}

	// The ADSL path is never gated — permits govern cellular onloading
	// only. Device paths that announced a serving cell get a client-side
	// permit gate (defence in depth alongside the device's own check):
	// a denied or lapsed permit fails the transfer with ErrNotPermitted,
	// and the scheduler requeues the item onto the remaining paths.
	paths := []scheduler.Path{&transfer.UploadPath{
		PathName: "adsl", Client: http.DefaultClient, TargetURL: *target,
		Field: *field, Source: source,
	}}
	var permitFetch func(ctx context.Context, device, cell string) (permit.Response, error)
	if *permitBackend != "" {
		permitFetch = (&permitplane.BatchClient{BackendURL: *permitBackend}).Fetch
	}
	for _, r := range routes {
		var p scheduler.Path = &transfer.UploadPath{
			PathName: r.Name, Client: r.Client, TargetURL: *target,
			Field: *field, Source: source,
		}
		if permitFetch != nil && r.Cell != "" {
			cache := &permitplane.Cache{
				Fetch: permitFetch, Device: r.Name, Cell: r.Cell,
				Seed:     int64(os.Getpid()),
				FailOpen: *permitFailOpen,
				Grace:    *permitGrace,
			}
			p = permitplane.GatePath(p, cache.Allowed)
			log.Printf("3golc: gating path %s on permits for cell %s", r.Name, r.Cell)
		} else if permitFetch != nil {
			log.Printf("3golc: path %s announced no cell; relying on the device's own permit check", r.Name)
		}
		paths = append(paths, p)
	}

	rep, err := scheduler.Run(context.Background(), algo, items, paths, scheduler.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("uploaded %d files in %v over %d paths\n",
		len(files), rep.Elapsed.Round(time.Millisecond), len(paths))
	for name, st := range rep.PerPath {
		fmt.Printf("  %-12s %3d files  %d bytes\n", name, st.Items, st.Bytes)
	}
	if rep.WastedBytes > 0 {
		fmt.Printf("  endgame duplication wasted %d bytes\n", rep.WastedBytes)
	}
	return nil
}
