// Command 3golpermitd is the operator-side permit backend of the
// network-integrated deployment (§2.4): devices ask it for permission to
// onload, and it grants a time-limited permit only while the device's
// serving cell sits below the utilisation acceptance threshold.
//
// The production interface to the 3G monitoring system is a utilisation
// feed; this daemon accepts one on stdin as "cellID utilisation" lines
// (or runs with a static default), so an operator can pipe their
// monitoring export straight in:
//
//	monitoring-export | 3golpermitd -listen :7300 -threshold 0.7 -ttl 3m
//
// Devices (3gold -backend http://host:7300 -cell <id>) then gate their
// proxies and beacons on GET /permit?device=<id>&cell=<id>.
package main

import (
	"bufio"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"threegol/internal/obs"
	"threegol/internal/obs/eventlog"
	"threegol/internal/permit"
)

// eventRingSize bounds the backend's in-memory flight recorder; the
// /debug/events endpoint serves the most recent events.
const eventRingSize = 4096

// utilTable is a concurrent cellID → utilisation map fed from stdin.
type utilTable struct {
	mu       sync.RWMutex
	util     map[string]float64
	fallback float64
}

func (t *utilTable) get(cellID string) float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if u, ok := t.util[cellID]; ok {
		return u
	}
	return t.fallback
}

func (t *utilTable) set(cellID string, u float64) {
	t.mu.Lock()
	t.util[cellID] = u
	t.mu.Unlock()
}

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7300", "listen address")
		threshold = flag.Float64("threshold", permit.DefaultThreshold, "utilisation acceptance threshold")
		ttl       = flag.Duration("ttl", permit.DefaultTTL, "permit lifetime")
		fallback  = flag.Float64("default-util", 0, "utilisation assumed for cells with no feed data")
		feed      = flag.Bool("stdin-feed", false, "read 'cellID utilisation' lines from stdin")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	table := &utilTable{util: make(map[string]float64), fallback: *fallback}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg, nil)
	// Seed per process so span IDs from multiple daemons never collide
	// when their logs are stitched together.
	events := eventlog.NewRing(0, int64(os.Getpid()), eventlog.SinceStart(nil), eventRingSize)
	backend := &permit.Backend{
		Utilization: table.get,
		Threshold:   *threshold,
		TTL:         *ttl,
		Metrics:     permit.NewMetrics(reg),
		Events:      events,
		Tracer:      tracer,
	}

	if *feed {
		// Process-lifetime reader: it dies with stdin at daemon exit and
		// has nothing to join.
		go func() { //3golvet:allow goroleak — intentional process-lifetime stdin feed
			sc := bufio.NewScanner(os.Stdin)
			for sc.Scan() {
				fields := strings.Fields(sc.Text())
				if len(fields) != 2 {
					continue
				}
				u, err := strconv.ParseFloat(fields[1], 64)
				if err != nil || u < 0 {
					continue
				}
				table.set(fields[0], u)
			}
		}()
	}

	// Periodic stats line so operators can watch grant/deny rates.
	go func() {
		for range time.Tick(30 * time.Second) {
			g, d := backend.Stats()
			log.Printf("3golpermitd: %d grants, %d denials", g, d)
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/permit", backend)
	mux.Handle("/debug/metrics", obs.Handler(reg))
	mux.Handle("/debug/spans", obs.SpansHandler(tracer))
	mux.Handle("/debug/events", eventlog.Handler(events))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	log.Printf("3golpermitd: serving /permit and /debug/metrics on %s (threshold %.2f, ttl %v)",
		*listen, *threshold, *ttl)
	log.Fatal(http.ListenAndServe(*listen, mux))
}
