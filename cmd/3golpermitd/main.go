// Command 3golpermitd is the operator-side permit backend of the
// network-integrated deployment (§2.4): devices ask it for permission to
// onload, and it grants a time-limited permit only while the device's
// serving cell sits below the utilisation acceptance threshold.
//
// The daemon hosts a cell-sharded permit plane (-shards N): each shard
// owns a stable-hash slice of the cell ID space with its own decision
// counters and metrics registry, and the built-in router serves both the
// classic GET /permit and the batch POST /permits/batch. /debug/metrics
// is the shard-merged dump (byte-identical regardless of shard count);
// /debug/shards shows the per-shard split.
//
// The production interface to the 3G monitoring system is a utilisation
// feed; this daemon accepts one on stdin as "cellID utilisation" lines
// (or runs with a static default), so an operator can pipe their
// monitoring export straight in:
//
//	monitoring-export | 3golpermitd -listen :7300 -threshold 0.7 -ttl 3m
//
// With -deny-unknown the plane fails closed: cells absent from the feed
// report utilisation 1.0 and are never granted, so a monitoring gap
// cannot silently become a grant-everything policy.
//
// With -wal <dir> the plane is durable: every grant-state change is
// appended to a per-shard, checksummed write-ahead log (with periodic
// snapshot compaction) before the decision is served, so a crashed
// daemon replays back to exactly the grant state it died with — modulo
// the TTL expiries that genuinely lapsed while it was down. Recovery
// stats appear per shard on /debug/shards.
//
// Devices (3gold -backend http://host:7300 -cell <id>) then gate their
// proxies and beacons on the permit endpoints. On SIGINT/SIGTERM the
// daemon stops accepting connections, drains in-flight requests for up
// to -drain, and flushes a final snapshot (even when the drain times
// out) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"threegol/internal/obs"
	"threegol/internal/obs/eventlog"
	"threegol/internal/permit"
	"threegol/internal/permitplane"
)

// eventRingSize bounds the backend's in-memory flight recorder; the
// /debug/events endpoint serves the most recent events.
const eventRingSize = 4096

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7300", "listen address")
		shards      = flag.Int("shards", 1, "permit-plane shards (each owns a stable-hash slice of the cell ID space)")
		threshold   = flag.Float64("threshold", permit.DefaultThreshold, "utilisation acceptance threshold")
		ttl         = flag.Duration("ttl", permit.DefaultTTL, "permit lifetime")
		fallback    = flag.Float64("default-util", 0, "utilisation assumed for cells with no feed data")
		denyUnknown = flag.Bool("deny-unknown", false, "fail closed: deny cells absent from the feed instead of assuming -default-util")
		feed        = flag.Bool("stdin-feed", false, "read 'cellID utilisation' lines from stdin")
		drain       = flag.Duration("drain", 5*time.Second, "in-flight request drain timeout on shutdown")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		walDir      = flag.String("wal", "", "durability root: per-shard write-ahead logs under this directory (empty = grant state dies with the process)")
		snapEvery   = flag.Int("snapshot-every", permitplane.DefaultSnapshotEvery, "WAL records per shard between snapshot compactions")
	)
	flag.Parse()

	table := permitplane.NewUtilTable(*fallback, *denyUnknown)
	// Process-level registry: span timings live here, outside the
	// shard registries, so the merged metrics dump stays byte-identical
	// across shard counts.
	procReg := obs.NewRegistry()
	tracer := obs.NewTracer(procReg, nil)
	// Seed per process so span IDs from multiple daemons never collide
	// when their logs are stitched together.
	events := eventlog.NewRing(0, int64(os.Getpid()), eventlog.SinceStart(nil), eventRingSize)
	cfg := permitplane.Config{
		Shards:        *shards,
		Threshold:     *threshold,
		TTL:           *ttl,
		Utilization:   table.Get,
		Events:        events,
		Tracer:        tracer,
		WALDir:        *walDir,
		SnapshotEvery: *snapEvery,
	}
	var plane *permitplane.Sharded
	if *walDir != "" {
		t0 := time.Now() //3golvet:allow wallclock — reporting real recovery wall time
		var err error
		plane, err = permitplane.NewDurable(cfg)
		if err != nil {
			log.Fatalf("3golpermitd: %v", err)
		}
		var recovered, expired int
		for _, st := range plane.Status() {
			if st.Recovery != nil {
				recovered += st.Recovery.RecoveredGrants
				expired += st.Recovery.ExpiredOnRecovery
			}
		}
		log.Printf("3golpermitd: recovered %d grants from %s in %v (%d expired during outage)",
			recovered, *walDir, time.Since(t0).Round(time.Millisecond), expired) //3golvet:allow wallclock — reporting real recovery wall time
	} else {
		plane = permitplane.New(cfg)
	}

	if *feed {
		// Process-lifetime reader: it dies with stdin at daemon exit and
		// has nothing to join. Unlike the old silent loop, malformed
		// lines and read failures land in the log.
		go func() { //3golvet:allow goroleak — intentional process-lifetime stdin feed
			if err := permitplane.ReadFeed(os.Stdin, table, log.Printf); err != nil {
				log.Printf("3golpermitd: %v (feed updates stopped; serving last-known utilisation)", err)
			}
		}()
	}

	// Periodic stats line so operators can watch grant/deny rates.
	go func() {
		for range time.Tick(30 * time.Second) {
			g, d := plane.Stats()
			log.Printf("3golpermitd: %d grants, %d denials", g, d)
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/permit", plane)
	mux.Handle("/permits/batch", plane)
	mux.Handle("/debug/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The shard-merged dump plus the process-level span timings.
		dst := plane.MergedRegistry()
		obs.NewTracer(dst, nil)
		dst.Merge(procReg)
		obs.Handler(dst).ServeHTTP(w, r)
	}))
	mux.Handle("/debug/shards", plane.StatusHandler())
	mux.Handle("/debug/spans", obs.SpansHandler(tracer))
	mux.Handle("/debug/events", eventlog.Handler(events))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: *listen, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("3golpermitd: serving /permit, /permits/batch and /debug/metrics on %s (%d shards, threshold %.2f, ttl %v)",
		*listen, plane.Shards(), *threshold, *ttl)

	select {
	case err := <-errc:
		log.Fatalf("3golpermitd: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("3golpermitd: shutting down, draining in-flight requests (up to %v)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("3golpermitd: drain incomplete, closing: %v", err)
		_ = srv.Close()
	}
	// Flush the final snapshot on BOTH shutdown paths: a timed-out drain
	// still closed every listener, and losing the last snapshot because
	// one request overstayed the drain window would make the slow path
	// also the lossy one.
	if err := plane.Close(); err != nil {
		log.Printf("3golpermitd: closing grant stores: %v", err)
	} else if plane.Durable() {
		log.Printf("3golpermitd: final grant snapshot flushed to %s", *walDir)
	}
	g, d := plane.Stats()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("3golpermitd: server: %v", err)
	}
	log.Printf("3golpermitd: stopped (%d grants, %d denials served)", g, d)
}
