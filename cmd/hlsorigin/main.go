// Command hlsorigin serves a synthetic HLS video-on-demand asset — the
// well-provisioned origin server of the paper's evaluation (§5). The
// default asset is the paper's test video: Apple's bipbop sample
// re-timed to 200 s with its four original qualities.
//
//	hlsorigin -listen :8080 -duration 200 -segment 10
//
// then play http://host:8080/bipbop/master.m3u8.
package main

import (
	"flag"
	"log"
	"net/http"

	"threegol/internal/hls"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8080", "listen address")
		name     = flag.String("name", "bipbop", "video name (URL prefix)")
		duration = flag.Float64("duration", 200, "video duration in seconds")
		segment  = flag.Float64("segment", 10, "segment duration in seconds")
	)
	flag.Parse()

	video := hls.Video{
		Name:       *name,
		Duration:   *duration,
		SegmentDur: *segment,
		Qualities:  hls.BipBopQualities,
	}
	origin := hls.NewOrigin(video)
	log.Printf("hlsorigin: serving /%s/master.m3u8 on %s (%d segments, %d qualities)",
		*name, *listen, video.NumSegments(), len(video.Qualities))
	log.Fatal(http.ListenAndServe(*listen, origin))
}
