// Command 3golvet is the repository's static analyzer. It enforces the
// determinism and concurrency invariants the trace-driven evaluation
// depends on: no wall-clock reads or global randomness in simulation
// packages, disciplined mutex usage, no locks held across I/O, context
// propagation through the data-plane API, deterministic map iteration in
// merge-reduce, joinable goroutines, and no silently dropped errors.
//
// Usage:
//
//	go run ./cmd/3golvet ./...                          # whole module
//	go run ./cmd/3golvet -baseline lint/baseline.json ./...
//	go run ./cmd/3golvet -json vet-report.json ./...    # CI artifact
//	go run ./cmd/3golvet -sarif vet.sarif ./...         # CI annotations
//	go run ./cmd/3golvet -fix ./...                     # apply autofixes
//	go run ./cmd/3golvet -baseline lint/baseline.json -writebaseline ./...
//
// A pattern ending in /... is walked recursively (testdata, vendor and
// hidden directories are skipped). Findings print one per line as
//
//	file:line: [analyzer] message
//
// With -baseline, findings matching the committed baseline are frozen
// debt: they stay visible in reports but do not fail the run. New
// findings fail with exit status 1 (the ratchet only tightens); baseline
// entries with no matching finding are reported as shrinkable. Without
// -baseline every finding is new. See internal/lint for the analyzer
// catalogue and the //3golvet:allow suppression directive.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"threegol/internal/lint"
)

func main() {
	var (
		jsonPath      = flag.String("json", "", "write a JSON report to `file` (\"-\" for stdout)")
		sarifPath     = flag.String("sarif", "", "write a SARIF 2.1.0 log to `file` (\"-\" for stdout)")
		baselinePath  = flag.String("baseline", "", "apply the ratchet against baseline `file` (findings in it are frozen, new ones fail)")
		writeBaseline = flag.Bool("writebaseline", false, "regenerate the -baseline file from the current findings and exit")
		fix           = flag.Bool("fix", false, "apply mechanical autofixes (defer-unlock insertion, stale allow removal), then re-analyze")
	)
	flag.Parse()
	start := time.Now() //3golvet:allow wallclock — elapsed_seconds in the report measures real tool latency

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	modRoot, modPath, err := findModule(".")
	if err != nil {
		fatal(err)
	}

	prog, err := load(dirs, modRoot, modPath)
	if err != nil {
		fatal(err)
	}
	diags := prog.Run(lint.Analyzers())

	var fixed []string
	if *fix {
		fixed, err = lint.Fix(prog, diags)
		if err != nil {
			fatal(err)
		}
		for _, path := range fixed {
			fmt.Printf("3golvet: fixed %s\n", path)
		}
		if len(fixed) > 0 {
			// Re-analyze from a clean load so the report reflects the
			// fixed tree.
			if prog, err = load(dirs, modRoot, modPath); err != nil {
				fatal(err)
			}
			diags = prog.Run(lint.Analyzers())
		}
	}

	if *writeBaseline {
		if *baselinePath == "" {
			fatal(fmt.Errorf("-writebaseline requires -baseline <file>"))
		}
		b := lint.NewBaseline(diags)
		if err := b.Write(*baselinePath); err != nil {
			fatal(err)
		}
		fmt.Printf("3golvet: wrote %s (%d entr%s freezing %d finding(s))\n",
			*baselinePath, len(b.Entries), plural(len(b.Entries), "y", "ies"), len(diags))
		return
	}

	fresh, baselined := diags, []lint.Diagnostic(nil)
	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		fresh, baselined, stale = b.Apply(diags)
	}

	report := &lint.Report{
		Tool:           "3golvet",
		ElapsedSeconds: time.Since(start).Seconds(), //3golvet:allow wallclock — elapsed_seconds in the report measures real tool latency
		Packages:       countTargets(prog),
		Fresh:          lint.Findings(fresh),
		Baselined:      lint.Findings(baselined),
		StaleBaseline:  stale,
		Fixed:          fixed,
	}
	if stale == nil {
		report.StaleBaseline = []lint.BaselineEntry{}
	}
	if err := emit(*jsonPath, func(w io.Writer) error { return report.WriteJSON(w) }); err != nil {
		fatal(err)
	}
	if err := emit(*sarifPath, func(w io.Writer) error { return report.WriteSARIF(w, lint.Analyzers()) }); err != nil {
		fatal(err)
	}

	for _, d := range fresh {
		fmt.Println(d)
	}
	if len(baselined) > 0 {
		fmt.Fprintf(os.Stderr, "3golvet: %d baselined finding(s) tolerated (frozen debt)\n", len(baselined))
	}
	if len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "3golvet: %d stale baseline entr%s — debt shrank; run -writebaseline to tighten the ratchet\n",
			len(stale), plural(len(stale), "y", "ies"))
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "3golvet: %d new finding(s)\n", len(fresh))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "3golvet: %v\n", err)
	os.Exit(2)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// emit runs write against the named file, "-" meaning stdout and ""
// meaning skip.
func emit(path string, write func(io.Writer) error) error {
	switch path {
	case "":
		return nil
	case "-":
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// load parses the target directories, pulls in the module-local
// dependency closure as DepOnly packages (type checking and
// cross-package call facts need it; their own findings are not
// reported), and type-checks the result.
func load(dirs []string, modRoot, modPath string) (*lint.Program, error) {
	prog := lint.NewProgram()
	for _, dir := range dirs {
		ip, err := importPath(modRoot, modPath, dir)
		if err != nil {
			return nil, err
		}
		if _, err := prog.LoadDir(dir, ip); err != nil {
			return nil, err
		}
	}
	if err := loadDepClosure(prog, modRoot, modPath); err != nil {
		return nil, err
	}
	prog.TypeCheck()
	return prog, nil
}

// loadDepClosure repeatedly loads module-local imports of loaded
// packages until the closure is complete, marking them DepOnly.
func loadDepClosure(prog *lint.Program, modRoot, modPath string) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	for {
		missing := missingModuleImports(prog, modPath)
		if len(missing) == 0 {
			return nil
		}
		for _, ip := range missing {
			dir := filepath.Join(modRoot, filepath.FromSlash(strings.TrimPrefix(ip, modPath+"/")))
			if rel, err := filepath.Rel(cwd, dir); err == nil && !strings.HasPrefix(rel, "..") {
				dir = rel // keep report paths repo-relative
			}
			pkg, err := prog.LoadDir(dir, ip)
			if err != nil {
				if os.IsNotExist(err) {
					continue // import of a deleted package: let go/types report it
				}
				return err
			}
			if pkg != nil {
				pkg.DepOnly = true
			}
		}
	}
}

// missingModuleImports lists module-local import paths referenced by
// loaded files but not yet loaded.
func missingModuleImports(prog *lint.Program, modPath string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, spec := range f.AST.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if ip != modPath && !strings.HasPrefix(ip, modPath+"/") {
					continue
				}
				if seen[ip] || prog.Package(ip) != nil {
					continue
				}
				seen[ip] = true
				out = append(out, ip)
			}
		}
	}
	sort.Strings(out)
	return out
}

// countTargets counts the non-DepOnly packages analyzed.
func countTargets(prog *lint.Program) int {
	n := 0
	for _, pkg := range prog.Packages {
		if !pkg.DepOnly {
			n++
		}
	}
	return n
}

// expandPatterns turns package patterns into a sorted, deduplicated list
// of directories containing Go files.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "...":
			pat = "./..."
			fallthrough
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Clean(strings.TrimSuffix(pat, "/..."))
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					(strings.HasPrefix(name, ".") && name != ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			info, err := os.Stat(pat)
			if err != nil {
				return nil, err
			}
			if !info.IsDir() {
				return nil, fmt.Errorf("%s is not a directory", pat)
			}
			add(pat)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// findModule locates the enclosing go.mod and returns its directory and
// module path.
func findModule(start string) (root, path string, err error) {
	dir, err := filepath.Abs(start)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if f, err := os.Open(gomod); err == nil {
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module line", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", start)
		}
		dir = parent
	}
}

// importPath maps a directory to its import path within the module, so
// cross-package indexes match the import specs in source files.
func importPath(modRoot, modPath, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}
