// Command 3golvet is the repository's static analyzer. It enforces the
// determinism and concurrency invariants the trace-driven evaluation
// depends on: no wall-clock reads or global randomness in simulation
// packages, disciplined mutex usage, and no silently dropped errors.
//
// Usage:
//
//	go run ./cmd/3golvet ./...          # whole module
//	go run ./cmd/3golvet ./internal/netem ./internal/core/...
//
// A pattern ending in /... is walked recursively (testdata, vendor and
// hidden directories are skipped). Findings print one per line as
//
//	file:line: [analyzer] message
//
// and the exit status is 1 when any finding survives suppression via the
// //3golvet:allow <analyzer> directive; see internal/lint for the
// analyzer catalogue.
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"threegol/internal/lint"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expandPatterns(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "3golvet: %v\n", err)
		os.Exit(2)
	}
	modRoot, modPath, err := findModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "3golvet: %v\n", err)
		os.Exit(2)
	}

	prog := lint.NewProgram()
	for _, dir := range dirs {
		ip, err := importPath(modRoot, modPath, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "3golvet: %v\n", err)
			os.Exit(2)
		}
		if _, err := prog.LoadDir(dir, ip); err != nil {
			fmt.Fprintf(os.Stderr, "3golvet: %v\n", err)
			os.Exit(2)
		}
	}

	diags := prog.Run(lint.Analyzers())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "3golvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// expandPatterns turns package patterns into a sorted, deduplicated list
// of directories containing Go files.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "...":
			pat = "./..."
			fallthrough
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Clean(strings.TrimSuffix(pat, "/..."))
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					(strings.HasPrefix(name, ".") && name != ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			info, err := os.Stat(pat)
			if err != nil {
				return nil, err
			}
			if !info.IsDir() {
				return nil, fmt.Errorf("%s is not a directory", pat)
			}
			add(pat)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// findModule locates the enclosing go.mod and returns its directory and
// module path.
func findModule(start string) (root, path string, err error) {
	dir, err := filepath.Abs(start)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if f, err := os.Open(gomod); err == nil {
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module line", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", start)
		}
		dir = parent
	}
}

// importPath maps a directory to its import path within the module, so
// cross-package indexes match the import specs in source files.
func importPath(modRoot, modPath, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}
