// Chaos mode: instead of an in-process plane, the harness spawns a
// real 3golpermitd with a WAL, SIGKILLs it mid-load, replays the WAL
// itself while the daemon is dead, restarts the daemon on the same
// port, and cross-checks the daemon's recovered state hash against its
// own replay — the process-level proof that the durability layer's
// "replay equals pre-kill state modulo TTL expiries" contract holds
// under real concurrent load, not just in unit tests.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"syscall"
	"time"

	"threegol/internal/clock"
	"threegol/internal/permitplane"
	"threegol/internal/permitplane/wal"
)

// Client phases for the phase-split error counters: errors before the
// kill mean the harness (or daemon) is broken, errors during the
// outage are the point of the exercise, errors after recovery mean the
// restarted daemon is not actually serving.
const (
	phaseBeforeKill = iota
	phaseOutage
	phaseRecovered
	phaseCount
)

// chaosResult is the chaos sub-object of the JSON report.
type chaosResult struct {
	// KillAtWallSeconds is when the SIGKILL landed, relative to load
	// start.
	KillAtWallSeconds float64 `json:"kill_at_wall_seconds"`
	// OutageSeconds is kill → restarted daemon answering HTTP again.
	OutageSeconds float64 `json:"outage_seconds"`
	// RecoverySeconds is the slowest shard's boot-time WAL replay (the
	// daemon's own measurement, from /debug/shards).
	RecoverySeconds float64 `json:"recovery_seconds"`
	// PreKillGrants is what the harness's independent replay of the
	// dead daemon's WAL reconstructed; RecoveredGrants is what the
	// restarted daemon reports (PreKill minus outage TTL expiries).
	PreKillGrants     int `json:"pre_kill_grants"`
	RecoveredGrants   int `json:"recovered_grants"`
	ExpiredOnRecovery int `json:"expired_on_recovery"`
	// ReplayedRecords counts WAL records the independent replay applied
	// across all shards.
	ReplayedRecords int64 `json:"replayed_records"`
	// ShardsVerified counts shards whose post-restart state hash
	// matched the independent replay exactly. A mismatch aborts the run
	// before this report exists, so on success this equals the shard
	// count — recorded anyway so the report is self-describing.
	ShardsVerified int `json:"shards_verified"`
	// Phase-split client counters.
	ErrorsBeforeKill       int64 `json:"errors_before_kill"`
	ErrorsDuringOutage     int64 `json:"errors_during_outage"`
	ErrorsAfterRecovery    int64 `json:"errors_after_recovery"`
	DecisionsAfterRecovery int64 `json:"decisions_after_recovery"`
}

// eventWriter appends chaos lifecycle events as JSONL — the artifact a
// CI run uploads so a failed chaos stage can be reconstructed offline.
// A nil *eventWriter is a no-op.
type eventWriter struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
	clk clock.Clock
	t0  time.Time
}

func newEventWriter(path string, clk clock.Clock) (*eventWriter, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("creating chaos eventlog %s: %w", path, err)
	}
	return &eventWriter{f: f, enc: json.NewEncoder(f), clk: clk, t0: clk.Now()}, nil
}

func (e *eventWriter) emit(event string, fields map[string]any) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	line := map[string]any{
		"wall_seconds": e.clk.Since(e.t0).Seconds(),
		"event":        event,
	}
	for k, v := range fields {
		line[k] = v
	}
	if err := e.enc.Encode(line); err != nil {
		log.Printf("3golpermitload: chaos eventlog: %v", err)
	}
}

func (e *eventWriter) close() {
	if e == nil {
		return
	}
	e.f.Close()
}

// spawnPermitd starts a real 3golpermitd on addr with the harness's
// cell population fed over stdin, and leaves stdin open so the feed
// goroutine stays alive for the daemon's lifetime.
func spawnPermitd(o options, addr string) (*exec.Cmd, io.WriteCloser, error) {
	cmd := exec.Command(o.permitd,
		"-listen", addr,
		"-shards", strconv.Itoa(o.shards),
		"-threshold", strconv.FormatFloat(o.threshold, 'f', -1, 64),
		"-ttl", o.ttl.String(),
		"-wal", o.walRoot,
		"-stdin-feed",
		"-deny-unknown",
	)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, nil, fmt.Errorf("opening %s stdin: %w", o.permitd, err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, nil, fmt.Errorf("starting %s: %w", o.permitd, err)
	}
	for i := 0; i < o.cells; i++ {
		if _, err := fmt.Fprintf(stdin, "%s %g\n", cellName(i), cellUtil(i)); err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, nil, fmt.Errorf("feeding %s: %w", o.permitd, err)
		}
	}
	return cmd, stdin, nil
}

// shardRecovery is the /debug/shards slice element the harness needs.
type shardRecovery struct {
	Shard    int                   `json:"shard"`
	Recovery *permitplane.Recovery `json:"recovery"`
}

func fetchShards(url string) ([]shardRecovery, error) {
	resp, err := http.Get(url + "/debug/shards")
	if err != nil {
		return nil, fmt.Errorf("fetching %s/debug/shards: %w", url, err)
	}
	defer resp.Body.Close()
	var out []shardRecovery
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding /debug/shards: %w", err)
	}
	return out, nil
}

// runChaos is the -chaos entry point: real daemon, real kill, real
// recovery, with the load fleet running throughout.
func runChaos(o options) (*result, error) {
	if o.backend != "" {
		return nil, errors.New("-chaos spawns its own daemon; drop -backend")
	}
	if o.permitd == "" {
		return nil, errors.New("-chaos requires -permitd <path to a 3golpermitd binary>")
	}
	if o.killAfter <= 0 || o.killAfter >= 1 {
		return nil, fmt.Errorf("-kill-after %v outside (0,1)", o.killAfter)
	}
	if o.walRoot == "" {
		dir, err := os.MkdirTemp("", "3gol-chaos-wal-*")
		if err != nil {
			return nil, fmt.Errorf("creating WAL temp dir: %w", err)
		}
		defer os.RemoveAll(dir)
		o.walRoot = dir
	}
	clk := clock.System
	ev, err := newEventWriter(o.eventsPath, clk)
	if err != nil {
		return nil, err
	}
	defer ev.close()

	// A fixed port, so the restarted daemon comes back where the fleet
	// expects it — client recovery without reconfiguration is part of
	// what the chaos run proves.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("picking a port: %w", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	backendURL := "http://" + addr

	cmd, stdin, err := spawnPermitd(o, addr)
	if err != nil {
		return nil, err
	}
	defer stdin.Close()
	ev.emit("daemon_start", map[string]any{"pid": cmd.Process.Pid, "addr": addr, "wal": o.walRoot})
	if err := waitReady(clk, backendURL, 10*time.Second); err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, err
	}

	transport := &http.Transport{
		MaxIdleConns:        o.workers * 2,
		MaxIdleConnsPerHost: o.workers * 2,
	}
	defer transport.CloseIdleConnections()
	f := newFleet(o, backendURL, transport)
	fleetDone := make(chan struct{})
	t0 := clk.Now()
	go func() {
		f.run()
		close(fleetDone)
	}()

	// Let the fleet build up real grant state, then pull the plug.
	wallDuration := time.Duration(o.duration / o.timescale * float64(time.Second))
	clk.Sleep(time.Duration(o.killAfter * float64(wallDuration)))
	killAt := clk.Since(t0)
	// Flip the phase BEFORE the kill so every error the kill causes —
	// including RPCs already in flight — lands in the outage bucket.
	f.phase.Store(phaseOutage)
	ev.emit("kill", map[string]any{"pid": cmd.Process.Pid, "signal": "SIGKILL"})
	if err := cmd.Process.Kill(); err != nil {
		return nil, fmt.Errorf("killing daemon: %w", err)
	}
	cmd.Wait()
	stdin.Close()
	tKill := clk.Now()
	log.Printf("3golpermitload: chaos — SIGKILLed daemon pid %d at %.2fs", cmd.Process.Pid, killAt.Seconds())

	// Independent replay while the daemon is dead and the WAL
	// quiescent: this is the pre-kill state the recovery must match.
	states := make([]*wal.State, o.shards)
	var replayed int64
	preKill := 0
	for i := range states {
		st, stats, err := wal.Replay(permitplane.ShardWALDir(o.walRoot, i))
		if err != nil {
			return nil, fmt.Errorf("chaos: independent replay of shard %d: %w", i, err)
		}
		states[i] = st
		replayed += stats.RecordsReplayed
		preKill += len(st.Grants)
		ev.emit("replayed", map[string]any{
			"shard": i, "grants": len(st.Grants), "seq": st.Seq,
			"records": stats.RecordsReplayed, "torn_bytes": stats.TornBytes,
		})
	}

	// Hold the daemon down for a real outage window. The replay above
	// and the restart itself take single-digit milliseconds, which can
	// slip between two client batch flushes — the fleet would never
	// notice the daemon died, and an outage nobody observed proves
	// nothing about degraded-mode behaviour.
	if left := o.downtime - clk.Since(tKill); left > 0 {
		clk.Sleep(left)
	}

	// Restart on the same address against the same WAL.
	cmd2, stdin2, err := spawnPermitd(o, addr)
	if err != nil {
		return nil, fmt.Errorf("chaos: restarting daemon: %w", err)
	}
	defer stdin2.Close()
	ev.emit("daemon_restart", map[string]any{"pid": cmd2.Process.Pid})
	if err := waitReady(clk, backendURL, 10*time.Second); err != nil {
		cmd2.Process.Kill()
		cmd2.Wait()
		return nil, fmt.Errorf("chaos: restarted daemon never came up: %w", err)
	}
	outage := clk.Since(tKill)
	f.phase.Store(phaseRecovered)
	ev.emit("recovered", map[string]any{"outage_seconds": outage.Seconds()})
	log.Printf("3golpermitload: chaos — daemon back after %.3fs outage", outage.Seconds())

	// Cross-check every shard: the daemon's recovered state hash must
	// equal our replay after filtering the TTL expiries that lapsed at
	// the daemon's recovery instant. The daemon folded one OpExpire
	// record per lapsed grant through Apply (advancing its sequence
	// number and expiry counter), so the mirror is ExpireDue + the same
	// seq and counter bumps.
	shards, err := fetchShards(backendURL)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	ch := &chaosResult{
		KillAtWallSeconds: killAt.Seconds(),
		OutageSeconds:     outage.Seconds(),
		PreKillGrants:     preKill,
		ReplayedRecords:   replayed,
	}
	for _, ss := range shards {
		rec := ss.Recovery
		if rec == nil {
			return nil, fmt.Errorf("chaos: shard %d reports no recovery stats after restart", ss.Shard)
		}
		if ss.Shard < 0 || ss.Shard >= len(states) {
			return nil, fmt.Errorf("chaos: shard index %d outside the %d-shard plane", ss.Shard, len(states))
		}
		st := states[ss.Shard]
		expired := st.ExpireDue(rec.RecoveredAt)
		st.Seq += uint64(len(expired))
		st.TotalExpiries += uint64(len(expired))
		if h := permitplane.HashState(st); h != rec.StateHash {
			return nil, fmt.Errorf("chaos: shard %d diverged across kill -9: independent replay %s, daemon recovered %s (%d grants vs %d)",
				ss.Shard, h, rec.StateHash, len(st.Grants), rec.RecoveredGrants)
		}
		ch.ShardsVerified++
		ch.RecoveredGrants += rec.RecoveredGrants
		ch.ExpiredOnRecovery += rec.ExpiredOnRecovery
		if rec.Seconds > ch.RecoverySeconds {
			ch.RecoverySeconds = rec.Seconds
		}
	}
	ev.emit("verified", map[string]any{
		"shards": ch.ShardsVerified, "recovered_grants": ch.RecoveredGrants,
		"expired_on_recovery": ch.ExpiredOnRecovery, "recovery_seconds": ch.RecoverySeconds,
	})
	log.Printf("3golpermitload: chaos — %d shards verified, %d grants recovered (%d expired during outage), slowest replay %.3fs",
		ch.ShardsVerified, ch.RecoveredGrants, ch.ExpiredOnRecovery, ch.RecoverySeconds)

	// Let the load finish against the recovered daemon, then stop it
	// gracefully (its own drain path flushes the final snapshot).
	<-fleetDone
	cmd2.Process.Signal(syscall.SIGTERM)
	cmd2.Wait()
	ev.emit("daemon_stop", map[string]any{"pid": cmd2.Process.Pid})

	for _, ws := range f.workers {
		ch.ErrorsBeforeKill += ws.phaseErrors[phaseBeforeKill]
		ch.ErrorsDuringOutage += ws.phaseErrors[phaseOutage]
		ch.ErrorsAfterRecovery += ws.phaseErrors[phaseRecovered]
		ch.DecisionsAfterRecovery += ws.phaseDecisions[phaseRecovered]
	}
	res := f.report(o)
	res.Chaos = ch
	return res, nil
}

// checkChaosSmoke asserts the chaos invariants the CI smoke stage
// relies on. Outage-phase errors are expected (they prove the kill
// landed mid-load); everything else must look like a healthy run that
// survived one.
func checkChaosSmoke(r *result) error {
	ch := r.Chaos
	switch {
	case ch == nil:
		return errors.New("no chaos report")
	case r.Grants+r.Denials != r.Decisions:
		return fmt.Errorf("grants %d + denials %d != decisions %d (a client outcome was double-counted or lost)",
			r.Grants, r.Denials, r.Decisions)
	case ch.ErrorsBeforeKill != 0:
		return fmt.Errorf("%d client errors before the kill (the daemon was unhealthy before chaos started)", ch.ErrorsBeforeKill)
	case ch.ErrorsDuringOutage == 0:
		return errors.New("no client errors during the outage — the kill missed the load window")
	case ch.DecisionsAfterRecovery == 0:
		return errors.New("no decisions after recovery — clients never came back")
	case ch.RecoveredGrants == 0:
		return errors.New("no grants survived the kill — the WAL recovered nothing")
	case ch.ShardsVerified != r.Shards:
		return fmt.Errorf("%d of %d shard state hashes verified", ch.ShardsVerified, r.Shards)
	}
	return nil
}
