// Command 3golpermitload drives a permit plane with a fleet of
// simulated devices over real HTTP — the load harness that sizes the
// production backend of §2.4 ("the scalability requirements on such a
// service are rather low") against an actual six-digit client count
// instead of an assertion.
//
// Each simulated client follows the device-side cache protocol: an
// immediate first refresh, then TTL-jittered proactive refreshes while
// granted (permitplane.JitterFrac — the same stream the real cache
// draws from), a 5 s recheck while denied and a 2 s back-off after
// errors. Client time runs on a virtual clock accelerated by
// -timescale, so a 100k-client hour of permit traffic fits in seconds
// of wall time while every request still crosses a real TCP connection.
//
// With no -backend the harness spins up an in-process sharded plane
// (-shards) listening on a loopback port, with cells cell-0..cell-N-1
// whose utilisation cycles 0.0,0.1,…,0.9 — at the default 0.7
// threshold, 70% of the population holds a permit. (The decision-level
// grant ratio in the report is lower: denied clients recheck every 5
// virtual seconds while granted ones only return near TTL expiry, so
// denials dominate the request stream — exactly the asymmetry a real
// deployment sees.) Point -backend at a running 3golpermitd to
// load-test a real deployment instead (feed it the same cell names;
// scripts/bench.sh does exactly that).
//
//	3golpermitload -clients 100000 -json BENCH_permit.json
//	3golpermitload -smoke           # small run, asserts invariants
package main

import (
	"container/heap"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"threegol/internal/clock"
	"threegol/internal/permit"
	"threegol/internal/permitplane"
	"threegol/internal/stats"
)

// latency sketch bounds: [0, 2s) in 2000 bins → 1 ms resolution.
const (
	latencyLo   = 0
	latencyHi   = 2.0
	latencyBins = 2000
)

type options struct {
	backend   string
	clients   int
	cells     int
	shards    int
	threshold float64
	ttl       time.Duration
	duration  float64 // virtual seconds
	timescale float64
	batch     int
	workers   int
	seed      int64
	jsonPath  string
	smoke     bool

	// chaos mode (see chaos.go)
	chaos      bool
	permitd    string
	walRoot    string
	eventsPath string
	killAfter  float64
	downtime   time.Duration
}

// result is the harness's JSON report — the shape scripts/bench.sh
// stores as BENCH_permit.json.
type result struct {
	Backend         string  `json:"backend"`
	Clients         int     `json:"clients"`
	Shards          int     `json:"shards,omitempty"`
	VirtualSeconds  float64 `json:"virtual_seconds"`
	Timescale       float64 `json:"timescale"`
	WallSeconds     float64 `json:"wall_seconds"`
	Decisions       int64   `json:"decisions"`
	Grants          int64   `json:"grants"`
	Denials         int64   `json:"denials"`
	Errors          int64   `json:"errors"`
	GrantRatio      float64 `json:"grant_ratio"`
	Batches         int64   `json:"batches"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	ClientsPerSec   float64 `json:"clients_per_sec"`
	LatencyP50Ms    float64 `json:"latency_p50_ms"`
	LatencyP99Ms    float64 `json:"latency_p99_ms"`
	LatencyMeanMs   float64 `json:"latency_mean_ms"`

	// Chaos carries the kill/recovery measurements of a -chaos run.
	Chaos *chaosResult `json:"chaos,omitempty"`
}

func main() {
	var o options
	flag.StringVar(&o.backend, "backend", "", "backend base URL; empty spins up an in-process sharded plane")
	flag.IntVar(&o.clients, "clients", 100000, "simulated clients")
	flag.IntVar(&o.cells, "cells", 256, "distinct cells (cell-0..cell-N-1)")
	flag.IntVar(&o.shards, "shards", 4, "shards of the in-process plane (ignored with -backend)")
	flag.Float64Var(&o.threshold, "threshold", permit.DefaultThreshold, "in-process acceptance threshold")
	flag.DurationVar(&o.ttl, "ttl", permit.DefaultTTL, "permit TTL the clients assume (and the in-process plane grants)")
	flag.Float64Var(&o.duration, "duration", 600, "virtual seconds of client behaviour to simulate")
	flag.Float64Var(&o.timescale, "timescale", 60, "virtual seconds per wall second")
	flag.IntVar(&o.batch, "batch", 512, "max permit requests per batch RPC")
	flag.IntVar(&o.workers, "workers", 32, "concurrent RPC workers")
	flag.Int64Var(&o.seed, "seed", 1, "jitter seed")
	flag.StringVar(&o.jsonPath, "json", "", "write the result report to this file")
	flag.BoolVar(&o.smoke, "smoke", false, "small fast run asserting invariants (overrides -clients/-duration)")
	flag.BoolVar(&o.chaos, "chaos", false, "spawn a real 3golpermitd, SIGKILL it mid-load, verify WAL recovery (requires -permitd)")
	flag.StringVar(&o.permitd, "permitd", "", "path to the 3golpermitd binary a -chaos run spawns")
	flag.StringVar(&o.walRoot, "wal", "", "WAL root for the -chaos daemon (empty = a temp dir, removed afterwards)")
	flag.StringVar(&o.eventsPath, "events", "", "write chaos lifecycle events to this file as JSONL")
	flag.Float64Var(&o.killAfter, "kill-after", 0.4, "fraction of the run's wall time after which -chaos kills the daemon")
	flag.DurationVar(&o.downtime, "downtime", 750*time.Millisecond, "minimum time -chaos holds the daemon down before restarting it")
	flag.Parse()

	if o.smoke {
		o.clients = 2000
		o.cells = 64
		o.duration = 240
		o.timescale = 120
		if o.chaos {
			// A chaos cycle needs enough wall time for the kill, the
			// independent replay and a recovered-phase tail: 10 s.
			o.duration = 600
			o.timescale = 60
		}
	}
	if o.clients <= 0 || o.batch <= 0 || o.workers <= 0 || o.timescale <= 0 || o.duration <= 0 {
		log.Fatal("3golpermitload: -clients, -batch, -workers, -timescale and -duration must be positive")
	}

	var res *result
	var err error
	if o.chaos {
		res, err = runChaos(o)
	} else {
		res, err = run(o)
	}
	if err != nil {
		log.Fatalf("3golpermitload: %v", err)
	}
	log.Printf("3golpermitload: %d clients, %d decisions (%d grants, %d denials, %d errors) in %.1fs wall — grant ratio %.3f, p50 %.2fms, p99 %.2fms",
		res.Clients, res.Decisions, res.Grants, res.Denials, res.Errors,
		res.WallSeconds, res.GrantRatio, res.LatencyP50Ms, res.LatencyP99Ms)

	if o.jsonPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatalf("3golpermitload: encoding report: %v", err)
		}
		if err := os.WriteFile(o.jsonPath, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("3golpermitload: writing %s: %v", o.jsonPath, err)
		}
	}
	if o.smoke {
		check := checkSmoke
		if o.chaos {
			check = checkChaosSmoke
		}
		if err := check(res); err != nil {
			log.Fatalf("3golpermitload: smoke failed: %v", err)
		}
		log.Print("3golpermitload: smoke ok")
	}
}

// checkSmoke asserts the invariants the CI smoke stage relies on.
func checkSmoke(r *result) error {
	switch {
	case r.Errors != 0:
		return fmt.Errorf("%d request errors", r.Errors)
	case r.Grants+r.Denials != r.Decisions:
		return fmt.Errorf("grants %d + denials %d != decisions %d", r.Grants, r.Denials, r.Decisions)
	case r.Decisions < int64(r.Clients):
		return fmt.Errorf("only %d decisions for %d clients (not every client was served)", r.Decisions, r.Clients)
	case r.GrantRatio <= 0 || r.GrantRatio >= 1:
		return fmt.Errorf("grant ratio %.3f outside (0,1); the mixed-utilisation cells should split decisions", r.GrantRatio)
	}
	return nil
}

// cellName returns the i-th cell's name; utilisation cycles 0.0..0.9 so
// a 0.7 threshold grants 70% of a uniformly-spread population.
func cellName(i int) string { return fmt.Sprintf("cell-%d", i) }

func cellUtil(i int) float64 { return float64(i%10) / 10 }

// waitReady polls an external backend until it answers HTTP (any
// status counts — a 400 from /permit proves the daemon is up), so
// scripts can background 3golpermitd and start the harness immediately.
func waitReady(clk clock.Clock, url string, timeout time.Duration) error {
	hc := &http.Client{Timeout: time.Second}
	deadline := clk.Now().Add(timeout)
	for {
		resp, err := hc.Get(url + "/permit")
		if err == nil {
			resp.Body.Close()
			return nil
		}
		if clk.Now().After(deadline) {
			return fmt.Errorf("backend %s not reachable after %v: %w", url, timeout, err)
		}
		clk.Sleep(100 * time.Millisecond)
	}
}

func run(o options) (*result, error) {
	backendURL := o.backend
	inProcess := backendURL == ""
	if inProcess {
		table := permitplane.NewUtilTable(0, true)
		for i := 0; i < o.cells; i++ {
			table.Set(cellName(i), cellUtil(i))
		}
		plane := permitplane.New(permitplane.Config{
			Shards:      o.shards,
			Threshold:   o.threshold,
			TTL:         o.ttl,
			Utilization: table.Get,
		})
		mux := http.NewServeMux()
		mux.Handle("/", plane)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("listening for the in-process plane: %w", err)
		}
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }() //3golvet:allow goroleak — harness-lifetime server, closed below
		defer srv.Close()
		backendURL = "http://" + ln.Addr().String()
		log.Printf("3golpermitload: in-process plane with %d shards on %s", o.shards, backendURL)
	} else if err := waitReady(clock.System, backendURL, 10*time.Second); err != nil {
		return nil, err
	}

	// One shared transport sized for the worker pool, so the harness
	// measures the backend rather than its own connection churn.
	transport := &http.Transport{
		MaxIdleConns:        o.workers * 2,
		MaxIdleConnsPerHost: o.workers * 2,
	}
	defer transport.CloseIdleConnections()

	f := newFleet(o, backendURL, transport)
	f.run()

	res := f.report(o)
	if !inProcess {
		res.Shards = 0
	}
	return res, nil
}

// client is one simulated device's scheduling state, owned by the
// dispatcher goroutine.
type client struct {
	name  string
	cell  string
	due   float64 // next refresh, virtual seconds
	draws uint64  // jitter stream position
}

// clientHeap is a min-heap of client indices by due time.
type clientHeap struct {
	due []float64
	idx []int
}

func (h *clientHeap) Len() int           { return len(h.idx) }
func (h *clientHeap) Less(i, j int) bool { return h.due[h.idx[i]] < h.due[h.idx[j]] }
func (h *clientHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *clientHeap) Push(x any)         { h.idx = append(h.idx, x.(int)) }
func (h *clientHeap) Pop() any {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// job is one batch RPC's worth of due clients.
type job struct {
	indices []int
	reqs    []permitplane.PermitRequest
}

// outcome reports one client's decision back to the dispatcher.
// next is the delay, in virtual seconds, before the client's next
// refresh — the dispatcher adds it to the current virtual time.
type outcome struct {
	index   int
	granted bool
	err     bool
}

// done carries one finished job's outcomes.
type done struct {
	outcomes []outcome
}

// workerStats is one worker's private tallies, merged in worker order
// at the end of the run. The phase-split counters attribute each
// outcome to the chaos phase in effect when its RPC completed (all
// phaseBeforeKill outside -chaos).
type workerStats struct {
	grants, denials, errors int64
	batches                 int64
	phaseErrors             [phaseCount]int64
	phaseDecisions          [phaseCount]int64
	latency                 *stats.Sketch
}

// fleet runs the simulated client population against the backend.
type fleet struct {
	o       options
	clients []client
	pending clientHeap
	jobs    chan job
	results chan done
	workers []*workerStats
	bc      *permitplane.BatchClient
	clk     clock.Clock
	start   time.Time
	wall    time.Duration
	// phase is the chaos phase (phaseBeforeKill/Outage/Recovered) the
	// orchestrator advances; workers read it to phase-split outcomes.
	phase atomic.Int32
}

func newFleet(o options, backendURL string, transport *http.Transport) *fleet {
	f := &fleet{
		o:       o,
		clients: make([]client, o.clients),
		jobs:    make(chan job),
		// Buffered to the worst-case in-flight job count so workers
		// never block reporting and the dispatcher never deadlocks.
		results: make(chan done, o.clients/o.batch+o.workers+1),
		workers: make([]*workerStats, o.workers),
		bc: &permitplane.BatchClient{
			BackendURL: backendURL,
			HTTPClient: &http.Client{Transport: transport, Timeout: 10 * time.Second},
		},
		clk: clock.System,
	}
	f.pending.due = make([]float64, o.clients)
	for i := range f.clients {
		f.clients[i] = client{
			name: fmt.Sprintf("c%d", i),
			cell: cellName(i % o.cells),
		}
		// Every client is due at t=0: the synchronised first wave is the
		// worst case the jittered cache exists to absorb.
		heap.Push(&f.pending, i)
	}
	for w := range f.workers {
		f.workers[w] = &workerStats{latency: stats.NewSketch(latencyLo, latencyHi, latencyBins)}
	}
	return f
}

// virtualNow converts elapsed wall time to virtual seconds.
func (f *fleet) virtualNow() float64 {
	return f.clk.Since(f.start).Seconds() * f.o.timescale
}

// nextDelay computes a client's next refresh delay in virtual seconds,
// mirroring the device cache's schedule: jittered proactive refresh
// while granted, short recheck while denied, brief back-off on error.
func (f *fleet) nextDelay(c *client, out outcome) float64 {
	switch {
	case out.err:
		return 2
	case out.granted:
		frac := permitplane.DefaultRefreshLo +
			(permitplane.DefaultRefreshHi-permitplane.DefaultRefreshLo)*
				permitplane.JitterFrac(f.o.seed, c.name, c.draws)
		c.draws++
		return frac * f.o.ttl.Seconds()
	default:
		return 5
	}
}

func (f *fleet) run() {
	var wg sync.WaitGroup
	for w := 0; w < f.o.workers; w++ {
		wg.Add(1)
		go f.worker(&wg, f.workers[w])
	}

	f.start = f.clk.Now()
	inflight := 0
	for {
		now := f.virtualNow()
		if now >= f.o.duration {
			break
		}
		// Dispatch every due client in batches.
		dispatched := false
		for f.pending.Len() > 0 && f.pending.due[f.pending.idx[0]] <= now {
			j := job{}
			for f.pending.Len() > 0 && f.pending.due[f.pending.idx[0]] <= now && len(j.indices) < f.o.batch {
				i := heap.Pop(&f.pending).(int)
				j.indices = append(j.indices, i)
				j.reqs = append(j.reqs, permitplane.PermitRequest{
					Device: f.clients[i].name, Cell: f.clients[i].cell,
				})
			}
			f.jobs <- j
			inflight++
			dispatched = true
		}
		// Fold finished jobs back into the schedule.
		drained := f.drain(&inflight, false)
		if !dispatched && !drained {
			f.clk.Sleep(time.Millisecond)
		}
	}
	// Let in-flight RPCs finish and count, then stop the workers.
	for inflight > 0 {
		f.drain(&inflight, true)
	}
	close(f.jobs)
	wg.Wait()
	f.wall = f.clk.Since(f.start)
}

// drain folds completed jobs back into the heap; block waits for at
// least one completion.
func (f *fleet) drain(inflight *int, block bool) bool {
	drained := false
	for {
		var d done
		if block && !drained {
			d = <-f.results
		} else {
			select {
			case d = <-f.results:
			default:
				return drained
			}
		}
		*inflight--
		now := f.virtualNow()
		for _, out := range d.outcomes {
			c := &f.clients[out.index]
			f.pending.due[out.index] = now + f.nextDelay(c, out)
			heap.Push(&f.pending, out.index)
		}
		drained = true
		if block {
			block = false
		}
	}
}

// worker issues batch RPCs until the jobs channel closes.
func (f *fleet) worker(wg *sync.WaitGroup, ws *workerStats) {
	defer wg.Done()
	for j := range f.jobs {
		t0 := f.clk.Now()
		decisions, err := f.bc.Batch(context.Background(), j.reqs)
		ws.latency.Add(f.clk.Since(t0).Seconds())
		ws.batches++
		// Attribute at completion time: an RPC in flight when the chaos
		// kill lands fails after the phase flip, so its error counts
		// against the outage, not the healthy window.
		phase := f.phase.Load()
		d := done{outcomes: make([]outcome, len(j.indices))}
		for k, i := range j.indices {
			out := outcome{index: i}
			switch {
			case err != nil:
				out.err = true
				ws.errors++
				ws.phaseErrors[phase]++
			case decisions[k].Granted:
				out.granted = true
				ws.grants++
				ws.phaseDecisions[phase]++
			default:
				ws.denials++
				ws.phaseDecisions[phase]++
			}
			d.outcomes[k] = out
		}
		f.results <- d
	}
}

// report merges worker tallies (in worker order — the deterministic
// merge the stats.Sketch contract guarantees) into the final result.
func (f *fleet) report(o options) *result {
	lat := stats.NewSketch(latencyLo, latencyHi, latencyBins)
	var grants, denials, errors, batches int64
	for _, ws := range f.workers {
		lat.Merge(ws.latency)
		grants += ws.grants
		denials += ws.denials
		errors += ws.errors
		batches += ws.batches
	}
	decisions := grants + denials
	res := &result{
		Backend:        f.bc.BackendURL,
		Clients:        o.clients,
		Shards:         o.shards,
		VirtualSeconds: o.duration,
		Timescale:      o.timescale,
		WallSeconds:    f.wall.Seconds(),
		Decisions:      decisions,
		Grants:         grants,
		Denials:        denials,
		Errors:         errors,
		Batches:        batches,
		LatencyP50Ms:   lat.Quantile(0.5) * 1e3,
		LatencyP99Ms:   lat.Quantile(0.99) * 1e3,
		LatencyMeanMs:  lat.Mean() * 1e3,
	}
	if decisions > 0 {
		res.GrantRatio = float64(grants) / float64(decisions)
	}
	if res.WallSeconds > 0 {
		res.DecisionsPerSec = float64(decisions) / res.WallSeconds
		res.ClientsPerSec = res.DecisionsPerSec
	}
	return res
}
