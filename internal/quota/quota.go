// Package quota implements the multi-provider machinery of §6: the
// allowance estimator that converts a user's past cellular usage into a
// safe monthly/daily 3GOL budget, and the on-device usage tracker whose
// remaining allowance A(t) = 3GOLa(t) − U(t) gates advertisement.
//
// The estimator is the paper's:
//
//	F̄u(t)   = (1/τ) Σ_{s=1..τ} Fu(t−s)        (mean free capacity)
//	3GOLa(t) = F̄u(t) − α·σ̄u(t)                 (guarded allowance)
//
// with σ̄u the sample standard deviation of free capacity over the same
// window and α a tunable guard. The paper finds τ=5, α=4 lets ≈65% of
// free capacity be used with expected overrun under one day per month.
package quota

import (
	"fmt"
	"sync"

	"threegol/internal/stats"
)

// Estimator computes the guarded 3GOL allowance from usage history.
type Estimator struct {
	// Tau is the look-back window in months; 0 selects the paper's 5.
	Tau int
	// Alpha is the guard multiplier on the free-capacity standard
	// deviation; 0 selects the paper's 4. (Alpha is never negative.)
	Alpha float64
}

func (e Estimator) tau() int {
	if e.Tau <= 0 {
		return 5
	}
	return e.Tau
}

func (e Estimator) alpha() float64 {
	if e.Alpha <= 0 {
		return 4
	}
	return e.Alpha
}

// MonthlyAllowance returns 3GOLa(t) in bytes given the free capacity
// (cap − usage, bytes) of the τ months preceding t, most recent last.
// Fewer than τ months of history yields a conservative 0 (no onloading
// until enough history accrues). Negative estimates clamp to 0.
func (e Estimator) MonthlyAllowance(freeHistory []float64) float64 {
	tau := e.tau()
	if len(freeHistory) < tau {
		return 0
	}
	window := freeHistory[len(freeHistory)-tau:]
	mean := stats.Mean(window)
	sd := stats.Std(window)
	allowance := mean - e.alpha()*sd
	if allowance < 0 {
		return 0
	}
	return allowance
}

// DailyAllowance divides the monthly allowance into a daily budget (the
// paper's "daily safe volume", computed over a 30-day month).
func (e Estimator) DailyAllowance(freeHistory []float64) float64 {
	return e.MonthlyAllowance(freeHistory) / 30
}

// EvalResult summarises an estimator back-test over a population.
type EvalResult struct {
	// UtilizedFraction is the fraction of truly-free capacity the
	// estimator made available to 3GOL (the paper reports ≈65% at τ=5,
	// α=4).
	UtilizedFraction float64
	// OverrunDaysPerMonth is the expected number of days per user-month
	// on which consuming the allowance would overrun the cap.
	OverrunDaysPerMonth float64
	// Months is the number of user-months evaluated.
	Months int
}

// Evaluate back-tests the estimator over a population's free-capacity
// series: series[u][m] is user u's free capacity (bytes) in month m.
// For every month with at least τ predecessors it compares the granted
// allowance with the month's actual free capacity: allowance beyond the
// actual free capacity is an overrun, prorated into days under uniform
// daily consumption.
func (e Estimator) Evaluate(series [][]float64) EvalResult {
	var usable, free float64
	var overrunDays float64
	months := 0
	tau := e.tau()
	for _, hist := range series {
		for m := tau; m < len(hist); m++ {
			allowance := e.MonthlyAllowance(hist[:m])
			actual := hist[m]
			if actual < 0 {
				actual = 0
			}
			free += actual
			months++
			if allowance <= 0 {
				continue
			}
			if allowance <= actual {
				usable += allowance
				continue
			}
			// Allowance exceeds the month's true free capacity: the user
			// overruns the cap once cumulative 3GOL use passes `actual`.
			// Under uniform daily spend (allowance/30 per day), the
			// overrun covers the final 30·(1−actual/allowance) days.
			usable += actual
			overrunDays += 30 * (1 - actual/allowance)
		}
	}
	res := EvalResult{Months: months}
	if free > 0 {
		res.UtilizedFraction = usable / free
	}
	if months > 0 {
		res.OverrunDaysPerMonth = overrunDays / float64(months)
	}
	return res
}

// Tracker is the on-device daily quota accountant: it holds the daily
// allowance 3GOLa(t)/30 and the bytes already onloaded today, exposing
// A(t) plus the advertisement gate.
type Tracker struct {
	mu        sync.Mutex
	allowance int64 // bytes per day
	used      int64 // bytes used today
	days      int   // days elapsed (for diagnostics)
}

// NewTracker creates a tracker with the given daily allowance in bytes.
func NewTracker(dailyAllowance int64) *Tracker {
	if dailyAllowance < 0 {
		dailyAllowance = 0
	}
	return &Tracker{allowance: dailyAllowance}
}

// Available returns A(t) = allowance − used, floored at 0.
func (t *Tracker) Available() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.used >= t.allowance {
		return 0
	}
	return t.allowance - t.used
}

// ShouldAdvertise reports whether the device may announce itself (A(t) >
// 0) — the discovery.Beacon gate of the multi-provider mode.
func (t *Tracker) ShouldAdvertise() bool { return t.Available() > 0 }

// Use records n onloaded bytes (the proxy.Server OnBytes hook).
func (t *Tracker) Use(n int64) {
	if n <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.used += n
}

// Used reports bytes consumed today.
func (t *Tracker) Used() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.used
}

// StartNewDay resets the daily counter (midnight rollover) and sets a
// possibly updated allowance.
func (t *Tracker) StartNewDay(dailyAllowance int64) {
	if dailyAllowance < 0 {
		dailyAllowance = 0
	}
	t.mu.Lock()
	t.used = 0
	t.allowance = dailyAllowance
	t.days++
	t.mu.Unlock()
}

// String implements fmt.Stringer.
func (t *Tracker) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("quota(%d/%d bytes used)", t.used, t.allowance)
}
