package quota

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"threegol/internal/stats"
)

func TestMonthlyAllowanceFormula(t *testing.T) {
	e := Estimator{Tau: 3, Alpha: 2}
	hist := []float64{100, 200, 300} // mean 200, sd 100
	got := e.MonthlyAllowance(hist)
	want := 200 - 2*100.0
	if got != want {
		t.Errorf("allowance = %v, want %v", got, want)
	}
}

func TestAllowanceClampsAtZero(t *testing.T) {
	e := Estimator{Tau: 2, Alpha: 10}
	if got := e.MonthlyAllowance([]float64{10, 1000}); got != 0 {
		t.Errorf("high-variance allowance = %v, want 0 (guard dominates)", got)
	}
}

func TestAllowanceNeedsHistory(t *testing.T) {
	e := Estimator{} // τ=5
	if got := e.MonthlyAllowance([]float64{100, 100}); got != 0 {
		t.Errorf("allowance with 2 months = %v, want 0", got)
	}
}

func TestAllowanceUsesOnlyLastTauMonths(t *testing.T) {
	e := Estimator{Tau: 2, Alpha: 0.0001}
	// Early garbage months must be ignored.
	got := e.MonthlyAllowance([]float64{1e12, 0, 500, 500})
	if math.Abs(got-500) > 1 {
		t.Errorf("allowance = %v, want ≈500 (window = last 2 months)", got)
	}
}

func TestDailyAllowance(t *testing.T) {
	e := Estimator{Tau: 2, Alpha: 1e-9}
	daily := e.DailyAllowance([]float64{600, 600})
	if math.Abs(daily-20) > 0.01 {
		t.Errorf("daily = %v, want 20 (600/30)", daily)
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	e := Estimator{}
	if e.tau() != 5 || e.alpha() != 4 {
		t.Errorf("defaults τ=%d α=%v, want 5 and 4", e.tau(), e.alpha())
	}
}

// Property: allowance is never negative and never exceeds the window max.
func TestAllowanceBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		hist := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Keep magnitudes physical (bytes per month): summing values
			// near MaxFloat64 overflows the mean, which no real usage
			// series can.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e15 {
				hist = append(hist, math.Abs(x))
			}
		}
		e := Estimator{Tau: 3, Alpha: 1}
		a := e.MonthlyAllowance(hist)
		if a < 0 {
			return false
		}
		if len(hist) >= 3 {
			max := 0.0
			for _, x := range hist[len(hist)-3:] {
				if x > max {
					max = x
				}
			}
			return a <= max+1e-9
		}
		return a == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluateStablePopulation(t *testing.T) {
	// Users with perfectly stable free capacity: sd=0, allowance=mean,
	// so ~100% utilisation and zero overruns.
	series := make([][]float64, 10)
	for u := range series {
		hist := make([]float64, 12)
		for m := range hist {
			hist[m] = 600e6
		}
		series[u] = hist
	}
	e := Estimator{}
	res := e.Evaluate(series)
	if res.UtilizedFraction < 0.99 {
		t.Errorf("stable population utilisation = %v, want ≈1", res.UtilizedFraction)
	}
	if res.OverrunDaysPerMonth != 0 {
		t.Errorf("stable population overruns = %v, want 0", res.OverrunDaysPerMonth)
	}
	if res.Months != 10*(12-5) {
		t.Errorf("months = %d, want 70", res.Months)
	}
}

func TestEvaluateVolatilePopulationTradesUtilisationForSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mkSeries := func() [][]float64 {
		series := make([][]float64, 200)
		for u := range series {
			hist := make([]float64, 18)
			base := 200e6 + rng.Float64()*800e6
			for m := range hist {
				v := base * (0.5 + rng.Float64()) // ±50% monthly wobble
				hist[m] = v
			}
			series[u] = hist
		}
		return series
	}
	series := mkSeries()
	guarded := Estimator{Alpha: 4}.Evaluate(series)
	aggressive := Estimator{Alpha: 0.001}.Evaluate(series)
	if guarded.OverrunDaysPerMonth >= aggressive.OverrunDaysPerMonth {
		t.Errorf("guard α=4 overruns (%v) should be below α≈0 (%v)",
			guarded.OverrunDaysPerMonth, aggressive.OverrunDaysPerMonth)
	}
	if guarded.UtilizedFraction >= aggressive.UtilizedFraction {
		t.Errorf("guard α=4 utilisation (%v) should be below α≈0 (%v)",
			guarded.UtilizedFraction, aggressive.UtilizedFraction)
	}
	if guarded.OverrunDaysPerMonth > 1.5 {
		t.Errorf("α=4 overrun days = %v, want ≲1 (paper's operating point)",
			guarded.OverrunDaysPerMonth)
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker(1000)
	if !tr.ShouldAdvertise() {
		t.Error("fresh tracker should advertise")
	}
	tr.Use(400)
	if got := tr.Available(); got != 600 {
		t.Errorf("Available = %d, want 600", got)
	}
	tr.Use(700) // overshoot
	if got := tr.Available(); got != 0 {
		t.Errorf("Available after overshoot = %d, want 0", got)
	}
	if tr.ShouldAdvertise() {
		t.Error("exhausted tracker must not advertise")
	}
	if tr.Used() != 1100 {
		t.Errorf("Used = %d, want 1100", tr.Used())
	}
	tr.StartNewDay(2000)
	if got := tr.Available(); got != 2000 {
		t.Errorf("Available after rollover = %d, want 2000", got)
	}
	if !tr.ShouldAdvertise() {
		t.Error("tracker should advertise after rollover")
	}
}

func TestTrackerIgnoresNonPositiveUse(t *testing.T) {
	tr := NewTracker(100)
	tr.Use(0)
	tr.Use(-50)
	if tr.Used() != 0 {
		t.Errorf("Used = %d, want 0", tr.Used())
	}
}

func TestTrackerNegativeAllowanceClamps(t *testing.T) {
	tr := NewTracker(-5)
	if tr.Available() != 0 || tr.ShouldAdvertise() {
		t.Error("negative allowance should behave as zero")
	}
	tr.StartNewDay(-1)
	if tr.Available() != 0 {
		t.Error("negative rollover allowance should clamp to zero")
	}
}

func TestPaperOperatingPointUtilisation(t *testing.T) {
	// A population shaped like the paper's MNO dataset (§6): most users
	// far below cap with moderate month-to-month variation. τ=5, α=4
	// should land utilisation in the broad vicinity of the paper's ≈65%.
	rng := rand.New(rand.NewSource(7))
	dist := stats.LogNormalFromMoments(600e6, 250e6)
	series := make([][]float64, 500)
	for u := range series {
		base := dist.Sample(rng)
		hist := make([]float64, 18)
		for m := range hist {
			wobble := stats.TruncNormal{Mean: 1, Std: 0.12, Lo: 0.6, Hi: 1.4}.Sample(rng)
			hist[m] = base * wobble
		}
		series[u] = hist
	}
	res := Estimator{}.Evaluate(series)
	if res.UtilizedFraction < 0.4 || res.UtilizedFraction > 0.9 {
		t.Errorf("utilisation = %v, want within [0.4, 0.9] (paper ≈0.65)", res.UtilizedFraction)
	}
	if res.OverrunDaysPerMonth > 1 {
		t.Errorf("overrun days/month = %v, want <1 (paper's finding)", res.OverrunDaysPerMonth)
	}
}

// --- edge cases around the history boundary ---

func TestAllowanceExactlyAtTauBoundary(t *testing.T) {
	e := Estimator{Tau: 5, Alpha: 4}
	flat := []float64{600, 600, 600, 600, 600}
	// τ−1 months: conservative zero, no onloading yet.
	if got := e.MonthlyAllowance(flat[:4]); got != 0 {
		t.Errorf("allowance with τ−1 months = %v, want 0", got)
	}
	// Exactly τ months: the formula engages (sd=0, so allowance = mean).
	if got := e.MonthlyAllowance(flat); got != 600 {
		t.Errorf("allowance with exactly τ months = %v, want 600", got)
	}
	if got := e.DailyAllowance(flat[:4]); got != 0 {
		t.Errorf("daily allowance with τ−1 months = %v, want 0", got)
	}
}

func TestAllowanceEmptyAndNilHistory(t *testing.T) {
	e := Estimator{}
	if got := e.MonthlyAllowance(nil); got != 0 {
		t.Errorf("allowance with nil history = %v, want 0", got)
	}
	if got := e.MonthlyAllowance([]float64{}); got != 0 {
		t.Errorf("allowance with empty history = %v, want 0", got)
	}
}

// A zero-usage user's free capacity equals the cap every month: the
// estimator grants the whole cap (sd=0 ⇒ no guard deduction) and the
// daily budget is cap/30 — the allowance can never exceed the cap
// boundary itself.
func TestZeroUsageUserGetsWholeCapAndNoMore(t *testing.T) {
	const cap = 500 * 1024 * 1024
	hist := make([]float64, 12)
	for i := range hist {
		hist[i] = cap
	}
	e := Estimator{Tau: 5, Alpha: 4}
	if got := e.MonthlyAllowance(hist); got != cap {
		t.Errorf("zero-usage monthly allowance = %v, want the %v cap", got, float64(cap))
	}
	if got := e.DailyAllowance(hist); math.Abs(got-cap/30.0) > 1e-6 {
		t.Errorf("zero-usage daily allowance = %v, want cap/30 = %v", got, cap/30.0)
	}
}

// Months where usage exceeded the cap surface as zero free capacity, not
// negative: the allowance clamps at the cap boundary from below too.
func TestAllowanceWithOverCapMonths(t *testing.T) {
	e := Estimator{Tau: 3, Alpha: 1}
	// Two exhausted months drag the mean below α·σ̄ — clamps to 0.
	if got := e.MonthlyAllowance([]float64{0, 0, 300}); got != 0 {
		t.Errorf("allowance after exhausted months = %v, want 0", got)
	}
	// All-exhausted history: nothing to grant.
	if got := e.MonthlyAllowance([]float64{0, 0, 0}); got != 0 {
		t.Errorf("allowance with no free capacity ever = %v, want 0", got)
	}
}

// The tracker at exact exhaustion: using precisely the allowance flips
// the advertisement gate off, with no wrap-around below zero.
func TestTrackerExactExhaustionBoundary(t *testing.T) {
	tr := NewTracker(1000)
	tr.Use(999)
	if !tr.ShouldAdvertise() {
		t.Error("1 byte left: should still advertise")
	}
	tr.Use(1)
	if tr.Available() != 0 || tr.ShouldAdvertise() {
		t.Errorf("exact exhaustion: available = %d, advertise = %v, want 0/false",
			tr.Available(), tr.ShouldAdvertise())
	}
	tr.Use(1) // past the boundary: still floored at 0
	if tr.Available() != 0 {
		t.Errorf("over-use available = %d, want 0", tr.Available())
	}
	tr.StartNewDay(1000)
	if tr.Available() != 1000 || tr.Used() != 0 {
		t.Errorf("rollover: available = %d used = %d, want 1000/0", tr.Available(), tr.Used())
	}
}
