package quota_test

import (
	"fmt"

	"threegol/internal/quota"
)

// The paper's §6 estimator on a user whose free capacity has been stable:
// the guard barely bites and almost the whole mean is granted.
func ExampleEstimator_MonthlyAllowance() {
	e := quota.Estimator{} // paper defaults: τ=5, α=4
	freeMB := []float64{600, 640, 590, 610, 620}
	fmt.Printf("%.0f MB this month\n", e.MonthlyAllowance(freeMB))
	// Output: 535 MB this month
}

// The on-device tracker gates advertisement the moment the daily
// allowance runs out.
func ExampleTracker() {
	t := quota.NewTracker(20 << 20) // 20 MB/day
	t.Use(15 << 20)
	fmt.Println("advertising:", t.ShouldAdvertise())
	t.Use(6 << 20)
	fmt.Println("advertising:", t.ShouldAdvertise())
	t.StartNewDay(20 << 20)
	fmt.Println("advertising:", t.ShouldAdvertise())
	// Output:
	// advertising: true
	// advertising: false
	// advertising: true
}
