package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	c := New()
	var got []int
	c.Schedule(3, func() { got = append(got, 3) })
	c.Schedule(1, func() { got = append(got, 1) })
	c.Schedule(2, func() { got = append(got, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 3 {
		t.Errorf("Now = %v, want 3", c.Now())
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	c := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(5, func() { got = append(got, i) })
	}
	c.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	c := New()
	var at float64 = -1
	c.Schedule(2, func() {
		c.After(3, func() { at = c.Now() })
	})
	c.Run()
	if at != 5 {
		t.Errorf("After fired at %v, want 5", at)
	}
}

func TestTimerStop(t *testing.T) {
	c := New()
	fired := false
	tm := c.Schedule(1, func() { fired = true })
	if !tm.Stop() {
		t.Error("first Stop should report true")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	c.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if c.Now() != 0 {
		t.Errorf("clock advanced to %v after all-cancelled queue", c.Now())
	}
}

func TestStopAfterFire(t *testing.T) {
	c := New()
	tm := c.Schedule(1, func() {})
	c.Run()
	if tm.Stop() {
		t.Error("Stop after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	c := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		c.Schedule(at, func() { fired = append(fired, at) })
	}
	c.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	if c.Now() != 2.5 {
		t.Errorf("Now = %v, want 2.5", c.Now())
	}
	c.RunUntil(10)
	if len(fired) != 4 {
		t.Errorf("fired %v, want all four", fired)
	}
	if c.Now() != 10 {
		t.Errorf("Now = %v, want 10", c.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := New()
	c.Schedule(5, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	c.Schedule(1, func() {})
}

func TestRunUntilPastPanics(t *testing.T) {
	c := New()
	c.Schedule(5, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Error("RunUntil in the past did not panic")
		}
	}()
	c.RunUntil(1)
}

func TestPending(t *testing.T) {
	c := New()
	t1 := c.Schedule(1, func() {})
	c.Schedule(2, func() {})
	if c.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", c.Pending())
	}
	t1.Stop()
	if c.Pending() != 1 {
		t.Errorf("Pending after cancel = %d, want 1", c.Pending())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	c := New()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			c.After(1, chain)
		}
	}
	c.Schedule(0, chain)
	c.Run()
	if count != 5 {
		t.Errorf("chain ran %d times, want 5", count)
	}
	if c.Now() != 4 {
		t.Errorf("Now = %v, want 4", c.Now())
	}
}

// Property: with random schedule times, events always fire in
// non-decreasing time order and the clock ends at the max time.
func TestRandomScheduleOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		var times []float64
		var fired []float64
		for i := 0; i < int(n%50)+1; i++ {
			at := rng.Float64() * 100
			times = append(times, at)
			at2 := at
			c.Schedule(at2, func() { fired = append(fired, at2) })
		}
		c.Run()
		if len(fired) != len(times) {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		sort.Float64s(times)
		return c.Now() == times[len(times)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
