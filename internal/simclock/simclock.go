// Package simclock implements the discrete-event virtual clock that drives
// every fluid simulation in the repository (cellular channel model, DSLAM
// trace replay, scheduler analyses). Virtual time is a float64 number of
// seconds; nothing ever sleeps, so simulated days run in milliseconds of
// wall time.
package simclock

import (
	"container/heap"
	"fmt"
)

// Clock is a virtual-time event scheduler. The zero value is not usable;
// construct with New. Clock is not safe for concurrent use: simulations
// are single-goroutine by design (determinism is a project requirement).
type Clock struct {
	now   float64
	queue eventQueue
	seq   int64 // tie-break so same-time events run in schedule order
}

// New returns a Clock positioned at time 0.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Timer is a handle to a scheduled event; it allows cancellation.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the event had still been
// pending (false means it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Schedule registers fn to run at the absolute virtual time at. Scheduling
// in the past panics: a fluid simulation that produces such an event has a
// logic error that silently reordering would hide.
func (c *Clock) Schedule(at float64, fn func()) *Timer {
	if at < c.now {
		panic(fmt.Sprintf("simclock: schedule at %v before now %v", at, c.now))
	}
	ev := &event{at: at, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d seconds from now.
func (c *Clock) After(d float64, fn func()) *Timer {
	return c.Schedule(c.now+d, fn)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event ran (false means the queue was empty).
func (c *Clock) Step() bool {
	for c.queue.Len() > 0 {
		ev := heap.Pop(&c.queue).(*event)
		if ev.cancelled {
			continue
		}
		c.now = ev.at
		ev.fired = true
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to
// exactly t (even if no event lands there).
func (c *Clock) RunUntil(t float64) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: RunUntil(%v) before now %v", t, c.now))
	}
	for {
		ev := c.queue.peekPending()
		if ev == nil || ev.at > t {
			break
		}
		c.Step()
	}
	c.now = t
}

// Pending reports the number of not-yet-cancelled events in the queue.
func (c *Clock) Pending() int {
	n := 0
	for _, ev := range c.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

type event struct {
	at        float64
	seq       int64
	fn        func()
	index     int
	cancelled bool
	fired     bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// peekPending returns the earliest non-cancelled event without removing
// it, lazily discarding cancelled heap tops.
func (q *eventQueue) peekPending() *event {
	for q.Len() > 0 {
		if (*q)[0].cancelled {
			heap.Pop(q)
			continue
		}
		return (*q)[0]
	}
	return nil
}
