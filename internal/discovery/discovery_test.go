package discovery

import (
	"net"
	"sync/atomic"
	"testing"
	"time"
)

func fixedAnnounce(name, addr string) func() (Announcement, bool) {
	return func() (Announcement, bool) {
		return Announcement{Name: name, ProxyAddr: addr, AllowanceBytes: 1 << 20}, true
	}
}

func TestBeaconAndBrowser(t *testing.T) {
	br := &Browser{}
	addr, err := br.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	b := &Beacon{Target: addr, Announce: fixedAnnounce("ph1", "10.0.0.2:8080"), Interval: 20 * time.Millisecond}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	devs := br.WaitFor(1, 2*time.Second)
	if len(devs) != 1 {
		t.Fatalf("devices = %d, want 1", len(devs))
	}
	if devs[0].Name != "ph1" || devs[0].ProxyAddr != "10.0.0.2:8080" {
		t.Errorf("announcement = %+v", devs[0])
	}
	if devs[0].AllowanceBytes != 1<<20 {
		t.Errorf("allowance = %d", devs[0].AllowanceBytes)
	}
}

func TestMultipleDevicesFormAdmissibleSet(t *testing.T) {
	br := &Browser{}
	addr, err := br.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	for _, name := range []string{"ph1", "ph2", "ph3"} {
		b := &Beacon{Target: addr, Announce: fixedAnnounce(name, name+":1"), Interval: 20 * time.Millisecond}
		if err := b.Start(); err != nil {
			t.Fatal(err)
		}
		defer b.Stop()
	}
	devs := br.WaitFor(3, 2*time.Second)
	if len(devs) != 3 {
		t.Fatalf("admissible set = %d devices, want 3", len(devs))
	}
}

func TestSilentBeaconNeverAppears(t *testing.T) {
	br := &Browser{}
	addr, err := br.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	b := &Beacon{
		Target:   addr,
		Announce: func() (Announcement, bool) { return Announcement{}, false },
		Interval: 10 * time.Millisecond,
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	time.Sleep(100 * time.Millisecond)
	if devs := br.Devices(); len(devs) != 0 {
		t.Errorf("gated device appeared: %+v", devs)
	}
}

func TestEntryExpiresAfterTTL(t *testing.T) {
	br := &Browser{TTL: 80 * time.Millisecond}
	addr, err := br.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	var silent atomic.Bool
	b := &Beacon{
		Target: addr,
		Announce: func() (Announcement, bool) {
			if silent.Load() {
				return Announcement{}, false
			}
			return Announcement{Name: "ph1", ProxyAddr: "x:1"}, true
		},
		Interval: 15 * time.Millisecond,
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	if devs := br.WaitFor(1, 2*time.Second); len(devs) != 1 {
		t.Fatal("device never appeared")
	}
	// Revoke: device goes quiet (permit lost); entry must expire.
	silent.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(br.Devices()) == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("entry did not expire after beacon went silent")
}

func TestBrowserIgnoresMalformedDatagrams(t *testing.T) {
	br := &Browser{}
	addr, err := br.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	udpAddr, _ := net.ResolveUDPAddr("udp", addr)
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("not json"))
	conn.Write([]byte(`{"proxy_addr":"x"}`)) // missing name
	time.Sleep(50 * time.Millisecond)
	if devs := br.Devices(); len(devs) != 0 {
		t.Errorf("malformed datagrams created entries: %+v", devs)
	}
}

func TestBeaconStartErrors(t *testing.T) {
	b := &Beacon{Target: "127.0.0.1:1"}
	if err := b.Start(); err == nil {
		b.Stop()
		t.Error("missing Announce accepted")
	}
	b2 := &Beacon{Target: "://bad", Announce: fixedAnnounce("x", "y")}
	if err := b2.Start(); err == nil {
		b2.Stop()
		t.Error("bad target accepted")
	}
}

func TestBeaconDoubleStopSafe(t *testing.T) {
	br := &Browser{}
	addr, _ := br.Listen("127.0.0.1:0")
	defer br.Close()
	b := &Beacon{Target: addr, Announce: fixedAnnounce("x", "y")}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	b.Stop()
	b.Stop() // must not panic or hang
}

func TestBeaconRestartAfterStop(t *testing.T) {
	br := &Browser{}
	addr, _ := br.Listen("127.0.0.1:0")
	defer br.Close()
	b := &Beacon{Target: addr, Announce: fixedAnnounce("x", "y"), Interval: 10 * time.Millisecond}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	b.Stop()
	if err := b.Start(); err != nil {
		t.Fatalf("restart failed: %v", err)
	}
	defer b.Stop()
	if devs := br.WaitFor(1, 2*time.Second); len(devs) != 1 {
		t.Error("restarted beacon not visible")
	}
}

func TestRefreshUpdatesAllowance(t *testing.T) {
	br := &Browser{}
	addr, _ := br.Listen("127.0.0.1:0")
	defer br.Close()
	var allowance atomic.Int64
	allowance.Store(100)
	b := &Beacon{
		Target: addr,
		Announce: func() (Announcement, bool) {
			return Announcement{Name: "ph1", ProxyAddr: "x:1", AllowanceBytes: allowance.Load()}, true
		},
		Interval: 15 * time.Millisecond,
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	br.WaitFor(1, 2*time.Second)
	allowance.Store(42)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		devs := br.Devices()
		if len(devs) == 1 && devs[0].AllowanceBytes == 42 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("refreshed allowance never observed")
}
