package discovery

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"threegol/internal/obs"
)

func fixedAnnounce(name, addr string) func() (Announcement, bool) {
	return func() (Announcement, bool) {
		return Announcement{Name: name, ProxyAddr: addr, AllowanceBytes: 1 << 20}, true
	}
}

func TestBeaconAndBrowser(t *testing.T) {
	br := &Browser{}
	addr, err := br.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	b := &Beacon{Target: addr, Announce: fixedAnnounce("ph1", "10.0.0.2:8080"), Interval: 20 * time.Millisecond}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	devs := br.WaitFor(1, 2*time.Second)
	if len(devs) != 1 {
		t.Fatalf("devices = %d, want 1", len(devs))
	}
	if devs[0].Name != "ph1" || devs[0].ProxyAddr != "10.0.0.2:8080" {
		t.Errorf("announcement = %+v", devs[0])
	}
	if devs[0].AllowanceBytes != 1<<20 {
		t.Errorf("allowance = %d", devs[0].AllowanceBytes)
	}
}

func TestMultipleDevicesFormAdmissibleSet(t *testing.T) {
	br := &Browser{}
	addr, err := br.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	for _, name := range []string{"ph1", "ph2", "ph3"} {
		b := &Beacon{Target: addr, Announce: fixedAnnounce(name, name+":1"), Interval: 20 * time.Millisecond}
		if err := b.Start(); err != nil {
			t.Fatal(err)
		}
		defer b.Stop()
	}
	devs := br.WaitFor(3, 2*time.Second)
	if len(devs) != 3 {
		t.Fatalf("admissible set = %d devices, want 3", len(devs))
	}
}

func TestSilentBeaconNeverAppears(t *testing.T) {
	br := &Browser{}
	addr, err := br.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	b := &Beacon{
		Target:   addr,
		Announce: func() (Announcement, bool) { return Announcement{}, false },
		Interval: 10 * time.Millisecond,
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	time.Sleep(100 * time.Millisecond)
	if devs := br.Devices(); len(devs) != 0 {
		t.Errorf("gated device appeared: %+v", devs)
	}
}

func TestEntryExpiresAfterTTL(t *testing.T) {
	br := &Browser{TTL: 80 * time.Millisecond}
	addr, err := br.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	var silent atomic.Bool
	b := &Beacon{
		Target: addr,
		Announce: func() (Announcement, bool) {
			if silent.Load() {
				return Announcement{}, false
			}
			return Announcement{Name: "ph1", ProxyAddr: "x:1"}, true
		},
		Interval: 15 * time.Millisecond,
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	if devs := br.WaitFor(1, 2*time.Second); len(devs) != 1 {
		t.Fatal("device never appeared")
	}
	// Revoke: device goes quiet (permit lost); entry must expire.
	silent.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(br.Devices()) == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("entry did not expire after beacon went silent")
}

func TestBrowserIgnoresMalformedDatagrams(t *testing.T) {
	br := &Browser{}
	addr, err := br.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	udpAddr, _ := net.ResolveUDPAddr("udp", addr)
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("not json"))
	conn.Write([]byte(`{"proxy_addr":"x"}`)) // missing name
	time.Sleep(50 * time.Millisecond)
	if devs := br.Devices(); len(devs) != 0 {
		t.Errorf("malformed datagrams created entries: %+v", devs)
	}
}

func TestBeaconStartErrors(t *testing.T) {
	b := &Beacon{Target: "127.0.0.1:1"}
	if err := b.Start(); err == nil {
		b.Stop()
		t.Error("missing Announce accepted")
	}
	b2 := &Beacon{Target: "://bad", Announce: fixedAnnounce("x", "y")}
	if err := b2.Start(); err == nil {
		b2.Stop()
		t.Error("bad target accepted")
	}
}

func TestBeaconDoubleStopSafe(t *testing.T) {
	br := &Browser{}
	addr, _ := br.Listen("127.0.0.1:0")
	defer br.Close()
	b := &Beacon{Target: addr, Announce: fixedAnnounce("x", "y")}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	b.Stop()
	b.Stop() // must not panic or hang
}

func TestBeaconRestartAfterStop(t *testing.T) {
	br := &Browser{}
	addr, _ := br.Listen("127.0.0.1:0")
	defer br.Close()
	b := &Beacon{Target: addr, Announce: fixedAnnounce("x", "y"), Interval: 10 * time.Millisecond}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	b.Stop()
	if err := b.Start(); err != nil {
		t.Fatalf("restart failed: %v", err)
	}
	defer b.Stop()
	if devs := br.WaitFor(1, 2*time.Second); len(devs) != 1 {
		t.Error("restarted beacon not visible")
	}
}

func TestRefreshUpdatesAllowance(t *testing.T) {
	br := &Browser{}
	addr, _ := br.Listen("127.0.0.1:0")
	defer br.Close()
	var allowance atomic.Int64
	allowance.Store(100)
	b := &Beacon{
		Target: addr,
		Announce: func() (Announcement, bool) {
			return Announcement{Name: "ph1", ProxyAddr: "x:1", AllowanceBytes: allowance.Load()}, true
		},
		Interval: 15 * time.Millisecond,
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	br.WaitFor(1, 2*time.Second)
	allowance.Store(42)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		devs := br.Devices()
		if len(devs) == 1 && devs[0].AllowanceBytes == 42 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("refreshed allowance never observed")
}

// fakeClock is a settable clock.Clock for TTL-boundary tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *fakeClock) Sleep(d time.Duration) { c.advance(d) }

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBrowserFlapAroundTTLBoundary(t *testing.T) {
	// A device flapping around the TTL boundary must not oscillate Φ
	// within one sweep (the cutoff is read once per Devices call), and
	// each genuine expiry must bump discovery_entries_expired_total
	// exactly once — not once per subsequent sweep.
	clk := &fakeClock{t: time.Unix(1000, 0)}
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	br := &Browser{TTL: time.Second, Metrics: m, Clock: clk}
	br.init(nil)
	expired := func() int64 { return m.Expired.With().Value() }

	ann := func(name string) Announcement {
		return Announcement{Name: name, ProxyAddr: name + ":8080"}
	}
	br.record(ann("kitchen"))
	br.record(ann("hall"))

	// Just inside the TTL: both visible, nothing expired.
	clk.advance(time.Second - time.Millisecond)
	if got := len(br.Devices()); got != 2 {
		t.Fatalf("Φ = %d devices inside TTL; want 2", got)
	}
	if got := expired(); got != 0 {
		t.Fatalf("expired = %d before any TTL lapse", got)
	}

	// hall refreshes at the boundary; kitchen stays silent and crosses
	// it. One sweep: hall in, kitchen out, exactly one expiry.
	br.record(ann("hall"))
	clk.advance(2 * time.Millisecond)
	devs := br.Devices()
	if len(devs) != 1 || devs[0].Name != "hall" {
		t.Fatalf("Φ after kitchen lapsed = %+v; want just hall", devs)
	}
	if got := expired(); got != 1 {
		t.Fatalf("expired = %d after one genuine lapse; want exactly 1", got)
	}

	// Re-sweeping must not recount the already-deleted entry.
	if got := len(br.Devices()); got != 1 {
		t.Fatalf("second sweep Φ = %d; want 1", got)
	}
	if got := expired(); got != 1 {
		t.Fatalf("expired = %d after re-sweep; a dead entry was double-counted", got)
	}

	// kitchen flaps back in...
	br.record(ann("kitchen"))
	if got := len(br.Devices()); got != 2 {
		t.Fatalf("Φ after kitchen returned = %d; want 2", got)
	}
	// ...then everything falls silent past the TTL: two more expiries
	// (kitchen again + hall), each counted once.
	clk.advance(time.Second + time.Millisecond)
	if got := len(br.Devices()); got != 0 {
		t.Fatalf("Φ after total silence = %d; want 0", got)
	}
	if got := expired(); got != 3 {
		t.Fatalf("expired = %d; want 3 (each genuine expiry exactly once)", got)
	}
}
