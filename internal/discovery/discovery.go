// Package discovery implements the Bonjour-like advertisement protocol of
// the paper's architecture (§2.4): each 3GOL device announces its proxy
// endpoint on the home LAN *only while it is allowed to onload* (it holds
// a permit in the network-integrated mode, or has remaining quota in the
// multi-provider mode). The client browses these announcements to build
// the admissible set Φ handed to the multipath scheduler.
//
// Announcements are JSON datagrams over UDP, refreshed periodically;
// entries that stop being refreshed expire after TTL, which is how a
// device silently withdraws when its permit is revoked.
package discovery

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"threegol/internal/clock"
)

// Announcement is one device's advertisement.
type Announcement struct {
	// Name identifies the device ("galaxy-s2-kitchen").
	Name string `json:"name"`
	// ProxyAddr is the host:port of the device's HTTP proxy on the LAN.
	ProxyAddr string `json:"proxy_addr"`
	// AllowanceBytes is the remaining 3GOL quota A(t) the device is
	// willing to carry today (0 = unlimited / network-integrated).
	AllowanceBytes int64 `json:"allowance_bytes"`
	// Cell is the device's serving cell ID (network-integrated mode;
	// empty otherwise). Clients forward it so their own permit checks
	// can gate each path on the cell it would actually load.
	Cell string `json:"cell,omitempty"`
}

// DefaultInterval is the default beacon refresh period.
const DefaultInterval = 500 * time.Millisecond

// Beacon periodically announces one device to a Browser's UDP endpoint.
// The paper's devices advertise over multicast DNS; on the emulated LAN a
// unicast datagram to the gateway's discovery port carries the same
// information.
type Beacon struct {
	// Target is the Browser's UDP address.
	Target string
	// Announce produces the current announcement, or false to stay
	// silent this round (no permit / no quota) — the admission control
	// point of the architecture.
	Announce func() (Announcement, bool)
	// Interval between beacons; 0 selects DefaultInterval.
	Interval time.Duration
	// Metrics, when non-nil, receives beacon instrumentation (see
	// NewMetrics).
	Metrics *Metrics

	mu   sync.Mutex
	stop chan struct{}
	wg   sync.WaitGroup
}

// Start launches the beacon loop. It returns an error if the target
// address does not resolve. Calling Start on a running beacon panics.
func (b *Beacon) Start() error {
	if b.Announce == nil {
		return fmt.Errorf("discovery: Beacon has no Announce func")
	}
	// Resolve and dial before taking the lock: DNS resolution is network
	// I/O, and holding b.mu across it would stall Stop (and every other
	// Beacon entry point) behind a slow resolver.
	addr, err := net.ResolveUDPAddr("udp", b.Target)
	if err != nil {
		return fmt.Errorf("discovery: resolving %q: %w", b.Target, err)
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return fmt.Errorf("discovery: dialing %q: %w", b.Target, err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stop != nil {
		conn.Close()
		panic("discovery: Beacon started twice")
	}
	interval := b.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	stop := make(chan struct{})
	b.stop = stop
	b.wg.Add(1)
	// The loop must select on its own copy of the channel: Stop nils
	// b.stop before closing it, and a select on a nil channel blocks
	// forever.
	go func() {
		defer b.wg.Done()
		defer conn.Close()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		b.send(conn) // announce immediately
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				b.send(conn)
			}
		}
	}()
	return nil
}

func (b *Beacon) send(conn *net.UDPConn) {
	ann, ok := b.Announce()
	b.Metrics.beacon(ok)
	if !ok {
		return
	}
	payload, err := json.Marshal(ann)
	if err != nil {
		return
	}
	_, _ = conn.Write(payload) // best-effort datagram; the next beat retries
}

// Stop halts the beacon. Safe to call twice.
func (b *Beacon) Stop() {
	stop := b.takeStop()
	if stop == nil {
		return
	}
	close(stop)
	b.wg.Wait()
}

// takeStop claims the stop channel, leaving nil so Stop is idempotent.
func (b *Beacon) takeStop() chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	stop := b.stop
	b.stop = nil
	return stop
}

// Browser listens for announcements and maintains the live device table.
type Browser struct {
	// TTL is how long an entry survives without a refresh; 0 selects
	// 3×DefaultInterval.
	TTL time.Duration
	// Metrics, when non-nil, receives announcement/churn instrumentation
	// (see NewMetrics).
	Metrics *Metrics
	// Clock ages entries for TTL expiry; nil selects the system clock.
	// Tests inject a fake to pin sweeps to exact instants around the
	// TTL boundary.
	Clock clock.Clock

	mu      sync.Mutex
	conn    *net.UDPConn
	entries map[string]entry
	wg      sync.WaitGroup
	closed  bool
}

type entry struct {
	ann  Announcement
	seen time.Time
}

// Listen binds the browser to a UDP address (use "127.0.0.1:0" in tests)
// and starts receiving. It returns the bound address for beacons to
// target.
func (br *Browser) Listen(addr string) (string, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return "", fmt.Errorf("discovery: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return "", fmt.Errorf("discovery: listening on %q: %w", addr, err)
	}
	br.init(conn)
	br.wg.Add(1)
	go br.receive(conn)
	return conn.LocalAddr().String(), nil
}

// init publishes the listening socket and resets the entry table.
func (br *Browser) init(conn *net.UDPConn) {
	br.mu.Lock()
	defer br.mu.Unlock()
	br.conn = conn
	br.entries = make(map[string]entry)
}

func (br *Browser) receive(conn *net.UDPConn) {
	defer br.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		var ann Announcement
		if err := json.Unmarshal(buf[:n], &ann); err != nil || ann.Name == "" {
			continue // malformed datagram: ignore
		}
		br.record(ann)
	}
}

// record stamps an announcement with its arrival time on the browser's
// clock; beacon liveness is a real-network protocol, so this is wall
// time in production and a fake only in tests.
func (br *Browser) record(ann Announcement) {
	br.mu.Lock()
	defer br.mu.Unlock()
	if !br.closed {
		br.entries[ann.Name] = entry{ann: ann, seen: clock.Or(br.Clock).Now()}
		br.Metrics.received()
	}
}

func (br *Browser) ttl() time.Duration {
	if br.TTL > 0 {
		return br.TTL
	}
	return 3 * DefaultInterval
}

// Devices returns the announcements seen within TTL — the admissible set
// Φ at this instant. The cutoff is read once per sweep, so every entry
// is judged against the same instant: a device flapping around the TTL
// boundary cannot oscillate in and out of Φ within one sweep, and each
// genuine expiry deletes the entry (and bumps the expiry counter)
// exactly once.
func (br *Browser) Devices() []Announcement {
	br.mu.Lock()
	defer br.mu.Unlock()
	cutoff := clock.Or(br.Clock).Now().Add(-br.ttl())
	out := make([]Announcement, 0, len(br.entries))
	expired := 0
	for name, e := range br.entries {
		if e.seen.Before(cutoff) {
			delete(br.entries, name)
			expired++
			continue
		}
		out = append(out, e.ann)
	}
	br.Metrics.swept(expired, len(out))
	return out
}

// WaitFor blocks until at least n devices are visible or the timeout
// elapses, returning the set either way.
func (br *Browser) WaitFor(n int, timeout time.Duration) []Announcement {
	deadline := time.Now().Add(timeout) //3golvet:allow wallclock — polls a live UDP socket
	for {
		devs := br.Devices()
		if len(devs) >= n || time.Now().After(deadline) { //3golvet:allow wallclock
			return devs
		}
		time.Sleep(10 * time.Millisecond) //3golvet:allow wallclock
	}
}

// Close stops the browser.
func (br *Browser) Close() {
	br.mu.Lock()
	br.closed = true
	conn := br.conn
	br.conn = nil
	br.mu.Unlock()
	if conn != nil {
		conn.Close()
		br.wg.Wait()
	}
}
