package discovery

import "threegol/internal/obs"

// Beacon states as recorded in Metrics.Beacons.
const (
	beaconSent       = "sent"
	beaconSuppressed = "suppressed" // Announce said no: no permit / no quota
)

// Metrics holds the discovery protocol's instruments; register with
// NewMetrics and assign to Beacon.Metrics and/or Browser.Metrics. A nil
// Metrics disables instrumentation. The Devices gauge plus the expiry
// counter together describe the churn of the admissible set Φ.
type Metrics struct {
	// Announcements counts datagrams the browser accepted.
	Announcements *obs.Counter
	// Beacons counts beacon rounds by state (sent | suppressed); the
	// suppressed count measures how often admission control silenced a
	// device.
	Beacons *obs.Counter
	// Expired counts entries aged out of the device table (a device
	// withdrawing by falling silent).
	Expired *obs.Counter
	// Devices is the size of the admissible set Φ as of the last
	// Devices() sweep.
	Devices *obs.Gauge
}

// NewMetrics registers the discovery protocol's metrics on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Announcements: r.NewCounter("discovery_announcements_received_total",
			"Well-formed announcement datagrams accepted by the browser."),
		Beacons: r.NewCounter("discovery_beacons_total",
			"Beacon rounds, by state (sent | suppressed); suppressed rounds were silenced by admission control.",
			"state"),
		Expired: r.NewCounter("discovery_entries_expired_total",
			"Device-table entries aged out after their TTL lapsed."),
		Devices: r.NewGauge("discovery_devices",
			"Size of the admissible device set as of the last table sweep."),
	}
}

func (m *Metrics) received() {
	if m == nil {
		return
	}
	m.Announcements.Inc()
}

func (m *Metrics) beacon(sent bool) {
	if m == nil {
		return
	}
	state := beaconSuppressed
	if sent {
		state = beaconSent
	}
	m.Beacons.With(state).Inc()
}

func (m *Metrics) swept(expired, live int) {
	if m == nil {
		return
	}
	if expired > 0 {
		m.Expired.Add(int64(expired))
	}
	m.Devices.Set(float64(live))
}
