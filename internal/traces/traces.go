// Package traces synthesises the two proprietary datasets the paper's §6
// analysis rests on, matching every published marginal:
//
//   - MNO: per-user monthly data demand versus contracted cap for a mobile
//     operator's broadband customers. Fig. 10 anchors: 40% of users consume
//     under 10% of their cap, 75% under 50%, with ≈20 MB/day (≈600 MB per
//     month) of average leftover volume.
//   - DSLAM: flow-level video sessions of the subscribers behind one DSLAM
//     (18,000 lines): 68% of users view at least one video per day; viewers
//     watch 14.12 videos/day on average (median 6, std 30.13 — a lognormal
//     fit); request times follow the wired diurnal curve of Fig. 1.
//
// Generators are deterministic given a seed.
package traces

import (
	"math"
	"math/rand"
	"sort"

	"threegol/internal/diurnal"
	"threegol/internal/stats"
)

// MB is one megabyte in bytes.
const MB = 1 << 20

// MNOUser is one cellular subscriber.
type MNOUser struct {
	ID       int
	CapBytes float64
	// UsedFrac is the fraction of the cap the user consumes in the
	// reference month.
	UsedFrac float64
	// MonthlyUsage is a series of monthly usage values (bytes), wobbling
	// around the reference month — the estimator back-test input.
	MonthlyUsage []float64
}

// FreeSeries returns the user's monthly free capacity (cap − usage).
func (u MNOUser) FreeSeries() []float64 {
	out := make([]float64, len(u.MonthlyUsage))
	for i, used := range u.MonthlyUsage {
		free := u.CapBytes - used
		if free < 0 {
			free = 0
		}
		out[i] = free
	}
	return out
}

// MNOConfig parameterises the MNO population generator.
type MNOConfig struct {
	Users int
	// Months of usage history per user; 0 selects 18.
	Months int
	// MonthlyWobbleStd is the relative std of month-to-month usage
	// variation; 0 selects 0.35.
	MonthlyWobbleStd float64
}

// usedFracCDF is the piecewise-linear inverse CDF of the cap-usage
// fraction, anchored on the paper's Fig. 10: P(frac ≤ 0.1) = 0.40,
// P(frac ≤ 0.5) = 0.75, with the remaining quarter stretching to users
// who hit their cap.
var usedFracCDF = []stats.Point{
	{X: 0.00, Y: 0.000}, // (cumulative prob, fraction of cap)
	{X: 0.40, Y: 0.100},
	{X: 0.75, Y: 0.500},
	{X: 0.95, Y: 0.900},
	{X: 1.00, Y: 1.000},
}

// sampleUsedFrac draws a cap-usage fraction from the anchored CDF given
// a uniform rank u.
func sampleUsedFrac(u float64) float64 {
	for i := 1; i < len(usedFracCDF); i++ {
		lo, hi := usedFracCDF[i-1], usedFracCDF[i]
		if u <= hi.X {
			frac := (u - lo.X) / (hi.X - lo.X)
			return lo.Y + frac*(hi.Y-lo.Y)
		}
	}
	return 1
}

// planCaps are typical 2013-era monthly volume caps; weights sum to 1.
// The 10 GB plan mirrors the paper's own handsets ("data plan cap
// (10GB/month)").
var planCaps = []struct {
	Bytes  float64
	Weight float64
}{
	{250 * MB, 0.18},
	{500 * MB, 0.34},
	{1024 * MB, 0.28},
	{2048 * MB, 0.13},
	{5120 * MB, 0.05},
	{10240 * MB, 0.02},
}

// sampleCap draws a plan cap. rank ∈ [0,1] is the user's usage-fraction
// rank: plan choice is rank-correlated with usage (heavy users buy big
// plans), which is what lets the population carry both a low median
// usage fraction (Fig. 10) and a mean daily demand comparable to the
// 20 MB onloading allowance (Fig. 11c's ≈100% increase at full
// adoption).
func sampleCap(rng *rand.Rand, rank float64) float64 {
	// Mixture copula: with probability 0.55 the plan quantile equals the
	// usage rank (comonotonic), otherwise it is independent — keeping the
	// plan-mix marginal exactly while inducing the rank correlation.
	v := rank
	if rng.Float64() >= 0.55 {
		v = rng.Float64()
	}
	acc := 0.0
	for _, p := range planCaps {
		acc += p.Weight
		if v <= acc {
			return p.Bytes
		}
	}
	return planCaps[len(planCaps)-1].Bytes
}

// samplePlan draws a subscriber's plan cap and cap-usage fraction: one
// uniform rank, the rank-correlated cap, and the Fig. 10 anchored
// fraction. Both MNO samplers share it so their RNG streams agree.
func samplePlan(rng *rand.Rand) (capBytes, usedFrac float64) {
	rank := rng.Float64()
	capBytes = sampleCap(rng, rank)
	usedFrac = sampleUsedFrac(rank)
	return capBytes, usedFrac
}

// sampleMonthUsage draws one month of usage wobbling around base,
// clamped at the plan cap.
func sampleMonthUsage(rng *rand.Rand, base, capBytes, wobble float64) float64 {
	w := stats.TruncNormal{Mean: 1, Std: wobble, Lo: 0.5, Hi: 1.6}.Sample(rng)
	u := base * w
	if u > capBytes {
		u = capBytes
	}
	return u
}

// SampleMNOUser draws one cellular subscriber: plan cap (rank-correlated
// with usage), cap-usage fraction from the Fig. 10 anchored CDF, and
// `months` of wobbling monthly usage history. months ≤ 0 selects 18 and
// wobble ≤ 0 selects 0.35, matching GenerateMNO's defaults. Exported so
// the fleet engine can populate per-shard device histories from its own
// RNG stream without materialising a whole MNO population.
func SampleMNOUser(rng *rand.Rand, id, months int, wobble float64) MNOUser {
	if months <= 0 {
		months = 18
	}
	if wobble <= 0 {
		wobble = 0.35
	}
	capB, frac := samplePlan(rng)
	base := capB * frac
	usage := make([]float64, months)
	for m := range usage {
		usage[m] = sampleMonthUsage(rng, base, capB, wobble)
	}
	return MNOUser{ID: id, CapBytes: capB, UsedFrac: frac, MonthlyUsage: usage}
}

// SampleMNOFree draws one subscriber with SampleMNOUser's exact RNG
// stream but writes the free-capacity series (cap − usage, clamped at 0
// — what MNOUser.FreeSeries computes) into the caller's buffer instead
// of allocating the usage history. free must hold at least `months`
// entries after defaulting (months ≤ 0 selects 18, wobble ≤ 0 selects
// 0.35); free[:months] is filled. The fleet engine's allocation-free
// home generator calls it with a pooled per-shard scratch buffer.
func SampleMNOFree(rng *rand.Rand, months int, wobble float64, free []float64) (capBytes, usedFrac float64) {
	if months <= 0 {
		months = 18
	}
	if wobble <= 0 {
		wobble = 0.35
	}
	capB, frac := samplePlan(rng)
	base := capB * frac
	for m := 0; m < months; m++ {
		f := capB - sampleMonthUsage(rng, base, capB, wobble)
		if f < 0 {
			f = 0
		}
		free[m] = f
	}
	return capB, frac
}

// GenerateMNO synthesises the MNO population.
func GenerateMNO(cfg MNOConfig, seed int64) []MNOUser {
	rng := rand.New(rand.NewSource(seed))
	users := make([]MNOUser, cfg.Users)
	for i := range users {
		users[i] = SampleMNOUser(rng, i, cfg.Months, cfg.MonthlyWobbleStd)
	}
	return users
}

// UsedFractions extracts each user's reference cap-usage fraction — the
// sample behind the paper's Fig. 10 CDF.
func UsedFractions(users []MNOUser) []float64 {
	out := make([]float64, len(users))
	for i, u := range users {
		out[i] = u.UsedFrac
	}
	return out
}

// MeanDailyLeftoverBytes reports the population's average unused volume
// per day (paper: ≈20 MB/device/day).
func MeanDailyLeftoverBytes(users []MNOUser) float64 {
	if len(users) == 0 {
		return 0
	}
	var total float64
	for _, u := range users {
		total += u.CapBytes * (1 - u.UsedFrac)
	}
	return total / float64(len(users)) / 30
}

// VideoSession is one video request in the DSLAM trace.
type VideoSession struct {
	UserID int
	// Time is seconds since midnight.
	Time float64
	// SizeBytes is the full size of the requested video file.
	SizeBytes float64
}

// DSLAMTrace is one synthesised day of video traffic behind a DSLAM.
type DSLAMTrace struct {
	NumUsers int
	// ADSLBits is the subscribers' access speed in bits/s (the paper's
	// trace population had 3 Mbps lines).
	ADSLBits float64
	Sessions []VideoSession
}

// DSLAMConfig parameterises the DSLAM generator.
type DSLAMConfig struct {
	// Users behind the DSLAM; 0 selects 18000 (the paper's coverage).
	Users int
	// ViewerFrac is the fraction of users with ≥1 video; 0 selects 0.68.
	ViewerFrac float64
	// MeanVideoBytes is the average video file size; 0 selects 50 MB
	// (the paper's cited YouTube average).
	MeanVideoBytes float64
	// ADSLBits is the access speed; 0 selects 3 Mbps.
	ADSLBits float64
}

// SampleVideosPerDay matches the paper's viewer activity: lognormal with
// median 6 and mean 14.12 — which implies σ² = 2·ln(14.12/6) and std
// ≈ 30.1, matching all three published moments at once. Exported for the
// fleet engine's per-shard demand generation.
func SampleVideosPerDay(rng *rand.Rand) int {
	const median = 6.0
	const mean = 14.12
	sigma := math.Sqrt(2 * math.Log(mean/median))
	n := int(math.Round(stats.LogNormal{Mu: math.Log(median), Sigma: sigma}.Sample(rng)))
	if n < 1 {
		n = 1 // a viewer views at least one video
	}
	return n
}

// SampleHour draws an hour-of-day from a diurnal profile by rejection
// sampling (peak normalised to 1).
func SampleHour(rng *rand.Rand, p diurnal.Profile) float64 {
	for {
		h := rng.Float64() * 24
		if rng.Float64() <= p.At(h) {
			return h
		}
	}
}

// GenerateDSLAM synthesises one day of DSLAM video sessions.
func GenerateDSLAM(cfg DSLAMConfig, seed int64) *DSLAMTrace {
	rng := rand.New(rand.NewSource(seed))
	users := cfg.Users
	if users <= 0 {
		users = 18000
	}
	viewerFrac := cfg.ViewerFrac
	if viewerFrac <= 0 {
		viewerFrac = 0.68
	}
	meanSize := cfg.MeanVideoBytes
	if meanSize <= 0 {
		meanSize = 50 * MB
	}
	adsl := cfg.ADSLBits
	if adsl <= 0 {
		adsl = 3e6
	}
	sizeDist := stats.LogNormalFromMoments(meanSize, meanSize*0.9)

	tr := &DSLAMTrace{NumUsers: users, ADSLBits: adsl}
	for u := 0; u < users; u++ {
		if rng.Float64() >= viewerFrac {
			continue
		}
		n := SampleVideosPerDay(rng)
		for v := 0; v < n; v++ {
			tr.Sessions = append(tr.Sessions, VideoSession{
				UserID:    u,
				Time:      SampleHour(rng, diurnal.Wired) * 3600,
				SizeBytes: sizeDist.Sample(rng),
			})
		}
	}
	sort.Slice(tr.Sessions, func(i, j int) bool { return tr.Sessions[i].Time < tr.Sessions[j].Time })
	return tr
}

// Viewers returns the distinct users with at least one session.
func (t *DSLAMTrace) Viewers() int {
	seen := make(map[int]bool)
	for _, s := range t.Sessions {
		seen[s.UserID] = true
	}
	return len(seen)
}

// SessionsByUser groups the trace by user, preserving time order.
func (t *DSLAMTrace) SessionsByUser() map[int][]VideoSession {
	out := make(map[int][]VideoSession)
	for _, s := range t.Sessions {
		out[s.UserID] = append(out[s.UserID], s)
	}
	return out
}

// VolumeInBins aggregates session bytes into fixed-width time bins over
// the day (binSeconds wide), returning bytes per bin — the raw series of
// Fig. 1 and Fig. 11(b).
func (t *DSLAMTrace) VolumeInBins(binSeconds float64) []float64 {
	nbins := int(math.Ceil(24 * 3600 / binSeconds))
	bins := make([]float64, nbins)
	for _, s := range t.Sessions {
		b := int(s.Time / binSeconds)
		if b >= nbins {
			b = nbins - 1
		}
		bins[b] += s.SizeBytes
	}
	return bins
}
