package traces

import "testing"

func BenchmarkGenerateDSLAM(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateDSLAM(DSLAMConfig{Users: 18000}, int64(i))
	}
}

func BenchmarkGenerateMNO(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateMNO(MNOConfig{Users: 20000}, int64(i))
	}
}
