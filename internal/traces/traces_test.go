package traces

import (
	"math"
	"testing"

	"threegol/internal/stats"
)

func TestMNOMatchesFig10Anchors(t *testing.T) {
	users := GenerateMNO(MNOConfig{Users: 20000}, 1)
	cdf := stats.NewECDF(UsedFractions(users))
	if got := cdf.At(0.1); math.Abs(got-0.40) > 0.02 {
		t.Errorf("P(frac ≤ 0.1) = %v, want ≈0.40", got)
	}
	if got := cdf.At(0.5); math.Abs(got-0.75) > 0.02 {
		t.Errorf("P(frac ≤ 0.5) = %v, want ≈0.75", got)
	}
	if got := cdf.At(1.0); got != 1 {
		t.Errorf("P(frac ≤ 1) = %v, want 1", got)
	}
}

func TestMNOLeftoverVolumeOrderOfMagnitude(t *testing.T) {
	users := GenerateMNO(MNOConfig{Users: 20000}, 2)
	daily := MeanDailyLeftoverBytes(users) / MB
	// The paper's "≈20 MB per device per day" leftover.
	if daily < 10 || daily > 60 {
		t.Errorf("mean daily leftover = %.1f MB, want O(20 MB)", daily)
	}
}

func TestMNOUsageWithinCap(t *testing.T) {
	users := GenerateMNO(MNOConfig{Users: 500}, 3)
	for _, u := range users {
		if len(u.MonthlyUsage) != 18 {
			t.Fatalf("user %d has %d months, want 18", u.ID, len(u.MonthlyUsage))
		}
		for m, used := range u.MonthlyUsage {
			if used < 0 || used > u.CapBytes {
				t.Fatalf("user %d month %d usage %v outside [0, %v]", u.ID, m, used, u.CapBytes)
			}
		}
		for _, f := range u.FreeSeries() {
			if f < 0 {
				t.Fatal("negative free capacity")
			}
		}
	}
}

func TestMNODeterministic(t *testing.T) {
	a := GenerateMNO(MNOConfig{Users: 100}, 42)
	b := GenerateMNO(MNOConfig{Users: 100}, 42)
	for i := range a {
		if a[i].UsedFrac != b[i].UsedFrac || a[i].CapBytes != b[i].CapBytes {
			t.Fatal("generator not deterministic for equal seeds")
		}
	}
	c := GenerateMNO(MNOConfig{Users: 100}, 43)
	same := true
	for i := range a {
		if a[i].UsedFrac != c[i].UsedFrac {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical populations")
	}
}

func TestDSLAMMatchesPaperMarginals(t *testing.T) {
	tr := GenerateDSLAM(DSLAMConfig{Users: 18000}, 7)
	if tr.NumUsers != 18000 {
		t.Errorf("NumUsers = %d", tr.NumUsers)
	}
	viewerFrac := float64(tr.Viewers()) / float64(tr.NumUsers)
	if math.Abs(viewerFrac-0.68) > 0.02 {
		t.Errorf("viewer fraction = %v, want ≈0.68", viewerFrac)
	}
	// Videos per viewer: mean ≈14.12, median ≈6 (lognormal heavy tail).
	perUser := tr.SessionsByUser()
	counts := make([]float64, 0, len(perUser))
	for _, ss := range perUser {
		counts = append(counts, float64(len(ss)))
	}
	s := stats.Summarize(counts)
	if math.Abs(s.Mean-14.12) > 1.5 {
		t.Errorf("videos/viewer mean = %v, want ≈14.12", s.Mean)
	}
	if math.Abs(s.Median-6) > 1.5 {
		t.Errorf("videos/viewer median = %v, want ≈6", s.Median)
	}
	if s.Std < 15 || s.Std > 50 {
		t.Errorf("videos/viewer std = %v, want ≈30 (heavy tail)", s.Std)
	}
}

func TestDSLAMVideoSizes(t *testing.T) {
	tr := GenerateDSLAM(DSLAMConfig{Users: 4000}, 9)
	var sizes []float64
	for _, s := range tr.Sessions {
		if s.SizeBytes <= 0 {
			t.Fatal("non-positive video size")
		}
		sizes = append(sizes, s.SizeBytes)
	}
	mean := stats.Mean(sizes) / MB
	if math.Abs(mean-50) > 5 {
		t.Errorf("mean video size = %.1f MB, want ≈50", mean)
	}
}

func TestDSLAMSessionsSortedAndDiurnal(t *testing.T) {
	tr := GenerateDSLAM(DSLAMConfig{Users: 6000}, 11)
	for i := 1; i < len(tr.Sessions); i++ {
		if tr.Sessions[i].Time < tr.Sessions[i-1].Time {
			t.Fatal("sessions not time-sorted")
		}
	}
	for _, s := range tr.Sessions {
		if s.Time < 0 || s.Time >= 24*3600 {
			t.Fatalf("session time %v outside the day", s.Time)
		}
	}
	// Diurnal shape: evening bins busier than pre-dawn bins.
	bins := tr.VolumeInBins(3600)
	if len(bins) != 24 {
		t.Fatalf("bins = %d, want 24", len(bins))
	}
	night := bins[3] + bins[4] + bins[5]
	evening := bins[20] + bins[21] + bins[22]
	if evening <= 2*night {
		t.Errorf("evening volume %v not ≫ pre-dawn %v", evening, night)
	}
}

func TestVolumeInBinsConservesBytes(t *testing.T) {
	tr := GenerateDSLAM(DSLAMConfig{Users: 2000}, 13)
	var total float64
	for _, s := range tr.Sessions {
		total += s.SizeBytes
	}
	var binned float64
	for _, b := range tr.VolumeInBins(300) {
		binned += b
	}
	if math.Abs(total-binned) > 1 {
		t.Errorf("binned %v != total %v", binned, total)
	}
}

func TestDSLAMConfigOverrides(t *testing.T) {
	tr := GenerateDSLAM(DSLAMConfig{Users: 100, ViewerFrac: 1.0, MeanVideoBytes: 5 * MB, ADSLBits: 8e6}, 17)
	if tr.Viewers() != 100 {
		t.Errorf("viewers = %d, want all 100", tr.Viewers())
	}
	if tr.ADSLBits != 8e6 {
		t.Errorf("ADSLBits = %v", tr.ADSLBits)
	}
}
