// Package linksim is an event-driven fluid-flow network simulator. Flows
// traverse paths of capacity-constrained links and share each link
// max-min fairly (optionally weighted, optionally rate-capped per flow —
// the per-device radio cap of an HSPA channel is such a cap). Capacities
// may change over virtual time, which is how the cellular model injects
// diurnal background load.
//
// The simulator is exact for the fluid model: between events every flow
// progresses linearly at its allocated rate; events are flow arrivals,
// flow completions and capacity changes, at which point all rates are
// recomputed by progressive (water-filling) max-min allocation.
//
// Units: capacities and rates are bits per second, sizes are bits, time is
// seconds (all float64). The Mbps and MB constants convert.
package linksim

import (
	"fmt"
	"math"
	"sort"

	"threegol/internal/simclock"
)

// Unit conversion constants.
const (
	Kbps = 1e3 // bits per second
	Mbps = 1e6 // bits per second
	KB   = 8e3 // bits
	MB   = 8e6 // bits
	Inf  = math.MaxFloat64
)

// Simulator owns a set of links and the flows currently traversing them.
type Simulator struct {
	clock *simclock.Clock
	links []*Link
	flows map[*Flow]struct{}

	nextCompletion *simclock.Timer
}

// New creates a Simulator driven by the given clock.
func New(clock *simclock.Clock) *Simulator {
	return &Simulator{clock: clock, flows: make(map[*Flow]struct{})}
}

// Clock returns the simulator's virtual clock.
func (s *Simulator) Clock() *simclock.Clock { return s.clock }

// Link is a shared bottleneck with a capacity in bits/s.
type Link struct {
	name     string
	capacity float64
	sim      *Simulator
	flows    map[*Flow]struct{}
}

// NewLink adds a link with the given capacity (bits/s). Capacity must be
// non-negative.
func (s *Simulator) NewLink(name string, capacity float64) *Link {
	if capacity < 0 {
		panic(fmt.Sprintf("linksim: negative capacity %v for link %q", capacity, name))
	}
	l := &Link{name: name, capacity: capacity, sim: s, flows: make(map[*Flow]struct{})}
	s.links = append(s.links, l)
	return l
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's current capacity in bits/s.
func (l *Link) Capacity() float64 { return l.capacity }

// SetCapacity changes the link capacity now; all flow rates are
// recomputed.
func (l *Link) SetCapacity(c float64) {
	if c < 0 {
		panic(fmt.Sprintf("linksim: negative capacity %v for link %q", c, l.name))
	}
	if c == l.capacity {
		return
	}
	l.capacity = c
	l.sim.reallocate()
}

// Load returns the number of flows currently crossing the link.
func (l *Link) Load() int { return len(l.flows) }

// Utilization returns the fraction of capacity currently allocated.
func (l *Link) Utilization() float64 {
	if l.capacity <= 0 {
		if len(l.flows) > 0 {
			return 1
		}
		return 0
	}
	var used float64
	for f := range l.flows {
		used += f.rate
	}
	return used / l.capacity
}

// Flow is an active fluid transfer.
type Flow struct {
	name      string
	path      []*Link
	remaining float64 // bits left; Inf for unbounded flows
	size      float64 // original size in bits (Inf for unbounded)
	rateCap   float64 // per-flow rate ceiling (e.g. radio-condition cap)
	weight    float64 // share weight within each link (default 1)

	rate       float64
	lastUpdate float64
	start      float64
	end        float64 // NaN until done
	done       bool
	onDone     func(*Flow)

	sim *Simulator
}

// FlowSpec configures a flow started with StartFlow.
type FlowSpec struct {
	Name    string
	Bits    float64 // transfer size; use Inf (or ≤0 treated as error) for unbounded via Unbounded
	RateCap float64 // 0 means uncapped
	Weight  float64 // 0 means 1
	Path    []*Link
	OnDone  func(*Flow) // invoked at completion time, clock positioned at completion
}

// StartFlow begins a fluid transfer now. It panics on an empty path or a
// non-positive size — both are experiment configuration errors. A link
// appearing more than once in the path is collapsed to a single traversal:
// link membership is a set, and the water-filling allocator charges each
// flow against each distinct link exactly once.
func (s *Simulator) StartFlow(spec FlowSpec) *Flow {
	if len(spec.Path) == 0 {
		panic("linksim: StartFlow with empty path")
	}
	if spec.Bits <= 0 {
		panic(fmt.Sprintf("linksim: StartFlow %q with size %v", spec.Name, spec.Bits))
	}
	spec.Path = dedupLinks(spec.Path)
	w := spec.Weight
	if w <= 0 {
		w = 1
	}
	f := &Flow{
		name:       spec.Name,
		path:       spec.Path,
		remaining:  spec.Bits,
		size:       spec.Bits,
		rateCap:    spec.RateCap,
		weight:     w,
		start:      s.clock.Now(),
		lastUpdate: s.clock.Now(),
		end:        math.NaN(),
		onDone:     spec.OnDone,
		sim:        s,
	}
	s.flows[f] = struct{}{}
	for _, l := range spec.Path {
		l.flows[f] = struct{}{}
	}
	s.reallocate()
	return f
}

// Abort removes the flow immediately without invoking its completion
// callback (mirrors the scheduler cancelling a duplicated item).
func (f *Flow) Abort() {
	if f.done {
		return
	}
	f.sim.settle(f)
	f.done = true
	f.end = f.sim.clock.Now()
	f.sim.detach(f)
	f.sim.reallocate()
}

// Name returns the flow's diagnostic name.
func (f *Flow) Name() string { return f.name }

// Rate returns the currently allocated rate in bits/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bits left to transfer as of the current clock.
func (f *Flow) Remaining() float64 {
	if f.done {
		return 0
	}
	elapsed := f.sim.clock.Now() - f.lastUpdate
	rem := f.remaining - f.rate*elapsed
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Done reports whether the flow has completed or been aborted.
func (f *Flow) Done() bool { return f.done }

// Start returns the flow's start time.
func (f *Flow) Start() float64 { return f.start }

// End returns the completion (or abort) time, NaN while in flight.
func (f *Flow) End() float64 { return f.end }

// Duration returns End−Start, NaN while in flight.
func (f *Flow) Duration() float64 { return f.end - f.start }

// Throughput returns size/duration in bits/s for a completed flow, NaN
// while in flight.
func (f *Flow) Throughput() float64 {
	d := f.Duration()
	if d <= 0 {
		return math.NaN()
	}
	return f.size / d
}

// settle charges progress made since the flow's last rate change.
func (s *Simulator) settle(f *Flow) {
	now := s.clock.Now()
	if elapsed := now - f.lastUpdate; elapsed > 0 {
		f.remaining -= f.rate * elapsed
		if f.remaining < completionTolerance {
			f.remaining = 0
		}
	}
	f.lastUpdate = now
}

func (s *Simulator) detach(f *Flow) {
	delete(s.flows, f)
	for _, l := range f.path {
		delete(l.flows, f)
	}
}

// reallocate recomputes all flow rates via weighted max-min water-filling
// and reschedules the next completion event.
func (s *Simulator) reallocate() {
	// Settle progress for every active flow at the current instant.
	for f := range s.flows {
		s.settle(f)
	}

	// Water-filling. Unfrozen flows grow together (proportionally to
	// weight); at each round the tightest constraint — a link's residual
	// fair share or a flow's rate cap — freezes some flows.
	type linkState struct {
		rem    float64
		weight float64 // total weight of unfrozen flows on this link
	}
	ls := make(map[*Link]*linkState, len(s.links))
	unfrozen := make(map[*Flow]struct{}, len(s.flows))
	for f := range s.flows {
		f.rate = 0
		unfrozen[f] = struct{}{}
	}
	for _, l := range s.links {
		st := &linkState{rem: l.capacity}
		for f := range l.flows {
			st.weight += f.weight
		}
		ls[l] = st
	}

	for len(unfrozen) > 0 {
		// The common growth level λ: each unfrozen flow gets λ·weight.
		// Find the smallest λ at which a constraint binds.
		lambda := math.Inf(1)
		for f := range unfrozen {
			// Link constraints along this flow's path.
			for _, l := range f.path {
				st := ls[l]
				if st.weight <= 0 {
					continue
				}
				if v := st.rem / st.weight; v < lambda {
					lambda = v
				}
			}
			// Rate-cap constraint.
			if f.rateCap > 0 {
				if v := f.rateCap / f.weight; v < lambda {
					lambda = v
				}
			}
		}
		if math.IsInf(lambda, 1) {
			// No binding constraint (flows on infinite links, no caps):
			// give them the Inf sentinel? Cannot happen: links always have
			// finite capacity; caps of 0 on infinite-capacity links would
			// be a configuration error. Freeze at zero to stay total.
			for f := range unfrozen {
				delete(unfrozen, f)
			}
			break
		}

		// Freeze every flow bound at λ: those whose cap binds, and those
		// crossing a link whose residual is exhausted at λ.
		frozen := make([]*Flow, 0)
		for f := range unfrozen {
			r := lambda * f.weight
			capBinds := f.rateCap > 0 && r >= f.rateCap-1e-12
			linkBinds := false
			for _, l := range f.path {
				st := ls[l]
				if st.rem-lambda*st.weight <= 1e-9*(1+st.rem) {
					linkBinds = true
					break
				}
			}
			if capBinds || linkBinds {
				f.rate = math.Min(r, cappedOr(r, f.rateCap))
				frozen = append(frozen, f)
			}
		}
		if len(frozen) == 0 {
			// Numerical corner: force-freeze everything at λ to guarantee
			// termination.
			for f := range unfrozen {
				f.rate = lambda * f.weight
				frozen = append(frozen, f)
			}
		}
		// Charge frozen flows against their links and remove them. The
		// residual subtractions below are float folds, so the charge order
		// must not depend on map iteration: sort by start time (unique per
		// flow — ties broken by name for same-instant arrivals).
		sort.Slice(frozen, func(i, j int) bool {
			if frozen[i].start != frozen[j].start {
				return frozen[i].start < frozen[j].start
			}
			return frozen[i].name < frozen[j].name
		})
		for _, f := range frozen {
			for _, l := range f.path {
				st := ls[l]
				st.rem -= f.rate
				if st.rem < 0 {
					st.rem = 0
				}
				st.weight -= f.weight
			}
			delete(unfrozen, f)
		}
	}

	s.scheduleNextCompletion()
}

// dedupLinks returns the path with duplicate links removed, preserving
// first-occurrence order. Without this, a path like [a, a] would charge
// link a twice per freeze while its weight accounting counted the flow
// once, driving st.weight negative and silently disabling the link as a
// constraint for every later water-filling round (over-allocation).
func dedupLinks(path []*Link) []*Link {
	seen := make(map[*Link]struct{}, len(path))
	out := path[:0:0]
	for _, l := range path {
		if _, dup := seen[l]; dup {
			continue
		}
		seen[l] = struct{}{}
		out = append(out, l)
	}
	return out
}

func cappedOr(r, cap float64) float64 {
	if cap > 0 && r > cap {
		return cap
	}
	return r
}

// scheduleNextCompletion finds the earliest finishing flow under current
// rates and schedules its completion event.
func (s *Simulator) scheduleNextCompletion() {
	if s.nextCompletion != nil {
		s.nextCompletion.Stop()
		s.nextCompletion = nil
	}
	var first *Flow
	eta := math.Inf(1)
	for f := range s.flows {
		if f.rate <= 0 || math.IsInf(f.remaining, 1) {
			continue
		}
		t := f.remaining / f.rate
		if t < eta {
			eta = t
			first = f
		}
	}
	if first == nil {
		return
	}
	f := first
	s.nextCompletion = s.clock.After(eta, func() {
		s.complete(f)
	})
}

// completionTolerance treats a flow with under a thousandth of a bit
// left as finished. Without it, a remainder below the clock's floating-
// point resolution yields a completion ETA that cannot advance time,
// livelocking the event loop.
const completionTolerance = 1e-3 // bits

func (s *Simulator) complete(f *Flow) {
	s.settle(f)
	if f.remaining > completionTolerance {
		// A capacity change between scheduling and firing slowed the flow;
		// reallocate will reschedule. (Defensive: reallocate on any event
		// already reschedules, so in practice this does not trigger.)
		s.reallocate()
		return
	}
	f.done = true
	f.end = s.clock.Now()
	f.remaining = 0
	s.detach(f)
	s.reallocate()
	if f.onDone != nil {
		f.onDone(f)
	}
}

// ActiveFlows returns the number of in-flight flows.
func (s *Simulator) ActiveFlows() int { return len(s.flows) }

// Run drains the event queue (all bounded flows complete).
func (s *Simulator) Run() { s.clock.Run() }

// RunUntil advances virtual time to t, processing due events.
func (s *Simulator) RunUntil(t float64) { s.clock.RunUntil(t) }
