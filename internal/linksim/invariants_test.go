package linksim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"threegol/internal/simclock"
)

// checkConservation asserts every link's allocated rate stays within its
// capacity and every flow within its cap.
func checkConservation(t *testing.T, s *Simulator) {
	t.Helper()
	for _, l := range s.links {
		var sum float64
		for f := range l.flows {
			sum += f.rate
		}
		if sum > l.capacity*(1+1e-9)+1e-6 {
			t.Fatalf("link %s over-allocated: %v > %v", l.name, sum, l.capacity)
		}
	}
	for f := range s.flows {
		if f.rateCap > 0 && f.rate > f.rateCap*(1+1e-9) {
			t.Fatalf("flow %s above its cap: %v > %v", f.name, f.rate, f.rateCap)
		}
		if f.rate < 0 {
			t.Fatalf("flow %s negative rate %v", f.name, f.rate)
		}
	}
}

// TestRandomOperationsPreserveInvariants drives the simulator through a
// random schedule of flow starts, aborts, capacity changes and time
// advances, checking conservation after every step and completion
// accounting at the end.
func TestRandomOperationsPreserveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(simclock.New())
		links := []*Link{
			s.NewLink("a", 1*Mbps+rng.Float64()*9*Mbps),
			s.NewLink("b", 1*Mbps+rng.Float64()*9*Mbps),
			s.NewLink("c", 1*Mbps+rng.Float64()*9*Mbps),
		}
		var live []*Flow
		completed := 0

		for op := 0; op < 60; op++ {
			switch rng.Intn(4) {
			case 0: // start a flow over a random non-empty path
				path := []*Link{links[rng.Intn(len(links))]}
				if rng.Intn(2) == 0 {
					path = append(path, links[rng.Intn(len(links))])
				}
				var cap float64
				if rng.Intn(2) == 0 {
					cap = 0.2*Mbps + rng.Float64()*3*Mbps
				}
				fl := s.StartFlow(FlowSpec{
					Name: "f", Bits: 0.1*MB + rng.Float64()*2*MB,
					RateCap: cap, Path: path,
					OnDone: func(*Flow) { completed++ },
				})
				live = append(live, fl)
			case 1: // abort a random live flow
				if len(live) > 0 {
					i := rng.Intn(len(live))
					if !live[i].Done() {
						live[i].Abort()
					}
					live = append(live[:i], live[i+1:]...)
				}
			case 2: // change a capacity
				links[rng.Intn(len(links))].SetCapacity(0.5*Mbps + rng.Float64()*9*Mbps)
			case 3: // advance virtual time a little
				s.RunUntil(s.Clock().Now() + rng.Float64()*3)
			}
			checkConservation(t, s)
		}
		s.Run()
		checkConservation(t, s)
		// Everything either completed (callback fired) or was aborted;
		// nothing remains active.
		return s.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCompletionTimesAreCausal: a flow can never finish before
// size/maxPossibleRate nor (with stable capacity) after size/minShare.
func TestCompletionTimesAreCausal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(simclock.New())
		capacity := 1*Mbps + rng.Float64()*9*Mbps
		l := s.NewLink("l", capacity)
		n := 1 + rng.Intn(6)
		flows := make([]*Flow, n)
		size := 0.5*MB + rng.Float64()*2*MB
		for i := range flows {
			flows[i] = s.StartFlow(FlowSpec{Name: "f", Bits: size, Path: []*Link{l}})
		}
		s.Run()
		for _, fl := range flows {
			d := fl.Duration()
			if d < size/capacity-1e-6 {
				return false // faster than the whole link allows
			}
			if d > size*float64(n)/capacity+1e-6 {
				return false // slower than the equal-share worst case
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
