package linksim

import (
	"fmt"
	"testing"

	"threegol/internal/simclock"
)

// BenchmarkFlowChurn measures event-loop throughput: many short flows
// arriving and completing on a shared link (the reallocation hot path).
func BenchmarkFlowChurn(b *testing.B) {
	s := New(simclock.New())
	l := s.NewLink("l", 10*Mbps)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.StartFlow(FlowSpec{Name: "f", Bits: 1 * MB, Path: []*Link{l}})
		if s.ActiveFlows() >= 16 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkReallocate measures one max-min water-filling pass with many
// concurrent flows across several links.
func BenchmarkReallocate(b *testing.B) {
	for _, nFlows := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("flows=%d", nFlows), func(b *testing.B) {
			s := New(simclock.New())
			links := []*Link{
				s.NewLink("radio", 7.2*Mbps),
				s.NewLink("backhaul", 40*Mbps),
			}
			for i := 0; i < nFlows; i++ {
				s.StartFlow(FlowSpec{
					Name: "f", Bits: 1e15, // effectively unbounded
					RateCap: float64(1+i%3) * Mbps,
					Path:    links,
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Toggling capacity forces a full reallocation.
				links[0].SetCapacity(7.2*Mbps + float64(i%2)*Kbps)
			}
		})
	}
}
