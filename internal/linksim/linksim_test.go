package linksim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"threegol/internal/simclock"
)

func newSim() *Simulator { return New(simclock.New()) }

func TestSingleFlowSingleLink(t *testing.T) {
	s := newSim()
	l := s.NewLink("dsl", 2*Mbps)
	f := s.StartFlow(FlowSpec{Name: "a", Bits: 2 * MB, Path: []*Link{l}})
	if got := f.Rate(); got != 2*Mbps {
		t.Errorf("rate = %v, want 2Mbps", got)
	}
	s.Run()
	if !f.Done() {
		t.Fatal("flow not done after Run")
	}
	if got, want := f.Duration(), 8.0; !close(got, want) {
		t.Errorf("duration = %v, want %v (16Mbit over 2Mbps)", got, want)
	}
	if got := f.Throughput(); !close(got, 2*Mbps) {
		t.Errorf("throughput = %v, want 2Mbps", got)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	s := newSim()
	l := s.NewLink("cell", 4*Mbps)
	f1 := s.StartFlow(FlowSpec{Name: "a", Bits: 1 * MB, Path: []*Link{l}})
	f2 := s.StartFlow(FlowSpec{Name: "b", Bits: 1 * MB, Path: []*Link{l}})
	if !close(f1.Rate(), 2*Mbps) || !close(f2.Rate(), 2*Mbps) {
		t.Errorf("rates = %v, %v, want 2Mbps each", f1.Rate(), f2.Rate())
	}
	s.Run()
	// Equal sizes, equal shares: both finish at 4s.
	if !close(f1.End(), 4) || !close(f2.End(), 4) {
		t.Errorf("ends = %v, %v, want 4", f1.End(), f2.End())
	}
}

func TestShortFlowReleasesCapacity(t *testing.T) {
	s := newSim()
	l := s.NewLink("cell", 4*Mbps)
	short := s.StartFlow(FlowSpec{Name: "short", Bits: 1 * MB, Path: []*Link{l}})
	long := s.StartFlow(FlowSpec{Name: "long", Bits: 3 * MB, Path: []*Link{l}})
	s.Run()
	// Short: 8Mbit at 2Mbps → done at 4s. Long: 8Mbit by t=4 (16 left),
	// then full 4Mbps → 4 more seconds → 8s.
	if !close(short.End(), 4) {
		t.Errorf("short end = %v, want 4", short.End())
	}
	if !close(long.End(), 8) {
		t.Errorf("long end = %v, want 8", long.End())
	}
}

func TestRateCapBinds(t *testing.T) {
	s := newSim()
	l := s.NewLink("cell", 10*Mbps)
	capped := s.StartFlow(FlowSpec{Name: "capped", Bits: 1 * MB, RateCap: 1 * Mbps, Path: []*Link{l}})
	free := s.StartFlow(FlowSpec{Name: "free", Bits: 1 * MB, Path: []*Link{l}})
	if !close(capped.Rate(), 1*Mbps) {
		t.Errorf("capped rate = %v, want 1Mbps", capped.Rate())
	}
	// Max-min: the capped flow's unused share goes to the other flow.
	if !close(free.Rate(), 9*Mbps) {
		t.Errorf("free rate = %v, want 9Mbps", free.Rate())
	}
	s.Run()
}

func TestWeightedSharing(t *testing.T) {
	s := newSim()
	l := s.NewLink("cell", 6*Mbps)
	heavy := s.StartFlow(FlowSpec{Name: "w2", Bits: 1 * MB, Weight: 2, Path: []*Link{l}})
	light := s.StartFlow(FlowSpec{Name: "w1", Bits: 1 * MB, Weight: 1, Path: []*Link{l}})
	if !close(heavy.Rate(), 4*Mbps) || !close(light.Rate(), 2*Mbps) {
		t.Errorf("rates = %v, %v, want 4 and 2 Mbps", heavy.Rate(), light.Rate())
	}
	s.Run()
}

func TestMultiLinkPathBottleneck(t *testing.T) {
	s := newSim()
	radio := s.NewLink("radio", 10*Mbps)
	backhaul := s.NewLink("backhaul", 3*Mbps)
	f := s.StartFlow(FlowSpec{Name: "f", Bits: 3 * MB, Path: []*Link{radio, backhaul}})
	if !close(f.Rate(), 3*Mbps) {
		t.Errorf("rate = %v, want 3Mbps (backhaul bound)", f.Rate())
	}
	s.Run()
	if !close(f.Duration(), 8) {
		t.Errorf("duration = %v, want 8", f.Duration())
	}
}

func TestCrossTrafficOnSharedBackhaul(t *testing.T) {
	// Two radio legs share one backhaul: classic max-min allocation.
	s := newSim()
	r1 := s.NewLink("radio1", 2*Mbps)
	r2 := s.NewLink("radio2", 10*Mbps)
	bh := s.NewLink("backhaul", 6*Mbps)
	f1 := s.StartFlow(FlowSpec{Name: "f1", Bits: 1 * MB, Path: []*Link{r1, bh}})
	f2 := s.StartFlow(FlowSpec{Name: "f2", Bits: 1 * MB, Path: []*Link{r2, bh}})
	// f1 is bound by its 2Mbps radio; f2 takes the remaining 4Mbps.
	if !close(f1.Rate(), 2*Mbps) {
		t.Errorf("f1 rate = %v, want 2Mbps", f1.Rate())
	}
	if !close(f2.Rate(), 4*Mbps) {
		t.Errorf("f2 rate = %v, want 4Mbps", f2.Rate())
	}
	s.Run()
}

func TestSetCapacityMidFlow(t *testing.T) {
	s := newSim()
	l := s.NewLink("cell", 2*Mbps)
	f := s.StartFlow(FlowSpec{Name: "f", Bits: 2 * MB, Path: []*Link{l}})
	// After 4s, half transferred (8 Mbit). Halve capacity: the remaining
	// 8 Mbit at 1 Mbps take 8 more seconds → total 12 s.
	s.Clock().After(4, func() { l.SetCapacity(1 * Mbps) })
	s.Run()
	if !close(f.End(), 12) {
		t.Errorf("end = %v, want 12", f.End())
	}
	if !f.Done() {
		t.Error("flow should be done")
	}
}

func TestCapacityIncreaseSpeedsCompletion(t *testing.T) {
	s := newSim()
	l := s.NewLink("cell", 1*Mbps)
	f := s.StartFlow(FlowSpec{Name: "f", Bits: 2 * MB, Path: []*Link{l}})
	s.Clock().After(8, func() { l.SetCapacity(8 * Mbps) }) // halfway
	s.Run()
	if !close(f.End(), 9) {
		t.Errorf("end = %v, want 9 (8s at 1Mbps + 1s at 8Mbps)", f.End())
	}
}

func TestAbort(t *testing.T) {
	s := newSim()
	l := s.NewLink("cell", 2*Mbps)
	victim := s.StartFlow(FlowSpec{Name: "victim", Bits: 10 * MB, Path: []*Link{l}})
	other := s.StartFlow(FlowSpec{Name: "other", Bits: 1 * MB, Path: []*Link{l}})
	doneCalled := false
	victim.onDone = func(*Flow) { doneCalled = true }
	s.Clock().After(1, func() { victim.Abort() })
	s.Run()
	if doneCalled {
		t.Error("aborted flow invoked onDone")
	}
	if !victim.Done() {
		t.Error("aborted flow should report Done")
	}
	// other: 1s at 1Mbps = 1Mbit, then 7Mbit at 2Mbps = 3.5s → 4.5s total.
	if !close(other.End(), 4.5) {
		t.Errorf("other end = %v, want 4.5", other.End())
	}
	if victim.Remaining() != 0 {
		t.Errorf("aborted Remaining = %v, want 0", victim.Remaining())
	}
}

func TestOnDoneCallbackTiming(t *testing.T) {
	s := newSim()
	l := s.NewLink("cell", 1*Mbps)
	var at float64 = -1
	s.StartFlow(FlowSpec{Name: "f", Bits: 1 * MB, Path: []*Link{l}, OnDone: func(f *Flow) {
		at = s.Clock().Now()
	}})
	s.Run()
	if !close(at, 8) {
		t.Errorf("onDone at %v, want 8", at)
	}
}

func TestChainedFlowsFromCallback(t *testing.T) {
	// Starting a new flow from an onDone callback models the greedy
	// scheduler assigning the next item to a freed path.
	s := newSim()
	l := s.NewLink("cell", 1*Mbps)
	var second *Flow
	s.StartFlow(FlowSpec{Name: "first", Bits: 1 * MB, Path: []*Link{l}, OnDone: func(*Flow) {
		second = s.StartFlow(FlowSpec{Name: "second", Bits: 1 * MB, Path: []*Link{l}})
	}})
	s.Run()
	if second == nil || !second.Done() {
		t.Fatal("chained flow did not run")
	}
	if !close(second.End(), 16) {
		t.Errorf("second end = %v, want 16", second.End())
	}
}

func TestRemainingMidFlight(t *testing.T) {
	s := newSim()
	l := s.NewLink("cell", 2*Mbps)
	f := s.StartFlow(FlowSpec{Name: "f", Bits: 2 * MB, Path: []*Link{l}})
	s.RunUntil(4)
	if got := f.Remaining(); !close(got, 1*MB) {
		t.Errorf("Remaining at t=4 = %v, want 1MB", got)
	}
	s.Run()
}

func TestZeroCapacityLinkStallsFlows(t *testing.T) {
	s := newSim()
	l := s.NewLink("dead", 0)
	f := s.StartFlow(FlowSpec{Name: "f", Bits: 1 * MB, Path: []*Link{l}})
	if f.Rate() != 0 {
		t.Errorf("rate on zero-capacity link = %v, want 0", f.Rate())
	}
	s.RunUntil(100)
	if f.Done() {
		t.Error("flow on zero-capacity link should never complete")
	}
	// Revive the link; flow should now finish.
	l.SetCapacity(1 * Mbps)
	s.Run()
	if !f.Done() {
		t.Error("flow did not complete after capacity restored")
	}
	if !close(f.End(), 108) {
		t.Errorf("end = %v, want 108", f.End())
	}
}

func TestUtilizationAndLoad(t *testing.T) {
	s := newSim()
	l := s.NewLink("cell", 4*Mbps)
	s.StartFlow(FlowSpec{Name: "a", Bits: 1 * MB, RateCap: 1 * Mbps, Path: []*Link{l}})
	if l.Load() != 1 {
		t.Errorf("Load = %d, want 1", l.Load())
	}
	if got := l.Utilization(); !close(got, 0.25) {
		t.Errorf("Utilization = %v, want 0.25", got)
	}
	s.Run()
	if l.Load() != 0 {
		t.Errorf("Load after drain = %d, want 0", l.Load())
	}
}

func TestStartFlowPanicsOnEmptyPath(t *testing.T) {
	s := newSim()
	defer func() {
		if recover() == nil {
			t.Error("empty path did not panic")
		}
	}()
	s.StartFlow(FlowSpec{Name: "bad", Bits: 1})
}

func TestStartFlowPanicsOnZeroSize(t *testing.T) {
	s := newSim()
	l := s.NewLink("l", 1)
	defer func() {
		if recover() == nil {
			t.Error("zero size did not panic")
		}
	}()
	s.StartFlow(FlowSpec{Name: "bad", Bits: 0, Path: []*Link{l}})
}

// Property: for N equal flows on one link, capacity is split equally and
// conservation holds (sum of rates ≤ capacity, within epsilon).
func TestFairShareProperty(t *testing.T) {
	f := func(nRaw uint8, capRaw uint16) bool {
		n := int(nRaw%20) + 1
		capacity := float64(capRaw%10000)*Kbps + 1*Kbps
		s := newSim()
		l := s.NewLink("l", capacity)
		flows := make([]*Flow, n)
		for i := range flows {
			flows[i] = s.StartFlow(FlowSpec{Name: "f", Bits: 1 * MB, Path: []*Link{l}})
		}
		var sum float64
		for _, fl := range flows {
			if !close(fl.Rate(), capacity/float64(n)) {
				return false
			}
			sum += fl.Rate()
		}
		return sum <= capacity*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: total bytes delivered equal the flow size regardless of how
// capacity jitters during the transfer (work conservation).
func TestWorkConservationUnderCapacityChanges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newSim()
		l := s.NewLink("l", 1*Mbps+rng.Float64()*9*Mbps)
		size := 1*MB + rng.Float64()*9*MB
		fl := s.StartFlow(FlowSpec{Name: "f", Bits: size, Path: []*Link{l}})
		// Jitter capacity a few times.
		for i := 1; i <= 5; i++ {
			at := float64(i)
			c := 0.5*Mbps + rng.Float64()*9*Mbps
			s.Clock().Schedule(at, func() { l.SetCapacity(c) })
		}
		s.Run()
		if !fl.Done() {
			return false
		}
		// Integrate rate over the lifetime via throughput identity:
		// duration × average rate = size. We can't observe the integral
		// directly, but completion with Remaining()==0 plus a sane
		// duration bound implies conservation.
		minCap, maxCap := 0.5*Mbps, 10.5*Mbps
		d := fl.Duration()
		return d >= size/maxCap-1e-6 && d <= size/minCap+1e-6 && fl.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Max(math.Abs(a), math.Abs(b)))
}
