package dsl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"threegol/internal/stats"
)

func TestSyncRatesAnchors(t *testing.T) {
	// Short ADSL2+ loop approaches the technology maximum.
	short := Line{Technology: ADSL2Plus, LoopMetres: 100}
	d, u := short.SyncRates()
	if d < 20e6 || d > 24e6 {
		t.Errorf("100m ADSL2+ down = %.1f Mbps, want ≈22-24", d/1e6)
	}
	if u < 1.2e6 || u > 1.4e6 {
		t.Errorf("100m ADSL2+ up = %.2f Mbps, want ≈1.3", u/1e6)
	}
	// A 2 km ADSL2+ loop lands in single-digit Mbps (rate-reach tables).
	mid := Line{Technology: ADSL2Plus, LoopMetres: 2000}
	d, _ = mid.SyncRates()
	if d < 3e6 || d > 9e6 {
		t.Errorf("2km ADSL2+ down = %.1f Mbps, want 3-9", d/1e6)
	}
	// Beyond reach: no service.
	far := Line{Technology: ADSL1, LoopMetres: 6000}
	d, u = far.SyncRates()
	if d != 0 || u != 0 {
		t.Errorf("6km ADSL = %v/%v, want no sync", d, u)
	}
	// Zero-length loop gives exactly the maximum.
	zero := Line{Technology: ADSL1}
	d, u = zero.SyncRates()
	if d != 8e6 || u != 0.8e6 {
		t.Errorf("0m ADSL = %v/%v, want max rates", d, u)
	}
}

func TestRatesDecreaseWithDistance(t *testing.T) {
	for _, tech := range []Technology{ADSL1, ADSL2Plus} {
		prevD, prevU := math.Inf(1), math.Inf(1)
		for m := 0.0; m <= 5000; m += 250 {
			d, u := (Line{Technology: tech, LoopMetres: m}).SyncRates()
			if d > prevD || u > prevU {
				t.Fatalf("%v: rates not monotone at %vm", tech, m)
			}
			prevD, prevU = d, u
		}
	}
}

func TestNoiseMarginCostsRate(t *testing.T) {
	clean := Line{Technology: ADSL2Plus, LoopMetres: 1000}
	noisy := Line{Technology: ADSL2Plus, LoopMetres: 1000, NoiseMarginDB: 12}
	dc, _ := clean.SyncRates()
	dn, _ := noisy.SyncRates()
	if dn >= dc {
		t.Errorf("noisy line (%.1f) not slower than clean (%.1f)", dn/1e6, dc/1e6)
	}
}

func TestAsymmetryNearPaperValue(t *testing.T) {
	// The paper cites ~1/10 up/down asymmetry for typical ADSL; the
	// asymmetry grows with loop length (downlink decays faster).
	l := Line{Technology: ADSL1, LoopMetres: 1500, NoiseMarginDB: 6}
	a := l.Asymmetry()
	if a < 3 || a > 12 {
		t.Errorf("asymmetry = %.1f, want single-digit ratio near 10", a)
	}
	if (Line{Technology: ADSL1, LoopMetres: 5500}).Asymmetry() != math.Inf(1) {
		t.Error("dead line should report infinite asymmetry")
	}
}

func TestPopulationSample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lines := Population{Technology: ADSL2Plus, MeanLoopMetres: 1200}.Sample(5000, rng)
	if len(lines) != 5000 {
		t.Fatalf("sampled %d lines", len(lines))
	}
	rates := DownRates(lines)
	s := stats.Summarize(rates)
	// Everyone syncs; the mean lands in the broadband mainstream (the
	// paper cites Netalyzr's 6.7 Mbps average for generic ADSL).
	if s.Min <= 0 {
		t.Errorf("some lines failed to sync (min %.2f)", s.Min)
	}
	if s.Mean < 3e6 || s.Mean > 15e6 {
		t.Errorf("mean down = %.1f Mbps, want broadband mainstream", s.Mean/1e6)
	}
	ups := UpRates(lines)
	if stats.Mean(ups) >= s.Mean {
		t.Error("uplink mean should sit far below downlink mean")
	}
}

func TestRuralSpeedupExceedsUrban(t *testing.T) {
	// The paper: "rural areas seem to experience greater speedup but
	// urban areas also have non-negligible benefits."
	g3d, g3u := 4e6, 2.5e6
	urban := Line{Technology: ADSL2Plus, LoopMetres: 500, NoiseMarginDB: 6}
	rural := Line{Technology: ADSL1, LoopMetres: 3500, NoiseMarginDB: 6}
	ud, uu := urban.SpeedupPotential(g3d, g3u)
	rd, ru := rural.SpeedupPotential(g3d, g3u)
	if rd <= ud || ru <= uu {
		t.Errorf("rural speedups (%.1f/%.1f) not above urban (%.1f/%.1f)", rd, ru, ud, uu)
	}
	if ud <= 1 || uu <= 1 {
		t.Errorf("urban speedups (%.2f/%.2f) should still exceed 1", ud, uu)
	}
	// Uplink speedups dominate downlink ones (ADSL asymmetry).
	if uu <= ud || ru <= rd {
		t.Error("uplink speedup should exceed downlink speedup")
	}
}

func TestTechnologyString(t *testing.T) {
	if ADSL1.String() != "ADSL" || ADSL2Plus.String() != "ADSL2+" {
		t.Error("Technology.String mismatch")
	}
}

// Property: sync rates are always within [0, technology max] and the
// line always reports down ≥ up.
func TestSyncRateBoundsProperty(t *testing.T) {
	f := func(metresRaw uint16, marginRaw uint8, techRaw bool) bool {
		tech := ADSL1
		if techRaw {
			tech = ADSL2Plus
		}
		l := Line{
			Technology:    tech,
			LoopMetres:    float64(metresRaw % 8000),
			NoiseMarginDB: float64(marginRaw % 16),
		}
		d, u := l.SyncRates()
		maxD, maxU := tech.maxRates()
		return d >= 0 && u >= 0 && d <= maxD && u <= maxU && d >= u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
