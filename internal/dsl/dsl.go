// Package dsl models ADSL/ADSL2+ access lines: the sync-rate-versus-loop
// length relationship that makes ADSL "often constrained by the distance
// between the customers and the telephone exchange" (§1) — the very
// bottleneck 3GOL compensates for. It also synthesises realistic rate
// populations for trace-driven analyses and explains the paper's
// observation that rural areas (long loops) see the largest onloading
// speedups.
package dsl

import (
	"fmt"
	"math"
	"math/rand"
)

// Technology selects the DSL flavour of a line.
type Technology int

// Supported technologies.
const (
	// ADSL1 is ITU G.992.1: up to ≈8 Mbps down / 0.8 Mbps up.
	ADSL1 Technology = iota
	// ADSL2Plus is ITU G.992.5: up to ≈24 Mbps down / 1.4 Mbps up.
	ADSL2Plus
)

// String implements fmt.Stringer.
func (t Technology) String() string {
	switch t {
	case ADSL1:
		return "ADSL"
	case ADSL2Plus:
		return "ADSL2+"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// maxRates returns the technology's best-case sync rates in bits/s.
func (t Technology) maxRates() (down, up float64) {
	switch t {
	case ADSL2Plus:
		return 24e6, 1.4e6
	default:
		return 8e6, 0.8e6
	}
}

// reach returns the loop length (metres) at which the downlink has
// decayed to roughly a tenth of its maximum — the practical service
// limit of the technology.
func (t Technology) reach() float64 {
	switch t {
	case ADSL2Plus:
		return 3500 // higher frequencies attenuate faster
	default:
		return 5000
	}
}

// Line is one subscriber loop.
type Line struct {
	Technology Technology
	// LoopMetres is the twisted-pair distance to the DSLAM/exchange.
	LoopMetres float64
	// NoiseMarginDB degrades the effective attenuation (cross-talk,
	// in-home wiring); 0 is a clean line, 6–12 dB is typical.
	NoiseMarginDB float64
}

// SyncRates returns the line's downlink and uplink sync rates in bits/s.
//
// The model is the standard exponential rate-reach curve: capacity decays
// with loop attenuation, which grows linearly with distance; noise margin
// adds equivalent distance. Anchors: a 300 m ADSL2+ loop syncs near
// 24 Mbps, a 2 km loop near 8 Mbps, and service dies at the technology
// reach — matching published rate-reach tables to within the spread real
// plants exhibit.
func (l Line) SyncRates() (down, up float64) {
	maxDown, maxUp := l.Technology.maxRates()
	reach := l.Technology.reach()
	// Equivalent distance including the noise margin (≈150 m per dB).
	d := l.LoopMetres + l.NoiseMarginDB*150
	if d <= 0 {
		return maxDown, maxUp
	}
	if d >= reach {
		return 0, 0
	}
	// Exponential decay calibrated so rate(reach) ≈ 10% of max. Uplink
	// uses lower frequencies and decays more slowly.
	kDown := math.Log(10) / reach
	kUp := kDown * 0.55
	down = maxDown * math.Exp(-kDown*d)
	up = maxUp * math.Exp(-kUp*d)
	return down, up
}

// Asymmetry returns the line's downlink:uplink ratio (the paper notes
// ≈10:1 for typical ADSL).
func (l Line) Asymmetry() float64 {
	down, up := l.SyncRates()
	if up <= 0 {
		return math.Inf(1)
	}
	return down / up
}

// Population synthesises subscriber lines with realistic loop-length
// diversity.
type Population struct {
	// Technology of the plant; ADSL2Plus for modern urban exchanges.
	Technology Technology
	// MeanLoopMetres is the average loop length; urban exchanges are
	// ≈1–1.5 km, rural ones several km. 0 selects 1500.
	MeanLoopMetres float64
	// NoiseMarginDB applies to every line; 0 selects 6.
	NoiseMarginDB float64
}

// Sample draws n lines with exponentially distributed loop lengths
// (the canonical subscriber-distance model), clipped to the technology
// reach so every line syncs.
func (p Population) Sample(n int, rng *rand.Rand) []Line {
	lines := make([]Line, n)
	for i := range lines {
		lines[i] = p.SampleOne(rng)
	}
	return lines
}

// SampleOne draws a single line with Sample's exact per-line RNG stream
// but no slice allocation — the fleet engine's per-home generator calls
// it once per household inside an allocation-free loop.
func (p Population) SampleOne(rng *rand.Rand) Line {
	mean := p.MeanLoopMetres
	if mean <= 0 {
		mean = 1500
	}
	margin := p.NoiseMarginDB
	if margin == 0 {
		margin = 6
	}
	reach := p.Technology.reach() - margin*150 - 50
	d := rng.ExpFloat64() * mean
	if d > reach {
		d = reach * (0.8 + 0.2*rng.Float64())
	}
	return Line{
		Technology:    p.Technology,
		LoopMetres:    d,
		NoiseMarginDB: margin,
	}
}

// DownRates extracts the downlink sync rates of a line set (bits/s).
func DownRates(lines []Line) []float64 {
	out := make([]float64, len(lines))
	for i, l := range lines {
		out[i], _ = l.SyncRates()
	}
	return out
}

// UpRates extracts the uplink sync rates of a line set (bits/s).
func UpRates(lines []Line) []float64 {
	out := make([]float64, len(lines))
	for i, l := range lines {
		_, out[i] = l.SyncRates()
	}
	return out
}

// SpeedupPotential returns the 3GOL speedup factor a line would see from
// the given aggregate 3G rate: (dsl+3g)/dsl per direction. Long loops
// (rural areas) yield the largest factors — the paper's geographic
// observation.
func (l Line) SpeedupPotential(g3Down, g3Up float64) (down, up float64) {
	d, u := l.SyncRates()
	if d > 0 {
		down = (d + g3Down) / d
	}
	if u > 0 {
		up = (u + g3Up) / u
	}
	return down, up
}
