package stats

import (
	"fmt"
	"math"
)

// Sketch is a mergeable empirical-CDF sketch: a fixed-width-bin count
// vector over [Lo, Hi) plus exact first-moment bookkeeping. Unlike ECDF
// it never stores the sample, so city-scale fleet shards can each fill
// one and merge-reduce them in O(bins); unlike Histogram its counts are
// int64 and its Merge is exact, so the merged sketch is bit-identical no
// matter how the sample was partitioned — the property the fleet
// engine's determinism-across-workers guarantee rests on.
//
// Observations outside [Lo, Hi) clamp into the first/last bin (no
// observation is lost); Min/Max/Sum track the exact values.
type Sketch struct {
	Lo, Hi float64
	Counts []int64
	N      int64
	Sum    float64
	Min    float64
	Max    float64
}

// NewSketch creates a sketch with the given number of equal-width bins
// over [lo, hi). It panics if bins ≤ 0 or hi ≤ lo, which indicates
// programmer error in experiment setup.
func NewSketch(lo, hi float64, bins int) *Sketch {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid sketch [%v,%v) bins=%d", lo, hi, bins))
	}
	return &Sketch{
		Lo:     lo,
		Hi:     hi,
		Counts: make([]int64, bins),
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
}

// Add records one observation.
func (s *Sketch) Add(x float64) {
	i := int((x - s.Lo) / (s.Hi - s.Lo) * float64(len(s.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(s.Counts) {
		i = len(s.Counts) - 1
	}
	s.Counts[i]++
	s.N++
	s.Sum += x
	if x < s.Min {
		s.Min = x
	}
	if x > s.Max {
		s.Max = x
	}
}

// Merge folds o into s. Both sketches must share [Lo, Hi) and bin count;
// mismatched configurations panic — merging incompatible sketches is a
// programmer error, not a data condition.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil {
		return
	}
	if s.Lo != o.Lo || s.Hi != o.Hi || len(s.Counts) != len(o.Counts) {
		panic(fmt.Sprintf("stats: merging incompatible sketches [%v,%v)×%d and [%v,%v)×%d",
			s.Lo, s.Hi, len(s.Counts), o.Lo, o.Hi, len(o.Counts)))
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.N += o.N
	s.Sum += o.Sum
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Count reports the number of observations recorded.
func (s *Sketch) Count() int64 { return s.N }

// Mean returns the exact sample mean, or 0 for an empty sketch.
func (s *Sketch) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// binWidth returns the width of one bin.
func (s *Sketch) binWidth() float64 {
	return (s.Hi - s.Lo) / float64(len(s.Counts))
}

// At returns the approximate P(X ≤ x), interpolating uniformly inside
// the bin containing x. It returns 0 for an empty sketch.
func (s *Sketch) At(x float64) float64 {
	if s.N == 0 {
		return 0
	}
	if x < s.Lo {
		return 0
	}
	width := s.binWidth()
	pos := (x - s.Lo) / width
	bin := int(pos)
	if bin >= len(s.Counts) {
		return 1
	}
	var cum int64
	for i := 0; i < bin; i++ {
		cum += s.Counts[i]
	}
	frac := pos - float64(bin)
	return (float64(cum) + frac*float64(s.Counts[bin])) / float64(s.N)
}

// Quantile returns the approximate q-quantile (clamping q into [0,1]),
// interpolating uniformly inside the selected bin and clamping the
// result into the exact observed [Min, Max].
func (s *Sketch) Quantile(q float64) float64 {
	if s.N == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	target := q * float64(s.N)
	width := s.binWidth()
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			frac := (target - float64(cum)) / float64(c)
			x := s.Lo + (float64(i)+frac)*width
			if x < s.Min {
				x = s.Min
			}
			if x > s.Max {
				x = s.Max
			}
			return x
		}
		cum += c
	}
	return s.Max
}
