package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestSketchMatchesECDF(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	sk := NewSketch(0, 10, 1000)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		sk.Add(xs[i])
	}
	ecdf := NewECDF(xs)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got, want := sk.Quantile(q), ecdf.Quantile(q)
		if math.Abs(got-want) > 0.05 { // a few bin widths of slack
			t.Errorf("Quantile(%v) = %v, ECDF says %v", q, got, want)
		}
	}
	for _, x := range []float64{1, 2.5, 5, 9} {
		got, want := sk.At(x), ecdf.At(x)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("At(%v) = %v, ECDF says %v", x, got, want)
		}
	}
}

// The property the fleet engine depends on: partitioning a sample into
// shards and merging the per-shard sketches in any grouping yields a
// sketch bit-identical to adding every observation to one sketch.
func TestSketchMergePartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 5
	}
	whole := NewSketch(0, 10, 500)
	for _, x := range xs {
		whole.Add(x)
	}
	parts := make([]*Sketch, 7)
	for i := range parts {
		parts[i] = NewSketch(0, 10, 500)
	}
	for i, x := range xs {
		parts[i%len(parts)].Add(x)
	}
	merged := parts[0]
	for _, p := range parts[1:] {
		merged.Merge(p)
	}
	if !reflect.DeepEqual(whole.Counts, merged.Counts) {
		t.Error("merged counts differ from single-sketch counts")
	}
	if whole.N != merged.N || whole.Min != merged.Min || whole.Max != merged.Max {
		t.Errorf("merged summary (n=%d min=%v max=%v) != whole (n=%d min=%v max=%v)",
			merged.N, merged.Min, merged.Max, whole.N, whole.Min, whole.Max)
	}
	if math.Abs(whole.Sum-merged.Sum) > 1e-6 {
		t.Errorf("merged sum %v != whole %v", merged.Sum, whole.Sum)
	}
}

func TestSketchClampsOutOfRange(t *testing.T) {
	s := NewSketch(0, 1, 10)
	s.Add(-5)
	s.Add(42)
	if s.Counts[0] != 1 || s.Counts[9] != 1 {
		t.Errorf("out-of-range observations not clamped: %v", s.Counts)
	}
	if s.Min != -5 || s.Max != 42 {
		t.Errorf("exact min/max lost: %v/%v", s.Min, s.Max)
	}
	if s.Quantile(0) != -5 || s.Quantile(1) != 42 {
		t.Errorf("extreme quantiles not clamped to observed range: %v/%v",
			s.Quantile(0), s.Quantile(1))
	}
}

func TestSketchEmpty(t *testing.T) {
	s := NewSketch(0, 1, 4)
	if s.Quantile(0.5) != 0 || s.At(0.5) != 0 || s.Mean() != 0 || s.Count() != 0 {
		t.Error("empty sketch should report zeros")
	}
}

func TestSketchMergeIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging incompatible sketches should panic")
		}
	}()
	NewSketch(0, 1, 4).Merge(NewSketch(0, 2, 4))
}

func TestSketchInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid sketch config should panic")
		}
	}()
	NewSketch(1, 1, 10)
}
