package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want Summary
	}{
		{"empty", nil, Summary{}},
		{"single", []float64{3}, Summary{N: 1, Mean: 3, Std: 0, Min: 3, Max: 3, Median: 3}},
		{"pair", []float64{1, 3}, Summary{N: 2, Mean: 2, Std: math.Sqrt2, Min: 1, Max: 3, Median: 2}},
		{"run", []float64{2, 4, 4, 4, 5, 5, 7, 9}, Summary{N: 8, Mean: 5, Std: math.Sqrt(32.0 / 7.0), Min: 2, Max: 9, Median: 4.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Summarize(tt.xs)
			if got.N != tt.want.N || !close(got.Mean, tt.want.Mean) ||
				!close(got.Std, tt.want.Std) || got.Min != tt.want.Min ||
				got.Max != tt.want.Max || !close(got.Median, tt.want.Median) {
				t.Errorf("Summarize(%v) = %+v, want %+v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		q, want float64
	}{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50},
		{0.1, 14}, {-0.5, 10}, {1.5, 50},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !close(got, tt.want) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	tests := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); !close(got, tt.want) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d, want 4", e.Len())
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	pts := e.Points(2)
	if len(pts) != 2 {
		t.Fatalf("Points(2) len = %d, want 2", len(pts))
	}
	if pts[0].X != 1 || pts[1].X != 4 {
		t.Errorf("Points endpoints = %v, want x=1 and x=4", pts)
	}
	if pts[1].Y != 1 {
		t.Errorf("last point Y = %v, want 1", pts[1].Y)
	}
	if got := e.Points(100); len(got) != 4 {
		t.Errorf("Points(100) len = %d, want clamped to 4", len(got))
	}
	if NewECDF(nil).Points(3) != nil {
		t.Error("empty ECDF should yield nil points")
	}
}

// Property: an ECDF is monotone non-decreasing and bounded by [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 || math.IsNaN(probe) || math.IsInf(probe, 0) {
			return true
		}
		e := NewECDF(xs)
		a, b := e.At(probe), e.At(probe+1)
		return a >= 0 && b <= 1 && a <= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.9, 10, 100} {
		h.Add(x)
	}
	want := []int{3, 1, 0, 0, 3} // clamping puts -1 in bin0 and 10,100 in bin4
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h := NewHistogram(0, 1, 13)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Add(rng.Float64())
	}
	var integral float64
	width := 1.0 / 13
	for _, p := range h.Density() {
		integral += p.Y * width
	}
	if !close(integral, 1) {
		t.Errorf("density integral = %v, want 1", integral)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(1, 0, 5) did not panic")
		}
	}()
	NewHistogram(1, 0, 5)
}

func TestViolin(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	v := NewViolin(xs, 4)
	if v.Q2 != 4.5 {
		t.Errorf("Q2 = %v, want 4.5", v.Q2)
	}
	if v.Q1 >= v.Q2 || v.Q2 >= v.Q3 {
		t.Errorf("quartiles not ordered: %v %v %v", v.Q1, v.Q2, v.Q3)
	}
	if len(v.Density) != 4 {
		t.Errorf("density bins = %d, want 4", len(v.Density))
	}
	if z := NewViolin(nil, 4); z.Summary.N != 0 {
		t.Errorf("empty violin should be zero, got %+v", z)
	}
	// Degenerate single-valued sample must not panic.
	NewViolin([]float64{5, 5, 5}, 3)
}

func TestLogNormalFromMoments(t *testing.T) {
	d := LogNormalFromMoments(2.5, 0.74)
	if !close(d.Mean(), 2.5) {
		t.Errorf("Mean = %v, want 2.5", d.Mean())
	}
	if !close(d.Std(), 0.74) {
		t.Errorf("Std = %v, want 0.74", d.Std())
	}
	rng := rand.New(rand.NewSource(42))
	var xs []float64
	for i := 0; i < 20000; i++ {
		xs = append(xs, d.Sample(rng))
	}
	s := Summarize(xs)
	if math.Abs(s.Mean-2.5) > 0.05 {
		t.Errorf("sample mean = %v, want ≈2.5", s.Mean)
	}
	if math.Abs(s.Std-0.74) > 0.05 {
		t.Errorf("sample std = %v, want ≈0.74", s.Std)
	}
}

func TestLogNormalZeroSD(t *testing.T) {
	d := LogNormalFromMoments(3, 0)
	rng := rand.New(rand.NewSource(1))
	if got := d.Sample(rng); !close(got, 3) {
		t.Errorf("degenerate lognormal sample = %v, want 3", got)
	}
}

func TestLogNormalPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LogNormalFromMoments(-1, 1) did not panic")
		}
	}()
	LogNormalFromMoments(-1, 1)
}

func TestTruncNormalStaysInBounds(t *testing.T) {
	d := TruncNormal{Mean: 0, Std: 10, Lo: -1, Hi: 1}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		x := d.Sample(rng)
		if x < d.Lo || x > d.Hi {
			t.Fatalf("sample %v outside [%v,%v]", x, d.Lo, d.Hi)
		}
	}
}

func TestTruncNormalClampFallback(t *testing.T) {
	// Mean far outside the window: rejection will fail, clamp must engage.
	d := TruncNormal{Mean: 100, Std: 0.001, Lo: 0, Hi: 1}
	rng := rand.New(rand.NewSource(7))
	if got := d.Sample(rng); got != 1 {
		t.Errorf("clamped sample = %v, want 1 (Hi)", got)
	}
	d.Mean = -100
	if got := d.Sample(rng); got != 0 {
		t.Errorf("clamped sample = %v, want 0 (Lo)", got)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, lambda := range []float64{0.5, 4, 14.12, 80} {
		var xs []float64
		for i := 0; i < 20000; i++ {
			xs = append(xs, float64(Poisson(rng, lambda)))
		}
		s := Summarize(xs)
		if math.Abs(s.Mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("lambda=%v: sample mean %v", lambda, s.Mean)
		}
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -3) != 0 {
		t.Error("Poisson with non-positive lambda should be 0")
	}
}

func TestExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs []float64
	for i := 0; i < 20000; i++ {
		xs = append(xs, Exponential(rng, 5))
	}
	if m := Mean(xs); math.Abs(m-5) > 0.2 {
		t.Errorf("mean = %v, want ≈5", m)
	}
	if Exponential(rng, 0) != 0 {
		t.Error("Exponential(0) should be 0")
	}
}

func TestParetoBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		x := Pareto(rng, 1.2, 1, 100)
		if x < 1 || x > 100 {
			t.Fatalf("Pareto sample %v outside [1,100]", x)
		}
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func close(a, b float64) bool {
	return math.Abs(a-b) < 1e-9 || math.Abs(a-b) < 1e-6*math.Max(math.Abs(a), math.Abs(b))
}
