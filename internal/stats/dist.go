package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// LogNormal is a log-normal distribution parameterised by the mean and
// standard deviation of the *resulting* variate (not of the underlying
// normal), which is how the paper reports its photo-size and video-size
// populations (e.g. photos: mean 2.5 MB, sd 0.74 MB).
type LogNormal struct {
	Mu    float64 // mean of log X
	Sigma float64 // std of log X
}

// LogNormalFromMoments builds a LogNormal whose variates have the given
// arithmetic mean and standard deviation. It panics when mean ≤ 0 or
// sd < 0 — both indicate a misconfigured experiment.
func LogNormalFromMoments(mean, sd float64) LogNormal {
	if mean <= 0 || sd < 0 {
		panic(fmt.Sprintf("stats: invalid lognormal moments mean=%v sd=%v", mean, sd))
	}
	if sd == 0 {
		return LogNormal{Mu: math.Log(mean), Sigma: 0}
	}
	v := sd * sd
	m2 := mean * mean
	sigma2 := math.Log(1 + v/m2)
	return LogNormal{
		Mu:    math.Log(mean) - sigma2/2,
		Sigma: math.Sqrt(sigma2),
	}
}

// Sample draws one variate.
func (d LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
}

// Mean returns the arithmetic mean of the distribution.
func (d LogNormal) Mean() float64 {
	return math.Exp(d.Mu + d.Sigma*d.Sigma/2)
}

// Std returns the arithmetic standard deviation of the distribution.
func (d LogNormal) Std() float64 {
	s2 := d.Sigma * d.Sigma
	return math.Sqrt((math.Exp(s2) - 1)) * d.Mean()
}

// TruncNormal is a normal distribution truncated to [Lo, Hi], sampled by
// rejection with a clamp fallback. It models bounded physical quantities
// such as signal strength or per-device rate caps.
type TruncNormal struct {
	Mean, Std float64
	Lo, Hi    float64
}

// Sample draws one variate. After 64 rejected draws it clamps, which keeps
// the sampler total even for badly conditioned parameters.
func (d TruncNormal) Sample(rng *rand.Rand) float64 {
	for i := 0; i < 64; i++ {
		x := d.Mean + d.Std*rng.NormFloat64()
		if x >= d.Lo && x <= d.Hi {
			return x
		}
	}
	if d.Mean < d.Lo {
		return d.Lo
	}
	if d.Mean > d.Hi {
		return d.Hi
	}
	return d.Mean
}

// Poisson draws a Poisson(lambda) variate using Knuth's method for small
// lambda and a normal approximation above 30, which is ample for the
// videos-per-day counts the DSLAM generator needs.
func Poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		x := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if x < 0 {
			return 0
		}
		return int(x + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Exponential draws an exponential variate with the given mean.
func Exponential(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// Pareto draws a bounded Pareto variate on [lo, hi] with shape alpha.
// Heavy-tailed per-user demand (the MNO cap-usage population) uses it.
func Pareto(rng *rand.Rand, alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic(fmt.Sprintf("stats: invalid bounded pareto alpha=%v lo=%v hi=%v", alpha, lo, hi))
	}
	u := rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}
