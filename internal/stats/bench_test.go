package stats

import (
	"math/rand"
	"testing"
)

func benchSample(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func BenchmarkQuantile(b *testing.B) {
	xs := benchSample(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Quantile(xs, 0.95)
	}
}

func BenchmarkECDFAt(b *testing.B) {
	e := NewECDF(benchSample(10000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At(0.5)
	}
}

func BenchmarkSummarize(b *testing.B) {
	xs := benchSample(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}
