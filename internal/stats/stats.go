// Package stats provides the descriptive statistics and random-variate
// machinery shared by every 3GOL experiment: summaries (mean, standard
// deviation, quantiles), empirical CDFs, histogram/density sketches used
// for violin-style plots, and deterministic samplers for the synthetic
// trace generators.
//
// All samplers take an explicit *rand.Rand so that experiments are
// reproducible bit-for-bit from a fixed seed.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns a zero Summary when xs is
// empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f med=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation of xs (n-1 denominator), or 0
// when xs has fewer than two elements.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks. xs need not be sorted. It returns 0
// for an empty sample and clamps q into [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ECDF is an empirical cumulative distribution function built from a
// sample. The zero value is not usable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input slice is copied.
func NewECDF(xs []float64) *ECDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// Len reports the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns P(X ≤ x), i.e. the fraction of the sample at or below x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the underlying sample.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return quantileSorted(e.sorted, q)
}

// Points returns up to n evenly spaced (x, P(X≤x)) pairs suitable for
// printing a CDF series. For n ≥ sample size it returns one point per
// observation.
func (e *ECDF) Points(n int) []Point {
	if len(e.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(e.sorted) {
		n = len(e.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(e.sorted) - 1) / max(n-1, 1)
		pts = append(pts, Point{
			X: e.sorted[idx],
			Y: float64(idx+1) / float64(len(e.sorted)),
		})
	}
	return pts
}

// Point is a generic (x, y) pair used when emitting plot series.
type Point struct{ X, Y float64 }

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values outside
// the range are clamped into the first/last bin so no observation is lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics if bins ≤ 0 or hi ≤ lo, which indicates programmer
// error in experiment setup.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) bins=%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total reports the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Density returns the normalised bin densities (sum of density×binwidth
// equals 1) together with bin centres — the raw material of a violin plot.
func (h *Histogram) Density() []Point {
	pts := make([]Point, len(h.Counts))
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		centre := h.Lo + (float64(i)+0.5)*width
		var d float64
		if h.total > 0 {
			d = float64(c) / (float64(h.total) * width)
		}
		pts[i] = Point{X: centre, Y: d}
	}
	return pts
}

// Violin summarises a sample the way the paper's violin plots do: the
// density sketch plus the quartiles.
type Violin struct {
	Density    []Point
	Q1, Q2, Q3 float64
	Summary    Summary
}

// NewViolin builds a Violin over the sample with the given number of
// density bins. An empty sample yields a zero Violin.
func NewViolin(xs []float64, bins int) Violin {
	if len(xs) == 0 {
		return Violin{}
	}
	s := Summarize(xs)
	lo, hi := s.Min, s.Max
	if hi <= lo {
		hi = lo + 1 // degenerate sample: single value
	}
	h := NewHistogram(lo, hi, bins)
	for _, x := range xs {
		h.Add(x)
	}
	return Violin{
		Density: h.Density(),
		Q1:      Quantile(xs, 0.25),
		Q2:      Quantile(xs, 0.5),
		Q3:      Quantile(xs, 0.75),
		Summary: s,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
