// Package capacity reproduces the paper's §2.1 back-of-the-envelope
// comparison between the aggregate wired (ADSL) capacity of a cell's
// coverage area and the cell's own backhaul capacity — the calculation
// establishing that cellular is 1–2 orders of magnitude smaller in
// aggregate yet locally comparable, which motivates onloading.
package capacity

import "math"

// Assumptions are the model inputs; the defaults are the paper's.
type Assumptions struct {
	// CellRadiusM is the tower's coverage radius in metres.
	CellRadiusM float64
	// PopPerKm2 is the population density (downtown metropolitan).
	PopPerKm2 float64
	// PeoplePerHousehold divides population into households.
	PeoplePerHousehold float64
	// ADSLPenetration is the fraction of households with ADSL.
	ADSLPenetration float64
	// ADSLDownMbps is the average ADSL downlink sync speed (the paper
	// cites Netalyzr's 6.7 Mbps average).
	ADSLDownMbps float64
	// ADSLUplinkAsymmetry is the downlink:uplink ratio (the paper notes
	// ~1/10 asymmetry).
	ADSLUplinkAsymmetry float64
	// CellBackhaulMbps is one tower's backhaul capacity (the paper
	// assumes 40–50 Mbps; 45 splits the difference).
	CellBackhaulMbps float64
}

// PaperDefaults returns the assumptions used in §2.1.
func PaperDefaults() Assumptions {
	return Assumptions{
		CellRadiusM:         200,
		PopPerKm2:           35000,
		PeoplePerHousehold:  4,
		ADSLPenetration:     0.8,
		ADSLDownMbps:        6.7,
		ADSLUplinkAsymmetry: 10,
		CellBackhaulMbps:    45,
	}
}

// Result is the computed comparison.
type Result struct {
	// AreaKm2 is the cell's coverage area.
	AreaKm2 float64
	// Subscribers is the population covered by the cell.
	Subscribers float64
	// ADSLLines is the number of ADSL connections in the area.
	ADSLLines float64
	// WiredDownGbps is the aggregate ADSL downlink capacity.
	WiredDownGbps float64
	// WiredUpGbps is the aggregate ADSL uplink capacity.
	WiredUpGbps float64
	// CellGbps is the tower's backhaul capacity.
	CellGbps float64
	// DownRatio is wired/cell on the downlink (the "1–2 orders of
	// magnitude" figure).
	DownRatio float64
	// UpRatio is wired/cell on the uplink (smaller, per the paper).
	UpRatio float64
}

// Compute evaluates the model.
func (a Assumptions) Compute() Result {
	area := math.Pi * a.CellRadiusM * a.CellRadiusM / 1e6 // km²
	subs := area * a.PopPerKm2
	lines := subs / a.PeoplePerHousehold * a.ADSLPenetration
	wiredDown := lines * a.ADSLDownMbps / 1000 // Gbps
	wiredUp := wiredDown / a.ADSLUplinkAsymmetry
	cell := a.CellBackhaulMbps / 1000
	r := Result{
		AreaKm2:       area,
		Subscribers:   subs,
		ADSLLines:     lines,
		WiredDownGbps: wiredDown,
		WiredUpGbps:   wiredUp,
		CellGbps:      cell,
	}
	if cell > 0 {
		r.DownRatio = wiredDown / cell
		r.UpRatio = wiredUp / cell
	}
	return r
}

// OrdersOfMagnitude returns log10 of the downlink ratio — the paper's
// "1–2 orders of magnitude" claim holds when this lies in [1, 2].
func (r Result) OrdersOfMagnitude() float64 {
	if r.DownRatio <= 0 {
		return 0
	}
	return math.Log10(r.DownRatio)
}
