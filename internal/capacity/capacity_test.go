package capacity

import (
	"math"
	"testing"
)

func TestPaperDefaultsReproduceSection21(t *testing.T) {
	r := PaperDefaults().Compute()
	// ~4400 subscribers in a 200 m cell at 35k/km² (the paper rounds to
	// 4375).
	if r.Subscribers < 4200 || r.Subscribers > 4600 {
		t.Errorf("subscribers = %v, want ≈4400", r.Subscribers)
	}
	// ≈875 ADSL lines.
	if r.ADSLLines < 840 || r.ADSLLines > 920 {
		t.Errorf("ADSL lines = %v, want ≈875", r.ADSLLines)
	}
	// ≈5.9 Gbps aggregate wired downlink (paper: 5.863 Gbps).
	if math.Abs(r.WiredDownGbps-5.9) > 0.3 {
		t.Errorf("wired downlink = %v Gbps, want ≈5.9", r.WiredDownGbps)
	}
	// Cellular is 1–2 orders of magnitude smaller.
	oom := r.OrdersOfMagnitude()
	if oom < 1 || oom > 2.5 {
		t.Errorf("orders of magnitude = %v, want within [1, 2.5]", oom)
	}
	// Uplink gap is smaller than downlink gap (1/10 ADSL asymmetry).
	if r.UpRatio >= r.DownRatio {
		t.Errorf("uplink ratio %v should be below downlink ratio %v", r.UpRatio, r.DownRatio)
	}
}

func TestComputeScalesWithInputs(t *testing.T) {
	a := PaperDefaults()
	base := a.Compute()
	a.CellRadiusM *= 2 // 4× area → 4× subscribers and wired capacity
	big := a.Compute()
	if math.Abs(big.Subscribers/base.Subscribers-4) > 1e-9 {
		t.Errorf("doubling radius: subscribers ×%v, want ×4", big.Subscribers/base.Subscribers)
	}
	if math.Abs(big.DownRatio/base.DownRatio-4) > 1e-9 {
		t.Errorf("doubling radius: ratio ×%v, want ×4", big.DownRatio/base.DownRatio)
	}
}

func TestZeroBackhaulYieldsZeroRatios(t *testing.T) {
	a := PaperDefaults()
	a.CellBackhaulMbps = 0
	r := a.Compute()
	if r.DownRatio != 0 || r.UpRatio != 0 || r.OrdersOfMagnitude() != 0 {
		t.Errorf("zero backhaul produced ratios: %+v", r)
	}
}
