// Package integration ties the subsystems together the way a deployment
// would: the network-integrated permit loop (cellular monitoring →
// backend → device gate → discovery), and the full OTT data path
// (device proxies + discovery + HLS-aware client proxy + player) built
// from the exported APIs rather than the emulated Home.
//
// Everything here lives in _test.go files — the package exports nothing
// and exists only as a home for cross-subsystem tests. This file gives
// the package a compiled doc comment so godoc and the check.sh
// package-doc gate can see it.
package integration
