package integration

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"testing"
	"time"
)

// TestCLIPermitDaemon drives the operator-side 3golpermitd binary: feeds
// it a utilisation stream on stdin and checks that permits flip from
// granted to denied as the fed utilisation crosses the threshold.
func TestCLIPermitDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildBinaries(t, "3golpermitd")
	addr := freePort(t, "tcp")

	cmd := exec.Command(bins["3golpermitd"],
		"-listen", addr, "-threshold", "0.7", "-ttl", "1s", "-stdin-feed")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		stdin.Close()
		cmd.Process.Kill()
		cmd.Wait()
	})
	waitForHTTP(t, "http://"+addr)

	ask := func() (granted bool, util float64) {
		t.Helper()
		resp, err := http.Get("http://" + addr + "/permit?device=d1&cell=cellA")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Granted     bool    `json:"granted"`
			Utilization float64 `json:"utilization"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Granted, out.Utilization
	}

	// No feed data yet: default utilisation 0 → granted.
	if granted, _ := ask(); !granted {
		t.Fatal("idle cell denied")
	}

	// Feed congestion for cellA; permits must flip to denied.
	fmt.Fprintln(stdin, "cellA 0.92")
	deadline := time.Now().Add(3 * time.Second)
	denied := false
	for time.Now().Before(deadline) {
		if granted, util := ask(); !granted && util > 0.9 {
			denied = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !denied {
		t.Fatal("congested cell still granted after feed update")
	}

	// Other cells are unaffected (fallback utilisation).
	resp, err := http.Get("http://" + addr + "/permit?device=d1&cell=cellB")
	if err != nil {
		t.Fatal(err)
	}
	body := json.NewDecoder(resp.Body)
	var out struct {
		Granted bool `json:"granted"`
	}
	if err := body.Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !out.Granted {
		t.Error("unrelated cell denied")
	}

	// Garbage feed lines are ignored without crashing the daemon.
	fmt.Fprintln(stdin, "not a valid line with words")
	fmt.Fprintln(stdin, "cellA notanumber")
	time.Sleep(100 * time.Millisecond)
	if granted, _ := ask(); granted {
		t.Error("garbage feed lines altered cellA state")
	}
}
