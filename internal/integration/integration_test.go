// Cross-subsystem deployment-shaped tests; the package doc lives in
// doc.go, the only non-test file.
package integration

import (
	"context"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"threegol/internal/cellular"
	"threegol/internal/core"
	"threegol/internal/discovery"
	"threegol/internal/hls"
	"threegol/internal/linksim"
	"threegol/internal/permit"
	"threegol/internal/proxy"
	"threegol/internal/quota"
	"threegol/internal/scheduler"
	"threegol/internal/simclock"
	"threegol/internal/transfer"
)

// TestNetworkIntegratedPermitLoop wires the permit backend's monitoring
// hook to a live cellular model: while the cell is idle the device gets
// a permit and advertises; once background load congests the cell past
// the threshold, fresh permits are denied and the device withdraws.
func TestNetworkIntegratedPermitLoop(t *testing.T) {
	// A one-sector deployment whose utilisation we control directly by
	// saturating the shared channel with a long background flow.
	sim := linksim.New(simclock.New())
	cellNet := cellular.NewNetwork(sim, rand.New(rand.NewSource(1)), cellular.DefaultParams())
	bs := cellNet.AddBaseStation(cellular.BaseStationConfig{Name: "bs", Sectors: 1})
	cell := bs.Sectors()[0]

	// The monitoring system samples utilisation; the backend must not
	// reach into the single-goroutine simulator from HTTP handlers, so
	// the test publishes snapshots the way a real monitor would.
	var utilSnapshot atomic.Value
	utilSnapshot.Store(0.0)
	backend := &permit.Backend{
		Utilization: func(cellID string) float64 { return utilSnapshot.Load().(float64) },
		Threshold:   0.7,
		TTL:         50 * time.Millisecond,
	}
	backendSrv := httptest.NewServer(backend)
	defer backendSrv.Close()

	permits := &permit.Client{BackendURL: backendSrv.URL, Device: "ph1", Cell: cell.Name()}

	// Device component: proxy gated on the permit, beacon gated the same
	// way.
	srv := &proxy.Server{Dial: &net.Dialer{}, Admit: permits.Allowed}
	proxyAddr, shutdown, err := srv.ListenAndServe(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	browser := &discovery.Browser{TTL: 120 * time.Millisecond}
	discoAddr, err := browser.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer browser.Close()
	beacon := &discovery.Beacon{
		Target:   discoAddr,
		Interval: 20 * time.Millisecond,
		Announce: func() (discovery.Announcement, bool) {
			if !permits.Allowed(context.Background()) {
				return discovery.Announcement{}, false
			}
			return discovery.Announcement{Name: "ph1", ProxyAddr: proxyAddr}, true
		},
	}
	if err := beacon.Start(); err != nil {
		t.Fatal(err)
	}
	defer beacon.Stop()

	// Phase 1: idle cell → permit granted → device visible.
	if devs := browser.WaitFor(1, 2*time.Second); len(devs) != 1 {
		t.Fatal("device not advertised while cell idle")
	}

	// Phase 2: congest the cell — several background subscribers, each
	// radio-capped, jointly saturate the shared downlink channel — and
	// let the cached permit expire.
	for i := 0; i < 8; i++ {
		dev := cellNet.Attach("bg", -78)
		dev.WarmUp()
		dev.StartTransfer(cellular.Downlink, 1e12, nil) // effectively endless
	}
	sim.RunUntil(sim.Clock().Now() + 1)
	utilSnapshot.Store(cell.Utilization())
	if cell.Utilization() < 0.7 {
		t.Fatalf("background flow did not congest the cell (util %.2f)", cell.Utilization())
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(browser.Devices()) == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if devs := browser.Devices(); len(devs) != 0 {
		t.Fatalf("device still advertised under congestion: %+v", devs)
	}
	// The proxy itself also refuses service now.
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hi"))
	}))
	defer origin.Close()
	proxyURL := &url.URL{Scheme: "http", Host: proxyAddr}
	client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)}}
	resp, err := client.Get(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("congested-cell proxy returned %s, want 503", resp.Status)
	}

	grants, denials := backend.Stats()
	if grants == 0 || denials == 0 {
		t.Errorf("backend stats grants=%d denials=%d; want both phases exercised", grants, denials)
	}
}

// TestFullOTTStack builds the deployable pipeline exactly as the CLI
// tools do — two device proxies, discovery, the exported NewVoDProxy —
// and plays a video through it, asserting the phones carried segments.
func TestFullOTTStack(t *testing.T) {
	video := hls.Video{
		Name: "clip", Duration: 30, SegmentDur: 5,
		Qualities: []hls.Quality{{Name: "q1", Bitrate: 300_000}},
	}
	origin := httptest.NewServer(hls.NewOrigin(video))
	defer origin.Close()

	browser := &discovery.Browser{}
	discoAddr, err := browser.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer browser.Close()

	// Two device daemons with byte accounting via quota trackers.
	var trackers []*quota.Tracker
	for _, name := range []string{"ph1", "ph2"} {
		tr := quota.NewTracker(100 << 20)
		trackers = append(trackers, tr)
		srv := &proxy.Server{Dial: &net.Dialer{}, OnBytes: tr.Use, Admit: func(context.Context) bool { return tr.ShouldAdvertise() }}
		addr, shutdown, err := srv.ListenAndServe(context.Background(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer shutdown()
		b := &discovery.Beacon{
			Target:   discoAddr,
			Interval: 20 * time.Millisecond,
			Announce: func() (discovery.Announcement, bool) {
				return discovery.Announcement{
					Name: name, ProxyAddr: addr, AllowanceBytes: tr.Available(),
				}, true
			},
		}
		if err := b.Start(); err != nil {
			t.Fatal(err)
		}
		defer b.Stop()
	}

	// Client side: build routes from discovery, start the accelerating
	// proxy, play through it.
	anns := browser.WaitFor(2, 3*time.Second)
	if len(anns) != 2 {
		t.Fatalf("discovered %d devices, want 2", len(anns))
	}
	var routes []core.Route
	for _, ann := range anns {
		u := &url.URL{Scheme: "http", Host: ann.ProxyAddr}
		routes = append(routes, core.Route{
			Name:   ann.Name,
			Client: &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(u)}},
		})
	}
	handler, err := core.NewVoDProxy(http.DefaultClient, routes, origin.URL, scheduler.Greedy, scheduler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	accel := httptest.NewServer(handler)
	defer accel.Close()

	player := &hls.Player{Client: accel.Client(), PrebufferFrac: 0.4}
	res, err := player.Play(context.Background(), accel.URL+"/clip/master.m3u8", "q1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 6 {
		t.Errorf("segments = %d, want 6", res.Segments)
	}
	if want := int64(300_000 * 30 / 8); res.Bytes != want {
		t.Errorf("bytes = %d, want %d", res.Bytes, want)
	}
	// The device proxies actually carried traffic (quota accounting saw
	// it).
	var carried int64
	for _, tr := range trackers {
		carried += tr.Used()
	}
	if carried == 0 {
		t.Error("no bytes flowed through the device proxies")
	}
}

// TestQuotaGateClosesMidSession verifies the multi-provider behaviour end
// to end: a device with a tiny allowance serves until its tracker runs
// dry, after which the proxy declines and the transaction survives by
// routing around it.
func TestQuotaGateClosesMidSession(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 64*1024))
	}))
	defer origin.Close()

	tr := quota.NewTracker(100 * 1024) // ~1.5 responses worth
	srv := &proxy.Server{Dial: &net.Dialer{}, OnBytes: tr.Use, Admit: func(context.Context) bool { return tr.ShouldAdvertise() }}
	addr, shutdown, err := srv.ListenAndServe(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	u := &url.URL{Scheme: "http", Host: addr}
	phone := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(u)}}
	paths := []scheduler.Path{
		&transfer.DownloadPath{PathName: "adsl", Client: http.DefaultClient},
		&transfer.DownloadPath{PathName: "phone", Client: phone},
	}
	items := make([]scheduler.Item, 12)
	for i := range items {
		items[i] = scheduler.Item{ID: i, Name: origin.URL + "/f", Size: 64 * 1024}
	}
	rep, err := scheduler.Run(context.Background(), scheduler.Greedy, items, paths, scheduler.Options{})
	if err != nil {
		t.Fatalf("transaction should survive quota exhaustion via the ADSL path: %v", err)
	}
	var total int
	for _, st := range rep.PerPath {
		total += st.Items
	}
	if total != 12 {
		t.Errorf("items completed = %d, want 12", total)
	}
	if tr.Available() != 0 {
		t.Errorf("quota not exhausted: %d left", tr.Available())
	}
}
