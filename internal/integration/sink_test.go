package integration

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// multipartSink is a counting multipart-upload receiver for CLI tests.
// It counts distinct filenames: the greedy scheduler's endgame may
// deliver a duplicate replica of an item, which a real upload service
// deduplicates by name.
type multipartSink struct {
	url string

	mu    sync.Mutex
	names map[string]bool
}

func newMultipartSink(t *testing.T) *multipartSink {
	t.Helper()
	s := &multipartSink{names: make(map[string]bool)}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mr, err := r.MultipartReader()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for {
			part, err := mr.NextPart()
			if err != nil {
				break
			}
			io.Copy(io.Discard, part)
			s.mu.Lock()
			s.names[part.FileName()] = true
			s.mu.Unlock()
		}
		w.WriteHeader(http.StatusCreated)
	}))
	t.Cleanup(srv.Close)
	s.url = srv.URL
	return s
}

func (s *multipartSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.names)
}
