package integration

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles the repository's commands once into a temp dir.
func buildBinaries(t *testing.T, names ...string) map[string]string {
	t.Helper()
	root := moduleRoot(t)
	dir := t.TempDir()
	out := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Dir = root
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		out[name] = bin
	}
	return out
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Skip("not running inside the module")
	}
	return filepath.Dir(gomod)
}

// freePort reserves an OS-assigned port and returns host:port after
// releasing it (small race, fine for tests).
func freePort(t *testing.T, network string) string {
	t.Helper()
	if network == "udp" {
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := conn.LocalAddr().String()
		conn.Close()
		return addr
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startDaemon launches a binary and registers cleanup.
func startDaemon(t *testing.T, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() {
			t.Logf("%s logs:\n%s", filepath.Base(bin), logs.String())
		}
	})
}

func waitForHTTP(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if conn, err := net.DialTimeout("tcp", strings.TrimPrefix(url, "http://"), 200*time.Millisecond); err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never came up", url)
}

// TestCLIVoDEndToEnd drives the real binaries exactly as the README
// shows: hlsorigin + two 3gold daemons + 3golc vod, over loopback.
func TestCLIVoDEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildBinaries(t, "hlsorigin", "3gold", "3golc")

	originAddr := freePort(t, "tcp")
	discoAddr := freePort(t, "udp")

	startDaemon(t, bins["hlsorigin"], "-listen", originAddr, "-duration", "20", "-segment", "5")
	waitForHTTP(t, "http://"+originAddr)

	startDaemon(t, bins["3gold"], "-name", "ph1", "-listen", "127.0.0.1:0",
		"-discovery", discoAddr, "-quota-mb", "50")
	startDaemon(t, bins["3gold"], "-name", "ph2", "-listen", "127.0.0.1:0",
		"-discovery", discoAddr, "-quota-mb", "50")

	cmd := exec.Command(bins["3golc"], "vod",
		"-origin", "http://"+originAddr,
		"-path", "/bipbop/master.m3u8",
		"-quality", "q1",
		"-prebuffer", "0.4",
		"-discovery", discoAddr,
		"-devices", "2",
		"-wait", "3s",
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("3golc vod: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"startup latency:", "total download:", "4 segments"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Both devices were discovered and admissible.
	if strings.Count(text, "admissible device") != 2 {
		t.Errorf("expected 2 admissible devices in output:\n%s", text)
	}
}

// TestCLIUploadEndToEnd exercises 3golc upload against a real multipart
// sink through one 3gold daemon.
func TestCLIUploadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildBinaries(t, "3gold", "3golc")

	sink := newMultipartSink(t)
	discoAddr := freePort(t, "udp")
	startDaemon(t, bins["3gold"], "-name", "ph1", "-listen", "127.0.0.1:0",
		"-discovery", discoAddr)

	// Three small files to upload.
	dir := t.TempDir()
	var files []string
	for i := 0; i < 3; i++ {
		f := filepath.Join(dir, fmt.Sprintf("photo%d.jpg", i))
		if err := os.WriteFile(f, bytes.Repeat([]byte{byte(i + 1)}, 100*1024), 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}

	args := append([]string{"upload",
		"-target", sink.url,
		"-discovery", discoAddr,
		"-devices", "1",
		"-wait", "3s",
	}, files...)
	out, err := exec.Command(bins["3golc"], args...).CombinedOutput()
	if err != nil {
		t.Fatalf("3golc upload: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "uploaded 3 files") {
		t.Errorf("output missing upload summary:\n%s", out)
	}
	if got := sink.count(); got != 3 {
		t.Errorf("sink received %d files, want 3", got)
	}
}

// TestCLITracegenAndBench smoke-tests the data tools.
func TestCLITracegenAndBench(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildBinaries(t, "tracegen", "3golbench")

	out, err := exec.Command(bins["tracegen"], "mno", "-users", "5").Output()
	if err != nil {
		t.Fatalf("tracegen: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 6 { // header + 5 users
		t.Errorf("tracegen emitted %d lines, want 6", len(lines))
	}

	out, err = exec.Command(bins["3golbench"], "context").Output()
	if err != nil {
		t.Fatalf("3golbench context: %v", err)
	}
	if !strings.Contains(string(out), "orders of magnitude") {
		t.Errorf("3golbench context output unexpected:\n%s", out)
	}

	out, err = exec.Command(bins["3golbench"], "ablation").Output()
	if err != nil {
		t.Fatalf("3golbench ablation: %v", err)
	}
	for _, want := range []string{"duplication=true", "α=0.75", "PLAYOUT"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("3golbench ablation output missing %q:\n%s", want, out)
		}
	}
}
