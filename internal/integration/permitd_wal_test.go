package integration

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"threegol/internal/permitplane/wal"
)

// shardStatus mirrors the fields of permitplane.ShardStatus this test
// asserts on.
type shardStatus struct {
	Shard       int    `json:"shard"`
	Outstanding int    `json:"outstanding"`
	WALSeq      uint64 `json:"wal_seq"`
	StateHash   string `json:"state_hash"`
	Recovery    *struct {
		RecoveredGrants   int     `json:"recovered_grants"`
		ExpiredOnRecovery int     `json:"expired_on_recovery"`
		StateHash         string  `json:"state_hash"`
		Seconds           float64 `json:"seconds"`
	} `json:"recovery"`
}

func readShards(t *testing.T, addr string) []shardStatus {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/debug/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []shardStatus
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCLIPermitDaemonCrashRecovery is the end-to-end durability pin:
// grants issued by a -wal daemon must survive a kill -9 byte-identically
// (same per-shard state hashes) and keep serving after restart.
func TestCLIPermitDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildBinaries(t, "3golpermitd")
	walDir := t.TempDir()

	start := func(addr string) *exec.Cmd {
		cmd := exec.Command(bins["3golpermitd"],
			"-listen", addr, "-shards", "4", "-ttl", "10m", "-wal", walDir)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waitForHTTP(t, "http://"+addr)
		return cmd
	}

	addr := freePort(t, "tcp")
	cmd := start(addr)
	killed := false
	t.Cleanup(func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// Issue grants across many devices and cells, then snapshot the
	// per-shard state the daemon reports.
	for _, q := range []string{
		"device=d1&cell=cellA", "device=d2&cell=cellB", "device=d3&cell=cellC",
		"device=d4&cell=cellD", "device=d1&cell=cellE", "device=d5&cell=cellA",
	} {
		resp, err := http.Get("http://" + addr + "/permit?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	before := readShards(t, addr)
	var outstanding int
	hashes := map[int]string{}
	for _, st := range before {
		outstanding += st.Outstanding
		hashes[st.Shard] = st.StateHash
	}
	if outstanding != 6 {
		t.Fatalf("%d outstanding grants before kill, want 6", outstanding)
	}

	// kill -9: no drain, no final snapshot — recovery must come from
	// the WAL alone.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	addr2 := freePort(t, "tcp")
	cmd2 := start(addr2)
	t.Cleanup(func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	})

	after := readShards(t, addr2)
	var recovered int
	for _, st := range after {
		if st.Recovery == nil {
			t.Fatalf("shard %d reports no recovery stats on a -wal daemon", st.Shard)
		}
		recovered += st.Recovery.RecoveredGrants
		if st.Recovery.ExpiredOnRecovery != 0 {
			t.Errorf("shard %d expired %d grants during a sub-TTL outage", st.Shard, st.Recovery.ExpiredOnRecovery)
		}
		if got := hashes[st.Shard]; got != st.StateHash {
			t.Errorf("shard %d state hash changed across kill -9:\npre:  %s\npost: %s", st.Shard, got, st.StateHash)
		}
	}
	if recovered != 6 {
		t.Errorf("recovered %d grants, want 6", recovered)
	}

	// The restarted daemon keeps serving; a repeat decision refreshes
	// the recovered grant rather than double-counting it.
	resp, err := http.Get("http://" + addr2 + "/permit?device=d1&cell=cellA")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := readShards(t, addr2)
	total := 0
	for _, st := range final {
		total += st.Outstanding
	}
	if total != 6 {
		t.Errorf("%d outstanding after refresh of a recovered grant, want 6 (no double count)", total)
	}
}

// TestCLIPermitDaemonDrainTimeoutStillSnapshots pins the drain-timeout
// fix: a graceful shutdown whose drain window is consumed by a hung
// request must still flush the final snapshot before exiting.
func TestCLIPermitDaemonDrainTimeoutStillSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildBinaries(t, "3golpermitd")
	walDir := t.TempDir()
	addr := freePort(t, "tcp")

	cmd := exec.Command(bins["3golpermitd"],
		"-listen", addr, "-ttl", "10m", "-wal", walDir, "-drain", "100ms")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	waitForHTTP(t, "http://"+addr)

	resp, err := http.Get("http://" + addr + "/permit?device=d1&cell=cellA")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Hold a connection open so Shutdown cannot complete the drain:
	// an idle pre-opened conn is released, so park a request instead
	// on an endpoint that will block — use a raw half-written request.
	conn, err := (&net.Dialer{}).Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /permit?device=dX&cell=c HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}
	// Header never finishes: the connection is mid-request when the
	// daemon shuts down, forcing the drain to time out.

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	// The final snapshot must exist and carry the grant.
	snap := filepath.Join(walDir, "shard-0", "snapshot.snap")
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no final snapshot after drain-timeout shutdown: %v", err)
	}
	st, _, err := wal.Replay(filepath.Join(walDir, "shard-0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Grants) != 1 {
		t.Errorf("snapshot carries %d grants, want 1", len(st.Grants))
	}
}
