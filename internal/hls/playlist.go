// Package hls implements the subset of Apple HTTP Live Streaming the
// paper's video-on-demand application uses: extended M3U (m3u8) master
// and media playlists, a synthetic origin server with multiple qualities,
// and a player model that measures pre-buffering and total download time.
//
// The paper's client component intercepts the m3u8 playlist and uses the
// multipath scheduler to prefetch the listed segments in parallel; this
// package supplies the playlist machinery and the traffic.
package hls

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Variant is one quality level advertised by a master playlist.
type Variant struct {
	URI       string
	Bandwidth int // bits per second
}

// MasterPlaylist lists the available variants of a video.
type MasterPlaylist struct {
	Variants []Variant
}

// Encode renders the master playlist in m3u8 syntax.
func (m *MasterPlaylist) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#EXTM3U")
	fmt.Fprintln(bw, "#EXT-X-VERSION:3")
	for _, v := range m.Variants {
		fmt.Fprintf(bw, "#EXT-X-STREAM-INF:BANDWIDTH=%d\n%s\n", v.Bandwidth, v.URI)
	}
	return bw.Flush()
}

// String renders the playlist to a string.
func (m *MasterPlaylist) String() string {
	var sb strings.Builder
	_ = m.Encode(&sb) // strings.Builder writes cannot fail
	return sb.String()
}

// ByBandwidth returns the variants sorted ascending by bandwidth.
func (m *MasterPlaylist) ByBandwidth() []Variant {
	out := append([]Variant(nil), m.Variants...)
	sort.Slice(out, func(i, j int) bool { return out[i].Bandwidth < out[j].Bandwidth })
	return out
}

// Segment is one media segment of a media playlist.
type Segment struct {
	URI      string
	Duration float64 // seconds of video
}

// MediaPlaylist lists the segments of one variant.
type MediaPlaylist struct {
	TargetDuration float64
	Segments       []Segment
	Ended          bool // EXT-X-ENDLIST present (VoD)
}

// Encode renders the media playlist in m3u8 syntax.
func (m *MediaPlaylist) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#EXTM3U")
	fmt.Fprintln(bw, "#EXT-X-VERSION:3")
	fmt.Fprintf(bw, "#EXT-X-TARGETDURATION:%d\n", int(m.TargetDuration+0.999))
	fmt.Fprintln(bw, "#EXT-X-MEDIA-SEQUENCE:0")
	for _, s := range m.Segments {
		fmt.Fprintf(bw, "#EXTINF:%.3f,\n%s\n", s.Duration, s.URI)
	}
	if m.Ended {
		fmt.Fprintln(bw, "#EXT-X-ENDLIST")
	}
	return bw.Flush()
}

// String renders the playlist to a string.
func (m *MediaPlaylist) String() string {
	var sb strings.Builder
	_ = m.Encode(&sb) // strings.Builder writes cannot fail
	return sb.String()
}

// TotalDuration returns the summed segment durations in seconds.
func (m *MediaPlaylist) TotalDuration() float64 {
	var t float64
	for _, s := range m.Segments {
		t += s.Duration
	}
	return t
}

// Kind classifies a parsed playlist.
type Kind int

// Playlist kinds.
const (
	KindMaster Kind = iota
	KindMedia
)

// Parsed is the result of Parse: exactly one of Master or Media is set.
type Parsed struct {
	Kind   Kind
	Master *MasterPlaylist
	Media  *MediaPlaylist
}

// Parse reads an m3u8 playlist and classifies it as master (contains
// EXT-X-STREAM-INF) or media (contains EXTINF). It is the parser the
// HLS-aware client proxy applies to intercepted playlist responses.
func Parse(r io.Reader) (*Parsed, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var first string
	for sc.Scan() {
		first = strings.TrimSpace(sc.Text())
		if first != "" {
			break
		}
	}
	if first != "#EXTM3U" {
		return nil, fmt.Errorf("hls: not an extended M3U playlist (first line %q)", first)
	}

	master := &MasterPlaylist{}
	media := &MediaPlaylist{}
	var pendingVariant *Variant
	var pendingSegDur = -1.0
	isMaster, isMedia := false, false

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "#EXT-X-STREAM-INF:"):
			isMaster = true
			v := Variant{}
			attrs := parseAttrs(strings.TrimPrefix(line, "#EXT-X-STREAM-INF:"))
			if bw, err := strconv.Atoi(attrs["BANDWIDTH"]); err == nil {
				v.Bandwidth = bw
			}
			pendingVariant = &v
		case strings.HasPrefix(line, "#EXTINF:"):
			isMedia = true
			spec := strings.TrimPrefix(line, "#EXTINF:")
			if i := strings.IndexByte(spec, ','); i >= 0 {
				spec = spec[:i]
			}
			d, err := strconv.ParseFloat(strings.TrimSpace(spec), 64)
			if err != nil {
				return nil, fmt.Errorf("hls: bad EXTINF duration %q", line)
			}
			pendingSegDur = d
		case strings.HasPrefix(line, "#EXT-X-TARGETDURATION:"):
			d, err := strconv.ParseFloat(strings.TrimPrefix(line, "#EXT-X-TARGETDURATION:"), 64)
			if err != nil {
				return nil, fmt.Errorf("hls: bad target duration %q", line)
			}
			media.TargetDuration = d
		case line == "#EXT-X-ENDLIST":
			media.Ended = true
		case strings.HasPrefix(line, "#"):
			// Unknown/irrelevant tag: ignore (forward compatible).
		default:
			// A URI line closes the pending tag.
			switch {
			case pendingVariant != nil:
				pendingVariant.URI = line
				master.Variants = append(master.Variants, *pendingVariant)
				pendingVariant = nil
			case pendingSegDur >= 0:
				media.Segments = append(media.Segments, Segment{URI: line, Duration: pendingSegDur})
				pendingSegDur = -1
			default:
				return nil, fmt.Errorf("hls: unexpected URI line %q", line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hls: reading playlist: %w", err)
	}
	switch {
	case isMaster && isMedia:
		return nil, fmt.Errorf("hls: playlist mixes STREAM-INF and EXTINF")
	case isMaster:
		return &Parsed{Kind: KindMaster, Master: master}, nil
	case isMedia:
		return &Parsed{Kind: KindMedia, Media: media}, nil
	default:
		return nil, fmt.Errorf("hls: playlist has neither variants nor segments")
	}
}

// parseAttrs parses the KEY=VALUE[,KEY=VALUE...] attribute syntax of
// EXT-X-STREAM-INF, honouring quoted values containing commas.
func parseAttrs(s string) map[string]string {
	attrs := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			break
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		var val string
		if strings.HasPrefix(s, `"`) {
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				val, s = s[1:], ""
			} else {
				val = s[1 : 1+end]
				s = s[end+2:]
				s = strings.TrimPrefix(s, ",")
			}
		} else {
			end := strings.IndexByte(s, ',')
			if end < 0 {
				val, s = s, ""
			} else {
				val, s = s[:end], s[end+1:]
			}
		}
		attrs[key] = val
	}
	return attrs
}

// IsPlaylistURI reports whether the URI names an m3u8 playlist — the test
// the HLS-aware proxy applies to decide whether to intercept a response.
func IsPlaylistURI(uri string) bool {
	u := uri
	if i := strings.IndexAny(u, "?#"); i >= 0 {
		u = u[:i]
	}
	return strings.HasSuffix(strings.ToLower(u), ".m3u8")
}
