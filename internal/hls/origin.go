package hls

import (
	"fmt"
	"net/http"
	"path"
	"strconv"
	"strings"
)

// Quality describes one encoded rendition of a video.
type Quality struct {
	Name    string
	Bitrate int // bits per second
}

// BipBopQualities are the four renditions of Apple's sample HLS stream
// ("bipbop") that the paper's Fig. 6/7 experiments use: Q1=200 kbps,
// Q2=311 kbps, Q3=484 kbps, Q4=738 kbps.
var BipBopQualities = []Quality{
	{Name: "q1", Bitrate: 200_000},
	{Name: "q2", Bitrate: 311_000},
	{Name: "q3", Bitrate: 484_000},
	{Name: "q4", Bitrate: 738_000},
}

// Video describes a synthetic VoD asset.
type Video struct {
	Name       string
	Duration   float64 // seconds; the paper uses 200 s (median YouTube length)
	SegmentDur float64 // seconds per segment; the paper keeps bipbop's 10 s
	Qualities  []Quality
}

// BipBop returns the paper's test video: 200 s, 10 s segments, four
// qualities.
func BipBop() Video {
	return Video{Name: "bipbop", Duration: 200, SegmentDur: 10, Qualities: BipBopQualities}
}

// NumSegments returns the segment count (ceil of duration/segmentDur).
func (v Video) NumSegments() int {
	n := int(v.Duration / v.SegmentDur)
	if float64(n)*v.SegmentDur < v.Duration {
		n++
	}
	return n
}

// SegmentSize returns the byte size of segment i at the given bitrate.
func (v Video) SegmentSize(q Quality, i int) int {
	dur := v.SegmentDur
	if last := v.NumSegments() - 1; i == last {
		if rem := v.Duration - float64(last)*v.SegmentDur; rem > 0 {
			dur = rem
		}
	}
	return int(float64(q.Bitrate) * dur / 8)
}

// TotalBytes returns the full download size of one rendition.
func (v Video) TotalBytes(q Quality) int {
	var total int
	for i := 0; i < v.NumSegments(); i++ {
		total += v.SegmentSize(q, i)
	}
	return total
}

// QualityByName finds a rendition by name.
func (v Video) QualityByName(name string) (Quality, bool) {
	for _, q := range v.Qualities {
		if q.Name == name {
			return q, true
		}
	}
	return Quality{}, false
}

// Origin is an HTTP handler serving the video's master playlist, media
// playlists and segments with deterministic synthetic content:
//
//	/<video>/master.m3u8
//	/<video>/<quality>/playlist.m3u8
//	/<video>/<quality>/seg<i>.ts
type Origin struct {
	video Video
}

// NewOrigin creates the origin handler. It panics when the video has no
// qualities or a non-positive duration (a configuration error).
func NewOrigin(v Video) *Origin {
	if len(v.Qualities) == 0 || v.Duration <= 0 || v.SegmentDur <= 0 {
		panic(fmt.Sprintf("hls: invalid video %+v", v))
	}
	return &Origin{video: v}
}

// Video returns the served asset description.
func (o *Origin) Video() Video { return o.video }

// MasterPlaylist builds the asset's master playlist.
func (o *Origin) MasterPlaylist() *MasterPlaylist {
	m := &MasterPlaylist{}
	for _, q := range o.video.Qualities {
		m.Variants = append(m.Variants, Variant{
			URI:       q.Name + "/playlist.m3u8",
			Bandwidth: q.Bitrate,
		})
	}
	return m
}

// MediaPlaylist builds the media playlist for one rendition.
func (o *Origin) MediaPlaylist(q Quality) *MediaPlaylist {
	v := o.video
	m := &MediaPlaylist{TargetDuration: v.SegmentDur, Ended: true}
	n := v.NumSegments()
	for i := 0; i < n; i++ {
		dur := v.SegmentDur
		if i == n-1 {
			if rem := v.Duration - float64(n-1)*v.SegmentDur; rem > 0 {
				dur = rem
			}
		}
		m.Segments = append(m.Segments, Segment{
			URI:      fmt.Sprintf("seg%04d.ts", i),
			Duration: dur,
		})
	}
	return m
}

// ServeHTTP implements http.Handler.
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	if len(parts) < 2 || parts[0] != o.video.Name {
		http.NotFound(w, r)
		return
	}
	switch {
	case len(parts) == 2 && parts[1] == "master.m3u8":
		w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
		_ = o.MasterPlaylist().Encode(w) // client disconnect; nothing to do
	case len(parts) == 3 && parts[2] == "playlist.m3u8":
		q, ok := o.video.QualityByName(parts[1])
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
		_ = o.MediaPlaylist(q).Encode(w) // client disconnect; nothing to do
	case len(parts) == 3 && strings.HasPrefix(parts[2], "seg") && path.Ext(parts[2]) == ".ts":
		q, ok := o.video.QualityByName(parts[1])
		if !ok {
			http.NotFound(w, r)
			return
		}
		idxStr := strings.TrimSuffix(strings.TrimPrefix(parts[2], "seg"), ".ts")
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 || idx >= o.video.NumSegments() {
			http.NotFound(w, r)
			return
		}
		size := o.video.SegmentSize(q, idx)
		w.Header().Set("Content-Type", "video/mp2t")
		w.Header().Set("Content-Length", strconv.Itoa(size))
		w.Header().Set("Cache-Control", "no-store") // the paper disables caching
		if r.Method == http.MethodHead {
			return
		}
		writeSyntheticBody(w, size, int64(idx)+hashString(q.Name))
	default:
		http.NotFound(w, r)
	}
}

// writeSyntheticBody streams size bytes of deterministic pseudo-random
// data derived from seed, in chunks, without allocating the whole body.
func writeSyntheticBody(w http.ResponseWriter, size int, seed int64) {
	const chunk = 16 * 1024
	buf := make([]byte, chunk)
	x := uint64(seed)*2862933555777941757 + 3037000493
	for size > 0 {
		n := chunk
		if size < n {
			n = size
		}
		for i := 0; i < n; i++ {
			// xorshift64* keeps the body incompressible enough that
			// proxies cannot shrink it (the paper avoids compressing
			// middleboxes by using random payloads).
			x ^= x >> 12
			x ^= x << 25
			x ^= x >> 27
			buf[i] = byte(x * 2685821657736338717 >> 56)
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return
		}
		size -= n
	}
}

func hashString(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= int64(s[i])
		h *= 1099511628211
	}
	return h
}
