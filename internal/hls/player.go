package hls

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"threegol/internal/clock"
)

// PlayerResult reports what a playback session measured.
type PlayerResult struct {
	// PrebufferTime is the delay from the initial playlist request until
	// the pre-buffer target was filled — the paper's startup latency
	// metric ("the measured delay from the initial request of the video
	// to the first frame displayed by the player").
	PrebufferTime time.Duration
	// TotalTime is the delay until the last segment finished downloading.
	TotalTime time.Duration
	// Bytes is the total media bytes received.
	Bytes int64
	// Segments is the number of media segments downloaded.
	Segments int
	// Quality is the variant name that was played.
	Quality string
}

// Player models an HLS VoD client: it fetches the master playlist, picks
// a variant, fetches the media playlist, then requests segments
// sequentially, one at a time, in decode order — exactly the access
// pattern of the players the paper augments. The 3GOL client proxy sits
// between Player and origin and accelerates it transparently.
type Player struct {
	// Client issues the player's HTTP requests (typically pointed at the
	// 3GOL client proxy, or shaped directly at the origin for the ADSL
	// baseline). Required.
	Client *http.Client
	// PrebufferFrac is the fraction of the video duration that must be
	// buffered before playout starts (the paper sweeps 20%..100%).
	PrebufferFrac float64
	// Clock measures playback timings; nil selects the system clock.
	Clock clock.Clock
}

// Play downloads the video variant named quality from the master
// playlist at masterURL and reports timing. An empty quality picks the
// lowest bandwidth variant.
func (p *Player) Play(ctx context.Context, masterURL, quality string) (*PlayerResult, error) {
	if p.Client == nil {
		return nil, fmt.Errorf("hls: Player.Client is nil")
	}
	clk := clock.Or(p.Clock)
	start := clk.Now()

	master, err := p.fetchPlaylist(ctx, masterURL)
	if err != nil {
		return nil, fmt.Errorf("hls: fetching master playlist: %w", err)
	}
	if master.Kind != KindMaster {
		return nil, fmt.Errorf("hls: %s is not a master playlist", masterURL)
	}
	variant, err := pickVariant(master.Master, quality)
	if err != nil {
		return nil, err
	}
	mediaURL, err := resolveRef(masterURL, variant.URI)
	if err != nil {
		return nil, err
	}
	media, err := p.fetchPlaylist(ctx, mediaURL)
	if err != nil {
		return nil, fmt.Errorf("hls: fetching media playlist: %w", err)
	}
	if media.Kind != KindMedia {
		return nil, fmt.Errorf("hls: %s is not a media playlist", mediaURL)
	}

	total := media.Media.TotalDuration()
	target := total * p.PrebufferFrac
	res := &PlayerResult{Quality: variant.URI}

	var buffered float64
	for _, seg := range media.Media.Segments {
		segURL, err := resolveRef(mediaURL, seg.URI)
		if err != nil {
			return nil, err
		}
		n, err := p.fetchSegment(ctx, segURL)
		if err != nil {
			return nil, fmt.Errorf("hls: fetching %s: %w", seg.URI, err)
		}
		res.Bytes += n
		res.Segments++
		buffered += seg.Duration
		if res.PrebufferTime == 0 && (target <= 0 || buffered >= target-1e-9) {
			res.PrebufferTime = clk.Since(start)
		}
	}
	res.TotalTime = clk.Since(start)
	if res.PrebufferTime == 0 {
		res.PrebufferTime = res.TotalTime
	}
	return res, nil
}

func pickVariant(m *MasterPlaylist, quality string) (Variant, error) {
	if len(m.Variants) == 0 {
		return Variant{}, fmt.Errorf("hls: master playlist has no variants")
	}
	if quality == "" {
		return m.ByBandwidth()[0], nil
	}
	for _, v := range m.Variants {
		if containsSegmentName(v.URI, quality) {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("hls: no variant matching %q", quality)
}

// containsSegmentName reports whether the URI has a path segment equal to
// name (so "q1" matches "q1/playlist.m3u8" but not "q10/playlist.m3u8").
func containsSegmentName(uri, name string) bool {
	rest := uri
	for len(rest) > 0 {
		var seg string
		if i := indexByte(rest, '/'); i >= 0 {
			seg, rest = rest[:i], rest[i+1:]
		} else {
			seg, rest = rest, ""
		}
		if seg == name {
			return true
		}
	}
	return false
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func (p *Player) fetchPlaylist(ctx context.Context, u string) (*Parsed, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return Parse(resp.Body)
}

func (p *Player) fetchSegment(ctx context.Context, u string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := p.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %s", resp.Status)
	}
	return io.Copy(io.Discard, resp.Body)
}

// resolveRef resolves a possibly relative playlist reference against its
// base URL.
func resolveRef(base, ref string) (string, error) {
	b, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("hls: bad base URL %q: %w", base, err)
	}
	r, err := url.Parse(ref)
	if err != nil {
		return "", fmt.Errorf("hls: bad reference %q: %w", ref, err)
	}
	return b.ResolveReference(r).String(), nil
}
