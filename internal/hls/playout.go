package hls

import (
	"sort"
	"time"
)

// PlayoutStats summarises a playback session reconstructed from segment
// completion times — the metric the paper's deferred playout-phase
// scheduler extension optimises.
type PlayoutStats struct {
	// Startup is when playback begins (the prebuffer target filled, in
	// order).
	Startup time.Duration
	// Stalls counts rebuffering events after startup.
	Stalls int
	// StallTime is the total rebuffering duration.
	StallTime time.Duration
	// Finished is when the last segment arrived.
	Finished time.Duration
}

// SimulatePlayout reconstructs the player timeline given each segment's
// download-completion time (indexed by segment number), the per-segment
// media duration, and the number of segments the player buffers before
// starting. Playback consumes segments in order at real time; a missing
// next segment stalls the player until it arrives.
//
// The reconstruction is exact for a player with an unbounded forward
// buffer: segment i is playable at ready(i) = max over j ≤ i of done(j),
// and the player begins (or resumes) only when the next needed segment
// is ready.
func SimulatePlayout(done []time.Duration, segDur float64, prebufferSegs int) PlayoutStats {
	var stats PlayoutStats
	if len(done) == 0 {
		return stats
	}
	if prebufferSegs < 1 {
		prebufferSegs = 1
	}
	if prebufferSegs > len(done) {
		prebufferSegs = len(done)
	}
	// ready[i]: when segments 0..i have all arrived.
	ready := make([]time.Duration, len(done))
	var maxSoFar time.Duration
	for i, d := range done {
		if d > maxSoFar {
			maxSoFar = d
		}
		ready[i] = maxSoFar
	}
	stats.Finished = maxSoFar
	stats.Startup = ready[prebufferSegs-1]

	seg := time.Duration(segDur * float64(time.Second))
	// Wall-clock time at which the player finishes consuming segment i.
	clock := stats.Startup
	for i := 0; i < len(done); i++ {
		if ready[i] > clock {
			// The next segment is not there yet: stall until it is.
			stats.Stalls++
			stats.StallTime += ready[i] - clock
			clock = ready[i]
		}
		clock += seg
	}
	return stats
}

// SortedCompletionTimes is a small helper converting a map of segment
// index → completion time into the dense slice SimulatePlayout expects.
func SortedCompletionTimes(m map[int]time.Duration) []time.Duration {
	idx := make([]int, 0, len(m))
	for i := range m {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]time.Duration, 0, len(idx))
	for _, i := range idx {
		out = append(out, m[i])
	}
	return out
}
