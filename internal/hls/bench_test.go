package hls

import (
	"strings"
	"testing"
)

// BenchmarkParseMediaPlaylist measures the proxy's per-interception cost.
func BenchmarkParseMediaPlaylist(b *testing.B) {
	o := NewOrigin(BipBop())
	text := o.MediaPlaylist(BipBopQualities[2]).String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(strings.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeMediaPlaylist(b *testing.B) {
	o := NewOrigin(BipBop())
	pl := o.MediaPlaylist(BipBopQualities[2])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		pl.Encode(&sb)
	}
}
