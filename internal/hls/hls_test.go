package hls

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
)

func TestVideoGeometry(t *testing.T) {
	v := BipBop()
	if got := v.NumSegments(); got != 20 {
		t.Errorf("NumSegments = %d, want 20 (200s / 10s)", got)
	}
	q1, ok := v.QualityByName("q1")
	if !ok {
		t.Fatal("q1 missing")
	}
	if got := v.SegmentSize(q1, 0); got != 200_000*10/8 {
		t.Errorf("segment size = %d, want %d", got, 200_000*10/8)
	}
	if got := v.TotalBytes(q1); got != 200_000*200/8 {
		t.Errorf("total bytes = %d, want %d", got, 200_000*200/8)
	}
}

func TestVideoPartialLastSegment(t *testing.T) {
	v := Video{Name: "v", Duration: 25, SegmentDur: 10, Qualities: BipBopQualities}
	if got := v.NumSegments(); got != 3 {
		t.Fatalf("NumSegments = %d, want 3", got)
	}
	q := v.Qualities[0]
	if got, want := v.SegmentSize(q, 2), int(float64(q.Bitrate)*5/8); got != want {
		t.Errorf("last segment size = %d, want %d (5s)", got, want)
	}
	sum := v.SegmentSize(q, 0) + v.SegmentSize(q, 1) + v.SegmentSize(q, 2)
	if got := v.TotalBytes(q); got != sum {
		t.Errorf("TotalBytes = %d, want %d", got, sum)
	}
}

func TestMasterPlaylistRoundTrip(t *testing.T) {
	o := NewOrigin(BipBop())
	text := o.MasterPlaylist().String()
	parsed, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if parsed.Kind != KindMaster {
		t.Fatalf("kind = %v, want master", parsed.Kind)
	}
	if got := len(parsed.Master.Variants); got != 4 {
		t.Fatalf("variants = %d, want 4", got)
	}
	if parsed.Master.Variants[0].Bandwidth != 200_000 {
		t.Errorf("q1 bandwidth = %d", parsed.Master.Variants[0].Bandwidth)
	}
	sorted := parsed.Master.ByBandwidth()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Bandwidth < sorted[i-1].Bandwidth {
			t.Error("ByBandwidth not sorted")
		}
	}
}

func TestMediaPlaylistRoundTrip(t *testing.T) {
	o := NewOrigin(BipBop())
	q, _ := o.Video().QualityByName("q2")
	text := o.MediaPlaylist(q).String()
	parsed, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if parsed.Kind != KindMedia {
		t.Fatalf("kind = %v, want media", parsed.Kind)
	}
	m := parsed.Media
	if len(m.Segments) != 20 {
		t.Fatalf("segments = %d, want 20", len(m.Segments))
	}
	if !m.Ended {
		t.Error("VoD playlist should carry EXT-X-ENDLIST")
	}
	if m.TotalDuration() != 200 {
		t.Errorf("total duration = %v, want 200", m.TotalDuration())
	}
	if m.TargetDuration != 10 {
		t.Errorf("target duration = %v, want 10", m.TargetDuration)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a playlist",
		"#EXTM3U\n#EXTINF:notanumber,\nseg.ts\n",
		"#EXTM3U\nseg.ts\n", // URI without preceding tag
		"#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1\nv.m3u8\n#EXTINF:1,\ns.ts\n", // mixed
		"#EXTM3U\n#EXT-X-TARGETDURATION:10\n",                                // neither
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse accepted %q", c)
		}
	}
}

func TestParseAttrsQuotedValues(t *testing.T) {
	attrs := parseAttrs(`BANDWIDTH=200000,CODECS="avc1.42e00a,mp4a.40.2",RESOLUTION=416x234`)
	if attrs["BANDWIDTH"] != "200000" {
		t.Errorf("BANDWIDTH = %q", attrs["BANDWIDTH"])
	}
	if attrs["CODECS"] != "avc1.42e00a,mp4a.40.2" {
		t.Errorf("CODECS = %q (quoted comma mishandled)", attrs["CODECS"])
	}
	if attrs["RESOLUTION"] != "416x234" {
		t.Errorf("RESOLUTION = %q", attrs["RESOLUTION"])
	}
}

func TestIsPlaylistURI(t *testing.T) {
	tests := []struct {
		uri  string
		want bool
	}{
		{"http://x/video/master.m3u8", true},
		{"/video/q1/playlist.M3U8?token=1", true},
		{"/video/q1/seg0001.ts", false},
		{"playlist.m3u8#frag", true},
		{"m3u8", false},
	}
	for _, tt := range tests {
		if got := IsPlaylistURI(tt.uri); got != tt.want {
			t.Errorf("IsPlaylistURI(%q) = %v, want %v", tt.uri, got, tt.want)
		}
	}
}

func TestOriginServesEverything(t *testing.T) {
	o := NewOrigin(BipBop())
	srv := httptest.NewServer(o)
	defer srv.Close()

	get := func(p string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	resp, body := get("/bipbop/master.m3u8")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "EXT-X-STREAM-INF") {
		t.Fatalf("master playlist: %s %q", resp.Status, body)
	}
	resp, body = get("/bipbop/q3/playlist.m3u8")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "#EXTINF:10") {
		t.Fatalf("media playlist: %s", resp.Status)
	}
	resp, body = get("/bipbop/q3/seg0000.ts")
	if resp.StatusCode != 200 {
		t.Fatalf("segment: %s", resp.Status)
	}
	if want := 484_000 * 10 / 8; len(body) != want {
		t.Errorf("segment size = %d, want %d", len(body), want)
	}

	// Determinism: re-fetching yields identical bytes.
	_, body2 := get("/bipbop/q3/seg0000.ts")
	if string(body) != string(body2) {
		t.Error("segment content not deterministic")
	}

	for _, p := range []string{
		"/bipbop/q9/playlist.m3u8",
		"/bipbop/q1/seg9999.ts",
		"/bipbop/q1/segXX.ts",
		"/other/master.m3u8",
		"/bipbop",
	} {
		if resp, _ := get(p); resp.StatusCode != 404 {
			t.Errorf("GET %s = %s, want 404", p, resp.Status)
		}
	}

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/bipbop/master.m3u8", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %s, want 405", resp2.Status)
	}
}

func TestPlayerPlaysThroughOrigin(t *testing.T) {
	o := NewOrigin(BipBop())
	srv := httptest.NewServer(o)
	defer srv.Close()

	p := &Player{Client: srv.Client(), PrebufferFrac: 0.2}
	res, err := p.Play(context.Background(), srv.URL+"/bipbop/master.m3u8", "q2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 20 {
		t.Errorf("segments = %d, want 20", res.Segments)
	}
	if want := int64(311_000 * 200 / 8); res.Bytes != want {
		t.Errorf("bytes = %d, want %d", res.Bytes, want)
	}
	if res.PrebufferTime <= 0 || res.PrebufferTime > res.TotalTime {
		t.Errorf("prebuffer %v should be within (0, total=%v]", res.PrebufferTime, res.TotalTime)
	}
}

func TestPlayerDefaultsToLowestQuality(t *testing.T) {
	o := NewOrigin(BipBop())
	srv := httptest.NewServer(o)
	defer srv.Close()
	p := &Player{Client: srv.Client(), PrebufferFrac: 1}
	res, err := p.Play(context.Background(), srv.URL+"/bipbop/master.m3u8", "")
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(200_000 * 200 / 8); res.Bytes != want {
		t.Errorf("bytes = %d, want lowest variant %d", res.Bytes, want)
	}
}

func TestPlayerErrors(t *testing.T) {
	o := NewOrigin(BipBop())
	srv := httptest.NewServer(o)
	defer srv.Close()
	p := &Player{Client: srv.Client(), PrebufferFrac: 0.2}
	if _, err := p.Play(context.Background(), srv.URL+"/bipbop/master.m3u8", "q99"); err == nil {
		t.Error("unknown quality accepted")
	}
	if _, err := p.Play(context.Background(), srv.URL+"/nope/master.m3u8", ""); err == nil {
		t.Error("404 master accepted")
	}
	// Media playlist passed where master expected.
	if _, err := p.Play(context.Background(), srv.URL+"/bipbop/q1/playlist.m3u8", ""); err == nil {
		t.Error("media playlist accepted as master")
	}
	bad := &Player{PrebufferFrac: 0.2}
	if _, err := bad.Play(context.Background(), srv.URL, ""); err == nil {
		t.Error("nil client accepted")
	}
}

func TestContainsSegmentName(t *testing.T) {
	if !containsSegmentName("q1/playlist.m3u8", "q1") {
		t.Error("q1 should match")
	}
	if containsSegmentName("q10/playlist.m3u8", "q1") {
		t.Error("q1 must not match q10")
	}
}

// Property: any video geometry round-trips through playlist encode/parse
// with identical segment count and total duration.
func TestPlaylistRoundTripProperty(t *testing.T) {
	f := func(durRaw, segRaw uint16) bool {
		dur := float64(durRaw%3600) + 1
		seg := float64(segRaw%30) + 1
		v := Video{Name: "v", Duration: dur, SegmentDur: seg, Qualities: BipBopQualities[:1]}
		o := NewOrigin(v)
		text := o.MediaPlaylist(v.Qualities[0]).String()
		parsed, err := Parse(strings.NewReader(text))
		if err != nil {
			return false
		}
		if len(parsed.Media.Segments) != v.NumSegments() {
			return false
		}
		diff := parsed.Media.TotalDuration() - dur
		return diff < 0.01 && diff > -0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewOriginPanicsOnBadVideo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewOrigin with no qualities did not panic")
		}
	}()
	NewOrigin(Video{Name: "x", Duration: 10, SegmentDur: 10})
}
