package hls

import (
	"testing"
	"time"
)

func secs(vals ...float64) []time.Duration {
	out := make([]time.Duration, len(vals))
	for i, v := range vals {
		out[i] = time.Duration(v * float64(time.Second))
	}
	return out
}

func TestSimulatePlayoutNoStalls(t *testing.T) {
	// Segments arrive faster than they play (10 s media each, done at
	// 1..4 s): start after 2 buffered, never stall.
	st := SimulatePlayout(secs(1, 2, 3, 4), 10, 2)
	if st.Startup != 2*time.Second {
		t.Errorf("startup = %v, want 2s", st.Startup)
	}
	if st.Stalls != 0 || st.StallTime != 0 {
		t.Errorf("unexpected stalls: %+v", st)
	}
	if st.Finished != 4*time.Second {
		t.Errorf("finished = %v, want 4s", st.Finished)
	}
}

func TestSimulatePlayoutStalls(t *testing.T) {
	// Seg0 at 1s, seg1 at 30s, seg2 at 31s, 10s media, prebuffer 1.
	// Play seg0 1→11; seg1 ready at 30 → stall 19s; play 30→40; seg2
	// ready at 31 < 40 → no stall.
	st := SimulatePlayout(secs(1, 30, 31), 10, 1)
	if st.Startup != time.Second {
		t.Errorf("startup = %v", st.Startup)
	}
	if st.Stalls != 1 {
		t.Errorf("stalls = %d, want 1", st.Stalls)
	}
	if st.StallTime != 19*time.Second {
		t.Errorf("stall time = %v, want 19s", st.StallTime)
	}
}

func TestSimulatePlayoutOutOfOrderCompletion(t *testing.T) {
	// Seg1 finishes before seg0: playback cannot start until seg0 is in
	// (in-order consumption).
	st := SimulatePlayout(secs(5, 2), 10, 1)
	if st.Startup != 5*time.Second {
		t.Errorf("startup = %v, want 5s (head-of-line)", st.Startup)
	}
}

func TestSimulatePlayoutPrebufferClamps(t *testing.T) {
	st := SimulatePlayout(secs(1, 2), 10, 99)
	if st.Startup != 2*time.Second {
		t.Errorf("startup = %v, want full-buffer clamp 2s", st.Startup)
	}
	st = SimulatePlayout(secs(3), 10, 0)
	if st.Startup != 3*time.Second {
		t.Errorf("startup = %v, want 3s (min prebuffer 1)", st.Startup)
	}
	if got := SimulatePlayout(nil, 10, 1); got.Finished != 0 {
		t.Errorf("empty playout = %+v", got)
	}
}

func TestSortedCompletionTimes(t *testing.T) {
	m := map[int]time.Duration{2: 3 * time.Second, 0: time.Second, 1: 2 * time.Second}
	out := SortedCompletionTimes(m)
	if len(out) != 3 || out[0] != time.Second || out[2] != 3*time.Second {
		t.Errorf("sorted = %v", out)
	}
}
