package measure

import (
	"math"
	"testing"

	"threegol/internal/cellular"
)

func loc(name string) cellular.LocationPreset {
	p, ok := cellular.FindLocation(cellular.MeasurementLocations, name)
	if !ok {
		panic("unknown location " + name)
	}
	return p
}

func TestFig3UplinkPlateausDownlinkScales(t *testing.T) {
	pts := Fig3(loc("loc1"), 10, 4, 42)
	if len(pts) != 10 {
		t.Fatalf("points = %d, want 10", len(pts))
	}
	// Uplink plateaus near the HSUPA cell capacity (≈5 Mbps effective).
	ul10 := pts[9].UpMbps
	if ul10 > 6.2 {
		t.Errorf("uplink at 10 devices = %.2f Mbps, want a plateau ≲6", ul10)
	}
	ul5 := pts[4].UpMbps
	if math.Abs(ul10-ul5) > 1.2 {
		t.Errorf("uplink grew from %.2f (5 dev) to %.2f (10 dev); want plateau", ul5, ul10)
	}
	// Downlink keeps scaling well past the uplink plateau.
	dl10 := pts[9].DownMbps
	if dl10 < 10 {
		t.Errorf("downlink at 10 devices = %.2f Mbps, want ≳10 (paper: up to 14)", dl10)
	}
	// Two devices aggregate around the paper's 4.8 Mbps median.
	if pts[1].DownMbps < 2.5 || pts[1].DownMbps > 6.5 {
		t.Errorf("2-device downlink = %.2f, want ≈4.8", pts[1].DownMbps)
	}
	// Monotone non-decreasing within noise.
	for i := 1; i < len(pts); i++ {
		if pts[i].DownMbps < pts[i-1].DownMbps*0.8 {
			t.Errorf("downlink dropped sharply at n=%d: %.2f → %.2f",
				pts[i].Devices, pts[i-1].DownMbps, pts[i].DownMbps)
		}
	}
}

func TestFig3BalancedLocationExceedsSingleCellUplink(t *testing.T) {
	// Loc3 (dense deployment) spreads devices and can exceed one cell's
	// HSUPA capacity — the paper's stand-out observation.
	pts := Fig3(loc("loc3"), 10, 4, 42)
	ul10 := pts[9].UpMbps
	if ul10 < 3.0 {
		t.Errorf("loc3 uplink at 10 devices = %.2f; multi-sector spreading should lift it", ul10)
	}
	// More than one serving cell: aggregate uplink above a single
	// congested cell's free capacity.
	single := Fig3(loc("loc2"), 10, 4, 42)
	if ul10 <= single[9].UpMbps {
		t.Errorf("balanced loc3 uplink %.2f not above single-cell loc2 %.2f",
			ul10, single[9].UpMbps)
	}
}

func TestTable2MatchesPaperShape(t *testing.T) {
	rows := Table2(cellular.MeasurementLocations, 4, 42)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		// Within 2× of the paper's measured aggregates (shape, not
		// absolutes).
		if r.PaperDown > 0 {
			ratio := r.ThreeGDown / r.PaperDown
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("%s: 3G downlink %.2f vs paper %.2f (×%.2f)",
					r.Location, r.ThreeGDown, r.PaperDown, ratio)
			}
		}
		if r.PaperUp > 0 {
			ratio := r.ThreeGUp / r.PaperUp
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("%s: 3G uplink %.2f vs paper %.2f (×%.2f)",
					r.Location, r.ThreeGUp, r.PaperUp, ratio)
			}
		}
		// Uplink speedups dominate downlink speedups (ADSL asymmetry).
		if r.SpeedupUp <= r.SpeedupDown {
			t.Errorf("%s: uplink speedup %.2f not above downlink %.2f",
				r.Location, r.SpeedupUp, r.SpeedupDown)
		}
	}
	// The night-time residential site beats the rush-hour office site.
	var loc1, loc2 Table2Row
	for _, r := range rows {
		switch r.Location {
		case "loc1":
			loc1 = r
		case "loc2":
			loc2 = r
		}
	}
	if loc1.ThreeGDown <= loc2.ThreeGDown {
		t.Errorf("off-peak loc1 (%.2f) should out-measure peak-hour loc2 (%.2f)",
			loc1.ThreeGDown, loc2.ThreeGDown)
	}
	// Even the fibre-speed location (loc6) sees >1 speedup ("even at
	// overloaded locations ... possible to augment").
	for _, r := range rows {
		if r.SpeedupDown <= 1 || r.SpeedupUp <= 1 {
			t.Errorf("%s: speedups %.2f/%.2f must exceed 1", r.Location, r.SpeedupDown, r.SpeedupUp)
		}
	}
}

func TestCampaignProducesFullCorpus(t *testing.T) {
	samples := Campaign(loc("loc4"), 2, []int{3, 1}, 7)
	// 2 days × 24 hours × (3+1 down + 3+1 up) = 2×24×8 = 384 samples.
	if len(samples) != 384 {
		t.Fatalf("samples = %d, want 384", len(samples))
	}
	for _, s := range samples {
		if s.Mbps <= 0 {
			t.Fatalf("non-positive throughput sample: %+v", s)
		}
		if s.Cluster != 1 && s.Cluster != 3 {
			t.Fatalf("unexpected cluster %d", s.Cluster)
		}
	}
}

func TestFig4HourlyAggregation(t *testing.T) {
	samples := Campaign(loc("loc4"), 2, []int{3, 1}, 7)
	pts := Fig4(samples)
	seen := map[[2]int]bool{}
	for _, p := range pts {
		if p.MeanMbps <= 0 {
			t.Errorf("non-positive mean at %+v", p)
		}
		if math.Abs(p.TotalMbps-p.MeanMbps*float64(p.Group)) > 1e-9 {
			t.Errorf("total %.3f != mean×group %.3f", p.TotalMbps, p.MeanMbps*float64(p.Group))
		}
		seen[[2]int{p.Hour, p.Group}] = true
	}
	// All 24 hours represented for both groups.
	for h := 0; h < 24; h++ {
		if !seen[[2]int{h, 1}] || !seen[[2]int{h, 3}] {
			t.Errorf("hour %d missing from Fig4 aggregation", h)
		}
	}
}

func TestFig4DiurnalShape(t *testing.T) {
	// Per-device throughput at 2 am beats 2 pm on a loaded location
	// (paper: 0.77–1.42 Mbps downlink for 5 devices at 2 pm vs 2 am).
	samples := Campaign(loc("loc2"), 3, []int{5}, 11)
	pts := Fig4(samples)
	var night, noon float64
	for _, p := range pts {
		if p.Group != 5 || p.Dir != cellular.Downlink {
			continue
		}
		switch p.Hour {
		case 2:
			night = p.MeanMbps
		case 14:
			noon = p.MeanMbps
		}
	}
	if night == 0 || noon == 0 {
		t.Fatal("missing 2am/2pm points")
	}
	if night <= noon {
		t.Errorf("2am per-device %.2f not above 2pm %.2f", night, noon)
	}
}

func TestFig5CoversMultipleBaseStations(t *testing.T) {
	samples := Campaign(loc("loc4"), 4, []int{1}, 13)
	violins := Fig5(samples, 10)
	bsSet := map[string]bool{}
	for _, v := range violins {
		if v.Violin.Summary.N == 0 {
			t.Errorf("empty violin for %s/%s", v.Location, v.BS)
		}
		bsSet[v.BS] = true
	}
	if len(bsSet) < 2 {
		t.Errorf("violins cover %d base stations, want ≥2 (day-scale re-association)", len(bsSet))
	}
}

func TestTable3StatisticsShape(t *testing.T) {
	var samples []Sample
	for _, l := range []string{"loc1", "loc2", "loc4", "loc5"} {
		samples = append(samples, Campaign(loc(l), 2, []int{5, 3, 1}, 17)...)
	}
	rows := Table3(samples)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (clusters 1/3/5)", len(rows))
	}
	if rows[0].Cluster != 1 || rows[1].Cluster != 3 || rows[2].Cluster != 5 {
		t.Fatalf("cluster order = %v", rows)
	}
	// Per-device throughput decreases with cluster size (paper's Table 3).
	if !(rows[0].DownMean > rows[1].DownMean && rows[1].DownMean > rows[2].DownMean) {
		t.Errorf("downlink means not decreasing: %.2f %.2f %.2f",
			rows[0].DownMean, rows[1].DownMean, rows[2].DownMean)
	}
	if !(rows[0].UpMean > rows[2].UpMean) {
		t.Errorf("uplink means not decreasing: %.2f vs %.2f", rows[0].UpMean, rows[2].UpMean)
	}
	// Single-device means in the paper's ballpark (dl 1.61, ul 1.09).
	if rows[0].DownMean < 0.8 || rows[0].DownMean > 2.6 {
		t.Errorf("single-device downlink mean %.2f, want ≈1.6", rows[0].DownMean)
	}
	if rows[0].UpMean < 0.5 || rows[0].UpMean > 1.8 {
		t.Errorf("single-device uplink mean %.2f, want ≈1.1", rows[0].UpMean)
	}
	// Maxima below the per-device technology ceilings.
	for _, r := range rows {
		if r.DownMax > 3.5 {
			t.Errorf("cluster %d: downlink max %.2f exceeds radio ceiling", r.Cluster, r.DownMax)
		}
		if r.UpMax > 2.6 {
			t.Errorf("cluster %d: uplink max %.2f exceeds radio ceiling", r.Cluster, r.UpMax)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Fig3(loc("loc1"), 3, 2, 5)
	b := Fig3(loc("loc1"), 3, 2, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Fig3 not deterministic for equal seeds")
		}
	}
}
