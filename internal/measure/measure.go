// Package measure reproduces the paper's §3 active-measurement study over
// the cellular model: programmed devices download and upload 2 MB files
// while the harness records aggregate and per-device throughput by
// location, hour, cluster size and serving base station — the raw series
// behind Fig. 3, Fig. 4, Fig. 5 and Tables 2–3.
package measure

import (
	"fmt"
	"math"

	"threegol/internal/cellular"
	"threegol/internal/linksim"
	"threegol/internal/stats"
)

// ProbeBytes is the transfer size of each probe (the paper uses 2 MB
// files with wget/iperf).
const ProbeBytes = 2 * 1024 * 1024

// Sample is one probe measurement.
type Sample struct {
	Location string
	Hour     float64
	Cluster  int // number of devices probing simultaneously
	Dir      cellular.Direction
	Device   string
	BS       string // serving base station
	Mbps     float64
}

// round runs one synchronized probe round: every device transfers
// ProbeBytes in direction dir starting now; returns one Sample per
// device. Devices are pre-warmed (the paper's handsets were active and
// NTP-synchronised).
func round(site *cellular.Site, devs []*cellular.Device, dir cellular.Direction, cluster int) []Sample {
	samples := make([]Sample, 0, len(devs))
	hour := math.Mod(site.Sim.Clock().Now()/3600, 24)
	pending := len(devs)
	for _, d := range devs {
		d := d
		d.WarmUp()
		d.StartTransfer(dir, ProbeBytes*8, func(tr *cellular.Transfer) {
			samples = append(samples, Sample{
				Location: site.Preset.Name,
				Hour:     hour,
				Cluster:  cluster,
				Dir:      dir,
				Device:   d.Name(),
				BS:       d.Cell().BaseStation().Name(),
				Mbps:     tr.Throughput() / linksim.Mbps,
			})
			pending--
		})
	}
	site.Sim.Run()
	if pending != 0 {
		panic(fmt.Sprintf("measure: %d probes never completed", pending))
	}
	return samples
}

// AggregatePoint is one point of Fig. 3: total throughput achieved by n
// simultaneous devices.
type AggregatePoint struct {
	Location string
	Devices  int
	DownMbps float64
	UpMbps   float64
}

// Fig3 reproduces the device-scaling experiment: starting from one
// device, a new device joins every 20 minutes and all active devices
// probe the channel together (reps rounds each for down- and uplink).
func Fig3(preset cellular.LocationPreset, maxDevices, reps int, seed int64) []AggregatePoint {
	if reps <= 0 {
		reps = 4
	}
	site := cellular.BuildSite(preset, seed)
	var devs []*cellular.Device
	var points []AggregatePoint
	for n := 1; n <= maxDevices; n++ {
		devs = append(devs, site.AttachDevices(1)...)
		pt := AggregatePoint{Location: preset.Name, Devices: n}
		for r := 0; r < reps; r++ {
			pt.DownMbps += sumMbps(round(site, devs, cellular.Downlink, n))
			pt.UpMbps += sumMbps(round(site, devs, cellular.Uplink, n))
		}
		pt.DownMbps /= float64(reps)
		pt.UpMbps /= float64(reps)
		points = append(points, pt)
		// Next device joins 20 minutes later.
		site.Sim.RunUntil(site.Sim.Clock().Now() + 20*60)
		site.Network.RefreshLoad()
	}
	return points
}

func sumMbps(samples []Sample) float64 {
	var t float64
	for _, s := range samples {
		t += s.Mbps
	}
	return t
}

// Campaign reproduces the five-day temporal study behind Fig. 4, Fig. 5
// and Table 3: at every hour of every day, groups of the given sizes
// probe down- and uplink; each probe yields one Sample.
func Campaign(preset cellular.LocationPreset, days int, groups []int, seed int64) []Sample {
	if days <= 0 {
		days = 5
	}
	if len(groups) == 0 {
		groups = []int{5, 3, 1}
	}
	maxGroup := 0
	for _, g := range groups {
		if g > maxGroup {
			maxGroup = g
		}
	}
	site := cellular.BuildSite(preset, seed)
	devs := site.AttachDevices(maxGroup)

	var samples []Sample
	startDay := math.Floor(site.Sim.Clock().Now() / 86400)
	for day := 0; day < days; day++ {
		if day > 0 {
			// Day-scale re-association: handsets come back on a possibly
			// different best server, so the campaign observes more than
			// one base station per location (as the paper reports).
			for _, d := range devs {
				d.Detach()
			}
			devs = site.AttachDevicesPrimary(maxGroup, day)
		}
		for hour := 0; hour < 24; hour++ {
			base := (startDay+float64(day+1))*86400 + float64(hour)*3600
			// Downloads start at :10, uploads at :20 (the paper's
			// schedule), one group after another.
			at := base + 10*60
			for _, g := range groups {
				site.Sim.RunUntil(math.Max(at, site.Sim.Clock().Now()))
				site.Network.RefreshLoad()
				samples = append(samples, round(site, devs[:g], cellular.Downlink, g)...)
				at += 150
			}
			at = base + 20*60
			for _, g := range groups {
				site.Sim.RunUntil(math.Max(at, site.Sim.Clock().Now()))
				site.Network.RefreshLoad()
				samples = append(samples, round(site, devs[:g], cellular.Uplink, g)...)
				at += 150
			}
		}
	}
	return samples
}

// HourlyPoint is one Fig. 4 point: per-device throughput for a group
// size at an hour of day, averaged across days.
type HourlyPoint struct {
	Location  string
	Hour      int
	Group     int
	Dir       cellular.Direction
	MeanMbps  float64 // mean per-device throughput
	TotalMbps float64 // group aggregate
}

// Fig4 aggregates a Campaign into hourly per-device throughput series.
func Fig4(samples []Sample) []HourlyPoint {
	type key struct {
		loc   string
		hour  int
		group int
		dir   cellular.Direction
	}
	acc := make(map[key][]float64)
	for _, s := range samples {
		k := key{s.Location, int(s.Hour), s.Cluster, s.Dir}
		acc[k] = append(acc[k], s.Mbps)
	}
	var out []HourlyPoint
	for k, v := range acc {
		mean := stats.Mean(v)
		out = append(out, HourlyPoint{
			Location: k.loc, Hour: k.hour, Group: k.group, Dir: k.dir,
			MeanMbps:  mean,
			TotalMbps: mean * float64(k.group),
		})
	}
	return out
}

// BSViolin is one Fig. 5 violin: the distribution of single-device
// throughput served by one base station.
type BSViolin struct {
	Location string
	BS       string
	Dir      cellular.Direction
	Violin   stats.Violin
}

// Fig5 groups single-device samples by serving base station.
func Fig5(samples []Sample, bins int) []BSViolin {
	type key struct {
		loc, bs string
		dir     cellular.Direction
	}
	acc := make(map[key][]float64)
	for _, s := range samples {
		if s.Cluster != 1 {
			continue
		}
		k := key{s.Location, s.BS, s.Dir}
		acc[k] = append(acc[k], s.Mbps)
	}
	var out []BSViolin
	for k, v := range acc {
		out = append(out, BSViolin{
			Location: k.loc, BS: k.bs, Dir: k.dir,
			Violin: stats.NewViolin(v, bins),
		})
	}
	return out
}

// Table3Row is one row of Table 3: per-device throughput statistics for
// a cluster size.
type Table3Row struct {
	Cluster                   int
	UpMean, UpMax, UpSd       float64
	DownMean, DownMax, DownSd float64
}

// Table3 computes per-device throughput statistics by cluster size.
func Table3(samples []Sample) []Table3Row {
	clusters := map[int]bool{}
	for _, s := range samples {
		clusters[s.Cluster] = true
	}
	var out []Table3Row
	for _, c := range sortedKeys(clusters) {
		row := Table3Row{Cluster: c}
		var up, down []float64
		for _, s := range samples {
			if s.Cluster != c {
				continue
			}
			if s.Dir == cellular.Uplink {
				up = append(up, s.Mbps)
			} else {
				down = append(down, s.Mbps)
			}
		}
		us, ds := stats.Summarize(up), stats.Summarize(down)
		row.UpMean, row.UpMax, row.UpSd = us.Mean, us.Max, us.Std
		row.DownMean, row.DownMax, row.DownSd = ds.Mean, ds.Max, ds.Std
		out = append(out, row)
	}
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Table2Row is one row of Table 2: DSL vs 3-device 3G throughput and the
// 3GOL speedup at the preset's measurement hour.
type Table2Row struct {
	Location    string
	Description string
	Hour        float64
	DSLDown     float64 // Mbps
	DSLUp       float64
	ThreeGDown  float64 // 3-device aggregate, Mbps
	ThreeGUp    float64
	SpeedupDown float64 // (DSL+3G)/DSL
	SpeedupUp   float64
	// PaperDown/PaperUp are the paper's measured aggregates for
	// comparison (0 if unreported).
	PaperDown, PaperUp float64
}

// Table2 measures every preset with a 3-device cluster at its listed
// hour.
func Table2(presets []cellular.LocationPreset, reps int, seed int64) []Table2Row {
	if reps <= 0 {
		reps = 4
	}
	var rows []Table2Row
	for i, p := range presets {
		site := cellular.BuildSite(p, seed+int64(i)*13)
		devs := site.AttachDevices(3)
		var down, up float64
		for r := 0; r < reps; r++ {
			down += sumMbps(round(site, devs, cellular.Downlink, 3))
			up += sumMbps(round(site, devs, cellular.Uplink, 3))
		}
		down /= float64(reps)
		up /= float64(reps)
		dslDown := p.DSLDown / linksim.Mbps
		dslUp := p.DSLUp / linksim.Mbps
		rows = append(rows, Table2Row{
			Location:    p.Name,
			Description: p.Description,
			Hour:        p.Hour,
			DSLDown:     dslDown,
			DSLUp:       dslUp,
			ThreeGDown:  down,
			ThreeGUp:    up,
			SpeedupDown: (dslDown + down) / dslDown,
			SpeedupUp:   (dslUp + up) / dslUp,
			PaperDown:   p.Paper3GDown / linksim.Mbps,
			PaperUp:     p.Paper3GUp / linksim.Mbps,
		})
	}
	return rows
}
