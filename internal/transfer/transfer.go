// Package transfer binds the multipath scheduler to HTTP: download paths
// issue GET requests (directly over the ADSL route or through a 3G
// device's proxy), upload paths stream multipart/form-data POSTs — the
// two transports the paper's client component uses for video-on-demand
// prefetching and photo upload.
package transfer

import (
	"context"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"sync"

	"threegol/internal/clock"
	"threegol/internal/obs/eventlog"
	"threegol/internal/scheduler"
)

// DownloadPath fetches items by URL over one HTTP route. It implements
// scheduler.Path: each item's Name must be an absolute URL.
type DownloadPath struct {
	// PathName labels the route in reports ("adsl", "phone1", ...).
	PathName string
	// Client issues the GETs. Route identity lives in the client's
	// transport: the ADSL path uses a dialer shaped to the DSL line; a
	// phone path uses a transport whose Proxy points at the device.
	Client *http.Client
	// Sink consumes each item's body; nil discards it. The HLS client
	// proxy installs a caching sink here. Sink must be safe for
	// concurrent calls with distinct items.
	Sink func(item scheduler.Item, body io.Reader) (int64, error)
	// Metrics, when non-nil, receives transfer instrumentation (see
	// NewMetrics); one Metrics may be shared across paths.
	Metrics *Metrics
	// Events, when non-nil, records a flight-recorder span per transfer,
	// parented to the TraceContext riding ctx (the scheduler's attempt
	// span). The trace also propagates on the request's X-3gol-Trace
	// header, with or without a local log.
	Events *eventlog.Log
	// Clock times transfers for Metrics; nil selects the system clock.
	Clock clock.Clock
}

// Name implements scheduler.Path.
func (p *DownloadPath) Name() string { return p.PathName }

// Transfer implements scheduler.Path: GET the item and feed it to the
// sink, returning bytes moved (partial on cancellation).
func (p *DownloadPath) Transfer(ctx context.Context, item scheduler.Item) (int64, error) {
	return p.transfer(ctx, item, nil)
}

// TransferProgress implements scheduler.ProgressPath: Transfer with a
// cumulative byte-progress hook observing the response body stream, so
// the scheduler's stall watchdog can abort a transfer whose connection
// is up but silent.
func (p *DownloadPath) TransferProgress(ctx context.Context, item scheduler.Item, progress func(int64)) (int64, error) {
	return p.transfer(ctx, item, progress)
}

func (p *DownloadPath) transfer(ctx context.Context, item scheduler.Item, progress func(int64)) (n int64, err error) {
	clk := clock.Or(p.Clock)
	t0 := clk.Now()
	tc, _ := eventlog.FromContext(ctx)
	sp := p.Events.Begin(tc, "transfer.download", "item", item.Name, "path", p.PathName)
	defer func() {
		p.Metrics.done(dirDownload, n, err, ctx.Err() != nil, clk.Since(t0).Seconds())
		sp.End("outcome", outcome(err, ctx), "bytes", eventlog.Int(n))
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, item.Name, nil)
	if err != nil {
		return 0, fmt.Errorf("transfer: building request for %s: %w", item.Name, err)
	}
	eventlog.InjectHTTP(req.Header, propagated(sp, tc))
	resp, err := p.Client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("transfer: GET %s via %s: %w", item.Name, p.PathName, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("transfer: GET %s via %s: status %s", item.Name, p.PathName, resp.Status)
	}
	sink := p.Sink
	if sink == nil {
		sink = func(_ scheduler.Item, body io.Reader) (int64, error) {
			return io.Copy(io.Discard, body)
		}
	}
	body := io.Reader(resp.Body)
	if progress != nil {
		body = &progressReader{r: body, fn: progress}
	}
	n, err = sink(item, body)
	if err != nil {
		// Prefer reporting cancellation over the wrapped copy error so
		// the scheduler classifies aborted replicas correctly.
		if ctx.Err() != nil {
			return n, ctx.Err()
		}
		return n, fmt.Errorf("transfer: reading %s via %s: %w", item.Name, p.PathName, err)
	}
	return n, nil
}

// ItemSource supplies an item's content for upload. Implementations must
// be safe for concurrent calls (the greedy endgame may read the same item
// on two paths at once, so each call must return an independent reader).
type ItemSource func(item scheduler.Item) (io.ReadCloser, error)

// UploadPath uploads items to TargetURL as multipart/form-data POSTs —
// the request shape of Facebook/Flickr/Picasa native clients the paper
// emulates.
type UploadPath struct {
	PathName string
	Client   *http.Client
	// TargetURL receives the POSTs.
	TargetURL string
	// Field is the form field name; empty selects "file".
	Field string
	// Source opens each item's content.
	Source ItemSource
	// Metrics, when non-nil, receives transfer instrumentation (see
	// NewMetrics); one Metrics may be shared across paths.
	Metrics *Metrics
	// Events, when non-nil, records a flight-recorder span per transfer,
	// parented to the TraceContext riding ctx; the trace also propagates
	// on the POST's X-3gol-Trace header.
	Events *eventlog.Log
	// Clock times transfers for Metrics; nil selects the system clock.
	Clock clock.Clock
}

// Name implements scheduler.Path.
func (p *UploadPath) Name() string { return p.PathName }

// Transfer implements scheduler.Path: stream one multipart POST. The
// returned byte count covers the item content (not multipart framing).
func (p *UploadPath) Transfer(ctx context.Context, item scheduler.Item) (int64, error) {
	return p.transfer(ctx, item, nil)
}

// TransferProgress implements scheduler.ProgressPath: Transfer with a
// cumulative byte-progress hook observing the request body stream.
func (p *UploadPath) TransferProgress(ctx context.Context, item scheduler.Item, progress func(int64)) (int64, error) {
	return p.transfer(ctx, item, progress)
}

func (p *UploadPath) transfer(ctx context.Context, item scheduler.Item, progress func(int64)) (n int64, err error) {
	clk := clock.Or(p.Clock)
	t0 := clk.Now()
	tc, _ := eventlog.FromContext(ctx)
	sp := p.Events.Begin(tc, "transfer.upload", "item", item.Name, "path", p.PathName)
	defer func() {
		p.Metrics.done(dirUpload, n, err, ctx.Err() != nil, clk.Since(t0).Seconds())
		sp.End("outcome", outcome(err, ctx), "bytes", eventlog.Int(n))
	}()
	if p.Source == nil {
		return 0, fmt.Errorf("transfer: UploadPath %s has no Source", p.PathName)
	}
	content, err := p.Source(item)
	if err != nil {
		return 0, fmt.Errorf("transfer: opening %s: %w", item.Name, err)
	}

	pr, pw := io.Pipe()
	mw := multipart.NewWriter(pw)
	counter := &countingReader{r: content, fn: progress}

	// The writer goroutine's lifecycle is the pipe itself: every exit path
	// closes pw, which unblocks the POST body reader, and Client.Do below
	// cannot return before the pipe is closed or broken.
	go func() { //3golvet:allow goroleak — joined through the pipe close, not a channel
		defer content.Close()
		field := p.Field
		if field == "" {
			field = "file"
		}
		part, err := mw.CreateFormFile(field, item.Name)
		if err != nil {
			pw.CloseWithError(err)
			return
		}
		if _, err := io.Copy(part, counter); err != nil {
			pw.CloseWithError(err)
			return
		}
		pw.CloseWithError(mw.Close())
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.TargetURL, pr)
	if err != nil {
		pr.Close()
		return 0, fmt.Errorf("transfer: building POST for %s: %w", item.Name, err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	eventlog.InjectHTTP(req.Header, propagated(sp, tc))
	resp, err := p.Client.Do(req)
	if err != nil {
		pr.Close()
		n := counter.count()
		if ctx.Err() != nil {
			return n, ctx.Err()
		}
		return n, fmt.Errorf("transfer: POST %s via %s: %w", item.Name, p.PathName, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated &&
		resp.StatusCode != http.StatusNoContent {
		return counter.count(), fmt.Errorf("transfer: POST %s via %s: status %s",
			item.Name, p.PathName, resp.Status)
	}
	return counter.count(), nil
}

// outcome classifies a finished transfer for the flight recorder,
// preferring cancellation (the endgame losing-replica case) over a
// generic error.
func outcome(err error, ctx context.Context) string {
	switch {
	case err == nil:
		return "ok"
	case ctx.Err() != nil:
		return "cancelled"
	default:
		return "error"
	}
}

// propagated picks the trace position to stamp on the outgoing request:
// the local transfer span when a log is wired, else the caller's
// context — so traces cross the proxy boundary even on uninstrumented
// paths.
func propagated(sp eventlog.Span, tc eventlog.TraceContext) eventlog.TraceContext {
	if c := sp.Context(); c.Valid() {
		return c
	}
	return tc
}

type countingReader struct {
	r  io.Reader
	fn func(int64) // optional progress hook (cumulative bytes)
	mu sync.Mutex
	n  int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.mu.Lock()
	c.n += int64(n)
	total := c.n
	c.mu.Unlock()
	if c.fn != nil && n > 0 {
		c.fn(total)
	}
	return n, err
}

// progressReader forwards Reads, reporting the cumulative byte count to
// fn after every productive read.
type progressReader struct {
	r     io.Reader
	fn    func(int64)
	total int64
}

func (p *progressReader) Read(b []byte) (int, error) {
	n, err := p.r.Read(b)
	if n > 0 {
		p.total += int64(n)
		p.fn(p.total)
	}
	return n, err
}

func (c *countingReader) count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Cache is a concurrency-safe in-memory store of completed item bodies,
// keyed by item name. The HLS client proxy prefetches segments into a
// Cache through the scheduler and serves the player's sequential GETs
// from it, waiting when the player outruns the prefetcher.
type Cache struct {
	mu      sync.Mutex
	entries map[string][]byte
	waiters map[string][]chan []byte
}

// NewCache creates an empty cache.
func NewCache() *Cache {
	return &Cache{
		entries: make(map[string][]byte),
		waiters: make(map[string][]chan []byte),
	}
}

// Put stores a completed item and releases any waiters.
func (c *Cache) Put(name string, body []byte) {
	c.mu.Lock()
	c.entries[name] = body
	ws := c.waiters[name]
	delete(c.waiters, name)
	c.mu.Unlock()
	for _, w := range ws {
		w <- body
	}
}

// Get returns the cached body, if present.
func (c *Cache) Get(name string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.entries[name]
	return b, ok
}

// Wait blocks until the item is cached or the context is cancelled.
func (c *Cache) Wait(ctx context.Context, name string) ([]byte, error) {
	b, ch := c.subscribe(name)
	if ch == nil {
		return b, nil
	}
	select {
	case b := <-ch:
		return b, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// subscribe returns the cached body (nil channel), or registers and
// returns a waiter channel for a not-yet-cached item.
func (c *Cache) subscribe(name string) ([]byte, chan []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.entries[name]; ok {
		return b, nil
	}
	ch := make(chan []byte, 1)
	c.waiters[name] = append(c.waiters[name], ch)
	return nil, ch
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes reports the total cached payload size.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, b := range c.entries {
		t += int64(len(b))
	}
	return t
}

// CachingSink returns a DownloadPath sink that stores bodies into cache
// under the item's name.
func CachingSink(cache *Cache) func(scheduler.Item, io.Reader) (int64, error) {
	return func(item scheduler.Item, body io.Reader) (int64, error) {
		buf, err := io.ReadAll(body)
		if err != nil {
			return int64(len(buf)), err
		}
		cache.Put(item.Name, buf)
		return int64(len(buf)), nil
	}
}
