package transfer

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"threegol/internal/scheduler"
)

func originServer(t *testing.T, size int) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/missing") {
			http.NotFound(w, r)
			return
		}
		w.Write(bytes.Repeat([]byte(r.URL.Path[1:2]), size))
	}))
}

func TestDownloadPathTransfers(t *testing.T) {
	srv := originServer(t, 1000)
	defer srv.Close()
	p := &DownloadPath{PathName: "adsl", Client: srv.Client()}
	n, err := p.Transfer(context.Background(), scheduler.Item{ID: 0, Name: srv.URL + "/a"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Errorf("bytes = %d, want 1000", n)
	}
	if p.Name() != "adsl" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestDownloadPathStatusError(t *testing.T) {
	srv := originServer(t, 10)
	defer srv.Close()
	p := &DownloadPath{PathName: "adsl", Client: srv.Client()}
	if _, err := p.Transfer(context.Background(), scheduler.Item{Name: srv.URL + "/missing"}); err == nil {
		t.Error("404 did not error")
	}
	if _, err := p.Transfer(context.Background(), scheduler.Item{Name: "http://127.0.0.1:1/x"}); err == nil {
		t.Error("refused connection did not error")
	}
	if _, err := p.Transfer(context.Background(), scheduler.Item{Name: "::bad::"}); err == nil {
		t.Error("bad URL did not error")
	}
}

func TestDownloadPathCancellation(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		w.(http.Flusher).Flush()
		for i := 0; i < 100; i++ {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(50 * time.Millisecond):
				w.Write(bytes.Repeat([]byte("x"), 100))
				w.(http.Flusher).Flush()
			}
		}
	}))
	defer slow.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(120 * time.Millisecond)
		cancel()
	}()
	p := &DownloadPath{PathName: "adsl", Client: slow.Client()}
	_, err := p.Transfer(ctx, scheduler.Item{Name: slow.URL + "/x"})
	if err == nil {
		t.Fatal("cancelled transfer reported success")
	}
	if ctx.Err() == nil {
		t.Fatal("test bug: context not cancelled")
	}
}

func TestDownloadPathCachingSink(t *testing.T) {
	srv := originServer(t, 64)
	defer srv.Close()
	cache := NewCache()
	p := &DownloadPath{PathName: "adsl", Client: srv.Client(), Sink: CachingSink(cache)}
	url := srv.URL + "/z"
	if _, err := p.Transfer(context.Background(), scheduler.Item{Name: url}); err != nil {
		t.Fatal(err)
	}
	body, ok := cache.Get(url)
	if !ok || len(body) != 64 {
		t.Fatalf("cache miss after transfer: ok=%v len=%d", ok, len(body))
	}
	if cache.Len() != 1 || cache.Bytes() != 64 {
		t.Errorf("Len=%d Bytes=%d, want 1/64", cache.Len(), cache.Bytes())
	}
}

func TestCacheWaitBlocksUntilPut(t *testing.T) {
	cache := NewCache()
	got := make(chan []byte, 1)
	go func() {
		b, err := cache.Wait(context.Background(), "k")
		if err != nil {
			t.Error(err)
		}
		got <- b
	}()
	time.Sleep(20 * time.Millisecond)
	cache.Put("k", []byte("hello"))
	select {
	case b := <-got:
		if string(b) != "hello" {
			t.Errorf("Wait returned %q", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait never returned")
	}
}

func TestCacheWaitImmediateWhenPresent(t *testing.T) {
	cache := NewCache()
	cache.Put("k", []byte("v"))
	b, err := cache.Wait(context.Background(), "k")
	if err != nil || string(b) != "v" {
		t.Errorf("Wait = %q, %v", b, err)
	}
}

func TestCacheWaitHonoursCancellation(t *testing.T) {
	cache := NewCache()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := cache.Wait(ctx, "never"); err == nil {
		t.Error("Wait returned without Put or cancellation")
	}
}

func TestCacheConcurrentWaiters(t *testing.T) {
	cache := NewCache()
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := cache.Wait(context.Background(), "k")
			if err != nil || string(b) != "x" {
				errs <- fmt.Errorf("got %q, %v", b, err)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	cache.Put("k", []byte("x"))
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// uploadServer records multipart uploads.
type uploadServer struct {
	mu    sync.Mutex
	files map[string][]byte
}

func newUploadServer(t *testing.T) (*uploadServer, *httptest.Server) {
	t.Helper()
	us := &uploadServer{files: map[string][]byte{}}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		mr, err := r.MultipartReader()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				break
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			body, err := io.ReadAll(part)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			us.mu.Lock()
			us.files[part.FileName()] = body
			us.mu.Unlock()
		}
		w.WriteHeader(http.StatusCreated)
	}))
	return us, srv
}

func bytesSource(content map[string][]byte) ItemSource {
	return func(item scheduler.Item) (io.ReadCloser, error) {
		b, ok := content[item.Name]
		if !ok {
			return nil, fmt.Errorf("no content for %s", item.Name)
		}
		return io.NopCloser(bytes.NewReader(b)), nil
	}
}

func TestUploadPathTransfers(t *testing.T) {
	us, srv := newUploadServer(t)
	defer srv.Close()
	content := map[string][]byte{"p1.jpg": bytes.Repeat([]byte("j"), 2048)}
	p := &UploadPath{
		PathName:  "phone1",
		Client:    srv.Client(),
		TargetURL: srv.URL + "/upload",
		Source:    bytesSource(content),
	}
	n, err := p.Transfer(context.Background(), scheduler.Item{ID: 0, Name: "p1.jpg", Size: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2048 {
		t.Errorf("bytes = %d, want 2048", n)
	}
	us.mu.Lock()
	defer us.mu.Unlock()
	if got := us.files["p1.jpg"]; !bytes.Equal(got, content["p1.jpg"]) {
		t.Errorf("uploaded %d bytes, want 2048 intact", len(got))
	}
}

func TestUploadPathErrors(t *testing.T) {
	_, srv := newUploadServer(t)
	defer srv.Close()
	noSource := &UploadPath{PathName: "p", Client: srv.Client(), TargetURL: srv.URL}
	if _, err := noSource.Transfer(context.Background(), scheduler.Item{Name: "x"}); err == nil {
		t.Error("missing Source did not error")
	}
	p := &UploadPath{
		PathName: "p", Client: srv.Client(), TargetURL: srv.URL,
		Source: bytesSource(map[string][]byte{}),
	}
	if _, err := p.Transfer(context.Background(), scheduler.Item{Name: "nope"}); err == nil {
		t.Error("missing item content did not error")
	}
	bad := &UploadPath{
		PathName: "p", Client: srv.Client(), TargetURL: "http://127.0.0.1:1/",
		Source: bytesSource(map[string][]byte{"x": []byte("y")}),
	}
	if _, err := bad.Transfer(context.Background(), scheduler.Item{Name: "x"}); err == nil {
		t.Error("unreachable target did not error")
	}
}

func TestUploadThroughSchedulerEndToEnd(t *testing.T) {
	// A full transaction: 6 photos over 2 upload paths with the greedy
	// scheduler; every photo must arrive intact exactly once.
	us, srv := newUploadServer(t)
	defer srv.Close()
	content := map[string][]byte{}
	items := make([]scheduler.Item, 6)
	for i := range items {
		name := fmt.Sprintf("photo%d.jpg", i)
		content[name] = bytes.Repeat([]byte{byte('a' + i)}, 1000+i*100)
		items[i] = scheduler.Item{ID: i, Name: name, Size: int64(len(content[name]))}
	}
	mkPath := func(n string) scheduler.Path {
		return &UploadPath{
			PathName: n, Client: srv.Client(), TargetURL: srv.URL, Source: bytesSource(content),
		}
	}
	rep, err := scheduler.Run(context.Background(), scheduler.Greedy, items,
		[]scheduler.Path{mkPath("adsl"), mkPath("phone1")}, scheduler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	us.mu.Lock()
	defer us.mu.Unlock()
	for name, want := range content {
		if got := us.files[name]; !bytes.Equal(got, want) {
			t.Errorf("%s corrupted or missing (%d bytes, want %d)", name, len(got), len(want))
		}
	}
	var won int
	for _, st := range rep.PerPath {
		won += st.Items
	}
	if won != 6 {
		t.Errorf("items won = %d, want 6", won)
	}
}

func TestDownloadThroughSchedulerEndToEnd(t *testing.T) {
	srv := originServer(t, 500)
	defer srv.Close()
	cache := NewCache()
	items := make([]scheduler.Item, 8)
	for i := range items {
		items[i] = scheduler.Item{ID: i, Name: fmt.Sprintf("%s/f%d", srv.URL, i), Size: 500}
	}
	mk := func(n string) scheduler.Path {
		return &DownloadPath{PathName: n, Client: srv.Client(), Sink: CachingSink(cache)}
	}
	_, err := scheduler.Run(context.Background(), scheduler.MinTime, items,
		[]scheduler.Path{mk("adsl"), mk("ph1"), mk("ph2")}, scheduler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 8 {
		t.Errorf("cache has %d entries, want 8", cache.Len())
	}
}

// Both path types must expose byte progress so the scheduler's stall
// watchdog can guard real HTTP transfers.
var (
	_ scheduler.ProgressPath = (*DownloadPath)(nil)
	_ scheduler.ProgressPath = (*UploadPath)(nil)
)

func TestDownloadPathReportsProgress(t *testing.T) {
	srv := originServer(t, 4096)
	defer srv.Close()
	p := &DownloadPath{PathName: "adsl", Client: srv.Client()}
	var mu sync.Mutex
	var totals []int64
	n, err := p.TransferProgress(context.Background(),
		scheduler.Item{ID: 0, Name: srv.URL + "/a"},
		func(total int64) { mu.Lock(); totals = append(totals, total); mu.Unlock() })
	if err != nil || n != 4096 {
		t.Fatalf("TransferProgress = %d, %v", n, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(totals) == 0 || totals[len(totals)-1] != 4096 {
		t.Fatalf("progress totals %v; want cumulative ending at 4096", totals)
	}
	for i := 1; i < len(totals); i++ {
		if totals[i] <= totals[i-1] {
			t.Fatalf("progress not strictly increasing: %v", totals)
		}
	}
}

func TestUploadPathReportsProgress(t *testing.T) {
	_, srv := newUploadServer(t)
	defer srv.Close()
	content := map[string][]byte{"p1.jpg": bytes.Repeat([]byte("j"), 2048)}
	p := &UploadPath{
		PathName:  "phone1",
		Client:    srv.Client(),
		TargetURL: srv.URL + "/upload",
		Source:    bytesSource(content),
	}
	var mu sync.Mutex
	var last int64
	n, err := p.TransferProgress(context.Background(),
		scheduler.Item{ID: 0, Name: "p1.jpg", Size: 2048},
		func(total int64) { mu.Lock(); last = total; mu.Unlock() })
	if err != nil || n != 2048 {
		t.Fatalf("TransferProgress = %d, %v", n, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if last != 2048 {
		t.Fatalf("final progress total = %d; want 2048", last)
	}
}
