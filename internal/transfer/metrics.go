package transfer

import "threegol/internal/obs"

// Directions and outcomes as recorded in Metrics.
const (
	dirDownload = "download"
	dirUpload   = "upload"

	outcomeOK        = "ok"
	outcomeError     = "error"
	outcomeCancelled = "cancelled" // a losing endgame replica was aborted
)

// Metrics holds the HTTP transfer drivers' instruments; register with
// NewMetrics and assign to DownloadPath.Metrics / UploadPath.Metrics
// (one Metrics can serve any number of paths). A nil Metrics disables
// instrumentation. Latencies are measured on the path's Clock.
type Metrics struct {
	// Requests counts transfer attempts by direction and outcome
	// (ok | error | cancelled).
	Requests *obs.Counter
	// Bytes counts payload bytes moved, by direction — partial bytes of
	// failed and aborted transfers included, mirroring what the
	// scheduler accounts per path.
	Bytes *obs.Counter
	// RequestSeconds is the wall/virtual duration of successful
	// transfers, by direction.
	RequestSeconds *obs.Histogram
}

// NewMetrics registers the transfer drivers' metrics on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Requests: r.NewCounter("transfer_requests_total",
			"HTTP transfer attempts, by direction (download | upload) and outcome (ok | error | cancelled).",
			"direction", "outcome"),
		Bytes: r.NewCounter("transfer_bytes_total",
			"Payload bytes moved, by direction; partial bytes of failed transfers included.", "direction"),
		RequestSeconds: r.NewHistogram("transfer_request_seconds",
			"Duration of successful transfers, by direction.",
			0, 60, 1200, "direction"),
	}
}

// done records one finished transfer attempt.
func (m *Metrics) done(direction string, n int64, err error, cancelled bool, secs float64) {
	if m == nil {
		return
	}
	outcome := outcomeOK
	switch {
	case cancelled:
		outcome = outcomeCancelled
	case err != nil:
		outcome = outcomeError
	}
	m.Requests.With(direction, outcome).Inc()
	if n > 0 {
		m.Bytes.With(direction).Add(n)
	}
	if err == nil {
		m.RequestSeconds.With(direction).Observe(secs)
	}
}
