package fault

import (
	"context"
	"net"
	"time"

	"threegol/internal/clock"
)

// Conn subjects a net.Conn's byte stream to a fault plan — the layer
// below Path, where mid-stream stalls are physically injectable because
// this wrapper owns every Read and Write. Sitting on top of a
// netem.Conn (whose pacing chunks I/O into ≤16 KiB steps), the plan is
// consulted once per chunk, so a window opening mid-transfer takes
// effect within one chunk:
//
//   - blackout/depart/reset: the underlying conn is closed and the call
//     errors with *Error — a connection reset as the transport sees it;
//   - stall: the call blocks silently until the window closes (bytes
//     stop, no error — the watchdog-bait failure mode).
type Conn struct {
	net.Conn
	plan   *Plan
	target string
	clk    clock.Clock
	epoch  time.Time
}

// WrapConn wraps conn under the plan. Plan time 0 is epoch on clk (nil
// selects the system clock).
func WrapConn(conn net.Conn, plan *Plan, target string, epoch time.Time, clk clock.Clock) *Conn {
	return &Conn{Conn: conn, plan: plan, target: target, clk: clock.Or(clk), epoch: epoch}
}

// Read gates the plan, then reads.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// Write gates the plan, then writes.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// gate enforces the plan at the current instant: it errors through
// disruption windows (closing the transport) and sleeps through stall
// windows.
func (c *Conn) gate() error {
	for {
		t := c.clk.Since(c.epoch).Seconds()
		if w, ok := c.plan.ActiveAt(c.target, t, Blackout, Depart, Reset); ok {
			c.Conn.Close()
			return &Error{Target: c.target, Kind: w.Kind}
		}
		until, ok := c.plan.StalledAt(c.target, t)
		if !ok {
			return nil
		}
		rem := time.Duration((until - t) * float64(time.Second))
		const slice = 10 * time.Millisecond
		if rem > slice {
			rem = slice
		}
		if rem > 0 {
			c.clk.Sleep(rem)
		}
	}
}

// ContextDialer is the dialing shape shared by net.Dialer and
// netem.Dialer.
type ContextDialer interface {
	DialContext(ctx context.Context, network, addr string) (net.Conn, error)
}

// Dialer injects faults at dial time — a blackout/depart window refuses
// the connection outright — and wraps successful connections in Conn so
// the plan keeps governing the byte stream. Stack it over netem.Dialer
// to fault an emulated link.
type Dialer struct {
	Inner  ContextDialer
	Plan   *Plan
	Target string
	// Epoch is plan time 0; Clock maps wall time onto the plan's
	// timeline (nil selects the system clock).
	Epoch time.Time
	Clock clock.Clock
}

// DialContext implements ContextDialer.
func (d *Dialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	clk := clock.Or(d.Clock)
	t := clk.Since(d.Epoch).Seconds()
	if w, ok := d.Plan.ActiveAt(d.Target, t, Blackout, Depart); ok {
		return nil, &Error{Target: d.Target, Kind: w.Kind}
	}
	conn, err := d.Inner.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return WrapConn(conn, d.Plan, d.Target, d.Epoch, clk), nil
}
