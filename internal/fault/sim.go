package fault

// Virtual-time chaos simulation. The live scheduler (internal/scheduler)
// is real-time and goroutine-concurrent, so its outputs are not
// bit-stable across runs — fine for the prototype path, fatal for the
// fleet engine's byte-identical-across-worker-counts contract. Simulate
// is the bridge: a single-threaded discrete-event emulator of the
// greedy (GRD) policy with the full resilience stack — per-(item,path)
// retry budgets, requeue on failure, endgame duplication with replica
// cancellation, deterministic backoff with seeded jitter, the stall
// watchdog, and the per-path circuit breaker — all played against a
// fault Plan on the same float64-seconds timeline the live decorators
// use. No wall clock, no global rand, no goroutines: same config in,
// same report out, bit for bit.

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// SimPath describes one path in a chaos simulation.
type SimPath struct {
	Name string
	// Rate is the path's throughput in bytes per second of clean air
	// (time outside every fault window).
	Rate float64
}

// SimConfig drives Simulate. All times are virtual seconds on the
// plan's timeline.
type SimConfig struct {
	Paths []SimPath
	Items []int64 // item sizes in bytes
	Plan  *Plan

	// Resilience knobs, mirroring scheduler.Options:

	// MaxRetries is the per-(item, path) attempt budget; 0 selects 3.
	MaxRetries int
	// DisableDuplication turns off the endgame.
	DisableDuplication bool
	// BackoffBase is the delay before a path's next attempt after a
	// failure, growing exponentially with its failure streak; 0
	// disables backoff.
	BackoffBase float64
	// BackoffMax caps the growth; 0 selects 32×Base.
	BackoffMax float64
	// Jitter widens each backoff by a uniform fraction in [0, Jitter)
	// drawn from the seeded stream.
	Jitter float64
	// Seed seeds the jitter stream.
	Seed int64
	// StallTimeout aborts an attempt when a stall window holds it
	// silent this long; 0 disables the watchdog (the attempt waits the
	// stall out).
	StallTimeout float64
	// BreakerThreshold opens a path's breaker after this many
	// consecutive failures; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the first hold; 0 selects 0.5. Re-openings
	// double it up to BreakerMaxCooldown (0 selects 8× cooldown).
	BreakerCooldown    float64
	BreakerMaxCooldown float64
}

func (c SimConfig) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 3
	}
	return c.MaxRetries
}

func (c SimConfig) backoffMax() float64 {
	if c.BackoffMax > 0 {
		return c.BackoffMax
	}
	return 32 * c.BackoffBase
}

func (c SimConfig) breakerCooldown() float64 {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return 0.5
}

func (c SimConfig) breakerMaxCooldown() float64 {
	if c.BreakerMaxCooldown > 0 {
		return c.BreakerMaxCooldown
	}
	return 8 * c.breakerCooldown()
}

// SimPathStats aggregates one path's activity in a SimReport.
type SimPathStats struct {
	Items        int   `json:"items"`
	Bytes        int64 `json:"bytes"`
	Failures     int   `json:"failures"`
	Stalls       int   `json:"stalls"`
	BreakerOpens int   `json:"breaker_opens"`
}

// SimReport is the outcome of one simulated chaos transaction.
type SimReport struct {
	// Completed counts items delivered; Delivered[i] counts item i's
	// winning completions (exactly-once delivery ⇔ every entry is 1).
	Completed int   `json:"completed"`
	Delivered []int `json:"delivered"`
	// Elapsed is the virtual time at which the transaction resolved.
	Elapsed float64 `json:"elapsed_s"`
	// DuplicateWaste counts bytes moved by replicas cancelled after
	// losing the endgame race, cumulative over the whole transaction.
	DuplicateWaste int64 `json:"duplicate_waste_bytes"`
	// MaxCompletionWaste is the largest loser waste charged to any one
	// item's completion — the quantity §4.1.1 bounds by (N−1)·Sm: at
	// the instant an item completes, at most N−1 paths carried a losing
	// replica, each ≤ Sm bytes in. (The cumulative DuplicateWaste can
	// exceed that bound whenever requeues open a second endgame.)
	MaxCompletionWaste int64 `json:"max_completion_waste_bytes"`
	// FailureWaste counts bytes abandoned by failed or stall-aborted
	// attempts (unbounded in principle: the price of a hostile edge).
	FailureWaste int64                   `json:"failure_waste_bytes"`
	Requeues     int                     `json:"requeues"`
	Duplicates   int                     `json:"duplicates"`
	StallAborts  int                     `json:"stall_aborts"`
	BreakerOpens int                     `json:"breaker_opens"`
	PerPath      map[string]SimPathStats `json:"per_path"`
	// Failed is non-empty when some item exhausted its budget on every
	// path and the transaction aborted.
	Failed string `json:"failed,omitempty"`
}

// attempt outcomes inside the simulation.
const (
	attemptOK = iota
	attemptKilled
	attemptStalled
)

// breaker states, mirroring the scheduler's machine.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// walkAttempt plays one transfer attempt against the plan: from t0,
// bytes flow at rate through clean air, freeze through stall windows
// (aborting at t+StallTimeout when the watchdog is armed and the freeze
// outlasts it), and die at the opening edge of a blackout/depart/reset
// window.
func walkAttempt(plan *Plan, target string, rate float64, size int64, t0, stallTimeout float64) (end float64, bytes int64, out int) {
	t := t0
	var moved float64
	for {
		if _, ok := plan.ActiveAt(target, t, Blackout, Depart, Reset); ok {
			return t, int64(moved), attemptKilled
		}
		if w, ok := plan.ActiveAt(target, t, Stall); ok {
			if stallTimeout > 0 && w.End-t >= stallTimeout {
				return t + stallTimeout, int64(moved), attemptStalled
			}
			t = w.End
			continue
		}
		next := plan.NextDisruption(target, t)
		finish := t + (float64(size)-moved)/rate
		if finish <= next {
			return finish, size, attemptOK
		}
		moved += rate * (next - t)
		t = next
	}
}

// cleanBytes reports how many bytes an attempt started at t0 had moved
// by tc (a cancellation instant strictly before its natural end).
func cleanBytes(plan *Plan, target string, rate float64, size int64, t0, tc float64) int64 {
	t := t0
	var moved float64
	for t < tc {
		if _, ok := plan.ActiveAt(target, t, Blackout, Depart, Reset); ok {
			break
		}
		if w, ok := plan.ActiveAt(target, t, Stall); ok {
			t = math.Min(w.End, tc)
			continue
		}
		next := math.Min(plan.NextDisruption(target, t), tc)
		span := next - t
		if need := (float64(size) - moved) / rate; need <= span {
			moved = float64(size)
			break
		}
		moved += rate * span
		t = next
	}
	return int64(moved)
}

// ----- event queue -----

const (
	evIdle = iota
	evResolve
)

type simEvent struct {
	t    float64
	seq  int // FIFO tie-break: identical times pop in push order
	kind int
	path int
	att  *simAttempt
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type simAttempt struct {
	item      int
	path      int
	start     float64
	bytes     int64 // bytes at natural resolution
	out       int
	cancelled bool
}

type simFlight struct {
	item     int
	seq      int
	replicas map[int]*simAttempt // path index → active attempt
}

type simState struct {
	cfg  SimConfig
	plan *Plan
	rng  *rand.Rand
	rep  *SimReport

	events eventHeap
	evSeq  int

	pending   []int
	flights   map[int]*simFlight
	assignSeq int
	doneItem  []bool
	fails     [][]int // [item][path]
	busy      []bool
	// earliestIdle[p] is the backoff horizon: dispatches before it are
	// ignored (the failure that set it already queued a wake there).
	earliestIdle []float64
	streak       []int // consecutive failures per path (backoff)

	// breaker per path
	brState  []int // breakerClosed/Open/HalfOpen (shared constants)
	brConsec []int
	brUntil  []float64
	brHold   []float64

	// lossByItem accumulates each item's completion-time loser waste
	// (winner-cancelled replicas plus simultaneous-finish ties); its
	// maximum is the §4.1.1-bounded MaxCompletionWaste.
	lossByItem []int64

	done    bool
	elapsed float64
}

// Simulate runs one chaos transaction to completion (or abort) in
// virtual time and returns its report.
func Simulate(cfg SimConfig) (*SimReport, error) {
	if len(cfg.Paths) == 0 {
		return nil, fmt.Errorf("fault: simulate needs at least one path")
	}
	for _, p := range cfg.Paths {
		if p.Rate <= 0 {
			return nil, fmt.Errorf("fault: path %q has non-positive rate", p.Name)
		}
	}
	n := len(cfg.Paths)
	s := &simState{
		cfg:  cfg,
		plan: cfg.Plan,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		rep: &SimReport{
			Delivered: make([]int, len(cfg.Items)),
			PerPath:   make(map[string]SimPathStats, n),
		},
		flights:      make(map[int]*simFlight),
		doneItem:     make([]bool, len(cfg.Items)),
		fails:        make([][]int, len(cfg.Items)),
		busy:         make([]bool, n),
		earliestIdle: make([]float64, n),
		streak:       make([]int, n),
		brState:      make([]int, n),
		brConsec:     make([]int, n),
		brUntil:      make([]float64, n),
		brHold:       make([]float64, n),
		lossByItem:   make([]int64, len(cfg.Items)),
	}
	for i := range cfg.Items {
		s.fails[i] = make([]int, n)
		s.pending = append(s.pending, i)
	}
	for p := range cfg.Paths {
		s.rep.PerPath[cfg.Paths[p].Name] = SimPathStats{}
		s.brHold[p] = cfg.breakerCooldown()
		s.push(simEvent{t: 0, kind: evIdle, path: p})
	}
	if len(cfg.Items) == 0 {
		return s.rep, nil
	}

	for s.events.Len() > 0 && !s.done && s.rep.Failed == "" {
		e := heap.Pop(&s.events).(simEvent)
		switch e.kind {
		case evIdle:
			s.dispatch(e.path, e.t)
		case evResolve:
			s.resolve(e.att, e.t)
		}
	}
	if !s.done && s.rep.Failed == "" {
		// Every path parked with work still undone: cannot happen while
		// budgets remain (the exhaustion check fires first), so treat it
		// as a simulator invariant violation rather than mis-reporting.
		return nil, fmt.Errorf("fault: simulation deadlocked with %d/%d items done",
			s.rep.Completed, len(cfg.Items))
	}
	s.rep.Elapsed = s.elapsed
	for _, w := range s.lossByItem {
		if w > s.rep.MaxCompletionWaste {
			s.rep.MaxCompletionWaste = w
		}
	}
	return s.rep, nil
}

func (s *simState) push(e simEvent) {
	e.seq = s.evSeq
	s.evSeq++
	heap.Push(&s.events, e)
}

// wakeAll re-dispatches every idle path at time t — the simulation's
// cond.Broadcast.
func (s *simState) wakeAll(t float64) {
	for p := range s.cfg.Paths {
		if !s.busy[p] {
			s.push(simEvent{t: t, kind: evIdle, path: p})
		}
	}
}

// backoffDelay draws the delay for a path's k-th consecutive failure.
func (s *simState) backoffDelay(k int) float64 {
	if s.cfg.BackoffBase <= 0 {
		return 0
	}
	d := s.cfg.BackoffBase
	for i := 0; i < k && d < s.cfg.backoffMax(); i++ {
		d *= 2
	}
	d = math.Min(d, s.cfg.backoffMax())
	if s.cfg.Jitter > 0 {
		d += s.cfg.Jitter * s.rng.Float64() * d
	}
	return d
}

// dispatch tries to start work on idle path p at time t.
func (s *simState) dispatch(p int, t float64) {
	if s.done || s.rep.Failed != "" || s.busy[p] {
		return
	}
	if t < s.earliestIdle[p] {
		return // backing off; a wake is queued at the horizon
	}
	if s.cfg.BreakerThreshold > 0 && s.brState[p] == breakerOpen {
		if t < s.brUntil[p] {
			s.push(simEvent{t: s.brUntil[p], kind: evIdle, path: p})
			return
		}
		s.brState[p] = breakerHalfOpen // this dispatch is the probe
	}

	// Prefer pending work; otherwise duplicate the endgame item with
	// the fewest replicas (oldest assignment breaks ties).
	takeIdx := -1
	for i, it := range s.pending {
		if s.fails[it][p] < s.cfg.maxRetries() {
			takeIdx = i
			break
		}
	}
	var f *simFlight
	if takeIdx >= 0 {
		it := s.pending[takeIdx]
		s.pending = append(s.pending[:takeIdx], s.pending[takeIdx+1:]...)
		f = &simFlight{item: it, seq: s.assignSeq, replicas: make(map[int]*simAttempt)}
		s.assignSeq++
		s.flights[it] = f
	} else if !s.cfg.DisableDuplication {
		best := -1
		for it, cand := range s.flights {
			_ = it
			if _, carrying := cand.replicas[p]; carrying {
				continue
			}
			if len(cand.replicas) >= len(s.cfg.Paths) {
				continue
			}
			if s.fails[cand.item][p] >= s.cfg.maxRetries() {
				continue
			}
			if best == -1 {
				best = cand.item
				continue
			}
			b := s.flights[best]
			if len(cand.replicas) != len(b.replicas) {
				if len(cand.replicas) < len(b.replicas) {
					best = cand.item
				}
			} else if cand.seq < b.seq {
				best = cand.item
			}
		}
		if best == -1 {
			return // park; a wake will retry when state changes
		}
		f = s.flights[best]
		s.rep.Duplicates++
	} else {
		return
	}

	sp := s.cfg.Paths[p]
	end, bytes, out := walkAttempt(s.plan, sp.Name, sp.Rate, s.cfg.Items[f.item], t, s.cfg.StallTimeout)
	att := &simAttempt{item: f.item, path: p, start: t, bytes: bytes, out: out}
	f.replicas[p] = att
	s.busy[p] = true
	s.push(simEvent{t: end, kind: evResolve, path: p, att: att})
	// A fresh in-flight item is a new endgame candidate for parked
	// paths.
	s.wakeAll(t)
}

// resolve settles an attempt at its natural end time t.
func (s *simState) resolve(att *simAttempt, t float64) {
	if att.cancelled {
		return // already settled at the winner's completion
	}
	p := att.path
	name := s.cfg.Paths[p].Name
	s.busy[p] = false
	f := s.flights[att.item]
	if f != nil {
		delete(f.replicas, p)
	}
	st := s.rep.PerPath[name]

	if att.out == attemptOK {
		st.Bytes += att.bytes
		if !s.doneItem[att.item] {
			s.doneItem[att.item] = true
			s.rep.Delivered[att.item]++
			s.rep.Completed++
			st.Items++
			s.streak[p] = 0
			s.breakerSuccess(p)
			// Cancel the losing replicas: account their partial bytes
			// as duplicate waste and free their paths now.
			if f != nil {
				for rp, r := range f.replicas {
					r.cancelled = true
					rb := cleanBytes(s.plan, s.cfg.Paths[rp].Name, s.cfg.Paths[rp].Rate,
						s.cfg.Items[att.item], r.start, t)
					rst := s.rep.PerPath[s.cfg.Paths[rp].Name]
					rst.Bytes += rb
					s.rep.PerPath[s.cfg.Paths[rp].Name] = rst
					s.rep.DuplicateWaste += rb
					s.lossByItem[att.item] += rb
					s.busy[rp] = false
				}
				delete(s.flights, att.item)
			}
			if s.rep.Completed == len(s.cfg.Items) {
				s.done = true
				s.elapsed = t
			}
		} else {
			// Simultaneous finish: the earlier event won; ours is waste.
			s.rep.DuplicateWaste += att.bytes
			s.lossByItem[att.item] += att.bytes
		}
		s.rep.PerPath[name] = st
		if !s.done {
			s.push(simEvent{t: t, kind: evIdle, path: p})
			s.wakeAll(t)
		}
		return
	}

	// Failure (killed or stall-aborted).
	st.Bytes += att.bytes
	st.Failures++
	if att.out == attemptStalled {
		st.Stalls++
		s.rep.StallAborts++
	}
	s.rep.PerPath[name] = st
	s.rep.FailureWaste += att.bytes
	s.fails[att.item][p]++
	s.breakerFailure(p, t)
	delay := s.backoffDelay(s.streak[p])
	s.streak[p]++

	if !s.doneItem[att.item] {
		exhausted := true
		for q := range s.cfg.Paths {
			if s.fails[att.item][q] < s.cfg.maxRetries() {
				exhausted = false
				break
			}
		}
		switch {
		case exhausted:
			s.rep.Failed = fmt.Sprintf("item %d failed on every path (last %s) after %d attempts",
				att.item, name, sumInts(s.fails[att.item]))
			s.elapsed = t
			return
		case f != nil && len(f.replicas) == 0:
			delete(s.flights, att.item)
			s.pending = append(s.pending, att.item)
			s.rep.Requeues++
		}
	}
	s.earliestIdle[p] = t + delay
	s.push(simEvent{t: t + delay, kind: evIdle, path: p})
	s.wakeAll(t)
}

func (s *simState) breakerSuccess(p int) {
	if s.cfg.BreakerThreshold <= 0 {
		return
	}
	s.brState[p] = breakerClosed
	s.brConsec[p] = 0
	s.brHold[p] = s.cfg.breakerCooldown()
}

func (s *simState) breakerFailure(p int, t float64) {
	if s.cfg.BreakerThreshold <= 0 {
		return
	}
	open := func() {
		s.brState[p] = breakerOpen
		s.brUntil[p] = t + s.brHold[p]
		s.brHold[p] = math.Min(s.brHold[p]*2, s.cfg.breakerMaxCooldown())
		s.brConsec[p] = 0
		s.rep.BreakerOpens++
		st := s.rep.PerPath[s.cfg.Paths[p].Name]
		st.BreakerOpens++
		s.rep.PerPath[s.cfg.Paths[p].Name] = st
	}
	switch s.brState[p] {
	case breakerHalfOpen:
		open()
	case breakerClosed:
		s.brConsec[p]++
		if s.brConsec[p] >= s.cfg.BreakerThreshold {
			open()
		}
	}
}

func sumInts(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
