package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Scenario names a fault schedule shape in the built-in catalog.
// Scenarios are compiled, not interpreted: Compile expands one into a
// concrete Plan for a target set, horizon, and seed, and from there
// only the Plan matters.
type Scenario string

// The built-in scenario catalog. Every scenario faults only the
// targets it is compiled with — the chaos harness passes the 3G path
// names and never the ADSL path, which is how the graceful-degradation
// guarantee ("all of Φ dead ⇒ the transaction still completes on ADSL
// alone") stays testable under even the hostile scenario.
const (
	// ScenarioNone compiles to an empty plan — the control arm.
	ScenarioNone Scenario = "none"
	// ScenarioBlackoutAll blacks out every target for the whole
	// horizon: Φ is dead from the first byte, ADSL carries everything.
	ScenarioBlackoutAll Scenario = "blackout-all"
	// ScenarioFlaky gives each target recurring short blackouts with
	// seeded spacing — the "wireless variability" regime of §4.1.1.
	ScenarioFlaky Scenario = "flaky"
	// ScenarioResetStorm scatters bursts of mid-transfer connection
	// resets across the horizon.
	ScenarioResetStorm Scenario = "reset-storm"
	// ScenarioStall freezes each target's byte stream for long
	// windows without surfacing an error — watchdog bait.
	ScenarioStall Scenario = "stall"
	// ScenarioFlap makes each device depart and return on short
	// cycles around a discovery-TTL-scale period.
	ScenarioFlap Scenario = "flap"
	// ScenarioRevokeStorm pulls permits in overlapping waves.
	ScenarioRevokeStorm Scenario = "revoke-storm"
	// ScenarioHostile layers flaky blackouts, resets, stalls, and
	// revocations together — the everything-at-once edge.
	ScenarioHostile Scenario = "hostile"
)

// Scenarios returns the catalog names in a fixed order, for -help text
// and validation messages.
func Scenarios() []Scenario {
	return []Scenario{
		ScenarioNone, ScenarioBlackoutAll, ScenarioFlaky, ScenarioResetStorm,
		ScenarioStall, ScenarioFlap, ScenarioRevokeStorm, ScenarioHostile,
	}
}

// ParseScenario validates a user-supplied scenario name.
func ParseScenario(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if string(s) == name {
			return s, nil
		}
	}
	names := make([]string, 0, len(Scenarios()))
	for _, s := range Scenarios() {
		names = append(names, string(s))
	}
	return "", fmt.Errorf("fault: unknown scenario %q (have: %s)", name, strings.Join(names, ", "))
}

// Compile expands a scenario into a concrete Plan over the given
// targets and horizon (seconds). Each target draws from its own RNG
// stream, seeded from (seed, target name), so adding or reordering
// targets never perturbs another target's schedule — the same
// stream-splitting discipline as the fleet engine's per-shard RNGs.
func Compile(s Scenario, seed int64, targets []string, horizon float64) (*Plan, error) {
	if horizon <= 0 && s != ScenarioNone && s != ScenarioBlackoutAll {
		// Only the recurring scenarios need a horizon; "none" and
		// "blackout-all" are horizon-free.
		return nil, fmt.Errorf("fault: scenario %q needs a positive horizon, got %v", s, horizon)
	}
	gen, ok := generators[s]
	if !ok {
		return nil, fmt.Errorf("fault: unknown scenario %q", s)
	}
	var windows []Window
	// Iterate a sorted copy so the plan is independent of caller order.
	sorted := append([]string(nil), targets...)
	sort.Strings(sorted)
	for _, target := range sorted {
		rng := rand.New(rand.NewSource(MixSeed(seed, len(target), int(hashTarget(target)))))
		windows = append(windows, gen(rng, target, horizon)...)
	}
	return NewPlan(windows...), nil
}

// MustCompile is Compile for catalog scenarios known at compile time;
// it panics on error (horizon misuse is a programming bug).
func MustCompile(s Scenario, seed int64, targets []string, horizon float64) *Plan {
	p, err := Compile(s, seed, targets, horizon)
	if err != nil {
		panic(err)
	}
	return p
}

// hashTarget folds a target name into the seed mix (FNV-1a 32-bit).
func hashTarget(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

type generator func(rng *rand.Rand, target string, horizon float64) []Window

var generators = map[Scenario]generator{
	ScenarioNone: func(rng *rand.Rand, target string, horizon float64) []Window {
		return nil
	},
	ScenarioBlackoutAll: func(rng *rand.Rand, target string, horizon float64) []Window {
		return []Window{{Target: target, Kind: Blackout, Start: 0, End: Forever}}
	},
	ScenarioFlaky: func(rng *rand.Rand, target string, horizon float64) []Window {
		// Short blackouts (0.5–2 s) spaced 3–10 s apart: the link is up
		// most of the time but no long transfer survives untouched.
		return recurring(rng, target, Blackout, horizon, 3, 10, 0.5, 2)
	},
	ScenarioResetStorm: func(rng *rand.Rand, target string, horizon float64) []Window {
		// Dense bursts of reset windows: gaps 1–4 s, resets 0.2–1 s.
		return recurring(rng, target, Reset, horizon, 1, 4, 0.2, 1)
	},
	ScenarioStall: func(rng *rand.Rand, target string, horizon float64) []Window {
		// Long silent freezes (4–10 s) with 5–15 s of clean air between
		// them — far past any sane stall timeout, so an unwatched
		// attempt wedges.
		return recurring(rng, target, Stall, horizon, 5, 15, 4, 10)
	},
	ScenarioFlap: func(rng *rand.Rand, target string, horizon float64) []Window {
		// Departure/return cycles at discovery-TTL scale: gone 1–3 s,
		// back 1–3 s.
		return recurring(rng, target, Depart, horizon, 1, 3, 1, 3)
	},
	ScenarioRevokeStorm: func(rng *rand.Rand, target string, horizon float64) []Window {
		// Overlapping revocation waves: permits vanish for 2–6 s with
		// only 1–4 s of grace between waves.
		return recurring(rng, target, Revoke, horizon, 1, 4, 2, 6)
	},
	ScenarioHostile: func(rng *rand.Rand, target string, horizon float64) []Window {
		// Everything at once. Draw order is fixed (blackouts, resets,
		// stalls, revocations) so the schedule is reproducible.
		var ws []Window
		ws = append(ws, recurring(rng, target, Blackout, horizon, 5, 15, 0.5, 2)...)
		ws = append(ws, recurring(rng, target, Reset, horizon, 4, 12, 0.2, 1)...)
		ws = append(ws, recurring(rng, target, Stall, horizon, 8, 20, 2, 6)...)
		ws = append(ws, recurring(rng, target, Revoke, horizon, 10, 25, 2, 5)...)
		return ws
	},
}

// recurring draws gap/width pairs until the horizon is exhausted:
// windows of kind k, widths uniform in [wLo, wHi), separated by gaps
// uniform in [gLo, gHi). The first gap is drawn too, so faults don't
// all begin at t=0.
func recurring(rng *rand.Rand, target string, k Kind, horizon, gLo, gHi, wLo, wHi float64) []Window {
	var ws []Window
	t := 0.0
	for {
		t += gLo + rng.Float64()*(gHi-gLo)
		if t >= horizon {
			return ws
		}
		end := t + wLo + rng.Float64()*(wHi-wLo)
		ws = append(ws, Window{Target: target, Kind: k, Start: t, End: end})
		t = end
	}
}
