package fault

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"threegol/internal/clock"
	"threegol/internal/scheduler"
)

// Error is the error surfaced by injected faults, carrying the target
// and the fault kind so tests and log readers can tell an injected
// blackout from a genuine transport failure.
type Error struct {
	Target string
	Kind   Kind
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s on %s", e.Kind, e.Target)
}

// Injected reports whether err (or anything it wraps) is an injected
// fault.
func Injected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// Path decorates a scheduler.Path with a fault plan: transfers die
// during blackout/depart/reset windows (including mid-transfer, via a
// watcher that cancels the attempt when a window opens), and stall
// windows active at admission hold the transfer silently — no bytes, no
// error — which is exactly what the scheduler's progress watchdog must
// catch. Mid-stream stalls are injected one layer down by Conn, which
// owns the byte stream.
//
// Wall time maps to plan time as seconds since epoch on the injected
// clock, so the same Plan drives this decorator and the virtual-time
// Simulate.
type Path struct {
	inner  scheduler.Path
	plan   *Plan
	target string
	clk    clock.Clock
	epoch  time.Time
}

// WrapPath decorates inner with plan, faulting under inner's own name
// as the target. Plan time 0 is epoch on clk (nil clk selects the
// system clock). When inner also implements scheduler.ProgressPath the
// returned path does too, so the stall watchdog stays engaged through
// the decorator.
func WrapPath(inner scheduler.Path, plan *Plan, epoch time.Time, clk clock.Clock) scheduler.Path {
	p := &Path{inner: inner, plan: plan, target: inner.Name(), clk: clock.Or(clk), epoch: epoch}
	if pi, ok := inner.(scheduler.ProgressPath); ok {
		return &progressPath{Path: p, pinner: pi}
	}
	return p
}

// Name implements scheduler.Path.
func (p *Path) Name() string { return p.inner.Name() }

// now is the current plan time.
func (p *Path) now() float64 { return p.clk.Since(p.epoch).Seconds() }

// Transfer implements scheduler.Path.
func (p *Path) Transfer(ctx context.Context, it scheduler.Item) (int64, error) {
	return p.transfer(ctx, func(c context.Context) (int64, error) {
		return p.inner.Transfer(c, it)
	})
}

func (p *Path) transfer(ctx context.Context, run func(context.Context) (int64, error)) (int64, error) {
	t := p.now()
	if w, ok := p.plan.ActiveAt(p.target, t, Blackout, Depart, Reset); ok {
		return 0, &Error{Target: p.target, Kind: w.Kind}
	}
	if until, ok := p.plan.StalledAt(p.target, t); ok {
		// Silent admission stall: hold without error until the window
		// closes or the caller gives up (the watchdog's job).
		if !p.sleepUntil(ctx, until) {
			return 0, ctx.Err()
		}
	}

	// Watch for a disruption window opening mid-transfer; the injected
	// error replaces the cancellation error so callers see the fault.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex
	var injected error
	done := make(chan struct{})
	go p.watch(wctx, done, func(e error) {
		mu.Lock()
		injected = e
		mu.Unlock()
		cancel()
	})
	n, err := run(wctx)
	close(done)
	mu.Lock() //3golvet:allow locksafe — two-line read of the kill slot; deferring would hold it across return
	ie := injected
	mu.Unlock()
	if ie != nil && err != nil && ctx.Err() == nil {
		err = ie
	}
	return n, err
}

// watch kills the attempt when a blackout/depart/reset window opens.
func (p *Path) watch(ctx context.Context, done <-chan struct{}, kill func(error)) {
	for {
		select {
		case <-done:
			return
		case <-ctx.Done():
			return
		default:
		}
		t := p.now()
		if w, ok := p.plan.ActiveAt(p.target, t, Blackout, Depart, Reset); ok {
			kill(&Error{Target: p.target, Kind: w.Kind})
			return
		}
		next := p.plan.NextDisruption(p.target, t, Blackout, Depart, Reset)
		if math.IsInf(next, 1) {
			return
		}
		p.sleepChunk(time.Duration((next - t) * float64(time.Second)))
	}
}

// sleepChunk sleeps toward a boundary in small slices so the watcher
// notices completion promptly.
func (p *Path) sleepChunk(d time.Duration) {
	const slice = 10 * time.Millisecond
	if d <= 0 {
		d = time.Millisecond
	}
	if d > slice {
		d = slice
	}
	p.clk.Sleep(d)
}

// sleepUntil sleeps to plan time `until`, reporting false when ctx died
// first.
func (p *Path) sleepUntil(ctx context.Context, until float64) bool {
	for {
		if ctx.Err() != nil {
			return false
		}
		rem := until - p.now()
		if rem <= 0 {
			return true
		}
		p.sleepChunk(time.Duration(rem * float64(time.Second)))
	}
}

// progressPath is the ProgressPath-preserving variant of Path.
type progressPath struct {
	*Path
	pinner scheduler.ProgressPath
}

// TransferProgress implements scheduler.ProgressPath.
func (p *progressPath) TransferProgress(ctx context.Context, it scheduler.Item, progress func(total int64)) (int64, error) {
	return p.transfer(ctx, func(c context.Context) (int64, error) {
		return p.pinner.TransferProgress(c, it, progress)
	})
}
