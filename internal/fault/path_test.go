package fault

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"threegol/internal/scheduler"
)

// slowPath is a scheduler.Path whose transfer takes a fixed duration
// and respects cancellation, reporting proportional partial bytes.
type slowPath struct {
	name string
	d    time.Duration
	size int64
}

func (p *slowPath) Name() string { return p.name }

func (p *slowPath) Transfer(ctx context.Context, it scheduler.Item) (int64, error) {
	start := time.Now()
	select {
	case <-time.After(p.d):
		return p.size, nil
	case <-ctx.Done():
		frac := float64(time.Since(start)) / float64(p.d)
		return int64(frac * float64(p.size)), ctx.Err()
	}
}

// progressSlowPath additionally implements scheduler.ProgressPath.
type progressSlowPath struct{ slowPath }

func (p *progressSlowPath) TransferProgress(ctx context.Context, it scheduler.Item, progress func(int64)) (int64, error) {
	progress(0)
	return p.slowPath.Transfer(ctx, it)
}

func TestPathRefusesAtAdmission(t *testing.T) {
	plan := NewPlan(Window{Target: "phone1", Kind: Blackout, Start: 0, End: Forever})
	p := WrapPath(&slowPath{name: "phone1", d: time.Second, size: 100}, plan, time.Now(), nil)
	n, err := p.Transfer(context.Background(), scheduler.Item{ID: 0, Name: "item0"})
	if n != 0 || !Injected(err) {
		t.Fatalf("Transfer = %d, %v; want 0 and an injected fault", n, err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != Blackout || fe.Target != "phone1" {
		t.Fatalf("error detail = %+v", fe)
	}
	if p.Name() != "phone1" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestPathKillsMidTransfer(t *testing.T) {
	// A reset window opens 60 ms in; the inner transfer would take
	// 500 ms. The watcher must abort it with the injected error.
	plan := NewPlan(Window{Target: "phone1", Kind: Reset, Start: 0.06, End: 10})
	p := WrapPath(&slowPath{name: "phone1", d: 500 * time.Millisecond, size: 1000}, plan, time.Now(), nil)
	start := time.Now()
	_, err := p.Transfer(context.Background(), scheduler.Item{})
	if !Injected(err) {
		t.Fatalf("err = %v; want injected reset", err)
	}
	if d := time.Since(start); d > 400*time.Millisecond {
		t.Fatalf("kill took %v; watcher too slow", d)
	}
}

func TestPathAdmissionStall(t *testing.T) {
	// A stall window covering admission holds the transfer silently,
	// then lets it through.
	plan := NewPlan(Window{Target: "phone1", Kind: Stall, Start: 0, End: 0.08})
	p := WrapPath(&slowPath{name: "phone1", d: time.Millisecond, size: 7}, plan, time.Now(), nil)
	start := time.Now()
	n, err := p.Transfer(context.Background(), scheduler.Item{})
	if err != nil || n != 7 {
		t.Fatalf("Transfer = %d, %v", n, err)
	}
	if d := time.Since(start); d < 70*time.Millisecond {
		t.Fatalf("stall window not honoured: transfer took %v", d)
	}

	// A cancelled caller escapes the hold with ctx.Err().
	plan2 := NewPlan(Window{Target: "phone1", Kind: Stall, Start: 0, End: 30})
	p2 := WrapPath(&slowPath{name: "phone1", d: time.Millisecond, size: 7}, plan2, time.Now(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := p2.Transfer(ctx, scheduler.Item{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want deadline exceeded", err)
	}
}

func TestWrapPathPreservesProgress(t *testing.T) {
	inner := &progressSlowPath{slowPath{name: "phone1", d: time.Millisecond, size: 3}}
	wrapped := WrapPath(inner, NewPlan(), time.Now(), nil)
	pp, ok := wrapped.(scheduler.ProgressPath)
	if !ok {
		t.Fatalf("progress capability lost through the decorator")
	}
	var seen bool
	n, err := pp.TransferProgress(context.Background(), scheduler.Item{}, func(int64) { seen = true })
	if err != nil || n != 3 || !seen {
		t.Fatalf("TransferProgress = %d, %v (progress seen: %v)", n, err, seen)
	}

	// A plain Path must NOT grow the capability.
	plain := WrapPath(&slowPath{name: "phone1"}, NewPlan(), time.Now(), nil)
	if _, ok := plain.(scheduler.ProgressPath); ok {
		t.Fatalf("plain path gained TransferProgress through the decorator")
	}
}

func TestConnInjectsOnRead(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	plan := NewPlan(Window{Target: "phone1", Kind: Blackout, Start: 0, End: Forever})
	c := WrapConn(client, plan, "phone1", time.Now(), nil)
	buf := make([]byte, 8)
	if _, err := c.Read(buf); !Injected(err) {
		t.Fatalf("Read err = %v; want injected blackout", err)
	}
	if _, err := c.Write(buf); !Injected(err) {
		t.Fatalf("Write err = %v; want injected blackout", err)
	}
}

func TestConnStallDelays(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	go func() {
		buf := make([]byte, 8)
		server.Read(buf)
		server.Write([]byte("pong"))
	}()
	plan := NewPlan(Window{Target: "phone1", Kind: Stall, Start: 0, End: 0.08})
	c := WrapConn(client, plan, "phone1", time.Now(), nil)
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if d := time.Since(start); d < 70*time.Millisecond {
		t.Fatalf("stalled write returned after %v; want ≥ ~80ms", d)
	}
	buf := make([]byte, 4)
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
}

type fakeDialer struct{ conn net.Conn }

func (d fakeDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	return d.conn, nil
}

func TestDialerRefusesDuringBlackout(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	dead := &Dialer{
		Inner:  fakeDialer{conn: client},
		Plan:   NewPlan(Window{Target: "phone1", Kind: Depart, Start: 0, End: Forever}),
		Target: "phone1",
		Epoch:  time.Now(),
	}
	if _, err := dead.DialContext(context.Background(), "tcp", "x"); !Injected(err) {
		t.Fatalf("dial err = %v; want injected depart", err)
	}

	clean := &Dialer{Inner: fakeDialer{conn: client}, Plan: NewPlan(), Target: "phone1", Epoch: time.Now()}
	conn, err := clean.DialContext(context.Background(), "tcp", "x")
	if err != nil {
		t.Fatalf("clean dial: %v", err)
	}
	if _, ok := conn.(*Conn); !ok {
		t.Fatalf("dialer did not wrap the connection: %T", conn)
	}
}
