// Package fault is the repository's seeded, schedule-driven
// fault-injection layer. The paper's whole premise is scheduling over
// flaky paths (§4.1.1 blames MIN's estimator on "wireless
// variability"), and related offloading work treats device churn and
// mid-session path loss as the common case — so the reproduction must
// be exercised under a hostile edge, deterministically.
//
// The central type is the Plan: a compiled schedule of fault Windows on
// named targets (paths or devices), built from a named Scenario and a
// seed. A Plan is pure data on a float64-seconds timeline — it never
// reads a clock or the global rand source (the package is on 3golvet's
// SimPackages list) — so the same plan drives three consumers:
//
//   - live prototype paths, via the Path decorator (a scheduler.Path
//     wrapper) and the Conn/Dialer wrappers at the netem level;
//   - admission control, via Gate (a discovery.Beacon / permit-style
//     allow hook honouring departure and revocation windows);
//   - the fleet chaos harness, via Simulate — a virtual-time greedy
//     scheduler emulator whose output is bit-identical across runs.
//
// Five fault kinds cover the failure modes the resilience machinery in
// internal/scheduler must answer: path blackouts (connections refused,
// in-flight transfers die), mid-transfer connection resets, silent
// stalls (bytes stop, no error — only a progress watchdog catches
// these), device departure/flap, and permit revocation storms.
package fault

import (
	"fmt"
	"math"
	"sort"
)

// Kind classifies one fault window.
type Kind uint8

// Fault kinds.
const (
	// Blackout makes the target unreachable: new connections are
	// refused and in-flight transfers abort with a reset-style error.
	Blackout Kind = iota
	// Reset kills in-flight transfers while the window is active; new
	// attempts inside the window die immediately with a reset error
	// (the link is up — connections establish — but nothing survives).
	Reset
	// Stall freezes the byte stream without surfacing any error — the
	// failure mode only a progress watchdog can detect.
	Stall
	// Depart removes the device entirely: transfers behave as under
	// Blackout and admission gates report the device gone, so Φ
	// shrinks. A finite End models a flapping device.
	Depart
	// Revoke withdraws the device's permit: admission gates report it
	// inadmissible (the beacon falls silent) but in-flight transfers
	// are unaffected — the paper's network-integrated revocation.
	Revoke
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Blackout:
		return "blackout"
	case Reset:
		return "reset"
	case Stall:
		return "stall"
	case Depart:
		return "depart"
	case Revoke:
		return "revoke"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Forever marks a window that never closes (e.g. a permanent
// departure).
var Forever = math.Inf(1)

// Window is one fault interval [Start, End) on a named target, in
// seconds on the plan's timeline (virtual seconds in simulations,
// seconds since epoch for live decorators).
type Window struct {
	Target string
	Kind   Kind
	Start  float64
	End    float64
}

// contains reports whether t falls inside the window.
func (w Window) contains(t float64) bool { return t >= w.Start && t < w.End }

// Plan is a compiled, immutable fault schedule. Build one with NewPlan
// or Compile; all query methods are safe for concurrent use.
type Plan struct {
	byTarget map[string][]Window // sorted by Start, then End
}

// NewPlan builds a plan from explicit windows. Windows with End ≤
// Start are dropped; the rest are sorted per target.
func NewPlan(windows ...Window) *Plan {
	p := &Plan{byTarget: make(map[string][]Window)}
	for _, w := range windows {
		if w.End <= w.Start || w.Target == "" {
			continue
		}
		p.byTarget[w.Target] = append(p.byTarget[w.Target], w)
	}
	for _, ws := range p.byTarget {
		sort.Slice(ws, func(i, j int) bool {
			if ws[i].Start != ws[j].Start {
				return ws[i].Start < ws[j].Start
			}
			return ws[i].End < ws[j].End
		})
	}
	return p
}

// Windows returns the target's windows in start order (shared slice;
// callers must not mutate).
func (p *Plan) Windows(target string) []Window {
	if p == nil {
		return nil
	}
	return p.byTarget[target]
}

// Targets returns the sorted set of targets carrying at least one
// window.
func (p *Plan) Targets() []string {
	if p == nil {
		return nil
	}
	out := make([]string, 0, len(p.byTarget))
	for t := range p.byTarget {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ActiveAt returns the earliest-starting window of one of the given
// kinds containing t (all kinds when none are given).
func (p *Plan) ActiveAt(target string, t float64, kinds ...Kind) (Window, bool) {
	if p == nil {
		return Window{}, false
	}
	for _, w := range p.byTarget[target] {
		if w.Start > t {
			break
		}
		if !w.contains(t) {
			continue
		}
		if len(kinds) == 0 {
			return w, true
		}
		for _, k := range kinds {
			if w.Kind == k {
				return w, true
			}
		}
	}
	return Window{}, false
}

// DeadAt reports whether the target is unreachable at t (an active
// Blackout or Depart window).
func (p *Plan) DeadAt(target string, t float64) bool {
	_, ok := p.ActiveAt(target, t, Blackout, Depart)
	return ok
}

// ResetAt reports an active Reset window at t.
func (p *Plan) ResetAt(target string, t float64) bool {
	_, ok := p.ActiveAt(target, t, Reset)
	return ok
}

// StalledAt returns the end of the stall window active at t, if any.
func (p *Plan) StalledAt(target string, t float64) (until float64, ok bool) {
	w, ok := p.ActiveAt(target, t, Stall)
	return w.End, ok
}

// RevokedAt reports whether the target's permit is revoked at t.
func (p *Plan) RevokedAt(target string, t float64) bool {
	_, ok := p.ActiveAt(target, t, Revoke)
	return ok
}

// AdmissibleAt reports whether the target may advertise itself at t:
// neither departed, blacked out, nor revoked — the Φ-membership
// question. Transfers in flight care about DeadAt instead.
func (p *Plan) AdmissibleAt(target string, t float64) bool {
	_, ok := p.ActiveAt(target, t, Blackout, Depart, Revoke)
	return !ok
}

// NextDisruption returns the start of the earliest window of the given
// kinds strictly after t (all kinds when none given), or Forever.
func (p *Plan) NextDisruption(target string, t float64, kinds ...Kind) float64 {
	if p == nil {
		return Forever
	}
	next := Forever
	for _, w := range p.byTarget[target] {
		if w.Start <= t {
			continue
		}
		if w.Start >= next {
			break
		}
		if len(kinds) == 0 {
			next = w.Start
			break
		}
		for _, k := range kinds {
			if w.Kind == k {
				next = w.Start
				break
			}
		}
	}
	return next
}

// Gate adapts the plan into an admission hook: the returned func
// reports whether target is admissible on the supplied time source — a
// composable discovery.Beacon / permit-client gate for live runs
// driven by a fault plan.
func (p *Plan) Gate(target string, now func() float64) func() bool {
	return func() bool { return p.AdmissibleAt(target, now()) }
}

// splitmix64 is the repo's standard seed mixer (the eventlog ID
// derivation): a bijective finaliser, so distinct inputs can never
// collide.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MixSeed derives a sub-seed from a parent seed and two indexes — the
// sanctioned way to give every (home, session) chaos transaction its
// own independent plan stream without wall clock or global rand.
func MixSeed(seed int64, a, b int) int64 {
	return int64(splitmix64(uint64(seed) ^ splitmix64(uint64(a)<<32^uint64(uint32(b)))))
}
