package fault

import (
	"encoding/json"
	"testing"
)

func simPaths() []SimPath {
	return []SimPath{
		{Name: "adsl", Rate: 100e3},
		{Name: "phone1", Rate: 200e3},
		{Name: "phone2", Rate: 150e3},
	}
}

func simItems(n int, size int64) []int64 {
	items := make([]int64, n)
	for i := range items {
		items[i] = size
	}
	return items
}

func mustSimulate(t *testing.T, cfg SimConfig) *SimReport {
	t.Helper()
	rep, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return rep
}

func assertExactlyOnce(t *testing.T, rep *SimReport, n int) {
	t.Helper()
	if rep.Failed != "" {
		t.Fatalf("transaction failed: %s", rep.Failed)
	}
	if rep.Completed != n {
		t.Fatalf("completed %d of %d items", rep.Completed, n)
	}
	for i, d := range rep.Delivered {
		if d != 1 {
			t.Fatalf("item %d delivered %d times; want exactly once", i, d)
		}
	}
}

func TestSimulateCleanRun(t *testing.T) {
	rep := mustSimulate(t, SimConfig{Paths: simPaths(), Items: simItems(10, 500e3)})
	assertExactlyOnce(t, rep, 10)
	if rep.Elapsed <= 0 {
		t.Fatalf("elapsed = %v", rep.Elapsed)
	}
	var total int64
	for _, st := range rep.PerPath {
		total += st.Bytes
	}
	if want := int64(10*500e3) + rep.DuplicateWaste; total != want {
		t.Fatalf("per-path bytes %d; want delivered+waste %d", total, want)
	}
}

func TestSimulateBlackoutAllCompletesOnADSL(t *testing.T) {
	// The acceptance scenario: every 3G path dead for the whole run.
	// 100% of items must land, all via ADSL.
	paths := simPaths()
	plan := MustCompile(ScenarioBlackoutAll, 3, []string{"phone1", "phone2"}, 0)
	rep := mustSimulate(t, SimConfig{
		Paths: paths, Items: simItems(8, 300e3), Plan: plan,
		BackoffBase: 0.2, Jitter: 0.5, Seed: 3, BreakerThreshold: 2,
	})
	assertExactlyOnce(t, rep, 8)
	if got := rep.PerPath["adsl"].Items; got != 8 {
		t.Fatalf("adsl delivered %d of 8", got)
	}
	for _, phone := range []string{"phone1", "phone2"} {
		st := rep.PerPath[phone]
		if st.Items != 0 {
			t.Fatalf("%s delivered %d items through an eternal blackout", phone, st.Items)
		}
		if st.Bytes != 0 {
			t.Fatalf("%s moved %d bytes through an eternal blackout", phone, st.Bytes)
		}
	}
	if rep.BreakerOpens == 0 {
		t.Fatalf("dead paths never tripped the breaker")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		plan := MustCompile(sc, 11, []string{"phone1", "phone2"}, 120)
		cfg := SimConfig{
			Paths: simPaths(), Items: simItems(12, 400e3), Plan: plan,
			BackoffBase: 0.1, Jitter: 0.5, Seed: 11,
			StallTimeout: 2, BreakerThreshold: 3,
		}
		a, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		b, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Errorf("%s: reports differ across identical runs\n%s\n%s", sc, ja, jb)
		}
		assertExactlyOnce(t, a, 12)
	}
}

func TestSimulateDuplicateWasteBound(t *testing.T) {
	// GRD invariant (§4.1.1): at any item's completion, the losing
	// replicas' bytes sum to at most (N−1)·Sm — each of the other N−1
	// paths carries at most one replica, each ≤ Sm bytes in. That is
	// the per-completion maximum; cumulative DuplicateWaste may exceed
	// the bound whenever requeues open a second endgame, so it is only
	// sanity-checked against the per-completion figure here.
	const size = int64(400e3)
	for _, sc := range []Scenario{ScenarioNone, ScenarioFlaky, ScenarioStall, ScenarioHostile} {
		plan := MustCompile(sc, 5, []string{"phone1", "phone2"}, 120)
		rep := mustSimulate(t, SimConfig{
			Paths: simPaths(), Items: simItems(9, size), Plan: plan,
			BackoffBase: 0.1, Jitter: 0.5, Seed: 5,
			StallTimeout: 2, BreakerThreshold: 3,
		})
		assertExactlyOnce(t, rep, 9)
		bound := int64(len(simPaths())-1) * size
		if rep.MaxCompletionWaste > bound {
			t.Errorf("%s: completion waste %d exceeds (N-1)·Sm = %d",
				sc, rep.MaxCompletionWaste, bound)
		}
		if rep.MaxCompletionWaste > rep.DuplicateWaste {
			t.Errorf("%s: max completion waste %d exceeds cumulative %d",
				sc, rep.MaxCompletionWaste, rep.DuplicateWaste)
		}
	}
}

func TestSimulateStallWatchdog(t *testing.T) {
	// One long stall window on phone1. With the watchdog armed the
	// attempt aborts after StallTimeout; without it the transfer waits
	// the stall out and finishes later.
	plan := NewPlan(Window{Target: "phone1", Kind: Stall, Start: 0, End: 50})
	base := SimConfig{
		Paths: []SimPath{{Name: "phone1", Rate: 100e3}},
		Items: simItems(1, 100e3),
		Plan:  plan,
	}

	patient := base
	rep := mustSimulate(t, patient)
	if rep.Elapsed != 51 { // 50s stall + 1s transfer
		t.Fatalf("patient run elapsed %v; want 51", rep.Elapsed)
	}
	if rep.StallAborts != 0 {
		t.Fatalf("watchdog disabled but %d stall aborts", rep.StallAborts)
	}

	armed := base
	armed.StallTimeout = 2
	armed.MaxRetries = 100
	rep = mustSimulate(t, armed)
	if rep.StallAborts == 0 {
		t.Fatalf("armed watchdog never fired")
	}
	// Every abort costs StallTimeout, and the item retries on the same
	// path until the stall window passes: elapsed = 50 + 1.
	if rep.Elapsed != 51 {
		t.Fatalf("armed run elapsed %v; want 51", rep.Elapsed)
	}
}

func TestSimulateExhaustionFails(t *testing.T) {
	// A single eternally-dead path must abort, not hang.
	plan := NewPlan(Window{Target: "phone1", Kind: Blackout, Start: 0, End: Forever})
	rep := mustSimulate(t, SimConfig{
		Paths: []SimPath{{Name: "phone1", Rate: 100e3}},
		Items: simItems(2, 100e3),
		Plan:  plan,
	})
	if rep.Failed == "" {
		t.Fatalf("expected transaction failure with every path dead")
	}
	if rep.Completed != 0 {
		t.Fatalf("completed %d items through an eternal blackout", rep.Completed)
	}
}

func TestSimulateBackoffSlowsRetries(t *testing.T) {
	// A dead path burning its retry budget: with backoff the virtual
	// clock advances between attempts; without it all failures land at
	// t=0.
	plan := NewPlan(Window{Target: "phone1", Kind: Blackout, Start: 0, End: Forever})
	cfg := SimConfig{
		Paths: []SimPath{{Name: "phone1", Rate: 100e3}},
		Items: simItems(1, 100e3),
		Plan:  plan,
	}
	rep := mustSimulate(t, cfg)
	if rep.Elapsed != 0 {
		t.Fatalf("no backoff: failure should resolve at t=0, got %v", rep.Elapsed)
	}
	cfg.BackoffBase = 1
	rep = mustSimulate(t, cfg)
	// Three attempts: the second waits ≥1s, the third ≥2s.
	if rep.Elapsed < 3 {
		t.Fatalf("backoff: elapsed %v; want ≥ 3", rep.Elapsed)
	}
}

func TestSimulateBreakerHoldsPath(t *testing.T) {
	// phone1 is dead for 10s then clean. With the breaker, its failures
	// eject it and half-open probes readmit it after recovery; items
	// still complete exactly once.
	plan := NewPlan(Window{Target: "phone1", Kind: Blackout, Start: 0, End: 10})
	rep := mustSimulate(t, SimConfig{
		Paths: []SimPath{
			{Name: "adsl", Rate: 10e3},
			{Name: "phone1", Rate: 1000e3},
		},
		Items:            simItems(6, 200e3),
		Plan:             plan,
		MaxRetries:       50,
		BackoffBase:      0.5,
		BreakerThreshold: 2,
		BreakerCooldown:  1,
	})
	assertExactlyOnce(t, rep, 6)
	if rep.BreakerOpens == 0 {
		t.Fatalf("breaker never opened on a dead path")
	}
	if rep.PerPath["phone1"].Items == 0 {
		t.Fatalf("phone1 never readmitted after recovery")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimConfig{}); err == nil {
		t.Fatalf("no paths should be rejected")
	}
	if _, err := Simulate(SimConfig{Paths: []SimPath{{Name: "x", Rate: 0}}}); err == nil {
		t.Fatalf("zero rate should be rejected")
	}
	rep := mustSimulate(t, SimConfig{Paths: simPaths()})
	if rep.Completed != 0 || rep.Failed != "" {
		t.Fatalf("empty item list should complete vacuously: %+v", rep)
	}
}
