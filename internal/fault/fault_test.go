package fault

import (
	"math"
	"reflect"
	"testing"
)

func TestPlanQueries(t *testing.T) {
	p := NewPlan(
		Window{Target: "phone1", Kind: Blackout, Start: 2, End: 4},
		Window{Target: "phone1", Kind: Stall, Start: 6, End: 9},
		Window{Target: "phone2", Kind: Revoke, Start: 1, End: 3},
		Window{Target: "phone1", Kind: Reset, Start: 0.5, End: 1},
		Window{Target: "", Kind: Blackout, Start: 0, End: 1},    // dropped: empty target
		Window{Target: "phone1", Kind: Stall, Start: 5, End: 5}, // dropped: empty window
	)

	if got := p.Targets(); !reflect.DeepEqual(got, []string{"phone1", "phone2"}) {
		t.Fatalf("Targets = %v", got)
	}
	ws := p.Windows("phone1")
	if len(ws) != 3 || ws[0].Kind != Reset || ws[1].Kind != Blackout || ws[2].Kind != Stall {
		t.Fatalf("Windows(phone1) not sorted by start: %+v", ws)
	}

	if !p.DeadAt("phone1", 3) {
		t.Errorf("phone1 should be dead at t=3 (blackout)")
	}
	if p.DeadAt("phone1", 4) {
		t.Errorf("windows are half-open: t=4 is outside [2,4)")
	}
	if !p.ResetAt("phone1", 0.75) {
		t.Errorf("phone1 should reset at t=0.75")
	}
	if until, ok := p.StalledAt("phone1", 7); !ok || until != 9 {
		t.Errorf("StalledAt(phone1, 7) = %v, %v; want 9, true", until, ok)
	}
	if !p.RevokedAt("phone2", 2) {
		t.Errorf("phone2 should be revoked at t=2")
	}
	if p.AdmissibleAt("phone2", 2) {
		t.Errorf("revoked target must not be admissible")
	}
	if !p.AdmissibleAt("phone1", 7) {
		t.Errorf("a stall does not bar admission")
	}

	if next := p.NextDisruption("phone1", 1.5); next != 2 {
		t.Errorf("NextDisruption(phone1, 1.5) = %v; want 2", next)
	}
	if next := p.NextDisruption("phone1", 10); !math.IsInf(next, 1) {
		t.Errorf("NextDisruption past the last window = %v; want +Inf", next)
	}
	if next := p.NextDisruption("phone2", 0, Blackout); !math.IsInf(next, 1) {
		t.Errorf("kind-filtered NextDisruption = %v; want +Inf", next)
	}

	// Nil plans answer every query harmlessly.
	var nilPlan *Plan
	if nilPlan.DeadAt("x", 0) || len(nilPlan.Targets()) != 0 {
		t.Errorf("nil plan must report no faults")
	}
}

func TestCompileDeterministic(t *testing.T) {
	targets := []string{"phone1", "phone2", "phone3"}
	for _, sc := range Scenarios() {
		a, err := Compile(sc, 42, targets, 60)
		if err != nil {
			t.Fatalf("Compile(%s): %v", sc, err)
		}
		b, err := Compile(sc, 42, targets, 60)
		if err != nil {
			t.Fatalf("Compile(%s): %v", sc, err)
		}
		for _, tg := range targets {
			if !reflect.DeepEqual(a.Windows(tg), b.Windows(tg)) {
				t.Errorf("%s: windows for %s differ between identical compiles", sc, tg)
			}
		}
	}
	// Different seeds must diverge for the randomised scenarios.
	a := MustCompile(ScenarioFlaky, 1, targets, 60)
	b := MustCompile(ScenarioFlaky, 2, targets, 60)
	if reflect.DeepEqual(a.Windows("phone1"), b.Windows("phone1")) {
		t.Errorf("flaky: seeds 1 and 2 produced identical windows")
	}
}

func TestCompileBlackoutAll(t *testing.T) {
	p := MustCompile(ScenarioBlackoutAll, 7, []string{"phone1", "phone2"}, 30)
	for _, tg := range []string{"phone1", "phone2"} {
		ws := p.Windows(tg)
		if len(ws) != 1 || ws[0].Kind != Blackout || ws[0].Start != 0 || !math.IsInf(ws[0].End, 1) {
			t.Fatalf("%s: want one eternal blackout, got %+v", tg, ws)
		}
	}
}

func TestParseScenario(t *testing.T) {
	if s, err := ParseScenario("hostile"); err != nil || s != ScenarioHostile {
		t.Fatalf("ParseScenario(hostile) = %v, %v", s, err)
	}
	if _, err := ParseScenario("nope"); err == nil {
		t.Fatalf("ParseScenario(nope) should fail")
	}
}

func TestMixSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		seen[MixSeed(99, i, i*31)] = true
	}
	if len(seen) != 64 {
		t.Fatalf("MixSeed collisions: %d distinct of 64", len(seen))
	}
}

func TestGate(t *testing.T) {
	p := NewPlan(Window{Target: "phone1", Kind: Revoke, Start: 1, End: 2})
	now := 0.0
	g := p.Gate("phone1", func() float64 { return now })
	if !g() {
		t.Fatalf("admissible before the window")
	}
	now = 1.5
	if g() {
		t.Fatalf("revoked inside the window")
	}
	now = 2
	if !g() {
		t.Fatalf("admissible after the window")
	}
}
