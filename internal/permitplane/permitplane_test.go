package permitplane

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock.Clock for TTL and latency tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *fakeClock) Sleep(d time.Duration) { c.advance(d) }

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

func TestShardOfStableAndInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 16} {
		for i := 0; i < 1000; i++ {
			cell := fmt.Sprintf("bs%d/s%d", i/3, i%3)
			s1 := ShardOf(cell, shards)
			s2 := ShardOf(cell, shards)
			if s1 != s2 {
				t.Fatalf("ShardOf(%q, %d) unstable: %d then %d", cell, shards, s1, s2)
			}
			if s1 < 0 || s1 >= shards {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", cell, shards, s1)
			}
		}
	}
}

func TestShardOfSpreadsCells(t *testing.T) {
	const shards, cells = 16, 4096
	counts := make([]int, shards)
	for i := 0; i < cells; i++ {
		counts[ShardOf(fmt.Sprintf("cell-%d", i), shards)]++
	}
	// A stable hash should spread 4096 cells roughly evenly over 16
	// shards (256 each); a shard at 0 or >2× the mean means the hash is
	// broken, not merely unlucky.
	for s, n := range counts {
		if n == 0 {
			t.Errorf("shard %d owns no cells", s)
		}
		if n > 2*cells/shards {
			t.Errorf("shard %d owns %d of %d cells (mean %d)", s, n, cells, cells/shards)
		}
	}
}

func TestJitterFracDeterministicAndBounded(t *testing.T) {
	for n := uint64(0); n < 100; n++ {
		a := JitterFrac(42, "device-7", n)
		b := JitterFrac(42, "device-7", n)
		if a != b {
			t.Fatalf("draw %d not deterministic: %v then %v", n, a, b)
		}
		if a < 0 || a >= 1 {
			t.Fatalf("draw %d = %v outside [0,1)", n, a)
		}
	}
	if JitterFrac(42, "device-7", 0) == JitterFrac(42, "device-8", 0) {
		t.Error("different devices drew identical jitter")
	}
	if JitterFrac(42, "device-7", 0) == JitterFrac(43, "device-7", 0) {
		t.Error("different seeds drew identical jitter")
	}
	if JitterFrac(42, "device-7", 0) == JitterFrac(42, "device-7", 1) {
		t.Error("consecutive draws identical")
	}
}

func TestUtilTableFallbackAndDenyUnknown(t *testing.T) {
	open := NewUtilTable(0.25, false)
	if got := open.Get("unknown"); got != 0.25 {
		t.Errorf("fallback table: unknown cell = %v, want 0.25", got)
	}
	open.Set("bs0/s0", 0.9)
	if got := open.Get("bs0/s0"); got != 0.9 {
		t.Errorf("known cell = %v, want 0.9", got)
	}

	closed := NewUtilTable(0.25, true)
	if got := closed.Get("unknown"); got != 1.0 {
		t.Errorf("deny-unknown table: unknown cell = %v, want 1.0 (fail closed)", got)
	}
	closed.Set("bs0/s0", 0.1)
	if got := closed.Get("bs0/s0"); got != 0.1 {
		t.Errorf("deny-unknown table: known cell = %v, want 0.1", got)
	}
}

func TestReadFeed(t *testing.T) {
	tbl := NewUtilTable(0, false)
	var logged []string
	logf := func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	feed := "bs0/s0 0.5\nbs0/s1 0.9\n\ngarbage\nbs0/s2 not-a-number\nbs0/s0 0.6\n"
	if err := ReadFeed(strings.NewReader(feed), tbl, logf); err != nil {
		t.Fatalf("ReadFeed: %v", err)
	}
	if tbl.Len() != 2 {
		t.Errorf("table has %d cells, want 2", tbl.Len())
	}
	if got := tbl.Get("bs0/s0"); got != 0.6 {
		t.Errorf("bs0/s0 = %v, want 0.6 (last value wins)", got)
	}
	if len(logged) != 3 { // two malformed lines + the summary
		t.Errorf("logged %d lines, want 3: %q", len(logged), logged)
	}
}

func TestReadFeedReportsReadFailure(t *testing.T) {
	if err := ReadFeed(failingReader{}, NewUtilTable(0, false), nil); err == nil {
		t.Error("read failure not surfaced")
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, fmt.Errorf("wire cut") }
