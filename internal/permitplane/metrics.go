package permitplane

import (
	"threegol/internal/obs"
	"threegol/internal/permitplane/wal"
)

// Result and outcome labels as recorded in Metrics.
const (
	resultGranted = "granted"
	resultDenied  = "denied"
	resultError   = "error"

	outcomeOK         = "ok"
	outcomeBadRequest = "bad_request"

	directionDL = "dl"
	directionUL = "ul"

	verdictStaleGrant = "stale_grant"
	verdictFailClosed = "fail_closed"

	probeOK     = "ok"
	probeFailed = "failed"
)

// Metrics holds the permit plane's instruments; register with
// NewMetrics. The families split into three roles — router-side (batch
// RPC handling), client-side (cache behaviour) and admission-loop —
// and any one process normally drives only one role's instruments, but
// they register together so METRICS.md documents the whole plane and
// so Sharded.MergedRegistry has a complete destination to merge into.
// A nil Metrics disables instrumentation.
type Metrics struct {
	// BatchRequests counts POST /permits/batch calls by outcome
	// (ok | bad_request).
	BatchRequests *obs.Counter
	// BatchSize is the number of permit requests per batch RPC.
	BatchSize *obs.Histogram
	// Routed counts single GET /permit requests routed to a shard.
	Routed *obs.Counter

	// CacheHits counts Allowed calls served from the fresh cache with
	// no refresh triggered.
	CacheHits *obs.Counter
	// CacheRefreshes counts cache refreshes by result
	// (granted | denied | error).
	CacheRefreshes *obs.Counter
	// CacheProactive counts refreshes issued inside the jittered
	// pre-expiry window, while the cached permit was still valid.
	CacheProactive *obs.Counter
	// CacheCoalesced counts Allowed calls that coalesced onto another
	// caller's in-flight refresh instead of issuing their own.
	CacheCoalesced *obs.Counter
	// BatchFallbacks counts batch RPCs downgraded to per-permit GETs
	// because the backend has no /permits/batch endpoint.
	BatchFallbacks *obs.Counter

	// CacheDegraded counts transitions of the permit cache into
	// degraded mode (the per-endpoint circuit breaker opened after
	// consecutive refresh failures).
	CacheDegraded *obs.Counter
	// CacheDegradedServed counts Allowed verdicts served while
	// degraded without touching the backend, by verdict
	// (stale_grant | fail_closed).
	CacheDegradedServed *obs.Counter
	// CacheProbes counts half-open probes a degraded cache issued, by
	// result (ok | failed). An ok probe closes the breaker.
	CacheProbes *obs.Counter
	// BatchReprobes counts re-probes of /permits/batch by a client
	// latched onto the legacy single-GET fallback.
	BatchReprobes *obs.Counter

	// ActiveGrants is the admission loop's count of live (unexpired)
	// permits across all cells.
	ActiveGrants *obs.Gauge
	// AdmittedLoad is the onloading load the admission loop has fed
	// back into the cell model, in bits/s, by direction (dl | ul).
	AdmittedLoad *obs.Gauge

	// OutstandingGrants is the shard's live (unexpired) permit count;
	// the shard-merged dump sums to the plane-wide total.
	OutstandingGrants *obs.Gauge
	// WALRecords counts write-ahead-log appends by op
	// (grant | refresh | revoke | expire).
	WALRecords *obs.Counter
	// WALErrors counts failed WAL writes — the daemon keeps serving
	// with degraded durability instead of going dark.
	WALErrors *obs.Counter
	// WALSnapshots counts snapshot compactions.
	WALSnapshots *obs.Counter
	// WALRecovered counts grants reconstructed by boot-time replay.
	WALRecovered *obs.Counter
	// WALExpiredOnRecovery counts replayed grants whose TTL lapsed
	// during the outage and were expired at the recovery instant.
	WALExpiredOnRecovery *obs.Counter
	// WALReplayedRecords counts log records applied by boot-time
	// replay (on top of the snapshot).
	WALReplayedRecords *obs.Counter
	// WALTornBytes counts trailing bytes a crash left torn, truncated
	// at recovery.
	WALTornBytes *obs.Counter
	// OversizedIDs counts decisions left untracked because the device
	// or cell identifier exceeded wal.MaxIDLen — an ID that long can be
	// framed neither in a WAL record nor in a snapshot.
	OversizedIDs *obs.Counter
}

// NewMetrics registers the permit plane's metrics on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		BatchRequests: r.NewCounter("permitplane_batch_requests_total",
			"Batch permit RPCs served, by outcome (ok | bad_request).", "outcome"),
		BatchSize: r.NewHistogram("permitplane_batch_size",
			"Permit requests per batch RPC.",
			0, 4096, 256),
		Routed: r.NewCounter("permitplane_routed_total",
			"Single GET /permit requests routed to a shard."),
		CacheHits: r.NewCounter("permitplane_cache_hits_total",
			"Permit-cache lookups served fresh with no refresh triggered."),
		CacheRefreshes: r.NewCounter("permitplane_cache_refreshes_total",
			"Permit-cache refreshes, by result (granted | denied | error).", "result"),
		CacheProactive: r.NewCounter("permitplane_cache_proactive_total",
			"Permit-cache refreshes issued proactively, inside the jittered pre-expiry window."),
		CacheCoalesced: r.NewCounter("permitplane_cache_coalesced_total",
			"Permit-cache lookups coalesced onto an in-flight refresh (singleflight)."),
		BatchFallbacks: r.NewCounter("permitplane_batch_fallbacks_total",
			"Batch RPCs downgraded to per-permit GETs (backend without /permits/batch)."),
		CacheDegraded: r.NewCounter("permitplane_cache_degraded_total",
			"Permit-cache transitions into degraded mode (circuit breaker opened on consecutive refresh failures)."),
		CacheDegradedServed: r.NewCounter("permitplane_cache_degraded_served_total",
			"Permit verdicts served while degraded without a backend round trip, by verdict (stale_grant | fail_closed).",
			"verdict"),
		CacheProbes: r.NewCounter("permitplane_cache_probes_total",
			"Half-open probes issued by a degraded permit cache, by result (ok | failed).", "result"),
		BatchReprobes: r.NewCounter("permitplane_batch_reprobes_total",
			"Jittered re-probes of /permits/batch by clients latched onto the legacy single-GET fallback."),
		ActiveGrants: r.NewGauge("permitplane_active_grants",
			"Live (unexpired) permits the admission loop is carrying across all cells."),
		AdmittedLoad: r.NewGauge("permitplane_admitted_load_bps",
			"Onloading load the admission loop has fed back into the cell model, by direction (dl | ul).",
			"direction"),
		OutstandingGrants: r.NewGauge("permitplane_outstanding_grants",
			"Live (unexpired) permits tracked by the shard's grant store; shard-merged dumps sum to the plane total."),
		WALRecords: r.NewCounter("permitplane_wal_records_total",
			"Write-ahead-log appends, by op (grant | refresh | revoke | expire).", "op"),
		WALErrors: r.NewCounter("permitplane_wal_errors_total",
			"Failed write-ahead-log writes (durability degraded; decisions keep serving)."),
		WALSnapshots: r.NewCounter("permitplane_wal_snapshots_total",
			"Grant-state snapshot compactions."),
		WALRecovered: r.NewCounter("permitplane_wal_recovered_grants_total",
			"Outstanding grants reconstructed by boot-time WAL replay."),
		WALExpiredOnRecovery: r.NewCounter("permitplane_wal_expired_on_recovery_total",
			"Replayed grants whose TTL lapsed during the outage, expired at the recovery instant."),
		WALReplayedRecords: r.NewCounter("permitplane_wal_replayed_records_total",
			"Write-ahead-log records applied by boot-time replay (on top of the snapshot)."),
		WALTornBytes: r.NewCounter("permitplane_wal_torn_bytes_total",
			"Torn trailing bytes a crash left in the log, truncated at recovery."),
		OversizedIDs: r.NewCounter("permitplane_oversized_ids_total",
			"Permit decisions left untracked because the device or cell ID exceeded the WAL identifier bound."),
	}
}

func (m *Metrics) batchServed(ok bool, size int) {
	if m == nil {
		return
	}
	outcome := outcomeBadRequest
	if ok {
		outcome = outcomeOK
	}
	m.BatchRequests.With(outcome).Inc()
	if ok {
		m.BatchSize.Observe(float64(size))
	}
}

func (m *Metrics) routed() {
	if m == nil {
		return
	}
	m.Routed.Inc()
}

func (m *Metrics) cacheHit() {
	if m == nil {
		return
	}
	m.CacheHits.Inc()
}

func (m *Metrics) cacheRefreshed(granted bool, err error, proactive bool) {
	if m == nil {
		return
	}
	result := resultDenied
	switch {
	case err != nil:
		result = resultError
	case granted:
		result = resultGranted
	}
	m.CacheRefreshes.With(result).Inc()
	if proactive {
		m.CacheProactive.Inc()
	}
}

func (m *Metrics) cacheCoalesced() {
	if m == nil {
		return
	}
	m.CacheCoalesced.Inc()
}

func (m *Metrics) batchFellBack() {
	if m == nil {
		return
	}
	m.BatchFallbacks.Inc()
}

func (m *Metrics) admitted(activeGrants int, dlBps, ulBps float64) {
	if m == nil {
		return
	}
	m.ActiveGrants.Set(float64(activeGrants))
	m.AdmittedLoad.With(directionDL).Set(dlBps)
	m.AdmittedLoad.With(directionUL).Set(ulBps)
}

func (m *Metrics) cacheDegradedEnter() {
	if m == nil {
		return
	}
	m.CacheDegraded.Inc()
}

func (m *Metrics) cacheDegradedServed(staleGrant bool) {
	if m == nil {
		return
	}
	if staleGrant {
		m.CacheDegradedServed.With(verdictStaleGrant).Inc()
	} else {
		m.CacheDegradedServed.With(verdictFailClosed).Inc()
	}
}

func (m *Metrics) cacheProbed(ok bool) {
	if m == nil {
		return
	}
	if ok {
		m.CacheProbes.With(probeOK).Inc()
	} else {
		m.CacheProbes.With(probeFailed).Inc()
	}
}

func (m *Metrics) batchReprobed() {
	if m == nil {
		return
	}
	m.BatchReprobes.Inc()
}

func (m *Metrics) walAppended(op wal.Op) {
	if m == nil {
		return
	}
	m.WALRecords.With(op.String()).Inc()
}

func (m *Metrics) walAppendFailed() {
	if m == nil {
		return
	}
	m.WALErrors.Inc()
}

func (m *Metrics) walSnapshotted() {
	if m == nil {
		return
	}
	m.WALSnapshots.Inc()
}

func (m *Metrics) walRecovered(grants, expired int, stats wal.RecoveryStats) {
	if m == nil {
		return
	}
	m.WALRecovered.Add(int64(grants))
	m.WALExpiredOnRecovery.Add(int64(expired))
	m.WALReplayedRecords.Add(stats.RecordsReplayed)
	m.WALTornBytes.Add(stats.TornBytes)
}

func (m *Metrics) oversizedID() {
	if m == nil {
		return
	}
	m.OversizedIDs.Inc()
}

func (m *Metrics) outstanding(n int) {
	if m == nil {
		return
	}
	m.OutstandingGrants.Set(float64(n))
}
