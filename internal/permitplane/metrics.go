package permitplane

import "threegol/internal/obs"

// Result and outcome labels as recorded in Metrics.
const (
	resultGranted = "granted"
	resultDenied  = "denied"
	resultError   = "error"

	outcomeOK         = "ok"
	outcomeBadRequest = "bad_request"

	directionDL = "dl"
	directionUL = "ul"
)

// Metrics holds the permit plane's instruments; register with
// NewMetrics. The families split into three roles — router-side (batch
// RPC handling), client-side (cache behaviour) and admission-loop —
// and any one process normally drives only one role's instruments, but
// they register together so METRICS.md documents the whole plane and
// so Sharded.MergedRegistry has a complete destination to merge into.
// A nil Metrics disables instrumentation.
type Metrics struct {
	// BatchRequests counts POST /permits/batch calls by outcome
	// (ok | bad_request).
	BatchRequests *obs.Counter
	// BatchSize is the number of permit requests per batch RPC.
	BatchSize *obs.Histogram
	// Routed counts single GET /permit requests routed to a shard.
	Routed *obs.Counter

	// CacheHits counts Allowed calls served from the fresh cache with
	// no refresh triggered.
	CacheHits *obs.Counter
	// CacheRefreshes counts cache refreshes by result
	// (granted | denied | error).
	CacheRefreshes *obs.Counter
	// CacheProactive counts refreshes issued inside the jittered
	// pre-expiry window, while the cached permit was still valid.
	CacheProactive *obs.Counter
	// CacheCoalesced counts Allowed calls that coalesced onto another
	// caller's in-flight refresh instead of issuing their own.
	CacheCoalesced *obs.Counter
	// BatchFallbacks counts batch RPCs downgraded to per-permit GETs
	// because the backend has no /permits/batch endpoint.
	BatchFallbacks *obs.Counter

	// ActiveGrants is the admission loop's count of live (unexpired)
	// permits across all cells.
	ActiveGrants *obs.Gauge
	// AdmittedLoad is the onloading load the admission loop has fed
	// back into the cell model, in bits/s, by direction (dl | ul).
	AdmittedLoad *obs.Gauge
}

// NewMetrics registers the permit plane's metrics on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		BatchRequests: r.NewCounter("permitplane_batch_requests_total",
			"Batch permit RPCs served, by outcome (ok | bad_request).", "outcome"),
		BatchSize: r.NewHistogram("permitplane_batch_size",
			"Permit requests per batch RPC.",
			0, 4096, 256),
		Routed: r.NewCounter("permitplane_routed_total",
			"Single GET /permit requests routed to a shard."),
		CacheHits: r.NewCounter("permitplane_cache_hits_total",
			"Permit-cache lookups served fresh with no refresh triggered."),
		CacheRefreshes: r.NewCounter("permitplane_cache_refreshes_total",
			"Permit-cache refreshes, by result (granted | denied | error).", "result"),
		CacheProactive: r.NewCounter("permitplane_cache_proactive_total",
			"Permit-cache refreshes issued proactively, inside the jittered pre-expiry window."),
		CacheCoalesced: r.NewCounter("permitplane_cache_coalesced_total",
			"Permit-cache lookups coalesced onto an in-flight refresh (singleflight)."),
		BatchFallbacks: r.NewCounter("permitplane_batch_fallbacks_total",
			"Batch RPCs downgraded to per-permit GETs (backend without /permits/batch)."),
		ActiveGrants: r.NewGauge("permitplane_active_grants",
			"Live (unexpired) permits the admission loop is carrying across all cells."),
		AdmittedLoad: r.NewGauge("permitplane_admitted_load_bps",
			"Onloading load the admission loop has fed back into the cell model, by direction (dl | ul).",
			"direction"),
	}
}

func (m *Metrics) batchServed(ok bool, size int) {
	if m == nil {
		return
	}
	outcome := outcomeBadRequest
	if ok {
		outcome = outcomeOK
	}
	m.BatchRequests.With(outcome).Inc()
	if ok {
		m.BatchSize.Observe(float64(size))
	}
}

func (m *Metrics) routed() {
	if m == nil {
		return
	}
	m.Routed.Inc()
}

func (m *Metrics) cacheHit() {
	if m == nil {
		return
	}
	m.CacheHits.Inc()
}

func (m *Metrics) cacheRefreshed(granted bool, err error, proactive bool) {
	if m == nil {
		return
	}
	result := resultDenied
	switch {
	case err != nil:
		result = resultError
	case granted:
		result = resultGranted
	}
	m.CacheRefreshes.With(result).Inc()
	if proactive {
		m.CacheProactive.Inc()
	}
}

func (m *Metrics) cacheCoalesced() {
	if m == nil {
		return
	}
	m.CacheCoalesced.Inc()
}

func (m *Metrics) batchFellBack() {
	if m == nil {
		return
	}
	m.BatchFallbacks.Inc()
}

func (m *Metrics) admitted(activeGrants int, dlBps, ulBps float64) {
	if m == nil {
		return
	}
	m.ActiveGrants.Set(float64(activeGrants))
	m.AdmittedLoad.With(directionDL).Set(dlBps)
	m.AdmittedLoad.With(directionUL).Set(ulBps)
}
