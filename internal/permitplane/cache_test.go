package permitplane

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"threegol/internal/obs"
	"threegol/internal/permit"
)

// grantingFetch returns a Fetch that always grants with the given TTL
// and counts its calls.
func grantingFetch(count *atomic.Int64, ttl time.Duration) func(ctx context.Context, device, cell string) (permit.Response, error) {
	return func(ctx context.Context, device, cell string) (permit.Response, error) {
		count.Add(1)
		return permit.Response{Granted: true, TTLSeconds: ttl.Seconds()}, nil
	}
}

// TestCacheJitterSpreadsRefreshBurst is the thundering-herd guarantee:
// 10k devices all granted in the same instant (a backend restart) must
// not come back in the same instant. The jitter stream is seeded, so
// this distribution is exact and replayable — the bound is a property
// of the algorithm, not of a lucky run.
func TestCacheJitterSpreadsRefreshBurst(t *testing.T) {
	const (
		clients = 10000
		ttl     = 3 * time.Minute
		step    = time.Second
	)
	clk := &fakeClock{}
	var fetches atomic.Int64
	caches := make([]*Cache, clients)
	for i := range caches {
		caches[i] = &Cache{
			Fetch:  grantingFetch(&fetches, ttl),
			Device: fmt.Sprintf("device-%d", i),
			Cell:   "bs0/s0",
			Seed:   1,
			Clock:  clk,
		}
		// Synchronised initial grant: every device refreshes at t=0.
		if !caches[i].Allowed(context.Background()) {
			t.Fatal("initial grant failed")
		}
	}
	if got := fetches.Load(); got != clients {
		t.Fatalf("%d initial fetches for %d clients", got, clients)
	}

	// Step virtual time one second at a time across the TTL and count
	// refreshes per step. Proactive refreshes land in
	// [0.7, 0.95]×TTL = a 45-second window, so a uniform spread puts
	// ~222 of 10k clients in each second.
	steps := int(ttl / step)
	perStep := make([]int, steps+1)
	total := 0
	for s := 1; s <= steps; s++ {
		clk.advance(step)
		before := fetches.Load()
		for _, c := range caches {
			c.Allowed(context.Background())
		}
		n := int(fetches.Load() - before)
		perStep[s] = n
		total += n
	}
	if total < clients {
		t.Errorf("only %d refreshes across one TTL for %d clients", total, clients)
	}
	maxBurst, at := 0, 0
	for s, n := range perStep {
		if n > maxBurst {
			maxBurst, at = n, s
		}
	}
	// The herd bound: a uniform spread over the 45 s window expects
	// ~222/step; allow 2× for hash clumping. Without jitter all 10k
	// would land in a single step.
	if maxBurst > 450 {
		t.Errorf("refresh burst of %d clients at t=%ds; jitter is not spreading the herd", maxBurst, at)
	}
	// And the window is honoured: no proactive refresh before 0.7×TTL
	// (126 s) or at/after expiry.
	for s := 1; s < 126; s++ {
		if perStep[s] != 0 {
			t.Errorf("refresh at t=%ds, before the 0.7×TTL window opens", s)
		}
	}
}

// TestCacheTTLBoundary pins the expiry edge the way the discovery flap
// test pins Φ: with proactive refresh disabled the cached permit must
// serve up to the last instant before expiry and refresh exactly at it
// — not one step early, not one step late.
func TestCacheTTLBoundary(t *testing.T) {
	const ttl = 3 * time.Minute
	clk := &fakeClock{}
	var fetches atomic.Int64
	c := &Cache{
		Fetch:     grantingFetch(&fetches, ttl),
		Device:    "d0",
		Cell:      "bs0/s0",
		Clock:     clk,
		RefreshLo: 1, RefreshHi: 1, // refresh exactly at expiry
	}
	if !c.Allowed(context.Background()) {
		t.Fatal("initial grant failed")
	}
	if fetches.Load() != 1 {
		t.Fatalf("%d fetches after first Allowed, want 1", fetches.Load())
	}

	clk.advance(ttl - time.Nanosecond)
	if !c.Allowed(context.Background()) {
		t.Error("permit not served just before expiry")
	}
	if fetches.Load() != 1 {
		t.Errorf("refreshed %d times before the boundary, want no refresh", fetches.Load()-1)
	}

	clk.advance(time.Nanosecond) // exactly at expiry
	if !c.Allowed(context.Background()) {
		t.Error("refresh at expiry failed")
	}
	if fetches.Load() != 2 {
		t.Errorf("%d fetches at the boundary, want exactly 2", fetches.Load())
	}

	// Flapping around the boundary must not re-fetch: the new permit is
	// fresh for another TTL.
	clk.advance(time.Nanosecond)
	c.Allowed(context.Background())
	if fetches.Load() != 2 {
		t.Errorf("fetch repeated just after the boundary: %d total", fetches.Load())
	}
}

func TestCacheSingleflightCoalesces(t *testing.T) {
	const waiters = 16
	clk := &fakeClock{}
	release := make(chan struct{})
	var fetches atomic.Int64
	c := &Cache{
		Fetch: func(ctx context.Context, device, cell string) (permit.Response, error) {
			fetches.Add(1)
			<-release
			return permit.Response{Granted: true, TTLSeconds: 60}, nil
		},
		Device:  "d0",
		Cell:    "bs0/s0",
		Clock:   clk,
		Metrics: NewMetrics(obs.NewRegistry()),
	}

	results := make(chan bool, waiters)
	var started sync.WaitGroup
	started.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			started.Done()
			results <- c.Allowed(context.Background())
		}()
	}
	started.Wait()
	// Give the losers time to reach the flight wait, then release the
	// single winner's fetch.
	for c.Metrics.CacheCoalesced.With().Value() < waiters-1 {
		time.Sleep(time.Millisecond) //3golvet:allow wallclock — test polls real goroutines
	}
	close(release)
	for i := 0; i < waiters; i++ {
		if !<-results {
			t.Error("coalesced waiter denied despite granted refresh")
		}
	}
	if got := fetches.Load(); got != 1 {
		t.Errorf("%d backend fetches for %d concurrent callers, want 1", got, waiters)
	}
}

func TestCacheStaleWhileRefreshServesCachedVerdict(t *testing.T) {
	clk := &fakeClock{}
	release := make(chan struct{})
	first := true
	c := &Cache{
		Fetch: func(ctx context.Context, device, cell string) (permit.Response, error) {
			if first {
				first = false
				return permit.Response{Granted: true, TTLSeconds: 60}, nil
			}
			<-release
			return permit.Response{Granted: true, TTLSeconds: 60}, nil
		},
		Device: "d0", Cell: "bs0/s0", Clock: clk,
		RefreshLo: 0.5, RefreshHi: 0.5,
	}
	if !c.Allowed(context.Background()) {
		t.Fatal("initial grant failed")
	}
	clk.advance(31 * time.Second) // inside the proactive window, still fresh

	// First caller wins the flight and blocks in Fetch; a second caller
	// must be served the still-valid cached verdict without waiting.
	winnerDone := make(chan bool, 1)
	go func() {
		winnerDone <- c.Allowed(context.Background())
	}()
	for {
		c.mu.Lock()
		inFlight := c.flight != nil
		c.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(time.Millisecond) //3golvet:allow wallclock — test polls real goroutines
	}
	if !c.Allowed(context.Background()) {
		t.Error("stale-while-refresh did not serve the valid cached permit")
	}
	close(release)
	if !<-winnerDone {
		t.Error("refresh winner denied despite granted refresh")
	}
}

func TestCacheFailedProactiveRefreshKeepsPermit(t *testing.T) {
	clk := &fakeClock{}
	fail := false
	c := &Cache{
		Fetch: func(ctx context.Context, device, cell string) (permit.Response, error) {
			if fail {
				return permit.Response{}, fmt.Errorf("backend down")
			}
			return permit.Response{Granted: true, TTLSeconds: 60}, nil
		},
		Device: "d0", Cell: "bs0/s0", Clock: clk,
		RefreshLo: 0.5, RefreshHi: 0.5,
	}
	if !c.Allowed(context.Background()) {
		t.Fatal("initial grant failed")
	}
	fail = true
	clk.advance(31 * time.Second) // proactive refresh due, permit valid until 60s
	if !c.Allowed(context.Background()) {
		t.Error("failed proactive refresh revoked a permit whose TTL had not lapsed")
	}
	clk.advance(30 * time.Second) // now past the granted TTL
	if c.Allowed(context.Background()) {
		t.Error("permit served past its TTL while the backend is down")
	}
}

func TestCacheDenialCooldown(t *testing.T) {
	clk := &fakeClock{}
	var fetches atomic.Int64
	c := &Cache{
		Fetch: func(ctx context.Context, device, cell string) (permit.Response, error) {
			fetches.Add(1)
			return permit.Response{Granted: false}, nil
		},
		Device: "d0", Cell: "bs0/s0", Clock: clk,
	}
	if c.Allowed(context.Background()) {
		t.Fatal("denied permit reported allowed")
	}
	c.Allowed(context.Background())
	if fetches.Load() != 1 {
		t.Errorf("denial re-fetched inside the cooldown: %d fetches", fetches.Load())
	}
	clk.advance(denyCooldown)
	c.Allowed(context.Background())
	if fetches.Load() != 2 {
		t.Errorf("denial not re-checked after the cooldown: %d fetches", fetches.Load())
	}
}
