package permitplane

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"threegol/internal/cellular"
	"threegol/internal/diurnal"
	"threegol/internal/linksim"
	"threegol/internal/obs"
	"threegol/internal/permit"
	"threegol/internal/scheduler"
	"threegol/internal/simclock"
)

// quietLoop builds a CellLoop over a one-sector network with zero
// background load, so congestion comes only from admitted grants.
func quietLoop(clk *fakeClock) (*CellLoop, string) {
	sim := linksim.New(simclock.New())
	net := cellular.NewNetwork(sim, rand.New(rand.NewSource(1)), cellular.DefaultParams())
	bs := net.AddBaseStation(cellular.BaseStationConfig{
		Name:    "bs0",
		Sectors: 1,
		Load:    diurnal.New([24]float64{}),
	})
	l := NewCellLoop(net)
	l.Clock = clk
	return l, bs.Sectors()[0].Name()
}

// TestCellLoopGrantRatioFallsAsLoadRises is the closed-loop acceptance
// test: with utilisation fed by the live cell model and granted load
// fed back into it, early requests are granted and the grant ratio
// falls to zero as admitted load fills the cell — then recovers once
// the grants' TTLs lapse and their load is returned.
func TestCellLoopGrantRatioFallsAsLoadRises(t *testing.T) {
	clk := &fakeClock{}
	loop, cell := quietLoop(clk)
	loop.TTL = time.Minute
	b := &permit.Backend{
		Utilization: loop.Utilization,
		OnGrant:     loop.OnGrant,
		Threshold:   0.7,
		Clock:       clk,
	}

	// Nominal DL is 7.2 Mbps and each grant admits 500 kbps DL, so the
	// DL load factor climbs ~0.069 per grant: requests are granted
	// until ~10 permits are live, then denied.
	const requests = 40
	var granted []bool
	for i := 0; i < requests; i++ {
		granted = append(granted, b.Decide(context.Background(), cell).Granted)
	}
	firstDenial := -1
	for i, g := range granted {
		if !g {
			firstDenial = i
			break
		}
	}
	if firstDenial < 5 || firstDenial > 15 {
		t.Fatalf("first denial at request %d, want ~11 (capacity 7.2 Mbps / 500 kbps per grant at threshold 0.7)", firstDenial)
	}
	for i := firstDenial; i < requests; i++ {
		if granted[i] {
			t.Errorf("request %d granted after the cell filled", i)
		}
	}
	early := ratio(granted[:firstDenial])
	late := ratio(granted[firstDenial:])
	if early != 1 || late != 0 {
		t.Errorf("grant ratio early=%v late=%v; admission loop not closing", early, late)
	}
	if got := loop.ActiveGrants(cell); got != firstDenial {
		t.Errorf("%d active grants, want %d", got, firstDenial)
	}

	// TTL expiry returns the load: the ratio recovers.
	clk.advance(loop.TTL + time.Second)
	if got := loop.ActiveGrants(cell); got != 0 {
		t.Errorf("%d active grants after TTL, want 0", got)
	}
	if !b.Decide(context.Background(), cell).Granted {
		t.Error("grant not restored after admitted load expired")
	}
}

func ratio(granted []bool) float64 {
	if len(granted) == 0 {
		return 0
	}
	n := 0
	for _, g := range granted {
		if g {
			n++
		}
	}
	return float64(n) / float64(len(granted))
}

func TestCellLoopUnknownCellFailsClosed(t *testing.T) {
	clk := &fakeClock{}
	loop, _ := quietLoop(clk)
	if got := loop.Utilization("no-such-cell"); got != 1.0 {
		t.Errorf("unknown cell utilisation %v, want 1.0 (fail closed)", got)
	}
	loop.OnGrant("no-such-cell") // must not panic or count
	if got := loop.ActiveGrants("no-such-cell"); got != 0 {
		t.Errorf("unknown cell carries %d grants", got)
	}
}

func TestCellLoopMetricsTrackAdmittedLoad(t *testing.T) {
	clk := &fakeClock{}
	loop, cell := quietLoop(clk)
	loop.Metrics = NewMetrics(obs.NewRegistry())
	loop.PerGrantDL = 400 * linksim.Kbps
	loop.PerGrantUL = 100 * linksim.Kbps
	loop.TTL = time.Minute

	loop.OnGrant(cell)
	loop.OnGrant(cell)
	if got := loop.Metrics.ActiveGrants.With().Value(); got != 2 {
		t.Errorf("active grants gauge %v, want 2", got)
	}
	if got := loop.Metrics.AdmittedLoad.With(directionDL).Value(); got != 800e3 {
		t.Errorf("admitted DL gauge %v, want 800e3", got)
	}
	clk.advance(time.Minute + time.Second)
	if got := loop.ActiveGrants(cell); got != 0 {
		t.Fatalf("%d active grants after TTL, want 0", got)
	}
	if got := loop.Metrics.ActiveGrants.With().Value(); got != 0 {
		t.Errorf("active grants gauge %v after expiry, want 0", got)
	}
	if got := loop.Metrics.AdmittedLoad.With(directionDL).Value(); got != 0 {
		t.Errorf("admitted DL gauge %v after expiry, want 0", got)
	}
}

type stubPath struct {
	name  string
	n     int64
	calls int
}

func (p *stubPath) Name() string { return p.name }

func (p *stubPath) Transfer(ctx context.Context, item scheduler.Item) (int64, error) {
	p.calls++
	return p.n, nil
}

type stubProgressPath struct {
	stubPath
	progressCalls int
}

func (p *stubProgressPath) TransferProgress(ctx context.Context, item scheduler.Item, progress func(total int64)) (int64, error) {
	p.calls++
	p.progressCalls++
	progress(p.n)
	return p.n, nil
}

func TestGatePathBlocksWithoutPermit(t *testing.T) {
	allowed := true
	inner := &stubPath{name: "3g", n: 1000}
	p := GatePath(inner, func(context.Context) bool { return allowed })
	if p.Name() != "3g" {
		t.Errorf("gate renamed the path to %q", p.Name())
	}
	if n, err := p.Transfer(context.Background(), scheduler.Item{}); err != nil || n != 1000 {
		t.Errorf("permitted transfer: n=%d err=%v", n, err)
	}
	allowed = false
	if _, err := p.Transfer(context.Background(), scheduler.Item{}); err != ErrNotPermitted {
		t.Errorf("unpermitted transfer error = %v, want ErrNotPermitted", err)
	}
	if inner.calls != 1 {
		t.Errorf("inner path called %d times, want 1 (gate must short-circuit)", inner.calls)
	}
}

func TestGatePathPreservesProgress(t *testing.T) {
	inner := &stubProgressPath{stubPath: stubPath{name: "3g", n: 500}}
	allowed := true
	gated := GatePath(inner, func(context.Context) bool { return allowed })
	pp, ok := gated.(scheduler.ProgressPath)
	if !ok {
		t.Fatal("gating a ProgressPath lost the progress interface")
	}
	var reported int64
	n, err := pp.TransferProgress(context.Background(), scheduler.Item{}, func(total int64) { reported = total })
	if err != nil || n != 500 || reported != 500 {
		t.Errorf("gated progress transfer: n=%d reported=%d err=%v", n, reported, err)
	}
	allowed = false
	if _, err := pp.TransferProgress(context.Background(), scheduler.Item{}, func(int64) {}); err != ErrNotPermitted {
		t.Errorf("unpermitted progress transfer error = %v, want ErrNotPermitted", err)
	}
	if inner.progressCalls != 1 {
		t.Errorf("inner progress path called %d times, want 1", inner.progressCalls)
	}

	// A plain Path must not grow a progress method through the gate.
	if _, ok := GatePath(&stubPath{}, func(context.Context) bool { return true }).(scheduler.ProgressPath); ok {
		t.Error("gating a plain Path invented a progress interface")
	}
}
