package permitplane

import (
	"container/heap"
	"sync"
	"time"

	"threegol/internal/cellular"
	"threegol/internal/clock"
	"threegol/internal/linksim"
	"threegol/internal/permit"
)

// Per-grant load defaults: what one granted permit is assumed to add to
// its cell's shared channels. The paper's devices fall back to 360/64
// kbps dedicated channels, but an onloading device drives the shared
// channel far harder; 500/250 kbps is a conservative planning figure —
// operators tune it per deployment.
const (
	DefaultPerGrantDL = 500 * linksim.Kbps
	DefaultPerGrantUL = 250 * linksim.Kbps
)

// CellLoop closes the network-integrated admission loop of §5: grant
// decisions read live congestion from the internal/cellular model, and
// every granted permit feeds its expected load back into the cell for
// the permit's lifetime, so the next decision sees the capacity this
// one just spent. Wire Utilization and OnGrant into Config (or a bare
// permit.Backend) and the loop is closed.
//
// The cellular model is not goroutine-safe; the loop serialises every
// touch of it behind its own mutex, so nothing else may drive the
// network concurrently with a serving backend. Simulations that own
// both should call the hooks from the simulation goroutine.
type CellLoop struct {
	// PerGrantDL and PerGrantUL are the per-permit load assumptions in
	// bits/s; zero selects the defaults.
	PerGrantDL, PerGrantUL float64
	// TTL is how long a grant's load stays applied — set it to the
	// backend's permit TTL; zero selects permit.DefaultTTL.
	TTL time.Duration
	// Clock expires grants; nil selects the system clock. Tests inject
	// a fake to step grants across TTL boundaries deterministically.
	Clock clock.Clock
	// Metrics, when non-nil, receives admission-loop gauges.
	Metrics *Metrics

	mu      sync.Mutex
	cells   map[string]*cellular.Cell
	active  map[string]int
	pending grantHeap
	total   int
}

// NewCellLoop builds a loop over every sector of net, keyed by sector
// name (the cell ID devices report).
func NewCellLoop(net *cellular.Network) *CellLoop {
	l := &CellLoop{
		cells:  make(map[string]*cellular.Cell),
		active: make(map[string]int),
	}
	for _, bs := range net.BaseStations() {
		for _, c := range bs.Sectors() {
			l.cells[c.Name()] = c
		}
	}
	return l
}

func (l *CellLoop) perGrant() (dl, ul float64) {
	dl, ul = l.PerGrantDL, l.PerGrantUL
	if dl <= 0 {
		dl = DefaultPerGrantDL
	}
	if ul <= 0 {
		ul = DefaultPerGrantUL
	}
	return dl, ul
}

func (l *CellLoop) ttl() time.Duration {
	if l.TTL > 0 {
		return l.TTL
	}
	return permit.DefaultTTL
}

// Utilization reports the cell's current congestion — the
// Backend.Utilization hook. Cells the model does not know fail closed
// (utilisation 1.0): a device reporting a bogus cell gets no permit.
func (l *CellLoop) Utilization(cellID string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.expireLocked(clock.Or(l.Clock).Now())
	c, ok := l.cells[cellID]
	if !ok {
		return 1.0
	}
	return c.Congestion()
}

// OnGrant records one granted permit — the Backend.OnGrant hook. The
// grant's load applies to the cell immediately and lapses after TTL.
func (l *CellLoop) OnGrant(cellID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := clock.Or(l.Clock).Now()
	l.expireLocked(now)
	if _, ok := l.cells[cellID]; !ok {
		return // unknown cell can never have been granted; Utilization said 1.0
	}
	l.active[cellID]++
	l.total++
	heap.Push(&l.pending, grantExpiry{at: now.Add(l.ttl()), cell: cellID})
	l.applyLocked(cellID)
	l.reportLocked()
}

// ActiveGrants reports the live (unexpired) grant count for a cell.
func (l *CellLoop) ActiveGrants(cellID string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.expireLocked(clock.Or(l.Clock).Now())
	return l.active[cellID]
}

// expireLocked retires grants whose TTL has lapsed, returning their
// load to the cells. Caller holds l.mu.
func (l *CellLoop) expireLocked(now time.Time) {
	changed := false
	for len(l.pending) > 0 && !now.Before(l.pending[0].at) {
		g := heap.Pop(&l.pending).(grantExpiry)
		l.active[g.cell]--
		l.total--
		l.applyLocked(g.cell)
		changed = true
	}
	if changed {
		l.reportLocked()
	}
}

// applyLocked pushes a cell's current granted load into the cellular
// model. Caller holds l.mu.
func (l *CellLoop) applyLocked(cellID string) {
	dl, ul := l.perGrant()
	n := float64(l.active[cellID])
	l.cells[cellID].SetOnloadBps(n*dl, n*ul)
}

// reportLocked refreshes the admission gauges. Caller holds l.mu.
func (l *CellLoop) reportLocked() {
	dl, ul := l.perGrant()
	n := float64(l.total)
	l.Metrics.admitted(l.total, n*dl, n*ul)
}

// grantExpiry is one granted permit's scheduled load release.
type grantExpiry struct {
	at   time.Time
	cell string
}

// grantHeap is a min-heap of grant expiries by time.
type grantHeap []grantExpiry

func (h grantHeap) Len() int           { return len(h) }
func (h grantHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h grantHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *grantHeap) Push(x any)        { *h = append(*h, x.(grantExpiry)) }
func (h *grantHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
