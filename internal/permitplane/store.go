package permitplane

import (
	"container/heap"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"threegol/internal/clock"
	"threegol/internal/permitplane/wal"
)

// DefaultSnapshotEvery is how many WAL records a shard accumulates
// before compacting them into a snapshot. Snapshots bound both log
// growth and replay time; the write happens under the shard store lock
// but touches only outstanding grants, so it stays small even at load.
const DefaultSnapshotEvery = 8192

// GrantStore tracks one shard's outstanding permits: which device
// holds a grant, for which cell, until when. Every state change is
// appended to a write-ahead log first (when the store is durable), so
// a crashed daemon replays back to exactly the state it died with —
// modulo the TTL expiries that genuinely lapsed while it was down.
//
// Expiry is lazy: a min-heap of (expiry, device) is drained at the top
// of every mutation (and by ExpireDue), so TTL lapses are observed in
// deterministic order without a background timer.
type GrantStore struct {
	mu    sync.Mutex
	log   *wal.Log // nil for a memory-only store
	state *wal.State
	heap  storeExpiryHeap
	clk   clock.Clock

	metrics       *Metrics
	snapshotEvery int
	sinceSnapshot int
	walErrs       int64

	recovery Recovery
}

// Recovery describes one shard's boot-time WAL replay — the numbers
// /debug/shards exposes and the chaos harness cross-checks.
type Recovery struct {
	// RecoveredGrants is how many outstanding grants survived replay
	// (after expiring those whose TTL lapsed during the outage).
	RecoveredGrants int `json:"recovered_grants"`
	// ExpiredOnRecovery is how many replayed grants had lapsed while
	// the daemon was down and were expired at the recovery instant.
	ExpiredOnRecovery int `json:"expired_on_recovery"`
	// RecoveredAt is the recovery instant in Unix nanoseconds: grants
	// with Expiry > RecoveredAt survived, the rest expired. An
	// independent replay of the same WAL filtered at this instant must
	// reproduce StateHash exactly.
	RecoveredAt int64 `json:"recovered_at_unixnano"`
	// StateHash is the SHA-256 of the canonical state marshal at the
	// recovery instant.
	StateHash string `json:"state_hash"`
	// Seconds is the wall time the replay took.
	Seconds float64 `json:"seconds"`
	// WAL carries the raw replay stats (snapshot seq, records
	// replayed/skipped, torn bytes).
	WAL wal.RecoveryStats `json:"wal"`
}

// NewGrantStore returns a memory-only store: grant state is tracked
// (so /debug/shards reports outstanding permits) but nothing survives
// the process.
func NewGrantStore(clk clock.Clock, m *Metrics) *GrantStore {
	return &GrantStore{
		state:   wal.NewState(),
		clk:     clock.Or(clk),
		metrics: m,
	}
}

// OpenGrantStore recovers a durable store from dir: load the snapshot,
// replay the log, truncate any torn tail, expire grants that lapsed
// during the outage, and immediately compact into a fresh snapshot so
// the next recovery starts from here. snapshotEvery <= 0 selects
// DefaultSnapshotEvery.
//
//3golvet:allow ctxprop — boot-time recovery: runs before any request exists to carry a context, and replay must complete or fail atomically
func OpenGrantStore(dir string, clk clock.Clock, m *Metrics, snapshotEvery int) (*GrantStore, error) {
	if snapshotEvery <= 0 {
		snapshotEvery = DefaultSnapshotEvery
	}
	c := clock.Or(clk)
	t0 := c.Now()
	log, state, stats, err := wal.Open(dir, 0)
	if err != nil {
		return nil, err
	}
	s := &GrantStore{
		log:           log,
		state:         state,
		clk:           c,
		metrics:       m,
		snapshotEvery: snapshotEvery,
	}
	recoveredAt := c.Now().UnixNano()
	expired := state.ExpireDue(recoveredAt)
	for _, g := range expired {
		// The lapse happened while the daemon was down; record it so
		// replay-of-the-replay converges instead of re-expiring. The
		// record folds through Apply like any other (ExpireDue already
		// dropped the grant, so only the seq and expiry counter move):
		// the snapshot written below then carries exactly the counters
		// an independent replay of these records would reach, keeping
		// compaction equivalent to the fold it replaces.
		rec, err := log.Append(wal.OpExpire, g.Device, g.Cell, recoveredAt, 0)
		if err != nil {
			log.Close()
			return nil, err
		}
		state.Apply(rec)
	}
	for _, g := range state.Grants {
		heap.Push(&s.heap, storeExpiry{at: g.Expiry, device: g.Device, cell: g.Cell})
	}
	// Compact immediately: recovery cost never compounds across
	// restarts, and the recovered state is durably pinned.
	if err := log.WriteSnapshot(state); err != nil {
		log.Close()
		return nil, err
	}
	s.recovery = Recovery{
		RecoveredGrants:   len(state.Grants),
		ExpiredOnRecovery: len(expired),
		RecoveredAt:       recoveredAt,
		StateHash:         HashState(state),
		Seconds:           c.Since(t0).Seconds(),
		WAL:               stats,
	}
	m.walRecovered(len(state.Grants), len(expired), stats)
	return s, nil
}

// Durable reports whether the store has a WAL behind it.
func (s *GrantStore) Durable() bool { return s.log != nil }

// Recovery returns the boot-time replay stats (zero for memory-only
// stores and fresh directories).
func (s *GrantStore) Recovery() Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// RecordDecision folds one permit decision into the grant state. A
// granted decision creates or refreshes the device's outstanding
// permit for ttlSeconds; a denial revokes any permit the device still
// held (its cell filled up — the operator's signal to stop onloading).
// Decisions with no device identity cannot be tracked and are ignored.
//
//3golvet:allow ctxprop — the WAL append must stay ordered with the decision it records; cancelling it mid-write would desynchronise log and state
func (s *GrantStore) RecordDecision(device, cell string, granted bool, ttlSeconds float64) {
	if s == nil || device == "" {
		return
	}
	if len(device) > wal.MaxIDLen || len(cell) > wal.MaxIDLen {
		// An oversized ID can be framed neither in a WAL record nor in
		// a snapshot (both carry uint16 length fields); even holding it
		// in memory would poison the next snapshot. The decision goes
		// untracked, like one with no device identity.
		s.metrics.oversizedID()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	s.expireLocked(now.UnixNano()) //3golvet:allow lockio — the WAL write is the durability point: it must stay ordered with the state mutation it records, under the per-shard lock; bounded local file I/O
	key := wal.Key(device, cell)
	switch {
	case granted:
		op := wal.OpGrant
		if _, held := s.state.Grants[key]; held {
			op = wal.OpRefresh
		}
		expiry := now.Add(time.Duration(ttlSeconds * float64(time.Second))).UnixNano()
		s.applyLocked(op, device, cell, now.UnixNano(), expiry) //3golvet:allow lockio — the WAL write is the durability point: it must stay ordered with the state mutation it records, under the per-shard lock; bounded local file I/O
		heap.Push(&s.heap, storeExpiry{at: expiry, device: device, cell: cell})
	default:
		if _, held := s.state.Grants[key]; held {
			s.applyLocked(wal.OpRevoke, device, cell, now.UnixNano(), 0) //3golvet:allow lockio — the WAL write is the durability point: it must stay ordered with the state mutation it records, under the per-shard lock; bounded local file I/O
		}
	}
	s.metrics.outstanding(len(s.state.Grants))
	s.maybeSnapshotLocked() //3golvet:allow lockio — the WAL write is the durability point: it must stay ordered with the state mutation it records, under the per-shard lock; bounded local file I/O
}

// ExpireDue retires every grant whose TTL has lapsed. Mutating calls
// do this implicitly; daemons may also call it from a housekeeping
// tick so idle shards shed state.
//
//3golvet:allow ctxprop — expiry records must land in the WAL whenever observed; no caller's cancellation should skip them
func (s *GrantStore) ExpireDue() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.clk.Now().UnixNano()) //3golvet:allow lockio — the WAL write is the durability point: it must stay ordered with the state mutation it records, under the per-shard lock; bounded local file I/O
	s.metrics.outstanding(len(s.state.Grants))
}

// expireLocked pops due grants in deterministic (expiry, device, cell)
// order. The heap holds stale entries for refreshed grants; an entry
// only expires the live grant when the expiry still matches.
func (s *GrantStore) expireLocked(now int64) {
	for len(s.heap) > 0 && s.heap[0].at <= now {
		e := heap.Pop(&s.heap).(storeExpiry)
		g, ok := s.state.Grants[wal.Key(e.device, e.cell)]
		if !ok || g.Expiry != e.at {
			continue // refreshed or revoked since this entry was pushed
		}
		s.applyLocked(wal.OpExpire, g.Device, g.Cell, now, 0)
	}
}

// applyLocked appends the record (durable stores) and folds it into
// the in-memory state. WAL append failures are counted and the state
// still advances: a daemon with a full disk keeps serving decisions,
// degraded to memory-only durability, rather than going dark.
func (s *GrantStore) applyLocked(op wal.Op, device, cell string, at, expiry int64) {
	if s.log != nil {
		rec, err := s.log.Append(op, device, cell, at, expiry)
		if err == nil {
			s.state.Apply(rec)
			s.sinceSnapshot++
			s.metrics.walAppended(op)
			return
		}
		s.walErrs++
		s.metrics.walAppendFailed()
	}
	// Memory-only fold (or degraded durability): synthesise the seq.
	s.state.Apply(wal.Record{
		Seq: s.state.Seq + 1, Op: op, At: at, Expiry: expiry, Device: device, Cell: cell,
	})
	if s.log != nil {
		// Keep the log's sequence counter aligned with the state's: a
		// snapshot may persist the synthesised (higher) seq, and a later
		// successful append that reused a lower number would be skipped
		// on replay as already covered by that snapshot.
		s.log.SkipTo(s.state.Seq)
	}
}

// maybeSnapshotLocked compacts once enough records accumulated.
func (s *GrantStore) maybeSnapshotLocked() {
	if s.log == nil || s.sinceSnapshot < s.snapshotEvery {
		return
	}
	s.snapshotLocked()
}

func (s *GrantStore) snapshotLocked() {
	if err := s.log.WriteSnapshot(s.state); err != nil {
		s.walErrs++
		s.metrics.walAppendFailed()
		return
	}
	s.sinceSnapshot = 0
	s.metrics.walSnapshotted()
}

// Snapshot flushes the current state to disk immediately — the
// graceful-drain hook. Memory-only stores no-op.
//
//3golvet:allow ctxprop — shutdown-path flush: runs after request serving stopped, must not be cancellable
func (s *GrantStore) Snapshot() {
	if s == nil || s.log == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.clk.Now().UnixNano()) //3golvet:allow lockio — the WAL write is the durability point: it must stay ordered with the state mutation it records, under the per-shard lock; bounded local file I/O
	s.snapshotLocked()                     //3golvet:allow lockio — the WAL write is the durability point: it must stay ordered with the state mutation it records, under the per-shard lock; bounded local file I/O
}

// Close flushes a final snapshot and closes the log.
//
//3golvet:allow ctxprop — shutdown-path flush: runs after request serving stopped, must not be cancellable
func (s *GrantStore) Close() error {
	if s == nil || s.log == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.clk.Now().UnixNano()) //3golvet:allow lockio — the WAL write is the durability point: it must stay ordered with the state mutation it records, under the per-shard lock; bounded local file I/O
	s.snapshotLocked()                     //3golvet:allow lockio — the WAL write is the durability point: it must stay ordered with the state mutation it records, under the per-shard lock; bounded local file I/O
	return s.log.Close()                   //3golvet:allow lockio — final close under the shard lock; nothing can contend after drain
}

// Outstanding reports the live (unexpired) grant count.
//
//3golvet:allow ctxprop — the only I/O is lazy expiry's WAL appends, which must not be skippable by cancellation
func (s *GrantStore) Outstanding() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.clk.Now().UnixNano()) //3golvet:allow lockio — the WAL write is the durability point: it must stay ordered with the state mutation it records, under the per-shard lock; bounded local file I/O
	return len(s.state.Grants)
}

// Seq reports the last applied WAL sequence number.
func (s *GrantStore) Seq() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Seq
}

// StateHash reports the SHA-256 of the canonical state marshal after
// expiring due grants — the cheap way for two observers to agree on an
// entire shard's grant state.
//
//3golvet:allow ctxprop — the only I/O is lazy expiry's WAL appends, which must not be skippable by cancellation
func (s *GrantStore) StateHash() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.clk.Now().UnixNano()) //3golvet:allow lockio — the WAL write is the durability point: it must stay ordered with the state mutation it records, under the per-shard lock; bounded local file I/O
	return HashState(s.state)
}

// WALErrors reports how many WAL writes failed (durability degraded).
func (s *GrantStore) WALErrors() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walErrs
}

// HashState is the SHA-256 of a state's canonical marshal — the same
// digest StateHash and Recovery.StateHash report, exported so an
// independent replayer (the chaos harness) can compare entire shard
// states by fingerprint.
func HashState(st *wal.State) string {
	sum := sha256.Sum256(st.Marshal())
	return hex.EncodeToString(sum[:])
}

// ShardWALDir names the per-shard WAL directory under a plane's root:
// <root>/shard-<index>. One function shared by the daemon and the
// chaos harness, so the independent replay always looks where the
// daemon wrote.
func ShardWALDir(root string, shard int) string {
	return fmt.Sprintf("%s/shard-%d", root, shard)
}

// storeExpiry is one (expiry, device, cell) entry of the lazy min-heap.
type storeExpiry struct {
	at           int64
	device, cell string
}

// storeExpiryHeap orders by expiry, breaking ties by (device, cell) so
// the drain order — and therefore the OpExpire record order in the WAL
// — is deterministic.
type storeExpiryHeap []storeExpiry

func (h storeExpiryHeap) Len() int { return len(h) }
func (h storeExpiryHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].device != h[j].device {
		return h[i].device < h[j].device
	}
	return h[i].cell < h[j].cell
}
func (h storeExpiryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *storeExpiryHeap) Push(x any)   { *h = append(*h, x.(storeExpiry)) }
func (h *storeExpiryHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
