// Package wal is the permit plane's durability layer: a per-shard,
// checksummed, append-only write-ahead log of grant-state changes
// (grant / refresh / revoke / expiry) with periodic snapshot
// compaction.
//
// The contract is deterministic replay: the same bytes always
// reconstruct the same shard state, byte-identically under
// State.Marshal, no matter how many times the process died in between.
// Three properties make that hold through a kill -9 at any byte:
//
//   - Every record is framed as length + CRC32 + payload. A torn tail
//     (the partial record a dying process left behind) fails the
//     length or checksum test; Open truncates the log at the last
//     valid frame instead of refusing to start, and Replay stops
//     there. Both observers therefore agree on exactly which records
//     exist.
//   - Snapshots are written to a temp file and renamed into place, so
//     a snapshot either exists completely or not at all. The snapshot
//     records the last sequence number it covers; replay skips log
//     records at or below it, so a crash between "snapshot renamed"
//     and "log truncated" double-applies nothing.
//   - Sequence numbers are assigned at append time and never reused,
//     so any prefix of the log composes with any snapshot into one
//     well-defined state.
//
// The package is deliberately free of clocks and goroutines: callers
// stamp records with their own time source and serialise appends (the
// permit plane holds one per-shard store lock), which keeps replay a
// pure function of the bytes on disk.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Op is a grant-state change class.
type Op uint8

// The four record kinds. Grant creates an outstanding permit for a
// device, Refresh extends one that already exists, Revoke drops one
// because a later decision denied the device (its cell filled up), and
// Expire drops one whose TTL lapsed.
const (
	OpGrant Op = iota + 1
	OpRefresh
	OpRevoke
	OpExpire
)

// String names the op for logs and event attributes.
func (op Op) String() string {
	switch op {
	case OpGrant:
		return "grant"
	case OpRefresh:
		return "refresh"
	case OpRevoke:
		return "revoke"
	case OpExpire:
		return "expire"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Record is one grant-state change.
type Record struct {
	// Seq is the record's log sequence number: strictly increasing,
	// assigned by Append, never reused.
	Seq uint64
	// Op classifies the change.
	Op Op
	// At is the decision time in Unix nanoseconds (the caller's clock;
	// replay never consults a clock of its own).
	At int64
	// Expiry is the permit's expiry in Unix nanoseconds; zero for
	// Revoke and Expire records.
	Expiry int64
	// Device and Cell identify the permit.
	Device, Cell string
}

// Frame layout: u32 payload length, u32 CRC32 (IEEE) of the payload,
// then the payload. maxPayload bounds a frame so a corrupt length
// field reads as a torn tail instead of a giant allocation.
const (
	frameHeader = 8
	maxPayload  = 1 << 16
)

// MaxIDLen bounds the device and cell identifiers a record may carry.
// The frame stores each length in a uint16 and caps the whole payload
// at maxPayload; an unbounded ID would wrap the length field or exceed
// the frame bound, and decodeFrame would read the resulting frame as a
// torn tail — silently truncating every record appended after it.
// Append rejects oversized IDs up front so one bad identifier can
// never poison the log.
const MaxIDLen = 4096

// ErrIDTooLong reports a device or cell identifier longer than
// MaxIDLen; Append rejected the record before writing anything.
var ErrIDTooLong = errors.New("wal: device or cell ID exceeds MaxIDLen")

// errSealed reports a log sealed after a failed write could not be
// rewound to a frame boundary: further appends would land after
// partial frame bytes and be unreachable by replay, so they are
// refused instead. A successful WriteSnapshot heals the log.
var errSealed = errors.New("wal: log sealed after unrepairable partial write")

// encode appends the record's frame to buf and returns the result.
func encode(buf []byte, r Record) []byte {
	payload := make([]byte, 0, 29+len(r.Device)+len(r.Cell))
	payload = binary.LittleEndian.AppendUint64(payload, r.Seq)
	payload = append(payload, byte(r.Op))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(r.At))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(r.Expiry))
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(r.Device)))
	payload = append(payload, r.Device...)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(r.Cell)))
	payload = append(payload, r.Cell...)

	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// errTorn reports an invalid or incomplete frame — the replay loop's
// signal to stop at the previous record boundary.
var errTorn = errors.New("wal: torn or corrupt frame")

// decodeFrame parses one frame from b. n is the total frame size
// consumed on success.
func decodeFrame(b []byte) (r Record, n int, err error) {
	if len(b) < frameHeader {
		return Record{}, 0, errTorn
	}
	plen := int(binary.LittleEndian.Uint32(b))
	sum := binary.LittleEndian.Uint32(b[4:])
	if plen < 27 || plen > maxPayload || len(b) < frameHeader+plen {
		return Record{}, 0, errTorn
	}
	payload := b[frameHeader : frameHeader+plen]
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, 0, errTorn
	}
	r.Seq = binary.LittleEndian.Uint64(payload)
	r.Op = Op(payload[8])
	r.At = int64(binary.LittleEndian.Uint64(payload[9:]))
	r.Expiry = int64(binary.LittleEndian.Uint64(payload[17:]))
	off := 25
	dlen := int(binary.LittleEndian.Uint16(payload[off:]))
	off += 2
	if off+dlen+2 > plen {
		return Record{}, 0, errTorn
	}
	r.Device = string(payload[off : off+dlen])
	off += dlen
	clen := int(binary.LittleEndian.Uint16(payload[off:]))
	off += 2
	if off+clen != plen {
		return Record{}, 0, errTorn
	}
	r.Cell = string(payload[off : off+clen])
	if r.Op < OpGrant || r.Op > OpExpire {
		return Record{}, 0, errTorn
	}
	return r, frameHeader + plen, nil
}

// RecoveryStats describes what Open (or Replay) found on disk.
type RecoveryStats struct {
	// SnapshotSeq is the sequence number the loaded snapshot covers;
	// zero when no snapshot was usable.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SnapshotGrants is how many outstanding grants the snapshot held.
	SnapshotGrants int `json:"snapshot_grants"`
	// RecordsReplayed counts log records applied on top of the
	// snapshot.
	RecordsReplayed int64 `json:"records_replayed"`
	// RecordsSkipped counts log records already covered by the
	// snapshot (seq <= SnapshotSeq) — nonzero only after a crash
	// between snapshot rename and log truncation.
	RecordsSkipped int64 `json:"records_skipped"`
	// TornBytes is how many trailing bytes failed the frame checks and
	// were truncated (Open) or ignored (Replay).
	TornBytes int64 `json:"torn_bytes"`
	// SnapshotCorrupt reports that a snapshot file existed but failed
	// its checksum; recovery fell back to replaying the log alone.
	SnapshotCorrupt bool `json:"snapshot_corrupt,omitempty"`
}

const (
	logName      = "wal.log"
	snapName     = "snapshot.snap"
	snapTempName = "snapshot.snap.tmp"
)

// Log is one shard's write-ahead log: an open log file plus the
// snapshot machinery. Callers serialise all method calls (the permit
// plane's per-shard store lock).
type Log struct {
	dir       string
	f         *os.File
	seq       uint64
	syncEvery int
	unsynced  int
	// size is the log's known-good byte length: the end of the last
	// fully written frame. A failed append rewinds the file here so a
	// partial write can never sit in the middle of later records.
	size int64
	// sealed refuses further appends after a rewind itself failed —
	// the only state in which partial bytes might precede the tail.
	sealed    bool
	recovered RecoveryStats
}

// Open recovers a shard directory and returns the log ready for
// appends, the reconstructed state, and what recovery found. A torn
// tail is truncated in place so the next append lands on a valid
// frame boundary. The directory is created if missing.
func Open(dir string, syncEvery int) (*Log, *State, RecoveryStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, RecoveryStats{}, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	st, stats, validLen, err := replayDir(dir)
	if err != nil {
		return nil, nil, stats, err
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("wal: opening log in %s: %w", dir, err)
	}
	if stats.TornBytes > 0 {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, stats, fmt.Errorf("wal: truncating torn tail in %s: %w", dir, err)
		}
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, stats, fmt.Errorf("wal: seeking log in %s: %w", dir, err)
	}
	// Make the log file's existence itself durable: a power loss right
	// after boot must not forget the directory entry the first synced
	// append will live in.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, nil, stats, err
	}
	l := &Log{dir: dir, f: f, seq: st.Seq, syncEvery: syncEvery, size: validLen, recovered: stats}
	return l, st, stats, nil
}

// syncDir fsyncs a directory, making renames and creates inside it
// durable across power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening %s to sync: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing directory %s: %w", dir, err)
	}
	return nil
}

// Replay reconstructs a shard's state read-only — the chaos harness's
// independent observer. It never writes: a torn tail is skipped, not
// truncated, so replaying a dead daemon's directory is side-effect
// free and two replays of the same bytes always agree.
func Replay(dir string) (*State, RecoveryStats, error) {
	st, stats, _, err := replayDir(dir)
	return st, stats, err
}

// replayDir loads the snapshot and replays the log, returning the
// state, the stats, and the byte length of the log's valid prefix.
func replayDir(dir string) (*State, RecoveryStats, int64, error) {
	var stats RecoveryStats
	st := NewState()
	snapBytes, err := os.ReadFile(filepath.Join(dir, snapName))
	switch {
	case err == nil:
		if err := st.unmarshalSnapshot(snapBytes); err != nil {
			// A corrupt snapshot cannot be partially trusted; fall back
			// to whatever the log alone reconstructs rather than refuse
			// to start.
			st = NewState()
			stats.SnapshotCorrupt = true
		} else {
			stats.SnapshotSeq = st.Seq
			stats.SnapshotGrants = len(st.Grants)
		}
	case os.IsNotExist(err):
	default:
		return nil, stats, 0, fmt.Errorf("wal: reading snapshot in %s: %w", dir, err)
	}

	logBytes, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil && !os.IsNotExist(err) {
		return nil, stats, 0, fmt.Errorf("wal: reading log in %s: %w", dir, err)
	}
	off := 0
	for off < len(logBytes) {
		r, n, err := decodeFrame(logBytes[off:])
		if err != nil {
			stats.TornBytes = int64(len(logBytes) - off)
			break
		}
		if r.Seq <= st.Seq {
			stats.RecordsSkipped++
		} else {
			st.Apply(r)
			stats.RecordsReplayed++
		}
		off += n
	}
	return st, stats, int64(off), nil
}

// Seq reports the last assigned sequence number.
func (l *Log) Seq() uint64 { return l.seq }

// Recovered reports what Open found.
func (l *Log) Recovered() RecoveryStats { return l.recovered }

// Append assigns the next sequence number to a record, writes its
// frame, and returns the stamped record for the caller to apply to its
// state. Records whose device or cell exceeds MaxIDLen are rejected
// with ErrIDTooLong before anything is written — an oversized ID would
// produce a frame replay reads as torn, truncating every record after
// it. A failed write is rewound to the last frame boundary so partial
// bytes never precede later appends; if the rewind itself fails the
// log seals and every Append errors until a snapshot heals it. With
// syncEvery > 0 the file is fsynced every that many appends;
// syncEvery == 0 never fsyncs, which still survives kill -9 (the
// kernel owns written pages) but not power loss.
func (l *Log) Append(op Op, device, cell string, at, expiry int64) (Record, error) {
	if l.sealed {
		return Record{}, fmt.Errorf("wal: appending %s record: %w", op, errSealed)
	}
	if len(device) > MaxIDLen || len(cell) > MaxIDLen {
		return Record{}, fmt.Errorf("wal: appending %s record (device %d bytes, cell %d bytes): %w",
			op, len(device), len(cell), ErrIDTooLong)
	}
	r := Record{Seq: l.seq + 1, Op: op, At: at, Expiry: expiry, Device: device, Cell: cell}
	frame := encode(nil, r)
	if _, err := l.f.Write(frame); err != nil {
		l.rewind()
		return Record{}, fmt.Errorf("wal: appending %s record: %w", op, err)
	}
	l.size += int64(len(frame))
	l.seq = r.Seq
	l.unsynced++
	if l.syncEvery > 0 && l.unsynced >= l.syncEvery {
		if err := l.f.Sync(); err != nil {
			return Record{}, fmt.Errorf("wal: syncing log: %w", err)
		}
		l.unsynced = 0
	}
	return r, nil
}

// rewind discards whatever a failed write left past the last
// known-good frame boundary. The torn-tail machinery only tolerates
// garbage at the very end of the log; without the rewind, the next
// successful append would strand partial bytes mid-file and replay
// would stop there, discarding every record after them. If the rewind
// fails the log seals: refusing appends is strictly better than
// writing records recovery cannot reach.
func (l *Log) rewind() {
	if err := l.f.Truncate(l.size); err != nil {
		l.sealed = true
		return
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		l.sealed = true
	}
}

// SkipTo advances the sequence counter to at least seq without writing
// anything. The grant store calls it after folding a record the log
// could not append (degraded durability): the in-memory state's
// sequence number moved past the log's, and a later snapshot persists
// that higher seq — if subsequent appends reused the lower numbers,
// replay would skip them as already covered by the snapshot and
// durably written records would silently vanish.
func (l *Log) SkipTo(seq uint64) {
	if seq > l.seq {
		l.seq = seq
	}
}

// WriteSnapshot persists st atomically (temp file + rename) and
// truncates the log: every record the snapshot covers is compacted
// away. A crash at any point leaves a recoverable directory — the old
// snapshot until the rename, skipped duplicate records until the
// truncation.
func (l *Log) WriteSnapshot(st *State) error {
	tmp := filepath.Join(l.dir, snapTempName)
	buf := st.marshalSnapshot()
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: closing snapshot temp: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("wal: installing snapshot: %w", err)
	}
	// The rename is atomic but not durable until the directory entry is
	// synced; without this, a power loss after the log truncation below
	// could resurrect the old snapshot with the new (shorter) log and
	// lose every record the new snapshot had compacted away.
	if err := syncDir(l.dir); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncating compacted log: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: rewinding compacted log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing truncated log: %w", err)
	}
	l.size = 0
	l.unsynced = 0
	// The snapshot covers the full state and the log is verifiably
	// empty, so a log sealed by an earlier failed rewind is clean again.
	l.sealed = false
	return nil
}

// Size reports the log file's current byte length (diagnostics).
func (l *Log) Size() (int64, error) {
	fi, err := l.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("wal: stat log: %w", err)
	}
	return fi.Size(), nil
}

// Close syncs and closes the log file. It does not snapshot; callers
// that want a final compaction call WriteSnapshot first.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: syncing log on close: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing log: %w", err)
	}
	return nil
}

// Grant is one outstanding permit in the reconstructed state.
type Grant struct {
	Device string
	Cell   string
	At     int64
	Expiry int64
	Seq    uint64
}

// Key is the grant map key: a permit authorises one device to onload
// via one cell, so state is keyed by the (device, cell) pair. Keying by
// device alone would make shard-merged totals depend on the shard
// count (shards own cells, so one device's grants in two cells live in
// two shards) and break the byte-identical merge guarantee.
func Key(device, cell string) string {
	return device + "\x00" + cell
}

// State is the replayable shard state: outstanding grants keyed by
// (device, cell), the last applied sequence number, and cumulative
// lifecycle counters. Apply is a pure fold over records, so any two
// observers that saw the same records hold byte-identical state.
type State struct {
	Grants map[string]Grant
	Seq    uint64
	// TotalGrants, TotalRefreshes, TotalRevokes and TotalExpiries
	// count lifecycle transitions since the log began (snapshots carry
	// them forward through compaction).
	TotalGrants, TotalRefreshes, TotalRevokes, TotalExpiries uint64
}

// NewState returns an empty state.
func NewState() *State {
	return &State{Grants: make(map[string]Grant)}
}

// Apply folds one record into the state.
func (st *State) Apply(r Record) {
	k := Key(r.Device, r.Cell)
	switch r.Op {
	case OpGrant:
		st.TotalGrants++
		st.Grants[k] = Grant{Device: r.Device, Cell: r.Cell, At: r.At, Expiry: r.Expiry, Seq: r.Seq}
	case OpRefresh:
		st.TotalRefreshes++
		st.Grants[k] = Grant{Device: r.Device, Cell: r.Cell, At: r.At, Expiry: r.Expiry, Seq: r.Seq}
	case OpRevoke:
		st.TotalRevokes++
		delete(st.Grants, k)
	case OpExpire:
		st.TotalExpiries++
		delete(st.Grants, k)
	}
	st.Seq = r.Seq
}

// ExpireDue removes every grant whose expiry is at or before now,
// returning them sorted by (expiry, device, cell) so callers that log
// the expiries produce a deterministic record order.
func (st *State) ExpireDue(now int64) []Grant {
	var due []Grant
	for _, g := range st.Grants {
		if g.Expiry <= now {
			due = append(due, g)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].Expiry != due[j].Expiry {
			return due[i].Expiry < due[j].Expiry
		}
		if due[i].Device != due[j].Device {
			return due[i].Device < due[j].Device
		}
		return due[i].Cell < due[j].Cell
	})
	for _, g := range due {
		delete(st.Grants, Key(g.Device, g.Cell))
	}
	return due
}

// Marshal renders the state canonically: a header line followed by one
// line per outstanding grant in (device, cell) order. Two states with
// the same grants, seq and counters marshal to identical bytes — the
// "byte-identical replay" pin the recovery tests and the chaos
// harness's cross-process hash comparison both rest on.
func (st *State) Marshal() []byte {
	devices := make([]string, 0, len(st.Grants))
	for d := range st.Grants {
		devices = append(devices, d)
	}
	sort.Strings(devices)
	buf := fmt.Appendf(nil, "seq=%d grants=%d total=%d/%d/%d/%d\n",
		st.Seq, len(st.Grants),
		st.TotalGrants, st.TotalRefreshes, st.TotalRevokes, st.TotalExpiries)
	for _, d := range devices {
		g := st.Grants[d]
		buf = fmt.Appendf(buf, "%s %s %d %d %d\n", g.Device, g.Cell, g.At, g.Expiry, g.Seq)
	}
	return buf
}

// Snapshot payload: u32 length + u32 CRC frame (same as records)
// around: seq, four counters, grant count, then each grant in device
// order.
func (st *State) marshalSnapshot() []byte {
	devices := make([]string, 0, len(st.Grants))
	for d := range st.Grants {
		devices = append(devices, d)
	}
	sort.Strings(devices)
	payload := make([]byte, 0, 44+len(devices)*48)
	payload = binary.LittleEndian.AppendUint64(payload, st.Seq)
	payload = binary.LittleEndian.AppendUint64(payload, st.TotalGrants)
	payload = binary.LittleEndian.AppendUint64(payload, st.TotalRefreshes)
	payload = binary.LittleEndian.AppendUint64(payload, st.TotalRevokes)
	payload = binary.LittleEndian.AppendUint64(payload, st.TotalExpiries)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(devices)))
	for _, d := range devices {
		g := st.Grants[d]
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(g.Device)))
		payload = append(payload, g.Device...)
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(g.Cell)))
		payload = append(payload, g.Cell...)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(g.At))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(g.Expiry))
		payload = binary.LittleEndian.AppendUint64(payload, g.Seq)
	}
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// errSnapshot reports an unreadable snapshot file.
var errSnapshot = errors.New("wal: corrupt snapshot")

func (st *State) unmarshalSnapshot(b []byte) error {
	if len(b) < frameHeader {
		return errSnapshot
	}
	plen := int(binary.LittleEndian.Uint32(b))
	sum := binary.LittleEndian.Uint32(b[4:])
	if plen < 44 || len(b) != frameHeader+plen {
		return errSnapshot
	}
	payload := b[frameHeader:]
	if crc32.ChecksumIEEE(payload) != sum {
		return errSnapshot
	}
	st.Seq = binary.LittleEndian.Uint64(payload)
	st.TotalGrants = binary.LittleEndian.Uint64(payload[8:])
	st.TotalRefreshes = binary.LittleEndian.Uint64(payload[16:])
	st.TotalRevokes = binary.LittleEndian.Uint64(payload[24:])
	st.TotalExpiries = binary.LittleEndian.Uint64(payload[32:])
	n := int(binary.LittleEndian.Uint32(payload[40:]))
	off := 44
	for i := 0; i < n; i++ {
		var g Grant
		if off+2 > len(payload) {
			return errSnapshot
		}
		dlen := int(binary.LittleEndian.Uint16(payload[off:]))
		off += 2
		if off+dlen+2 > len(payload) {
			return errSnapshot
		}
		g.Device = string(payload[off : off+dlen])
		off += dlen
		clen := int(binary.LittleEndian.Uint16(payload[off:]))
		off += 2
		if off+clen+24 > len(payload) {
			return errSnapshot
		}
		g.Cell = string(payload[off : off+clen])
		off += clen
		g.At = int64(binary.LittleEndian.Uint64(payload[off:]))
		g.Expiry = int64(binary.LittleEndian.Uint64(payload[off+8:]))
		g.Seq = binary.LittleEndian.Uint64(payload[off+16:])
		off += 24
		st.Grants[Key(g.Device, g.Cell)] = g
	}
	if off != len(payload) {
		return errSnapshot
	}
	return nil
}
