package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testRecords is a mixed lifecycle: grants, refreshes, a revoke, an
// expiry, and a re-grant of an expired device.
func testRecords() []Record {
	return []Record{
		{Op: OpGrant, At: 100, Expiry: 1100, Device: "d1", Cell: "bs0/s0"},
		{Op: OpGrant, At: 110, Expiry: 1110, Device: "d2", Cell: "bs0/s1"},
		{Op: OpGrant, At: 120, Expiry: 1120, Device: "d3", Cell: "bs1/s0"},
		{Op: OpRefresh, At: 600, Expiry: 1600, Device: "d1", Cell: "bs0/s0"},
		{Op: OpRevoke, At: 700, Device: "d2", Cell: "bs0/s1"},
		{Op: OpExpire, At: 1120, Device: "d3", Cell: "bs1/s0"},
		{Op: OpGrant, At: 1200, Expiry: 2200, Device: "d3", Cell: "bs1/s0"},
	}
}

// appendAll writes recs through a fresh log in dir and returns the
// stamped records.
func appendAll(t *testing.T, dir string, recs []Record) []Record {
	t.Helper()
	l, _, _, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	out := make([]Record, len(recs))
	for i, r := range recs {
		stamped, err := l.Append(r.Op, r.Device, r.Cell, r.At, r.Expiry)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = stamped
	}
	return out
}

func TestRoundTripThroughReopen(t *testing.T) {
	dir := t.TempDir()
	stamped := appendAll(t, dir, testRecords())

	want := NewState()
	for _, r := range stamped {
		want.Apply(r)
	}

	l, st, stats, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if stats.RecordsReplayed != int64(len(stamped)) {
		t.Errorf("replayed %d records, want %d", stats.RecordsReplayed, len(stamped))
	}
	if !bytes.Equal(st.Marshal(), want.Marshal()) {
		t.Errorf("reopened state diverged:\ngot:\n%s\nwant:\n%s", st.Marshal(), want.Marshal())
	}
	if l.Seq() != stamped[len(stamped)-1].Seq {
		t.Errorf("Seq() = %d, want %d", l.Seq(), stamped[len(stamped)-1].Seq)
	}
}

// TestKillAtEveryByteBoundary is the torn-tail pin: cutting the log at
// any byte must reconstruct exactly the state of the longest valid
// record prefix — never an error, never a partial record applied.
func TestKillAtEveryByteBoundary(t *testing.T) {
	full := t.TempDir()
	stamped := appendAll(t, full, testRecords())
	logBytes, err := os.ReadFile(filepath.Join(full, logName))
	if err != nil {
		t.Fatal(err)
	}

	// Valid prefix states: prefixState[k] is the state after the first
	// k whole records.
	prefixState := make([][]byte, len(stamped)+1)
	st := NewState()
	prefixState[0] = st.Marshal()
	frameEnd := make([]int, len(stamped)+1)
	off := 0
	for k, r := range stamped {
		st.Apply(r)
		prefixState[k+1] = st.Marshal()
		_, n, err := decodeFrame(logBytes[off:])
		if err != nil {
			t.Fatalf("frame %d undecodable in full log: %v", k, err)
		}
		off += n
		frameEnd[k+1] = off
	}
	if off != len(logBytes) {
		t.Fatalf("frames cover %d of %d log bytes", off, len(logBytes))
	}

	for cut := 0; cut <= len(logBytes); cut++ {
		// The kill point falls inside record k+1 (or exactly after
		// record k): the longest valid prefix is the last frameEnd at
		// or before cut.
		whole := 0
		for k := 1; k <= len(stamped); k++ {
			if frameEnd[k] <= cut {
				whole = k
			}
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), logBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		// Read-only replay and read-write open must agree.
		replayed, rstats, err := Replay(dir)
		if err != nil {
			t.Fatalf("cut %d: Replay: %v", cut, err)
		}
		if !bytes.Equal(replayed.Marshal(), prefixState[whole]) {
			t.Fatalf("cut %d: Replay state != %d-record prefix state", cut, whole)
		}
		wantTorn := int64(cut - frameEnd[whole])
		if rstats.TornBytes != wantTorn {
			t.Fatalf("cut %d: Replay torn bytes %d, want %d", cut, rstats.TornBytes, wantTorn)
		}

		l, opened, ostats, err := Open(dir, 0)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if !bytes.Equal(opened.Marshal(), prefixState[whole]) {
			t.Fatalf("cut %d: Open state != %d-record prefix state", cut, whole)
		}
		if ostats.TornBytes != wantTorn {
			t.Fatalf("cut %d: Open torn bytes %d, want %d", cut, ostats.TornBytes, wantTorn)
		}

		// Appending after a truncation must land on a clean boundary: a
		// second replay sees the new record, not a corrupt splice.
		if _, err := l.Append(OpGrant, "fresh", "bs9/s9", 5000, 6000); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		again, astats, err := Replay(dir)
		if err != nil {
			t.Fatalf("cut %d: replay after append: %v", cut, err)
		}
		if astats.TornBytes != 0 {
			t.Fatalf("cut %d: %d torn bytes after truncate+append", cut, astats.TornBytes)
		}
		if _, ok := again.Grants[Key("fresh", "bs9/s9")]; !ok {
			t.Fatalf("cut %d: post-truncation append lost", cut)
		}
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, st, _, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords() {
		stamped, err := l.Append(r.Op, r.Device, r.Cell, r.At, r.Expiry)
		if err != nil {
			t.Fatal(err)
		}
		st.Apply(stamped)
	}
	if err := l.WriteSnapshot(st); err != nil {
		t.Fatal(err)
	}
	if size, err := l.Size(); err != nil || size != 0 {
		t.Fatalf("log size after compaction = %d (%v), want 0", size, err)
	}
	// Post-compaction appends land in the fresh log.
	stamped, err := l.Append(OpGrant, "d9", "bs2/s0", 2000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	st.Apply(stamped)
	want := st.Marshal()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, reopened, stats, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotSeq == 0 || stats.SnapshotGrants != 2 {
		t.Errorf("snapshot stats %+v, want seq>0 and 2 grants", stats)
	}
	if stats.RecordsReplayed != 1 {
		t.Errorf("replayed %d records after compaction, want 1", stats.RecordsReplayed)
	}
	if !bytes.Equal(reopened.Marshal(), want) {
		t.Errorf("state after snapshot+append reopen diverged:\ngot:\n%s\nwant:\n%s", reopened.Marshal(), want)
	}
}

// TestCrashBetweenSnapshotAndTruncate pins the seq guard: when the
// snapshot renamed but the log survived un-truncated, replay must skip
// the covered records instead of double-applying them.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, st, _, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords() {
		stamped, err := l.Append(r.Op, r.Device, r.Cell, r.At, r.Expiry)
		if err != nil {
			t.Fatal(err)
		}
		st.Apply(stamped)
	}
	// Simulate the crash: write the snapshot by hand, leave the log.
	if err := os.WriteFile(filepath.Join(dir, snapName), st.marshalSnapshot(), 0o644); err != nil {
		t.Fatal(err)
	}
	want := st.Marshal()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, reopened, stats, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecordsSkipped != int64(len(testRecords())) {
		t.Errorf("skipped %d records, want all %d (covered by snapshot)", stats.RecordsSkipped, len(testRecords()))
	}
	if stats.RecordsReplayed != 0 {
		t.Errorf("replayed %d covered records — the seq guard failed", stats.RecordsReplayed)
	}
	if !bytes.Equal(reopened.Marshal(), want) {
		t.Errorf("state double-applied covered records:\ngot:\n%s\nwant:\n%s", reopened.Marshal(), want)
	}
}

func TestCorruptSnapshotFallsBackToLog(t *testing.T) {
	dir := t.TempDir()
	stamped := appendAll(t, dir, testRecords())
	if err := os.WriteFile(filepath.Join(dir, snapName), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	want := NewState()
	for _, r := range stamped {
		want.Apply(r)
	}
	l, st, stats, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("corrupt snapshot must not refuse startup: %v", err)
	}
	defer l.Close()
	if !stats.SnapshotCorrupt {
		t.Error("SnapshotCorrupt not reported")
	}
	if !bytes.Equal(st.Marshal(), want.Marshal()) {
		t.Errorf("fallback state diverged from pure log replay")
	}
}

func TestExpireDueDeterministicOrder(t *testing.T) {
	st := NewState()
	seq := uint64(0)
	add := func(dev string, expiry int64) {
		seq++
		st.Apply(Record{Seq: seq, Op: OpGrant, At: 0, Expiry: expiry, Device: dev, Cell: "c"})
	}
	// Two grants share an expiry: ties must break by device name.
	add("zeta", 100)
	add("alpha", 100)
	add("mid", 50)
	add("later", 200)

	due := st.ExpireDue(100)
	wantOrder := []string{"mid", "alpha", "zeta"}
	if len(due) != len(wantOrder) {
		t.Fatalf("%d grants expired, want %d", len(due), len(wantOrder))
	}
	for i, g := range due {
		if g.Device != wantOrder[i] {
			t.Errorf("expiry %d = %s, want %s", i, g.Device, wantOrder[i])
		}
	}
	if len(st.Grants) != 1 || st.Grants[Key("later", "c")].Device != "later" {
		t.Errorf("surviving grants %v, want only later", st.Grants)
	}
	if st.ExpireDue(100) != nil {
		t.Error("second ExpireDue at the same instant expired something")
	}
}

// TestAppendRejectsOversizedID pins the ID bound: an identifier too
// long for the frame's uint16 length fields must be rejected before
// anything hits the disk — written, it would decode as a torn tail and
// truncate every record appended after it.
func TestAppendRejectsOversizedID(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(OpGrant, "d1", "bs0/s0", 100, 1100); err != nil {
		t.Fatal(err)
	}

	huge := strings.Repeat("x", MaxIDLen+1)
	if _, err := l.Append(OpGrant, huge, "bs0/s0", 200, 1200); !errors.Is(err, ErrIDTooLong) {
		t.Fatalf("oversized device: err = %v, want ErrIDTooLong", err)
	}
	if _, err := l.Append(OpGrant, "d2", huge, 200, 1200); !errors.Is(err, ErrIDTooLong) {
		t.Fatalf("oversized cell: err = %v, want ErrIDTooLong", err)
	}
	// The rejections wrote nothing: later appends and replay are intact.
	if _, err := l.Append(OpGrant, "d2", "bs0/s1", 300, 1300); err != nil {
		t.Fatal(err)
	}
	st, stats, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornBytes != 0 {
		t.Errorf("%d torn bytes after rejected appends, want 0", stats.TornBytes)
	}
	if len(st.Grants) != 2 || st.Seq != 2 {
		t.Errorf("replayed %d grants seq %d, want 2 grants seq 2", len(st.Grants), st.Seq)
	}
	// An ID at exactly the bound is fine and well under maxPayload.
	max := strings.Repeat("y", MaxIDLen)
	if _, err := l.Append(OpGrant, max, max, 400, 1400); err != nil {
		t.Errorf("MaxIDLen-sized IDs rejected: %v", err)
	}
}

// TestSkipToKeepsReplayAligned pins the degraded-fold sequence
// contract: when the store folds a record the log could not append, a
// snapshot persists the synthesised (higher) seq — later successful
// appends must number above it, or replay skips them as covered.
func TestSkipToKeepsReplayAligned(t *testing.T) {
	dir := t.TempDir()
	l, st, _, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	stamped, err := l.Append(OpGrant, "d1", "bs0/s0", 100, 1100)
	if err != nil {
		t.Fatal(err)
	}
	st.Apply(stamped)

	// A degraded fold: the record never reached the log, but the state
	// consumed seq 2 — and SkipTo tells the log so.
	st.Apply(Record{Seq: st.Seq + 1, Op: OpGrant, At: 200, Expiry: 1200, Device: "d2", Cell: "bs0/s1"})
	l.SkipTo(st.Seq)
	if err := l.WriteSnapshot(st); err != nil {
		t.Fatal(err)
	}

	// The next durable record must not sort at or below the snapshot's
	// seq 2.
	after, err := l.Append(OpGrant, "d3", "bs0/s2", 300, 1300)
	if err != nil {
		t.Fatal(err)
	}
	if after.Seq != 3 {
		t.Fatalf("post-degradation append got seq %d, want 3 (> snapshot seq 2)", after.Seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	replayed, stats, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecordsSkipped != 0 || stats.RecordsReplayed != 1 {
		t.Errorf("replay skipped %d / applied %d records, want 0 skipped, 1 applied", stats.RecordsSkipped, stats.RecordsReplayed)
	}
	if _, ok := replayed.Grants[Key("d3", "bs0/s2")]; !ok {
		t.Error("durably written post-degradation record vanished on replay")
	}
}

// TestRewindRepairsPartialWrite pins the failed-append repair: partial
// frame bytes a failed write left behind are truncated back to the
// last frame boundary, so later appends land contiguously and replay
// loses nothing.
func TestRewindRepairsPartialWrite(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(OpGrant, "d1", "bs0/s0", 100, 1100); err != nil {
		t.Fatal(err)
	}
	// Simulate a write that failed partway through a frame (the exact
	// on-disk state Append's error path sees), then the repair.
	if _, err := l.f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	l.rewind()
	if l.sealed {
		t.Fatal("rewind sealed a repairable log")
	}
	if _, err := l.Append(OpGrant, "d2", "bs0/s1", 200, 1200); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, stats, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornBytes != 0 {
		t.Errorf("%d torn bytes after rewind, want 0 — partial write left mid-log garbage", stats.TornBytes)
	}
	if len(st.Grants) != 2 {
		t.Errorf("replayed %d grants, want 2 — records after the partial write were lost", len(st.Grants))
	}
}

// TestSealedLogRefusesAppendsUntilSnapshot pins the last-resort path:
// when even the rewind fails, the log seals (no append may land after
// unrepaired partial bytes) and a successful snapshot — which empties
// the log — heals it.
func TestSealedLogRefusesAppendsUntilSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, st, _, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	stamped, err := l.Append(OpGrant, "d1", "bs0/s0", 100, 1100)
	if err != nil {
		t.Fatal(err)
	}
	st.Apply(stamped)

	// Swap in a read-only descriptor: the write fails, and so does the
	// repair truncate — the log must seal.
	good := l.f
	ro, err := os.Open(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	l.f = ro
	if _, err := l.Append(OpGrant, "d2", "bs0/s1", 200, 1200); err == nil {
		t.Fatal("append on read-only log succeeded")
	}
	if !l.sealed {
		t.Fatal("unrepairable write failure did not seal the log")
	}
	if _, err := l.Append(OpGrant, "d3", "bs0/s2", 300, 1300); !errors.Is(err, errSealed) {
		t.Fatalf("sealed log append err = %v, want errSealed", err)
	}

	// The descriptor recovers; a snapshot covers the full state and
	// verifiably empties the log, so appends may resume.
	l.f = good
	if err := l.WriteSnapshot(st); err != nil {
		t.Fatal(err)
	}
	if l.sealed {
		t.Fatal("successful snapshot left the log sealed")
	}
	if _, err := l.Append(OpGrant, "d4", "bs0/s3", 400, 1400); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	replayed, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed.Grants) != 2 {
		t.Errorf("replayed %d grants, want 2 (d1 from snapshot, d4 from log)", len(replayed.Grants))
	}
}

func TestStateMarshalIsCanonical(t *testing.T) {
	// Same records applied in two different interleavings with other
	// devices' records must marshal identically for identical content.
	a := NewState()
	b := NewState()
	recs := []Record{
		{Seq: 1, Op: OpGrant, At: 10, Expiry: 100, Device: "b", Cell: "c1"},
		{Seq: 2, Op: OpGrant, At: 20, Expiry: 200, Device: "a", Cell: "c2"},
	}
	for _, r := range recs {
		a.Apply(r)
	}
	for _, r := range recs {
		b.Apply(r)
	}
	if !bytes.Equal(a.Marshal(), b.Marshal()) {
		t.Error("identical fold produced different marshals")
	}
	if !bytes.HasPrefix(a.Marshal(), []byte("seq=2 grants=2")) {
		t.Errorf("unexpected marshal header: %q", a.Marshal()[:20])
	}
}
