package permitplane

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"threegol/internal/clock"
	"threegol/internal/obs"
	"threegol/internal/obs/eventlog"
	"threegol/internal/permit"
	"threegol/internal/permitplane/wal"
)

// MaxBatch bounds the number of permit requests one batch RPC may
// carry; larger batches are rejected with 413 so a single request can
// never pin a router goroutine on an unbounded decode.
const MaxBatch = 16384

// PermitRequest is one device's grant/refresh request inside a batch.
type PermitRequest struct {
	Device string `json:"device"`
	Cell   string `json:"cell"`
}

// BatchRequest is the body of POST /permits/batch.
type BatchRequest struct {
	Requests []PermitRequest `json:"requests"`
}

// BatchResponse is the reply: one decision per request, same order.
type BatchResponse struct {
	Decisions []permit.Response `json:"decisions"`
}

// Config assembles a sharded permit plane.
type Config struct {
	// Shards is the number of independent shards; <= 0 selects 1.
	Shards int
	// Threshold and TTL configure every shard's permit.Backend.
	Threshold float64
	TTL       time.Duration
	// Utilization is the shared monitoring hook (UtilTable.Get,
	// CellLoop.Utilization, or an operator's own). Required; must be
	// safe for concurrent use.
	Utilization func(cellID string) float64
	// OnGrant, when non-nil, fires after every granted decision — the
	// admission loop's feedback hook (CellLoop.OnGrant). Must be safe
	// for concurrent use.
	OnGrant func(cellID string)
	// Clock times decisions; nil selects the system clock.
	Clock clock.Clock
	// Events, when non-nil, is the shared flight recorder: every
	// decision point carries a "shard" attribute, and the router adds a
	// permitplane.batch point per batch RPC, so 3goltrace can follow
	// any decision to the shard that made it.
	Events *eventlog.Log
	// Tracer, when non-nil, times every shard's decisions into one
	// shared span ring. Register it on a process-level registry, not a
	// shard registry — span durations are wall-clock and would break
	// the byte-identical merge guarantee if they lived shard-side.
	Tracer *obs.Tracer
	// WALDir, used by NewDurable, is the root directory for per-shard
	// write-ahead logs (ShardWALDir names each shard's subdirectory).
	// New ignores it: memory-only planes track grants but persist
	// nothing.
	WALDir string
	// SnapshotEvery is how many WAL records a shard accumulates before
	// compacting into a snapshot; <= 0 selects DefaultSnapshotEvery.
	SnapshotEvery int
}

// shard is one slice of the cell ID space: its own permit.Backend with
// lock-free counters, its own obs registry, and its own grant store (so
// durability, like decision-making, shards without cross-shard locks).
type shard struct {
	index    int
	reg      *obs.Registry
	backend  *permit.Backend
	pmetrics *Metrics
	store    *GrantStore
}

// Sharded is the cell-sharded permit plane: N shards behind a router.
// It is an http.Handler serving GET /permit (routed by cell) and POST
// /permits/batch (split by shard, fanned out, reassembled in order).
type Sharded struct {
	cfg     Config
	shards  []*shard
	router  *obs.Registry
	metrics *Metrics
	events  *eventlog.Log
	clk     clock.Clock
}

// New builds a sharded plane from cfg.
func New(cfg Config) *Sharded {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	s := &Sharded{
		cfg:    cfg,
		router: obs.NewRegistry(),
		events: cfg.Events,
		clk:    clock.Or(cfg.Clock),
	}
	s.metrics = NewMetrics(s.router)
	for i := 0; i < cfg.Shards; i++ {
		reg := obs.NewRegistry()
		pm := NewMetrics(reg)
		s.shards = append(s.shards, &shard{
			index:    i,
			reg:      reg,
			pmetrics: pm,
			store:    NewGrantStore(cfg.Clock, pm),
			backend: &permit.Backend{
				Utilization: cfg.Utilization,
				Threshold:   cfg.Threshold,
				TTL:         cfg.TTL,
				Metrics:     permit.NewMetrics(reg),
				Events:      cfg.Events,
				Tracer:      cfg.Tracer,
				Clock:       cfg.Clock,
				OnGrant:     cfg.OnGrant,
				Tags:        []string{"shard", strconv.Itoa(i)},
			},
		})
	}
	return s
}

// NewDurable builds a sharded plane whose grant state survives the
// process: each shard recovers from (and appends to) its own WAL under
// cfg.WALDir. A shard that fails to recover fails the whole plane —
// better to crash loudly at boot than to serve with silently forgotten
// grants.
//
//3golvet:allow ctxprop — boot-time recovery: runs before any request exists to carry a context
func NewDurable(cfg Config) (*Sharded, error) {
	if cfg.WALDir == "" {
		return nil, fmt.Errorf("permitplane: NewDurable requires Config.WALDir")
	}
	s := New(cfg)
	for i, sh := range s.shards {
		st, err := OpenGrantStore(ShardWALDir(cfg.WALDir, i), cfg.Clock, sh.pmetrics, cfg.SnapshotEvery)
		if err != nil {
			_ = s.Close() // shards opened so far flush and release their logs
			return nil, fmt.Errorf("permitplane: recovering shard %d: %w", i, err)
		}
		sh.store = st
	}
	return s, nil
}

// Shards reports the configured shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Durable reports whether the plane persists grants to a WAL.
func (s *Sharded) Durable() bool { return s.shards[0].store.Durable() }

// shardFor routes a cell to its owning shard.
func (s *Sharded) shardFor(cellID string) *shard {
	return s.shards[ShardOf(cellID, len(s.shards))]
}

// ServeHTTP implements http.Handler: GET /permit and POST
// /permits/batch.
func (s *Sharded) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/permit":
		s.metrics.routed()
		cell := r.URL.Query().Get("cell")
		device := r.URL.Query().Get("device")
		if len(cell) > wal.MaxIDLen || len(device) > wal.MaxIDLen {
			// An oversized ID cannot be framed in the WAL; reject it at
			// the edge instead of granting an untrackable permit.
			http.Error(w, fmt.Sprintf("device or cell ID exceeds %d bytes", wal.MaxIDLen),
				http.StatusBadRequest)
			return
		}
		sh := s.shardFor(cell) // an empty cell routes to shard 0
		if cell == "" || s.cfg.Utilization == nil {
			// The shard's own Backend writes the canonical error reply.
			sh.backend.ServeHTTP(w, r)
			return
		}
		ctx := r.Context()
		if tc, ok := eventlog.ExtractHTTP(r.Header); ok {
			ctx = eventlog.NewContext(ctx, tc)
		}
		resp := s.decideOn(sh, ctx, device, cell)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp) // client disconnect; nothing to do
	case "/permits/batch":
		s.serveBatch(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveBatch decodes a batch, fans the requests out to their owning
// shards in parallel, and writes the decisions back in request order.
func (s *Sharded) serveBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		s.metrics.batchServed(false, 0)
		http.Error(w, fmt.Sprintf("malformed batch: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Requests) == 0 {
		s.metrics.batchServed(false, 0)
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Requests) > MaxBatch {
		s.metrics.batchServed(false, 0)
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Requests), MaxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}
	for i, pr := range req.Requests {
		if pr.Cell == "" {
			s.metrics.batchServed(false, 0)
			http.Error(w, fmt.Sprintf("request %d: missing cell", i), http.StatusBadRequest)
			return
		}
		if len(pr.Device) > wal.MaxIDLen || len(pr.Cell) > wal.MaxIDLen {
			s.metrics.batchServed(false, 0)
			http.Error(w, fmt.Sprintf("request %d: device or cell ID exceeds %d bytes", i, wal.MaxIDLen),
				http.StatusBadRequest)
			return
		}
	}

	ctx := r.Context()
	tc, traced := eventlog.ExtractHTTP(r.Header)
	if traced {
		ctx = eventlog.NewContext(ctx, tc)
	}

	// Group request indices by owning shard, then decide each shard's
	// slice on its own goroutine. Indices are disjoint, so the shared
	// decisions slice needs no lock.
	byShard := make([][]int, len(s.shards))
	for i, pr := range req.Requests {
		idx := ShardOf(pr.Cell, len(s.shards))
		byShard[idx] = append(byShard[idx], i)
	}
	decisions := make([]permit.Response, len(req.Requests))
	var wg sync.WaitGroup
	for si, indices := range byShard {
		if len(indices) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shard, indices []int) {
			defer wg.Done()
			for _, i := range indices {
				decisions[i] = s.decideOn(sh, ctx, req.Requests[i].Device, req.Requests[i].Cell)
			}
		}(s.shards[si], indices)
	}
	wg.Wait()

	s.metrics.batchServed(true, len(req.Requests))
	s.events.Point(tc, "permitplane.batch",
		"size", strconv.Itoa(len(req.Requests)),
		"shards", strconv.Itoa(len(s.shards)))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(BatchResponse{Decisions: decisions}) // client disconnect; nothing to do
}

// Stats sums grant/denial counts across shards.
func (s *Sharded) Stats() (grants, denials int64) {
	for _, sh := range s.shards {
		g, d := sh.backend.Stats()
		grants += g
		denials += d
	}
	return grants, denials
}

// ShardStatus is one shard's /debug/shards entry. The WAL fields are
// zero-valued on memory-only planes; Recovery appears only on durable
// shards (nil otherwise, omitted from the JSON).
type ShardStatus struct {
	Shard   int   `json:"shard"`
	Grants  int64 `json:"grants"`
	Denials int64 `json:"denials"`
	// Outstanding is the live (unexpired) grant count.
	Outstanding int `json:"outstanding"`
	// WALSeq is the last applied WAL sequence number.
	WALSeq uint64 `json:"wal_seq"`
	// StateHash is the SHA-256 of the canonical grant-state marshal —
	// what the chaos harness compares against its independent replay.
	StateHash string `json:"state_hash,omitempty"`
	// WALErrors counts failed WAL writes (durability degraded).
	WALErrors int64 `json:"wal_errors,omitempty"`
	// Recovery reports the boot-time replay, when the shard is durable.
	Recovery *Recovery `json:"recovery,omitempty"`
}

// Status reports per-shard decision counts and grant-store state in
// shard order.
//
//3golvet:allow ctxprop — the only I/O is lazy expiry's WAL appends inside the store accessors, which must not be skippable by cancellation
func (s *Sharded) Status() []ShardStatus {
	out := make([]ShardStatus, len(s.shards))
	for i, sh := range s.shards {
		g, d := sh.backend.Stats()
		out[i] = ShardStatus{
			Shard:       i,
			Grants:      g,
			Denials:     d,
			Outstanding: sh.store.Outstanding(),
			WALSeq:      sh.store.Seq(),
			StateHash:   sh.store.StateHash(),
			WALErrors:   sh.store.WALErrors(),
		}
		if sh.store.Durable() {
			rec := sh.store.Recovery()
			out[i].Recovery = &rec
		}
	}
	return out
}

// StatusHandler serves Status as the /debug/shards JSON endpoint.
func (s *Sharded) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Status()) // client disconnect; nothing to do
	})
}

// MergeInto folds the router's and every shard's instruments into dst,
// in shard order. dst must have the permit and permitplane families
// registered (permit.NewMetrics + NewMetrics).
func (s *Sharded) MergeInto(dst *obs.Registry) {
	dst.Merge(s.router)
	for _, sh := range s.shards {
		dst.Merge(sh.reg)
	}
}

// MergedRegistry builds a fresh registry holding the plane's merged
// state. Because shard assignment is a pure function of the cell ID and
// merging runs in shard order over sorted metric names, the snapshot is
// byte-identical for the same request history regardless of how many
// shards served it — the same guarantee the fleet engine gives across
// worker counts.
func (s *Sharded) MergedRegistry() *obs.Registry {
	dst := obs.NewRegistry()
	permit.NewMetrics(dst)
	NewMetrics(dst)
	s.MergeInto(dst)
	return dst
}

// MetricsHandler serves the merged registry as /debug/metrics,
// re-merging on every request so the dump is always current.
func (s *Sharded) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obs.Handler(s.MergedRegistry()).ServeHTTP(w, r)
	})
}

// Decide routes one in-process decision to its owning shard — the
// entry point for embedded planes (tests, the load harness's in-process
// backend, the fleet engine). With no device identity the decision is
// not tracked in the grant store.
func (s *Sharded) Decide(ctx context.Context, cell string) permit.Response {
	return s.decideOn(s.shardFor(cell), ctx, "", cell)
}

// DecideDevice is Decide with a device identity, so embedded durable
// planes track the grant.
func (s *Sharded) DecideDevice(ctx context.Context, device, cell string) permit.Response {
	return s.decideOn(s.shardFor(cell), ctx, device, cell)
}

// decideOn makes the decision on sh's backend and folds it into sh's
// grant store — the single choke point every transport (GET, batch,
// in-process) goes through, so the WAL sees every decision exactly
// once.
func (s *Sharded) decideOn(sh *shard, ctx context.Context, device, cell string) permit.Response {
	resp := sh.backend.Decide(ctx, cell)
	sh.store.RecordDecision(device, cell, resp.Granted, resp.TTLSeconds)
	return resp
}

// SnapshotAll flushes every shard's grant state to disk — the graceful
// drain hook. Memory-only planes no-op.
//
//3golvet:allow ctxprop — shutdown-path flush: runs after request serving stopped, must not be cancellable
func (s *Sharded) SnapshotAll() {
	for _, sh := range s.shards {
		sh.store.Snapshot()
	}
}

// Close flushes a final snapshot on every shard and closes the WALs.
//
//3golvet:allow ctxprop — shutdown-path flush: runs after request serving stopped, must not be cancellable
func (s *Sharded) Close() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.store.Close(); err != nil && first == nil {
			first = fmt.Errorf("permitplane: closing shard %d: %w", sh.index, err)
		}
	}
	return first
}
