// Package permitplane is the production permit control plane of the
// network-integrated deployment (§2.4, §5) — the layer that scales the
// single-process permit backend of internal/permit to fleet-sized
// device populations:
//
//   - Sharding. A Sharded backend runs N independent shards, each
//     owning a deterministic slice of the cell ID space (ShardOf, a
//     stable FNV-1a hash), each with its own permit.Backend, lock-free
//     decision counters and obs registry. A router fronts them,
//     serving the classic GET /permit and the batch POST
//     /permits/batch, and merges per-shard metrics in shard order so
//     the merged dump is byte-identical regardless of shard count.
//   - Batching. BatchClient groups many devices' grant/refresh
//     requests into one POST /permits/batch round trip, falling back
//     to per-permit GETs against backends that predate the endpoint.
//   - Caching. Cache is the device-side permit cache: TTL-jittered
//     proactive refresh (seeded, deterministic jitter — 10k devices
//     sharing a TTL do not synchronise their refreshes), singleflight
//     refresh coalescing, and stale-while-refresh serving, so a
//     refresh never stalls the request path and a backend restart
//     never sees a thundering herd.
//   - The closed admission loop. CellLoop wires internal/cellular into
//     the decision path: utilisation comes from the live cell model,
//     and every granted permit feeds its expected load back into the
//     cell, so the grant ratio falls as cells fill — the paper's
//     network-integrated mode, end-to-end.
//
// cmd/3golpermitd hosts a Sharded plane (-shards N); cmd/3golpermitload
// drives one with ≥100k simulated clients.
package permitplane

import "hash/fnv"

// ShardOf maps a cell ID to its owning shard: a stable FNV-1a hash of
// the cell ID modulo the shard count. Every component — router,
// harness, tests — uses this one function, so a cell's decisions always
// land on the same shard and per-cell state never splits.
func ShardOf(cellID string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(cellID)) // hash.Hash.Write never errors
	return int(h.Sum64() % uint64(shards))
}

// splitmix64 is the SplitMix64 mixing function — the same generator the
// eventlog uses for trace IDs. It turns a counter or hash into a
// well-distributed 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// JitterFrac returns the n-th deterministic uniform draw in [0, 1) of a
// named client's jitter stream. It is stateless — seed, name and draw
// index fully determine the value — which is what lets the load harness
// run 100k clients without 100k RNG states, and lets tests replay the
// exact schedule of any client.
func JitterFrac(seed int64, name string, n uint64) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name)) // hash.Hash.Write never errors
	x := splitmix64(uint64(seed) ^ h.Sum64() ^ splitmix64(n))
	return float64(x>>11) / (1 << 53)
}
