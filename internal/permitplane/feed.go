package permitplane

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// UtilTable is a concurrent cellID → utilisation map, fed from an
// operator's monitoring export ("cellID utilisation" lines). It is the
// default Utilization source of cmd/3golpermitd.
type UtilTable struct {
	mu          sync.RWMutex
	util        map[string]float64
	fallback    float64
	denyUnknown bool
}

// NewUtilTable returns an empty table. fallback is the utilisation
// assumed for cells absent from the feed; denyUnknown overrides it to
// fail closed — unknown cells report utilisation 1.0, above every
// acceptance threshold, so a silent feed gap can never turn into an
// open-ended grant-everything policy.
func NewUtilTable(fallback float64, denyUnknown bool) *UtilTable {
	return &UtilTable{util: make(map[string]float64), fallback: fallback, denyUnknown: denyUnknown}
}

// Get reports the cell's utilisation — the Backend.Utilization hook.
func (t *UtilTable) Get(cellID string) float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if u, ok := t.util[cellID]; ok {
		return u
	}
	if t.denyUnknown {
		return 1.0
	}
	return t.fallback
}

// Set records one cell's utilisation.
func (t *UtilTable) Set(cellID string, u float64) {
	t.mu.Lock()
	t.util[cellID] = u
	t.mu.Unlock()
}

// Len reports how many cells have feed data.
func (t *UtilTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.util)
}

// ReadFeed consumes "cellID utilisation" lines from r into t until EOF
// or a read error. Malformed lines are counted and reported through
// logf (nil discards); a read failure is returned — unlike the old
// silent stdin loop, the caller can tell a finished feed from a broken
// one, so updates never just stop without a trace in the log.
func ReadFeed(r io.Reader, t *UtilTable, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sc := bufio.NewScanner(r)
	malformed := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		u, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if len(fields) != 2 || err != nil || u < 0 {
			malformed++
			if malformed <= 10 {
				logf("permitplane: malformed feed line %q", sc.Text())
			}
			continue
		}
		t.Set(fields[0], u)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("permitplane: utilisation feed read failed: %w", err)
	}
	if malformed > 0 {
		logf("permitplane: feed ended (%d malformed lines skipped)", malformed)
	}
	return nil
}
