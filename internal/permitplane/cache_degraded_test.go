package permitplane

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"threegol/internal/permit"
	"threegol/internal/scheduler"
)

// flakyBackend is a Fetch double with a reachability switch.
type flakyBackend struct {
	calls   atomic.Int64
	healthy atomic.Bool
	ttl     time.Duration
}

func (b *flakyBackend) fetch(ctx context.Context, device, cell string) (permit.Response, error) {
	b.calls.Add(1)
	if !b.healthy.Load() {
		return permit.Response{}, errors.New("connection refused")
	}
	return permit.Response{Granted: true, TTLSeconds: b.ttl.Seconds()}, nil
}

// tripBreaker drives consecutive refresh failures until the cache goes
// degraded, advancing the clock past each error cooldown.
func tripBreaker(t *testing.T, c *Cache, clk *fakeClock) {
	t.Helper()
	for i := 0; i < DefaultBreakerThreshold; i++ {
		if c.Allowed(context.Background()) && !c.FailOpen {
			t.Fatal("fail-closed cache granted during blackout")
		}
		if c.Mode() == "degraded" {
			return
		}
		clk.advance(errorCooldown + time.Second)
	}
	if c.Mode() != "degraded" {
		t.Fatalf("cache still %s after %d consecutive failures", c.Mode(), DefaultBreakerThreshold)
	}
}

// TestCacheDegradedFailClosed pins the breaker lifecycle: consecutive
// failures open it, an open breaker serves locally without backend
// round trips, failed probes escalate the cooldown, and a successful
// probe re-closes it.
func TestCacheDegradedFailClosed(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000, 0)}
	b := &flakyBackend{ttl: time.Minute}
	c := &Cache{Fetch: b.fetch, Device: "d0", Cell: "bs0/s0", Clock: clk}
	tripBreaker(t, c, clk)
	tripCalls := b.calls.Load()

	// Breaker open, cooldown pending: verdicts are local.
	clk.advance(time.Second) // still inside DefaultBreakerCooldown (2s)
	for i := 0; i < 5; i++ {
		if c.Allowed(context.Background()) {
			t.Fatal("fail-closed degraded cache granted")
		}
	}
	if got := b.calls.Load(); got != tripCalls {
		t.Errorf("degraded cache issued %d backend round trips", got-tripCalls)
	}

	// Cooldown elapsed: exactly one call probes, fails, and doubles the
	// hold.
	clk.advance(2 * time.Second)
	c.Allowed(context.Background())
	if got := b.calls.Load(); got != tripCalls+1 {
		t.Fatalf("half-open window issued %d probes, want 1", got-tripCalls)
	}
	clk.advance(time.Second) // doubled cooldown (4s) still pending
	c.Allowed(context.Background())
	if got := b.calls.Load(); got != tripCalls+1 {
		t.Errorf("probe inside doubled cooldown: %d extra calls", got-tripCalls-1)
	}

	// Backend recovers: the next probe closes the breaker and grants.
	b.healthy.Store(true)
	clk.advance(4 * time.Second)
	if !c.Allowed(context.Background()) {
		t.Error("recovered backend probe did not grant")
	}
	if c.Mode() != "normal" {
		t.Errorf("mode %q after successful probe, want normal", c.Mode())
	}
}

// TestCacheFailOpenGraceBoundary is the deterministic grace-window pin:
// a fail-open degraded cache honours the last granted permit one second
// before the grace boundary and rejects it one second after — under an
// injected clock, so the edge is exact, not racy.
func TestCacheFailOpenGraceBoundary(t *testing.T) {
	const (
		ttl   = 10 * time.Second
		grace = 30 * time.Second
	)
	clk := &fakeClock{t: time.Unix(1_000, 0)}
	b := &flakyBackend{ttl: ttl}
	b.healthy.Store(true)
	c := &Cache{
		Fetch: b.fetch, Device: "d0", Cell: "bs0/s0", Clock: clk,
		FailOpen: true, Grace: grace,
		// Refresh exactly at expiry: no proactive jitter, so the grant
		// expiry — and therefore the grace boundary — is exact.
		RefreshLo: 1, RefreshHi: 1,
	}
	if !c.Allowed(context.Background()) {
		t.Fatal("initial grant failed")
	}
	grantExpiry := clk.Now().Add(ttl)

	// The daemon dies; the TTL lapses and the breaker trips.
	b.healthy.Store(false)
	clk.advance(ttl)
	tripBreaker(t, c, clk)

	// Inside the grace window the stale grant keeps serving.
	boundary := grantExpiry.Add(grace)
	clk.set(boundary.Add(-time.Second))
	if !c.Allowed(context.Background()) {
		t.Error("stale grant rejected at grace-1s")
	}
	clk.set(boundary.Add(time.Second))
	if c.Allowed(context.Background()) {
		t.Error("stale grant honoured at grace+1s")
	}
	// The boundary is sticky: repeated calls stay rejected (the verdict
	// is recomputed, never cached back into the TTL state).
	for i := 0; i < 3; i++ {
		if c.Allowed(context.Background()) {
			t.Fatal("stale grant resurrected after the boundary")
		}
	}

	// Recovery ends degraded mode and re-grants normally.
	b.healthy.Store(true)
	clk.advance(time.Minute)
	if !c.Allowed(context.Background()) {
		t.Error("recovered backend did not re-grant")
	}
	if c.Mode() != "normal" {
		t.Errorf("mode %q after recovery, want normal", c.Mode())
	}
}

// TestCacheDegradedSchedulerFallsBack is the PR 5 blackout behaviour
// through the permit plane: a degraded fail-closed cache gates the 3G
// path shut, and the scheduler completes the whole transaction on ADSL
// alone.
func TestCacheDegradedSchedulerFallsBack(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000, 0)}
	b := &flakyBackend{ttl: time.Minute}
	c := &Cache{Fetch: b.fetch, Device: "d0", Cell: "bs0/s0", Clock: clk}
	tripBreaker(t, c, clk)

	adsl := &stubPath{name: "adsl", n: 100}
	gated := GatePath(&stubPath{name: "3g", n: 100}, c.Allowed)
	items := make([]scheduler.Item, 6)
	for i := range items {
		items[i] = scheduler.Item{ID: i, Size: 100}
	}
	rep, err := scheduler.Run(context.Background(), scheduler.Greedy, items,
		[]scheduler.Path{adsl, gated}, scheduler.Options{})
	if err != nil {
		t.Fatalf("transaction failed during permit blackout: %v", err)
	}
	if got := rep.PerPath["adsl"].Items; got != len(items) {
		t.Errorf("adsl completed %d of %d items", got, len(items))
	}
	if got := rep.PerPath["3g"].Items; got != 0 {
		t.Errorf("3g completed %d items with no permit", got)
	}
}
