package permitplane

import (
	"strings"
	"testing"
	"time"

	"threegol/internal/obs"
	"threegol/internal/permitplane/wal"
)

func storeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func TestGrantStoreExpiryHeap(t *testing.T) {
	clk := storeClock()
	s := NewGrantStore(clk, nil)

	s.RecordDecision("d1", "bs0/s0", true, 10)
	s.RecordDecision("d2", "bs0/s1", true, 20)
	s.RecordDecision("d3", "bs0/s2", true, 30)
	if got := s.Outstanding(); got != 3 {
		t.Fatalf("outstanding = %d, want 3", got)
	}

	// d1's 10s TTL lapses; the others survive.
	clk.advance(11 * time.Second)
	if got := s.Outstanding(); got != 2 {
		t.Errorf("outstanding after d1 lapse = %d, want 2", got)
	}

	// Refresh d2 before its 20s lapse: the old heap entry goes stale
	// and must NOT expire the refreshed grant.
	clk.advance(5 * time.Second) // t = +16s; d2's original expiry is +20s
	s.RecordDecision("d2", "bs0/s1", true, 60)
	clk.advance(10 * time.Second) // t = +26s; past the stale entry
	if got := s.Outstanding(); got != 2 {
		t.Errorf("stale heap entry expired a refreshed grant: outstanding = %d, want 2", got)
	}

	// d3 lapses at +30s, refreshed d2 at +16+60s.
	clk.advance(10 * time.Second)
	if got := s.Outstanding(); got != 1 {
		t.Errorf("outstanding after d3 lapse = %d, want 1", got)
	}
	clk.advance(60 * time.Second)
	if got := s.Outstanding(); got != 0 {
		t.Errorf("outstanding after all lapse = %d, want 0", got)
	}
}

func TestGrantStoreRevokeOnDenial(t *testing.T) {
	clk := storeClock()
	s := NewGrantStore(clk, nil)
	s.RecordDecision("d1", "bs0/s0", true, 100)
	if got := s.Outstanding(); got != 1 {
		t.Fatalf("outstanding = %d, want 1", got)
	}
	// The cell filled up: a denial revokes the held grant immediately.
	s.RecordDecision("d1", "bs0/s0", false, 0)
	if got := s.Outstanding(); got != 0 {
		t.Errorf("outstanding after revoke = %d, want 0", got)
	}
	// A denial for a device holding nothing is a no-op.
	s.RecordDecision("d2", "bs0/s0", false, 0)
	if got := s.Seq(); got != 2 {
		t.Errorf("seq = %d, want 2 (grant + revoke only)", got)
	}
}

func TestGrantStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	clk := storeClock()

	s, err := OpenGrantStore(dir, clk, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.RecordDecision("short", "bs0/s0", true, 10)
	s.RecordDecision("long", "bs0/s1", true, 1000)
	s.RecordDecision("gone", "bs0/s2", true, 1000)
	s.RecordDecision("gone", "bs0/s2", false, 0) // revoked
	preHash := s.StateHash()
	// Crash: no Close, no snapshot — the WAL alone must carry the state.

	// The outage outlives short's TTL.
	clk.advance(60 * time.Second)
	r, err := OpenGrantStore(dir, clk, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec := r.Recovery()
	if rec.RecoveredGrants != 1 {
		t.Errorf("recovered %d grants, want 1 (long)", rec.RecoveredGrants)
	}
	if rec.ExpiredOnRecovery != 1 {
		t.Errorf("expired %d on recovery, want 1 (short)", rec.ExpiredOnRecovery)
	}
	if rec.StateHash == "" || rec.StateHash == preHash {
		t.Errorf("recovery hash %q should differ from pre-crash hash %q (short expired)", rec.StateHash, preHash)
	}
	if rec.StateHash != r.StateHash() {
		t.Errorf("recovery hash %q != live hash %q", rec.StateHash, r.StateHash())
	}
	if got := r.Outstanding(); got != 1 {
		t.Errorf("outstanding after recovery = %d, want 1", got)
	}
	if rec.WAL.RecordsReplayed != 4 {
		t.Errorf("replayed %d records, want 4", rec.WAL.RecordsReplayed)
	}

	// An independent read-only replay filtered at the recovery instant
	// must agree — the exact invariant the chaos harness asserts.
	st, _, err := wal.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.ExpireDue(rec.RecoveredAt)
	if got := HashState(st); got != rec.StateHash {
		t.Errorf("independent replay hash %q != recovery hash %q", got, rec.StateHash)
	}
}

// TestGrantStoreIgnoresOversizedIDs pins the edge guard: an ID too
// long for the WAL's uint16 length fields must never enter the grant
// state — framed, it would poison the log; held in memory, the next
// snapshot.
func TestGrantStoreIgnoresOversizedIDs(t *testing.T) {
	dir := t.TempDir()
	clk := storeClock()
	m := NewMetrics(obs.NewRegistry())
	s, err := OpenGrantStore(dir, clk, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	huge := strings.Repeat("x", wal.MaxIDLen+1)
	s.RecordDecision(huge, "bs0/s0", true, 100)
	s.RecordDecision("d1", huge, true, 100)
	if got := s.Outstanding(); got != 0 {
		t.Errorf("outstanding = %d, want 0 — an oversized ID was tracked", got)
	}
	if got := s.WALErrors(); got != 0 {
		t.Errorf("WAL errors = %d, want 0 — the oversized ID reached the log", got)
	}
	if got := m.OversizedIDs.With().Value(); got != 2 {
		t.Errorf("oversized-ID counter = %d, want 2", got)
	}
	// Tracking continues normally afterwards, and the WAL replays clean.
	s.RecordDecision("d1", "bs0/s0", true, 100)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st, stats, err := wal.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornBytes != 0 || len(st.Grants) != 1 {
		t.Errorf("replay: %d torn bytes, %d grants, want 0 and 1", stats.TornBytes, len(st.Grants))
	}
}

// TestGrantStoreRecoveryExpiryCounted pins snapshot/replay counter
// equivalence: the expire records recovery appends fold through Apply,
// so the compacted snapshot carries the same cumulative counters an
// independent replay of those records reaches.
func TestGrantStoreRecoveryExpiryCounted(t *testing.T) {
	dir := t.TempDir()
	clk := storeClock()
	s, err := OpenGrantStore(dir, clk, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.RecordDecision("short", "bs0/s0", true, 10)
	s.RecordDecision("long", "bs0/s1", true, 1000)
	// Crash without Close; the outage outlives short's TTL.
	clk.advance(60 * time.Second)
	r, err := OpenGrantStore(dir, clk, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec := r.Recovery()
	if rec.ExpiredOnRecovery != 1 {
		t.Fatalf("expired %d on recovery, want 1", rec.ExpiredOnRecovery)
	}
	st, _, err := wal.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalExpiries != 1 {
		t.Errorf("snapshot carries %d total expiries, want 1 — recovery expiry bypassed the counter fold", st.TotalExpiries)
	}
	if got := HashState(st); got != rec.StateHash {
		t.Errorf("independent replay hash %q != recovery hash %q", got, rec.StateHash)
	}
}

func TestGrantStoreSnapshotOnClose(t *testing.T) {
	dir := t.TempDir()
	clk := storeClock()
	s, err := OpenGrantStore(dir, clk, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.RecordDecision("d1", "bs0/s0", true, 1000)
	s.RecordDecision("d2", "bs0/s1", true, 1000)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean close compacted everything into the snapshot: reopening
	// replays zero log records.
	r, err := OpenGrantStore(dir, clk, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec := r.Recovery()
	if rec.WAL.RecordsReplayed != 0 {
		t.Errorf("replayed %d log records after clean close, want 0 (snapshot covers all)", rec.WAL.RecordsReplayed)
	}
	if rec.RecoveredGrants != 2 {
		t.Errorf("recovered %d grants, want 2", rec.RecoveredGrants)
	}
}

func TestGrantStoreSnapshotEvery(t *testing.T) {
	dir := t.TempDir()
	clk := storeClock()
	s, err := OpenGrantStore(dir, clk, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.RecordDecision("d", "bs0/s0", true, 1000)
	}
	// 10 records with snapshotEvery=4: compactions at 4 and 8, leaving
	// at most 2 records in the live log.
	st, stats, err := wal.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotSeq == 0 {
		t.Error("no snapshot written despite snapshotEvery=4")
	}
	if stats.RecordsReplayed > 3 {
		t.Errorf("%d records in live log, want <= 3 after periodic compaction", stats.RecordsReplayed)
	}
	if len(st.Grants) != 1 {
		t.Errorf("replayed %d grants, want 1", len(st.Grants))
	}
}
