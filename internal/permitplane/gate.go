package permitplane

import (
	"context"
	"errors"

	"threegol/internal/scheduler"
)

// ErrNotPermitted is returned by a gated path when its permit check
// fails: the device's serving cell is congested (or the backend is
// unreachable, which fails safe). The scheduler treats it like any
// transfer failure — the item requeues onto other paths, and repeated
// denials trip the path's circuit breaker, which is exactly the
// behaviour a revoked permit should produce.
var ErrNotPermitted = errors.New("permitplane: no valid permit for path")

// GatePath decorates a scheduler path with a client-side permit gate:
// every transfer first consults allowed (normally Cache.Allowed, so the
// check is a cache hit on the fast path) and fails with ErrNotPermitted
// when the path may not onload right now. Progress reporting is
// preserved: wrapping a ProgressPath yields a ProgressPath, so the
// stall watchdog keeps watching through the gate.
func GatePath(inner scheduler.Path, allowed func(ctx context.Context) bool) scheduler.Path {
	g := gatedPath{inner: inner, allowed: allowed}
	if pp, ok := inner.(scheduler.ProgressPath); ok {
		return &gatedProgressPath{gatedPath: g, inner: pp}
	}
	return &g
}

type gatedPath struct {
	inner   scheduler.Path
	allowed func(ctx context.Context) bool
}

func (g *gatedPath) Name() string { return g.inner.Name() }

func (g *gatedPath) Transfer(ctx context.Context, item scheduler.Item) (int64, error) {
	if !g.allowed(ctx) {
		return 0, ErrNotPermitted
	}
	return g.inner.Transfer(ctx, item)
}

type gatedProgressPath struct {
	gatedPath
	inner scheduler.ProgressPath
}

func (g *gatedProgressPath) TransferProgress(ctx context.Context, item scheduler.Item, progress func(total int64)) (int64, error) {
	if !g.allowed(ctx) {
		return 0, ErrNotPermitted
	}
	return g.inner.TransferProgress(ctx, item, progress)
}
