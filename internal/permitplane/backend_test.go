package permitplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"threegol/internal/obs"
	"threegol/internal/permit"
	"threegol/internal/permitplane/wal"
)

// testUtil is a deterministic monitoring hook: cells named "hot-*" are
// congested, everything else is idle.
func testUtil(cellID string) float64 {
	if strings.HasPrefix(cellID, "hot-") {
		return 0.95
	}
	return 0.1
}

func postBatch(t *testing.T, url string, reqs []PermitRequest) (*http.Response, BatchResponse) {
	t.Helper()
	body, err := json.Marshal(BatchRequest{Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/permits/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestShardedBatchDecidesInRequestOrder(t *testing.T) {
	s := New(Config{Shards: 4, Utilization: testUtil, Clock: &fakeClock{}})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var reqs []PermitRequest
	for i := 0; i < 64; i++ {
		cell := fmt.Sprintf("cell-%d", i)
		if i%3 == 0 {
			cell = fmt.Sprintf("hot-%d", i)
		}
		reqs = append(reqs, PermitRequest{Device: fmt.Sprintf("d%d", i), Cell: cell})
	}
	resp, out := postBatch(t, srv.URL, reqs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch returned %s", resp.Status)
	}
	if len(out.Decisions) != len(reqs) {
		t.Fatalf("%d decisions for %d requests", len(out.Decisions), len(reqs))
	}
	for i, d := range out.Decisions {
		wantGrant := !strings.HasPrefix(reqs[i].Cell, "hot-")
		if d.Granted != wantGrant {
			t.Errorf("request %d (%s): granted=%v, want %v", i, reqs[i].Cell, d.Granted, wantGrant)
		}
	}
	grants, denials := s.Stats()
	if int(grants+denials) != len(reqs) {
		t.Errorf("stats %d+%d, want %d decisions", grants, denials, len(reqs))
	}
}

func TestShardedRejectsBadBatches(t *testing.T) {
	s := New(Config{Shards: 2, Utilization: testUtil, Clock: &fakeClock{}})
	srv := httptest.NewServer(s)
	defer srv.Close()

	if resp, _ := postBatch(t, srv.URL, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: %s, want 400", resp.Status)
	}
	if resp, _ := postBatch(t, srv.URL, []PermitRequest{{Device: "d"}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing cell: %s, want 400", resp.Status)
	}
	over := make([]PermitRequest, MaxBatch+1)
	for i := range over {
		over[i] = PermitRequest{Device: "d", Cell: "c"}
	}
	if resp, _ := postBatch(t, srv.URL, over); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize batch: %s, want 413", resp.Status)
	}
	get, err := http.Get(srv.URL + "/permits/batch")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET batch: %s, want 405", get.Status)
	}
	// Decisions must be unaffected by the rejected batches.
	if g, d := s.Stats(); g != 0 || d != 0 {
		t.Errorf("rejected batches made decisions: grants=%d denials=%d", g, d)
	}
}

// TestShardedRejectsOversizedIDs pins the HTTP edge guard: a device or
// cell longer than the WAL can frame is a 400 on both transports, not
// a granted-but-untrackable permit.
func TestShardedRejectsOversizedIDs(t *testing.T) {
	s := New(Config{Shards: 2, Utilization: testUtil, Clock: &fakeClock{}})
	srv := httptest.NewServer(s)
	defer srv.Close()

	huge := strings.Repeat("x", wal.MaxIDLen+1)
	for _, q := range []string{"cell=c&device=" + huge, "cell=" + huge + "&device=d"} {
		resp, err := http.Get(srv.URL + "/permit?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("oversized ID on GET /permit: %s, want 400", resp.Status)
		}
	}
	if resp, _ := postBatch(t, srv.URL, []PermitRequest{{Device: huge, Cell: "c"}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized device in batch: %s, want 400", resp.Status)
	}
	if resp, _ := postBatch(t, srv.URL, []PermitRequest{{Device: "d", Cell: huge}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized cell in batch: %s, want 400", resp.Status)
	}
	if g, d := s.Stats(); g != 0 || d != 0 {
		t.Errorf("rejected requests made decisions: grants=%d denials=%d", g, d)
	}
}

func TestShardedRoutesSinglePermit(t *testing.T) {
	s := New(Config{Shards: 4, Utilization: testUtil, Clock: &fakeClock{}})
	srv := httptest.NewServer(s)
	defer srv.Close()

	cl := permit.Client{BackendURL: srv.URL, Device: "d0", Cell: "cell-0"}
	if !cl.Allowed(context.Background()) {
		t.Error("idle cell denied through the router")
	}
	hot := permit.Client{BackendURL: srv.URL, Device: "d1", Cell: "hot-0"}
	if hot.Allowed(context.Background()) {
		t.Error("congested cell granted through the router")
	}
}

// TestMergedMetricsByteIdenticalAcrossShardCounts is the tentpole's
// merge guarantee: the same request history served by 1, 4 or 16 shards
// must produce byte-for-byte identical merged /debug/metrics dumps.
func TestMergedMetricsByteIdenticalAcrossShardCounts(t *testing.T) {
	drive := func(shards int) []byte {
		s := New(Config{Shards: shards, Utilization: testUtil, Clock: &fakeClock{}})
		srv := httptest.NewServer(s)
		defer srv.Close()

		// Singles.
		for i := 0; i < 20; i++ {
			resp, err := http.Get(fmt.Sprintf("%s/permit?device=d%d&cell=cell-%d", srv.URL, i, i))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		// Batches, mixing granted and denied cells.
		for b := 0; b < 4; b++ {
			var reqs []PermitRequest
			for i := 0; i < 50; i++ {
				cell := fmt.Sprintf("cell-%d", b*50+i)
				if i%5 == 0 {
					cell = fmt.Sprintf("hot-%d", b*50+i)
				}
				reqs = append(reqs, PermitRequest{Device: fmt.Sprintf("d%d", i), Cell: cell})
			}
			if resp, _ := postBatch(t, srv.URL, reqs); resp.StatusCode != http.StatusOK {
				t.Fatalf("batch failed: %s", resp.Status)
			}
		}
		// One rejected batch, so error counters merge too.
		if resp, _ := postBatch(t, srv.URL, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatal("empty batch accepted")
		}

		rec := httptest.NewRecorder()
		s.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/metrics", nil))
		return rec.Body.Bytes()
	}

	base := drive(1)
	if !bytes.Contains(base, []byte("permit_decisions_total")) {
		t.Fatalf("merged dump is missing permit decision counters:\n%s", base)
	}
	for _, shards := range []int{4, 16} {
		got := drive(shards)
		if !bytes.Equal(base, got) {
			t.Errorf("merged metrics for %d shards differ from 1 shard:\n--- 1 shard ---\n%s\n--- %d shards ---\n%s",
				shards, base, shards, got)
		}
	}
}

func TestShardedStatusSplitsByShard(t *testing.T) {
	s := New(Config{Shards: 4, Utilization: testUtil, Clock: &fakeClock{}})
	for i := 0; i < 100; i++ {
		s.Decide(context.Background(), fmt.Sprintf("cell-%d", i))
	}
	status := s.Status()
	if len(status) != 4 {
		t.Fatalf("%d shard statuses, want 4", len(status))
	}
	var total int64
	busy := 0
	for i, st := range status {
		if st.Shard != i {
			t.Errorf("status %d reports shard %d", i, st.Shard)
		}
		total += st.Grants + st.Denials
		if st.Grants+st.Denials > 0 {
			busy++
		}
	}
	if total != 100 {
		t.Errorf("shard statuses sum to %d decisions, want 100", total)
	}
	if busy < 2 {
		t.Errorf("only %d of 4 shards made decisions; hash not spreading", busy)
	}

	rec := httptest.NewRecorder()
	s.StatusHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/shards", nil))
	var decoded []ShardStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("decoding /debug/shards: %v", err)
	}
	if len(decoded) != 4 {
		t.Errorf("/debug/shards returned %d entries, want 4", len(decoded))
	}
}

func TestShardedDenyUnknownFailsClosed(t *testing.T) {
	tbl := NewUtilTable(0, true)
	tbl.Set("known", 0.1)
	s := New(Config{Shards: 4, Utilization: tbl.Get, Clock: &fakeClock{}})

	if d := s.Decide(context.Background(), "known"); !d.Granted {
		t.Error("known idle cell denied")
	}
	if d := s.Decide(context.Background(), "never-in-feed"); d.Granted {
		t.Error("cell absent from the feed granted despite -deny-unknown")
	}
}

func TestBatchClientFallsBackToLegacyBackend(t *testing.T) {
	// A bare permit.Backend: GET /permit only, no /permits/batch.
	legacy := &permit.Backend{Utilization: testUtil, Clock: &fakeClock{}}
	srv := httptest.NewServer(legacy)
	defer srv.Close()

	c := &BatchClient{BackendURL: srv.URL, Metrics: NewMetrics(obs.NewRegistry())}
	reqs := []PermitRequest{
		{Device: "d0", Cell: "cell-0"},
		{Device: "d1", Cell: "hot-0"},
		{Device: "d2", Cell: "cell-2"},
	}
	for round := 0; round < 2; round++ {
		out, err := c.Batch(context.Background(), reqs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(out) != 3 || !out[0].Granted || out[1].Granted || !out[2].Granted {
			t.Fatalf("round %d: wrong decisions %+v", round, out)
		}
	}
	if !c.legacy.Load() {
		t.Error("legacy fallback not latched")
	}
	g, d := legacy.Stats()
	if g != 4 || d != 2 {
		t.Errorf("legacy backend saw grants=%d denials=%d, want 4/2", g, d)
	}
}

// TestBatchClientReprobesBatchEndpointAfterRestart pins the un-latch
// path: a client latched onto the legacy single-GET fallback must
// periodically re-probe /permits/batch and return to the batch RPC when
// a restarted (batch-capable) daemon comes back — not stay on the slow
// path forever.
func TestBatchClientReprobesBatchEndpointAfterRestart(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000, 0)}
	legacy := &permit.Backend{Utilization: testUtil, Clock: clk}
	plane := New(Config{Shards: 2, Utilization: testUtil, Clock: clk})
	var upgraded atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if upgraded.Load() {
			plane.ServeHTTP(w, r)
			return
		}
		legacy.ServeHTTP(w, r)
	}))
	defer srv.Close()

	m := NewMetrics(obs.NewRegistry())
	c := &BatchClient{BackendURL: srv.URL, Metrics: m, Clock: clk, ReprobeInterval: time.Minute}
	reqs := []PermitRequest{{Device: "d0", Cell: "cell-0"}}
	reprobes := func() int64 { return m.BatchReprobes.With().Value() }

	if _, err := c.Batch(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if !c.legacy.Load() {
		t.Fatal("legacy fallback not latched")
	}

	// Inside the re-probe interval the latch holds without probing.
	clk.advance(20 * time.Second)
	if _, err := c.Batch(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if got := reprobes(); got != 0 {
		t.Fatalf("%v re-probes inside the interval, want 0", got)
	}

	// A due re-probe against a still-legacy backend stays latched (and
	// still answers via singles).
	clk.advance(2 * time.Minute) // past any jittered spacing (max 1.5×)
	out, err := c.Batch(context.Background(), reqs)
	if err != nil || len(out) != 1 {
		t.Fatalf("probe round against legacy backend: out=%v err=%v", out, err)
	}
	if !c.legacy.Load() {
		t.Error("failed re-probe unlatched the fallback")
	}
	if got := reprobes(); got != 1 {
		t.Fatalf("%v re-probes after one due window, want 1", got)
	}

	// The daemon restarts batch-capable: the next due re-probe unlatches.
	upgraded.Store(true)
	clk.advance(2 * time.Minute)
	if _, err := c.Batch(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if c.legacy.Load() {
		t.Error("re-probe did not unlatch after the backend upgraded")
	}
	if got := reprobes(); got != 2 {
		t.Errorf("%v re-probes total, want 2", got)
	}
	// And later batches ride the batch RPC without further probes.
	if _, err := c.Batch(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if got := reprobes(); got != 2 {
		t.Errorf("unlatched client kept probing (%v)", got)
	}
}

func TestBatchClientAgainstShardedBackend(t *testing.T) {
	s := New(Config{Shards: 4, Utilization: testUtil, Clock: &fakeClock{}})
	srv := httptest.NewServer(s)
	defer srv.Close()

	c := &BatchClient{BackendURL: srv.URL}
	resp, err := c.Fetch(context.Background(), "d0", "cell-0")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Granted {
		t.Error("idle cell denied via BatchClient.Fetch")
	}
	if c.legacy.Load() {
		t.Error("batch-capable backend latched the legacy fallback")
	}
}
