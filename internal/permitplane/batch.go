package permitplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"threegol/internal/clock"
	"threegol/internal/obs/eventlog"
	"threegol/internal/permit"
)

// DefaultReprobeInterval is how often a legacy-latched BatchClient
// re-probes /permits/batch (jittered per client, so a fleet latched by
// the same restart does not re-probe in the same instant).
const DefaultReprobeInterval = time.Minute

// BatchClient issues grant/refresh requests against a permit backend,
// preferring the batch RPC and degrading transparently to per-permit
// GETs when the backend predates /permits/batch. The fallback is
// sticky only between re-probes: a jittered periodic re-probe of the
// batch endpoint unlatches the client when the backend comes back
// batch-capable (a restart onto a newer daemon must not leave the
// fleet on the slow single-GET path forever).
type BatchClient struct {
	// BackendURL is the backend's base URL (scheme://host:port).
	BackendURL string
	// HTTPClient issues the requests; nil uses a short-timeout default.
	HTTPClient *http.Client
	// RequestTimeout bounds each RPC via a per-attempt context
	// deadline; 0 selects 5 seconds (batches carry more work than the
	// 2 s single-permit default).
	RequestTimeout time.Duration
	// Metrics, when non-nil, receives fallback instrumentation.
	Metrics *Metrics
	// ReprobeInterval is the nominal spacing between re-probes of
	// /permits/batch while latched onto the legacy fallback; each
	// actual spacing is jittered into [0.5, 1.5)× of it. 0 selects
	// DefaultReprobeInterval; negative disables re-probing (the
	// historical latch-forever behaviour).
	ReprobeInterval time.Duration
	// Seed salts the re-probe jitter stream (mixed with BackendURL).
	Seed int64
	// Clock times re-probes; nil selects the system clock.
	Clock clock.Clock

	legacy    atomic.Bool  // backend has no /permits/batch
	nextProbe atomic.Int64 // unixnano of the next re-probe while legacy
	draws     atomic.Uint64
}

func (c *BatchClient) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 5 * time.Second}
}

func (c *BatchClient) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 5 * time.Second
}

func (c *BatchClient) reprobeInterval() time.Duration {
	if c.ReprobeInterval == 0 {
		return DefaultReprobeInterval
	}
	if c.ReprobeInterval < 0 {
		return 0 // re-probing disabled
	}
	return c.ReprobeInterval
}

// scheduleReprobe arms the next jittered re-probe from now.
func (c *BatchClient) scheduleReprobe() {
	iv := c.reprobeInterval()
	if iv <= 0 {
		return
	}
	frac := 0.5 + JitterFrac(c.Seed, c.BackendURL, c.draws.Add(1))
	next := clock.Or(c.Clock).Now().Add(time.Duration(frac * float64(iv)))
	c.nextProbe.Store(next.UnixNano())
}

// claimReprobe reports whether this call should re-probe the batch
// endpoint, claiming the due probe with a CAS so concurrent batches
// issue exactly one.
func (c *BatchClient) claimReprobe() bool {
	if c.reprobeInterval() <= 0 {
		return false
	}
	next := c.nextProbe.Load()
	if next == 0 || clock.Or(c.Clock).Now().UnixNano() < next {
		return false
	}
	if !c.nextProbe.CompareAndSwap(next, 0) {
		return false // another caller claimed this probe
	}
	c.scheduleReprobe() // re-arm in case the probe fails
	return true
}

// Batch requests a decision for every entry of reqs, returning the
// decisions in request order. A transport failure or non-OK status
// fails the whole batch — callers treat that like any single-permit
// refresh error (fail safe: no permit, no onloading).
func (c *BatchClient) Batch(ctx context.Context, reqs []PermitRequest) ([]permit.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	probing := false
	if c.legacy.Load() {
		if !c.claimReprobe() {
			return c.singles(ctx, reqs)
		}
		probing = true
		c.Metrics.batchReprobed()
	}
	rctx, cancel := context.WithTimeout(ctx, c.requestTimeout())
	defer cancel()
	body, err := json.Marshal(BatchRequest{Requests: reqs})
	if err != nil {
		return nil, fmt.Errorf("permitplane: encoding batch: %w", err)
	}
	url := c.BackendURL + "/permits/batch"
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("permitplane: building batch request for %s: %w", url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tc, ok := eventlog.FromContext(ctx); ok {
		eventlog.InjectHTTP(req.Header, tc)
	}
	httpResp, err := c.httpClient().Do(req)
	if err != nil {
		if probing {
			// A dead backend proves nothing about batch support; the
			// singles would fail identically, so surface the error.
			return nil, fmt.Errorf("permitplane: batch re-probe of %s: %w", url, err)
		}
		return nil, fmt.Errorf("permitplane: batch request to %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	switch {
	case httpResp.StatusCode == http.StatusOK:
		if probing {
			c.legacy.Store(false) // batch endpoint is back
		}
	case httpResp.StatusCode == http.StatusNotFound || httpResp.StatusCode == http.StatusMethodNotAllowed:
		// Pre-batch backend: remember, arm the jittered re-probe, and
		// degrade to per-permit GETs.
		c.legacy.Store(true)
		if !probing {
			c.Metrics.batchFellBack()
			c.scheduleReprobe()
		}
		return c.singles(ctx, reqs)
	default:
		return nil, fmt.Errorf("permitplane: batch backend returned %s", httpResp.Status)
	}
	var out BatchResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("permitplane: decoding batch response: %w", err)
	}
	if len(out.Decisions) != len(reqs) {
		return nil, fmt.Errorf("permitplane: batch returned %d decisions for %d requests",
			len(out.Decisions), len(reqs))
	}
	return out.Decisions, nil
}

// Fetch requests a single decision — the Cache.Fetch hook. It rides
// the batch path (a batch of one) so trace propagation, timeouts and
// legacy fallback behave identically for cached and batched callers.
func (c *BatchClient) Fetch(ctx context.Context, device, cell string) (permit.Response, error) {
	out, err := c.Batch(ctx, []PermitRequest{{Device: device, Cell: cell}})
	if err != nil {
		return permit.Response{}, err
	}
	return out[0], nil
}

// singles performs one GET /permit round trip per request — the legacy
// protocol (and the shape of the load the batch RPC exists to avoid).
func (c *BatchClient) singles(ctx context.Context, reqs []PermitRequest) ([]permit.Response, error) {
	out := make([]permit.Response, len(reqs))
	for i, pr := range reqs {
		resp, err := c.single(ctx, pr)
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

func (c *BatchClient) single(ctx context.Context, pr PermitRequest) (permit.Response, error) {
	rctx, cancel := context.WithTimeout(ctx, c.requestTimeout())
	defer cancel()
	url := fmt.Sprintf("%s/permit?device=%s&cell=%s", c.BackendURL, pr.Device, pr.Cell)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return permit.Response{}, fmt.Errorf("permitplane: building request for %s: %w", url, err)
	}
	if tc, ok := eventlog.FromContext(ctx); ok {
		eventlog.InjectHTTP(req.Header, tc)
	}
	httpResp, err := c.httpClient().Do(req)
	if err != nil {
		return permit.Response{}, fmt.Errorf("permitplane: requesting %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return permit.Response{}, fmt.Errorf("permitplane: backend returned %s", httpResp.Status)
	}
	var resp permit.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return permit.Response{}, fmt.Errorf("permitplane: decoding response: %w", err)
	}
	return resp, nil
}
