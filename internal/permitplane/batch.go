package permitplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"threegol/internal/obs/eventlog"
	"threegol/internal/permit"
)

// BatchClient issues grant/refresh requests against a permit backend,
// preferring the batch RPC and degrading transparently to per-permit
// GETs when the backend predates /permits/batch (the fallback sticks
// for the client's lifetime once detected, so every later batch costs
// exactly len(reqs) GETs instead of one failed POST plus the GETs).
type BatchClient struct {
	// BackendURL is the backend's base URL (scheme://host:port).
	BackendURL string
	// HTTPClient issues the requests; nil uses a short-timeout default.
	HTTPClient *http.Client
	// RequestTimeout bounds each RPC via a per-attempt context
	// deadline; 0 selects 5 seconds (batches carry more work than the
	// 2 s single-permit default).
	RequestTimeout time.Duration
	// Metrics, when non-nil, receives fallback instrumentation.
	Metrics *Metrics

	legacy atomic.Bool // backend has no /permits/batch
}

func (c *BatchClient) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 5 * time.Second}
}

func (c *BatchClient) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 5 * time.Second
}

// Batch requests a decision for every entry of reqs, returning the
// decisions in request order. A transport failure or non-OK status
// fails the whole batch — callers treat that like any single-permit
// refresh error (fail safe: no permit, no onloading).
func (c *BatchClient) Batch(ctx context.Context, reqs []PermitRequest) ([]permit.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if c.legacy.Load() {
		return c.singles(ctx, reqs)
	}
	rctx, cancel := context.WithTimeout(ctx, c.requestTimeout())
	defer cancel()
	body, err := json.Marshal(BatchRequest{Requests: reqs})
	if err != nil {
		return nil, fmt.Errorf("permitplane: encoding batch: %w", err)
	}
	url := c.BackendURL + "/permits/batch"
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("permitplane: building batch request for %s: %w", url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tc, ok := eventlog.FromContext(ctx); ok {
		eventlog.InjectHTTP(req.Header, tc)
	}
	httpResp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("permitplane: batch request to %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	switch {
	case httpResp.StatusCode == http.StatusOK:
	case httpResp.StatusCode == http.StatusNotFound || httpResp.StatusCode == http.StatusMethodNotAllowed:
		// Pre-batch backend: remember and degrade to per-permit GETs.
		c.legacy.Store(true)
		c.Metrics.batchFellBack()
		return c.singles(ctx, reqs)
	default:
		return nil, fmt.Errorf("permitplane: batch backend returned %s", httpResp.Status)
	}
	var out BatchResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("permitplane: decoding batch response: %w", err)
	}
	if len(out.Decisions) != len(reqs) {
		return nil, fmt.Errorf("permitplane: batch returned %d decisions for %d requests",
			len(out.Decisions), len(reqs))
	}
	return out.Decisions, nil
}

// Fetch requests a single decision — the Cache.Fetch hook. It rides
// the batch path (a batch of one) so trace propagation, timeouts and
// legacy fallback behave identically for cached and batched callers.
func (c *BatchClient) Fetch(ctx context.Context, device, cell string) (permit.Response, error) {
	out, err := c.Batch(ctx, []PermitRequest{{Device: device, Cell: cell}})
	if err != nil {
		return permit.Response{}, err
	}
	return out[0], nil
}

// singles performs one GET /permit round trip per request — the legacy
// protocol (and the shape of the load the batch RPC exists to avoid).
func (c *BatchClient) singles(ctx context.Context, reqs []PermitRequest) ([]permit.Response, error) {
	out := make([]permit.Response, len(reqs))
	for i, pr := range reqs {
		resp, err := c.single(ctx, pr)
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

func (c *BatchClient) single(ctx context.Context, pr PermitRequest) (permit.Response, error) {
	rctx, cancel := context.WithTimeout(ctx, c.requestTimeout())
	defer cancel()
	url := fmt.Sprintf("%s/permit?device=%s&cell=%s", c.BackendURL, pr.Device, pr.Cell)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return permit.Response{}, fmt.Errorf("permitplane: building request for %s: %w", url, err)
	}
	if tc, ok := eventlog.FromContext(ctx); ok {
		eventlog.InjectHTTP(req.Header, tc)
	}
	httpResp, err := c.httpClient().Do(req)
	if err != nil {
		return permit.Response{}, fmt.Errorf("permitplane: requesting %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return permit.Response{}, fmt.Errorf("permitplane: backend returned %s", httpResp.Status)
	}
	var resp permit.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return permit.Response{}, fmt.Errorf("permitplane: decoding response: %w", err)
	}
	return resp, nil
}
