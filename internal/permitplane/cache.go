package permitplane

import (
	"context"
	"fmt"
	"sync"
	"time"

	"threegol/internal/clock"
	"threegol/internal/obs/eventlog"
	"threegol/internal/permit"
)

// Refresh-window defaults: a granted permit is proactively refreshed at
// a deterministic, per-device-jittered point in [lo, hi]×TTL, so a
// fleet of devices granted together never returns together.
const (
	DefaultRefreshLo = 0.7
	DefaultRefreshHi = 0.95
)

// Cooldowns after non-granted refreshes, mirroring permit.Client: a
// denial is re-checked after a few seconds ("the transmission is
// denied, and the device does not advertise"), a backend failure backs
// off briefly so a dead backend does not turn every request into a
// round trip.
const (
	denyCooldown  = 5 * time.Second
	errorCooldown = 2 * time.Second
)

// Cache is the device-side permit cache of the production plane. It
// improves on permit.Client in three ways that matter at fleet scale:
//
//   - Proactive, TTL-jittered refresh: instead of refreshing at expiry
//     (where every device granted in the same backend restart returns
//     in the same instant), the cache refreshes at a deterministic
//     per-device point inside [RefreshLo, RefreshHi]×TTL. The jitter
//     stream is seeded and replayable (JitterFrac), so tests can prove
//     the desynchronisation bound.
//   - Singleflight: concurrent callers coalesce onto one in-flight
//     refresh instead of issuing one round trip each.
//   - Stale-while-refresh: while a proactive refresh is in flight, the
//     still-valid cached verdict keeps serving, so the refresh never
//     stalls the request path; and a failed proactive refresh keeps
//     the permit until its granted TTL genuinely lapses.
type Cache struct {
	// Fetch performs one backend refresh (BatchClient.Fetch, or a test
	// double). Required.
	Fetch func(ctx context.Context, device, cell string) (permit.Response, error)
	// Device and Cell identify this device and its serving cell.
	Device, Cell string
	// Seed salts the jitter stream; the draw also mixes in Device, so
	// a fleet sharing one configured seed still desynchronises.
	Seed int64
	// RefreshLo and RefreshHi bound the proactive-refresh window as
	// fractions of the granted TTL; zero values select the defaults.
	// Setting both to 1 disables proactive refresh (refresh exactly at
	// expiry — the TTL-boundary tests pin that edge).
	RefreshLo, RefreshHi float64
	// Clock times TTLs; nil selects the system clock.
	Clock clock.Clock
	// Metrics, when non-nil, receives cache instrumentation.
	Metrics *Metrics
	// Events, when non-nil, records a point per refresh, joining the
	// TraceContext riding the caller's context.
	Events *eventlog.Log

	mu        sync.Mutex
	haveState bool
	granted   bool
	expires   time.Time
	refreshAt time.Time
	flight    chan struct{} // non-nil while a refresh is in flight
	draws     uint64        // jitter draws so far (the stream position)
}

func (c *Cache) window() (lo, hi float64) {
	lo, hi = c.RefreshLo, c.RefreshHi
	if lo <= 0 {
		lo = DefaultRefreshLo
	}
	if hi <= 0 {
		hi = DefaultRefreshHi
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Allowed reports whether the device currently holds a valid permit,
// refreshing from the backend as needed. It is safe for concurrent use
// and matches the proxy.Server Admit hook shape. The context rides into
// the refresh, so traces and cancellation propagate to the backend.
func (c *Cache) Allowed(ctx context.Context) bool {
	for {
		c.mu.Lock() //3golvet:allow locksafe — singleflight state machine: every branch unlocks before blocking or returning
		now := clock.Or(c.Clock).Now()
		fresh := c.haveState && now.Before(c.expires)
		due := !c.haveState || !now.Before(c.refreshAt)
		if fresh && !due {
			v := c.granted
			c.mu.Unlock()
			c.Metrics.cacheHit()
			return v
		}
		if c.flight != nil {
			// Someone else is refreshing. A still-valid permit keeps
			// serving (stale-while-refresh); an expired one waits for
			// the flight's result rather than duplicating it.
			if fresh {
				v := c.granted
				c.mu.Unlock()
				c.Metrics.cacheCoalesced()
				return v
			}
			flight := c.flight
			c.mu.Unlock()
			c.Metrics.cacheCoalesced()
			select {
			case <-flight:
				continue // re-read the refreshed state
			case <-ctx.Done():
				return false // fail safe: no permit, no onloading
			}
		}
		flight := make(chan struct{})
		c.flight = flight
		c.mu.Unlock()
		return c.refresh(ctx, flight, fresh)
	}
}

// refresh performs the backend round trip this caller won the right to
// make, installs the result, and releases any coalesced waiters.
// proactive records that the cached permit was still valid when the
// refresh was issued.
func (c *Cache) refresh(ctx context.Context, flight chan struct{}, proactive bool) bool {
	resp, err := c.Fetch(ctx, c.Device, c.Cell)
	now := clock.Or(c.Clock).Now()
	granted := err == nil && resp.Granted
	c.Metrics.cacheRefreshed(granted, err, proactive)
	tc, _ := eventlog.FromContext(ctx)
	c.Events.Point(tc, "permitplane.cache_refresh",
		"cell", c.Cell, "granted", fmt.Sprintf("%t", granted),
		"ok", fmt.Sprintf("%t", err == nil),
		"proactive", fmt.Sprintf("%t", proactive))

	c.mu.Lock()
	defer c.mu.Unlock()
	defer close(flight)
	c.flight = nil
	switch {
	case err != nil && c.haveState && now.Before(c.expires):
		// A failed proactive refresh must not revoke a permit the
		// backend granted for a TTL that has not lapsed; retry shortly
		// and keep serving the cached verdict until real expiry.
		c.refreshAt = now.Add(errorCooldown)
		return c.granted
	case err != nil:
		c.haveState = true
		c.granted = false
		c.expires = now.Add(errorCooldown)
		c.refreshAt = c.expires
		return false
	}
	c.haveState = true
	c.granted = resp.Granted
	ttl := time.Duration(resp.TTLSeconds * float64(time.Second))
	if !resp.Granted || ttl <= 0 {
		c.expires = now.Add(denyCooldown)
		c.refreshAt = c.expires
		return c.granted
	}
	c.expires = now.Add(ttl)
	lo, hi := c.window()
	frac := lo + (hi-lo)*JitterFrac(c.Seed, c.Device, c.draws)
	c.draws++
	c.refreshAt = now.Add(time.Duration(frac * float64(ttl)))
	return c.granted
}

// Invalidate drops the cached permit, forcing a refresh on next use.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.haveState = false
	c.expires = time.Time{}
	c.refreshAt = time.Time{}
}
