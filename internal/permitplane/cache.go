package permitplane

import (
	"context"
	"fmt"
	"sync"
	"time"

	"threegol/internal/clock"
	"threegol/internal/obs/eventlog"
	"threegol/internal/permit"
)

// Refresh-window defaults: a granted permit is proactively refreshed at
// a deterministic, per-device-jittered point in [lo, hi]×TTL, so a
// fleet of devices granted together never returns together.
const (
	DefaultRefreshLo = 0.7
	DefaultRefreshHi = 0.95
)

// Cooldowns after non-granted refreshes, mirroring permit.Client: a
// denial is re-checked after a few seconds ("the transmission is
// denied, and the device does not advertise"), a backend failure backs
// off briefly so a dead backend does not turn every request into a
// round trip.
const (
	denyCooldown  = 5 * time.Second
	errorCooldown = 2 * time.Second
)

// Degraded-mode defaults: the breaker opens after
// DefaultBreakerThreshold consecutive refresh failures, holds for
// DefaultBreakerCooldown before the first half-open probe (doubling per
// failed probe up to DefaultBreakerMaxCooldown), and a fail-open cache
// honours the last granted permit for at most DefaultGrace past its
// genuine expiry.
const (
	DefaultBreakerThreshold   = 3
	DefaultBreakerCooldown    = 2 * time.Second
	DefaultBreakerMaxCooldown = 30 * time.Second
	DefaultGrace              = 30 * time.Second
)

// Cache is the device-side permit cache of the production plane. It
// improves on permit.Client in three ways that matter at fleet scale:
//
//   - Proactive, TTL-jittered refresh: instead of refreshing at expiry
//     (where every device granted in the same backend restart returns
//     in the same instant), the cache refreshes at a deterministic
//     per-device point inside [RefreshLo, RefreshHi]×TTL. The jitter
//     stream is seeded and replayable (JitterFrac), so tests can prove
//     the desynchronisation bound.
//   - Singleflight: concurrent callers coalesce onto one in-flight
//     refresh instead of issuing one round trip each.
//   - Stale-while-refresh: while a proactive refresh is in flight, the
//     still-valid cached verdict keeps serving, so the refresh never
//     stalls the request path; and a failed proactive refresh keeps
//     the permit until its granted TTL genuinely lapses.
//
// When the backend becomes unreachable the cache enters an explicit
// degraded state behind a per-endpoint circuit breaker: after
// BreakerThreshold consecutive refresh failures it stops issuing
// backend round trips and serves a local degraded verdict — fail-open
// (honour the last granted permit for up to Grace past its genuine
// expiry) or fail-closed (no permit, no onloading; the scheduler's
// gated path then fails with ErrNotPermitted and the transfer falls
// back to ADSL, exactly the blackout behaviour). Jittered half-open
// probes re-close the breaker the moment the backend answers again.
type Cache struct {
	// Fetch performs one backend refresh (BatchClient.Fetch, or a test
	// double). Required.
	Fetch func(ctx context.Context, device, cell string) (permit.Response, error)
	// Device and Cell identify this device and its serving cell.
	Device, Cell string
	// Seed salts the jitter stream; the draw also mixes in Device, so
	// a fleet sharing one configured seed still desynchronises.
	Seed int64
	// RefreshLo and RefreshHi bound the proactive-refresh window as
	// fractions of the granted TTL; zero values select the defaults.
	// Setting both to 1 disables proactive refresh (refresh exactly at
	// expiry — the TTL-boundary tests pin that edge).
	RefreshLo, RefreshHi float64
	// Clock times TTLs; nil selects the system clock.
	Clock clock.Clock
	// Metrics, when non-nil, receives cache instrumentation.
	Metrics *Metrics
	// Events, when non-nil, records a point per refresh, joining the
	// TraceContext riding the caller's context.
	Events *eventlog.Log

	// FailOpen selects the degraded-mode policy: true keeps honouring
	// the last granted permit for up to Grace past its genuine expiry
	// while the backend is unreachable; false (the default) fails
	// closed — no reachable backend, no onloading.
	FailOpen bool
	// Grace bounds the fail-open stale-permit window, measured from the
	// granted permit's genuine expiry; 0 selects DefaultGrace.
	Grace time.Duration
	// BreakerThreshold is the consecutive refresh-failure count that
	// opens the breaker; 0 selects DefaultBreakerThreshold, negative
	// disables degraded mode entirely.
	BreakerThreshold int
	// BreakerCooldown is the hold before the first half-open probe,
	// doubling per failed probe up to BreakerMaxCooldown; zeros select
	// DefaultBreakerCooldown and DefaultBreakerMaxCooldown.
	BreakerCooldown    time.Duration
	BreakerMaxCooldown time.Duration

	mu        sync.Mutex
	haveState bool
	granted   bool
	expires   time.Time
	refreshAt time.Time
	flight    chan struct{} // non-nil while a refresh is in flight
	draws     uint64        // jitter draws so far (the stream position)

	degraded    bool
	consecFails int
	probeAt     time.Time     // degraded: when the next half-open probe unlocks
	cooldown    time.Duration // hold applied at the next failed probe
	grantExpiry time.Time     // genuine expiry of the last granted permit
}

func (c *Cache) window() (lo, hi float64) {
	lo, hi = c.RefreshLo, c.RefreshHi
	if lo <= 0 {
		lo = DefaultRefreshLo
	}
	if hi <= 0 {
		hi = DefaultRefreshHi
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func (c *Cache) breakerThreshold() int {
	if c.BreakerThreshold == 0 {
		return DefaultBreakerThreshold
	}
	if c.BreakerThreshold < 0 {
		return 0 // degraded mode disabled
	}
	return c.BreakerThreshold
}

func (c *Cache) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return DefaultBreakerCooldown
}

func (c *Cache) breakerMaxCooldown() time.Duration {
	if c.BreakerMaxCooldown > 0 {
		return c.BreakerMaxCooldown
	}
	return DefaultBreakerMaxCooldown
}

func (c *Cache) grace() time.Duration {
	if c.Grace > 0 {
		return c.Grace
	}
	return DefaultGrace
}

// Mode reports "normal" or "degraded" — the explicit state the load
// harness and operators observe.
func (c *Cache) Mode() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.degraded {
		return "degraded"
	}
	return "normal"
}

// degradedVerdictLocked is the no-round-trip verdict served while the
// breaker is open: fail-open honours the last granted permit inside its
// grace window (measured from the permit's genuine expiry); everything
// else fails closed. staleGrant reports which branch served.
func (c *Cache) degradedVerdictLocked(now time.Time) (allowed, staleGrant bool) {
	if c.FailOpen && !c.grantExpiry.IsZero() && now.Before(c.grantExpiry.Add(c.grace())) {
		return true, true
	}
	return false, false
}

// Allowed reports whether the device currently holds a valid permit,
// refreshing from the backend as needed. It is safe for concurrent use
// and matches the proxy.Server Admit hook shape. The context rides into
// the refresh, so traces and cancellation propagate to the backend.
func (c *Cache) Allowed(ctx context.Context) bool {
	for {
		c.mu.Lock() //3golvet:allow locksafe — singleflight state machine: every branch unlocks before blocking or returning
		now := clock.Or(c.Clock).Now()
		fresh := c.haveState && now.Before(c.expires)
		due := !c.haveState || !now.Before(c.refreshAt)
		if fresh && !due {
			v := c.granted
			c.mu.Unlock()
			c.Metrics.cacheHit()
			return v
		}
		if c.degraded && (now.Before(c.probeAt) || c.flight != nil) {
			// Breaker open: no backend round trip. A still-valid permit
			// keeps serving; otherwise the local degraded verdict does.
			if fresh {
				v := c.granted
				c.mu.Unlock()
				c.Metrics.cacheHit()
				return v
			}
			v, stale := c.degradedVerdictLocked(now)
			c.mu.Unlock()
			c.Metrics.cacheDegradedServed(stale)
			return v
		}
		if c.flight != nil {
			// Someone else is refreshing. A still-valid permit keeps
			// serving (stale-while-refresh); an expired one waits for
			// the flight's result rather than duplicating it.
			if fresh {
				v := c.granted
				c.mu.Unlock()
				c.Metrics.cacheCoalesced()
				return v
			}
			flight := c.flight
			c.mu.Unlock()
			c.Metrics.cacheCoalesced()
			select {
			case <-flight:
				continue // re-read the refreshed state
			case <-ctx.Done():
				return false // fail safe: no permit, no onloading
			}
		}
		flight := make(chan struct{})
		c.flight = flight
		probing := c.degraded // breaker cooldown elapsed: this call is the half-open probe
		c.mu.Unlock()
		return c.refresh(ctx, flight, fresh, probing)
	}
}

// refresh performs the backend round trip this caller won the right to
// make, installs the result, and releases any coalesced waiters.
// proactive records that the cached permit was still valid when the
// refresh was issued; probing records that this round trip is a
// degraded cache's half-open breaker probe.
func (c *Cache) refresh(ctx context.Context, flight chan struct{}, proactive, probing bool) bool {
	resp, err := c.Fetch(ctx, c.Device, c.Cell)
	now := clock.Or(c.Clock).Now()
	granted := err == nil && resp.Granted
	c.Metrics.cacheRefreshed(granted, err, proactive)
	if probing {
		c.Metrics.cacheProbed(err == nil)
	}
	tc, _ := eventlog.FromContext(ctx)
	c.Events.Point(tc, "permitplane.cache_refresh",
		"cell", c.Cell, "granted", fmt.Sprintf("%t", granted),
		"ok", fmt.Sprintf("%t", err == nil),
		"proactive", fmt.Sprintf("%t", proactive))

	c.mu.Lock()
	defer c.mu.Unlock()
	defer close(flight)
	c.flight = nil
	entered := c.noteBreakerLocked(err, probing, now)
	if entered {
		c.Metrics.cacheDegradedEnter()
		c.Events.Point(tc, "permitplane.cache_degraded",
			"cell", c.Cell, "fail_open", fmt.Sprintf("%t", c.FailOpen))
	}
	switch {
	case err != nil && c.haveState && now.Before(c.expires):
		// A failed proactive refresh must not revoke a permit the
		// backend granted for a TTL that has not lapsed; retry shortly
		// and keep serving the cached verdict until real expiry.
		c.refreshAt = now.Add(errorCooldown)
		return c.granted
	case err != nil && c.degraded:
		// The degraded verdict is recomputed per call, never cached:
		// the fail-open grace boundary stays exact (honoured one second
		// before it, rejected one second after).
		v, stale := c.degradedVerdictLocked(now)
		c.Metrics.cacheDegradedServed(stale)
		return v
	case err != nil:
		c.haveState = true
		c.granted = false
		c.expires = now.Add(errorCooldown)
		c.refreshAt = c.expires
		return false
	}
	c.haveState = true
	c.granted = resp.Granted
	ttl := time.Duration(resp.TTLSeconds * float64(time.Second))
	if !resp.Granted || ttl <= 0 {
		c.expires = now.Add(denyCooldown)
		c.refreshAt = c.expires
		return c.granted
	}
	c.expires = now.Add(ttl)
	c.grantExpiry = c.expires
	lo, hi := c.window()
	frac := lo + (hi-lo)*JitterFrac(c.Seed, c.Device, c.draws)
	c.draws++
	c.refreshAt = now.Add(time.Duration(frac * float64(ttl)))
	return c.granted
}

// noteBreakerLocked advances the circuit breaker on one refresh result
// and reports whether the cache just entered degraded mode. A success
// re-closes the breaker; a failed probe re-opens with a doubled
// cooldown; reaching the threshold of consecutive failures while
// closed opens it.
func (c *Cache) noteBreakerLocked(err error, probing bool, now time.Time) (entered bool) {
	if err == nil {
		c.degraded = false
		c.consecFails = 0
		c.cooldown = 0
		return false
	}
	th := c.breakerThreshold()
	switch {
	case probing:
		c.cooldown *= 2
		if m := c.breakerMaxCooldown(); c.cooldown > m {
			c.cooldown = m
		}
		c.probeAt = now.Add(c.cooldown)
	case !c.degraded && th > 0:
		c.consecFails++
		if c.consecFails >= th {
			c.degraded = true
			c.cooldown = c.breakerCooldown()
			c.probeAt = now.Add(c.cooldown)
			return true
		}
	}
	return false
}

// Invalidate drops the cached permit, forcing a refresh on next use.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.haveState = false
	c.expires = time.Time{}
	c.refreshAt = time.Time{}
}
