// Package clock provides an injectable wall-clock abstraction. Components
// that genuinely operate in real time (the netem shapers pacing real TCP
// connections, the scheduler timing real transfers, RRC state machines)
// take a Clock instead of calling the time package directly, so tests can
// substitute a fake and the 3golvet wallclock analyzer can verify that no
// simulation code reads wall time behind the virtual clock's back.
//
// Purely virtual-time simulations use internal/simclock instead; this
// package is for code that must eventually sleep for real.
package clock

import "time"

// Clock is a source of wall-clock time and real sleeps.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
	Sleep(d time.Duration)
}

// System is the process-wide real clock. These three methods are the
// repository's only sanctioned direct wall-clock calls outside of
// daemons, tests and annotated real-time protocol code.
var System Clock = sysClock{}

type sysClock struct{}

func (sysClock) Now() time.Time { return time.Now() } //3golvet:allow wallclock

func (sysClock) Since(t time.Time) time.Duration { return time.Since(t) } //3golvet:allow wallclock

func (sysClock) Sleep(d time.Duration) { time.Sleep(d) } //3golvet:allow wallclock

// Or returns c, or System when c is nil — the standard way for a struct
// with an optional Clock field to resolve its time source.
func Or(c Clock) Clock {
	if c == nil {
		return System
	}
	return c
}
