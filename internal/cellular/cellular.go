// Package cellular models a UMTS/HSPA deployment: base stations with one
// or more sectors, per-sector shared HSDPA (downlink) and HSUPA (uplink)
// channels, per-tower backhaul, per-device radio conditions, an RRC state
// machine with promotion delays, and diurnal background load from the
// cell's other subscribers.
//
// It is the stand-in for the real base stations the paper measures in §3:
// the quantities the paper reports — aggregate throughput versus number of
// devices (Fig. 3), per-device throughput versus hour of day (Fig. 4), and
// per-base-station throughput distributions (Fig. 5, Table 3) — emerge
// from channel sharing, radio caps and background load, all represented
// here on top of the linksim fluid simulator.
package cellular

import (
	"fmt"
	"math/rand"

	"threegol/internal/diurnal"
	"threegol/internal/linksim"
)

// Params holds the physical-layer and RRC constants of the model.
// Defaults follow published HSPA characteristics cited in the paper.
type Params struct {
	// HSDPACellCap is the nominal capacity of one sector's shared
	// downlink channel in bits/s (HSDPA Cat-20 class cells; the paper's
	// devices are HSDPA Category 20 / HSUPA Category 6).
	HSDPACellCap float64
	// HSUPACellCap is the nominal capacity of one sector's shared uplink
	// channel in bits/s. The paper cites 5.76 Mbps as the HSUPA maximum
	// and observes an aggregate plateau near 5 Mbps.
	HSUPACellCap float64
	// BackhaulCap is the tower's backhaul capacity per direction in
	// bits/s (the paper assumes 40–50 Mbps per tower).
	BackhaulCap float64
	// DLDedicatedFloor and ULDedicatedFloor are the dedicated-channel
	// rates a device falls back to under good radio conditions when the
	// shared channels give it nothing (360 / 64 kbps per the paper).
	DLDedicatedFloor float64
	ULDedicatedFloor float64
	// PromotionIdle and PromotionFACH are RRC promotion delays in seconds
	// from IDLE and FACH to DCH respectively.
	PromotionIdle float64
	PromotionFACH float64
	// DCHInactivity and FACHInactivity are the demotion timers: DCH→FACH
	// after DCHInactivity idle seconds, FACH→IDLE after FACHInactivity.
	DCHInactivity  float64
	FACHInactivity float64
	// RefreshInterval is how often (simulated seconds) background load is
	// re-applied to the shared channels.
	RefreshInterval float64
	// FadingMean/FadingStd/FadingLo/FadingHi parameterise the truncated-
	// normal per-transfer fading multiplier applied to a device's radio
	// cap. A mean below 1 reflects that typical indoor radio conditions
	// sit well below the technology's best case (the paper's Table 3:
	// single-device downlink mean 1.61 Mbps against a 2.65 Mbps max).
	FadingMean float64
	FadingStd  float64
	FadingLo   float64
	FadingHi   float64
	// RadioCapsFunc maps a device's signal strength (dBm) to its
	// per-device downlink/uplink rate ceilings; nil selects the HSPA
	// mapping (RadioCaps). LTEParams installs the LTE mapping.
	RadioCapsFunc func(signalDBm float64) (dl, ul float64)
}

// LTEParams returns constants for a 4G/LTE deployment — the paper's
// §2.3 outlook ("with the reduced latency, and the large increase of
// bandwidth, the period of powerboosting time might be extremely
// short"): a 10 MHz LTE sector carries ≈35/12 Mbps usable DL/UL, RRC
// idle→connected takes ≈100 ms, and per-device rates reach tens of Mbps.
func LTEParams() Params {
	p := DefaultParams()
	p.HSDPACellCap = 35 * linksim.Mbps
	p.HSUPACellCap = 12 * linksim.Mbps
	p.BackhaulCap = 150 * linksim.Mbps
	p.PromotionIdle = 0.1
	p.PromotionFACH = 0.02
	p.RadioCapsFunc = LTERadioCaps
	return p
}

// DefaultParams returns the model constants used throughout the paper's
// reproduction.
func DefaultParams() Params {
	return Params{
		HSDPACellCap:     7.2 * linksim.Mbps,
		HSUPACellCap:     5.76 * linksim.Mbps,
		BackhaulCap:      40 * linksim.Mbps,
		DLDedicatedFloor: 360 * linksim.Kbps,
		ULDedicatedFloor: 64 * linksim.Kbps,
		PromotionIdle:    2.0,
		PromotionFACH:    0.6,
		DCHInactivity:    5,
		FACHInactivity:   12,
		RefreshInterval:  60,
		FadingMean:       0.65,
		FadingStd:        0.25,
		FadingLo:         0.25,
		FadingHi:         1.05,
	}
}

// Network is a deployment of base stations sharing a fluid simulator.
type Network struct {
	sim    *linksim.Simulator
	rng    *rand.Rand
	params Params
	bs     []*BaseStation

	activeTransfers int
	refreshing      bool
}

// NewNetwork creates an empty deployment. rng drives fading, promotion
// jitter and attachment tie-breaking; pass a seeded source for
// reproducible experiments.
func NewNetwork(sim *linksim.Simulator, rng *rand.Rand, p Params) *Network {
	return &Network{sim: sim, rng: rng, params: p}
}

// Sim returns the underlying fluid simulator.
func (n *Network) Sim() *linksim.Simulator { return n.sim }

// Params returns the model constants.
func (n *Network) Params() Params { return n.params }

// BaseStation is a tower with shared backhaul and one or more sectors.
type BaseStation struct {
	name    string
	net     *Network
	bhDL    *linksim.Link
	bhUL    *linksim.Link
	sectors []*Cell
}

// BaseStationConfig describes one tower.
type BaseStationConfig struct {
	Name    string
	Sectors int
	// Load is the diurnal background-utilisation shape of the sector's
	// shared channels; PeakUtilDL/PeakUtilUL scale it per direction
	// (e.g. PeakUtilDL 0.6 means the busiest hour's other subscribers
	// consume 60% of the shared downlink channel). A zero PeakUtilUL
	// inherits PeakUtilDL.
	Load       diurnal.Profile
	PeakUtilDL float64
	PeakUtilUL float64
	// CapScale scales the nominal per-sector *downlink* capacity,
	// letting presets model better or worse provisioned cells (extra
	// HSDPA carriers). The uplink stays at the HSUPA technology cap —
	// which is why the paper sees uplink aggregation plateau near
	// 5 Mbps while downlink keeps scaling. Zero means 1.
	CapScale float64
}

// AddBaseStation creates a tower. It panics on a non-positive sector
// count (a configuration error).
func (n *Network) AddBaseStation(cfg BaseStationConfig) *BaseStation {
	if cfg.Sectors <= 0 {
		panic(fmt.Sprintf("cellular: base station %q with %d sectors", cfg.Name, cfg.Sectors))
	}
	scale := cfg.CapScale
	if scale == 0 {
		scale = 1
	}
	utilUL := cfg.PeakUtilUL
	if utilUL == 0 {
		utilUL = cfg.PeakUtilDL
	}
	bs := &BaseStation{
		name: cfg.Name,
		net:  n,
		bhDL: n.sim.NewLink(cfg.Name+"/bh-dl", n.params.BackhaulCap),
		bhUL: n.sim.NewLink(cfg.Name+"/bh-ul", n.params.BackhaulCap),
	}
	for i := 0; i < cfg.Sectors; i++ {
		c := &Cell{
			name:       fmt.Sprintf("%s/s%d", cfg.Name, i),
			bs:         bs,
			nominalDL:  n.params.HSDPACellCap * scale,
			nominalUL:  n.params.HSUPACellCap,
			load:       cfg.Load,
			peakUtilDL: cfg.PeakUtilDL,
			peakUtilUL: utilUL,
		}
		c.dl = n.sim.NewLink(c.name+"/hsdpa", c.nominalDL)
		c.ul = n.sim.NewLink(c.name+"/hsupa", c.nominalUL)
		c.refresh()
		bs.sectors = append(bs.sectors, c)
	}
	n.bs = append(n.bs, bs)
	return bs
}

// Name returns the tower name.
func (b *BaseStation) Name() string { return b.name }

// Sectors returns the tower's cells.
func (b *BaseStation) Sectors() []*Cell { return b.sectors }

// RefreshLoad re-applies the diurnal background utilisation to every
// sector at the current virtual time. Transfers call it implicitly; it is
// exported for harnesses that read free-capacity figures while idle.
func (n *Network) RefreshLoad() {
	for _, c := range n.cells() {
		c.refresh()
	}
}

// ensureRefresh refreshes background load now and keeps refreshing every
// RefreshInterval for as long as transfers remain active, so long
// transfers see capacity vary across hours without leaving an unbounded
// event chain behind (which would keep clock.Run from draining).
func (n *Network) ensureRefresh() {
	n.RefreshLoad()
	if n.refreshing {
		return
	}
	n.refreshing = true
	var tick func()
	tick = func() {
		if n.activeTransfers == 0 {
			n.refreshing = false
			return
		}
		n.RefreshLoad()
		n.sim.Clock().After(n.params.RefreshInterval, tick)
	}
	n.sim.Clock().After(n.params.RefreshInterval, tick)
}

// Cell is one sector: a shared HSDPA downlink channel and a shared HSUPA
// uplink channel, both drained by diurnal background load.
type Cell struct {
	name       string
	bs         *BaseStation
	dl, ul     *linksim.Link
	nominalDL  float64
	nominalUL  float64
	load       diurnal.Profile
	peakUtilDL float64
	peakUtilUL float64
	attached   int
	onloadDL   float64
	onloadUL   float64
}

// refresh applies the current background utilisation — and any admitted
// onloading load — to the shared channels.
func (c *Cell) refresh() {
	shape := c.load.AtTime(c.bs.net.sim.Clock().Now())
	c.dl.SetCapacity(capAfterLoad(c.nominalDL, shape*c.peakUtilDL, c.onloadDL))
	c.ul.SetCapacity(capAfterLoad(c.nominalUL, shape*c.peakUtilUL, c.onloadUL))
}

// capAfterLoad deducts background utilisation and admitted onloading
// load from a channel's nominal capacity, never dropping below the
// 5% floor that clampUtil guarantees for background load alone.
func capAfterLoad(nominal, bgUtil, onload float64) float64 {
	remaining := nominal*(1-clampUtil(bgUtil)) - onload
	if floor := nominal * 0.05; remaining < floor {
		return floor
	}
	return remaining
}

// SetOnloadBps registers externally-admitted onloading load on the
// sector's shared channels, in bits/s per direction. The permit plane's
// admission loop calls it as permits are granted and as they expire, so
// granted load feeds back into the very utilisation signal the next
// grant decision reads — the closed network-integrated loop of §5.
// Negative values clamp to zero.
func (c *Cell) SetOnloadBps(dl, ul float64) {
	if dl < 0 {
		dl = 0
	}
	if ul < 0 {
		ul = 0
	}
	c.onloadDL, c.onloadUL = dl, ul
	c.refresh()
}

// LoadFactor reports, per direction, the fraction of the sector's
// nominal shared capacity currently unavailable — background
// subscribers, admitted onloading load, and active transfers combined.
// Unlike Utilization, which only sees flows inside the fluid simulator,
// it also accounts for capacity ceded to background load and onloading,
// which is what makes it the permit plane's congestion signal.
func (c *Cell) LoadFactor() (dl, ul float64) {
	return 1 - c.DownlinkFree()/c.nominalDL, 1 - c.UplinkFree()/c.nominalUL
}

// Congestion is the max of the two LoadFactor directions — the scalar
// the permit backend compares against its acceptance threshold.
func (c *Cell) Congestion() float64 {
	dl, ul := c.LoadFactor()
	if ul > dl {
		return ul
	}
	return dl
}

func clampUtil(u float64) float64 {
	if u > 0.95 {
		return 0.95
	}
	if u < 0 {
		return 0
	}
	return u
}

// Name returns the sector name.
func (c *Cell) Name() string { return c.name }

// BaseStation returns the owning tower.
func (c *Cell) BaseStation() *BaseStation { return c.bs }

// Attached returns the number of devices currently attached.
func (c *Cell) Attached() int { return c.attached }

// DownlinkFree and UplinkFree report the sector's current free shared
// capacity in bits/s — what the 3GOL backend's monitoring hook inspects.
func (c *Cell) DownlinkFree() float64 {
	return c.dl.Capacity() * (1 - c.dl.Utilization())
}

// UplinkFree reports free shared uplink capacity in bits/s.
func (c *Cell) UplinkFree() float64 {
	return c.ul.Capacity() * (1 - c.ul.Utilization())
}

// Utilization returns the max of downlink and uplink utilisation — the
// congestion signal consumed by the permit backend.
func (c *Cell) Utilization() float64 {
	d, u := c.dl.Utilization(), c.ul.Utilization()
	if u > d {
		return u
	}
	return d
}

// cells returns every sector in the deployment.
func (n *Network) cells() []*Cell {
	var out []*Cell
	for _, bs := range n.bs {
		out = append(out, bs.sectors...)
	}
	return out
}

// BaseStations returns the deployment's towers.
func (n *Network) BaseStations() []*BaseStation { return n.bs }
