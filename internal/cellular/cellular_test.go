package cellular

import (
	"math"
	"math/rand"
	"testing"

	"threegol/internal/diurnal"
	"threegol/internal/linksim"
	"threegol/internal/simclock"
)

func quietNetwork(t *testing.T, sectors int) (*Network, *linksim.Simulator) {
	t.Helper()
	sim := linksim.New(simclock.New())
	net := NewNetwork(sim, rand.New(rand.NewSource(1)), DefaultParams())
	net.AddBaseStation(BaseStationConfig{
		Name:    "bs0",
		Sectors: sectors,
		// Zero background load so rates are deterministic up to fading.
		Load: diurnal.New([24]float64{}),
	})
	return net, sim
}

func noFadingParams() Params {
	p := DefaultParams()
	p.FadingMean = 1
	p.FadingStd = 0
	p.FadingLo = 1
	p.FadingHi = 1
	return p
}

func TestAttachPrefersLeastLoadedSector(t *testing.T) {
	net, _ := quietNetwork(t, 2)
	d1 := net.Attach("d1", -85)
	d2 := net.Attach("d2", -85)
	d3 := net.Attach("d3", -85)
	if d1.Cell() == d2.Cell() {
		t.Error("first two devices should land on different sectors")
	}
	if d3.Cell().Attached() != 2 && d1.Cell().Attached() != 2 {
		t.Error("third device should join one of the sectors, making it 2")
	}
}

func TestAttachPanicsWithoutBaseStations(t *testing.T) {
	sim := linksim.New(simclock.New())
	net := NewNetwork(sim, rand.New(rand.NewSource(1)), DefaultParams())
	defer func() {
		if recover() == nil {
			t.Error("Attach with no cells did not panic")
		}
	}()
	net.Attach("d", -85)
}

func TestRadioCapsMonotoneInSignal(t *testing.T) {
	prevDL, prevUL := -1.0, -1.0
	for sig := -110.0; sig <= -70; sig += 5 {
		dl, ul := radioCaps(sig)
		if dl < prevDL || ul < prevUL {
			t.Fatalf("caps not monotone at %v dBm: dl=%v ul=%v", sig, dl, ul)
		}
		if ul >= dl {
			t.Errorf("uplink cap %v should be below downlink %v at %v dBm", ul, dl, sig)
		}
		prevDL, prevUL = dl, ul
	}
	// Anchors: strong signal approaches the paper's per-device maxima.
	dl, ul := radioCaps(-75)
	if dl < 3.0*linksim.Mbps || dl > 3.6*linksim.Mbps {
		t.Errorf("strong-signal DL cap = %v Mbps, want ≈3.3", dl/linksim.Mbps)
	}
	if ul > 2.45*linksim.Mbps {
		t.Errorf("UL cap %v exceeds HSUPA per-device ceiling", ul/linksim.Mbps)
	}
}

func TestSingleTransferThroughput(t *testing.T) {
	sim := linksim.New(simclock.New())
	net := NewNetwork(sim, rand.New(rand.NewSource(1)), noFadingParams())
	net.AddBaseStation(BaseStationConfig{Name: "bs", Sectors: 1, Load: diurnal.New([24]float64{})})
	d := net.Attach("d", -82)
	d.WarmUp() // no promotion delay
	var done *Transfer
	d.StartTransfer(Downlink, 2*linksim.MB, func(tr *Transfer) { done = tr })
	sim.Run()
	if done == nil {
		t.Fatal("transfer did not complete")
	}
	dl, _ := d.RadioCaps()
	if got := done.Throughput(); !approx(got, dl, 0.01) {
		t.Errorf("throughput = %v, want radio cap %v", got, dl)
	}
	if done.AcquisitionDelay() != 0 {
		t.Errorf("warm device paid acquisition delay %v", done.AcquisitionDelay())
	}
}

func TestIdleStartPaysPromotionDelay(t *testing.T) {
	sim := linksim.New(simclock.New())
	net := NewNetwork(sim, rand.New(rand.NewSource(1)), noFadingParams())
	net.AddBaseStation(BaseStationConfig{Name: "bs", Sectors: 1, Load: diurnal.New([24]float64{})})
	d := net.Attach("d", -82)
	if d.RRC() != RRCIdle {
		t.Fatalf("fresh device RRC = %v, want IDLE", d.RRC())
	}
	var cold *Transfer
	d.StartTransfer(Downlink, 2*linksim.MB, func(tr *Transfer) { cold = tr })
	sim.Run()
	if cold.AcquisitionDelay() < 1.5 || cold.AcquisitionDelay() > 2.5 {
		t.Errorf("idle acquisition delay = %v, want ≈2±20%%", cold.AcquisitionDelay())
	}
	// Same size transferred warm must be faster by about the delay.
	d2 := net.Attach("d2", -82)
	d2.WarmUp()
	var warm *Transfer
	d2.StartTransfer(Downlink, 2*linksim.MB, func(tr *Transfer) { warm = tr })
	sim.Run()
	if warm.Duration() >= cold.Duration() {
		t.Errorf("warm %vs not faster than cold %vs", warm.Duration(), cold.Duration())
	}
}

func TestRRCDemotionWalk(t *testing.T) {
	sim := linksim.New(simclock.New())
	net := NewNetwork(sim, rand.New(rand.NewSource(1)), noFadingParams())
	net.AddBaseStation(BaseStationConfig{Name: "bs", Sectors: 1, Load: diurnal.New([24]float64{})})
	d := net.Attach("d", -82)
	d.WarmUp()
	d.StartTransfer(Downlink, 1*linksim.MB, nil)
	sim.Run() // transfer + demotion timers all fire
	if d.RRC() != RRCIdle {
		t.Errorf("RRC after full drain = %v, want IDLE", d.RRC())
	}
}

func TestRRCStaysDCHBetweenBackToBackTransfers(t *testing.T) {
	sim := linksim.New(simclock.New())
	net := NewNetwork(sim, rand.New(rand.NewSource(1)), noFadingParams())
	net.AddBaseStation(BaseStationConfig{Name: "bs", Sectors: 1, Load: diurnal.New([24]float64{})})
	d := net.Attach("d", -82)
	d.WarmUp()
	var second *Transfer
	d.StartTransfer(Downlink, 1*linksim.MB, func(*Transfer) {
		// Immediately chain another: still DCH, no delay.
		second = d.StartTransfer(Downlink, 1*linksim.MB, nil)
	})
	sim.Run()
	if second == nil || second.AcquisitionDelay() != 0 {
		t.Errorf("back-to-back transfer paid delay: %+v", second)
	}
}

func TestSharedChannelSplitsAcrossDevices(t *testing.T) {
	sim := linksim.New(simclock.New())
	net := NewNetwork(sim, rand.New(rand.NewSource(1)), noFadingParams())
	net.AddBaseStation(BaseStationConfig{Name: "bs", Sectors: 1, Load: diurnal.New([24]float64{})})
	// Enough devices that the shared channel, not radio caps, binds.
	const n = 6
	durations := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		d := net.AttachTo("d", -75, net.BaseStations()[0].Sectors()[0])
		d.WarmUp()
		d.StartTransfer(Downlink, 2*linksim.MB, func(tr *Transfer) {
			durations = append(durations, tr.Duration())
		})
	}
	sim.Run()
	if len(durations) != n {
		t.Fatalf("%d of %d transfers completed", len(durations), n)
	}
	// Aggregate ≈ cell capacity: n transfers of 16 Mbit over 7.2 Mbps
	// shared channel ≈ 13.3 s each (all equal, all finish together).
	want := float64(n) * 2 * linksim.MB / (7.2 * linksim.Mbps)
	for _, dur := range durations {
		if !approx(dur, want, 0.02) {
			t.Errorf("duration = %v, want ≈%v (channel-bound)", dur, want)
		}
	}
}

func TestHSUPAPlateau(t *testing.T) {
	// The paper's Fig 3: uplink aggregation plateaus near the HSUPA cell
	// capacity at ~5 devices. With one sector, aggregate uplink must not
	// exceed HSUPACellCap regardless of device count.
	sim := linksim.New(simclock.New())
	net := NewNetwork(sim, rand.New(rand.NewSource(1)), noFadingParams())
	net.AddBaseStation(BaseStationConfig{Name: "bs", Sectors: 1, Load: diurnal.New([24]float64{})})
	cell := net.BaseStations()[0].Sectors()[0]
	const n = 8
	var lastEnd float64
	for i := 0; i < n; i++ {
		d := net.AttachTo("d", -75, cell)
		d.WarmUp()
		d.StartTransfer(Uplink, 2*linksim.MB, func(tr *Transfer) {
			if tr.end > lastEnd {
				lastEnd = tr.end
			}
		})
	}
	sim.Run()
	aggregate := float64(n) * 2 * linksim.MB / lastEnd
	if aggregate > net.Params().HSUPACellCap*1.001 {
		t.Errorf("uplink aggregate %v exceeds HSUPA capacity %v",
			aggregate, net.Params().HSUPACellCap)
	}
	if aggregate < 0.9*net.Params().HSUPACellCap {
		t.Errorf("uplink aggregate %v should saturate near %v",
			aggregate, net.Params().HSUPACellCap)
	}
}

func TestMultiSectorExceedsSingleCellUplink(t *testing.T) {
	// Loc3 behaviour: devices on different sectors can jointly exceed one
	// sector's HSUPA capacity.
	sim := linksim.New(simclock.New())
	net := NewNetwork(sim, rand.New(rand.NewSource(1)), noFadingParams())
	net.AddBaseStation(BaseStationConfig{Name: "bs", Sectors: 2, Load: diurnal.New([24]float64{})})
	var lastEnd float64
	const n = 8
	for i := 0; i < n; i++ {
		d := net.Attach("d", -75) // least-loaded attach spreads sectors
		d.WarmUp()
		d.StartTransfer(Uplink, 2*linksim.MB, func(tr *Transfer) {
			if tr.end > lastEnd {
				lastEnd = tr.end
			}
		})
	}
	sim.Run()
	aggregate := float64(n) * 2 * linksim.MB / lastEnd
	if aggregate <= net.Params().HSUPACellCap {
		t.Errorf("two-sector aggregate %v should exceed one cell's %v",
			aggregate, net.Params().HSUPACellCap)
	}
}

func TestBackgroundLoadReducesThroughput(t *testing.T) {
	// Same transfer at trough vs peak hour: peak must be slower.
	run := func(hour float64, peakUtil float64) float64 {
		clock := simclock.New()
		sim := linksim.New(clock)
		net := NewNetwork(sim, rand.New(rand.NewSource(1)), noFadingParams())
		net.AddBaseStation(BaseStationConfig{
			Name: "bs", Sectors: 1, Load: diurnal.Mobile, PeakUtilDL: peakUtil,
		})
		clock.RunUntil(hour * 3600)
		// Many devices so the shared channel binds.
		var lastEnd float64
		for i := 0; i < 6; i++ {
			d := net.Attach("d", -75)
			d.WarmUp()
			d.StartTransfer(Downlink, 2*linksim.MB, func(tr *Transfer) {
				if tr.end > lastEnd {
					lastEnd = tr.end
				}
			})
		}
		sim.Run()
		return 6 * 2 * linksim.MB / (lastEnd - hour*3600)
	}
	trough := run(4, 0.8) // 4 am
	peak := run(21, 0.8)  // 9 pm
	if peak >= trough {
		t.Errorf("peak-hour aggregate %v not below trough %v", peak, trough)
	}
}

func TestAbortTransferMidFlight(t *testing.T) {
	sim := linksim.New(simclock.New())
	net := NewNetwork(sim, rand.New(rand.NewSource(1)), noFadingParams())
	net.AddBaseStation(BaseStationConfig{Name: "bs", Sectors: 1, Load: diurnal.New([24]float64{})})
	d := net.Attach("d", -82)
	d.WarmUp()
	called := false
	tr := d.StartTransfer(Downlink, 100*linksim.MB, func(*Transfer) { called = true })
	sim.Clock().After(1, func() { tr.Abort() })
	sim.Run()
	if called {
		t.Error("aborted transfer fired its callback")
	}
	if !tr.Done() {
		t.Error("aborted transfer should report Done")
	}
	if net.activeTransfers != 0 {
		t.Errorf("activeTransfers = %d after abort, want 0", net.activeTransfers)
	}
}

func TestCellFreeCapacityAccounting(t *testing.T) {
	sim := linksim.New(simclock.New())
	net := NewNetwork(sim, rand.New(rand.NewSource(1)), noFadingParams())
	net.AddBaseStation(BaseStationConfig{Name: "bs", Sectors: 1, Load: diurnal.New([24]float64{})})
	cell := net.BaseStations()[0].Sectors()[0]
	if got := cell.Utilization(); got != 0 {
		t.Errorf("idle utilization = %v, want 0", got)
	}
	free0 := cell.DownlinkFree()
	d := net.Attach("d", -82)
	d.WarmUp()
	d.StartTransfer(Downlink, 100*linksim.MB, nil)
	sim.RunUntil(1)
	if cell.DownlinkFree() >= free0 {
		t.Error("free capacity did not shrink under load")
	}
	if cell.Utilization() <= 0 {
		t.Error("utilization should be positive under load")
	}
}

func TestBuildSitePresets(t *testing.T) {
	for _, p := range MeasurementLocations {
		site := BuildSite(p, 42)
		if got := len(site.Network.BaseStations()); got != p.NumBS {
			t.Errorf("%s: %d base stations, want %d", p.Name, got, p.NumBS)
		}
		wantHour := p.Hour
		if wantHour < 0 {
			wantHour = 10
		}
		if got := site.Sim.Clock().Now(); !approx(got, wantHour*3600, 1e-9) {
			t.Errorf("%s: clock at %v, want %v", p.Name, got, wantHour*3600)
		}
		devs := site.AttachDevices(3)
		if len(devs) != 3 {
			t.Fatalf("%s: attached %d devices", p.Name, len(devs))
		}
		for _, d := range devs {
			if math.Abs(d.Signal()-p.SignalDBm) > 3 {
				t.Errorf("%s: device signal %v too far from preset %v",
					p.Name, d.Signal(), p.SignalDBm)
			}
		}
	}
}

func TestFindLocation(t *testing.T) {
	if _, ok := FindLocation(MeasurementLocations, "loc3"); !ok {
		t.Error("loc3 not found")
	}
	if _, ok := FindLocation(MeasurementLocations, "nowhere"); ok {
		t.Error("bogus location found")
	}
}

func TestTransferPanicsOnZeroBits(t *testing.T) {
	net, _ := quietNetwork(t, 1)
	d := net.Attach("d", -85)
	defer func() {
		if recover() == nil {
			t.Error("zero-bit transfer did not panic")
		}
	}()
	d.StartTransfer(Downlink, 0, nil)
}

func TestDirectionString(t *testing.T) {
	if Downlink.String() != "downlink" || Uplink.String() != "uplink" {
		t.Error("Direction.String mismatch")
	}
	if RRCIdle.String() != "IDLE" || RRCFach.String() != "FACH" || RRCDch.String() != "DCH" {
		t.Error("RRCState.String mismatch")
	}
}

func approx(got, want, tol float64) bool {
	if want == 0 {
		return math.Abs(got) <= tol
	}
	return math.Abs(got-want) <= tol*math.Abs(want)
}
