package cellular

import (
	"fmt"
	"math/rand"

	"threegol/internal/diurnal"
	"threegol/internal/linksim"
	"threegol/internal/simclock"
)

// LocationPreset captures one of the paper's measurement or evaluation
// sites: the local ADSL speed, the cellular deployment density and
// provisioning around it, and the radio conditions a device sees there.
type LocationPreset struct {
	Name        string
	Description string
	// Hour is the paper's measurement hour for the site (−1 when the
	// paper lists n/a).
	Hour float64
	// ADSL downlink/uplink sync rates in bits/s.
	DSLDown, DSLUp float64
	// Deployment shape.
	NumBS        int
	SectorsPerBS int
	CapScale     float64
	// Peak background utilisation of the shared channels (scaled by the
	// diurnal mobile curve).
	PeakUtilDL, PeakUtilUL float64
	// SignalDBm is the typical signal strength devices see at the site.
	SignalDBm float64
	// Balanced marks dense deployments (the paper's Location 3, a
	// tourist hub) where devices naturally spread across sectors and
	// towers; elsewhere every device camps on the primary best-server
	// cell, which is what makes the uplink plateau at one cell's HSUPA
	// capacity.
	Balanced bool
	// Paper3GDown/Up record the paper's measured 3-device aggregate 3G
	// throughput (bits/s) for Table 2 comparisons; zero when unreported.
	Paper3GDown, Paper3GUp float64
}

// MeasurementLocations are the six sites of the paper's §3 active
// measurement study (Table 2).
var MeasurementLocations = []LocationPreset{
	{
		Name:        "loc1",
		Description: "Densely populated residential area (city center)",
		Hour:        1,
		DSLDown:     3.44 * linksim.Mbps, DSLUp: 0.30 * linksim.Mbps,
		NumBS: 2, SectorsPerBS: 1, CapScale: 2.0,
		PeakUtilDL: 0.50, PeakUtilUL: 0.45,
		SignalDBm:   -82,
		Paper3GDown: 5.73 * linksim.Mbps, Paper3GUp: 3.58 * linksim.Mbps,
	},
	{
		Name:        "loc2",
		Description: "Office area at rush hour",
		Hour:        16,
		DSLDown:     4.51 * linksim.Mbps, DSLUp: 0.47 * linksim.Mbps,
		NumBS: 2, SectorsPerBS: 1, CapScale: 1.0,
		PeakUtilDL: 0.79, PeakUtilUL: 0.98,
		SignalDBm:   -85,
		Paper3GDown: 2.94 * linksim.Mbps, Paper3GUp: 1.52 * linksim.Mbps,
	},
	{
		Name:        "loc3",
		Description: "Residential area in tourist hotspot",
		Hour:        22,
		DSLDown:     6.72 * linksim.Mbps, DSLUp: 0.84 * linksim.Mbps,
		NumBS: 2, SectorsPerBS: 2, CapScale: 1.0,
		PeakUtilDL: 0.50, PeakUtilUL: 0.50,
		SignalDBm:   -102,
		Balanced:    true,
		Paper3GDown: 2.08 * linksim.Mbps, Paper3GUp: 1.29 * linksim.Mbps,
	},
	{
		Name:        "loc4",
		Description: "Sparsely populated residential area (suburbs)",
		Hour:        1,
		DSLDown:     2.84 * linksim.Mbps, DSLUp: 0.45 * linksim.Mbps,
		NumBS: 2, SectorsPerBS: 1, CapScale: 1.0,
		PeakUtilDL: 0.40, PeakUtilUL: 0.55,
		SignalDBm:   -88,
		Paper3GDown: 4.55 * linksim.Mbps, Paper3GUp: 2.17 * linksim.Mbps,
	},
	{
		Name:        "loc5",
		Description: "Densely populated residential area (city center)",
		Hour:        -1,
		DSLDown:     8.57 * linksim.Mbps, DSLUp: 0.63 * linksim.Mbps,
		NumBS: 2, SectorsPerBS: 1, CapScale: 1.0,
		PeakUtilDL: 0.74, PeakUtilUL: 0.88,
		SignalDBm:   -86,
		Paper3GDown: 3.88 * linksim.Mbps, Paper3GUp: 2.63 * linksim.Mbps,
	},
	{
		Name:        "loc6",
		Description: "Densely populated residential area (city center)",
		Hour:        -1,
		DSLDown:     55.48 * linksim.Mbps, DSLUp: 11.35 * linksim.Mbps,
		NumBS: 2, SectorsPerBS: 1, CapScale: 1.0,
		PeakUtilDL: 1.09, PeakUtilUL: 1.18,
		SignalDBm:   -94,
		Paper3GDown: 2.32 * linksim.Mbps, Paper3GUp: 1.52 * linksim.Mbps,
	},
}

// EvalLocations are the five residential sites of the in-the-wild
// prototype evaluation (§5, Table 4).
var EvalLocations = []LocationPreset{
	{
		Name: "loc1", Description: "Residential, good coverage",
		Hour:    9,
		DSLDown: 6.48 * linksim.Mbps, DSLUp: 0.83 * linksim.Mbps,
		NumBS: 2, SectorsPerBS: 1, CapScale: 1.0,
		PeakUtilDL: 0.55, PeakUtilUL: 0.55,
		SignalDBm: -81,
	},
	{
		Name: "loc2", Description: "Residential, fast ADSL2+, weak signal",
		Hour:    9,
		DSLDown: 21.64 * linksim.Mbps, DSLUp: 2.77 * linksim.Mbps,
		NumBS: 2, SectorsPerBS: 1, CapScale: 1.0,
		PeakUtilDL: 0.55, PeakUtilUL: 0.55,
		SignalDBm: -95,
	},
	{
		Name: "loc3", Description: "Residential, weakest signal",
		Hour:    9,
		DSLDown: 8.67 * linksim.Mbps, DSLUp: 0.62 * linksim.Mbps,
		NumBS: 2, SectorsPerBS: 1, CapScale: 1.0,
		PeakUtilDL: 0.60, PeakUtilUL: 0.60,
		SignalDBm: -97,
	},
	{
		Name: "loc4", Description: "Residential, slowest ADSL",
		Hour:    9,
		DSLDown: 6.20 * linksim.Mbps, DSLUp: 0.65 * linksim.Mbps,
		NumBS: 2, SectorsPerBS: 1, CapScale: 1.0,
		PeakUtilDL: 0.55, PeakUtilUL: 0.55,
		SignalDBm: -89,
	},
	{
		Name: "loc5", Description: "Residential",
		Hour:    9,
		DSLDown: 6.82 * linksim.Mbps, DSLUp: 0.58 * linksim.Mbps,
		NumBS: 2, SectorsPerBS: 1, CapScale: 1.0,
		PeakUtilDL: 0.55, PeakUtilUL: 0.55,
		SignalDBm: -89,
	},
}

// FindLocation returns the preset with the given name from the slice, or
// false when absent.
func FindLocation(presets []LocationPreset, name string) (LocationPreset, bool) {
	for _, p := range presets {
		if p.Name == name {
			return p, true
		}
	}
	return LocationPreset{}, false
}

// Site is a fully built location: a fluid simulator with the preset's
// cellular deployment, positioned at the preset hour.
type Site struct {
	Preset  LocationPreset
	Sim     *linksim.Simulator
	Network *Network
	RNG     *rand.Rand
}

// BuildSite instantiates the preset's deployment on a fresh simulator and
// advances virtual time to the preset's measurement hour (or 10:00 when
// the paper lists n/a).
func BuildSite(p LocationPreset, seed int64) *Site {
	clock := simclock.New()
	sim := linksim.New(clock)
	rng := rand.New(rand.NewSource(seed))
	net := NewNetwork(sim, rng, DefaultParams())
	for i := 0; i < p.NumBS; i++ {
		net.AddBaseStation(BaseStationConfig{
			Name:       p.Name + "/bs" + string(rune('A'+i)),
			Sectors:    p.SectorsPerBS,
			Load:       diurnal.Mobile,
			PeakUtilDL: p.PeakUtilDL,
			PeakUtilUL: p.PeakUtilUL,
			CapScale:   p.CapScale,
		})
	}
	hour := p.Hour
	if hour < 0 {
		hour = 10
	}
	if hour > 0 {
		clock.RunUntil(hour * 3600)
	}
	return &Site{Preset: p, Sim: sim, Network: net, RNG: rng}
}

// AttachDevices creates n devices at the preset's signal strength with
// ±3 dBm per-device variation. At ordinary sites every device camps on
// the primary best-server cell; at Balanced sites (dense deployments)
// devices spread across sectors via least-loaded association.
func (s *Site) AttachDevices(n int) []*Device {
	return s.AttachDevicesPrimary(n, 0)
}

// AttachDevicesPrimary attaches n devices with the given tower as the
// best server — measurement campaigns rotate the primary across days to
// model the re-associations the paper observes ("devices are associated
// with at least two different base stations at all locations").
func (s *Site) AttachDevicesPrimary(n, bsIdx int) []*Device {
	devs := make([]*Device, n)
	towers := s.Network.BaseStations()
	primary := towers[bsIdx%len(towers)].Sectors()[0]
	for i := range devs {
		sig := s.Preset.SignalDBm + float64(s.RNG.Intn(7)-3)
		name := fmt.Sprintf("%s/dev%d", s.Preset.Name, i)
		if s.Preset.Balanced {
			devs[i] = s.Network.Attach(name, sig)
		} else {
			devs[i] = s.Network.AttachTo(name, sig, primary)
		}
	}
	return devs
}
