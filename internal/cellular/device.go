package cellular

import (
	"fmt"
	"math"

	"threegol/internal/linksim"
	"threegol/internal/simclock"
	"threegol/internal/stats"
)

// RRCState is the radio-resource-control state of a device. Transfers
// started from IDLE pay a channel-acquisition delay (the paper's "3G"
// start mode); the "H" mode pre-warms devices to DCH with an ICMP train.
type RRCState int

// RRC states in increasing readiness order.
const (
	RRCIdle RRCState = iota
	RRCFach
	RRCDch
)

// String implements fmt.Stringer.
func (s RRCState) String() string {
	switch s {
	case RRCIdle:
		return "IDLE"
	case RRCFach:
		return "FACH"
	case RRCDch:
		return "DCH"
	default:
		return fmt.Sprintf("RRCState(%d)", int(s))
	}
}

// Device is a handset attached to one sector.
type Device struct {
	name   string
	net    *Network
	cell   *Cell
	signal float64 // dBm

	capDL, capUL float64 // radio-condition rate caps (bits/s)

	rrc        RRCState
	active     int // in-flight transfers
	demoteFach *simclock.Timer
	demoteIdle *simclock.Timer
}

// Attach creates a device at the given signal strength (dBm, e.g. −81 for
// good coverage, −97 for weak) and associates it with the least-loaded
// sector in the deployment — the natural load balancing the paper
// observes when devices land on different sectors of the same tower.
// It panics when the deployment has no cells.
func (n *Network) Attach(name string, signalDBm float64) *Device {
	cells := n.cells()
	if len(cells) == 0 {
		panic("cellular: Attach with no base stations")
	}
	best := cells[0]
	for _, c := range cells[1:] {
		if c.attached < best.attached {
			best = c
		}
	}
	return n.AttachTo(name, signalDBm, best)
}

// AttachTo creates a device pinned to a specific sector.
func (n *Network) AttachTo(name string, signalDBm float64, cell *Cell) *Device {
	d := &Device{
		name:   name,
		net:    n,
		cell:   cell,
		signal: signalDBm,
		rrc:    RRCIdle,
	}
	capsFn := n.params.RadioCapsFunc
	if capsFn == nil {
		capsFn = radioCaps
	}
	d.capDL, d.capUL = capsFn(signalDBm)
	cell.attached++
	return d
}

// RadioCaps maps a signal strength in dBm to the per-device downlink and
// uplink rate ceilings (bits/s) under HSPA radio conditions — the same
// mapping devices receive at attach. Harnesses use it to derive realistic
// phone rates for the prototype-path experiments.
func RadioCaps(signalDBm float64) (dl, ul float64) {
	return radioCaps(signalDBm)
}

// LTERadioCaps is the LTE per-device mapping: Cat-3 class handsets reach
// ≈25 Mbps down / 10 Mbps up under strong signal, degrading towards the
// cell edge like the HSPA curve but from a far higher ceiling.
func LTERadioCaps(signalDBm float64) (dl, ul float64) {
	frac := (signalDBm + 110) / 35 // 0 at −110 dBm, 1 at −75
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	dl = (4 + frac*21) * linksim.Mbps
	ul = dl * (0.30 + 0.12*frac)
	if max := 10 * linksim.Mbps; ul > max {
		ul = max
	}
	return dl, ul
}

// radioCaps maps signal strength to per-device rate ceilings. The anchors
// reproduce the per-device maxima the paper reports (Table 3: downlink up
// to ≈3.4 Mbps, uplink up to ≈2.4 Mbps) degrading towards cell edge.
func radioCaps(signalDBm float64) (dl, ul float64) {
	// Piecewise linear between (−75 dBm → 3.3 Mbps) and (−105 dBm → 0.9).
	frac := (signalDBm + 105) / 30 // 0 at −105, 1 at −75
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	dl = (0.9 + frac*2.4) * linksim.Mbps
	// The uplink degrades faster towards the cell edge than the downlink
	// (handset transmit power is the binding constraint), so the UL/DL
	// ratio itself shrinks with weakening signal.
	ul = dl * (0.45 + 0.27*frac)
	if max := 2.45 * linksim.Mbps; ul > max {
		ul = max
	}
	return dl, ul
}

// Detach removes the device from its serving cell (e.g. before a
// day-scale re-association in a measurement campaign). Using a detached
// device panics on the next transfer via its nil cell.
func (d *Device) Detach() {
	if d.cell != nil {
		d.cell.attached--
		d.cell = nil
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Cell returns the serving sector.
func (d *Device) Cell() *Cell { return d.cell }

// Signal returns the signal strength in dBm.
func (d *Device) Signal() float64 { return d.signal }

// RRC returns the device's current RRC state.
func (d *Device) RRC() RRCState { return d.rrc }

// RadioCaps returns the device's downlink and uplink rate ceilings under
// its radio conditions, before fading, in bits/s.
func (d *Device) RadioCaps() (dl, ul float64) { return d.capDL, d.capUL }

// WarmUp promotes the device straight to DCH, modelling the 0.1 s-spaced
// ICMP train the paper uses to pre-establish the channel ("H" mode).
func (d *Device) WarmUp() {
	d.rrc = RRCDch
	d.armDemotion()
}

// promotionDelay returns the delay a transfer starting now must pay, with
// ±20% jitter, and transitions the device to DCH.
func (d *Device) promotionDelay() float64 {
	var base float64
	switch d.rrc {
	case RRCIdle:
		base = d.net.params.PromotionIdle
	case RRCFach:
		base = d.net.params.PromotionFACH
	case RRCDch:
		return 0
	}
	d.rrc = RRCDch
	jitter := 1 + 0.2*(2*d.net.rng.Float64()-1)
	return base * jitter
}

// armDemotion (re)starts the inactivity timers that walk the device back
// to FACH and then IDLE once no transfer is active.
func (d *Device) armDemotion() {
	d.cancelDemotion()
	if d.active > 0 {
		return
	}
	clock := d.net.sim.Clock()
	d.demoteFach = clock.After(d.net.params.DCHInactivity, func() {
		if d.rrc == RRCDch {
			d.rrc = RRCFach
		}
		d.demoteIdle = clock.After(d.net.params.FACHInactivity, func() {
			if d.rrc == RRCFach {
				d.rrc = RRCIdle
			}
		})
	})
}

func (d *Device) cancelDemotion() {
	if d.demoteFach != nil {
		d.demoteFach.Stop()
		d.demoteFach = nil
	}
	if d.demoteIdle != nil {
		d.demoteIdle.Stop()
		d.demoteIdle = nil
	}
}

// Transfer is an in-flight or completed device transfer.
type Transfer struct {
	dev      *Device
	bits     float64
	start    float64 // request time
	end      float64 // completion time; NaN while in flight
	flow     *linksim.Flow
	done     bool
	acqDelay float64
}

// Direction selects downlink or uplink.
type Direction int

// Transfer directions.
const (
	Downlink Direction = iota
	Uplink
)

// String implements fmt.Stringer.
func (dir Direction) String() string {
	if dir == Uplink {
		return "uplink"
	}
	return "downlink"
}

// StartTransfer begins a transfer of the given size; onDone (optional)
// fires at completion with the finished Transfer. The measured duration
// includes any RRC promotion delay, exactly as the paper's wget/iperf
// probes would observe it.
func (d *Device) StartTransfer(dir Direction, bits float64, onDone func(*Transfer)) *Transfer {
	if bits <= 0 {
		panic(fmt.Sprintf("cellular: transfer of %v bits on %s", bits, d.name))
	}
	clock := d.net.sim.Clock()
	tr := &Transfer{
		dev:   d,
		bits:  bits,
		start: clock.Now(),
		end:   math.NaN(),
	}
	d.active++
	d.net.activeTransfers++
	d.net.ensureRefresh()
	d.cancelDemotion()
	delay := d.promotionDelay()
	tr.acqDelay = delay
	begin := func() {
		var channel, backhaul *linksim.Link
		var cap float64
		if dir == Downlink {
			channel, backhaul, cap = d.cell.dl, d.cell.bs.bhDL, d.capDL
		} else {
			channel, backhaul, cap = d.cell.ul, d.cell.bs.bhUL, d.capUL
		}
		pp := d.net.params
		fading := stats.TruncNormal{
			Mean: pp.FadingMean, Std: pp.FadingStd, Lo: pp.FadingLo, Hi: pp.FadingHi,
		}.Sample(d.net.rng)
		tr.flow = d.net.sim.StartFlow(linksim.FlowSpec{
			Name:    fmt.Sprintf("%s/%s", d.name, dir),
			Bits:    bits,
			RateCap: cap * fading,
			Path:    []*linksim.Link{channel, backhaul},
			OnDone: func(*linksim.Flow) {
				tr.done = true
				tr.end = clock.Now()
				d.active--
				d.net.activeTransfers--
				d.armDemotion()
				if onDone != nil {
					onDone(tr)
				}
			},
		})
	}
	if delay > 0 {
		clock.After(delay, begin)
	} else {
		begin()
	}
	return tr
}

// Abort cancels an in-flight transfer without firing its callback.
func (t *Transfer) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.end = t.dev.net.sim.Clock().Now()
	if t.flow != nil && !t.flow.Done() {
		t.flow.Abort()
	}
	t.dev.active--
	t.dev.net.activeTransfers--
	t.dev.armDemotion()
}

// Done reports whether the transfer has finished or been aborted.
func (t *Transfer) Done() bool { return t.done }

// Duration returns the request-to-completion time in seconds, including
// any RRC acquisition delay; NaN while in flight.
func (t *Transfer) Duration() float64 { return t.end - t.start }

// AcquisitionDelay returns the RRC promotion delay this transfer paid.
func (t *Transfer) AcquisitionDelay() float64 { return t.acqDelay }

// Throughput returns bits/Duration in bits/s; NaN while in flight.
func (t *Transfer) Throughput() float64 {
	dur := t.Duration()
	if !(dur > 0) {
		return math.NaN()
	}
	return t.bits / dur
}

// Bits returns the transfer size.
func (t *Transfer) Bits() float64 { return t.bits }
