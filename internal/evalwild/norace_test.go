//go:build !race

package evalwild

const raceEnabled = false
