// Package evalwild reproduces the paper's §5 "in the wild" prototype
// evaluation over the emulated substrate: the Fig. 6 scheduler shoot-out,
// the Fig. 7 pre-buffer gains, the Fig. 8 full-download reductions and
// the Fig. 9 upload comparison. Every experiment drives the *real*
// prototype components — HLS origin, device proxies, the HLS-aware
// client proxy and the multipath scheduler — over netem-shaped loopback
// TCP, accelerated by a time scale that preserves all ratios.
package evalwild

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"threegol/internal/cellular"
	"threegol/internal/core"
	"threegol/internal/hls"
	"threegol/internal/scheduler"
	"threegol/internal/stats"
)

// Setup fixes global experiment parameters.
type Setup struct {
	// TimeScale accelerates the emulation; 0 selects 60.
	TimeScale float64
	// Seed drives every stochastic component.
	Seed int64
	// Reps is the per-configuration repetition count (the paper runs 30;
	// the default here is 3 to keep regeneration quick — raise it for
	// tighter error bars).
	Reps int
	// Variability is the HSPA rate-process relative std; 0 selects 0.25
	// (the wandering that defeats the MIN estimator).
	Variability float64
}

func (s Setup) withDefaults() Setup {
	if s.TimeScale <= 0 {
		s.TimeScale = 60
	}
	if s.Reps <= 0 {
		s.Reps = 3
	}
	if s.Variability <= 0 {
		s.Variability = 0.25
	}
	return s
}

// phoneConfigs derives phone rates for a location preset from its radio
// conditions (cap × mean fading), matching the cellular model.
func phoneConfigs(preset cellular.LocationPreset, n int, warm bool) []core.PhoneConfig {
	params := cellular.DefaultParams()
	dl, ul := cellular.RadioCaps(preset.SignalDBm)
	out := make([]core.PhoneConfig, n)
	for i := range out {
		out[i] = core.PhoneConfig{
			Name: fmt.Sprintf("ph%d", i+1),
			Down: dl * params.FadingMean,
			Up:   ul * params.FadingMean,
			Warm: warm,
		}
	}
	return out
}

// newHome builds the emulated home for a preset.
func newHome(preset cellular.LocationPreset, phones []core.PhoneConfig, s Setup) (*core.Home, error) {
	return core.NewHome(core.HomeConfig{
		DSLDown:   preset.DSLDown,
		DSLUp:     preset.DSLUp,
		TimeScale: s.TimeScale,
		Phones:    withVariability(phones, s.Variability),
		Seed:      s.Seed,
	})
}

func withVariability(phones []core.PhoneConfig, v float64) []core.PhoneConfig {
	out := append([]core.PhoneConfig(nil), phones...)
	for i := range out {
		out[i].Variability = v
	}
	return out
}

// Fig6Row is one bar of Fig. 6: mean full-download time of the 200 s HLS
// video for one (quality, scheme, #phones) cell.
type Fig6Row struct {
	Quality string
	Scheme  string // "ADSL", "3GOL_MIN", "3GOL_RR", "3GOL_GRD"
	Phones  int
	Mean    time.Duration // emulated
	Std     time.Duration
}

// fig6ADSL is the test line of the scheduler comparison: 2 Mbps down,
// 0.512 Mbps up.
var fig6ADSL = cellular.LocationPreset{
	Name:    "lab",
	DSLDown: 2e6, DSLUp: 0.512e6,
	SignalDBm: -84,
}

// Fig6 runs the scheduler comparison: the bipbop video (200 s, Q1–Q4)
// downloaded over a 2 Mbps ADSL line alone and with 3GOL under the MIN,
// RR and GRD schedulers, using one and two phones.
func Fig6(s Setup) ([]Fig6Row, error) {
	s = s.withDefaults()
	video := hls.BipBop()
	origin := httptest.NewServer(hls.NewOrigin(video))
	defer origin.Close()

	schemes := []struct {
		name string
		algo scheduler.Algo
	}{
		{"3GOL_MIN", scheduler.MinTime},
		{"3GOL_RR", scheduler.RoundRobin},
		{"3GOL_GRD", scheduler.Greedy},
	}

	var rows []Fig6Row
	for _, nPhones := range []int{1, 2} {
		for _, q := range video.Qualities {
			// ADSL baseline (per phone count it is the same; report once
			// under phones=nPhones for table completeness).
			var base []float64
			if err := repeat(s.Reps, func(rep int) error {
				h, err := newHome(fig6ADSL, phoneConfigs(fig6ADSL, nPhones, true), seeded(s, rep))
				if err != nil {
					return err
				}
				defer h.Close()
				res, err := h.BaselineVoD(context.Background(), origin.URL, "/bipbop/master.m3u8", 1.0, q.Name)
				if err != nil {
					return err
				}
				base = append(base, res.Total.Seconds())
				return nil
			}); err != nil {
				return nil, err
			}
			rows = append(rows, fig6Row(q.Name, "ADSL", nPhones, base))

			for _, scheme := range schemes {
				var times []float64
				if err := repeat(s.Reps, func(rep int) error {
					h, err := newHome(fig6ADSL, phoneConfigs(fig6ADSL, nPhones, true), seeded(s, rep))
					if err != nil {
						return err
					}
					defer h.Close()
					phones := h.AdmissibleDevices(nPhones, 5*time.Second)
					res, err := h.BoostVoD(context.Background(), origin.URL, "/bipbop/master.m3u8", core.VoDOptions{
						Algo: scheme.algo, Phones: phones, PrebufferFrac: 1.0, Quality: q.Name,
					})
					if err != nil {
						return err
					}
					times = append(times, res.Total.Seconds())
					return nil
				}); err != nil {
					return nil, err
				}
				rows = append(rows, fig6Row(q.Name, scheme.name, nPhones, times))
			}
		}
	}
	return rows, nil
}

func fig6Row(quality, scheme string, phones int, secs []float64) Fig6Row {
	sum := stats.Summarize(secs)
	return Fig6Row{
		Quality: quality,
		Scheme:  scheme,
		Phones:  phones,
		Mean:    time.Duration(sum.Mean * float64(time.Second)),
		Std:     time.Duration(sum.Std * float64(time.Second)),
	}
}

func seeded(s Setup, rep int) Setup {
	s.Seed = s.Seed*131 + int64(rep)*17 + 7
	return s
}

func repeat(n int, fn func(int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

// Fig7Row is one Fig. 7 point: the pre-buffer gain (baseline − boosted
// startup latency) for one configuration.
type Fig7Row struct {
	Location  string
	Quality   string
	Prebuffer float64 // fraction 0.2..1.0
	Phones    int
	Warm      bool // true = "H" start, false = idle "3G" start
	GainSec   float64
}

// Fig7 measures pre-buffer gains at the named eval locations across
// pre-buffer fractions, qualities, phone counts and RRC start modes.
func Fig7(s Setup, locations []string, prebufs []float64, qualities []string) ([]Fig7Row, error) {
	s = s.withDefaults()
	if len(locations) == 0 {
		locations = []string{"loc2", "loc4"}
	}
	if len(prebufs) == 0 {
		prebufs = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	video := hls.BipBop()
	if len(qualities) == 0 {
		for _, q := range video.Qualities {
			qualities = append(qualities, q.Name)
		}
	}
	origin := httptest.NewServer(hls.NewOrigin(video))
	defer origin.Close()

	var rows []Fig7Row
	for _, locName := range locations {
		preset, ok := cellular.FindLocation(cellular.EvalLocations, locName)
		if !ok {
			return nil, fmt.Errorf("evalwild: unknown eval location %q", locName)
		}
		for _, nPhones := range []int{1, 2} {
			for _, warm := range []bool{false, true} {
				for _, q := range qualities {
					for _, pb := range prebufs {
						var gains []float64
						if err := repeat(s.Reps, func(rep int) error {
							g, err := prebufferGain(origin.URL, preset, nPhones, warm, q, pb, seeded(s, rep))
							if err != nil {
								return err
							}
							gains = append(gains, g)
							return nil
						}); err != nil {
							return nil, err
						}
						rows = append(rows, Fig7Row{
							Location: locName, Quality: q, Prebuffer: pb,
							Phones: nPhones, Warm: warm,
							GainSec: stats.Mean(gains),
						})
					}
				}
			}
		}
	}
	return rows, nil
}

func prebufferGain(origin string, preset cellular.LocationPreset, nPhones int, warm bool, quality string, prebuf float64, s Setup) (float64, error) {
	h, err := newHome(preset, phoneConfigs(preset, nPhones, false), s)
	if err != nil {
		return 0, err
	}
	defer h.Close()
	base, err := h.BaselineVoD(context.Background(), origin, "/bipbop/master.m3u8", prebuf, quality)
	if err != nil {
		return 0, err
	}
	phones := h.AdmissibleDevices(nPhones, 5*time.Second)
	if warm {
		for _, ph := range phones {
			ph.WarmUp()
		}
	}
	boost, err := h.BoostVoD(context.Background(), origin, "/bipbop/master.m3u8", core.VoDOptions{
		Algo: scheduler.Greedy, Phones: phones, PrebufferFrac: prebuf, Quality: quality,
	})
	if err != nil {
		return 0, err
	}
	return base.Prebuffer.Seconds() - boost.Prebuffer.Seconds(), nil
}

// Fig8Row is one Fig. 8 bar: percent reduction in full-video download
// time at a location, averaged over qualities.
type Fig8Row struct {
	Location     string
	Phones       int
	Warm         bool
	ReductionPct float64
}

// Fig8 measures full-download reductions at every eval location.
func Fig8(s Setup, qualities []string) ([]Fig8Row, error) {
	s = s.withDefaults()
	video := hls.BipBop()
	if len(qualities) == 0 {
		for _, q := range video.Qualities {
			qualities = append(qualities, q.Name)
		}
	}
	origin := httptest.NewServer(hls.NewOrigin(video))
	defer origin.Close()

	var rows []Fig8Row
	for _, preset := range cellular.EvalLocations {
		for _, nPhones := range []int{1, 2} {
			for _, warm := range []bool{false, true} {
				var reductions []float64
				for _, q := range qualities {
					if err := repeat(s.Reps, func(rep int) error {
						h, err := newHome(preset, phoneConfigs(preset, nPhones, false), seeded(s, rep))
						if err != nil {
							return err
						}
						defer h.Close()
						base, err := h.BaselineVoD(context.Background(), origin.URL, "/bipbop/master.m3u8", 1.0, q)
						if err != nil {
							return err
						}
						phones := h.AdmissibleDevices(nPhones, 5*time.Second)
						if warm {
							for _, ph := range phones {
								ph.WarmUp()
							}
						}
						boost, err := h.BoostVoD(context.Background(), origin.URL, "/bipbop/master.m3u8", core.VoDOptions{
							Algo: scheduler.Greedy, Phones: phones, PrebufferFrac: 1.0, Quality: q,
						})
						if err != nil {
							return err
						}
						reductions = append(reductions,
							100*(base.Total.Seconds()-boost.Total.Seconds())/base.Total.Seconds())
						return nil
					}); err != nil {
						return nil, err
					}
				}
				rows = append(rows, Fig8Row{
					Location: preset.Name, Phones: nPhones, Warm: warm,
					ReductionPct: stats.Mean(reductions),
				})
			}
		}
	}
	return rows, nil
}

// Fig9Row is one Fig. 9 bar: mean upload time of the 30-photo set.
type Fig9Row struct {
	Location string
	Phones   int // 0 = ADSL baseline
	Mean     time.Duration
}

// Fig9 measures the photo-upload transaction (30 photos, 2.5 MB mean) at
// every eval location with 0 (baseline), 1 and 2 phones.
func Fig9(s Setup, photosPerSet int) ([]Fig9Row, error) {
	s = s.withDefaults()
	if photosPerSet <= 0 {
		photosPerSet = 30
	}
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mr, err := r.MultipartReader()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for {
			part, err := mr.NextPart()
			if err != nil {
				break
			}
			io.Copy(io.Discard, part)
		}
		w.WriteHeader(http.StatusCreated)
	}))
	defer sink.Close()

	var rows []Fig9Row
	for _, preset := range cellular.EvalLocations {
		for _, nPhones := range []int{0, 1, 2} {
			var times []float64
			if err := repeat(s.Reps, func(rep int) error {
				ss := seeded(s, rep)
				photos := core.GeneratePhotos(photosPerSet, ss.Seed)
				cfgPhones := phoneConfigs(preset, max(nPhones, 1), false)[:nPhones]
				h, err := newHome(preset, cfgPhones, ss)
				if err != nil {
					return err
				}
				defer h.Close()
				var res *core.UploadResult
				if nPhones == 0 {
					res, err = h.BaselineUpload(context.Background(), photos, sink.URL)
				} else {
					phones := h.AdmissibleDevices(nPhones, 5*time.Second)
					res, err = h.UploadPhotos(context.Background(), photos, core.UploadOptions{
						Algo: scheduler.Greedy, Phones: phones, TargetURL: sink.URL,
					})
				}
				if err != nil {
					return err
				}
				times = append(times, res.Elapsed.Seconds())
				return nil
			}); err != nil {
				return nil, err
			}
			rows = append(rows, Fig9Row{
				Location: preset.Name,
				Phones:   nPhones,
				Mean:     time.Duration(stats.Mean(times) * float64(time.Second)),
			})
		}
	}
	return rows, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TechRow is one row of the 4G outlook comparison (§2.3): the same boost
// executed with HSPA-class and LTE-class devices.
type TechRow struct {
	Tech            string
	BaselineStartup time.Duration // ADSL-only pre-buffer latency
	BoostedStartup  time.Duration
	BoostedTotal    time.Duration
	PhoneDown       float64 // per-device downlink (bits/s)
	RRCPromotion    time.Duration
}

// LTEComparison runs the paper's §2.3 outlook: the powerboost at an eval
// location with 3G (HSPA) devices versus 4G (LTE) devices — higher radio
// rates and a near-instant RRC promotion shrink the boosting window.
func LTEComparison(s Setup, locName string) ([]TechRow, error) {
	s = s.withDefaults()
	preset, ok := cellular.FindLocation(cellular.EvalLocations, locName)
	if !ok {
		return nil, fmt.Errorf("evalwild: unknown eval location %q", locName)
	}
	video := hls.BipBop()
	origin := httptest.NewServer(hls.NewOrigin(video))
	defer origin.Close()

	params := cellular.DefaultParams()
	techs := []struct {
		name      string
		caps      func(float64) (float64, float64)
		promotion time.Duration
	}{
		{"3G (HSPA)", cellular.RadioCaps, 2 * time.Second},
		{"4G (LTE)", cellular.LTERadioCaps, 100 * time.Millisecond},
	}

	var rows []TechRow
	for _, tech := range techs {
		dl, ul := tech.caps(preset.SignalDBm)
		phones := make([]core.PhoneConfig, 2)
		for i := range phones {
			phones[i] = core.PhoneConfig{
				Name: fmt.Sprintf("ph%d", i+1),
				Down: dl * params.FadingMean,
				Up:   ul * params.FadingMean,
			}
		}
		var baseStart, boostStart, boostTotal []float64
		if err := repeat(s.Reps, func(rep int) error {
			ss := seeded(s, rep)
			h, err := core.NewHome(core.HomeConfig{
				DSLDown:           preset.DSLDown,
				DSLUp:             preset.DSLUp,
				TimeScale:         ss.TimeScale,
				Phones:            withVariability(phones, ss.Variability),
				Seed:              ss.Seed,
				RRCPromotionDelay: tech.promotion,
			})
			if err != nil {
				return err
			}
			defer h.Close()
			base, err := h.BaselineVoD(context.Background(), origin.URL, "/bipbop/master.m3u8", 0.2, "q4")
			if err != nil {
				return err
			}
			devs := h.AdmissibleDevices(2, 5*time.Second)
			boost, err := h.BoostVoD(context.Background(), origin.URL, "/bipbop/master.m3u8", core.VoDOptions{
				Algo: scheduler.Greedy, Phones: devs, PrebufferFrac: 0.2, Quality: "q4",
			})
			if err != nil {
				return err
			}
			baseStart = append(baseStart, base.Prebuffer.Seconds())
			boostStart = append(boostStart, boost.Prebuffer.Seconds())
			boostTotal = append(boostTotal, boost.Total.Seconds())
			return nil
		}); err != nil {
			return nil, err
		}
		rows = append(rows, TechRow{
			Tech:            tech.name,
			BaselineStartup: time.Duration(stats.Mean(baseStart) * float64(time.Second)),
			BoostedStartup:  time.Duration(stats.Mean(boostStart) * float64(time.Second)),
			BoostedTotal:    time.Duration(stats.Mean(boostTotal) * float64(time.Second)),
			PhoneDown:       dl * params.FadingMean,
			RRCPromotion:    tech.promotion,
		})
	}
	return rows, nil
}
