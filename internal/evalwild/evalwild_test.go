package evalwild

import (
	"testing"
	"time"
)

// quick returns a Setup small enough for CI: one rep, aggressive time
// scale. Shape assertions stay valid because ratios are scale-invariant.
func quick() Setup {
	// Note: these tests measure wall-clock behaviour of shaped TCP; run
	// them on an otherwise idle machine. The time scale amplifies any
	// host-induced delay by the same factor it accelerates the emulation.
	return Setup{TimeScale: 80, Seed: 42, Reps: 1, Variability: 0.2}
}

// skipMarginsUnderRace reports whether the test should stop before its
// timing-margin assertions. The race detector multiplies the CPU cost of
// moving every byte, and that overhead penalises the multi-connection
// boosted paths far more than the single-connection baselines, pushing
// small margins negative. Under -race these tests still exercise the full
// machinery (and so still catch data races) and verify row structure;
// the shape claims are covered by plain `go test` runs.
func skipMarginsUnderRace(t *testing.T) bool {
	t.Helper()
	if raceEnabled {
		t.Log("race detector active: skipping timing-margin assertions")
	}
	return raceEnabled
}

func TestFig6SchedulerOrdering(t *testing.T) {
	rows, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 2 phone-counts × 4 qualities × 4 schemes.
	if len(rows) != 32 {
		t.Fatalf("rows = %d, want 32", len(rows))
	}
	get := func(q, scheme string, phones int) time.Duration {
		for _, r := range rows {
			if r.Quality == q && r.Scheme == scheme && r.Phones == phones {
				return r.Mean
			}
		}
		t.Fatalf("missing row %s/%s/%d", q, scheme, phones)
		return 0
	}
	if skipMarginsUnderRace(t) {
		return
	}
	// Individual cells are noisy at low rep counts; the paper's claims
	// are about the aggregate ordering, so compare totals across the
	// four qualities.
	total := func(scheme string, phones int) time.Duration {
		var sum time.Duration
		for _, q := range []string{"q1", "q2", "q3", "q4"} {
			sum += get(q, scheme, phones)
		}
		return sum
	}
	for _, phones := range []int{1, 2} {
		adsl := total("ADSL", phones)
		grd := total("3GOL_GRD", phones)
		rr := total("3GOL_RR", phones)
		min := total("3GOL_MIN", phones)
		// Every 3GOL scheduler beats ADSL alone in aggregate.
		for name, d := range map[string]time.Duration{"GRD": grd, "RR": rr, "MIN": min} {
			if d >= adsl {
				t.Errorf("%dph: %s (%v) not faster than ADSL (%v)", phones, name, d, adsl)
			}
		}
		// The paper's ordering: GRD best (small tolerance for MIN ties
		// at low reps — the full 30-rep harness separates them).
		if float64(grd) >= float64(rr)*1.02 {
			t.Errorf("%dph: GRD (%v) not better than RR (%v)", phones, grd, rr)
		}
		if float64(grd) >= float64(min)*1.10 {
			t.Errorf("%dph: GRD (%v) well behind MIN (%v)", phones, grd, min)
		}
		// Download time grows with quality for the baseline.
		if get("q4", "ADSL", phones) <= get("q1", "ADSL", phones) {
			t.Errorf("%dph: ADSL q4 not slower than q1", phones)
		}
	}
	// Two phones beat one for GRD in aggregate.
	if total("3GOL_GRD", 2) >= total("3GOL_GRD", 1) {
		t.Error("2 phones not faster than 1 for GRD")
	}
}

func TestFig7GainsGrowWithQualityAndPrebuffer(t *testing.T) {
	rows, err := Fig7(quick(), []string{"loc4"}, []float64{0.2, 1.0}, []string{"q1", "q4"})
	if err != nil {
		t.Fatal(err)
	}
	// 1 loc × 2 phones × 2 warm × 2 qualities × 2 prebufs = 16.
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	get := func(q string, pb float64, phones int, warm bool) float64 {
		for _, r := range rows {
			if r.Quality == q && r.Prebuffer == pb && r.Phones == phones && r.Warm == warm {
				return r.GainSec
			}
		}
		t.Fatalf("missing row")
		return 0
	}
	if skipMarginsUnderRace(t) {
		return
	}
	// Gains grow with pre-buffer amount (more segments to parallelise).
	if get("q4", 1.0, 2, true) <= get("q4", 0.2, 2, true) {
		t.Error("gain at 100% prebuffer not above 20%")
	}
	// Gains grow with quality (bigger segments).
	if get("q4", 1.0, 2, true) <= get("q1", 1.0, 2, true) {
		t.Error("gain at q4 not above q1")
	}
	// Boost is a genuine gain at the full-download point.
	if get("q4", 1.0, 1, false) <= 0 {
		t.Error("no positive gain for 1 phone cold start at q4/100%")
	}
}

func TestFig8ReductionsPositiveEverywhere(t *testing.T) {
	// Fig8's fast-DSL locations produce short emulated transfers, where
	// unscaled per-request overheads distort ratios at high time scales;
	// run this one at a gentler acceleration.
	s := quick()
	s.TimeScale = 40
	s.Reps = 2
	rows, err := Fig8(s, []string{"q3"})
	if err != nil {
		t.Fatal(err)
	}
	// 5 locations × 2 phones × 2 warm = 20.
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	if skipMarginsUnderRace(t) {
		return
	}
	byLoc := map[string]map[int]float64{}
	var coldSum float64
	var coldCells int
	for _, r := range rows {
		// Individual cells sit within measurement noise of zero at fast
		// DSL locations; flag only clear regressions per cell and assert
		// positivity on the cold-start aggregate below.
		if !r.Warm && r.ReductionPct <= -5 {
			t.Errorf("%s/%dph/warm=%v: reduction %.1f%% clearly negative",
				r.Location, r.Phones, r.Warm, r.ReductionPct)
		}
		if !r.Warm {
			coldSum += r.ReductionPct
			coldCells++
		}
		if r.Warm && r.ReductionPct <= -15 {
			t.Errorf("%s/%dph/warm: reduction %.1f%% strongly negative",
				r.Location, r.Phones, r.ReductionPct)
		}
		if r.ReductionPct >= 100 {
			t.Errorf("%s: reduction %.1f%% out of range", r.Location, r.ReductionPct)
		}
		if r.Warm {
			continue
		}
		if byLoc[r.Location] == nil {
			byLoc[r.Location] = map[int]float64{}
		}
		byLoc[r.Location][r.Phones] = r.ReductionPct
	}
	// The second device helps (paper: +5.9% to +26%). At CI rep counts
	// even the cross-location aggregate margin sits inside measurement
	// noise — the full 30-rep harness is what separates the device
	// counts — so assert only that adding a device is not dramatically
	// worse, and that its aggregate reduction stays positive.
	var sum1, sum2 float64
	for _, m := range byLoc {
		sum1 += m[1]
		sum2 += m[2]
	}
	if sum2 <= sum1*0.75 {
		t.Errorf("second device mean reduction %.1f%% far below one-device %.1f%%",
			sum2/5, sum1/5)
	}
	if sum2 <= 0 {
		t.Errorf("second device mean reduction %.1f%% not positive", sum2/5)
	}
	if coldCells > 0 && coldSum/float64(coldCells) <= 0 {
		t.Errorf("mean cold-start reduction %.1f%% not positive", coldSum/float64(coldCells))
	}
}

func TestFig9UploadSpeedups(t *testing.T) {
	s := quick()
	rows, err := Fig9(s, 8) // fewer photos for test speed
	if err != nil {
		t.Fatal(err)
	}
	// 5 locations × 3 device counts.
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	if skipMarginsUnderRace(t) {
		return
	}
	byLoc := map[string]map[int]time.Duration{}
	for _, r := range rows {
		if byLoc[r.Location] == nil {
			byLoc[r.Location] = map[int]time.Duration{}
		}
		byLoc[r.Location][r.Phones] = r.Mean
	}
	for loc, m := range byLoc {
		if m[1] >= m[0] {
			t.Errorf("%s: 1 phone (%v) not faster than ADSL (%v)", loc, m[1], m[0])
		}
		if m[2] >= m[0] {
			t.Errorf("%s: 2 phones (%v) not faster than ADSL (%v)", loc, m[2], m[0])
		}
		// Paper: uplink speedup ×1.5–×4 with one device. loc2's fast
		// ADSL2+ uplink against a weak-signal phone sits near the low
		// end (capacity-additive ≈×1.2).
		speedup := m[0].Seconds() / m[1].Seconds()
		if speedup < 1.1 || speedup > 8 {
			t.Errorf("%s: 1-phone upload speedup ×%.2f outside plausible range", loc, speedup)
		}
	}
}

func TestLTEComparisonShrinksBoostWindow(t *testing.T) {
	rows, err := LTEComparison(quick(), "loc4")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	g3, lte := rows[0], rows[1]
	// LTE phones are far faster per device.
	if lte.PhoneDown <= 2*g3.PhoneDown {
		t.Errorf("LTE per-device %.1f Mbps not ≫ 3G %.1f", lte.PhoneDown/1e6, g3.PhoneDown/1e6)
	}
	if skipMarginsUnderRace(t) {
		return
	}
	// The paper's §2.3 claim: the powerboosting window gets much shorter.
	if lte.BoostedStartup >= g3.BoostedStartup {
		t.Errorf("LTE startup %v not below 3G %v", lte.BoostedStartup, g3.BoostedStartup)
	}
	if lte.BoostedTotal >= g3.BoostedTotal {
		t.Errorf("LTE total %v not below 3G %v", lte.BoostedTotal, g3.BoostedTotal)
	}
	// LTE must beat the ADSL baseline startup even from a cold start —
	// its promotion delay is negligible. (The 3G cold start at a 20%
	// pre-buffer can tie the baseline: the 2 s RRC promotion eats the
	// small-prebuffer gain, which is exactly the §2.3 motivation.)
	if lte.BoostedStartup >= lte.BaselineStartup {
		t.Errorf("LTE boost startup %v not below baseline %v",
			lte.BoostedStartup, lte.BaselineStartup)
	}
}
