//go:build race

package evalwild

// raceEnabled softens the test time scales: the race detector multiplies
// the CPU cost of moving every byte, and at high acceleration that
// per-byte overhead masquerades as link time and distorts ratios.
const raceEnabled = true
