// Package diurnal provides the 24-hour traffic-shape profiles used across
// the repository: the normalised mobile and wired curves of the paper's
// Fig. 1, plus helpers to build custom profiles. A profile maps an hour of
// day (fractional, wraps modulo 24) to a normalised load in [0,1].
package diurnal

import "math"

// Profile is a 24-hour load shape. Values are normalised so the daily
// peak is 1.0. Lookups interpolate linearly between hourly anchors and
// wrap around midnight.
type Profile struct {
	hourly [24]float64
}

// New builds a Profile from 24 hourly anchor values (hour 0..23). Values
// are normalised so that the maximum becomes 1; an all-zero input yields
// an all-zero profile.
func New(hourly [24]float64) Profile {
	var peak float64
	for _, v := range hourly {
		if v > peak {
			peak = v
		}
	}
	p := Profile{}
	if peak == 0 {
		return p
	}
	for i, v := range hourly {
		p.hourly[i] = v / peak
	}
	return p
}

// At returns the normalised load at hour h (fractional; wraps mod 24).
func (p Profile) At(h float64) float64 {
	h = math.Mod(h, 24)
	if h < 0 {
		h += 24
	}
	lo := int(h) % 24
	hi := (lo + 1) % 24
	frac := h - math.Floor(h)
	return p.hourly[lo]*(1-frac) + p.hourly[hi]*frac
}

// AtTime returns the load at an absolute simulation time given in seconds
// since midnight of day zero.
func (p Profile) AtTime(seconds float64) float64 {
	return p.At(seconds / 3600)
}

// PeakHour returns the first hour (0..23) at which the profile reaches
// its maximum anchor value.
func (p Profile) PeakHour() int {
	best, bh := -1.0, 0
	for i, v := range p.hourly {
		if v > best {
			best, bh = v, i
		}
	}
	return bh
}

// Mobile is the normalised cellular data-traffic curve of the paper's
// Fig. 1: a pronounced diurnal pattern, quiet between 03:00 and 06:00,
// climbing through the working day to an evening peak around 21:00.
var Mobile = New([24]float64{
	0.35, 0.25, 0.17, 0.12, 0.10, 0.11, // 00..05
	0.16, 0.28, 0.42, 0.54, 0.62, 0.68, // 06..11
	0.73, 0.76, 0.74, 0.72, 0.75, 0.80, // 12..17
	0.86, 0.92, 0.97, 1.00, 0.90, 0.60, // 18..23
})

// Wired is the normalised DSLAM traffic curve of Fig. 1: flatter through
// the day than mobile, with a later and sharper residential evening peak
// around 22:00–23:00.
var Wired = New([24]float64{
	0.45, 0.32, 0.22, 0.16, 0.13, 0.13, // 00..05
	0.15, 0.20, 0.28, 0.36, 0.42, 0.47, // 06..11
	0.52, 0.55, 0.54, 0.55, 0.58, 0.64, // 12..17
	0.60, 0.68, 0.74, 0.80, 1.00, 0.85, // 18..23
})
