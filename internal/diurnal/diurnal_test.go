package diurnal

import (
	"testing"
	"testing/quick"
)

func TestNewNormalises(t *testing.T) {
	var anchors [24]float64
	for i := range anchors {
		anchors[i] = float64(i + 1)
	}
	p := New(anchors)
	if got := p.At(23); got != 1 {
		t.Errorf("peak = %v, want 1", got)
	}
	if got := p.At(0); got != 1.0/24 {
		t.Errorf("At(0) = %v, want %v", got, 1.0/24)
	}
}

func TestAllZeroProfile(t *testing.T) {
	p := New([24]float64{})
	if got := p.At(12); got != 0 {
		t.Errorf("zero profile At(12) = %v, want 0", got)
	}
}

func TestInterpolation(t *testing.T) {
	var anchors [24]float64
	anchors[10] = 1
	anchors[11] = 0.5
	p := New(anchors)
	if got := p.At(10.5); got != 0.75 {
		t.Errorf("At(10.5) = %v, want 0.75", got)
	}
}

func TestWrapAroundMidnight(t *testing.T) {
	var anchors [24]float64
	anchors[23] = 1
	anchors[0] = 0.5
	p := New(anchors)
	if got := p.At(23.5); got != 0.75 {
		t.Errorf("At(23.5) = %v, want 0.75 (wrap)", got)
	}
	if got, want := p.At(-1), p.At(23); got != want {
		t.Errorf("At(-1) = %v, want At(23) = %v", got, want)
	}
	if got, want := p.At(25), p.At(1); got != want {
		t.Errorf("At(25) = %v, want At(1) = %v", got, want)
	}
}

func TestAtTime(t *testing.T) {
	var anchors [24]float64
	anchors[2] = 1
	p := New(anchors)
	if got, want := p.AtTime(2*3600), 1.0; got != want {
		t.Errorf("AtTime(7200s) = %v, want %v", got, want)
	}
	// Next day, same hour.
	if got, want := p.AtTime((24+2)*3600), 1.0; got != want {
		t.Errorf("AtTime(+24h) = %v, want %v", got, want)
	}
}

func TestPaperCurveShapes(t *testing.T) {
	// Fig 1 structure: mobile peaks in the evening, earlier than wired;
	// both have a pre-dawn trough.
	if mp := Mobile.PeakHour(); mp != 21 {
		t.Errorf("mobile peak hour = %d, want 21", mp)
	}
	if wp := Wired.PeakHour(); wp != 22 {
		t.Errorf("wired peak hour = %d, want 22", wp)
	}
	if Mobile.At(4) > 0.2 {
		t.Errorf("mobile 4am load = %v, want a trough (<0.2)", Mobile.At(4))
	}
	if Wired.At(4) > 0.2 {
		t.Errorf("wired 4am load = %v, want a trough (<0.2)", Wired.At(4))
	}
	// The non-alignment the paper exploits: at mobile peak, wired is
	// below its own peak and vice versa.
	if Wired.At(21) >= 1 {
		t.Error("wired should not be at peak during mobile peak hour")
	}
}

// Property: profiles are always within [0,1] everywhere.
func TestProfileBoundedProperty(t *testing.T) {
	f := func(anchors [24]float64, h float64) bool {
		for i := range anchors {
			if anchors[i] < 0 {
				anchors[i] = -anchors[i]
			}
		}
		p := New(anchors)
		v := p.At(h)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
