package fleet

import (
	"threegol/internal/diurnal"
	"threegol/internal/obs"
	"threegol/internal/obs/eventlog"
	"threegol/internal/stats"
)

// speedup sketch layout: [1, 33) in 1/32-wide bins covers everything a
// 256 kbps floor line with two HSPA+ phones can reach (ceiling ≈ ×20)
// at a resolution far below the anchors the evaluation quotes.
const (
	speedupLo   = 1
	speedupHi   = 33
	speedupBins = 1024
)

// Result is the fleet's Mergeable accumulator: counters, the speedup
// ECDF sketch, and the per-5-minute-bin load series, one per shard,
// folded in shard order by MapReduce.
type Result struct {
	// Homes, Viewers, Sessions and BoostedSessions count the
	// population and its activity over the whole run.
	Homes           int64
	Viewers         int64
	Sessions        int64
	BoostedSessions int64
	// Days is the simulated horizon (identical across shards).
	Days int
	// TotalBytes is the video volume requested; OnloadedBytes the part
	// carried by 3G; BudgetBytes the granted allowance (budget × days,
	// summed over homes) — Onloaded ≤ Budget always.
	TotalBytes    float64
	OnloadedBytes float64
	BudgetBytes   float64
	// DSLSeconds and BoostSeconds are total video latency over DSL
	// alone versus with budgeted onloading.
	DSLSeconds   float64
	BoostSeconds float64
	// BaseMobileDailyBytes is the phones' own cellular demand per day,
	// summed over homes — the base of the traffic-increase aggregates.
	BaseMobileDailyBytes float64
	// Speedups sketches the per-home-day DSL/boost latency ratio
	// (the Fig. 11(a) CDF at fleet scale).
	Speedups *stats.Sketch
	// Budgeted and Unlimited are the onloaded cellular load folded
	// onto a 24-hour day (the Fig. 11(b) pair at fleet scale).
	Budgeted  *LoadBins
	Unlimited *LoadBins
	// BackhaulMbps is the covering towers' total backhaul, scaled to
	// the population (identical across shards).
	BackhaulMbps float64
	// metrics holds the engine's obs instruments when Config.Metrics is
	// set; the merged registry is exposed via MetricsRegistry.
	metrics *Metrics
	// events holds the shard's flight recorder when Config.Events is
	// set; the merged stream is exposed via EventLog.
	events *eventlog.Log
}

func newResult(cfg Config, sh Shard, now func() float64) *Result {
	r := &Result{
		Days:         cfg.Days,
		Speedups:     stats.NewSketch(speedupLo, speedupHi, speedupBins),
		Budgeted:     NewLoadBins(cfg.BinSeconds),
		Unlimited:    NewLoadBins(cfg.BinSeconds),
		BackhaulMbps: cfg.Scenario.BackhaulMbpsPer18k * float64(cfg.Homes) / 18000,
	}
	if cfg.Metrics {
		r.metrics = NewMetrics(obs.NewRegistry(), sh.Index)
	}
	if cfg.Events {
		// Every shard derives IDs from cfg.Seed (NOT sh.Seed): the
		// shard index already feeds the ID derivation, and a shared
		// seed is what keeps IDs collision-free across the merged
		// stream (the derivation is bijective per (seed, shard)).
		r.events = eventlog.New(sh.Index, cfg.Seed, now)
	}
	return r
}

// EventLog returns the merged flight recorder, or nil when the run was
// configured without Config.Events. Its JSONL serialisation is
// bit-identical for every worker count (see Mergeable).
func (r *Result) EventLog() *eventlog.Log {
	return r.events
}

// MetricsRegistry returns the merged obs registry, or nil when the run
// was configured without Config.Metrics. Its JSON dump is bit-identical
// for every worker count (see Mergeable).
func (r *Result) MetricsRegistry() *obs.Registry {
	return r.metrics.Registry()
}

// observeHome records a generated household's static quantities.
func (r *Result) observeHome(viewer bool, dailyBudget, baseMobileDaily float64, days int) {
	r.metrics.home()
	r.Homes++
	if viewer {
		r.Viewers++
	}
	r.BudgetBytes += dailyBudget * float64(days)
	r.BaseMobileDailyBytes += baseMobileDaily
}

// recordSession folds one executed video request into the accumulators:
// home is the global home ID, m the home's boost model, tod the
// day-local request time, and b the boost outcome the engine computed
// against the home's remaining budget (the engine owns the SoA state;
// the Result owns only the merge-reduced aggregates).
func (r *Result) recordSession(home int, m BoostModel, tod, size float64, b Boost) {
	r.Sessions++
	r.TotalBytes += size
	r.metrics.session(b.OnloadedBytes)
	r.recordSessionTrace(home, m, size, b)
	r.DSLSeconds += b.DSLSeconds
	r.BoostSeconds += b.BoostSeconds
	if b.OnloadedBytes > 0 {
		r.BoostedSessions++
		r.OnloadedBytes += b.OnloadedBytes
		r.Budgeted.Spread(tod, b.BoostSeconds, b.OnloadedBytes)
	}
	if size >= m.MinBoostBytes {
		// The unlimited counterfactual onloads the ideal 3G share of
		// every boostable video regardless of budget.
		ideal := size * m.Share()
		r.Unlimited.Spread(tod, size*8/(m.DSLBits+m.G3Bits), ideal)
	}
}

// recordSessionTrace emits one session's flight-recorder trace: a
// "fleet.session" root spanning the whole (boosted) transfer, one leg
// span per path with its analytic duration, and a budget-exhaustion
// point for boostable videos the allowance could not cover. Begin times
// come from the engine's time cursor through the log's time source; leg
// ends are computed from the boost model (EndAt), since the fleet model
// is analytic rather than discrete-event per byte.
func (r *Result) recordSessionTrace(home int, m BoostModel, size float64, b Boost) {
	if r.events == nil {
		return
	}
	now := r.events.Now()
	root := r.events.Begin(eventlog.TraceContext{}, "fleet.session",
		"home", eventlog.Int(int64(home)), "bytes", eventlog.Float(size))
	dslBytes := size - b.OnloadedBytes
	adsl := r.events.Begin(root.Context(), "fleet.path.adsl",
		"path", "adsl", "bytes", eventlog.Float(dslBytes))
	adsl.EndAt(now+dslBytes*8/m.DSLBits, "outcome", "ok")
	if b.OnloadedBytes > 0 {
		g3 := r.events.Begin(root.Context(), "fleet.path.3g",
			"path", "3g", "bytes", eventlog.Float(b.OnloadedBytes))
		g3.EndAt(now+b.OnloadedBytes*8/m.G3Bits, "outcome", "ok")
	} else if size >= m.MinBoostBytes {
		r.events.Point(root.Context(), "fleet.budget_exhausted",
			"home", eventlog.Int(int64(home)))
	}
	root.EndAt(now+b.BoostSeconds,
		"onloaded", eventlog.Float(b.OnloadedBytes),
		"dsl_s", eventlog.Float(b.DSLSeconds),
		"boost_s", eventlog.Float(b.BoostSeconds))
}

// Merge folds src into r in shard order; see Mergeable.
func (r *Result) Merge(src *Result) {
	if src == nil {
		return
	}
	r.Homes += src.Homes
	r.Viewers += src.Viewers
	r.Sessions += src.Sessions
	r.BoostedSessions += src.BoostedSessions
	r.TotalBytes += src.TotalBytes
	r.OnloadedBytes += src.OnloadedBytes
	r.BudgetBytes += src.BudgetBytes
	r.DSLSeconds += src.DSLSeconds
	r.BoostSeconds += src.BoostSeconds
	r.BaseMobileDailyBytes += src.BaseMobileDailyBytes
	r.Speedups.Merge(src.Speedups)
	r.Budgeted.Merge(src.Budgeted)
	r.Unlimited.Merge(src.Unlimited)
	if r.metrics != nil && src.metrics != nil {
		r.metrics.reg.Merge(src.metrics.reg)
	}
	if r.events != nil && src.events != nil {
		r.events.Merge(src.events)
	}
}

// BackhaulCrossings counts the 5-minute bins whose per-day average load
// exceeds the backhaul, for the budgeted and unlimited series — the
// Fig. 11(b) headline at fleet scale.
func (r *Result) BackhaulCrossings() (budgeted, unlimited int) {
	for _, v := range r.Budgeted.Mbps(r.Days) {
		if v > r.BackhaulMbps {
			budgeted++
		}
	}
	for _, v := range r.Unlimited.Mbps(r.Days) {
		if v > r.BackhaulMbps {
			unlimited++
		}
	}
	return budgeted, unlimited
}

// TotalIncrease is the relative increase in the phones' daily 3G volume
// caused by onloading (the Fig. 11(c) total-increase aggregate at 100%
// adoption of this population).
func (r *Result) TotalIncrease() float64 {
	base := r.BaseMobileDailyBytes * float64(r.Days)
	if base <= 0 {
		return 0
	}
	return r.OnloadedBytes / base
}

// PeakIncrease is the relative increase at the mobile network's peak
// hour: the onloaded load actually landing in that hour (wired-diurnal
// demand) against the base mobile load there. The Fig. 1 peak
// misalignment keeps it below TotalIncrease.
func (r *Result) PeakIncrease() float64 {
	peakHour := diurnal.Mobile.PeakHour()
	baseMass := HourlyMass(diurnal.Mobile)
	basePeak := r.BaseMobileDailyBytes * baseMass[peakHour]
	if basePeak <= 0 {
		return 0
	}
	var addedPeak float64
	for i, b := range r.Budgeted.Bytes {
		mid := (float64(i) + 0.5) * r.Budgeted.BinSeconds
		if int(mid/3600) == peakHour {
			addedPeak += b
		}
	}
	return addedPeak / float64(r.Days) / basePeak
}

// Report is the machine-readable summary of a run — what cmd/3golfleet
// emits with -json and what the golden determinism test pins. All
// fields derive from the merged Result alone.
type Report struct {
	Homes           int64 `json:"homes"`
	Viewers         int64 `json:"viewers"`
	Days            int   `json:"days"`
	Sessions        int64 `json:"sessions"`
	BoostedSessions int64 `json:"boosted_sessions"`

	SpeedupP50     float64 `json:"speedup_p50"`
	SpeedupP90     float64 `json:"speedup_p90"`
	SpeedupP99     float64 `json:"speedup_p99"`
	FracSpeedup12  float64 `json:"frac_speedup_ge_1_2"`
	OnloadedMBPerH float64 `json:"onloaded_mb_per_home_day"`

	BackhaulMbps      float64 `json:"backhaul_mbps"`
	BudgetedPeakMbps  float64 `json:"budgeted_peak_mbps"`
	UnlimitedPeakMbps float64 `json:"unlimited_peak_mbps"`
	BudgetedCrossBins int     `json:"budgeted_backhaul_cross_bins"`
	UnlimitedCross    int     `json:"unlimited_backhaul_cross_bins"`

	TotalIncrease float64 `json:"total_increase"`
	PeakIncrease  float64 `json:"peak_increase"`
}

// Report summarises the merged result.
func (r *Result) Report() Report {
	bCross, uCross := r.BackhaulCrossings()
	rep := Report{
		Homes:             r.Homes,
		Viewers:           r.Viewers,
		Days:              r.Days,
		Sessions:          r.Sessions,
		BoostedSessions:   r.BoostedSessions,
		SpeedupP50:        r.Speedups.Quantile(0.5),
		SpeedupP90:        r.Speedups.Quantile(0.9),
		SpeedupP99:        r.Speedups.Quantile(0.99),
		FracSpeedup12:     1 - r.Speedups.At(1.2),
		BackhaulMbps:      r.BackhaulMbps,
		BudgetedPeakMbps:  Peak(r.Budgeted.Mbps(r.Days)),
		UnlimitedPeakMbps: Peak(r.Unlimited.Mbps(r.Days)),
		BudgetedCrossBins: bCross,
		UnlimitedCross:    uCross,
		TotalIncrease:     r.TotalIncrease(),
		PeakIncrease:      r.PeakIncrease(),
	}
	if r.Homes > 0 {
		rep.OnloadedMBPerH = r.OnloadedBytes / float64(r.Homes) / float64(r.Days) / (1 << 20)
	}
	return rep
}
