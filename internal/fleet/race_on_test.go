//go:build race

package fleet

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation adds allocations that would fail the
// engine's zero-allocation contract tests.
const raceEnabled = true
