package fleet

import (
	"math"

	"threegol/internal/diurnal"
)

// BoostModel is the per-line onloading arithmetic of the paper's §6
// analysis, extracted here so the fleet engine and the tracesim figure
// adapters compute byte-for-byte the same speedups: during a boost the
// download runs at DSL+3G with the 3G share metered against a budget;
// once the budget runs dry the remainder goes over DSL alone.
type BoostModel struct {
	// DSLBits is the line's downlink sync rate in bits/s.
	DSLBits float64
	// G3Bits is the household's aggregate 3G rate in bits/s.
	G3Bits float64
	// MinBoostBytes is the smallest transfer worth boosting (paper:
	// 750 KB, anything needing >2 s on DSL).
	MinBoostBytes float64
}

// Share returns the fraction of bytes the 3G paths carry for a
// simultaneous finish of both legs.
func (m BoostModel) Share() float64 {
	return m.G3Bits / (m.DSLBits + m.G3Bits)
}

// Boost is the outcome of one transfer under the model.
type Boost struct {
	// DSLSeconds is the transfer's latency over DSL alone.
	DSLSeconds float64
	// BoostSeconds is the latency with budgeted onloading (equals
	// DSLSeconds when nothing was onloaded).
	BoostSeconds float64
	// OnloadedBytes is the volume metered against the budget.
	OnloadedBytes float64
}

// Apply runs one transfer of sizeBytes against the remaining budget.
// Ideal onloading for simultaneous finish carries Share() of the bytes;
// the budget may cap it, in which case the DSL leg carries the rest and
// the transfer ends when the slower leg finishes.
func (m BoostModel) Apply(sizeBytes, budget float64) Boost {
	dslTime := sizeBytes * 8 / m.DSLBits
	if sizeBytes < m.MinBoostBytes || budget <= 0 {
		return Boost{DSLSeconds: dslTime, BoostSeconds: dslTime}
	}
	onload := math.Min(sizeBytes*m.Share(), budget)
	boosted := math.Max((sizeBytes-onload)*8/m.DSLBits, onload*8/m.G3Bits)
	return Boost{DSLSeconds: dslTime, BoostSeconds: boosted, OnloadedBytes: onload}
}

// LoadBins accumulates transfer bytes into fixed-width time bins over a
// 24-hour day — the raw series behind Fig. 11(b) and the fleet's load
// aggregates. The cell carries onloaded bytes while the download runs,
// not at the instant of the request, so Spread distributes them
// uniformly over the transfer's duration. Multi-day simulations fold
// every day onto the same 24-hour axis by passing day-local start times.
type LoadBins struct {
	BinSeconds float64
	// Bytes holds the accumulated volume per bin.
	Bytes []float64
}

// NewLoadBins creates a day-long accumulator with the given bin width
// (≤ 0 selects the paper's 5-minute bins).
func NewLoadBins(binSeconds float64) *LoadBins {
	if binSeconds <= 0 {
		binSeconds = 300
	}
	nbins := int(math.Ceil(24 * 3600 / binSeconds))
	return &LoadBins{BinSeconds: binSeconds, Bytes: make([]float64, nbins)}
}

// Spread adds `bytes` uniformly over [start, start+dur) seconds of the
// day. A non-positive duration spreads over one bin; time beyond the end
// of the day clamps into the final bin so no volume is lost.
func (l *LoadBins) Spread(start, dur, bytes float64) {
	if dur <= 0 {
		dur = l.BinSeconds
	}
	nbins := len(l.Bytes)
	rate := bytes / dur // bytes per second
	for t := start; t < start+dur; {
		bin := int(t / l.BinSeconds)
		if bin >= nbins {
			bin = nbins - 1
		}
		binEnd := math.Min(float64(bin+1)*l.BinSeconds, start+dur)
		if binEnd <= t {
			// Past the end of the day: the final bin absorbs the rest.
			l.Bytes[bin] += rate * (start + dur - t)
			break
		}
		l.Bytes[bin] += rate * (binEnd - t)
		t = binEnd
	}
}

// Merge folds o into l bin by bin. Mismatched bin widths panic: merging
// differently-binned series is a programmer error.
func (l *LoadBins) Merge(o *LoadBins) {
	if o == nil {
		return
	}
	if l.BinSeconds != o.BinSeconds || len(l.Bytes) != len(o.Bytes) {
		panic("fleet: merging LoadBins with different bin layouts")
	}
	for i, b := range o.Bytes {
		l.Bytes[i] += b
	}
}

// Mbps converts the accumulated per-bin bytes into an average-rate
// series in Mbps, dividing by `days` so multi-day folds report a
// per-day profile (days ≤ 0 selects 1).
func (l *LoadBins) Mbps(days int) []float64 {
	if days <= 0 {
		days = 1
	}
	out := make([]float64, len(l.Bytes))
	for i, b := range l.Bytes {
		out[i] = b * 8 / l.BinSeconds / 1e6 / float64(days)
	}
	return out
}

// Peak returns the maximum of a series.
func Peak(series []float64) float64 {
	var peak float64
	for _, v := range series {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// HourlyMass converts a diurnal profile into a 24-slot distribution
// summing to 1 — the shape used to spread daily volumes over the day in
// the Fig. 11(c) adoption analysis and the fleet's peak-increase
// aggregate.
func HourlyMass(p diurnal.Profile) [24]float64 {
	var mass [24]float64
	var total float64
	for h := 0; h < 24; h++ {
		mass[h] = p.At(float64(h))
		total += mass[h]
	}
	if total > 0 {
		for h := range mass {
			mass[h] /= total
		}
	}
	return mass
}
