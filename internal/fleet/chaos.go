package fleet

// Chaos harness: fleet-scale runs of the fault-injection simulator.
// Each home runs one virtual-time chaos transaction (fault.Simulate)
// against a per-home fault plan compiled from a named scenario, and the
// harness checks the scheduler's resilience invariants on every single
// transaction:
//
//   - exactly-once delivery: every item is delivered by exactly one
//     winning replica;
//   - bounded duplicate waste: at every item completion the losing
//     replicas burn at most (N−1)·Sm bytes (the paper's §4.1.1 bound),
//     fault or no fault — requeues may open further endgames, so the
//     cumulative figure is reported but only the per-completion
//     maximum is bounded;
//   - graceful degradation: scenarios that kill every 3G path still
//     complete 100% of items over ADSL alone.
//
// The harness rides the engine's shard/merge machinery, so chaos
// results inherit the same contract as fleet results: bit-identical
// output for every worker count.

import (
	"fmt"
	"math/rand"

	"threegol/internal/fault"
	"threegol/internal/obs/eventlog"
)

// chaos path names: one ADSL line plus two phones per home, matching
// the paper's household shape. Only the phones are ever faulted.
var chaosPhones = []string{"phone1", "phone2"}

// ChaosConfig describes one chaos fleet run. (Homes, Shards, Seed,
// Scenario) pin the run exactly; worker count never affects results.
type ChaosConfig struct {
	// Homes is the number of chaos transactions (one per home).
	Homes int
	// Shards partitions the homes (0 selects 8); same semantics as
	// Config.Shards.
	Shards int
	// Seed derives every shard's RNG stream and every home's fault
	// plan.
	Seed int64
	// Scenario names the fault schedule each home's phones suffer.
	Scenario fault.Scenario
	// HorizonSeconds bounds recurring scenarios' schedules (0 selects
	// 120).
	HorizonSeconds float64
	// ItemsPerHome is the transaction size in items (0 selects 8).
	ItemsPerHome int
	// Events enables the flight recorder: one span per transaction and
	// a point per invariant violation, merged deterministically across
	// shards (same contract as Config.Events).
	Events bool
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.HorizonSeconds <= 0 {
		c.HorizonSeconds = 120
	}
	if c.ItemsPerHome <= 0 {
		c.ItemsPerHome = 8
	}
	if c.Scenario == "" {
		c.Scenario = fault.ScenarioNone
	}
	return c
}

// ChaosResult is the chaos harness's Mergeable accumulator.
type ChaosResult struct {
	Homes     int64
	Items     int64
	Delivered int64
	// ADSLItems / PhoneItems split deliveries by carrying path class.
	ADSLItems  int64
	PhoneItems int64
	// Failed counts transactions that aborted (an item exhausted its
	// budget on every path) — always 0 while ADSL stays clean.
	Failed int64
	// Invariant violations, each counted per offending transaction.
	NotExactlyOnce  int64
	WasteBoundBreak int64
	// Aggregated resilience activity.
	DuplicateWaste int64
	// MaxCompletionWaste is the fleet-wide maximum of any single
	// completion's loser waste — the §4.1.1-bounded quantity.
	MaxCompletionWaste int64
	FailureWaste       int64
	Requeues           int64
	Duplicates         int64
	StallAborts        int64
	BreakerOpens       int64
	// ElapsedSeconds sums the transactions' virtual completion times.
	ElapsedSeconds float64

	events *eventlog.Log
}

// EventLog returns the merged chaos flight recorder, or nil when the
// run was configured without ChaosConfig.Events.
func (r *ChaosResult) EventLog() *eventlog.Log { return r.events }

// Merge folds src into r in shard order; see Mergeable.
func (r *ChaosResult) Merge(src *ChaosResult) {
	if src == nil {
		return
	}
	r.Homes += src.Homes
	r.Items += src.Items
	r.Delivered += src.Delivered
	r.ADSLItems += src.ADSLItems
	r.PhoneItems += src.PhoneItems
	r.Failed += src.Failed
	r.NotExactlyOnce += src.NotExactlyOnce
	r.WasteBoundBreak += src.WasteBoundBreak
	r.DuplicateWaste += src.DuplicateWaste
	if src.MaxCompletionWaste > r.MaxCompletionWaste {
		r.MaxCompletionWaste = src.MaxCompletionWaste
	}
	r.FailureWaste += src.FailureWaste
	r.Requeues += src.Requeues
	r.Duplicates += src.Duplicates
	r.StallAborts += src.StallAborts
	r.BreakerOpens += src.BreakerOpens
	r.ElapsedSeconds += src.ElapsedSeconds
	if r.events != nil && src.events != nil {
		r.events.Merge(src.events)
	}
}

// ChaosReport is the machine-readable summary — what 3golfleet -chaos
// -json emits and what the determinism test pins byte for byte.
type ChaosReport struct {
	Scenario        string  `json:"scenario"`
	Homes           int64   `json:"homes"`
	Items           int64   `json:"items"`
	Delivered       int64   `json:"delivered"`
	ADSLItems       int64   `json:"adsl_items"`
	PhoneItems      int64   `json:"phone_items"`
	Failed          int64   `json:"failed_transactions"`
	NotExactlyOnce  int64   `json:"not_exactly_once"`
	WasteBoundBreak int64   `json:"waste_bound_violations"`
	DuplicateWaste  int64   `json:"duplicate_waste_bytes"`
	MaxComplWaste   int64   `json:"max_completion_waste_bytes"`
	FailureWaste    int64   `json:"failure_waste_bytes"`
	Requeues        int64   `json:"requeues"`
	Duplicates      int64   `json:"duplicates"`
	StallAborts     int64   `json:"stall_aborts"`
	BreakerOpens    int64   `json:"breaker_opens"`
	MeanElapsedSecs float64 `json:"mean_elapsed_s"`
}

// Report summarises the merged chaos result.
func (r *ChaosResult) Report(scenario fault.Scenario) ChaosReport {
	rep := ChaosReport{
		Scenario:        string(scenario),
		Homes:           r.Homes,
		Items:           r.Items,
		Delivered:       r.Delivered,
		ADSLItems:       r.ADSLItems,
		PhoneItems:      r.PhoneItems,
		Failed:          r.Failed,
		NotExactlyOnce:  r.NotExactlyOnce,
		WasteBoundBreak: r.WasteBoundBreak,
		DuplicateWaste:  r.DuplicateWaste,
		MaxComplWaste:   r.MaxCompletionWaste,
		FailureWaste:    r.FailureWaste,
		Requeues:        r.Requeues,
		Duplicates:      r.Duplicates,
		StallAborts:     r.StallAborts,
		BreakerOpens:    r.BreakerOpens,
	}
	if r.Homes > 0 {
		rep.MeanElapsedSecs = r.ElapsedSeconds / float64(r.Homes)
	}
	return rep
}

// Healthy reports whether the run upheld every resilience invariant:
// no failed transactions, exactly-once delivery everywhere, and the
// duplicate-waste bound respected by every transaction.
func (rep ChaosReport) Healthy() bool {
	return rep.Failed == 0 && rep.NotExactlyOnce == 0 && rep.WasteBoundBreak == 0 &&
		rep.Delivered == rep.Items
}

// RunChaos simulates the configured chaos fleet on `workers` goroutines
// and returns the merged result. The output depends only on cfg.
func RunChaos(cfg ChaosConfig, workers int) (*ChaosResult, error) {
	if cfg.Homes <= 0 {
		return nil, fmt.Errorf("fleet: chaos config needs Homes > 0, got %d", cfg.Homes)
	}
	cfg = cfg.withDefaults()
	if _, err := fault.ParseScenario(string(cfg.Scenario)); err != nil {
		return nil, err
	}
	shards := Shards(Config{Homes: cfg.Homes, Shards: cfg.Shards, Seed: cfg.Seed})
	res := MapReduce(shards, workers, func(sh Shard) *ChaosResult {
		return simulateChaosShard(cfg, sh)
	})
	return res, nil
}

// simulateChaosShard runs one shard's homes sequentially on the shard's
// private RNG stream, checking invariants per transaction.
func simulateChaosShard(cfg ChaosConfig, sh Shard) *ChaosResult {
	rng := newShardRNG(sh)
	r := &ChaosResult{}
	var vt float64 // shard-virtual time: transactions laid end to end
	if cfg.Events {
		// Same derivation discipline as newResult: IDs from (cfg.Seed,
		// shard index), times from the shard's virtual timeline.
		r.events = eventlog.New(sh.Index, cfg.Seed, func() float64 { return vt })
	}
	for i := 0; i < sh.Homes; i++ {
		homeID := sh.First + i
		simCfg, maxItem := chaosHomeConfig(cfg, homeID, rng)
		rep, err := fault.Simulate(simCfg)
		if err != nil {
			// Simulator-internal invariant failure: count as a failed
			// transaction so CI trips loudly instead of dropping it.
			r.Homes++
			r.Failed++
			continue
		}
		recordChaosHome(r, cfg, homeID, rep, simCfg, maxItem)
		// Transactions lie end to end on the shard's virtual timeline.
		vt += rep.Elapsed
	}
	return r
}

// chaosHomeConfig derives one home's simulation: item sizes and path
// rates from the shard stream, the fault plan from the home's own
// seed-mixed stream (so a home's schedule is independent of its
// neighbours' draws).
func chaosHomeConfig(cfg ChaosConfig, homeID int, rng *rand.Rand) (fault.SimConfig, int64) {
	items := make([]int64, cfg.ItemsPerHome)
	var maxItem int64
	for j := range items {
		// Video-segment-scale items: 200 KB – 1.2 MB.
		items[j] = int64(200e3 + rng.Float64()*1e6)
		if items[j] > maxItem {
			maxItem = items[j]
		}
	}
	planSeed := fault.MixSeed(cfg.Seed, homeID, 0)
	plan := fault.MustCompile(cfg.Scenario, planSeed, chaosPhones, cfg.HorizonSeconds)
	return fault.SimConfig{
		Paths: []fault.SimPath{
			// ADSL2+ at ~1 Mbps payload vs HSPA phones near 300 KB/s —
			// the boost regime where 3G carries most bytes when alive.
			{Name: "adsl", Rate: 125e3},
			{Name: chaosPhones[0], Rate: 300e3},
			{Name: chaosPhones[1], Rate: 300e3},
		},
		Items:            items,
		Plan:             plan,
		MaxRetries:       4,
		BackoffBase:      0.1,
		BackoffMax:       2,
		Jitter:           0.5,
		Seed:             fault.MixSeed(cfg.Seed, homeID, 1),
		StallTimeout:     2,
		BreakerThreshold: 3,
		BreakerCooldown:  1,
	}, maxItem
}

// recordChaosHome folds one transaction's report into the accumulator,
// checking the per-transaction invariants.
func recordChaosHome(r *ChaosResult, cfg ChaosConfig, homeID int, rep *fault.SimReport, simCfg fault.SimConfig, maxItem int64) {
	r.Homes++
	r.Items += int64(len(simCfg.Items))
	r.DuplicateWaste += rep.DuplicateWaste
	if rep.MaxCompletionWaste > r.MaxCompletionWaste {
		r.MaxCompletionWaste = rep.MaxCompletionWaste
	}
	r.FailureWaste += rep.FailureWaste
	r.Requeues += int64(rep.Requeues)
	r.Duplicates += int64(rep.Duplicates)
	r.StallAborts += int64(rep.StallAborts)
	r.BreakerOpens += int64(rep.BreakerOpens)
	r.ElapsedSeconds += rep.Elapsed

	var sp eventlog.Span
	if r.events != nil {
		sp = r.events.Begin(eventlog.TraceContext{}, "chaos.transaction",
			"home", eventlog.Int(int64(homeID)),
			"scenario", string(cfg.Scenario),
			"items", eventlog.Int(int64(len(simCfg.Items))))
	}

	failed := rep.Failed != ""
	if failed {
		r.Failed++
	}
	exactlyOnce := !failed
	for _, d := range rep.Delivered {
		if d == 1 {
			r.Delivered++
		} else {
			exactlyOnce = false
		}
	}
	if !failed && !exactlyOnce {
		r.NotExactlyOnce++
		r.events.Point(sp.Context(), "chaos.violation",
			"invariant", "exactly_once", "home", eventlog.Int(int64(homeID)))
	}
	// The §4.1.1 endgame bound: at any completion, losers burn at most
	// (N−1)·Sm. Cumulative waste is reported but unbounded per se —
	// every requeue may open another endgame.
	if bound := int64(len(simCfg.Paths)-1) * maxItem; rep.MaxCompletionWaste > bound {
		r.WasteBoundBreak++
		r.events.Point(sp.Context(), "chaos.violation",
			"invariant", "waste_bound", "home", eventlog.Int(int64(homeID)),
			"waste", eventlog.Int(rep.MaxCompletionWaste), "bound", eventlog.Int(bound))
	}
	for name, st := range map[string]fault.SimPathStats{
		"adsl":         rep.PerPath["adsl"],
		chaosPhones[0]: rep.PerPath[chaosPhones[0]],
		chaosPhones[1]: rep.PerPath[chaosPhones[1]],
	} {
		if name == "adsl" {
			r.ADSLItems += int64(st.Items)
		} else {
			r.PhoneItems += int64(st.Items)
		}
	}
	if r.events != nil {
		outcome := "ok"
		if failed {
			outcome = "failed"
		}
		sp.EndAt(r.events.Now()+rep.Elapsed,
			"outcome", outcome,
			"stall_aborts", eventlog.Int(int64(rep.StallAborts)),
			"breaker_opens", eventlog.Int(int64(rep.BreakerOpens)),
			"duplicate_waste", eventlog.Int(rep.DuplicateWaste))
	}
}
