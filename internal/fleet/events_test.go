package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"threegol/internal/obs/eventlog"
)

// The flight-recorder analogue of TestRunDeterministicAcrossWorkers:
// the merged event stream serialises to identical bytes for every
// worker count, and the stream passes the structural checker.
func TestEventLogDeterministicAcrossWorkers(t *testing.T) {
	cfg := testConfig()
	cfg.Events = true

	dump := func(workers int) []byte {
		t.Helper()
		res, err := Run(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.EventLog().WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes()
	}

	base := dump(1)
	if len(base) == 0 {
		t.Fatal("workers=1 produced an empty event stream")
	}
	for _, workers := range []int{4, 16} {
		if got := dump(workers); !bytes.Equal(base, got) {
			t.Errorf("workers=%d produced a different event stream than workers=1 (%d vs %d bytes)",
				workers, len(got), len(base))
		}
	}

	events, err := eventlog.ReadJSONL(bytes.NewReader(base))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	st, err := eventlog.Check(events)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if st.Spans == 0 || st.Traces == 0 {
		t.Fatalf("stream has no spans/traces: %+v", st)
	}
	if st.Unended != 0 {
		t.Fatalf("fleet stream left %d spans unended", st.Unended)
	}
}

// A session trace must reconstruct into a critical path whose head is
// the session and whose tail is the gating transfer leg, with the leg
// durations matching the boost model.
func TestSessionTraceCriticalPath(t *testing.T) {
	cfg := testConfig()
	cfg.Events = true
	res, err := Run(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := eventlog.Assemble(res.EventLog().Events())
	if len(a.Traces) == 0 {
		t.Fatal("no traces assembled")
	}
	checked, boosted := 0, 0
	for _, tr := range a.Traces {
		if len(tr.Roots) != 1 {
			t.Fatalf("trace %s has %d roots, want 1", tr.ID, len(tr.Roots))
		}
		root := tr.Roots[0]
		if root.Name != "fleet.session" {
			t.Fatalf("trace %s root = %q, want fleet.session", tr.ID, root.Name)
		}
		steps := tr.CriticalPath()
		if len(steps) < 2 {
			t.Fatalf("trace %s critical path has %d steps, want ≥ 2", tr.ID, len(steps))
		}
		if steps[0].Span != root {
			t.Fatalf("trace %s critical path does not start at the session", tr.ID)
		}
		leg := steps[1].Span
		if !strings.HasPrefix(leg.Name, "fleet.path.") {
			t.Fatalf("trace %s critical step 2 = %q, want a transfer leg", tr.ID, leg.Name)
		}
		// The gating leg ends when the session ends: the critical path
		// is exactly "which path dominated transaction time".
		if leg.End != root.End {
			t.Fatalf("trace %s gating leg ends at %v, session at %v", tr.ID, leg.End, root.End)
		}
		if len(root.Children) == 2 {
			boosted++
		}
		checked++
	}
	if checked == 0 || boosted == 0 {
		t.Fatalf("checked %d traces, %d boosted — population too small to exercise both shapes", checked, boosted)
	}
}

// The Chrome export of a real fleet stream decodes against the
// trace_event schema (the per-event schema details are pinned in the
// eventlog package tests; this guards the fleet-shaped payload).
func TestFleetChromeExport(t *testing.T) {
	cfg := testConfig()
	cfg.Homes = 100
	cfg.Events = true
	res, err := Run(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eventlog.WriteChromeTrace(&buf, res.EventLog().Events()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid trace_event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export is empty")
	}
	shards := make(map[int]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "i" {
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		shards[ev.Pid] = true
	}
	if len(shards) < 2 {
		t.Fatalf("export covers %d shard pids, want ≥ 2", len(shards))
	}
}

// Events default off: no log is allocated and EventLog returns nil.
func TestEventsOffByDefault(t *testing.T) {
	res, err := Run(Config{Homes: 50, Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventLog() != nil {
		t.Fatal("EventLog non-nil without Config.Events")
	}
}
