package fleet

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"threegol/internal/stats"
)

// The streaming MapReduce must be byte-identical to the all-resident
// reference fold at every worker count: same accumulator (DeepEqual over
// counters, float totals, sketch counts, load bins), same report JSON,
// same metrics dump, same event stream. This is the guarantee that lets
// production paths stream (O(workers) resident accumulators) while tests
// and goldens keep their materialise-then-fold semantics.
func TestStreamingMergeMatchesResident(t *testing.T) {
	// Accumulator identity on the plain config: DeepEqual covers every
	// counter, float total, sketch count and load bin exactly. (The
	// instrumented config below is compared byte-wise instead, because
	// the flight recorder holds a func-typed time source, which
	// DeepEqual never reports equal.)
	plain := testConfig().withDefaults()
	plainShards := Shards(plain)
	simPlain := func(sh Shard) *Result { return simulateShard(plain, sh) }
	want := mapReduceResident(plainShards, 1, simPlain)
	for _, workers := range []int{1, 4, 16} {
		if got := MapReduce(plainShards, workers, simPlain); !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: streaming fold differs from the resident reference accumulator", workers)
		}
		if got := mapReduceResident(plainShards, workers, simPlain); !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: resident fold differs from its workers=1 run", workers)
		}
	}

	// Serialisation identity on the fully instrumented config: report
	// JSON, metrics dump and event stream must match byte for byte
	// between the streaming and resident folds at every worker count.
	cfg := testConfig()
	cfg.Metrics = true
	cfg.Events = true
	cfg = cfg.withDefaults() // Run applies this before MapReduce; simulateShard expects it
	shards := Shards(cfg)
	sim := func(sh Shard) *Result { return simulateShard(cfg, sh) }

	snapshot := func(res *Result) (report, metrics, events []byte) {
		t.Helper()
		var err error
		if report, err = json.Marshal(res.Report()); err != nil {
			t.Fatal(err)
		}
		if metrics, err = json.Marshal(res.MetricsRegistry().Snapshot()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.EventLog().WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return report, metrics, buf.Bytes()
	}

	wantReport, wantMetrics, wantEvents := snapshot(mapReduceResident(shards, 1, sim))
	if len(wantEvents) == 0 {
		t.Fatal("reference fold produced an empty event stream")
	}
	for _, workers := range []int{1, 4, 16} {
		report, metrics, events := snapshot(MapReduce(shards, workers, sim))
		if !bytes.Equal(report, wantReport) {
			t.Errorf("workers=%d: streaming report JSON drifted", workers)
		}
		if !bytes.Equal(metrics, wantMetrics) {
			t.Errorf("workers=%d: streaming metrics dump drifted", workers)
		}
		if !bytes.Equal(events, wantEvents) {
			t.Errorf("workers=%d: streaming event stream drifted (%d vs %d bytes)",
				workers, len(events), len(wantEvents))
		}
	}
}

// innerLoopFixture builds a warmed shard — scratch columns sized, queue
// and sort buffers grown to the day's session count, RNG advanced past
// population generation — so that measuring runDay isolates the
// steady-state per-home inner loop.
func innerLoopFixture(homes int) (cfg Config, sh Shard, run func(day int)) {
	cfg = Config{Homes: homes, Days: 1, Shards: 1, Seed: 1}.withDefaults()
	sh = Shards(cfg)[0]
	sc := cfg.Scenario
	rng := newShardRNG(sh)
	sizeDist := stats.LogNormalFromMoments(sc.MeanVideoBytes, sc.MeanVideoBytes*0.9)
	g3 := float64(sc.Devices) * sc.PhoneBits
	now := new(float64)
	res := newResult(cfg, sh, func() float64 { return *now })
	st := getScratch(sh.Homes, sc.HistoryMonths)
	genHomes(cfg, sh, rng, st, res)
	runDay(cfg, sh, 0, rng, st, res, now, sizeDist, g3) // warm queue/sorted to capacity
	return cfg, sh, func(day int) {
		runDay(cfg, sh, day, rng, st, res, now, sizeDist, g3)
	}
}

// BenchmarkFleetInnerLoop times one simulated day over a warmed scratch:
// the engine's hot path with setup amortised away. With -benchmem it
// must report 0 allocs/op — scripts/bench.sh gates on exactly that.
func BenchmarkFleetInnerLoop(b *testing.B) {
	const homes = 2000
	_, _, run := innerLoopFixture(homes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(i)
	}
	b.ReportMetric(float64(homes)*float64(b.N)/b.Elapsed().Seconds(), "homes/s")
}

// The allocation contract as a plain test, so `go test` catches a
// regression without anyone reading benchmark output. Skipped under the
// race detector, which instruments allocations.
func TestInnerLoopAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	_, _, run := innerLoopFixture(2000)
	day := 1
	allocs := testing.AllocsPerRun(10, func() {
		run(day)
		day++
	})
	if allocs != 0 {
		t.Errorf("per-home inner loop allocates %.1f times per day, want 0", allocs)
	}
}
