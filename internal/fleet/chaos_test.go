package fleet

import (
	"bytes"
	"encoding/json"
	"testing"

	"threegol/internal/fault"
	"threegol/internal/obs/eventlog"
)

func chaosJSON(t *testing.T, cfg ChaosConfig, workers int) []byte {
	t.Helper()
	res, err := RunChaos(cfg, workers)
	if err != nil {
		t.Fatalf("RunChaos(workers=%d): %v", workers, err)
	}
	out, err := json.Marshal(res.Report(cfg.Scenario))
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return out
}

// TestRunChaosDeterministicAcrossWorkers is the harness's acceptance
// gate: the merged chaos report is byte-identical for every worker
// count, faults and all.
func TestRunChaosDeterministicAcrossWorkers(t *testing.T) {
	for _, sc := range []fault.Scenario{fault.ScenarioNone, fault.ScenarioFlaky, fault.ScenarioHostile} {
		cfg := ChaosConfig{Homes: 24, Shards: 8, Seed: 42, Scenario: sc}
		base := chaosJSON(t, cfg, 1)
		for _, workers := range []int{4, 16} {
			got := chaosJSON(t, cfg, workers)
			if !bytes.Equal(base, got) {
				t.Errorf("%s: workers=%d diverged from workers=1:\n  1:  %s\n  %d: %s",
					sc, workers, base, workers, got)
			}
		}
	}
}

// TestRunChaosInvariants runs every catalogued scenario and checks the
// resilience invariants hold: no lost or duplicated deliveries, the
// duplicate-waste bound respected, and no failed transactions (ADSL is
// never faulted, so the scheduler must always finish).
func TestRunChaosInvariants(t *testing.T) {
	for _, sc := range fault.Scenarios() {
		rep := runChaosReport(t, ChaosConfig{Homes: 16, Seed: 7, Scenario: sc})
		if !rep.Healthy() {
			t.Errorf("%s: unhealthy report: %+v", sc, rep)
		}
		if rep.Delivered != rep.Items {
			t.Errorf("%s: delivered %d of %d items", sc, rep.Delivered, rep.Items)
		}
	}
}

func runChaosReport(t *testing.T, cfg ChaosConfig) ChaosReport {
	t.Helper()
	res, err := RunChaos(cfg, 4)
	if err != nil {
		t.Fatalf("RunChaos(%+v): %v", cfg, err)
	}
	return res.Report(cfg.withDefaults().Scenario)
}

// TestRunChaosBlackoutAllDegradesToADSL pins graceful degradation at
// fleet scale: with every phone dead for the whole run, 100% of items
// still complete, all of them over ADSL.
func TestRunChaosBlackoutAllDegradesToADSL(t *testing.T) {
	rep := runChaosReport(t, ChaosConfig{Homes: 12, Seed: 3, Scenario: fault.ScenarioBlackoutAll})
	if rep.Delivered != rep.Items {
		t.Fatalf("blackout-all: delivered %d of %d items", rep.Delivered, rep.Items)
	}
	if rep.PhoneItems != 0 {
		t.Errorf("blackout-all: phones carried %d items, want 0", rep.PhoneItems)
	}
	if rep.ADSLItems != rep.Items {
		t.Errorf("blackout-all: ADSL carried %d of %d items", rep.ADSLItems, rep.Items)
	}
	if rep.BreakerOpens == 0 {
		t.Error("blackout-all: breaker never opened on the dead phones")
	}
	if !rep.Healthy() {
		t.Errorf("blackout-all: unhealthy report: %+v", rep)
	}
}

// TestRunChaosHostileExercisesResilience checks the hostile scenario
// actually drives the machinery it is meant to test.
func TestRunChaosHostileExercisesResilience(t *testing.T) {
	rep := runChaosReport(t, ChaosConfig{Homes: 16, Seed: 11, Scenario: fault.ScenarioHostile})
	if rep.Requeues == 0 {
		t.Error("hostile: no requeues — faults never landed mid-transfer")
	}
	if rep.FailureWaste == 0 {
		t.Error("hostile: no failure waste — killed attempts left no trace")
	}
}

// TestRunChaosEvents checks the chaos flight recorder: one span per
// transaction, structurally sound, and byte-identical across worker
// counts like everything else.
func TestRunChaosEvents(t *testing.T) {
	cfg := ChaosConfig{Homes: 10, Shards: 4, Seed: 5, Scenario: fault.ScenarioFlaky, Events: true}
	res, err := RunChaos(cfg, 1)
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	log := res.EventLog()
	if log == nil {
		t.Fatal("Events: true but EventLog() == nil")
	}
	events := log.Events()
	if _, err := eventlog.Check(events); err != nil {
		t.Fatalf("eventlog.Check: %v", err)
	}
	begins := 0
	for _, ev := range events {
		if ev.Kind == eventlog.KindBegin && ev.Name == "chaos.transaction" {
			begins++
		}
	}
	if begins != cfg.Homes {
		t.Errorf("chaos.transaction spans = %d, want %d", begins, cfg.Homes)
	}

	var buf1, buf4 bytes.Buffer
	if err := log.WriteJSONL(&buf1); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	res4, err := RunChaos(cfg, 4)
	if err != nil {
		t.Fatalf("RunChaos(workers=4): %v", err)
	}
	if err := res4.EventLog().WriteJSONL(&buf4); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if !bytes.Equal(buf1.Bytes(), buf4.Bytes()) {
		t.Error("chaos eventlog diverged between workers=1 and workers=4")
	}
}

func TestRunChaosValidation(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{Homes: 0}, 1); err == nil {
		t.Error("Homes: 0 accepted")
	}
	if _, err := RunChaos(ChaosConfig{Homes: 4, Scenario: "earthquake"}, 1); err == nil {
		t.Error("unknown scenario accepted")
	}
}
