package fleet

import (
	"strconv"

	"threegol/internal/obs"
)

// Metrics holds the fleet engine's instruments, one Registry per shard
// accumulator. Per-shard counters carry the shard index as a label, so a
// merged dump shows how the population and its activity were partitioned;
// the speedup histogram is unlabelled and merges exactly across shards.
//
// Determinism: every instrument derives from the shard simulation alone —
// no wall-clock rates, no timestamps — so the merged registry's JSON dump
// is bit-identical for every worker count, exactly like Result itself.
type Metrics struct {
	reg   *obs.Registry
	shard string

	// Homes counts generated households, by shard.
	Homes *obs.Counter
	// Sessions counts video sessions simulated, by shard.
	Sessions *obs.Counter
	// BoostedSessions counts sessions that onloaded at least one byte,
	// by shard.
	BoostedSessions *obs.Counter
	// OnloadedBytes counts 3G-carried video bytes (truncated to whole
	// bytes), by shard.
	OnloadedBytes *obs.Counter
	// Speedup sketches the per-home-day DSL/boost latency ratio —
	// the same observations as Result.Speedups, in histogram form.
	Speedup *obs.Histogram
}

// NewMetrics registers the fleet engine's metrics on r for the given
// shard. Every shard must call this with the same registration order
// (guaranteed by construction here) so shard registries merge exactly.
func NewMetrics(r *obs.Registry, shard int) *Metrics {
	return &Metrics{
		reg:   r,
		shard: strconv.Itoa(shard),
		Homes: r.NewCounter("fleet_shard_homes_total",
			"Households generated, by shard.", "shard"),
		Sessions: r.NewCounter("fleet_shard_sessions_total",
			"Video sessions simulated, by shard.", "shard"),
		BoostedSessions: r.NewCounter("fleet_shard_boosted_sessions_total",
			"Sessions that onloaded at least one byte, by shard.", "shard"),
		OnloadedBytes: r.NewCounter("fleet_shard_onloaded_bytes_total",
			"3G-carried video bytes (whole bytes), by shard.", "shard"),
		Speedup: r.NewHistogram("fleet_speedup",
			"Per-home-day DSL/boost latency ratio (the Fig. 11(a) CDF).",
			speedupLo, speedupHi, speedupBins),
	}
}

// Registry exposes the backing registry (for dumps and merging).
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

func (m *Metrics) home() {
	if m == nil {
		return
	}
	m.Homes.With(m.shard).Inc()
}

func (m *Metrics) session(onloaded float64) {
	if m == nil {
		return
	}
	m.Sessions.With(m.shard).Inc()
	if onloaded > 0 {
		m.BoostedSessions.With(m.shard).Inc()
		m.OnloadedBytes.With(m.shard).Add(int64(onloaded))
	}
}

func (m *Metrics) speedup(x float64) {
	if m == nil {
		return
	}
	m.Speedup.Observe(x)
}
