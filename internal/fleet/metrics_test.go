package fleet

import (
	"bytes"
	"testing"
)

// metricsDump runs the config with instrumentation on and returns the
// merged registry's JSON dump.
func metricsDump(t *testing.T, cfg Config, workers int) []byte {
	t.Helper()
	res, err := Run(cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	reg := res.MetricsRegistry()
	if reg == nil {
		t.Fatal("Config.Metrics set but MetricsRegistry() returned nil")
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The observability counterpart of TestRunDeterministicAcrossWorkers:
// with instrumentation on, the merged registry dump is byte-identical
// for every worker count — metrics obey the same merge-reduce contract
// as the Result they ride on.
func TestMetricsDumpDeterministicAcrossWorkers(t *testing.T) {
	cfg := testConfig()
	cfg.Metrics = true
	base := metricsDump(t, cfg, 1)
	if len(base) == 0 {
		t.Fatal("empty metrics dump")
	}
	for _, workers := range []int{4, 16} {
		if got := metricsDump(t, cfg, workers); !bytes.Equal(base, got) {
			t.Errorf("workers=%d produced a different metrics dump than workers=1", workers)
		}
	}
}

// Without Config.Metrics the engine must not pay for instrumentation.
func TestMetricsOffByDefault(t *testing.T) {
	res, err := Run(testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MetricsRegistry() != nil {
		t.Error("MetricsRegistry() non-nil without Config.Metrics")
	}
}
