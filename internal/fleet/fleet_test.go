package fleet

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"threegol/internal/diurnal"
	"threegol/internal/dsl"
	"threegol/internal/traces"
)

var update = flag.Bool("update", false, "rewrite the golden report under testdata")

func testConfig() Config {
	return Config{Homes: 1500, Days: 2, Shards: 8, Seed: 11}
}

// The tentpole guarantee: the merged output is bit-identical for every
// worker count. DeepEqual over the full accumulator (counters, float
// totals, sketch counts, load bins) is exact equality — no tolerances.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	cfg := testConfig()
	base, err := Run(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 16} {
		got, err := Run(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d produced a different merged result than workers=1", workers)
		}
	}
}

// goldenReport renders the report with rounded floats: cross-worker
// determinism is pinned exactly above; the golden file additionally
// pins the values across sessions without being brittle to last-ulp
// differences between architectures (FMA contraction).
func goldenReport(rep Report) string {
	round := func(v float64) float64 {
		return math.Round(v*1e6) / 1e6
	}
	rep.SpeedupP50 = round(rep.SpeedupP50)
	rep.SpeedupP90 = round(rep.SpeedupP90)
	rep.SpeedupP99 = round(rep.SpeedupP99)
	rep.FracSpeedup12 = round(rep.FracSpeedup12)
	rep.OnloadedMBPerH = round(rep.OnloadedMBPerH)
	rep.BackhaulMbps = round(rep.BackhaulMbps)
	rep.BudgetedPeakMbps = round(rep.BudgetedPeakMbps)
	rep.UnlimitedPeakMbps = round(rep.UnlimitedPeakMbps)
	rep.TotalIncrease = round(rep.TotalIncrease)
	rep.PeakIncrease = round(rep.PeakIncrease)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	return string(b) + "\n"
}

func TestRunGoldenReport(t *testing.T) {
	res, err := Run(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	got := goldenReport(res.Report())
	path := filepath.Join("testdata", "golden_report.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/fleet -run TestRunGoldenReport -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("report drifted from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestShardsPartition(t *testing.T) {
	for _, tc := range []struct{ homes, shards int }{
		{100, 8}, {7, 16}, {1, 1}, {18000, 7}, {5, 5},
	} {
		cfg := Config{Homes: tc.homes, Shards: tc.shards, Seed: 3}
		shards := Shards(cfg)
		next, total := 0, 0
		min, max := tc.homes, 0
		for i, sh := range shards {
			if sh.Index != i {
				t.Fatalf("shard %d has Index %d", i, sh.Index)
			}
			if sh.Seed != cfg.Seed^int64(i) {
				t.Fatalf("shard %d seed %d, want %d", i, sh.Seed, cfg.Seed^int64(i))
			}
			if sh.First != next {
				t.Fatalf("shard %d starts at %d, want %d (gap or overlap)", i, sh.First, next)
			}
			next += sh.Homes
			total += sh.Homes
			if sh.Homes < min {
				min = sh.Homes
			}
			if sh.Homes > max {
				max = sh.Homes
			}
		}
		if total != tc.homes {
			t.Errorf("%d homes over %d shards: partition covers %d", tc.homes, tc.shards, total)
		}
		if max-min > 1 {
			t.Errorf("%d homes over %d shards: sizes spread %d..%d, want near-equal", tc.homes, tc.shards, min, max)
		}
	}
}

func TestRunRejectsEmptyPopulation(t *testing.T) {
	if _, err := Run(Config{}, 1); err == nil {
		t.Error("Run with Homes=0 should error")
	}
}

func TestOnloadingRespectsBudgets(t *testing.T) {
	res, err := Run(Config{Homes: 800, Days: 3, Shards: 4, Seed: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.OnloadedBytes > res.BudgetBytes*(1+1e-12) {
		t.Errorf("onloaded %.0f bytes exceeds granted budget %.0f", res.OnloadedBytes, res.BudgetBytes)
	}
	if res.BoostSeconds > res.DSLSeconds {
		t.Errorf("boosted latency %.1f s above DSL-only %.1f s", res.BoostSeconds, res.DSLSeconds)
	}
	if res.Homes != 800 || res.Days != 3 {
		t.Errorf("population accounting: homes=%d days=%d", res.Homes, res.Days)
	}
	if res.Viewers <= 0 || res.Sessions <= 0 {
		t.Errorf("no demand generated: viewers=%d sessions=%d", res.Viewers, res.Sessions)
	}
	// ≈68% of homes are viewers.
	frac := float64(res.Viewers) / float64(res.Homes)
	if frac < 0.58 || frac > 0.78 {
		t.Errorf("viewer fraction = %.2f, want ≈0.68", frac)
	}
}

func TestFixedBudgetScenarioBoostsHalfThePopulation(t *testing.T) {
	// The paper's fixed 20 MB/device scenario on its ≈3 Mbps plant
	// (ADSL1, 1.5 km urban loops): ≥20% speedup for ≥50% of viewing
	// homes (Fig. 11a's population is viewers only).
	cfg := Config{Homes: 3000, Shards: 8, Seed: 42}
	cfg.Scenario.FixedDailyBudgetBytes = 20 * (1 << 20)
	cfg.Scenario.Plant = dsl.Population{Technology: dsl.ADSL1, MeanLoopMetres: 1500}
	res, err := Run(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.FracSpeedup12 < 0.4 {
		t.Errorf("frac with ≥1.2× speedup = %.2f, want ≥0.4 (paper: ≈0.5)", rep.FracSpeedup12)
	}
	if rep.SpeedupP50 < 1.15 {
		t.Errorf("median speedup %.3f, want ≥1.15 (paper: ≥1.2 for 50%%)", rep.SpeedupP50)
	}
	// The unlimited counterfactual dwarfs the budgeted series.
	if rep.UnlimitedPeakMbps < 2*rep.BudgetedPeakMbps {
		t.Errorf("unlimited peak %.1f should dwarf budgeted %.1f",
			rep.UnlimitedPeakMbps, rep.BudgetedPeakMbps)
	}
	if rep.UnlimitedCross <= rep.BudgetedCrossBins {
		t.Errorf("unlimited crossings (%d) should exceed budgeted (%d)",
			rep.UnlimitedCross, rep.BudgetedCrossBins)
	}
	// Peak misalignment (Fig. 1): peak-hour increase below total.
	if rep.PeakIncrease >= rep.TotalIncrease {
		t.Errorf("peak increase %.3f not below total %.3f", rep.PeakIncrease, rep.TotalIncrease)
	}
}

func TestEstimatorBudgetsBelowFixed(t *testing.T) {
	// The guarded estimator (τ=5, α=4) grants less than the paper's
	// fixed 20 MB/device, so the estimator fleet onloads less.
	est, err := Run(Config{Homes: 2000, Shards: 4, Seed: 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	fixed := Config{Homes: 2000, Shards: 4, Seed: 9}
	fixed.Scenario.FixedDailyBudgetBytes = 20 * (1 << 20)
	fx, err := Run(fixed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if est.BudgetBytes >= fx.BudgetBytes {
		t.Errorf("estimator budget %.0f not below fixed %.0f", est.BudgetBytes, fx.BudgetBytes)
	}
	if est.OnloadedBytes >= fx.OnloadedBytes {
		t.Errorf("estimator onloaded %.0f not below fixed %.0f", est.OnloadedBytes, fx.OnloadedBytes)
	}
	if est.OnloadedBytes <= 0 {
		t.Error("estimator scenario onloaded nothing; allowances all zero?")
	}
}

func TestBoostModelProperties(t *testing.T) {
	m := BoostModel{DSLBits: 3e6, G3Bits: 4.8e6, MinBoostBytes: 750 * 1024}
	// Small video: untouched.
	b := m.Apply(100*1024, 1e9)
	if b.OnloadedBytes != 0 || b.BoostSeconds != b.DSLSeconds {
		t.Errorf("small video boosted: %+v", b)
	}
	// No budget: untouched.
	b = m.Apply(10e6, 0)
	if b.OnloadedBytes != 0 || b.BoostSeconds != b.DSLSeconds {
		t.Errorf("zero-budget video boosted: %+v", b)
	}
	// Ample budget: speedup hits the parallel ceiling.
	b = m.Apply(10e6, 1e12)
	ceiling := (m.DSLBits + m.G3Bits) / m.DSLBits
	if sp := b.DSLSeconds / b.BoostSeconds; math.Abs(sp-ceiling) > 1e-9 {
		t.Errorf("unconstrained speedup %.4f, want ceiling %.4f", sp, ceiling)
	}
	// Budget-capped: onload equals the budget, never more.
	b = m.Apply(10e6, 1e6)
	if b.OnloadedBytes != 1e6 {
		t.Errorf("onloaded %.0f, want the 1e6 budget", b.OnloadedBytes)
	}
	if b.BoostSeconds >= b.DSLSeconds {
		t.Errorf("capped boost %.3f s not below DSL %.3f s", b.BoostSeconds, b.DSLSeconds)
	}
}

func TestLoadBinsConservesBytes(t *testing.T) {
	l := NewLoadBins(300)
	if len(l.Bytes) != 288 {
		t.Fatalf("bins = %d, want 288", len(l.Bytes))
	}
	total := 0.0
	sum := func() float64 {
		var s float64
		for _, b := range l.Bytes {
			s += b
		}
		return s
	}
	l.Spread(100, 650, 1e6) // spans three bins
	total += 1e6
	l.Spread(86390, 600, 5e5) // runs past midnight: clamps into last bin
	total += 5e5
	l.Spread(5000, 0, 1e4) // zero duration: one bin
	total += 1e4
	if got := sum(); math.Abs(got-total) > 1e-3 {
		t.Errorf("bins hold %.1f bytes, want %.1f", got, total)
	}
	// Merge is additive.
	o := NewLoadBins(300)
	o.Spread(0, 100, 7e4)
	l.Merge(o)
	if got := sum(); math.Abs(got-(total+7e4)) > 1e-3 {
		t.Errorf("after merge bins hold %.1f, want %.1f", got, total+7e4)
	}
}

func TestLoadBinsMergeIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging differently-binned series should panic")
		}
	}()
	NewLoadBins(300).Merge(NewLoadBins(600))
}

func TestHourlyMassSumsToOne(t *testing.T) {
	for _, p := range []struct {
		name string
		mass [24]float64
	}{
		{"mobile", HourlyMass(diurnal.Mobile)},
		{"wired", HourlyMass(diurnal.Wired)},
	} {
		var sum float64
		for _, m := range p.mass {
			sum += m
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("%s mass sums to %v, want 1", p.name, sum)
		}
	}
}

func TestMapReduceFoldsInShardOrder(t *testing.T) {
	shards := Shards(Config{Homes: 10, Shards: 5, Seed: 0})
	got := MapReduce(shards, 3, func(sh Shard) *orderAcc {
		return &orderAcc{ids: []int{sh.Index}}
	})
	want := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(got.ids, want) {
		t.Errorf("fold order %v, want %v", got.ids, want)
	}
	var empty *orderAcc
	if acc := MapReduce(nil, 4, func(Shard) *orderAcc { return nil }); acc != empty {
		t.Errorf("empty shard list should reduce to the zero accumulator")
	}
}

type orderAcc struct{ ids []int }

func (a *orderAcc) Merge(o *orderAcc) { a.ids = append(a.ids, o.ids...) }

// The fleet's home demand statistics should match the DSLAM trace
// generator's published marginals (they share the same samplers).
func TestFleetDemandMatchesTraceMarginals(t *testing.T) {
	res, err := Run(Config{Homes: 5000, Shards: 8, Seed: 21}, 8)
	if err != nil {
		t.Fatal(err)
	}
	perViewer := float64(res.Sessions) / float64(res.Viewers)
	if perViewer < 10 || perViewer > 19 {
		t.Errorf("videos per viewer-day = %.1f, want ≈14.12", perViewer)
	}
	meanSize := res.TotalBytes / float64(res.Sessions)
	if meanSize < 40*traces.MB || meanSize > 60*traces.MB {
		t.Errorf("mean video size = %.1f MB, want ≈50", meanSize/traces.MB)
	}
}

func BenchmarkShardSimulate(b *testing.B) {
	cfg := Config{Homes: 2000, Shards: 1, Seed: 1}.withDefaults()
	sh := Shards(cfg)[0]
	for i := 0; i < b.N; i++ {
		simulateShard(cfg, sh)
	}
	b.ReportMetric(float64(cfg.Homes)*float64(b.N)/b.Elapsed().Seconds(), "homes/s")
}

func ExampleRun() {
	cfg := Config{Homes: 400, Days: 1, Shards: 4, Seed: 7}
	cfg.Scenario.FixedDailyBudgetBytes = 20 * (1 << 20)
	one, _ := Run(cfg, 1)
	many, _ := Run(cfg, 16)
	fmt.Println("bit-identical:", reflect.DeepEqual(one, many))
	// Output:
	// bit-identical: true
}
