package fleet

import (
	"math/rand"
	"sync"

	"threegol/internal/diurnal"
	"threegol/internal/stats"
	"threegol/internal/traces"
)

// This file is the engine's hot path: per-home state lives in
// struct-of-arrays form inside a pooled per-shard scratch, and a day of
// demand is generated into a flat session buffer and sorted, instead of
// scheduling one closure per session on an event heap. After the scratch
// pool warms up the per-home inner loop (genHomes + runDay) performs no
// heap allocations at all — BenchmarkFleetInnerLoop and
// TestInnerLoopAllocationFree pin that, and scripts/bench.sh gates it.
//
// Determinism is unchanged from the event-heap engine: the RNG draw
// order per home (line, viewer flag, one device history per device;
// then per day: videos, (hour, size) per video) is identical, and
// sessions execute in ascending (time, generation order) — exactly the
// order the simclock heap popped them in — so the accumulated floats
// are bit-identical to the previous engine, not merely statistically
// equivalent.

// homeSoA is the struct-of-arrays per-home state of one shard: column i
// across every slice describes home i. Splitting the columns keeps the
// day loop's working set dense (the reset loop touches only four
// columns) and makes the state trivially poolable.
type homeSoA struct {
	// Static per-home draws, written once by genHomes.
	dslBits     []float64 // downlink sync rate (bits/s), floored at 256 kbps
	dailyBudget []float64 // pooled device allowance (bytes/day)
	viewer      []bool

	// Day-scoped state, reset at each midnight by runDay.
	remaining []float64 // budget left today (bytes)
	dslSec    []float64 // today's latency over DSL alone
	boostSec  []float64 // today's latency with budgeted onloading
	sessions  []int32   // today's session count
}

// session is one generated video request, queued for in-order execution.
// seq is the generation index within the shard-day: sorting by
// (at, seq) reproduces the event heap's (time, schedule order) pop
// sequence exactly.
type session struct {
	at   float64 // absolute virtual time (seconds since run start)
	size float64 // video bytes
	home int32   // index into the shard's homeSoA columns
	seq  int32
}

// shardScratch is the pooled per-shard working set: the SoA home state,
// the day's session queue (plus the counting-sort scatter target and
// bucket counters), and the per-device free-capacity buffer the MNO
// sampler fills. One scratch is checked out per simulated shard and
// returned when the shard's accumulator is complete; nothing in it
// outlives the shard, so reuse can never couple two shards.
type shardScratch struct {
	homes  homeSoA
	queue  []session
	sorted []session
	counts []int32
	free   []float64
}

var scratchPool = sync.Pool{New: func() any { return new(shardScratch) }}

// getScratch checks a scratch out of the pool, sized for `homes` homes
// and `months` of device history. Slices are grown geometrically and
// kept across uses, so a warm pool serves any steady-state shard size
// without allocating.
func getScratch(homes, months int) *shardScratch {
	st := scratchPool.Get().(*shardScratch)
	st.homes.dslBits = resize(st.homes.dslBits, homes)
	st.homes.dailyBudget = resize(st.homes.dailyBudget, homes)
	st.homes.viewer = resize(st.homes.viewer, homes)
	st.homes.remaining = resize(st.homes.remaining, homes)
	st.homes.dslSec = resize(st.homes.dslSec, homes)
	st.homes.boostSec = resize(st.homes.boostSec, homes)
	st.homes.sessions = resize(st.homes.sessions, homes)
	st.free = resize(st.free, months)
	st.counts = resize(st.counts, daySeconds)
	st.queue = st.queue[:0]
	return st
}

// resize returns s with length n, reusing its backing array when the
// capacity suffices. Contents are unspecified: every engine column is
// written before it is read.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// daySeconds is the fold period of the load series.
const daySeconds = 24 * 3600

// genHomes draws the shard's population into the scratch columns. The
// draw order per home (line, viewer flag, one MNO history per device) is
// part of the engine's determinism contract: it must not depend on
// anything outside (cfg, home index, rng state).
func genHomes(cfg Config, sh Shard, rng *rand.Rand, st *shardScratch, res *Result) {
	sc := cfg.Scenario
	for i := 0; i < sh.Homes; i++ {
		line := sc.Plant.SampleOne(rng)
		down, _ := line.SyncRates()
		if down < 256e3 {
			down = 256e3 // a line below this would not carry video at all
		}
		st.homes.dslBits[i] = down
		st.homes.viewer[i] = rng.Float64() < sc.ViewerFrac
		var budget, baseMobileDaily float64
		for d := 0; d < sc.Devices; d++ {
			capB, usedFrac := traces.SampleMNOFree(rng, sc.HistoryMonths, 0, st.free)
			baseMobileDaily += capB * usedFrac / 30
			if sc.FixedDailyBudgetBytes > 0 {
				budget += sc.FixedDailyBudgetBytes
			} else {
				budget += sc.Estimator.DailyAllowance(st.free)
			}
		}
		st.homes.dailyBudget[i] = budget
		res.observeHome(st.homes.viewer[i], budget, baseMobileDaily, cfg.Days)
	}
}

// runDay simulates one day of the shard: reset the day columns, generate
// every viewer's sessions into the queue, sort by (time, generation
// order), execute in order against the remaining budgets, then fold the
// per-home speedups. now is the engine's time cursor — the flight
// recorder's time source when events are on. sizeDist and g3 are hoisted
// by the caller so the loop stays allocation-free.
func runDay(cfg Config, sh Shard, day int, rng *rand.Rand, st *shardScratch, res *Result, now *float64, sizeDist stats.LogNormal, g3 float64) {
	sc := cfg.Scenario
	dayStart := float64(day) * daySeconds
	st.queue = st.queue[:0]
	seq := int32(0)
	for i := 0; i < sh.Homes; i++ {
		st.homes.remaining[i] = st.homes.dailyBudget[i]
		st.homes.dslSec[i], st.homes.boostSec[i], st.homes.sessions[i] = 0, 0, 0
		if !st.homes.viewer[i] {
			continue
		}
		n := traces.SampleVideosPerDay(rng)
		for v := 0; v < n; v++ {
			at := dayStart + traces.SampleHour(rng, diurnal.Wired)*3600
			size := sizeDist.Sample(rng)
			st.queue = append(st.queue, session{at: at, size: size, home: int32(i), seq: seq})
			seq++
		}
	}
	// Sessions run in (time, generation-order) sequence — the same
	// cross-home interleaving a city-wide trace replay would see, and
	// the same total order the event-heap engine produced.
	st.sortQueue(dayStart)
	for _, s := range st.queue {
		*now = s.at
		i := s.home
		m := BoostModel{DSLBits: st.homes.dslBits[i], G3Bits: g3, MinBoostBytes: sc.MinBoostBytes}
		b := m.Apply(s.size, st.homes.remaining[i])
		st.homes.remaining[i] -= b.OnloadedBytes
		st.homes.dslSec[i] += b.DSLSeconds
		st.homes.boostSec[i] += b.BoostSeconds
		st.homes.sessions[i]++
		res.recordSession(sh.First+int(i), m, s.at-dayStart, s.size, b)
	}
	*now = dayStart + daySeconds
	for i := 0; i < sh.Homes; i++ {
		if st.homes.sessions[i] > 0 {
			sp := st.homes.dslSec[i] / st.homes.boostSec[i]
			res.Speedups.Add(sp)
			res.metrics.speedup(sp)
		}
	}
}

// sortQueue orders the day's sessions by (at, seq) — the engine's
// execution-order contract — in near-linear time: a stable counting
// sort on the whole second (sessions lie in [dayStart, dayStart +
// daySeconds)), then an insertion sort inside each one-second bucket.
// Bucket order is a coarsening of the (at, seq) order, counting-sort
// scatter preserves generation order inside a bucket, and the in-bucket
// sort refines to the exact key, so the result is element-for-element
// the order a comparison sort (or the old event heap) would produce —
// at a fraction of the comparison and cache cost, which dominated the
// profile at city scale. No step allocates once the scratch is warm.
func (st *shardScratch) sortQueue(dayStart float64) {
	n := len(st.queue)
	if n <= 1 {
		return
	}
	st.sorted = resize(st.sorted, n)
	counts := st.counts
	for b := range counts {
		counts[b] = 0
	}
	for i := range st.queue {
		counts[bucketOf(st.queue[i].at, dayStart)]++
	}
	var sum int32
	for b := range counts {
		c := counts[b]
		counts[b] = sum
		sum += c
	}
	for i := range st.queue {
		b := bucketOf(st.queue[i].at, dayStart)
		st.sorted[counts[b]] = st.queue[i]
		counts[b]++
	}
	// counts[b] now holds bucket b's end offset; refine each bucket.
	var start int32
	for b := range counts {
		end := counts[b]
		if end-start > 1 {
			insertionSortSessions(st.sorted[start:end])
		}
		start = end
	}
	st.queue, st.sorted = st.sorted, st.queue
}

// bucketOf maps a session time to its one-second counting bucket,
// clamped into the day (generation guarantees in-day times; the clamp
// makes float edge cases safe rather than out-of-bounds).
func bucketOf(at, dayStart float64) int {
	b := int(at - dayStart)
	if b < 0 {
		return 0
	}
	if b >= daySeconds {
		return daySeconds - 1
	}
	return b
}

// insertionSortSessions sorts a (tiny) bucket by (at, seq).
func insertionSortSessions(s []session) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0; j-- {
			a, b := s[j], s[j-1]
			if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
				break
			}
			s[j], s[j-1] = b, a
		}
	}
}

// simulateShard runs one shard start to finish on its own time cursor
// and private RNG stream. It is called concurrently for different
// shards but touches no shared state: everything it reads is the
// (value-copied) config, everything it writes is the returned
// accumulator, and its scratch is checked out of the pool for the
// duration of the call.
func simulateShard(cfg Config, sh Shard) *Result {
	rng := newShardRNG(sh)
	sc := cfg.Scenario
	sizeDist := stats.LogNormalFromMoments(sc.MeanVideoBytes, sc.MeanVideoBytes*0.9)
	g3 := float64(sc.Devices) * sc.PhoneBits

	// The time cursor lives on its own heap cell, not in the pooled
	// scratch: the Result's flight recorder captures the closure, and a
	// recycled scratch must never be reachable from a finished shard.
	now := new(float64)
	res := newResult(cfg, sh, func() float64 { return *now })

	st := getScratch(sh.Homes, sc.HistoryMonths)
	defer scratchPool.Put(st)

	genHomes(cfg, sh, rng, st, res)
	for day := 0; day < cfg.Days; day++ {
		runDay(cfg, sh, day, rng, st, res, now, sizeDist, g3)
	}
	return res
}
