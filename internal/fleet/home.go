package fleet

import (
	"math/rand"

	"threegol/internal/diurnal"
	"threegol/internal/simclock"
	"threegol/internal/stats"
	"threegol/internal/traces"
)

// home is one household: the DSL line, the phones' pooled daily
// onloading budget, and the day-scoped boost state.
type home struct {
	id     int
	viewer bool
	model  BoostModel
	// dailyBudget is the household's pooled allowance in bytes/day.
	dailyBudget float64
	// baseMobileDaily is the phones' own cellular demand in bytes/day
	// (cap × used fraction / 30) — the base the fleet's traffic-increase
	// aggregates are relative to.
	baseMobileDaily float64

	// Day-scoped state, reset at each midnight.
	remaining float64
	dslSec    float64
	boostSec  float64
	sessions  int
}

// genHome draws one household from the shard's RNG stream. The draw
// order (line, viewer flag, one MNO history per device) is part of the
// engine's determinism contract: it must not depend on anything outside
// (cfg, id, rng state).
func genHome(sc Scenario, id int, rng *rand.Rand) *home {
	line := sc.Plant.Sample(1, rng)[0]
	down, _ := line.SyncRates()
	if down < 256e3 {
		down = 256e3 // a line below this would not carry video at all
	}
	h := &home{
		id:     id,
		viewer: rng.Float64() < sc.ViewerFrac,
		model: BoostModel{
			DSLBits:       down,
			G3Bits:        float64(sc.Devices) * sc.PhoneBits,
			MinBoostBytes: sc.MinBoostBytes,
		},
	}
	for d := 0; d < sc.Devices; d++ {
		u := traces.SampleMNOUser(rng, id*sc.Devices+d, sc.HistoryMonths, 0)
		h.baseMobileDaily += u.CapBytes * u.UsedFrac / 30
		if sc.FixedDailyBudgetBytes > 0 {
			h.dailyBudget += sc.FixedDailyBudgetBytes
		} else {
			h.dailyBudget += sc.Estimator.DailyAllowance(u.FreeSeries())
		}
	}
	return h
}

// daySeconds is the fold period of the load series.
const daySeconds = 24 * 3600

// simulateShard runs one shard start to finish on its own virtual clock
// and private RNG stream. It is called concurrently for different
// shards but touches no shared state: everything it reads is the
// (value-copied) config and everything it writes is the returned
// accumulator.
func simulateShard(cfg Config, sh Shard) *Result {
	rng := newShardRNG(sh)
	clk := simclock.New()
	sc := cfg.Scenario
	sizeDist := stats.LogNormalFromMoments(sc.MeanVideoBytes, sc.MeanVideoBytes*0.9)

	res := newResult(cfg, sh, clk.Now)
	homes := make([]*home, sh.Homes)
	for i := range homes {
		homes[i] = genHome(sc, sh.First+i, rng)
		res.observeHome(homes[i], cfg.Days)
	}

	for day := 0; day < cfg.Days; day++ {
		dayStart := float64(day) * daySeconds
		for _, h := range homes {
			h.remaining = h.dailyBudget
			h.dslSec, h.boostSec, h.sessions = 0, 0, 0
			if !h.viewer {
				continue
			}
			n := traces.SampleVideosPerDay(rng)
			for v := 0; v < n; v++ {
				at := dayStart + traces.SampleHour(rng, diurnal.Wired)*3600
				size := sizeDist.Sample(rng)
				h := h
				clk.Schedule(at, func() {
					res.session(h, clk.Now()-dayStart, size)
				})
			}
		}
		// Events run in (time, schedule-order) sequence — the same
		// cross-home interleaving a city-wide trace replay would see.
		clk.RunUntil(dayStart + daySeconds)
		for _, h := range homes {
			if h.sessions > 0 {
				res.Speedups.Add(h.dslSec / h.boostSec)
				res.metrics.speedup(h.dslSec / h.boostSec)
			}
		}
	}
	return res
}
