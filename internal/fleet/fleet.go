// Package fleet is the sharded, deterministic fleet-simulation engine
// that scales the paper's §6 trace-driven evaluation from one DSLAM to
// city scale. A synthetic population of homes — each a DSL line drawn
// from a loop-length population, a handful of 3G phones with
// estimator-derived onloading quotas, and diurnal video demand — is
// partitioned into logical shards. Every shard runs on its own time
// cursor with an independent, seed-derived RNG stream
// (rand.New(rand.NewSource(seed ^ shardID))), and per-shard results
// merge-reduce through Mergeable accumulators in shard order — a
// streaming fold that never holds more than O(workers) accumulators
// resident (see MapReduce). The per-shard engine keeps home state in
// struct-of-arrays columns inside pooled scratch, so its inner loop
// performs no heap allocations (see home.go); PERFORMANCE.md documents
// the resulting envelope and how to re-measure it.
//
// The engine is deterministic across worker counts: Run(cfg, 1) and
// Run(cfg, 16) produce bit-identical merged output, because the shard
// partition and every shard's RNG stream depend only on Config, and the
// fold order is fixed. Workers only decide how many shards simulate
// concurrently.
package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"threegol/internal/dsl"
	"threegol/internal/quota"
)

// Scenario sets the per-home onloading parameters; zero values select
// the paper's §6 operating point.
type Scenario struct {
	// Devices is the number of 3G phones per household (paper: 2).
	Devices int
	// PhoneBits is one device's usable 3G rate during a boost
	// (paper: 2.4 Mbps HSPA+).
	PhoneBits float64
	// MinBoostBytes is the smallest video worth boosting (paper:
	// 750 KB).
	MinBoostBytes float64
	// ViewerFrac is the fraction of homes with ≥1 video per day
	// (paper: 0.68).
	ViewerFrac float64
	// MeanVideoBytes is the average video size (paper: 50 MB).
	MeanVideoBytes float64
	// Plant is the loop population the homes' DSL lines are drawn
	// from; the zero value selects urban ADSL2+ with 1.2 km loops.
	Plant dsl.Population
	// Estimator converts each device's monthly free-capacity history
	// into a daily allowance; the zero value is the paper's τ=5, α=4.
	Estimator quota.Estimator
	// HistoryMonths of synthetic usage per device (0 selects 18).
	HistoryMonths int
	// FixedDailyBudgetBytes, when positive, bypasses the estimator and
	// grants every device this daily allowance (the paper's fixed
	// 20 MB/device scenario).
	FixedDailyBudgetBytes float64
	// BackhaulMbpsPer18k is the covering towers' backhaul per 18,000
	// homes (paper: 2 towers × 40 Mbps per DSLAM); the engine scales
	// it linearly with population.
	BackhaulMbpsPer18k float64
}

func (s Scenario) withDefaults() Scenario {
	if s.Devices <= 0 {
		s.Devices = 2
	}
	if s.PhoneBits <= 0 {
		s.PhoneBits = 2.4e6
	}
	if s.MinBoostBytes <= 0 {
		s.MinBoostBytes = 750 * 1024
	}
	if s.ViewerFrac <= 0 {
		s.ViewerFrac = 0.68
	}
	if s.MeanVideoBytes <= 0 {
		s.MeanVideoBytes = 50 * (1 << 20)
	}
	if s.Plant.MeanLoopMetres <= 0 {
		s.Plant = dsl.Population{Technology: dsl.ADSL2Plus, MeanLoopMetres: 1200}
	}
	if s.HistoryMonths <= 0 {
		s.HistoryMonths = 18
	}
	if s.BackhaulMbpsPer18k <= 0 {
		s.BackhaulMbpsPer18k = 2 * 40
	}
	return s
}

// Config describes one fleet run. The triple (Homes, Shards, Seed) pins
// the population exactly; worker count is deliberately NOT part of the
// config so that parallelism can never change results.
type Config struct {
	// Homes is the total population size.
	Homes int
	// Days of demand to simulate (0 selects 1).
	Days int
	// Shards is the number of logical partitions (0 selects 8). Shard
	// i simulates its homes with rand.NewSource(Seed ^ i); changing
	// Shards changes the streams, so it is a population parameter, not
	// a performance knob — use the workers argument of Run for that.
	Shards int
	// Seed derives every shard's RNG stream.
	Seed int64
	// BinSeconds is the load-series bin width (0 selects 300).
	BinSeconds float64
	// Scenario holds the onloading parameters.
	Scenario Scenario
	// Metrics enables the engine's obs instrumentation: each shard fills
	// a private registry, merged in shard order alongside Result. Off by
	// default — it roughly doubles the accumulator's allocation count.
	Metrics bool
	// Events enables the flight recorder: each shard fills a private
	// eventlog.Log (IDs derived from Seed and the shard index, times
	// from the shard's engine time cursor), merged in shard order alongside
	// Result. The merged stream is bit-identical for every worker
	// count. Off by default — a trace per session is far heavier than
	// the counters.
	Events bool
}

func (c Config) withDefaults() Config {
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.BinSeconds <= 0 {
		c.BinSeconds = 300
	}
	c.Scenario = c.Scenario.withDefaults()
	return c
}

// Shard is one deterministic unit of work: a contiguous run of homes
// and the seed of its private RNG stream.
type Shard struct {
	// Index is the shard's position in the fold order.
	Index int
	// Seed is cfg.Seed ^ Index — the sanctioned per-shard stream
	// derivation (see internal/lint's randsource analyzer).
	Seed int64
	// First is the global ID of the shard's first home.
	First int
	// Homes is the number of homes in the shard.
	Homes int
}

// Shards partitions cfg.Homes into cfg.Shards near-equal contiguous
// ranges. The partition depends only on the config, never on worker
// count, so every run over the same config simulates identical shards.
func Shards(cfg Config) []Shard {
	cfg = cfg.withDefaults()
	n := cfg.Shards
	if n > cfg.Homes {
		n = cfg.Homes
	}
	if n < 1 {
		n = 1
	}
	out := make([]Shard, n)
	next := 0
	for i := range out {
		// Homes split as evenly as possible: the first Homes%n shards
		// carry one extra.
		size := cfg.Homes / n
		if i < cfg.Homes%n {
			size++
		}
		out[i] = Shard{Index: i, Seed: cfg.Seed ^ int64(i), First: next, Homes: size}
		next += size
	}
	return out
}

// Mergeable is the merge-reduce contract: each shard fills one
// accumulator and the engine folds them in shard order. Merge must fold
// src into the receiver; it is never called concurrently.
type Mergeable[A any] interface {
	Merge(src A)
}

// MapReduce simulates every shard on a pool of `workers` goroutines
// (workers ≤ 0 selects 1; the pool never exceeds the shard count) and
// folds the per-shard accumulators in ascending shard order. Because
// each accumulator is built single-threaded from a shard-private RNG
// and the fold order is fixed, the reduced value is bit-identical for
// every worker count. It returns the zero A when shards is empty.
//
// The fold is streaming: each shard's accumulator merges into the
// running total as soon as every lower-indexed shard has merged, and is
// then unreachable. A run therefore never holds more than
// O(workers) shard accumulators resident — not O(shards) — which is
// what lets a million-home run over hundreds of shards fit in a small,
// flat memory envelope. Workers claim shard indexes from a shared
// atomic counter (work stealing), so a straggler shard never idles the
// rest of the pool; because indexes are claimed in ascending order, at
// most `workers` results can be ahead of the fold cursor, which bounds
// the out-of-order pending set.
func MapReduce[A Mergeable[A]](shards []Shard, workers int, simulate func(Shard) A) A {
	var zero A
	if len(shards) == 0 {
		return zero
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers == 1 {
		acc := simulate(shards[0])
		for _, sh := range shards[1:] {
			acc.Merge(simulate(sh))
		}
		return acc
	}
	type done struct {
		idx int
		res A
	}
	results := make(chan done, workers)
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				results <- done{idx: i, res: simulate(shards[i])}
			}
		}()
	}
	// Chain-fold completed shards in index order; results that finish
	// ahead of the fold cursor wait in pending (≤ workers entries).
	pending := make(map[int]A, workers)
	var acc A
	fold := 0
	for received := 0; received < len(shards); received++ {
		d := <-results
		pending[d.idx] = d.res
		for {
			r, ok := pending[fold]
			if !ok {
				break
			}
			delete(pending, fold)
			if fold == 0 {
				acc = r
			} else {
				acc.Merge(r)
			}
			fold++
		}
	}
	return acc
}

// mapReduceResident is the all-resident reference fold: simulate every
// shard, keep every accumulator, fold at the end. It exists so tests
// can pin the streaming MapReduce byte-identical to the naive
// materialise-then-fold semantics; production paths never use it.
func mapReduceResident[A Mergeable[A]](shards []Shard, workers int, simulate func(Shard) A) A {
	var zero A
	if len(shards) == 0 {
		return zero
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	out := make([]A, len(shards))
	if workers == 1 {
		for i, sh := range shards {
			out[i] = simulate(sh)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i] = simulate(shards[i])
				}
			}()
		}
		for i := range shards {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	acc := out[0]
	for _, a := range out[1:] {
		acc.Merge(a)
	}
	return acc
}

// Run simulates the configured fleet on `workers` goroutines and
// returns the merged result. The output depends only on cfg.
func Run(cfg Config, workers int) (*Result, error) {
	if cfg.Homes <= 0 {
		return nil, fmt.Errorf("fleet: config needs Homes > 0, got %d", cfg.Homes)
	}
	cfg = cfg.withDefaults()
	res := MapReduce(Shards(cfg), workers, func(sh Shard) *Result {
		return simulateShard(cfg, sh)
	})
	return res, nil
}

// newShardRNG is the engine's sanctioned stream construction, kept in
// one place so the derivation in Shard.Seed and the lint fixture stay
// in sync.
func newShardRNG(sh Shard) *rand.Rand {
	return rand.New(rand.NewSource(sh.Seed))
}
