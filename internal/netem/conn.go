package netem

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"time"

	"threegol/internal/clock"
)

// Shape describes one direction of an emulated link.
type Shape struct {
	// Rate is the dedicated capacity of this direction in bits/s
	// (0 = unlimited). A private limiter is created for it.
	Rate float64
	// Shared lists additional capacities this direction contends for
	// (e.g. the Wi-Fi BSS cap shared by every device in the home, or a
	// phone's radio shared by all flows through its proxy).
	Shared []*Limiter
	// Latency is the one-way propagation delay added per connection
	// before the first byte (and per chunk jitter below).
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per chunk.
	Jitter time.Duration
	// StallProb is the per-chunk probability of a stall (TCP loss
	// recovery on a wireless hop); each stall sleeps StallDelay.
	StallProb  float64
	StallDelay time.Duration
}

// Pipe bundles both directions plus the global time scale.
type Pipe struct {
	// Down shapes bytes read by the wrapped side (server→client), Up
	// shapes bytes written (client→server).
	Down, Up Shape
	// TimeScale > 1 accelerates the emulation: rates ×S, delays ÷S.
	// Zero means 1 (real time).
	TimeScale float64
	// Clock paces the emulated link; nil selects the system clock.
	Clock clock.Clock
}

func (p Pipe) scale() float64 {
	if p.TimeScale <= 0 {
		return 1
	}
	return p.TimeScale
}

// shaper paces one direction of one connection.
type shaper struct {
	clk        clock.Clock
	limiters   []*Limiter
	latency    time.Duration
	jitter     time.Duration
	stallProb  float64
	stallDelay time.Duration

	mu       sync.Mutex
	rng      *rand.Rand
	latentcy sync.Once // pays the one-way latency once per connection
}

func newShaper(s Shape, scale float64, seed int64, clk clock.Clock) *shaper {
	sh := &shaper{
		clk:        clk,
		latency:    time.Duration(float64(s.Latency) / scale),
		jitter:     time.Duration(float64(s.Jitter) / scale),
		stallProb:  s.StallProb,
		stallDelay: time.Duration(float64(s.StallDelay) / scale),
		rng:        rand.New(rand.NewSource(seed)),
	}
	if s.Rate > 0 {
		sh.limiters = append(sh.limiters, NewLimiter(s.Rate*scale, 0))
	}
	sh.limiters = append(sh.limiters, s.Shared...)
	return sh
}

// pace blocks until n bytes may pass.
func (s *shaper) pace(n int) {
	if s == nil {
		return
	}
	s.latentcy.Do(func() {
		if s.latency > 0 {
			s.clk.Sleep(s.latency)
		}
	})
	bits := float64(n) * 8
	var wait time.Duration
	for _, l := range s.limiters {
		if d := l.Reserve(bits); d > wait {
			wait = d
		}
	}
	wait += s.stochasticDelay()
	if wait > 0 {
		s.clk.Sleep(wait)
	}
}

// stochasticDelay draws the per-chunk jitter and stall penalty under the
// shaper's lock (the rng is not safe for concurrent use).
func (s *shaper) stochasticDelay() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var d time.Duration
	if s.jitter > 0 {
		d += time.Duration(s.rng.Int63n(int64(s.jitter)))
	}
	if s.stallProb > 0 && s.rng.Float64() < s.stallProb {
		d += s.stallDelay
	}
	return d
}

// Conn is a net.Conn whose reads and writes are shaped.
type Conn struct {
	net.Conn
	down, up *shaper
}

// maxChunk bounds the bytes charged per pacing step so large writes are
// smoothed rather than sleeping once for a whole buffer.
const maxChunk = 16 * 1024

// Read shapes the server→client direction.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) > maxChunk {
		p = p[:maxChunk]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.down.pace(n)
	}
	return n, err
}

// Write shapes the client→server direction.
func (c *Conn) Write(p []byte) (int, error) {
	var total int
	for len(p) > 0 {
		chunk := p
		if len(chunk) > maxChunk {
			chunk = chunk[:maxChunk]
		}
		c.up.pace(len(chunk))
		n, err := c.Conn.Write(chunk)
		total += n
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

// WrapConn shapes an existing connection. Each call derives fresh
// per-connection shapers (private rate limiters are not shared across
// connections; use Shape.Shared for contended capacity).
func WrapConn(conn net.Conn, pipe Pipe, seed int64) *Conn {
	scale := pipe.scale()
	clk := clock.Or(pipe.Clock)
	return &Conn{
		Conn: conn,
		down: newShaper(pipe.Down, scale, seed, clk),
		up:   newShaper(pipe.Up, scale, seed+1, clk),
	}
}

// Dialer dials through an emulated link. The zero value dials unshaped.
type Dialer struct {
	Pipe Pipe
	// Seed makes jitter/stall sequences reproducible; each connection
	// derives its own sub-seed.
	Seed int64

	mu   sync.Mutex
	next int64
}

// Dial connects and wraps the connection in the dialer's pipe shape.
func (d *Dialer) Dial(network, addr string) (net.Conn, error) {
	return d.DialContext(context.Background(), network, addr)
}

// DialContext connects with a context and wraps the connection.
func (d *Dialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	var nd net.Dialer
	conn, err := nd.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return WrapConn(conn, d.Pipe, d.nextSeed()), nil
}

// nextSeed derives the next per-connection sub-seed.
func (d *Dialer) nextSeed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	seed := d.Seed + d.next
	d.next += 2
	return seed
}

// Listener wraps accepted connections in a pipe shape. Down/Up are from
// the *dialing* peer's perspective mirrored: bytes the server writes are
// shaped by Pipe.Down (they travel "down" to the client).
type Listener struct {
	net.Listener
	Pipe Pipe
	Seed int64

	mu   sync.Mutex
	next int64
}

// Accept waits for a connection and wraps it.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	seed := l.nextSeed()
	// From the server side, writes head toward the client (down) and
	// reads arrive from the client (up): swap relative to WrapConn.
	scale := l.Pipe.scale()
	clk := clock.Or(l.Pipe.Clock)
	return &Conn{
		Conn: conn,
		down: newShaper(l.Pipe.Up, scale, seed, clk),     // server reads = client's up
		up:   newShaper(l.Pipe.Down, scale, seed+1, clk), // server writes = client's down
	}, nil
}

// nextSeed derives the next per-connection sub-seed.
func (l *Listener) nextSeed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	seed := l.Seed + l.next
	l.next += 2
	return seed
}
