package netem

import (
	"math/rand"
	"sync"
	"time"
)

// Goodput caps of the home Wi-Fi LAN for TCP flows, per the paper (§4.1):
// every 3GOL participant hangs off the residential gateway's BSS, so all
// paths share this aggregate.
const (
	WiFiGGoodput = 24e6  // 802.11g, bits/s
	WiFiNGoodput = 110e6 // 802.11n, bits/s
)

// Typical one-way delays of the emulated hops.
const (
	WiFiLatency = 2 * time.Millisecond
	ADSLLatency = 25 * time.Millisecond // interleaved ADSL
	HSPALatency = 70 * time.Millisecond
)

// NewWiFiLimiter returns the shared BSS goodput cap for a home using
// 802.11n (the paper's evaluation setup), pre-scaled by timeScale.
func NewWiFiLimiter(goodput, timeScale float64) *Limiter {
	if timeScale <= 0 {
		timeScale = 1
	}
	return NewLimiter(goodput*timeScale, 0)
}

// ADSLPipe emulates a residential ADSL line: down/up are the sync rates
// in bits/s. The same Pipe instance should shape the single gateway
// uplink; per-connection private limiters would overcommit the line, so
// the rates are exposed as shared limiters.
func ADSLPipe(down, up, timeScale float64) (Pipe, *Limiter, *Limiter) {
	if timeScale <= 0 {
		timeScale = 1
	}
	dl := NewLimiter(down*timeScale, 0)
	ul := NewLimiter(up*timeScale, 0)
	p := Pipe{
		Down:      Shape{Shared: []*Limiter{dl}, Latency: ADSLLatency},
		Up:        Shape{Shared: []*Limiter{ul}, Latency: ADSLLatency},
		TimeScale: timeScale,
	}
	return p, dl, ul
}

// HSPAPipe emulates one phone's 3G path. The returned limiters carry the
// radio rates so a RateProcess can wander them; stalls model wireless
// loss recovery.
func HSPAPipe(down, up, timeScale float64) (Pipe, *Limiter, *Limiter) {
	if timeScale <= 0 {
		timeScale = 1
	}
	dl := NewLimiter(down*timeScale, 0)
	ul := NewLimiter(up*timeScale, 0)
	p := Pipe{
		Down: Shape{
			Shared: []*Limiter{dl}, Latency: HSPALatency,
			Jitter: 20 * time.Millisecond, StallProb: 0.01, StallDelay: 120 * time.Millisecond,
		},
		Up: Shape{
			Shared: []*Limiter{ul}, Latency: HSPALatency,
			Jitter: 25 * time.Millisecond, StallProb: 0.015, StallDelay: 150 * time.Millisecond,
		},
		TimeScale: timeScale,
	}
	return p, dl, ul
}

// WiFiPipe emulates the in-home hop between a device and the gateway,
// constrained by the shared BSS limiter.
func WiFiPipe(bss *Limiter, timeScale float64) Pipe {
	return Pipe{
		Down:      Shape{Shared: []*Limiter{bss}, Latency: WiFiLatency, StallProb: 0.002, StallDelay: 30 * time.Millisecond},
		Up:        Shape{Shared: []*Limiter{bss}, Latency: WiFiLatency, StallProb: 0.002, StallDelay: 30 * time.Millisecond},
		TimeScale: timeScale,
	}
}

// RateProcess wanders a limiter's rate to emulate HSPA channel
// variability: an AR(1) (mean-reverting) multiplicative process clipped
// to [MinFactor, MaxFactor]×Mean. It is the variability that defeats the
// MIN scheduler's bandwidth estimator in the paper's Fig. 6.
type RateProcess struct {
	Limiter *Limiter
	Mean    float64 // bits/s, already time-scaled
	Std     float64 // relative std of the stationary distribution
	// Interval between updates (wall clock, already time-scaled).
	Interval time.Duration
	// MinFactor/MaxFactor clip the multiplier (defaults 0.3 / 1.4).
	MinFactor, MaxFactor float64

	rng  *rand.Rand
	mu   sync.Mutex
	stop chan struct{}
	wg   sync.WaitGroup
	x    float64 // current multiplier
}

// Start launches the background updater. It panics if already running.
func (r *RateProcess) Start(seed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		panic("netem: RateProcess started twice")
	}
	if r.MinFactor == 0 {
		r.MinFactor = 0.3
	}
	if r.MaxFactor == 0 {
		r.MaxFactor = 1.4
	}
	if r.Interval <= 0 {
		r.Interval = 200 * time.Millisecond
	}
	r.rng = rand.New(rand.NewSource(seed))
	r.x = 1
	r.stop = make(chan struct{})
	r.wg.Add(1)
	go r.run(r.stop)
}

// phi is the AR(1) mean-reversion coefficient of the rate process.
const phi = 0.8

func (r *RateProcess) run(stop <-chan struct{}) {
	defer r.wg.Done()
	ticker := time.NewTicker(r.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			r.step()
		}
	}
}

// step advances the AR(1) multiplier one interval and applies it.
func (r *RateProcess) step() {
	r.mu.Lock()
	defer r.mu.Unlock()
	noise := r.rng.NormFloat64() * r.Std
	r.x = 1 + phi*(r.x-1) + noise
	if r.x < r.MinFactor {
		r.x = r.MinFactor
	}
	if r.x > r.MaxFactor {
		r.x = r.MaxFactor
	}
	r.Limiter.SetRate(r.Mean * r.x)
}

// Stop halts the updater and restores the mean rate.
func (r *RateProcess) Stop() {
	stop := r.takeStop()
	if stop == nil {
		return
	}
	close(stop)
	r.wg.Wait()
	r.Limiter.SetRate(r.Mean)
}

// takeStop claims the stop channel, leaving nil so Stop is idempotent.
func (r *RateProcess) takeStop() chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	stop := r.stop
	r.stop = nil
	return stop
}
