package netem

import "testing"

// BenchmarkLimiterReserve measures the token-bucket hot path every shaped
// byte goes through.
func BenchmarkLimiterReserve(b *testing.B) {
	l := NewLimiter(1e12, 1e12) // never blocks
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Reserve(16 * 1024 * 8)
	}
}

func BenchmarkLimiterContended(b *testing.B) {
	l := NewLimiter(1e12, 1e12)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Reserve(16 * 1024 * 8)
		}
	})
}
