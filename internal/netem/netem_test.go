package netem

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestLimiterUnlimited(t *testing.T) {
	l := NewLimiter(0, 0)
	if d := l.Reserve(1e12); d != 0 {
		t.Errorf("unlimited limiter imposed wait %v", d)
	}
}

func TestLimiterPacesToRate(t *testing.T) {
	// 8 Mbps limiter, send 1 MB (8 Mbit) in chunks: should take ≈1s
	// minus the initial burst allowance.
	l := NewLimiter(8e6, 8*8e3) // 8 KB burst
	start := time.Now()
	const chunk = 8 * 1024 * 8 // bits
	var sent float64
	for sent < 8e6 {
		l.Take(chunk)
		sent += chunk
	}
	elapsed := time.Since(start).Seconds()
	if elapsed < 0.8 || elapsed > 1.4 {
		t.Errorf("8Mbit over 8Mbps took %.2fs, want ≈1s", elapsed)
	}
}

func TestLimiterSetRateTakesEffect(t *testing.T) {
	l := NewLimiter(1e6, 1) // tiny burst
	l.Take(1)               // drain
	l.SetRate(100e6)
	start := time.Now()
	l.Take(1e6) // 1 Mbit at 100 Mbps ≈ 10 ms
	if e := time.Since(start); e > 100*time.Millisecond {
		t.Errorf("rate change not applied: 1Mbit took %v", e)
	}
}

func TestLimiterSharedBetweenCallers(t *testing.T) {
	// Two goroutines share one 16 Mbps limiter; moving 8 Mbit each should
	// take ≈1s total (aggregate 16 Mbit over 16 Mbps).
	l := NewLimiter(16e6, 16e3)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sent float64
			for sent < 8e6 {
				l.Take(64e3)
				sent += 64e3
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed < 0.8 || elapsed > 1.5 {
		t.Errorf("16Mbit over shared 16Mbps took %.2fs, want ≈1s", elapsed)
	}
}

// Property: Reserve never returns a negative wait and always admits
// traffic eventually (debt is proportional to requested bits).
func TestLimiterReserveProperty(t *testing.T) {
	f := func(bitsRaw uint32) bool {
		l := NewLimiter(1e9, 1e6)
		bits := float64(bitsRaw % 1e7)
		d := l.Reserve(bits)
		return d >= 0 && d <= time.Duration(bits/1e9*float64(time.Second))+time.Second
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// echoServer accepts one connection and echoes everything.
func echoServer(t *testing.T) (addr string, done func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestDialerShapesThroughput(t *testing.T) {
	addr, done := echoServer(t)
	defer done()

	// 2 Mbps ADSL downlink, accelerated 20×: a 1 Mbit payload echoes
	// through the down direction in ≈1Mbit/40Mbps ≈ 25 ms (+overheads).
	d := &Dialer{Pipe: Pipe{
		Down:      Shape{Rate: 2e6},
		Up:        Shape{Rate: 2e6},
		TimeScale: 20,
	}}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := bytes.Repeat([]byte("x"), 8e6/8) // 8 Mbit
	start := time.Now()
	go func() {
		conn.Write(payload)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	// Each direction paces ≈8 Mbit (minus token burst) at 40 Mbps
	// effective; up and down overlap, so ≥ ~0.19 s, and far under the
	// unscaled 4 s.
	if elapsed < 0.15 {
		t.Errorf("transfer too fast (%.3fs): shaping absent", elapsed)
	}
	if elapsed > 2.0 {
		t.Errorf("transfer too slow (%.3fs): time scale not applied", elapsed)
	}
}

func TestLatencyAppliedOncePerConn(t *testing.T) {
	addr, done := echoServer(t)
	defer done()
	d := &Dialer{Pipe: Pipe{
		Down: Shape{Latency: 300 * time.Millisecond},
		Up:   Shape{Latency: 300 * time.Millisecond},
	}}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// First byte pays up+down latency.
	start := time.Now()
	conn.Write([]byte("a"))
	buf := make([]byte, 1)
	io.ReadFull(conn, buf)
	first := time.Since(start)
	if first < 600*time.Millisecond {
		t.Errorf("first byte RTT %v, want ≥600ms", first)
	}
	// Subsequent bytes do not.
	start = time.Now()
	conn.Write([]byte("b"))
	io.ReadFull(conn, buf)
	if second := time.Since(start); second > 200*time.Millisecond {
		t.Errorf("second byte RTT %v, want latency-free", second)
	}
}

func TestListenerShapesAcceptedConns(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &Listener{Listener: inner, Pipe: Pipe{
		Down:      Shape{Rate: 1e6},
		TimeScale: 10,
	}}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write(bytes.Repeat([]byte("y"), 1e6/8)) // 1 Mbit "down"
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := io.Copy(io.Discard, conn); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	// 1 Mbit at 10 Mbps effective ≈ 0.1 s.
	if elapsed < 0.06 || elapsed > 0.5 {
		t.Errorf("listener-shaped 1Mbit took %.3fs, want ≈0.1s", elapsed)
	}
}

func TestSharedWiFiCapBindsTwoConns(t *testing.T) {
	addr, done := echoServer(t)
	defer done()
	// Two connections share a 4 Mbps BSS (scaled 10× → 40 Mbps): moving
	// 2 Mbit on each (4 Mbit aggregate, up+down = 8 Mbit through the BSS)
	// needs ≈0.2 s; a single private 4 Mbps each would take half that.
	bss := NewWiFiLimiter(4e6, 10)
	mk := func() net.Conn {
		d := &Dialer{Pipe: WiFiPipe(bss, 10)}
		c, err := d.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2 := mk(), mk()
	defer c1.Close()
	defer c2.Close()
	payload := bytes.Repeat([]byte("z"), 2e6/8)
	var wg sync.WaitGroup
	start := time.Now()
	for _, c := range []net.Conn{c1, c2} {
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			go c.Write(payload)
			buf := make([]byte, len(payload))
			io.ReadFull(c, buf)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed < 0.15 {
		t.Errorf("shared BSS not binding: took %.3fs, want ≥0.18s", elapsed)
	}
}

func TestRateProcessWanders(t *testing.T) {
	l := NewLimiter(10e6, 0)
	rp := &RateProcess{
		Limiter:  l,
		Mean:     10e6,
		Std:      0.3,
		Interval: 5 * time.Millisecond,
	}
	rp.Start(99)
	seen := map[int64]bool{}
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) && len(seen) < 3 {
		seen[int64(l.Rate())] = true
		time.Sleep(5 * time.Millisecond)
	}
	rp.Stop()
	if len(seen) < 3 {
		t.Errorf("rate did not wander: observed %d distinct rates", len(seen))
	}
	if l.Rate() != 10e6 {
		t.Errorf("Stop did not restore mean rate: %v", l.Rate())
	}
	// Stopping twice must be safe.
	rp.Stop()
}

func TestRateProcessStaysClipped(t *testing.T) {
	l := NewLimiter(1e6, 0)
	rp := &RateProcess{
		Limiter: l, Mean: 1e6, Std: 5, // huge noise to force clipping
		Interval: time.Millisecond, MinFactor: 0.5, MaxFactor: 1.2,
	}
	rp.Start(7)
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		r := l.Rate()
		if r < 0.5e6-1 || r > 1.2e6+1 {
			rp.Stop()
			t.Fatalf("rate %v escaped clip [0.5e6, 1.2e6]", r)
		}
		time.Sleep(2 * time.Millisecond)
	}
	rp.Stop()
}

func TestHSPAPipeAndADSLPipeConstructors(t *testing.T) {
	p, dl, ul := ADSLPipe(6e6, 0.5e6, 50)
	if dl.Rate() != 6e6*50 || ul.Rate() != 0.5e6*50 {
		t.Errorf("ADSL limiter rates not scaled: %v %v", dl.Rate(), ul.Rate())
	}
	if p.TimeScale != 50 {
		t.Errorf("TimeScale = %v", p.TimeScale)
	}
	p3, dl3, ul3 := HSPAPipe(2e6, 1.5e6, 50)
	if dl3.Rate() != 2e6*50 || ul3.Rate() != 1.5e6*50 {
		t.Errorf("HSPA limiter rates not scaled: %v %v", dl3.Rate(), ul3.Rate())
	}
	if p3.Down.StallProb <= 0 {
		t.Error("HSPA downlink should model stalls")
	}
}
