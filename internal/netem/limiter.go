// Package netem shapes real TCP connections to emulate the paper's
// physical substrate: ADSL access links, the home Wi-Fi LAN, and HSPA
// uplinks/downlinks. The prototype components (device proxy, HLS-aware
// client proxy, multipath scheduler) run unmodified over loopback TCP;
// netem inserts the rate limits, propagation delays and wireless rate
// variability they would see in deployment.
//
// Every shape carries a TimeScale: with TimeScale S, configured rates are
// multiplied by S and delays divided by S, so an experiment that would
// take 127 wall-clock seconds on a real 2 Mbps ADSL line replays in
// 127/S seconds with identical ratios. Reported durations are then
// multiplied back by S at the harness level.
package netem

import (
	"fmt"
	"sync"
	"time"

	"threegol/internal/clock"
)

// Limiter is a token-bucket rate limiter shared by any number of
// connections; it emulates a capacity that several flows contend for
// (the Wi-Fi BSS goodput cap, one phone's 3G radio, the ADSL line).
// The zero value is unusable; construct with NewLimiter.
type Limiter struct {
	clk    clock.Clock
	mu     sync.Mutex
	rate   float64 // bits per second (already time-scaled by the owner)
	bucket float64 // available bits; may go negative (debt)
	burst  float64 // bucket ceiling in bits
	last   time.Time
}

// DefaultBurst is the default token-bucket depth: deep enough to keep
// pipelines busy, shallow enough that rate changes take effect quickly.
const DefaultBurst = 32 * 8 * 1024 // 32 KB in bits

// NewLimiter creates a limiter on the system clock. rate is in bits/s;
// burst ≤ 0 selects DefaultBurst. A rate ≤ 0 means unlimited.
func NewLimiter(rate, burst float64) *Limiter {
	return NewLimiterClock(rate, burst, clock.System)
}

// NewLimiterClock creates a limiter on an injected clock, for tests that
// pace virtual time.
func NewLimiterClock(rate, burst float64, clk clock.Clock) *Limiter {
	if burst <= 0 {
		burst = DefaultBurst
	}
	clk = clock.Or(clk)
	return &Limiter{clk: clk, rate: rate, bucket: burst, burst: burst, last: clk.Now()}
}

// SetRate changes the limiter's rate (bits/s). Safe for concurrent use;
// rate processes call this to emulate wireless variability.
func (l *Limiter) SetRate(rate float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refill(l.clk.Now())
	l.rate = rate
}

// Rate returns the current rate in bits/s.
func (l *Limiter) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// refill adds tokens accrued since the last update. Caller holds mu.
func (l *Limiter) refill(now time.Time) {
	if l.rate > 0 {
		l.bucket += l.rate * now.Sub(l.last).Seconds()
		if l.bucket > l.burst {
			l.bucket = l.burst
		}
	}
	l.last = now
}

// Reserve deducts bits from the bucket and returns how long the caller
// must wait before proceeding (zero when tokens were available). The
// bucket may go into debt, which paces subsequent callers.
func (l *Limiter) Reserve(bits float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rate <= 0 { // unlimited
		return 0
	}
	now := l.clk.Now()
	l.refill(now)
	l.bucket -= bits
	if l.bucket >= 0 {
		return 0
	}
	return time.Duration(-l.bucket / l.rate * float64(time.Second))
}

// Take reserves bits and sleeps out the returned debt.
func (l *Limiter) Take(bits float64) {
	if d := l.Reserve(bits); d > 0 {
		l.clk.Sleep(d)
	}
}

// String implements fmt.Stringer for diagnostics.
func (l *Limiter) String() string {
	return fmt.Sprintf("limiter(%.0f bps)", l.Rate())
}
