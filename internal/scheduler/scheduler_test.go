package scheduler

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakePath transfers items at a fixed byte rate using real (short)
// sleeps, honouring cancellation with proportional partial bytes — the
// contract real HTTP paths provide.
type fakePath struct {
	name string
	rate float64 // bytes per second

	mu       sync.Mutex
	failures map[int]int // itemID → remaining failures to inject
	count    atomic.Int32
}

func (p *fakePath) Name() string { return p.name }

func (p *fakePath) Transfer(ctx context.Context, item Item) (int64, error) {
	p.count.Add(1)
	p.mu.Lock()
	if p.failures[item.ID] > 0 {
		p.failures[item.ID]--
		p.mu.Unlock()
		return 0, fmt.Errorf("injected failure for item %d", item.ID)
	}
	p.mu.Unlock()
	dur := time.Duration(float64(item.Size) / p.rate * float64(time.Second))
	start := time.Now()
	select {
	case <-time.After(dur):
		return item.Size, nil
	case <-ctx.Done():
		frac := float64(time.Since(start)) / float64(dur)
		if frac > 1 {
			frac = 1
		}
		return int64(frac * float64(item.Size)), ctx.Err()
	}
}

func mkItems(n int, size int64) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: i, Name: fmt.Sprintf("item%d", i), Size: size}
	}
	return items
}

func TestAlgoString(t *testing.T) {
	if Greedy.String() != "GRD" || RoundRobin.String() != "RR" || MinTime.String() != "MIN" {
		t.Error("Algo.String mismatch")
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Greedy, mkItems(1, 10), nil, Options{}); err == nil {
		t.Error("no paths accepted")
	}
	bad := []Item{{ID: 5}}
	p := &fakePath{name: "p", rate: 1e6}
	if _, err := Run(ctx, Greedy, bad, []Path{p}, Options{}); err == nil {
		t.Error("non-dense IDs accepted")
	}
	if _, err := Run(ctx, Algo(99), mkItems(1, 10), []Path{p}, Options{}); err == nil {
		t.Error("unknown algo accepted")
	}
}

func TestEmptyTransaction(t *testing.T) {
	p := &fakePath{name: "p", rate: 1e6}
	rep, err := Run(context.Background(), Greedy, nil, []Path{p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalBytes() != 0 || len(rep.ItemDone) != 0 {
		t.Errorf("empty transaction produced %+v", rep)
	}
}

func TestAllAlgosCompleteAllItems(t *testing.T) {
	for _, algo := range []Algo{Greedy, RoundRobin, MinTime} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			t.Parallel()
			paths := []Path{
				&fakePath{name: "adsl", rate: 200e3},
				&fakePath{name: "ph1", rate: 120e3},
				&fakePath{name: "ph2", rate: 80e3},
			}
			items := mkItems(12, 2000)
			var doneCount atomic.Int32
			rep, err := Run(context.Background(), algo, items, paths, Options{
				OnItemDone: func(Item, time.Duration) { doneCount.Add(1) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := doneCount.Load(); got != 12 {
				t.Errorf("OnItemDone fired %d times, want 12", got)
			}
			var totalItems int
			for _, st := range rep.PerPath {
				totalItems += st.Items
			}
			if totalItems != 12 {
				t.Errorf("winning items = %d, want 12", totalItems)
			}
			for i, d := range rep.ItemDone {
				if d <= 0 {
					t.Errorf("item %d has no completion time", i)
				}
			}
		})
	}
}

func TestRoundRobinDealsCyclically(t *testing.T) {
	p1 := &fakePath{name: "a", rate: 1e6}
	p2 := &fakePath{name: "b", rate: 1e6}
	rep, err := Run(context.Background(), RoundRobin, mkItems(7, 500), []Path{p1, p2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerPath["a"].Items != 4 || rep.PerPath["b"].Items != 3 {
		t.Errorf("RR split = %d/%d, want 4/3", rep.PerPath["a"].Items, rep.PerPath["b"].Items)
	}
}

func TestGreedyFavorsFastPath(t *testing.T) {
	fast := &fakePath{name: "fast", rate: 1000e3}
	slow := &fakePath{name: "slow", rate: 100e3}
	rep, err := Run(context.Background(), Greedy, mkItems(11, 5000), []Path{fast, slow}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerPath["fast"].Items <= rep.PerPath["slow"].Items {
		t.Errorf("fast path won %d items vs slow %d; want fast > slow",
			rep.PerPath["fast"].Items, rep.PerPath["slow"].Items)
	}
}

func TestGreedyBeatsRoundRobinWithAsymmetricPaths(t *testing.T) {
	mk := func() []Path {
		return []Path{
			&fakePath{name: "fast", rate: 1000e3},
			&fakePath{name: "slow", rate: 100e3},
		}
	}
	items := mkItems(10, 10000)
	grd, err := Run(context.Background(), Greedy, items, mk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(context.Background(), RoundRobin, items, mk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// RR parks 5 items on the slow path (≥500 ms); GRD keeps the fast
	// path busy and duplicates the endgame stragglers.
	if grd.Elapsed >= rr.Elapsed {
		t.Errorf("GRD %v not faster than RR %v", grd.Elapsed, rr.Elapsed)
	}
}

func TestGreedyEndgameDuplication(t *testing.T) {
	// One item, two paths: the idle path must duplicate it immediately.
	fast := &fakePath{name: "fast", rate: 500e3}
	slow := &fakePath{name: "slow", rate: 50e3}
	items := mkItems(1, 50000) // 0.1s on fast, 1s on slow
	rep, err := Run(context.Background(), Greedy, items, []Path{slow, fast}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates == 0 {
		t.Error("no endgame duplication occurred")
	}
	// The fast replica should win: elapsed well under the slow path's 1s.
	if rep.Elapsed > 600*time.Millisecond {
		t.Errorf("elapsed %v suggests duplication didn't help", rep.Elapsed)
	}
	if rep.WastedBytes <= 0 {
		t.Error("losing replica moved bytes that must be accounted as waste")
	}
}

func TestGreedyDisableDuplication(t *testing.T) {
	fast := &fakePath{name: "fast", rate: 500e3}
	slow := &fakePath{name: "slow", rate: 50e3}
	rep, err := Run(context.Background(), Greedy, mkItems(2, 20000), []Path{slow, fast},
		Options{DisableDuplication: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 0 || rep.WastedBytes != 0 {
		t.Errorf("duplication happened despite being disabled: %+v", rep)
	}
}

func TestGreedyWasteBound(t *testing.T) {
	// Property: wasted bytes ≤ (N−1)·Sm (the paper's §4.1.1 bound).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(3)
		paths := make([]Path, n)
		for i := range paths {
			paths[i] = &fakePath{name: fmt.Sprintf("p%d", i), rate: float64(50e3 * (1 + rng.Intn(10)))}
		}
		m := 3 + rng.Intn(8)
		items := make([]Item, m)
		var maxSize int64
		for i := range items {
			size := int64(1000 + rng.Intn(20000))
			if size > maxSize {
				maxSize = size
			}
			items[i] = Item{ID: i, Name: fmt.Sprintf("i%d", i), Size: size}
		}
		rep, err := Run(context.Background(), Greedy, items, paths, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bound := int64(n-1) * maxSize
		if rep.WastedBytes > bound {
			t.Errorf("trial %d: waste %d exceeds bound %d", trial, rep.WastedBytes, bound)
		}
	}
}

func TestMinTimeUsesEstimates(t *testing.T) {
	// With accurate initial estimates and stable rates, MIN should route
	// most items to the fast path.
	fast := &fakePath{name: "fast", rate: 1000e3}
	slow := &fakePath{name: "slow", rate: 50e3}
	rep, err := Run(context.Background(), MinTime, mkItems(9, 5000), []Path{slow, fast}, Options{
		InitialBandwidth: map[string]float64{"fast": 8e6, "slow": 400e3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerPath["fast"].Items <= rep.PerPath["slow"].Items {
		t.Errorf("MIN routed %d to fast vs %d to slow; want majority on fast",
			rep.PerPath["fast"].Items, rep.PerPath["slow"].Items)
	}
}

func TestMinTimeMisledByBadEstimates(t *testing.T) {
	// Estimates inverted: MIN piles items on the actually-slow path and
	// pays for it — the paper's observed failure mode.
	mk := func() (Path, Path) {
		return &fakePath{name: "fast", rate: 1000e3}, &fakePath{name: "slow", rate: 50e3}
	}
	items := mkItems(8, 8000)
	f1, s1 := mk()
	misled, err := Run(context.Background(), MinTime, items, []Path{f1, s1}, Options{
		InitialBandwidth: map[string]float64{"fast": 100e3, "slow": 80e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	f2, s2 := mk()
	grd, err := Run(context.Background(), Greedy, items, []Path{f2, s2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if misled.Elapsed <= grd.Elapsed {
		t.Errorf("misled MIN (%v) should lose to GRD (%v)", misled.Elapsed, grd.Elapsed)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	p := &fakePath{name: "flaky", rate: 1e6, failures: map[int]int{1: 2}}
	rep, err := Run(context.Background(), RoundRobin, mkItems(3, 1000), []Path{p}, Options{})
	if err != nil {
		t.Fatalf("transient failures should be retried: %v", err)
	}
	if rep.PerPath["flaky"].Items != 3 {
		t.Errorf("items = %d, want 3", rep.PerPath["flaky"].Items)
	}
}

func TestRetryExhaustionFailsTransaction(t *testing.T) {
	p := &fakePath{name: "dead", rate: 1e6, failures: map[int]int{0: 100}}
	_, err := Run(context.Background(), RoundRobin, mkItems(1, 1000), []Path{p}, Options{MaxRetries: 2})
	if err == nil {
		t.Fatal("permanently failing item did not fail the transaction")
	}
}

func TestGreedyRetriesOnOtherPath(t *testing.T) {
	// Item 0 always fails on "dead" but succeeds elsewhere; greedy must
	// recover via requeue.
	dead := &fakePath{name: "dead", rate: 1e9, failures: map[int]int{0: 1000, 1: 1000}}
	ok := &fakePath{name: "ok", rate: 200e3}
	rep, err := Run(context.Background(), Greedy, mkItems(2, 2000), []Path{dead, ok}, Options{})
	if err != nil {
		t.Fatalf("greedy could not route around failing path: %v", err)
	}
	if rep.PerPath["ok"].Items != 2 {
		t.Errorf("ok path won %d items, want 2", rep.PerPath["ok"].Items)
	}
}

func TestContextCancellationAborts(t *testing.T) {
	for _, algo := range []Algo{Greedy, RoundRobin, MinTime} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithCancel(context.Background())
			p := &fakePath{name: "p", rate: 10e3} // 10 KB/s: slow
			errCh := make(chan error, 1)
			go func() {
				_, err := Run(ctx, algo, mkItems(4, 50000), []Path{p}, Options{})
				errCh <- err
			}()
			time.Sleep(50 * time.Millisecond)
			cancel()
			select {
			case err := <-errCh:
				if !errors.Is(err, context.Canceled) {
					t.Errorf("err = %v, want context.Canceled", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Run did not return after cancellation")
			}
		})
	}
}

func TestItemDoneTimesAreWithinElapsed(t *testing.T) {
	paths := []Path{
		&fakePath{name: "a", rate: 300e3},
		&fakePath{name: "b", rate: 200e3},
	}
	rep, err := Run(context.Background(), Greedy, mkItems(6, 3000), paths, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range rep.ItemDone {
		if d > rep.Elapsed+10*time.Millisecond {
			t.Errorf("item %d done at %v after transaction end %v", i, d, rep.Elapsed)
		}
	}
}

func TestPlayoutCompletesAllItems(t *testing.T) {
	paths := []Path{
		&fakePath{name: "fast", rate: 500e3},
		&fakePath{name: "slow", rate: 100e3},
	}
	rep, err := Run(context.Background(), Playout, mkItems(8, 4000), paths, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var won int
	for _, st := range rep.PerPath {
		won += st.Items
	}
	if won != 8 {
		t.Errorf("items won = %d, want 8", won)
	}
	if Playout.String() != "PLAYOUT" {
		t.Error("Playout.String mismatch")
	}
}

func TestPlayoutDuplicatesHeadOfLine(t *testing.T) {
	// Two items both in flight on the slow path while the fast path goes
	// idle: Playout must duplicate item 0 (the head-of-line blocker)
	// first, even when item 1 was assigned later (greedy's oldest-seq
	// tie-break would pick item 0 here too, so distinguish by replica
	// count: greedy prefers fewest replicas; playout always lowest ID).
	// Construct: 3 items; slow path gets item1 and then duplicates are
	// examined. We assert the observable outcome instead: item 0's
	// completion time is never after item 1's under Playout.
	paths := []Path{
		&fakePath{name: "fast", rate: 400e3},
		&fakePath{name: "slow", rate: 50e3},
	}
	rep, err := Run(context.Background(), Playout, mkItems(6, 8000), paths, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.ItemDone); i++ {
		// In-order-friendly delivery: each item's completion is within
		// one slow-item duration of its predecessor (no long head-of-line
		// inversions).
		gap := rep.ItemDone[i] - rep.ItemDone[i-1]
		if gap < -200*time.Millisecond {
			t.Errorf("item %d finished %v before item %d; head-of-line ignored",
				i, -gap, i-1)
		}
	}
}
