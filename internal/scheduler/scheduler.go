// Package scheduler implements the paper's multipath transfer scheduler —
// the component at the heart of 3GOL (§4.1.1). A transaction moves M
// items (video segments, photos) over N paths (the ADSL line plus the
// admissible set Φ of 3G devices) so as to minimise total transfer time.
//
// Three policies match the paper's Fig. 6 comparison, plus the paper's
// deferred playout extension:
//
//   - Greedy (GRD): each path pulls the next unassigned item as soon as it
//     goes idle; when no items remain, an idle path duplicates the oldest
//     still-in-flight item, and the first replica to finish cancels the
//     others. Wasted bytes are bounded by (N−1)·Sm, Sm the largest item.
//   - RoundRobin (RR): items are dealt cyclically onto the paths up front.
//   - MinTime (MIN): each item goes to the path with the smallest
//     estimated completion time, with per-path bandwidth estimated by
//     exponential smoothing (filter parameter 0.75) seeded round-robin —
//     the estimator whose poor accuracy under wireless variability makes
//     MIN the worst performer in the paper.
//   - Playout: greedy with a head-of-line endgame — the in-order
//     delivery variant the paper leaves as future work.
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"threegol/internal/clock"
	"threegol/internal/obs/eventlog"
)

// Item is one unit of a transaction: an HLS segment, a photo, a file.
type Item struct {
	// ID indexes the item within its transaction (0-based, dense).
	ID int
	// Name is a diagnostic/transport label, e.g. the URI to fetch.
	Name string
	// Size is the item's size in bytes (used by MIN's estimator and for
	// waste accounting; GRD and RR work even when 0).
	Size int64
}

// Path is one transport channel: the direct ADSL route or one 3G device's
// proxy. Transfer moves a single item, blocking until done, cancelled, or
// failed; it returns the bytes actually moved (partial counts on abort).
// Implementations must honour ctx cancellation promptly — the greedy
// endgame relies on it to cancel losing replicas.
type Path interface {
	Name() string
	Transfer(ctx context.Context, item Item) (int64, error)
}

// Algo selects a scheduling policy.
type Algo int

// Scheduling policies.
const (
	Greedy Algo = iota
	RoundRobin
	MinTime
	// Playout is the paper's deferred extension (§4.1.1: "we could
	// modify the scheduler to cover also the playout phase"): greedy
	// assignment, but the endgame duplicates the head-of-line item —
	// the lowest-ID incomplete segment, i.e. the one the player is
	// blocked on — instead of the oldest-assigned one, trading a little
	// total-transfer time for smoother in-order delivery.
	Playout
)

// String implements fmt.Stringer.
func (a Algo) String() string {
	switch a {
	case Greedy:
		return "GRD"
	case RoundRobin:
		return "RR"
	case MinTime:
		return "MIN"
	case Playout:
		return "PLAYOUT"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// Options tune a transaction.
type Options struct {
	// MinAlpha is MIN's exponential smoothing weight on the newest
	// bandwidth sample. Zero selects the paper's 0.75.
	MinAlpha float64
	// InitialBandwidth seeds MIN's estimator per path (bits/s). Nil or
	// missing entries default to 1 Mbps.
	InitialBandwidth map[string]float64
	// MaxRetries is how many times a failed item is re-queued before the
	// transaction aborts. Zero selects 3.
	MaxRetries int
	// OnItemDone, when non-nil, fires at each item's first successful
	// completion with the elapsed time since the transaction started.
	// Callbacks are serialised.
	OnItemDone func(Item, time.Duration)
	// DisableDuplication turns off GRD's endgame re-assignment (the
	// ablation knob for the paper's duplication design choice).
	DisableDuplication bool
	// Backoff configures deterministic exponential backoff with seeded
	// jitter between retry attempts. The zero value disables backoff
	// (instant retry, the historical behaviour).
	Backoff BackoffConfig
	// StallTimeout aborts a transfer attempt when the path reports no
	// byte progress for this long, and requeues the item. Only paths
	// implementing ProgressPath are watched; zero disables the
	// watchdog.
	StallTimeout time.Duration
	// Breaker configures the per-path circuit breaker (GRD/PLAYOUT
	// only). The zero value disables it.
	Breaker BreakerConfig
	// Clock supplies elapsed-time measurement; nil selects the system
	// clock. Tests and virtual-time harnesses inject a fake here.
	Clock clock.Clock
	// Metrics, when non-nil, receives per-path instrumentation (see
	// NewMetrics); latencies are measured on Clock.
	Metrics *Metrics
	// Events, when non-nil, receives flight-recorder events: the
	// transaction root span plus every assignment, attempt, retry,
	// requeue, endgame duplicate and completion. The attempt span's
	// TraceContext rides the transfer context, so instrumented paths
	// (internal/transfer) extend the same trace.
	Events *eventlog.Log
	// Trace parents the transaction's root span — stitching it under a
	// caller's span (e.g. a client request). Zero starts a new trace.
	Trace eventlog.TraceContext
}

func (o Options) minAlpha() float64 {
	if o.MinAlpha <= 0 || o.MinAlpha > 1 {
		return 0.75
	}
	return o.MinAlpha
}

func (o Options) maxRetries() int {
	if o.MaxRetries <= 0 {
		return 3
	}
	return o.MaxRetries
}

// PathStats aggregates per-path activity within a Report.
type PathStats struct {
	Items int   // completed (winning) transfers
	Bytes int64 // all bytes moved, including losing replicas
}

// Report is the outcome of a transaction.
type Report struct {
	Algo    Algo
	Elapsed time.Duration
	// ItemDone[i] is the elapsed time at which item i first completed.
	ItemDone []time.Duration
	// WastedBytes counts bytes moved by replicas that lost the endgame
	// race (GRD only).
	WastedBytes int64
	// Duplicates counts endgame replica launches (GRD only).
	Duplicates int
	// PerPath maps path name to its activity.
	PerPath map[string]PathStats
}

// TotalBytes sums all bytes moved over all paths (useful bytes + waste).
func (r *Report) TotalBytes() int64 {
	var t int64
	for _, s := range r.PerPath {
		t += s.Bytes
	}
	return t
}

// Run executes one transaction: transfers every item over the given paths
// under the selected policy. It returns a Report on success. An error is
// returned when ctx is cancelled or an item exhausts its retries on the
// policy's designated path(s).
func Run(ctx context.Context, algo Algo, items []Item, paths []Path, opts Options) (*Report, error) {
	if len(paths) == 0 {
		return nil, errors.New("scheduler: no paths")
	}
	for i, it := range items {
		if it.ID != i {
			return nil, fmt.Errorf("scheduler: item %d has ID %d; IDs must be dense and ordered", i, it.ID)
		}
	}
	rep := &Report{
		Algo:     algo,
		ItemDone: make([]time.Duration, len(items)),
		PerPath:  make(map[string]PathStats, len(paths)),
	}
	for _, p := range paths {
		rep.PerPath[p.Name()] = PathStats{}
	}
	if len(items) == 0 {
		return rep, nil
	}
	clk := clock.Or(opts.Clock)
	start := clk.Now()
	tx := opts.Events.Begin(opts.Trace, "scheduler.transaction",
		"algo", algo.String(),
		"items", eventlog.Int(int64(len(items))),
		"paths", eventlog.Int(int64(len(paths))))
	if tx.Context().Valid() {
		// Workers parent their spans to the transaction, not the caller.
		opts.Trace = tx.Context()
	}
	var err error
	switch algo {
	case Greedy, Playout:
		err = runGreedy(ctx, algo, items, paths, opts, rep, clk, start)
	case RoundRobin:
		err = runRoundRobin(ctx, items, paths, opts, rep, clk, start)
	case MinTime:
		err = runMinTime(ctx, items, paths, opts, rep, clk, start)
	default:
		err = fmt.Errorf("scheduler: unknown algorithm %v", algo)
	}
	if err != nil {
		tx.End("outcome", "error", "error", err.Error())
		return nil, err
	}
	rep.Elapsed = clk.Since(start)
	tx.End("outcome", "ok", "elapsed_s", eventlog.Float(rep.Elapsed.Seconds()))
	return rep, nil
}

// tracker serialises completion bookkeeping shared by all policies.
type tracker struct {
	mu    sync.Mutex
	rep   *Report
	clk   clock.Clock
	start time.Time
	opts  Options
	res   *resilience
	done  []bool
	left  int
	// doneCh closes when the last item completes, so workers sleeping
	// out a backoff or breaker cooldown wake instead of delaying the
	// transaction's return.
	doneCh chan struct{}
}

func newTracker(rep *Report, clk clock.Clock, start time.Time, n int, opts Options, paths []Path) *tracker {
	t := &tracker{rep: rep, clk: clk, start: start, opts: opts,
		done: make([]bool, n), left: n, doneCh: make(chan struct{})}
	t.res = newResilience(opts, paths, t)
	return t
}

// complete records the first successful completion of item. It reports
// whether this call was the winner (false when another replica already
// completed the item).
func (t *tracker) complete(item Item, pathName string, bytes int64) bool {
	t.mu.Lock() //3golvet:allow locksafe — unlocks early so the OnItemDone callback runs outside the lock
	t.addBytesLocked(pathName, bytes)
	if t.done[item.ID] {
		t.mu.Unlock()
		return false
	}
	t.done[item.ID] = true
	t.left--
	if t.left == 0 {
		close(t.doneCh)
	}
	elapsed := t.clk.Since(t.start)
	t.rep.ItemDone[item.ID] = elapsed
	st := t.rep.PerPath[pathName]
	st.Items++
	t.rep.PerPath[pathName] = st
	cb := t.opts.OnItemDone
	t.mu.Unlock()
	t.opts.Metrics.completed(pathName, elapsed.Seconds())
	t.opts.Events.Point(t.opts.Trace, "scheduler.item_done",
		"item", eventlog.Int(int64(item.ID)), "path", pathName,
		"elapsed_s", eventlog.Float(elapsed.Seconds()))
	if cb != nil {
		cb(item, elapsed)
	}
	return true
}

// addBytes accounts bytes moved on a path without completing anything
// (aborted replicas, failed attempts).
func (t *tracker) addBytes(pathName string, bytes int64) {
	t.mu.Lock()
	t.addBytesLocked(pathName, bytes)
	t.mu.Unlock()
}

func (t *tracker) addBytesLocked(pathName string, bytes int64) {
	st := t.rep.PerPath[pathName]
	st.Bytes += bytes
	t.rep.PerPath[pathName] = st
	t.opts.Metrics.movedBytes(pathName, bytes)
}

func (t *tracker) isDone(id int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done[id]
}

// remaining reports how many items have not yet completed.
func (t *tracker) remaining() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.left
}

func (t *tracker) addWaste(bytes int64) {
	t.mu.Lock()
	t.rep.WastedBytes += bytes
	t.mu.Unlock()
	t.opts.Metrics.wasted(bytes)
}

func (t *tracker) addDuplicate(pathName string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rep.Duplicates++
	t.opts.Metrics.duplicated(pathName)
}

// ----- Round robin -----

func runRoundRobin(ctx context.Context, items []Item, paths []Path, opts Options, rep *Report, clk clock.Clock, start time.Time) error {
	trk := newTracker(rep, clk, start, len(items), opts, paths)
	queues := make([][]Item, len(paths))
	for i, it := range items {
		q := i % len(paths)
		queues[q] = append(queues[q], it)
	}
	return drainQueues(ctx, queues, paths, opts, trk)
}

// drainQueues runs one worker per path over fixed queues with per-item
// retry on the same path (no stealing) — shared by RR and MIN.
func drainQueues(ctx context.Context, queues [][]Item, paths []Path, opts Options, trk *tracker) error {
	g := newErrGroup(ctx)
	for i, p := range paths {
		q := queues[i]
		p := p
		g.go_(func(ctx context.Context) error {
			for _, it := range q {
				if err := transferWithRetry(ctx, p, it, opts.maxRetries(), trk, nil); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return g.wait()
}

// transferWithRetry attempts item on path up to maxRetries times; each
// successful completion is recorded in trk. onSample, when non-nil,
// receives (bytes, seconds) of the successful attempt for bandwidth
// estimation.
func transferWithRetry(ctx context.Context, p Path, it Item, maxRetries int, trk *tracker, onSample func(bytes int64, seconds float64)) error {
	trk.opts.Metrics.assigned(p.Name())
	ev, tc := trk.opts.Events, trk.opts.Trace
	ev.Point(tc, "scheduler.assign",
		"item", eventlog.Int(int64(it.ID)), "path", p.Name())
	var lastErr error
	for attempt := 0; attempt < maxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			if d := trk.res.retryDelay(attempt - 1); d > 0 {
				trk.opts.Metrics.backedOff(p.Name())
				ev.Point(tc, "scheduler.backoff",
					"item", eventlog.Int(int64(it.ID)), "path", p.Name(),
					"delay_s", eventlog.Float(d.Seconds()))
				if !trk.sleepFor(ctx, d) && ctx.Err() != nil {
					return ctx.Err()
				}
			}
		}
		t0 := trk.clk.Now()
		sp := ev.Begin(tc, "scheduler.attempt",
			"item", eventlog.Int(int64(it.ID)), "path", p.Name(),
			"try", eventlog.Int(int64(attempt)))
		n, err, stalled := runAttempt(eventlog.NewContext(ctx, sp.Context()), p, it, trk)
		if err == nil {
			sp.End("outcome", "ok", "bytes", eventlog.Int(n))
			trk.complete(it, p.Name(), n)
			if onSample != nil {
				if secs := trk.clk.Since(t0).Seconds(); secs > 0 {
					onSample(n, secs)
				}
			}
			return nil
		}
		trk.addBytes(p.Name(), n)
		if ctx.Err() != nil {
			sp.End("outcome", "cancelled", "bytes", eventlog.Int(n))
			return ctx.Err()
		}
		sp.End("outcome", "error", "bytes", eventlog.Int(n), "error", err.Error())
		if stalled {
			trk.opts.Metrics.stallAborted(p.Name())
			ev.Point(tc, "scheduler.stall",
				"item", eventlog.Int(int64(it.ID)), "path", p.Name(),
				"timeout_s", eventlog.Float(trk.res.stall.Seconds()))
		}
		trk.opts.Metrics.retried(p.Name())
		ev.Point(tc, "scheduler.retry",
			"item", eventlog.Int(int64(it.ID)), "path", p.Name(),
			"try", eventlog.Int(int64(attempt)))
		lastErr = err
	}
	ev.Point(tc, "scheduler.exhausted",
		"item", eventlog.Int(int64(it.ID)), "path", p.Name())
	return &ItemError{ItemID: it.ID, ItemName: it.Name, PathName: p.Name(),
		Attempts: maxRetries, Err: lastErr}
}

// ----- MIN (estimated minimum completion time) -----

func runMinTime(ctx context.Context, items []Item, paths []Path, opts Options, rep *Report, clk clock.Clock, start time.Time) error {
	trk := newTracker(rep, clk, start, len(items), opts, paths)
	n := len(paths)

	type pathState struct {
		est     float64 // bits/s estimate
		sampled bool    // has at least one measured transfer
		backlog int64   // bytes assigned but not completed
		queue   chan Item
	}
	states := make([]*pathState, n)
	for i, p := range paths {
		est := 1e6 // default 1 Mbps
		if opts.InitialBandwidth != nil {
			if v, ok := opts.InitialBandwidth[p.Name()]; ok && v > 0 {
				est = v
			}
		}
		states[i] = &pathState{est: est, queue: make(chan Item, len(items))}
	}

	var mu sync.Mutex // guards states and the assignment cursor
	next := 0
	bulkDone := false
	alpha := opts.minAlpha()

	assignTo := func(st *pathState, it Item) {
		st.backlog += it.Size
		st.queue <- it
	}

	// minEstPath returns the path with the smallest estimated completion
	// time for an item of the given size. Caller holds mu.
	minEstPath := func(size int64) *pathState {
		var best *pathState
		bestT := 0.0
		for _, st := range states {
			estT := float64(st.backlog+size) * 8 / st.est
			if best == nil || estT < bestT {
				best, bestT = st, estT
			}
		}
		return best
	}

	// maybeBulkAssign performs the paper's one-shot assignment: once every
	// path has produced a bandwidth sample (the round-robin initialisation
	// is over), all remaining items are placed onto the paths minimising
	// their estimated completion time — and never rebalanced. Deep queues
	// built from noisy early samples are exactly why MIN underperforms
	// under wireless variability. Caller holds mu.
	maybeBulkAssign := func() {
		if bulkDone {
			return
		}
		for _, st := range states {
			if !st.sampled {
				return
			}
		}
		bulkDone = true
		for ; next < len(items); next++ {
			it := items[next]
			assignTo(minEstPath(it.Size), it)
		}
	}

	// Seed: first N items round-robin (initialisation per the paper).
	mu.Lock()
	for i := 0; i < n && next < len(items); i++ {
		assignTo(states[i], items[next])
		next++
	}
	mu.Unlock()

	// allDone releases workers whose queues will never be fed again.
	allDone := make(chan struct{})
	var doneOnce sync.Once

	g := newErrGroup(ctx)
	for i, p := range paths {
		st := states[i]
		p := p
		g.go_(func(ctx context.Context) error {
			for {
				var it Item
				select {
				case it = <-st.queue:
				default:
					// Queue momentarily empty: wait for new work, global
					// completion, or cancellation. MIN never steals.
					select {
					case it = <-st.queue:
					case <-allDone:
						return nil
					case <-ctx.Done():
						return ctx.Err()
					}
				}
				err := transferWithRetry(ctx, p, it, opts.maxRetries(), trk, func(bytes int64, secs float64) {
					mu.Lock()
					sample := float64(bytes) * 8 / secs
					st.est = alpha*sample + (1-alpha)*st.est
					st.sampled = true
					st.backlog -= it.Size
					if !bulkDone && next < len(items) {
						// Still initialising: keep this path busy with the
						// next item in order, and bulk-assign the moment
						// every path has a sample.
						maybeBulkAssign()
						if !bulkDone {
							assignTo(st, items[next])
							next++
							maybeBulkAssign()
						}
					}
					mu.Unlock()
				})
				if err != nil {
					return err
				}
				if trk.remaining() == 0 {
					doneOnce.Do(func() { close(allDone) })
					return nil
				}
			}
		})
	}
	return g.wait()
}

// ----- Greedy with endgame duplication -----

type flight struct {
	item     Item
	seq      int // assignment order (for "oldest" selection)
	replicas map[string]context.CancelFunc
}

func runGreedy(ctx context.Context, algo Algo, items []Item, paths []Path, opts Options, rep *Report, clk clock.Clock, start time.Time) error {
	trk := newTracker(rep, clk, start, len(items), opts, paths)

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		pending  = append([]Item(nil), items...)
		inflight = make(map[int]*flight)
		seq      int
		failed   error
		// fails[itemID][pathName] counts genuine transfer failures; an
		// item only fails the transaction once every path has exhausted
		// its per-path retry budget for it.
		fails = make(map[int]map[string]int)
	)
	pathFails := func(id int, path string) int {
		return fails[id][path]
	}
	recordFail := func(id int, path string) {
		m := fails[id]
		if m == nil {
			m = make(map[string]int)
			fails[id] = m
		}
		m[path]++
	}
	exhaustedEverywhere := func(id int) bool {
		for _, p := range paths {
			if pathFails(id, p.Name()) < opts.maxRetries() {
				return false
			}
		}
		return true
	}
	g := newErrGroup(ctx)
	// Wake all cond waiters when the group context dies (parent cancel or
	// a worker error) so they can exit.
	stopWake := context.AfterFunc(g.ctx, func() {
		mu.Lock()
		if failed == nil {
			failed = g.ctx.Err()
		}
		cond.Broadcast()
		mu.Unlock()
	})
	defer stopWake()

	// pickDuplicate selects the oldest in-flight item this path is not
	// already carrying (and has retry budget left for), preferring items
	// with the fewest replicas.
	pickDuplicate := func(self string) *flight {
		var cands []*flight
		for _, f := range inflight {
			if _, carrying := f.replicas[self]; carrying {
				continue
			}
			if len(f.replicas) >= len(paths) {
				continue
			}
			if pathFails(f.item.ID, self) >= opts.maxRetries() {
				continue
			}
			cands = append(cands, f)
		}
		if len(cands) == 0 {
			return nil
		}
		sort.Slice(cands, func(i, j int) bool {
			if algo == Playout {
				// Head-of-line first: the lowest-ID incomplete item is
				// what gates in-order playout.
				return cands[i].item.ID < cands[j].item.ID
			}
			if len(cands[i].replicas) != len(cands[j].replicas) {
				return len(cands[i].replicas) < len(cands[j].replicas)
			}
			return cands[i].seq < cands[j].seq
		})
		return cands[0]
	}

	// takeable returns the index of the first pending item this path may
	// still attempt, or −1.
	takeable := func(self string) int {
		for i, it := range pending {
			if pathFails(it.ID, self) < opts.maxRetries() {
				return i
			}
		}
		return -1
	}

	for _, p := range paths {
		p := p
		g.go_(func(ctx context.Context) error {
			for {
				// Circuit-breaker gate: while this path's breaker is open
				// it is ejected from the rotation — sleep out the cooldown
				// (waking early on completion or cancellation), then come
				// back as the half-open probe.
				if br := trk.res.breakerFor(p.Name()); br != nil {
					if wait, ok := br.admit(trk.clk.Now()); !ok {
						if trk.sleepFor(ctx, wait) {
							continue
						}
						if err := ctx.Err(); err != nil {
							return err
						}
						// Transaction resolved while ejected: fall through
						// to the exit checks under the lock.
					}
				}
				mu.Lock() //3golvet:allow locksafe — condition-variable protocol; cond.Wait needs the raw mutex
				var takeIdx int
				for {
					if failed != nil {
						mu.Unlock()
						return failed
					}
					if trk.remaining() == 0 {
						mu.Unlock()
						return nil
					}
					takeIdx = takeable(p.Name())
					if takeIdx >= 0 {
						break
					}
					if !opts.DisableDuplication && pickDuplicate(p.Name()) != nil {
						break
					}
					cond.Wait()
				}

				var f *flight
				if takeIdx >= 0 {
					it := pending[takeIdx]
					pending = append(pending[:takeIdx], pending[takeIdx+1:]...)
					f = &flight{item: it, seq: seq, replicas: map[string]context.CancelFunc{}}
					seq++
					inflight[it.ID] = f
				} else {
					f = pickDuplicate(p.Name())
					trk.addDuplicate(p.Name())
				}
				tctx, cancel := context.WithCancel(ctx)
				f.replicas[p.Name()] = cancel
				item := f.item
				mu.Unlock()
				trk.opts.Metrics.assigned(p.Name())
				ev, tc := trk.opts.Events, trk.opts.Trace
				if takeIdx >= 0 {
					ev.Point(tc, "scheduler.assign",
						"item", eventlog.Int(int64(item.ID)), "path", p.Name())
				} else {
					ev.Point(tc, "scheduler.duplicate",
						"item", eventlog.Int(int64(item.ID)), "path", p.Name())
				}
				sp := ev.Begin(tc, "scheduler.attempt",
					"item", eventlog.Int(int64(item.ID)), "path", p.Name())

				n, err, stalled := runAttempt(eventlog.NewContext(tctx, sp.Context()), p, item, trk)
				// Record whether *our replica* was cancelled before we
				// release the context (cancel() would make tctx.Err()
				// non-nil unconditionally). A stall abort cancels only
				// runAttempt's child context, so it lands in the genuine-
				// failure branch below and the item is requeued.
				replicaCancelled := tctx.Err() != nil
				cancel()

				var backoffDelay time.Duration
				mu.Lock() //3golvet:allow locksafe — outcome bookkeeping unlocks manually on the abort path
				delete(f.replicas, p.Name())
				switch {
				case err == nil:
					won := false
					if !trk.isDone(item.ID) {
						won = trk.complete(item, p.Name(), n)
					} else {
						trk.addBytes(p.Name(), n)
						trk.addWaste(n)
					}
					if won {
						sp.End("outcome", "ok", "bytes", eventlog.Int(n))
						// Abort losing replicas; their partial bytes are
						// accounted when their Transfer returns.
						for _, c := range f.replicas {
							c()
						}
						delete(inflight, item.ID)
					} else {
						sp.End("outcome", "lost_race", "bytes", eventlog.Int(n))
					}
					trk.res.onSuccess(p.Name())
					cond.Broadcast()
				case replicaCancelled && ctx.Err() == nil:
					// Cancelled because another replica won: waste.
					sp.End("outcome", "cancelled", "bytes", eventlog.Int(n))
					trk.addBytes(p.Name(), n)
					trk.addWaste(n)
					cond.Broadcast()
				case ctx.Err() != nil:
					sp.End("outcome", "cancelled", "bytes", eventlog.Int(n))
					trk.addBytes(p.Name(), n)
					mu.Unlock()
					return ctx.Err()
				default:
					// Genuine transfer failure: requeue unless the item
					// completed elsewhere or every path has exhausted its
					// retry budget for it.
					sp.End("outcome", "error", "bytes", eventlog.Int(n), "error", err.Error())
					trk.addBytes(p.Name(), n)
					if stalled {
						trk.opts.Metrics.stallAborted(p.Name())
						ev.Point(tc, "scheduler.stall",
							"item", eventlog.Int(int64(item.ID)), "path", p.Name(),
							"timeout_s", eventlog.Float(trk.res.stall.Seconds()))
					}
					trk.opts.Metrics.retried(p.Name())
					ev.Point(tc, "scheduler.retry",
						"item", eventlog.Int(int64(item.ID)), "path", p.Name())
					backoffDelay = trk.res.onFailure(p.Name(), trk.clk.Now())
					if !trk.isDone(item.ID) {
						recordFail(item.ID, p.Name())
						switch {
						case exhaustedEverywhere(item.ID):
							attempts := 0
							for _, c := range fails[item.ID] {
								attempts += c
							}
							failed = &ItemError{ItemID: item.ID, ItemName: item.Name,
								PathName: p.Name(), Attempts: attempts, Everywhere: true, Err: err}
							ev.Point(tc, "scheduler.exhausted",
								"item", eventlog.Int(int64(item.ID)), "path", p.Name())
						case len(f.replicas) == 0:
							// No other replica carries it: requeue so a
							// path with remaining budget can take it.
							delete(inflight, item.ID)
							pending = append(pending, item)
							trk.opts.Metrics.requeued()
							ev.Point(tc, "scheduler.requeue",
								"item", eventlog.Int(int64(item.ID)), "path", p.Name())
						}
					}
					cond.Broadcast()
				}
				mu.Unlock()
				if backoffDelay > 0 {
					trk.opts.Metrics.backedOff(p.Name())
					ev.Point(tc, "scheduler.backoff",
						"item", eventlog.Int(int64(item.ID)), "path", p.Name(),
						"delay_s", eventlog.Float(backoffDelay.Seconds()))
					trk.sleepFor(ctx, backoffDelay)
				}
			}
		})
	}
	return g.wait()
}

// errGroup is a minimal errgroup built on the stdlib (module is
// dependency-free): first error wins, wait returns it.
type errGroup struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
	err    error
}

func newErrGroup(parent context.Context) *errGroup {
	ctx, cancel := context.WithCancel(parent)
	return &errGroup{ctx: ctx, cancel: cancel}
}

func (g *errGroup) go_(fn func(context.Context) error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(g.ctx); err != nil {
			g.once.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

func (g *errGroup) wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}
