package scheduler_test

import (
	"context"
	"fmt"
	"time"

	"threegol/internal/scheduler"
)

// ratePath is a toy path delivering items at a fixed byte rate.
type ratePath struct {
	name string
	rate float64 // bytes per second
}

func (p *ratePath) Name() string { return p.name }

func (p *ratePath) Transfer(ctx context.Context, item scheduler.Item) (int64, error) {
	select {
	case <-time.After(time.Duration(float64(item.Size) / p.rate * float64(time.Second))):
		return item.Size, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// A minimal 3GOL transaction: four segments over the ADSL line plus one
// phone, greedy policy. The fast path ends up carrying most items.
func ExampleRun() {
	items := []scheduler.Item{
		{ID: 0, Name: "seg0.ts", Size: 60_000},
		{ID: 1, Name: "seg1.ts", Size: 60_000},
		{ID: 2, Name: "seg2.ts", Size: 60_000},
		{ID: 3, Name: "seg3.ts", Size: 60_000},
	}
	paths := []scheduler.Path{
		&ratePath{name: "adsl", rate: 2_000_000},
		&ratePath{name: "phone1", rate: 1_000_000},
	}
	rep, err := scheduler.Run(context.Background(), scheduler.Greedy, items, paths, scheduler.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("completed %d items; adsl carried %d\n",
		len(rep.ItemDone), rep.PerPath["adsl"].Items)
	// Output: completed 4 items; adsl carried 3
}
