package scheduler

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"threegol/internal/obs"
)

func TestBackoffDelayDeterministic(t *testing.T) {
	cfg := BackoffConfig{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.5, Seed: 7}
	a, b := newBackoffState(cfg), newBackoffState(cfg)
	for k := 0; k < 8; k++ {
		da, db := a.delay(k), b.delay(k)
		if da != db {
			t.Fatalf("delay(%d): %v vs %v — same seed must draw the same jitter", k, da, db)
		}
		// Bounds: min(Max, Base·2^k) ≤ d < that·(1+Jitter).
		base := cfg.Base << k
		if base > cfg.Max {
			base = cfg.Max
		}
		if da < base || da >= base+time.Duration(cfg.Jitter*float64(base))+time.Nanosecond {
			t.Fatalf("delay(%d) = %v outside [%v, %v)", k, da, base, base*3/2)
		}
	}
	// Zero Base disables backoff entirely.
	if d := newBackoffState(BackoffConfig{}).delay(3); d != 0 {
		t.Fatalf("disabled backoff returned %v", d)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	trk := &tracker{opts: Options{}}
	b := &breaker{
		path: "phone1",
		cfg:  BreakerConfig{Threshold: 2, Cooldown: time.Second, MaxCooldown: 3 * time.Second},
		trk:  trk, cooldown: time.Second,
	}
	t0 := time.Unix(100, 0)

	if _, ok := b.admit(t0); !ok {
		t.Fatal("closed breaker must admit")
	}
	b.onFailure(t0)
	if _, ok := b.admit(t0); !ok {
		t.Fatal("one failure under threshold must not eject")
	}
	b.onFailure(t0) // second consecutive failure → open
	wait, ok := b.admit(t0)
	if ok || wait != time.Second {
		t.Fatalf("open breaker admitted (wait %v, ok %v)", wait, ok)
	}

	// Cooldown elapsed → half-open probe admitted; probe failure
	// re-opens with doubled cooldown.
	t1 := t0.Add(time.Second)
	if _, ok := b.admit(t1); !ok {
		t.Fatal("expired cooldown must admit the probe")
	}
	b.onFailure(t1)
	wait, ok = b.admit(t1)
	if ok || wait != 2*time.Second {
		t.Fatalf("failed probe: wait %v, ok %v; want 2s hold", wait, ok)
	}

	// Next probe succeeds → closed, cooldown reset.
	t2 := t1.Add(2 * time.Second)
	if _, ok := b.admit(t2); !ok {
		t.Fatal("second probe not admitted")
	}
	b.onSuccess()
	if _, ok := b.admit(t2); !ok {
		t.Fatal("closed-after-probe breaker must admit")
	}
	if b.cooldown != time.Second {
		t.Fatalf("cooldown after success = %v; want reset to 1s", b.cooldown)
	}

	// Cooldown escalation caps at MaxCooldown.
	for i := 0; i < 4; i++ {
		b.onFailure(t2)
		b.onFailure(t2)
		b.mu.Lock()
		b.state = breakerClosed // re-arm without waiting out the hold
		b.mu.Unlock()
	}
	if b.cooldown != 3*time.Second {
		t.Fatalf("cooldown = %v; want capped at 3s", b.cooldown)
	}
}

// stallyPath is a ProgressPath that silently wedges (no bytes, no
// error) for the first stallsLeft[item] attempts, then transfers
// instantly.
type stallyPath struct {
	name string

	mu         sync.Mutex
	stallsLeft map[int]int
}

func (p *stallyPath) Name() string { return p.name }

func (p *stallyPath) Transfer(ctx context.Context, item Item) (int64, error) {
	return p.TransferProgress(ctx, item, func(int64) {})
}

func (p *stallyPath) TransferProgress(ctx context.Context, item Item, progress func(int64)) (int64, error) {
	p.mu.Lock()
	stall := p.stallsLeft[item.ID] > 0
	if stall {
		p.stallsLeft[item.ID]--
	}
	p.mu.Unlock()
	if stall {
		<-ctx.Done() // wedge until the watchdog (or caller) kills us
		return 0, ctx.Err()
	}
	progress(item.Size)
	return item.Size, nil
}

func TestStallWatchdogAbortsAndRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	p := &stallyPath{name: "phone1", stallsLeft: map[int]int{0: 1, 2: 1}}
	rep, err := Run(context.Background(), Greedy, mkItems(3, 100), []Path{p},
		Options{StallTimeout: 30 * time.Millisecond, MaxRetries: 3, Metrics: m})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := rep.PerPath["phone1"].Items; got != 3 {
		t.Fatalf("completed %d of 3 items", got)
	}
	if got := m.StallAborts.With("phone1").Value(); got != 2 {
		t.Fatalf("stall aborts = %v; want 2", got)
	}
}

func TestStallWatchdogNeedsProgressPath(t *testing.T) {
	// An opaque Path (no TransferProgress) must never be watchdog-
	// aborted, however long it takes.
	p := &fakePath{name: "adsl", rate: 1e4} // 10ms per 100-byte item
	rep, err := Run(context.Background(), Greedy, mkItems(1, 100), []Path{p},
		Options{StallTimeout: time.Millisecond})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.PerPath["adsl"].Items != 1 {
		t.Fatalf("item did not complete: %+v", rep)
	}
}

func TestStallErrorRequeues(t *testing.T) {
	// One path that always wedges for item 0, a second that is clean:
	// the stall abort must requeue the item, not kill the transaction.
	wedge := &stallyPath{name: "phone1", stallsLeft: map[int]int{0: 99, 1: 99}}
	clean := &fakePath{name: "adsl", rate: 1e4} // 100ms per item: slow enough for the watchdog to beat it
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	rep, err := Run(context.Background(), Greedy, mkItems(2, 1000), []Path{clean, wedge},
		Options{StallTimeout: 20 * time.Millisecond, MaxRetries: 2, Metrics: m})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := rep.PerPath["adsl"].Items; got != 2 {
		t.Fatalf("adsl completed %d of 2 (%+v)", got, rep.PerPath)
	}
	if m.StallAborts.With("phone1").Value() == 0 {
		t.Fatal("watchdog never fired on the wedged path")
	}
}

func TestGracefulDegradationADSLOnly(t *testing.T) {
	// The acceptance property: every phone path dead for the whole
	// transaction ⇒ 100% of items complete over ADSL alone, with the
	// breakers ejecting the dead paths instead of burning retries.
	const n = 6
	dead := func(name string) *fakePath {
		f := map[int]int{}
		for i := 0; i < n; i++ {
			f[i] = 1000
		}
		return &fakePath{name: name, rate: 1e6, failures: f}
	}
	adsl := &fakePath{name: "adsl", rate: 1e6}
	phone1, phone2 := dead("phone1"), dead("phone2")
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	rep, err := Run(context.Background(), Greedy, mkItems(n, 1000),
		[]Path{adsl, phone1, phone2},
		Options{
			MaxRetries: 2,
			Backoff:    BackoffConfig{Base: time.Millisecond, Jitter: 0.5, Seed: 1},
			Breaker:    BreakerConfig{Threshold: 2, Cooldown: 10 * time.Millisecond},
			Metrics:    m,
		})
	if err != nil {
		t.Fatalf("transaction failed with a live ADSL path: %v", err)
	}
	if got := rep.PerPath["adsl"].Items; got != n {
		t.Fatalf("adsl delivered %d of %d", got, n)
	}
	for _, phone := range []string{"phone1", "phone2"} {
		if got := rep.PerPath[phone].Items; got != 0 {
			t.Fatalf("%s delivered %d items while dead", phone, got)
		}
	}
	if m.BreakerOpens.With("phone1").Value() == 0 || m.BreakerOpens.With("phone2").Value() == 0 {
		t.Fatal("dead phone paths never tripped their breakers")
	}
	if m.Backoffs.With("phone1").Value() == 0 {
		t.Fatal("failing path never backed off")
	}
}

func TestGreedyExhaustionItemError(t *testing.T) {
	// Greedy exhaustion-everywhere surfaces the typed error with
	// Everywhere set and a summed attempt count.
	p1 := &fakePath{name: "adsl", rate: 1e6, failures: map[int]int{0: 99}}
	p2 := &fakePath{name: "phone1", rate: 1e6, failures: map[int]int{0: 99}}
	_, err := Run(context.Background(), Greedy, mkItems(1, 100), []Path{p1, p2},
		Options{MaxRetries: 2})
	if err == nil {
		t.Fatal("want exhaustion error")
	}
	var ie *ItemError
	if !errors.As(err, &ie) {
		t.Fatalf("err is %T, want *ItemError", err)
	}
	if !ie.Everywhere || ie.ItemID != 0 || ie.Attempts != 4 {
		t.Fatalf("ItemError = %+v; want Everywhere, item 0, 4 attempts", ie)
	}
}

func TestBackoffDisabledByDefault(t *testing.T) {
	// Zero Options must keep the historical instant-retry behaviour:
	// a transaction with failures still finishes fast.
	p := &fakePath{name: "adsl", rate: 1e6, failures: map[int]int{0: 2}}
	start := time.Now()
	if _, err := Run(context.Background(), Greedy, mkItems(1, 100), []Path{p},
		Options{MaxRetries: 3}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("instant retry took %v", d)
	}
}
