package scheduler

import (
	"context"
	"errors"
	"sync"
	"testing"

	"threegol/internal/obs/eventlog"
)

// newTestLog returns a log on a strictly increasing fake time source so
// span extents are non-zero without real sleeps. Time sources are read
// outside the log's lock, so this one synchronises itself — the same
// contract SinceStart and simclock satisfy.
func newTestLog() *eventlog.Log {
	var mu sync.Mutex
	var t float64
	return eventlog.New(0, 42, func() float64 {
		mu.Lock()
		defer mu.Unlock()
		t += 0.001
		return t
	})
}

func filterEvents(evs []eventlog.Event, kind, name string) []eventlog.Event {
	var out []eventlog.Event
	for _, ev := range evs {
		if ev.Kind == kind && ev.Name == name {
			out = append(out, ev)
		}
	}
	return out
}

// outcomes tallies the "outcome" attr over the end events of the named
// span kind.
func outcomes(evs []eventlog.Event, name string) map[string]int {
	m := make(map[string]int)
	for _, ev := range filterEvents(evs, eventlog.KindEnd, name) {
		m[ev.Attrs["outcome"]]++
	}
	return m
}

// Every event of a transaction must share the transaction's trace, and
// points/attempts must parent to the transaction span.
func checkSingleTrace(t *testing.T, evs []eventlog.Event) (txSpan string) {
	t.Helper()
	begins := filterEvents(evs, eventlog.KindBegin, "scheduler.transaction")
	if len(begins) != 1 {
		t.Fatalf("got %d transaction begins, want 1", len(begins))
	}
	tx := begins[0]
	for _, ev := range evs {
		if ev.Trace != tx.Trace {
			t.Errorf("event %s/%s on trace %s, want %s", ev.Kind, ev.Name, ev.Trace, tx.Trace)
		}
	}
	return tx.Span
}

// A failed attempt on a fixed-queue policy emits one retry point per
// failure and an ok attempt once the path recovers.
func TestRetryEventsOnFixedPath(t *testing.T) {
	log := newTestLog()
	p := &fakePath{name: "adsl", rate: 1e6, failures: map[int]int{0: 2}}
	rep, err := Run(context.Background(), RoundRobin, mkItems(1, 1000), []Path{p},
		Options{MaxRetries: 3, Events: log})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerPath["adsl"].Items != 1 {
		t.Fatalf("item not completed: %+v", rep.PerPath)
	}
	evs := log.Events()
	txSpan := checkSingleTrace(t, evs)

	if got := len(filterEvents(evs, eventlog.KindPoint, "scheduler.retry")); got != 2 {
		t.Errorf("retry points = %d, want 2", got)
	}
	if got := len(filterEvents(evs, eventlog.KindPoint, "scheduler.exhausted")); got != 0 {
		t.Errorf("exhausted points = %d, want 0", got)
	}
	if got := outcomes(evs, "scheduler.attempt"); got["error"] != 2 || got["ok"] != 1 {
		t.Errorf("attempt outcomes = %v, want error:2 ok:1", got)
	}
	for _, ev := range filterEvents(evs, eventlog.KindBegin, "scheduler.attempt") {
		if ev.Parent != txSpan {
			t.Errorf("attempt parented to %s, want transaction span %s", ev.Parent, txSpan)
		}
	}
	if got := len(filterEvents(evs, eventlog.KindPoint, "scheduler.item_done")); got != 1 {
		t.Errorf("item_done points = %d, want 1", got)
	}
	if got := outcomes(evs, "scheduler.transaction"); got["ok"] != 1 {
		t.Errorf("transaction outcomes = %v, want ok:1", got)
	}
}

// MaxRetries exhaustion aborts the transaction and leaves an exhausted
// point plus an error-ended transaction in the stream.
func TestExhaustionEvents(t *testing.T) {
	log := newTestLog()
	p := &fakePath{name: "adsl", rate: 1e6, failures: map[int]int{0: 99}}
	_, err := Run(context.Background(), RoundRobin, mkItems(1, 1000), []Path{p},
		Options{MaxRetries: 2, Events: log})
	if err == nil {
		t.Fatal("want exhaustion error")
	}
	// Exhaustion surfaces as a typed *ItemError carrying the item, path
	// and attempt count, with the final failure preserved for errors.Is.
	var ie *ItemError
	if !errors.As(err, &ie) {
		t.Fatalf("exhaustion error is %T, want *ItemError", err)
	}
	const wantMsg = "scheduler: item 0 (item0) failed on path adsl after 2 attempts: injected failure for item 0"
	if err.Error() != wantMsg {
		t.Errorf("error message = %q\n            want %q", err, wantMsg)
	}
	evs := log.Events()
	checkSingleTrace(t, evs)

	if got := len(filterEvents(evs, eventlog.KindPoint, "scheduler.retry")); got != 2 {
		t.Errorf("retry points = %d, want 2", got)
	}
	if got := len(filterEvents(evs, eventlog.KindPoint, "scheduler.exhausted")); got != 1 {
		t.Errorf("exhausted points = %d, want 1", got)
	}
	if got := outcomes(evs, "scheduler.attempt"); got["error"] != 2 {
		t.Errorf("attempt outcomes = %v, want error:2", got)
	}
	tx := outcomes(evs, "scheduler.transaction")
	if tx["error"] != 1 {
		t.Errorf("transaction outcomes = %v, want error:1", tx)
	}
	ends := filterEvents(evs, eventlog.KindEnd, "scheduler.transaction")
	if len(ends) == 1 && ends[0].Attrs["error"] == "" {
		t.Error("error-ended transaction carries no error attr")
	}
}

// The GRD endgame duplicates the in-flight item onto the idle path; the
// losing replica must surface as a duplicate point plus a cancelled or
// lost_race attempt end — the waste 3goltrace accounts.
func TestGreedyDuplicateEvents(t *testing.T) {
	log := newTestLog()
	paths := []Path{
		&fakePath{name: "adsl", rate: 200e3},
		&fakePath{name: "ph1", rate: 150e3},
	}
	rep, err := Run(context.Background(), Greedy, mkItems(1, 20000), paths,
		Options{Events: log})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates < 1 {
		t.Fatalf("endgame never duplicated: %+v", rep)
	}
	evs := log.Events()
	checkSingleTrace(t, evs)

	if got := len(filterEvents(evs, eventlog.KindPoint, "scheduler.duplicate")); got != rep.Duplicates {
		t.Errorf("duplicate points = %d, want %d (Report.Duplicates)", got, rep.Duplicates)
	}
	if got := len(filterEvents(evs, eventlog.KindPoint, "scheduler.assign")); got != 1 {
		t.Errorf("assign points = %d, want 1", got)
	}
	oc := outcomes(evs, "scheduler.attempt")
	if oc["ok"] != 1 {
		t.Errorf("attempt outcomes = %v, want exactly one ok", oc)
	}
	if oc["cancelled"]+oc["lost_race"] != rep.Duplicates {
		t.Errorf("attempt outcomes = %v, want %d losing replicas", oc, rep.Duplicates)
	}
	if got := len(filterEvents(evs, eventlog.KindPoint, "scheduler.item_done")); got != 1 {
		t.Errorf("item_done points = %d, want 1", got)
	}
}

// A genuine failure with no surviving replica requeues the item, which
// must leave a requeue point before the item eventually completes.
func TestGreedyRequeueEvents(t *testing.T) {
	log := newTestLog()
	p := &fakePath{name: "adsl", rate: 1e6, failures: map[int]int{0: 1}}
	rep, err := Run(context.Background(), Greedy, mkItems(2, 1000), []Path{p},
		Options{MaxRetries: 3, Events: log})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerPath["adsl"].Items != 2 {
		t.Fatalf("completions = %d, want 2", rep.PerPath["adsl"].Items)
	}
	evs := log.Events()
	checkSingleTrace(t, evs)

	if got := len(filterEvents(evs, eventlog.KindPoint, "scheduler.requeue")); got != 1 {
		t.Errorf("requeue points = %d, want 1", got)
	}
	if got := len(filterEvents(evs, eventlog.KindPoint, "scheduler.retry")); got != 1 {
		t.Errorf("retry points = %d, want 1", got)
	}
	// 2 initial assignments + 1 re-assignment after the requeue.
	if got := len(filterEvents(evs, eventlog.KindPoint, "scheduler.assign")); got != 3 {
		t.Errorf("assign points = %d, want 3", got)
	}
	if got := len(filterEvents(evs, eventlog.KindPoint, "scheduler.item_done")); got != 2 {
		t.Errorf("item_done points = %d, want 2", got)
	}
}

// Options.Trace stitches the transaction under a caller-supplied span —
// the client-request → scheduler propagation path.
func TestTransactionParentedUnderCallerSpan(t *testing.T) {
	log := newTestLog()
	root := log.Begin(eventlog.TraceContext{}, "client.request")
	p := &fakePath{name: "adsl", rate: 1e6}
	if _, err := Run(context.Background(), RoundRobin, mkItems(1, 1000), []Path{p},
		Options{Events: log, Trace: root.Context()}); err != nil {
		t.Fatal(err)
	}
	root.End("outcome", "ok")
	evs := log.Events()
	begins := filterEvents(evs, eventlog.KindBegin, "scheduler.transaction")
	if len(begins) != 1 {
		t.Fatalf("got %d transaction begins, want 1", len(begins))
	}
	if begins[0].Trace != root.Context().Trace {
		t.Errorf("transaction on trace %s, want caller trace %s", begins[0].Trace, root.Context().Trace)
	}
	if begins[0].Parent != root.Context().Span {
		t.Errorf("transaction parented to %q, want caller span %s", begins[0].Parent, root.Context().Span)
	}
	if _, err := eventlog.Check(evs); err != nil {
		t.Fatalf("stream fails Check: %v", err)
	}
}

// A nil Events log must be a no-op for every policy (the default path
// stays unobserved and allocation-free).
func TestNilEventLog(t *testing.T) {
	for _, algo := range []Algo{Greedy, RoundRobin, MinTime} {
		p := &fakePath{name: "p", rate: 1e6}
		if _, err := Run(context.Background(), algo, mkItems(2, 500), []Path{p}, Options{}); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
	}
}
