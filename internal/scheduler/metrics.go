package scheduler

import "threegol/internal/obs"

// Metrics holds the scheduler's instruments. Register once per process
// (or per simulation shard) with NewMetrics and hand the struct to
// every transaction via Options.Metrics; a nil Metrics disables
// instrumentation with no overhead beyond a nil check.
//
// The "path" label carries Path.Name() ("adsl", "phone1", …). Elapsed
// times come from the transaction's injected clock.Clock, so a
// virtual-clock run fills the latency histogram deterministically.
type Metrics struct {
	// Assignments counts item-to-path launches: first attempts and
	// endgame replicas, but not same-path retries.
	Assignments *obs.Counter
	// Completed counts winning transfers per path.
	Completed *obs.Counter
	// Retries counts failed transfer attempts (the item is retried on
	// the same path, or — under GRD — requeued for another).
	Retries *obs.Counter
	// Requeues counts items put back on the pending queue after a path
	// exhausted its retry budget for them — the reassignment-on-path-
	// death signal.
	Requeues *obs.Counter
	// Duplicates counts endgame replica launches (GRD/PLAYOUT only).
	Duplicates *obs.Counter
	// Bytes counts all bytes moved per path, including losing replicas.
	Bytes *obs.Counter
	// WastedBytes counts bytes moved by replicas that lost the endgame
	// race.
	WastedBytes *obs.Counter
	// ItemSeconds records, for each completed item, the elapsed time
	// from transaction start to its first completion, by winning path —
	// the per-transaction completion curve (Report.ItemDone) as a
	// mergeable histogram.
	ItemSeconds *obs.Histogram
	// StallAborts counts progress-watchdog aborts: attempts cancelled
	// because no bytes moved within Options.StallTimeout, by path.
	StallAborts *obs.Counter
	// Backoffs counts backoff sleeps applied before retry attempts, by
	// path.
	Backoffs *obs.Counter
	// BreakerOpens counts circuit-breaker openings (path ejected from
	// the rotation after consecutive failures), by path.
	BreakerOpens *obs.Counter
	// BreakerProbes counts half-open probe admissions after a cooldown,
	// by path.
	BreakerProbes *obs.Counter
	// BreakerCloses counts breaker re-closures (a half-open probe
	// succeeded and the path rejoined the rotation), by path.
	BreakerCloses *obs.Counter
}

// NewMetrics registers the scheduler's metrics on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Assignments: r.NewCounter("scheduler_assignments_total",
			"Item-to-path launches: first attempts and endgame replicas (not same-path retries).", "path"),
		Completed: r.NewCounter("scheduler_items_completed_total",
			"Winning item transfers, by path.", "path"),
		Retries: r.NewCounter("scheduler_retries_total",
			"Failed transfer attempts that will be retried or requeued, by path.", "path"),
		Requeues: r.NewCounter("scheduler_requeues_total",
			"Items requeued after a path exhausted its retry budget for them (reassignment on path death)."),
		Duplicates: r.NewCounter("scheduler_duplicates_total",
			"Endgame replica launches (GRD/PLAYOUT), by path.", "path"),
		Bytes: r.NewCounter("scheduler_bytes_total",
			"Bytes moved per path, including losing replicas.", "path"),
		WastedBytes: r.NewCounter("scheduler_wasted_bytes_total",
			"Bytes moved by replicas that lost the endgame race."),
		ItemSeconds: r.NewHistogram("scheduler_item_seconds",
			"Elapsed time from transaction start to each item's first completion, by winning path.",
			0, 60, 1200, "path"),
		StallAborts: r.NewCounter("scheduler_stall_aborts_total",
			"Attempts aborted by the progress watchdog (no bytes moved within the stall timeout), by path.", "path"),
		Backoffs: r.NewCounter("scheduler_backoffs_total",
			"Backoff sleeps applied before retry attempts, by path.", "path"),
		BreakerOpens: r.NewCounter("scheduler_breaker_opens_total",
			"Circuit-breaker openings: path ejected from the rotation after consecutive failures, by path.", "path"),
		BreakerProbes: r.NewCounter("scheduler_breaker_probes_total",
			"Half-open probe admissions after a breaker cooldown elapsed, by path.", "path"),
		BreakerCloses: r.NewCounter("scheduler_breaker_closes_total",
			"Breaker re-closures: a half-open probe succeeded and the path rejoined the rotation, by path.", "path"),
	}
}

// The hooks below are nil-safe so instrumented code needs no guards.

func (m *Metrics) assigned(path string) {
	if m == nil {
		return
	}
	m.Assignments.With(path).Inc()
}

func (m *Metrics) completed(path string, seconds float64) {
	if m == nil {
		return
	}
	m.Completed.With(path).Inc()
	m.ItemSeconds.With(path).Observe(seconds)
}

func (m *Metrics) retried(path string) {
	if m == nil {
		return
	}
	m.Retries.With(path).Inc()
}

func (m *Metrics) requeued() {
	if m == nil {
		return
	}
	m.Requeues.Inc()
}

func (m *Metrics) duplicated(path string) {
	if m == nil {
		return
	}
	m.Duplicates.With(path).Inc()
}

func (m *Metrics) movedBytes(path string, n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.Bytes.With(path).Add(n)
}

func (m *Metrics) wasted(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.WastedBytes.Add(n)
}

func (m *Metrics) stallAborted(path string) {
	if m == nil {
		return
	}
	m.StallAborts.With(path).Inc()
}

func (m *Metrics) backedOff(path string) {
	if m == nil {
		return
	}
	m.Backoffs.With(path).Inc()
}

func (m *Metrics) breakerOpened(path string) {
	if m == nil {
		return
	}
	m.BreakerOpens.With(path).Inc()
}

func (m *Metrics) breakerProbed(path string) {
	if m == nil {
		return
	}
	m.BreakerProbes.With(path).Inc()
}

func (m *Metrics) breakerClosed(path string) {
	if m == nil {
		return
	}
	m.BreakerCloses.With(path).Inc()
}
