package scheduler

// This file is the scheduler's path-health resilience layer — the
// answer to internal/fault's hostile edge. Three mechanisms, all off by
// default (zero Options values preserve the historical fail-politely
// behaviour):
//
//   - deterministic exponential backoff with seeded jitter between
//     retry attempts (BackoffConfig);
//   - a progress watchdog that aborts an attempt when no bytes move for
//     StallTimeout and requeues the item — the only defence against
//     silent stalls, where the path neither errs nor progresses
//     (ProgressPath, runAttempt);
//   - a per-path circuit breaker: consecutive failures eject the path
//     from the greedy rotation, an escalating cooldown holds it out,
//     and a half-open probe readmits it (BreakerConfig, breaker).
//
// Every state transition is exported through Options.Metrics and
// Options.Events so a chaos run's eventlog tells the whole story.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"threegol/internal/obs/eventlog"
)

// ProgressPath is a Path that can report byte progress mid-transfer.
// Paths that implement it come under the stall watchdog when
// Options.StallTimeout is set; opaque paths are never watchdog-aborted
// (a timeout on a path that merely cannot report progress would
// misfire).
type ProgressPath interface {
	Path
	// TransferProgress is Transfer with a progress hook: implementations
	// call progress with the cumulative bytes moved whenever the count
	// advances. The hook must be safe for concurrent use.
	TransferProgress(ctx context.Context, item Item, progress func(total int64)) (int64, error)
}

// ItemError is the typed transaction-abort error: it carries the item,
// the path that observed the final failure, and the attempt count, so
// callers and log readers can tell what died where.
type ItemError struct {
	ItemID   int
	ItemName string
	PathName string
	Attempts int
	// Everywhere is true when the greedy scheduler exhausted the retry
	// budget on every path, not just PathName (the last one to fail).
	Everywhere bool
	Err        error
}

// Error implements error.
func (e *ItemError) Error() string {
	where := fmt.Sprintf("path %s", e.PathName)
	if e.Everywhere {
		where = fmt.Sprintf("every path (last %s)", e.PathName)
	}
	return fmt.Sprintf("scheduler: item %d (%s) failed on %s after %d attempts: %v",
		e.ItemID, e.ItemName, where, e.Attempts, e.Err)
}

// Unwrap exposes the final underlying failure to errors.Is/As.
func (e *ItemError) Unwrap() error { return e.Err }

// StallError reports a progress-watchdog abort: the path moved no bytes
// for at least Timeout, so the attempt was cancelled and the item goes
// back to the queue.
type StallError struct {
	ItemID   int
	PathName string
	Timeout  time.Duration
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("scheduler: item %d stalled on path %s (no progress for %v)",
		e.ItemID, e.PathName, e.Timeout)
}

// BackoffConfig tunes deterministic exponential backoff between retry
// attempts. The zero value disables backoff (instant retry).
type BackoffConfig struct {
	// Base is the delay before the first retry; 0 disables backoff.
	Base time.Duration
	// Max caps the exponential growth; 0 selects 32×Base.
	Max time.Duration
	// Jitter widens each delay by a uniform random fraction: the k-th
	// delay is min(Max, Base·2^k)·(1 + Jitter·U), U ∈ [0, 1) drawn from
	// the seeded stream. 0 means no jitter.
	Jitter float64
	// Seed seeds the jitter stream — no global rand, so a transaction
	// replayed with the same seed draws the same jitter sequence.
	Seed int64
}

func (c BackoffConfig) max() time.Duration {
	if c.Max > 0 {
		return c.Max
	}
	return 32 * c.Base
}

// backoffState owns the seeded jitter stream for one transaction.
type backoffState struct {
	cfg BackoffConfig

	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoffState(cfg BackoffConfig) *backoffState {
	if cfg.Base <= 0 {
		return nil
	}
	return &backoffState{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// delay computes the backoff before retry k (0-based): exponential from
// Base, capped at Max, widened by seeded jitter.
func (b *backoffState) delay(k int) time.Duration {
	if b == nil {
		return 0
	}
	d := b.cfg.Base
	for i := 0; i < k && d < b.cfg.max(); i++ {
		d *= 2
	}
	if m := b.cfg.max(); d > m {
		d = m
	}
	if b.cfg.Jitter > 0 {
		b.mu.Lock() //3golvet:allow locksafe — one jitter draw; deferring would serialise the arithmetic below
		u := b.rng.Float64()
		b.mu.Unlock()
		d += time.Duration(b.cfg.Jitter * u * float64(d))
	}
	return d
}

// BreakerConfig tunes the per-path circuit breaker. The zero value
// disables it. The breaker applies to the greedy policies (GRD and
// PLAYOUT) only: fixed-queue policies cannot reassign around an ejected
// path, so ejection would only add latency there.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// and ejects the path from the rotation; 0 disables the breaker.
	Threshold int
	// Cooldown is how long the first opening holds the path out before
	// the half-open probe; 0 selects 500ms. Every re-opening doubles
	// the hold, up to MaxCooldown.
	Cooldown time.Duration
	// MaxCooldown caps the doubling; 0 selects 8×Cooldown.
	MaxCooldown time.Duration
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 500 * time.Millisecond
}

func (c BreakerConfig) maxCooldown() time.Duration {
	if c.MaxCooldown > 0 {
		return c.MaxCooldown
	}
	return 8 * c.cooldown()
}

// Breaker states: closed (healthy) → open (ejected, cooling down) →
// half-open (one probe in flight) → closed again on probe success, or
// back to open (escalated cooldown) on probe failure.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one path's circuit breaker. Each path is driven by exactly
// one greedy worker, so the half-open probe needs no token contention:
// whichever admit call finds the cooldown expired is the probe.
type breaker struct {
	path string
	cfg  BreakerConfig
	trk  *tracker

	mu       sync.Mutex
	state    int
	consec   int           // consecutive failures while closed
	until    time.Time     // open: when the half-open probe unlocks
	cooldown time.Duration // hold applied at the next opening
}

// admit reports whether the path may attempt a transfer now. While the
// breaker is open it returns the remaining cooldown; an open breaker
// whose cooldown has elapsed transitions to half-open and admits the
// caller as the probe.
func (b *breaker) admit(now time.Time) (wait time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return 0, true
	}
	if wait := b.until.Sub(now); wait > 0 {
		return wait, false
	}
	b.state = breakerHalfOpen
	b.trk.opts.Metrics.breakerProbed(b.path)
	b.trk.opts.Events.Point(b.trk.opts.Trace, "scheduler.breaker_probe", "path", b.path)
	return 0, true
}

// onSuccess re-closes the breaker and resets the failure streak and
// cooldown escalation.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.trk.opts.Metrics.breakerClosed(b.path)
		b.trk.opts.Events.Point(b.trk.opts.Trace, "scheduler.breaker_close", "path", b.path)
	}
	b.state = breakerClosed
	b.consec = 0
	b.cooldown = b.cfg.cooldown()
}

// onFailure advances the state machine on a genuine transfer failure:
// a failed half-open probe re-opens immediately with an escalated
// cooldown; while closed, reaching Threshold consecutive failures opens
// the breaker.
func (b *breaker) onFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.open(now)
	case breakerClosed:
		b.consec++
		if b.consec >= b.cfg.Threshold {
			b.open(now)
		}
	}
}

// open ejects the path and escalates the next cooldown. Caller holds
// b.mu.
func (b *breaker) open(now time.Time) {
	b.state = breakerOpen
	b.until = now.Add(b.cooldown)
	b.trk.opts.Metrics.breakerOpened(b.path)
	b.trk.opts.Events.Point(b.trk.opts.Trace, "scheduler.breaker_open",
		"path", b.path, "cooldown_s", eventlog.Float(b.cooldown.Seconds()))
	b.cooldown *= 2
	if m := b.cfg.maxCooldown(); b.cooldown > m {
		b.cooldown = m
	}
	b.consec = 0
}

// resilience bundles one transaction's resilience state: the backoff
// stream, the per-path consecutive-failure counters, and the breakers.
type resilience struct {
	backoff *backoffState
	stall   time.Duration

	mu       sync.Mutex
	consec   map[string]int      // per-path failure streak (greedy backoff)
	breakers map[string]*breaker // nil when the breaker is disabled
}

func newResilience(opts Options, paths []Path, trk *tracker) *resilience {
	r := &resilience{
		backoff: newBackoffState(opts.Backoff),
		stall:   opts.StallTimeout,
		consec:  make(map[string]int),
	}
	if opts.Breaker.Threshold > 0 {
		r.breakers = make(map[string]*breaker, len(paths))
		for _, p := range paths {
			r.breakers[p.Name()] = &breaker{
				path: p.Name(), cfg: opts.Breaker, trk: trk,
				cooldown: opts.Breaker.cooldown(),
			}
		}
	}
	return r
}

// breakerFor returns the path's breaker, or nil when disabled.
func (r *resilience) breakerFor(path string) *breaker {
	return r.breakers[path]
}

// retryDelay is the backoff before the k-th same-path retry (0-based) —
// the fixed-queue policies' attempt-indexed schedule.
func (r *resilience) retryDelay(k int) time.Duration {
	return r.backoff.delay(k)
}

// onSuccess resets the path's failure streak and re-closes its breaker.
func (r *resilience) onSuccess(path string) {
	r.clearStreak(path)
	if br := r.breakers[path]; br != nil {
		br.onSuccess()
	}
}

// onFailure records a genuine transfer failure on path: it advances the
// breaker state machine and returns the backoff to apply before the
// path's next attempt (growing with the path's failure streak).
func (r *resilience) onFailure(path string, now time.Time) time.Duration {
	if br := r.breakers[path]; br != nil {
		br.onFailure(now)
	}
	if r.backoff == nil {
		return 0
	}
	return r.backoff.delay(r.bumpStreak(path))
}

func (r *resilience) bumpStreak(path string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.consec[path]
	r.consec[path] = n + 1
	return n
}

func (r *resilience) clearStreak(path string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.consec, path)
}

// sleepFor sleeps d on the transaction clock in small slices, waking
// early when ctx dies or the transaction completes. It reports whether
// the full duration elapsed.
func (t *tracker) sleepFor(ctx context.Context, d time.Duration) bool {
	const slice = 5 * time.Millisecond
	for d > 0 {
		if ctx.Err() != nil {
			return false
		}
		select {
		case <-t.doneCh:
			return false
		default:
		}
		step := d
		if step > slice {
			step = slice
		}
		t.clk.Sleep(step)
		d -= step
	}
	return ctx.Err() == nil
}

// runAttempt performs one transfer attempt, guarding it with the
// progress watchdog when StallTimeout is set and the path reports
// progress. stalled is true when the watchdog cancelled the attempt (in
// which case err is a *StallError and the parent ctx is still alive).
func runAttempt(ctx context.Context, p Path, it Item, trk *tracker) (n int64, err error, stalled bool) {
	pp, watched := p.(ProgressPath)
	st := trk.res.stall
	if st <= 0 || !watched {
		n, err = p.Transfer(ctx, it)
		return n, err, false
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu         sync.Mutex
		lastTotal  int64 = -1 // -1 ≠ 0: a silent connect stall must trip too
		lastChange       = trk.clk.Now()
		tripped    bool
	)
	done := make(chan struct{})
	go func() {
		// The watchdog polls at a quarter of the stall timeout; it
		// cancels only the attempt's child context, so the scheduler's
		// replica-cancellation detection (tctx.Err()) stays false and a
		// stall abort flows into the requeue branch.
		slice := st / 4
		if slice <= 0 {
			slice = time.Millisecond
		}
		for {
			trk.clk.Sleep(slice)
			select {
			case <-done:
				return
			default:
			}
			mu.Lock() //3golvet:allow locksafe — two-line idle read inside the poll loop; defer would pin it per-iteration
			idle := trk.clk.Since(lastChange)
			mu.Unlock()
			if idle >= st {
				mu.Lock() //3golvet:allow locksafe — sets the trip flag before cancel(); defer would hold it across cancel
				tripped = true
				mu.Unlock()
				cancel()
				return
			}
		}
	}()
	n, err = pp.TransferProgress(wctx, it, func(total int64) {
		mu.Lock()
		if total != lastTotal {
			lastTotal = total
			lastChange = trk.clk.Now()
		}
		mu.Unlock()
	})
	close(done)
	mu.Lock() //3golvet:allow locksafe — two-line read of the trip flag; deferring would hold it across return
	s := tripped
	mu.Unlock()
	if s && err != nil && ctx.Err() == nil {
		return n, &StallError{ItemID: it.ID, PathName: p.Name(), Timeout: st}, true
	}
	return n, err, false
}
