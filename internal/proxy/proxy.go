// Package proxy implements the 3GOL device component's HTTP proxy: it
// accepts requests arriving over the home Wi-Fi and pipes them through
// the device's 3G interface (§4.1). Plain HTTP requests (absolute-form,
// as sent by clients configured with this proxy) are forwarded with a
// transport bound to the 3G dialer; CONNECT tunnels are spliced raw.
//
// The proxy exposes two policy hooks that the two deployment modes of the
// paper use: Admit gates service on a live permit (network-integrated
// mode) or remaining quota (multi-provider mode), and OnBytes feeds the
// quota tracker with 3G usage.
package proxy

import (
	"context"
	"errors"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"threegol/internal/clock"
	"threegol/internal/obs/eventlog"
)

// Dialer is the subset of net.Dialer the proxy needs; netem.Dialer and
// net.Dialer both satisfy it.
type Dialer interface {
	DialContext(ctx context.Context, network, addr string) (net.Conn, error)
}

// Server is the device-side proxy. Configure, then serve it on the Wi-Fi
// listener with http.Serve(listener, server).
type Server struct {
	// Dial reaches the origin over the 3G interface. Required.
	Dial Dialer
	// Admit, when non-nil, is consulted per request; a false return
	// yields 503 Service Unavailable (no permit / quota exhausted). The
	// context carries the request's TraceContext (extracted from the
	// X-3gol-Trace header), so permit checks made inside Admit join the
	// client's trace.
	Admit func(ctx context.Context) bool
	// OnBytes, when non-nil, receives the byte count of every completed
	// request/response body and tunnel, feeding the quota tracker.
	OnBytes func(n int64)
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives request/byte/latency
	// instrumentation (see NewMetrics).
	Metrics *Metrics
	// Clock times request service for Metrics; nil selects the system
	// clock.
	Clock clock.Clock
	// Debug, when non-nil, serves origin-form requests under /debug/
	// (the /debug/metrics endpoint) instead of proxying them. It is
	// consulted before the Admit gate: observability must not disappear
	// exactly when admission is denied.
	Debug http.Handler
	// Events, when non-nil, records a flight-recorder span per proxied
	// request, parented to the client's X-3gol-Trace header when
	// present — the cross-process half of the end-to-end trace.
	Events *eventlog.Log

	transportOnce sync.Once
	transport     *http.Transport

	bytesTotal atomic.Int64
}

// BytesTotal reports all bytes the proxy has moved over the 3G interface.
func (s *Server) BytesTotal() int64 { return s.bytesTotal.Load() }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) tr() *http.Transport {
	s.transportOnce.Do(func() {
		s.transport = &http.Transport{
			DialContext:         s.Dial.DialContext,
			MaxIdleConnsPerHost: 8,
			IdleConnTimeout:     30 * time.Second,
			// The 3G path is the product here: no proxy-of-proxy.
			Proxy: nil,
		}
	})
	return s.transport
}

// ServeHTTP implements http.Handler for proxy-form requests.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.Debug != nil && !r.URL.IsAbs() && strings.HasPrefix(r.URL.Path, "/debug/") {
		s.Debug.ServeHTTP(w, r)
		return
	}
	if tc, ok := eventlog.ExtractHTTP(r.Header); ok {
		// The client's trace position rides into the request context so
		// Admit (and its permit check) extends the same trace.
		r = r.WithContext(eventlog.NewContext(r.Context(), tc))
	}
	if s.Dial == nil {
		s.Metrics.request(outcomeError)
		http.Error(w, "proxy misconfigured: no dialer", http.StatusInternalServerError)
		return
	}
	if s.Admit != nil && !s.Admit(r.Context()) {
		s.Metrics.request(outcomeDenied)
		tc, _ := eventlog.FromContext(r.Context())
		s.Events.Point(tc, "proxy.denied", "host", r.Host)
		http.Error(w, "3GOL onloading not permitted", http.StatusServiceUnavailable)
		return
	}
	if r.Method == http.MethodConnect {
		s.serveTunnel(w, r)
		return
	}
	if !r.URL.IsAbs() {
		s.Metrics.request(outcomeError)
		http.Error(w, "this is a proxy; absolute-form request required", http.StatusBadRequest)
		return
	}
	s.serveHTTP1(w, r)
}

func (s *Server) serveHTTP1(w http.ResponseWriter, r *http.Request) {
	clk := clock.Or(s.Clock)
	t0 := clk.Now()
	tc, _ := eventlog.FromContext(r.Context())
	sp := s.Events.Begin(tc, "proxy.request", "method", r.Method, "host", r.URL.Host)
	out := r.Clone(r.Context())
	out.RequestURI = "" // client-side field must be empty for RoundTrip
	removeHopHeaders(out.Header)

	resp, err := s.tr().RoundTrip(out)
	if err != nil {
		s.Metrics.request(outcomeError)
		sp.End("outcome", "error", "error", err.Error())
		s.logf("proxy: %s %s: %v", r.Method, r.URL, err)
		http.Error(w, "upstream error: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	removeHopHeaders(resp.Header)
	for k, vv := range resp.Header {
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	n, err := io.Copy(w, resp.Body)
	s.account(n + approxRequestBytes(r))
	s.Metrics.request(outcomeProxied)
	s.Metrics.seconds(clk.Since(t0).Seconds())
	sp.End("outcome", "ok", "status", eventlog.Int(int64(resp.StatusCode)),
		"bytes", eventlog.Int(n))
	if err != nil && !errors.Is(err, context.Canceled) {
		s.logf("proxy: copying response for %s: %v", r.URL, err)
	}
}

func (s *Server) serveTunnel(w http.ResponseWriter, r *http.Request) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "hijacking unsupported", http.StatusInternalServerError)
		return
	}
	upstream, err := s.Dial.DialContext(r.Context(), "tcp", r.Host)
	if err != nil {
		s.Metrics.request(outcomeError)
		http.Error(w, "cannot reach "+r.Host, http.StatusBadGateway)
		return
	}
	s.Metrics.request(outcomeTunnel)
	tunnelTC, _ := eventlog.FromContext(r.Context())
	s.Events.Point(tunnelTC, "proxy.tunnel", "host", r.Host)
	client, buf, err := hj.Hijack()
	if err != nil {
		upstream.Close()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer client.Close()
	defer upstream.Close()
	buf.WriteString("HTTP/1.1 200 Connection Established\r\n\r\n")
	buf.Flush()

	// Account incrementally so quota tracking sees tunnel traffic while
	// the tunnel is still open (keep-alive tunnels can live for minutes).
	done := make(chan struct{}, 2)
	go func() { io.Copy(&accountingWriter{s: s, w: upstream}, client); done <- struct{}{} }()
	go func() { io.Copy(&accountingWriter{s: s, w: client}, upstream); done <- struct{}{} }()
	<-done
	// Half-close semantics: give the other direction a moment, then tear
	// down (both deferred Closes unblock the second copy).
	select {
	case <-done:
	case <-time.After(500 * time.Millisecond):
	}
}

// accountingWriter charges every byte written through it to the proxy's
// 3G usage counters.
type accountingWriter struct {
	s *Server
	w io.Writer
}

func (a *accountingWriter) Write(p []byte) (int, error) {
	n, err := a.w.Write(p)
	a.s.account(int64(n))
	return n, err
}

func (s *Server) account(n int64) {
	if n <= 0 {
		return
	}
	s.bytesTotal.Add(n)
	s.Metrics.bytes(n)
	if s.OnBytes != nil {
		s.OnBytes(n)
	}
}

// approxRequestBytes estimates uplink bytes of the forwarded request
// (the request line and body length; headers are noise at 3GOL scales).
func approxRequestBytes(r *http.Request) int64 {
	n := int64(len(r.Method) + len(r.URL.String()) + 16)
	if r.ContentLength > 0 {
		n += r.ContentLength
	}
	return n
}

var hopHeaders = []string{
	"Connection", "Proxy-Connection", "Keep-Alive", "Proxy-Authenticate",
	"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

func removeHopHeaders(h http.Header) {
	for _, k := range hopHeaders {
		h.Del(k)
	}
}

// ListenAndServe starts the proxy on addr and returns the bound listener
// address (useful with ":0") and a shutdown func. ctx scopes the bind
// and becomes the base context of every served request, so trace
// propagation and cancellation arriving with the caller's context reach
// the serve loop. The shutdown func joins the serve goroutine and
// surfaces its error when the server died for a reason other than the
// shutdown itself.
func (s *Server) ListenAndServe(ctx context.Context, addr string) (string, func() error, error) {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{
		Handler:     s,
		ErrorLog:    log.New(io.Discard, "", 0),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	return ln.Addr().String(), func() error {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		err := srv.Shutdown(sctx)
		if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
		return err
	}, nil
}
