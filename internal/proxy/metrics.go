package proxy

import "threegol/internal/obs"

// Request outcomes as recorded in Metrics.Requests.
const (
	outcomeProxied = "proxied" // absolute-form request forwarded upstream
	outcomeTunnel  = "tunnel"  // CONNECT tunnel spliced
	outcomeDenied  = "denied"  // Admit hook said no (no permit / no quota)
	outcomeError   = "error"   // upstream unreachable or bad request
)

// Metrics holds the device proxy's instruments; register with
// NewMetrics and assign to Server.Metrics. A nil Metrics disables
// instrumentation. Latencies are measured on Server.Clock.
type Metrics struct {
	// Requests counts proxied requests by outcome
	// (proxied | tunnel | denied | error).
	Requests *obs.Counter
	// Bytes counts bytes moved over the 3G interface (both directions,
	// tunnels included) — the quantity the quota tracker charges.
	Bytes *obs.Counter
	// RequestSeconds is the service time of plain-HTTP proxied requests
	// (first byte in to last body byte out); tunnels are excluded, their
	// lifetime is connection-scoped.
	RequestSeconds *obs.Histogram
}

// NewMetrics registers the proxy's metrics on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Requests: r.NewCounter("proxy_requests_total",
			"Requests handled by the device proxy, by outcome (proxied | tunnel | denied | error).", "outcome"),
		Bytes: r.NewCounter("proxy_bytes_total",
			"Bytes moved over the 3G interface, both directions, tunnels included."),
		RequestSeconds: r.NewHistogram("proxy_request_seconds",
			"Service time of plain-HTTP proxied requests (tunnels excluded).",
			0, 60, 1200),
	}
}

func (m *Metrics) request(outcome string) {
	if m == nil {
		return
	}
	m.Requests.With(outcome).Inc()
}

func (m *Metrics) bytes(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.Bytes.Add(n)
}

func (m *Metrics) seconds(s float64) {
	if m == nil {
		return
	}
	m.RequestSeconds.Observe(s)
}
