package proxy

import (
	"bytes"
	"context"
	"crypto/tls"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"

	"threegol/internal/obs"
)

// newProxyClient starts the proxy server and returns an http.Client that
// routes through it, plus a shutdown func.
func newProxyClient(t *testing.T, s *Server) (*http.Client, func()) {
	t.Helper()
	addr, shutdown, err := s.ListenAndServe(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxyURL := &url.URL{Scheme: "http", Host: addr}
	client := &http.Client{Transport: &http.Transport{
		Proxy:           http.ProxyURL(proxyURL),
		TLSClientConfig: &tls.Config{InsecureSkipVerify: true},
	}}
	return client, func() { shutdown() }
}

func TestProxyForwardsGET(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Origin", "yes")
		w.Write(bytes.Repeat([]byte("d"), 4096))
	}))
	defer origin.Close()

	s := &Server{Dial: &net.Dialer{}}
	client, stop := newProxyClient(t, s)
	defer stop()

	resp, err := client.Get(origin.URL + "/file")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 4096 {
		t.Errorf("body = %d bytes, want 4096", len(body))
	}
	if resp.Header.Get("X-Origin") != "yes" {
		t.Error("origin headers not forwarded")
	}
	if s.BytesTotal() < 4096 {
		t.Errorf("BytesTotal = %d, want ≥4096", s.BytesTotal())
	}
}

func TestProxyAdmitGate(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer origin.Close()

	var allowed atomic.Bool
	s := &Server{Dial: &net.Dialer{}, Admit: func(context.Context) bool { return allowed.Load() }}
	client, stop := newProxyClient(t, s)
	defer stop()

	resp, err := client.Get(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unpermitted request = %s, want 503", resp.Status)
	}

	allowed.Store(true)
	resp, err = client.Get(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("permitted request = %s, want 200", resp.Status)
	}
}

func TestProxyOnBytesAccounting(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(bytes.Repeat([]byte("x"), 10000))
	}))
	defer origin.Close()

	var counted atomic.Int64
	s := &Server{Dial: &net.Dialer{}, OnBytes: func(n int64) { counted.Add(n) }}
	client, stop := newProxyClient(t, s)
	defer stop()

	resp, err := client.Get(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if counted.Load() < 10000 {
		t.Errorf("OnBytes counted %d, want ≥10000", counted.Load())
	}
}

func TestProxyUpstreamFailure(t *testing.T) {
	s := &Server{Dial: &net.Dialer{}}
	client, stop := newProxyClient(t, s)
	defer stop()
	resp, err := client.Get("http://127.0.0.1:1/unreachable")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unreachable upstream = %s, want 502", resp.Status)
	}
}

func TestProxyRejectsRelativeForm(t *testing.T) {
	s := &Server{Dial: &net.Dialer{}}
	addr, shutdown, err := s.ListenAndServe(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	// Talk to the proxy as if it were an origin server (relative path).
	resp, err := http.Get("http://" + addr + "/not-absolute")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("relative-form request = %s, want 400", resp.Status)
	}
}

func TestProxyMisconfiguredDialer(t *testing.T) {
	s := &Server{}
	addr, shutdown, err := s.ListenAndServe(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("no-dialer request = %s, want 500", resp.Status)
	}
}

func TestProxyConnectTunnel(t *testing.T) {
	origin := httptest.NewTLSServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("secure"))
	}))
	defer origin.Close()

	s := &Server{Dial: &net.Dialer{}}
	client, stop := newProxyClient(t, s)
	defer stop()

	resp, err := client.Get(origin.URL)
	if err != nil {
		t.Fatalf("CONNECT through proxy failed: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "secure" {
		t.Errorf("tunnelled body = %q", body)
	}
	if s.BytesTotal() == 0 {
		t.Error("tunnel bytes not accounted")
	}
}

func TestProxyUsesProvidedDialer(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer origin.Close()

	var dials atomic.Int32
	s := &Server{Dial: countingDialer{&dials}}
	client, stop := newProxyClient(t, s)
	defer stop()

	resp, err := client.Get(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dials.Load() == 0 {
		t.Error("proxy did not use the provided (3G) dialer")
	}
}

type countingDialer struct{ n *atomic.Int32 }

func (d countingDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	d.n.Add(1)
	var nd net.Dialer
	return nd.DialContext(ctx, network, addr)
}

// The debug route must answer origin-form /debug/ requests before the
// Admit gate: metrics stay reachable exactly when admission is denied.
func TestProxyDebugRouteBypassesAdmitGate(t *testing.T) {
	reg := obs.NewRegistry()
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", obs.Handler(reg))
	s := &Server{
		Dial:    &net.Dialer{},
		Admit:   func(context.Context) bool { return false },
		Metrics: NewMetrics(reg),
		Debug:   mux,
	}
	addr, shutdown, err := s.ListenAndServe(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	// Origin-form request straight at the proxy (no Proxy transport).
	resp, err := http.Get("http://" + addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/metrics with Admit=false = %s, want 200", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("proxy_requests_total")) {
		t.Errorf("metrics body missing proxy_requests_total:\n%s", body)
	}
}
