package upload

import "threegol/internal/obs"

// Metrics holds the upload endpoint's instruments; register with
// NewMetrics and assign to Server.Metrics. A nil Metrics disables
// instrumentation. The instruments shadow the server's own Stats
// counters so a metrics dump tells the same story as GET /stats.
type Metrics struct {
	// Requests counts multipart POSTs that stored at least one file.
	Requests *obs.Counter
	// Files counts file parts stored (first arrival of each name).
	Files *obs.Counter
	// DuplicateFiles counts replayed file parts (the greedy endgame can
	// deliver an item on two paths; the loser lands here).
	DuplicateFiles *obs.Counter
	// Bytes counts payload bytes received across all file parts,
	// duplicates included.
	Bytes *obs.Counter
}

// NewMetrics registers the upload endpoint's metrics on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Requests: r.NewCounter("upload_requests_total",
			"Multipart POST requests that stored at least one file part."),
		Files: r.NewCounter("upload_files_total",
			"Distinct files stored (first arrival of each name)."),
		DuplicateFiles: r.NewCounter("upload_duplicate_files_total",
			"Replayed file parts discarded by name-based deduplication."),
		Bytes: r.NewCounter("upload_bytes_total",
			"Payload bytes received across all file parts, duplicates included."),
	}
}

func (m *Metrics) stored(size int64, duplicate bool) {
	if m == nil {
		return
	}
	if duplicate {
		m.DuplicateFiles.Inc()
	} else {
		m.Files.Inc()
	}
	if size > 0 {
		m.Bytes.Add(size)
	}
}

func (m *Metrics) request() {
	if m == nil {
		return
	}
	m.Requests.Inc()
}
