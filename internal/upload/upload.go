// Package upload implements the photo-sharing service endpoint of the
// paper's uplink application (§4.1): an HTTP server accepting
// multipart/form-data POSTs the way Facebook/Flickr/Picasa native
// clients send them. It stores payloads in memory, deduplicates replays
// by filename (the greedy scheduler's endgame can deliver an item
// twice), and exposes counters the experiments assert on.
package upload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"threegol/internal/obs/eventlog"
)

// File is one stored upload.
type File struct {
	Name   string
	Size   int64
	SHA256 string
	// Copies counts how many times the file arrived (replay deliveries
	// from scheduler duplication land here, not as separate files).
	Copies int
}

// Server is the upload endpoint. The zero value is ready to use; serve
// it with net/http. POST / (or any path) with one or more multipart file
// parts; GET /stats returns a JSON summary.
type Server struct {
	// MaxBytes caps a single request body; 0 means 256 MB.
	MaxBytes int64
	// KeepPayloads retains file contents for later inspection; when
	// false (the default) only sizes and digests are kept, so long
	// experiments don't accumulate memory.
	KeepPayloads bool
	// Metrics, when non-nil, receives request/file/byte instrumentation
	// (see NewMetrics).
	Metrics *Metrics
	// Events, when non-nil, records a flight-recorder span per upload
	// request, parented to the sender's X-3gol-Trace header — the
	// server-side end of a traced photo upload.
	Events *eventlog.Log

	mu       sync.Mutex
	files    map[string]*File
	payloads map[string][]byte
	requests int
	bytes    int64
}

func (s *Server) maxBytes() int64 {
	if s.MaxBytes > 0 {
		return s.MaxBytes
	}
	return 256 << 20
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/stats":
		s.serveStats(w)
	case r.Method == http.MethodPost:
		s.serveUpload(w, r)
	default:
		http.Error(w, "POST multipart uploads here; GET /stats for counters",
			http.StatusMethodNotAllowed)
	}
}

func (s *Server) serveUpload(w http.ResponseWriter, r *http.Request) {
	tc, _ := eventlog.ExtractHTTP(r.Header)
	sp := s.Events.Begin(tc, "upload.request")
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBytes())
	mr, err := r.MultipartReader()
	if err != nil {
		sp.End("outcome", "error", "error", err.Error())
		http.Error(w, fmt.Sprintf("expected multipart/form-data: %v", err), http.StatusBadRequest)
		return
	}
	var stored []string
	var total int64
	dups := 0
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			sp.End("outcome", "error", "error", err.Error())
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		name := part.FileName()
		if name == "" {
			io.Copy(io.Discard, part) // non-file form field
			continue
		}
		h := sha256.New()
		var payload []byte
		var n int64
		if s.KeepPayloads {
			payload, err = io.ReadAll(io.TeeReader(part, h))
			n = int64(len(payload))
		} else {
			n, err = io.Copy(h, part)
		}
		if err != nil {
			sp.End("outcome", "error", "error", err.Error())
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if s.record(name, n, hex.EncodeToString(h.Sum(nil)), payload) {
			dups++
		}
		total += n
		stored = append(stored, name)
	}
	if len(stored) == 0 {
		sp.End("outcome", "error", "error", "no file parts")
		http.Error(w, "no file parts in request", http.StatusBadRequest)
		return
	}
	s.Metrics.request()
	sp.End("outcome", "ok", "files", eventlog.Int(int64(len(stored))),
		"bytes", eventlog.Int(total), "duplicates", eventlog.Int(int64(dups)))
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(map[string]any{"stored": stored}) // client disconnect; nothing to do
}

// record stores one file, reporting whether it was a duplicate replay.
func (s *Server) record(name string, size int64, digest string, payload []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.files == nil {
		s.files = make(map[string]*File)
	}
	s.requests++
	s.bytes += size
	if f, ok := s.files[name]; ok {
		f.Copies++
		s.Metrics.stored(size, true)
		return true
	}
	s.Metrics.stored(size, false)
	s.files[name] = &File{Name: name, Size: size, SHA256: digest, Copies: 1}
	if s.KeepPayloads {
		if s.payloads == nil {
			s.payloads = make(map[string][]byte)
		}
		s.payloads[name] = payload
	}
	return false
}

// Stats is the JSON shape of GET /stats.
type Stats struct {
	Files      int   `json:"files"`
	Requests   int   `json:"requests"`
	TotalBytes int64 `json:"total_bytes"`
	Duplicates int   `json:"duplicates"`
}

func (s *Server) serveStats(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Stats()) // client disconnect; nothing to do
}

// Stats returns current counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Files: len(s.files), Requests: s.requests, TotalBytes: s.bytes}
	for _, f := range s.files {
		st.Duplicates += f.Copies - 1
	}
	return st
}

// Files returns the stored files sorted by name.
func (s *Server) Files() []File {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]File, 0, len(s.files))
	for _, f := range s.files {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Payload returns a stored file's bytes (only with KeepPayloads).
func (s *Server) Payload(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.payloads[name]
	return b, ok
}
