package upload

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"threegol/internal/scheduler"
	"threegol/internal/transfer"
)

func postFile(t *testing.T, url, name string, body []byte) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	part, err := mw.CreateFormFile("file", name)
	if err != nil {
		t.Fatal(err)
	}
	part.Write(body)
	mw.Close()
	resp, err := http.Post(url, mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestUploadStoresAndDigests(t *testing.T) {
	s := &Server{KeepPayloads: true}
	srv := httptest.NewServer(s)
	defer srv.Close()

	content := bytes.Repeat([]byte("img"), 1000)
	resp := postFile(t, srv.URL, "a.jpg", content)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %s", resp.Status)
	}
	files := s.Files()
	if len(files) != 1 || files[0].Name != "a.jpg" || files[0].Size != 3000 {
		t.Fatalf("files = %+v", files)
	}
	sum := sha256.Sum256(content)
	if files[0].SHA256 != hex.EncodeToString(sum[:]) {
		t.Error("digest mismatch")
	}
	got, ok := s.Payload("a.jpg")
	if !ok || !bytes.Equal(got, content) {
		t.Error("payload not retained intact")
	}
}

func TestUploadDeduplicatesReplays(t *testing.T) {
	s := &Server{}
	srv := httptest.NewServer(s)
	defer srv.Close()
	for i := 0; i < 3; i++ {
		postFile(t, srv.URL, "dup.jpg", []byte("x"))
	}
	st := s.Stats()
	if st.Files != 1 || st.Duplicates != 2 || st.Requests != 3 {
		t.Errorf("stats = %+v, want 1 file, 2 duplicates, 3 requests", st)
	}
}

func TestUploadRejectsBadRequests(t *testing.T) {
	s := &Server{}
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Post(srv.URL, "text/plain", strings.NewReader("not multipart"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-multipart = %s, want 400", resp.Status)
	}

	// Multipart with no file parts.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("note", "hello")
	mw.Close()
	resp, err = http.Post(srv.URL, mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no-file multipart = %s, want 400", resp.Status)
	}

	resp, err = http.Get(srv.URL + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET = %s, want 405", resp.Status)
	}
}

func TestUploadMaxBytes(t *testing.T) {
	s := &Server{MaxBytes: 1024}
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp := postFile(t, srv.URL, "big.jpg", bytes.Repeat([]byte("z"), 10_000))
	if resp.StatusCode == http.StatusCreated {
		t.Error("oversized upload accepted")
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := &Server{}
	srv := httptest.NewServer(s)
	defer srv.Close()
	postFile(t, srv.URL, "a.jpg", []byte("abc"))
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Files != 1 || st.TotalBytes != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUploadViaSchedulerPaths(t *testing.T) {
	// The real client pipeline: transfer.UploadPath → multipart POST →
	// this server, over two paths with the greedy scheduler.
	s := &Server{KeepPayloads: true}
	srv := httptest.NewServer(s)
	defer srv.Close()

	content := map[string][]byte{
		"p0.jpg": bytes.Repeat([]byte("a"), 2000),
		"p1.jpg": bytes.Repeat([]byte("b"), 3000),
		"p2.jpg": bytes.Repeat([]byte("c"), 1000),
	}
	source := func(item scheduler.Item) (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(content[item.Name])), nil
	}
	mk := func(name string) scheduler.Path {
		return &transfer.UploadPath{
			PathName: name, Client: srv.Client(), TargetURL: srv.URL, Source: source,
		}
	}
	items := []scheduler.Item{
		{ID: 0, Name: "p0.jpg", Size: 2000},
		{ID: 1, Name: "p1.jpg", Size: 3000},
		{ID: 2, Name: "p2.jpg", Size: 1000},
	}
	if _, err := scheduler.Run(context.Background(), scheduler.Greedy, items,
		[]scheduler.Path{mk("adsl"), mk("ph1")}, scheduler.Options{}); err != nil {
		t.Fatal(err)
	}
	for name, want := range content {
		got, ok := s.Payload(name)
		if !ok || !bytes.Equal(got, want) {
			t.Errorf("%s corrupted or missing", name)
		}
	}
	if st := s.Stats(); st.Files != 3 {
		t.Errorf("files = %d, want 3", st.Files)
	}
}
