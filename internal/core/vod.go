package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"threegol/internal/hls"
	"threegol/internal/scheduler"
	"threegol/internal/transfer"
)

// Route is one transport available to the client component: a name for
// scheduler reports plus an HTTP client bound to that path (a shaped
// dialer for the ADSL line, a proxied transport for a phone). Cell, when
// known, is the serving cell the path's device reported — the key a
// client-side permit gate checks with the backend.
type Route struct {
	Name   string
	Client *http.Client
	Cell   string
}

// VoDOptions configure a boosted video-on-demand session.
type VoDOptions struct {
	// Algo is the multipath policy; the paper's deployment uses Greedy.
	Algo scheduler.Algo
	// Phones is the admissible set Φ to onload onto (may be empty, which
	// degrades to ADSL-only through the same code path).
	Phones []*Phone
	// PrebufferFrac is the player's pre-buffer target as a fraction of
	// video duration.
	PrebufferFrac float64
	// Quality selects the variant (e.g. "q3"); empty picks the lowest.
	Quality string
	// MinAlpha tunes the MIN estimator (ablation); 0 = paper's 0.75.
	MinAlpha float64
	// DisableDuplication turns off GRD's endgame (ablation).
	DisableDuplication bool
}

// VoDResult reports a boosted session, in emulated time (TimeScale
// already applied).
type VoDResult struct {
	Prebuffer time.Duration // startup latency (first-frame delay)
	Total     time.Duration // full download time
	Bytes     int64
	Segments  int
	// SchedulerReport is the underlying transaction report (elapsed in
	// wall-clock, unscaled).
	SchedulerReport *scheduler.Report
}

// vodProxy is the HLS-aware client proxy of §4: it forwards playlist
// requests over the ADSL path, intercepts media playlists to prefetch
// the listed segments in parallel over all paths, and serves the
// player's sequential segment GETs from the prefetch cache.
type vodProxy struct {
	origin *url.URL
	algo   scheduler.Algo
	opts   scheduler.Options

	adsl   *http.Client
	routes []Route

	mu       sync.Mutex
	cache    *transfer.Cache
	prefetch map[string]bool // segment URL → prefetch in flight/done
	report   *scheduler.Report
	runErr   error
	done     chan struct{}
}

// NewVoDProxy builds the HLS-aware client proxy as an http.Handler the
// player points at: direct is the ADSL route, routes are the admissible
// devices' proxied clients, origin is the upstream base URL. This is the
// deployable (non-emulated) entry point; Home.BoostVoD wraps it for the
// emulated experiments.
func NewVoDProxy(direct *http.Client, routes []Route, origin string, algo scheduler.Algo, opts scheduler.Options) (http.Handler, error) {
	vp, err := newVoDProxy(direct, routes, origin, algo, opts)
	if err != nil {
		return nil, err
	}
	return vp, nil
}

func newVoDProxy(direct *http.Client, routes []Route, origin string, algo scheduler.Algo, opts scheduler.Options) (*vodProxy, error) {
	u, err := url.Parse(origin)
	if err != nil {
		return nil, fmt.Errorf("core: bad origin URL %q: %w", origin, err)
	}
	if direct == nil {
		direct = http.DefaultClient
	}
	return &vodProxy{
		origin:   u,
		algo:     algo,
		opts:     opts,
		adsl:     direct,
		routes:   routes,
		cache:    transfer.NewCache(),
		prefetch: make(map[string]bool),
		done:     make(chan struct{}),
	}, nil
}

// originURL rebases the request path onto the origin.
func (v *vodProxy) originURL(r *http.Request) string {
	u := *v.origin
	u.Path = strings.TrimSuffix(u.Path, "/") + r.URL.Path
	u.RawQuery = r.URL.RawQuery
	return u.String()
}

// ServeHTTP implements the player-facing reverse proxy.
func (v *vodProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	target := v.originURL(r)
	if hls.IsPlaylistURI(target) {
		v.servePlaylist(w, r, target)
		return
	}
	// Segment (or anything else): serve from the prefetch cache when the
	// prefetcher has claimed it, else pass through over ADSL.
	if v.claimed(target) {
		body, err := v.cache.Wait(r.Context(), target)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
			return
		}
		w.Header().Set("Content-Type", "video/mp2t")
		_, _ = w.Write(body) // client disconnects surface on the next request
		return
	}
	v.passthrough(w, r, target)
}

func (v *vodProxy) passthrough(w http.ResponseWriter, r *http.Request, target string) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := v.adsl.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vv := range resp.Header {
		for _, val := range vv {
			w.Header().Add(k, val)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// servePlaylist fetches the playlist over ADSL, and when it is a media
// playlist, kicks off the multipath prefetch of its segments before
// handing the playlist to the player.
func (v *vodProxy) servePlaylist(w http.ResponseWriter, r *http.Request, target string) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := v.adsl.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if parsed, err := hls.Parse(bytes.NewReader(body)); err == nil && parsed.Kind == hls.KindMedia {
		v.startPrefetch(target, parsed.Media)
	}
	w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
	_, _ = w.Write(body) // client disconnects surface on the next request
}

// claimed reports whether the prefetcher owns the given segment URL.
func (v *vodProxy) claimed(target string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.prefetch[target]
}

// startPrefetch launches the scheduler transaction for a media playlist
// (once; re-requests of the same playlist do not restart it).
func (v *vodProxy) startPrefetch(playlistURL string, media *hls.MediaPlaylist) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.prefetch) > 0 {
		return // already prefetching this session
	}
	items := make([]scheduler.Item, 0, len(media.Segments))
	for i, seg := range media.Segments {
		abs, err := resolveRef(playlistURL, seg.URI)
		if err != nil {
			continue
		}
		v.prefetch[abs] = true
		items = append(items, scheduler.Item{
			ID:   i,
			Name: abs,
			// Segment size estimate from duration × variant rate is not
			// available here; duration alone keeps MIN's relative
			// ordering (uniform bitrate): scale to bytes via 1 kB/s.
			Size: int64(seg.Duration * 1000),
		})
	}
	paths := v.buildPaths()
	go func() {
		rep, err := scheduler.Run(context.Background(), v.algo, items, paths, v.opts)
		v.mu.Lock()
		v.report, v.runErr = rep, err
		v.mu.Unlock()
		close(v.done)
	}()
}

// buildPaths assembles the transaction's paths: the ADSL route plus one
// route per admissible phone. Caller holds v.mu or is pre-start.
func (v *vodProxy) buildPaths() []scheduler.Path {
	sink := transfer.CachingSink(v.cache)
	paths := []scheduler.Path{
		&transfer.DownloadPath{PathName: "adsl", Client: v.adsl, Sink: sink},
	}
	for _, r := range v.routes {
		paths = append(paths, &transfer.DownloadPath{
			PathName: r.Name,
			Client:   r.Client,
			Sink:     sink,
		})
	}
	return paths
}

// BoostVoD plays the video at originURL+videoPath through the 3GOL client
// proxy and reports emulated-time results. With an empty Phones set the
// same pipeline degrades to the ADSL baseline.
func (h *Home) BoostVoD(ctx context.Context, origin, masterPath string, opts VoDOptions) (*VoDResult, error) {
	routes := make([]Route, 0, len(opts.Phones))
	for _, ph := range opts.Phones {
		routes = append(routes, Route{Name: ph.Name, Client: h.PhoneClient(ph)})
	}
	vp, err := newVoDProxy(h.ADSLClient(), routes, origin, opts.Algo, scheduler.Options{
		MinAlpha:           opts.MinAlpha,
		DisableDuplication: opts.DisableDuplication,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: starting VoD proxy listener: %w", err)
	}
	srv := &http.Server{Handler: vp}
	go srv.Serve(ln) //3golvet:allow goroleak — bounded by the deferred srv.Close, which makes Serve return
	defer srv.Close()

	player := &hls.Player{
		// The player sits next to the proxy on the client machine: its
		// requests to the proxy are local and unshaped; the proxy's
		// outbound legs carry the shaping.
		Client:        &http.Client{},
		PrebufferFrac: opts.PrebufferFrac,
	}
	res, err := player.Play(ctx, "http://"+ln.Addr().String()+masterPath, opts.Quality)
	if err != nil {
		return nil, fmt.Errorf("core: boosted playback: %w", err)
	}

	out := &VoDResult{
		Prebuffer: h.ScaleDuration(res.PrebufferTime),
		Total:     h.ScaleDuration(res.TotalTime),
		Bytes:     res.Bytes,
		Segments:  res.Segments,
	}
	// Attach the scheduler report when a prefetch ran (it finishes with
	// or before the player's final segment read).
	if vp.started() {
		select {
		case <-vp.done:
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("core: prefetch transaction did not finish")
		}
		out.SchedulerReport, err = vp.outcome()
		if err != nil {
			return nil, fmt.Errorf("core: prefetch transaction: %w", err)
		}
	}
	return out, nil
}

// started reports whether a prefetch transaction was launched.
func (v *vodProxy) started() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.prefetch) > 0
}

// outcome returns the finished prefetch transaction's report and error.
func (v *vodProxy) outcome() (*scheduler.Report, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.report, v.runErr
}

// BaselineVoD plays the video directly over the ADSL line (no 3GOL),
// reporting emulated-time results.
func (h *Home) BaselineVoD(ctx context.Context, origin, masterPath string, prebufferFrac float64, quality string) (*VoDResult, error) {
	player := &hls.Player{Client: h.ADSLClient(), PrebufferFrac: prebufferFrac}
	res, err := player.Play(ctx, strings.TrimSuffix(origin, "/")+masterPath, quality)
	if err != nil {
		return nil, fmt.Errorf("core: baseline playback: %w", err)
	}
	return &VoDResult{
		Prebuffer: h.ScaleDuration(res.PrebufferTime),
		Total:     h.ScaleDuration(res.TotalTime),
		Bytes:     res.Bytes,
		Segments:  res.Segments,
	}, nil
}

// resolveRef resolves a playlist-relative reference.
func resolveRef(base, ref string) (string, error) {
	b, err := url.Parse(base)
	if err != nil {
		return "", err
	}
	r, err := url.Parse(ref)
	if err != nil {
		return "", err
	}
	return b.ResolveReference(r).String(), nil
}
