package core

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"threegol/internal/hls"
	"threegol/internal/scheduler"
)

// testVideo is small so integration tests stay fast even at modest
// time scales: 40 s video, 8 segments, two qualities.
func testVideo() hls.Video {
	return hls.Video{
		Name:       "clip",
		Duration:   40,
		SegmentDur: 5,
		Qualities: []hls.Quality{
			{Name: "q1", Bitrate: 200_000},
			{Name: "q2", Bitrate: 400_000},
		},
	}
}

func testTimeScale() float64 {
	if raceEnabled {
		return 20
	}
	return 40
}

func testHome(t *testing.T, phones ...PhoneConfig) *Home {
	t.Helper()
	h, err := NewHome(HomeConfig{
		DSLDown:   2e6,
		DSLUp:     0.5e6,
		TimeScale: testTimeScale(),
		Phones:    phones,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

func warmPhone(name string) PhoneConfig {
	return PhoneConfig{Name: name, Down: 2e6, Up: 1.5e6, Warm: true}
}

func TestNewHomeValidation(t *testing.T) {
	if _, err := NewHome(HomeConfig{DSLDown: 0, DSLUp: 1}); err == nil {
		t.Error("zero DSL rate accepted")
	}
	if _, err := NewHome(HomeConfig{DSLDown: 1e6, DSLUp: 1e6,
		Phones: []PhoneConfig{{Name: "p", Down: 0, Up: 1}}}); err == nil {
		t.Error("zero phone rate accepted")
	}
}

func TestPhonesAppearInDiscovery(t *testing.T) {
	h := testHome(t, warmPhone("ph1"), warmPhone("ph2"))
	devs := h.AdmissibleDevices(2, 5*time.Second)
	if len(devs) != 2 {
		t.Fatalf("admissible set = %d, want 2", len(devs))
	}
}

func TestQuotaExhaustedPhoneWithdraws(t *testing.T) {
	h := testHome(t, PhoneConfig{
		Name: "capped", Down: 2e6, Up: 1.5e6, Warm: true, DailyQuotaBytes: 1000,
	})
	if devs := h.AdmissibleDevices(1, 5*time.Second); len(devs) != 1 {
		t.Fatal("capped phone should advertise while quota remains")
	}
	// Burn the quota directly.
	h.Phones[0].Tracker.Use(2000)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(h.Browser.Devices()) == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Error("exhausted phone still advertising")
}

func TestBaselineVoDMatchesExpectedDuration(t *testing.T) {
	origin := httptest.NewServer(hls.NewOrigin(testVideo()))
	defer origin.Close()
	h := testHome(t)

	res, err := h.BaselineVoD(context.Background(), origin.URL, "/clip/master.m3u8", 1.0, "q2")
	if err != nil {
		t.Fatal(err)
	}
	// 400 kbps × 40 s = 16 Mbit over a 2 Mbps line ⇒ ≈8 s emulated.
	got := res.Total.Seconds()
	if got < 6 || got > 13 {
		t.Errorf("baseline total = %.1fs emulated, want ≈8s", got)
	}
	if res.Segments != 8 {
		t.Errorf("segments = %d, want 8", res.Segments)
	}
}

func TestBoostedVoDBeatsBaseline(t *testing.T) {
	origin := httptest.NewServer(hls.NewOrigin(testVideo()))
	defer origin.Close()
	h := testHome(t, warmPhone("ph1"), warmPhone("ph2"))
	phones := h.AdmissibleDevices(2, 5*time.Second)
	if len(phones) != 2 {
		t.Fatal("phones not discovered")
	}

	base, err := h.BaselineVoD(context.Background(), origin.URL, "/clip/master.m3u8", 0.4, "q2")
	if err != nil {
		t.Fatal(err)
	}
	boost, err := h.BoostVoD(context.Background(), origin.URL, "/clip/master.m3u8", VoDOptions{
		Algo: scheduler.Greedy, Phones: phones, PrebufferFrac: 0.4, Quality: "q2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if boost.Total >= base.Total {
		t.Errorf("boosted total %v not faster than baseline %v", boost.Total, base.Total)
	}
	if boost.Prebuffer >= base.Prebuffer {
		t.Errorf("boosted prebuffer %v not faster than baseline %v", boost.Prebuffer, base.Prebuffer)
	}
	if boost.SchedulerReport == nil {
		t.Fatal("no scheduler report attached")
	}
	// The phones must actually have carried traffic.
	var phoneBytes int64
	for name, st := range boost.SchedulerReport.PerPath {
		if name != "adsl" {
			phoneBytes += st.Bytes
		}
	}
	if phoneBytes == 0 {
		t.Error("no bytes travelled via the phones")
	}
}

func TestBoostedVoDWithoutPhonesDegradesGracefully(t *testing.T) {
	origin := httptest.NewServer(hls.NewOrigin(testVideo()))
	defer origin.Close()
	h := testHome(t)
	res, err := h.BoostVoD(context.Background(), origin.URL, "/clip/master.m3u8", VoDOptions{
		Algo: scheduler.Greedy, PrebufferFrac: 0.4, Quality: "q1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 8 {
		t.Errorf("segments = %d, want 8", res.Segments)
	}
}

func TestBoostedUploadBeatsBaseline(t *testing.T) {
	var received atomic.Int64
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mr, err := r.MultipartReader()
		if err != nil {
			http.Error(w, err.Error(), 400)
			return
		}
		for {
			part, err := mr.NextPart()
			if err != nil {
				break
			}
			_, _ = io.Copy(io.Discard, part)
			received.Add(1)
		}
		w.WriteHeader(http.StatusCreated)
	}))
	defer sink.Close()

	h := testHome(t, warmPhone("ph1"))
	phones := h.AdmissibleDevices(1, 5*time.Second)
	photos := GeneratePhotos(6, 7)
	// Shrink photos so the test stays quick at TimeScale 40.
	for i := range photos {
		photos[i].Data = photos[i].Data[:200*1024]
	}

	base, err := h.BaselineUpload(context.Background(), photos, sink.URL)
	if err != nil {
		t.Fatal(err)
	}
	boost, err := h.UploadPhotos(context.Background(), photos, UploadOptions{
		Algo: scheduler.Greedy, Phones: phones, TargetURL: sink.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if boost.Elapsed >= base.Elapsed {
		t.Errorf("boosted upload %v not faster than baseline %v", boost.Elapsed, base.Elapsed)
	}
	if n := received.Load(); n < 12 {
		t.Errorf("server received %d parts, want ≥12 (two transactions)", n)
	}
}

func TestUploadRequiresTarget(t *testing.T) {
	h := testHome(t)
	if _, err := h.UploadPhotos(context.Background(), GeneratePhotos(1, 1), UploadOptions{}); err == nil {
		t.Error("missing TargetURL accepted")
	}
}

func TestGeneratePhotosMatchesCorpus(t *testing.T) {
	photos := GeneratePhotos(300, 3)
	var sizes []float64
	for _, p := range photos {
		sizes = append(sizes, float64(len(p.Data))/(1024*1024))
	}
	var mean float64
	for _, s := range sizes {
		mean += s
	}
	mean /= float64(len(sizes))
	if mean < 2.2 || mean > 2.8 {
		t.Errorf("mean photo size = %.2f MB, want ≈2.5", mean)
	}
	if TotalBytes(photos) <= 0 {
		t.Error("TotalBytes should be positive")
	}
}

func TestColdStartPaysPromotionDelay(t *testing.T) {
	origin := httptest.NewServer(hls.NewOrigin(testVideo()))
	defer origin.Close()

	run := func(warm bool) time.Duration {
		h, err := NewHome(HomeConfig{
			DSLDown: 2e6, DSLUp: 0.5e6, TimeScale: testTimeScale(), Seed: 42,
			RRCPromotionDelay: 30 * time.Second, // exaggerated so it dominates
			Phones: []PhoneConfig{{
				Name: "ph1", Down: 2e6, Up: 1.5e6,
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		phones := h.AdmissibleDevices(1, 5*time.Second)
		if warm {
			// The paper's "H" mode: an ICMP train promotes the device to
			// DCH immediately before the transaction.
			phones[0].WarmUp()
		}
		res, err := h.BoostVoD(context.Background(), origin.URL, "/clip/master.m3u8", VoDOptions{
			Algo: scheduler.Greedy, Phones: phones, PrebufferFrac: 0.4, Quality: "q1",
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Total
	}
	cold := run(false)
	warm := run(true)
	if warm >= cold {
		t.Errorf("warm start %v not faster than cold %v under huge promotion delay", warm, cold)
	}
}

func TestScaleDuration(t *testing.T) {
	ts := testTimeScale()
	h := testHome(t)
	if got := h.ScaleDuration(time.Second); got != time.Duration(ts)*time.Second {
		t.Errorf("ScaleDuration = %v, want %vs", got, ts)
	}
	if h.TimeScale() != ts {
		t.Errorf("TimeScale = %v", h.TimeScale())
	}
}
