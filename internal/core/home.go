// Package core assembles the 3GOL system: an emulated residential
// environment (ADSL line, Wi-Fi LAN, 3G phones running the device
// component) and the client component that accelerates applications over
// it — the HLS-aware video proxy and the multipath photo uploader, both
// driving the multipath scheduler of §4.1.1.
//
// Everything runs over real loopback TCP through netem-shaped
// connections, so the code paths exercised here are the ones a deployment
// would run; only the links are emulated. A TimeScale accelerates the
// emulation without changing any ratio the paper reports.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"threegol/internal/clock"
	"threegol/internal/discovery"
	"threegol/internal/netem"
	"threegol/internal/proxy"
	"threegol/internal/quota"
)

// PhoneConfig describes one 3G device participating in 3GOL.
type PhoneConfig struct {
	Name string
	// Down/Up are the phone's 3G rates in bits/s (before variability).
	Down, Up float64
	// Variability is the relative std of the HSPA rate process; 0
	// disables wandering (useful in tests).
	Variability float64
	// DailyQuotaBytes enables the multi-provider quota gate; 0 means
	// network-integrated (no cap enforced on-device).
	DailyQuotaBytes int64
	// Warm starts the device in DCH (the paper's "H" mode, after an ICMP
	// train); cold devices pay the RRC promotion delay on first use.
	Warm bool
}

// HomeConfig describes the emulated residence.
type HomeConfig struct {
	// DSLDown/DSLUp are the ADSL sync rates in bits/s.
	DSLDown, DSLUp float64
	// WiFi is the BSS goodput cap in bits/s; 0 selects 802.11n.
	WiFi float64
	// TimeScale accelerates the emulation (rates ×S, delays ÷S); 0 = 1.
	TimeScale float64
	// Phones on the LAN.
	Phones []PhoneConfig
	// Seed drives all stochastic components.
	Seed int64
	// RRCPromotionDelay is the idle→DCH delay (unscaled); 0 selects 2 s.
	RRCPromotionDelay time.Duration
	// RRCTail is how long a phone stays warm after activity; 0 → 10 s.
	RRCTail time.Duration
	// Clock drives the emulation's real-time components (RRC state,
	// netem pacing); nil selects the system clock.
	Clock clock.Clock
}

// Home is a running emulated residence. Create with NewHome, release with
// Close.
type Home struct {
	cfg HomeConfig
	clk clock.Clock

	adslDialer *netem.Dialer
	adslDown   *netem.Limiter
	adslUp     *netem.Limiter
	wifi       *netem.Limiter

	Phones  []*Phone
	Browser *discovery.Browser

	closers []func()
}

// Phone is one running device component: HTTP proxy bound to an emulated
// 3G path, quota tracker, discovery beacon, RRC state.
type Phone struct {
	Name      string
	ProxyAddr string
	Tracker   *quota.Tracker // nil in network-integrated mode
	Proxy     *proxy.Server

	dl, ul *netem.Limiter
	procs  []*netem.RateProcess
	clk    clock.Clock

	rrcMu      sync.Mutex
	warm       bool
	lastActive time.Time
	promotion  time.Duration // scaled
	tail       time.Duration // scaled
}

// rrcDelay returns the promotion delay a new transaction must pay now
// and marks the phone active.
func (p *Phone) rrcDelay() time.Duration {
	p.rrcMu.Lock()
	defer p.rrcMu.Unlock()
	now := p.clk.Now()
	defer func() { p.lastActive = now }()
	if p.warm && now.Sub(p.lastActive) <= p.tail {
		return 0
	}
	p.warm = true
	return p.promotion
}

// WarmUp models the ICMP train: promotes the phone to DCH immediately.
func (p *Phone) WarmUp() {
	p.rrcMu.Lock()
	defer p.rrcMu.Unlock()
	p.warm = true
	p.lastActive = p.clk.Now()
}

// NewHome builds and starts the environment: phones run their proxies and
// beacons, the browser listens, the ADSL line is shaped and shared.
func NewHome(cfg HomeConfig) (*Home, error) {
	if cfg.DSLDown <= 0 || cfg.DSLUp <= 0 {
		return nil, fmt.Errorf("core: ADSL rates must be positive, got %v/%v", cfg.DSLDown, cfg.DSLUp)
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	wifiGoodput := cfg.WiFi
	if wifiGoodput <= 0 {
		wifiGoodput = netem.WiFiNGoodput
	}
	promotion := cfg.RRCPromotionDelay
	if promotion <= 0 {
		promotion = 2 * time.Second
	}
	tail := cfg.RRCTail
	if tail <= 0 {
		tail = 10 * time.Second
	}

	h := &Home{cfg: cfg, clk: clock.Or(cfg.Clock)}
	adslPipe, dl, ul := netem.ADSLPipe(cfg.DSLDown, cfg.DSLUp, scale)
	h.adslDialer = &netem.Dialer{Pipe: adslPipe, Seed: cfg.Seed}
	h.adslDown, h.adslUp = dl, ul
	h.wifi = netem.NewWiFiLimiter(wifiGoodput, scale)

	h.Browser = &discovery.Browser{}
	browseAddr, err := h.Browser.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: starting discovery browser: %w", err)
	}
	h.closers = append(h.closers, h.Browser.Close)

	for i, pc := range cfg.Phones {
		ph, err := h.startPhone(i, pc, scale, promotion, tail, browseAddr)
		if err != nil {
			h.Close()
			return nil, err
		}
		h.Phones = append(h.Phones, ph)
	}
	return h, nil
}

func (h *Home) startPhone(i int, pc PhoneConfig, scale float64, promotion, tail time.Duration, browseAddr string) (*Phone, error) {
	if pc.Down <= 0 || pc.Up <= 0 {
		return nil, fmt.Errorf("core: phone %q 3G rates must be positive", pc.Name)
	}
	name := pc.Name
	if name == "" {
		name = fmt.Sprintf("phone%d", i+1)
	}
	hspaPipe, dl, ul := netem.HSPAPipe(pc.Down, pc.Up, scale)
	ph := &Phone{
		Name:      name,
		clk:       h.clk,
		dl:        dl,
		ul:        ul,
		promotion: time.Duration(float64(promotion) / scale),
		tail:      time.Duration(float64(tail) / scale),
		warm:      pc.Warm,
	}
	if pc.Warm {
		ph.lastActive = h.clk.Now()
	}

	if pc.Variability > 0 {
		seed := h.cfg.Seed + int64(i)*101
		for j, rp := range []*netem.RateProcess{
			{Limiter: dl, Mean: dl.Rate(), Std: pc.Variability, Interval: time.Duration(float64(2*time.Second) / scale)},
			{Limiter: ul, Mean: ul.Rate(), Std: pc.Variability, Interval: time.Duration(float64(2*time.Second) / scale)},
		} {
			rp.Start(seed + int64(j))
			ph.procs = append(ph.procs, rp)
			h.closers = append(h.closers, rp.Stop)
		}
	}

	if pc.DailyQuotaBytes > 0 {
		ph.Tracker = quota.NewTracker(pc.DailyQuotaBytes)
	}

	ph.Proxy = &proxy.Server{
		Dial: &netem.Dialer{Pipe: hspaPipe, Seed: h.cfg.Seed + int64(i)*977},
	}
	if ph.Tracker != nil {
		tr := ph.Tracker
		ph.Proxy.OnBytes = tr.Use
		ph.Proxy.Admit = func(context.Context) bool { return tr.ShouldAdvertise() }
	}
	addr, shutdown, err := ph.Proxy.ListenAndServe(context.Background(), "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: starting proxy for %s: %w", name, err)
	}
	ph.ProxyAddr = addr
	h.closers = append(h.closers, func() { shutdown() })

	beacon := &discovery.Beacon{
		Target:   browseAddr,
		Interval: 50 * time.Millisecond,
		Announce: func() (discovery.Announcement, bool) {
			ann := discovery.Announcement{Name: name, ProxyAddr: addr}
			if ph.Tracker != nil {
				ann.AllowanceBytes = ph.Tracker.Available()
				if ann.AllowanceBytes <= 0 {
					return discovery.Announcement{}, false
				}
			}
			return ann, true
		},
	}
	if err := beacon.Start(); err != nil {
		return nil, fmt.Errorf("core: starting beacon for %s: %w", name, err)
	}
	h.closers = append(h.closers, beacon.Stop)
	return ph, nil
}

// TimeScale returns the environment's acceleration factor.
func (h *Home) TimeScale() float64 {
	if h.cfg.TimeScale <= 0 {
		return 1
	}
	return h.cfg.TimeScale
}

// ScaleDuration converts an observed wall-clock duration back to emulated
// (real-network) time.
func (h *Home) ScaleDuration(d time.Duration) time.Duration {
	return time.Duration(float64(d) * h.TimeScale())
}

// ADSLClient returns an HTTP client routed directly over the ADSL line —
// the baseline path and the scheduler's "adsl" route.
func (h *Home) ADSLClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		DialContext:         h.adslDialer.DialContext,
		MaxIdleConnsPerHost: 8,
	}}
}

// PhoneClient returns an HTTP client routed through the named phone's
// proxy across the shaped Wi-Fi LAN. The phone's RRC promotion delay, if
// due, is paid on the first connection.
func (h *Home) PhoneClient(ph *Phone) *http.Client {
	wifiDialer := &netem.Dialer{
		Pipe: netem.WiFiPipe(h.wifi, h.TimeScale()),
		Seed: h.cfg.Seed ^ int64(len(ph.Name)),
	}
	proxyURL := &url.URL{Scheme: "http", Host: ph.ProxyAddr}
	var once sync.Once
	return &http.Client{Transport: &http.Transport{
		Proxy: http.ProxyURL(proxyURL),
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			once.Do(func() {
				if d := ph.rrcDelay(); d > 0 {
					ph.clk.Sleep(d)
				}
			})
			return wifiDialer.DialContext(ctx, network, addr)
		},
		MaxIdleConnsPerHost: 8,
	}}
}

// AdmissibleDevices waits for up to n phones to appear in discovery and
// returns the matching Phone handles (the set Φ).
func (h *Home) AdmissibleDevices(n int, timeout time.Duration) []*Phone {
	anns := h.Browser.WaitFor(n, timeout)
	var out []*Phone
	for _, ann := range anns {
		for _, ph := range h.Phones {
			if ph.Name == ann.Name {
				out = append(out, ph)
				break
			}
		}
	}
	return out
}

// Close releases every resource the home started.
func (h *Home) Close() {
	for i := len(h.closers) - 1; i >= 0; i-- {
		h.closers[i]()
	}
	h.closers = nil
}

// rngFor derives a deterministic sub-RNG.
func (h *Home) rngFor(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(h.cfg.Seed*31 + salt))
}
