package core

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"threegol/internal/hls"
	"threegol/internal/scheduler"
)

// startVoDProxy serves the handler on a test server against the given
// origin with no shaping (unit-level behaviour checks).
func startVoDProxy(t *testing.T, origin string, routes []Route) *httptest.Server {
	t.Helper()
	h, err := NewVoDProxy(http.DefaultClient, routes, origin, scheduler.Greedy, scheduler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func TestNewVoDProxyRejectsBadOrigin(t *testing.T) {
	if _, err := NewVoDProxy(nil, nil, "::bad::", scheduler.Greedy, scheduler.Options{}); err == nil {
		t.Error("bad origin URL accepted")
	}
}

func TestVoDProxyPassthroughNonPlaylist(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/other.bin" {
			w.Header().Set("X-Custom", "yes")
			w.Write([]byte("raw bytes"))
			return
		}
		http.NotFound(w, r)
	}))
	defer origin.Close()
	proxy := startVoDProxy(t, origin.URL, nil)

	resp, err := http.Get(proxy.URL + "/other.bin")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "raw bytes" || resp.Header.Get("X-Custom") != "yes" {
		t.Errorf("passthrough mangled response: %q %v", body, resp.Header)
	}
	// 404s pass through too.
	resp, err = http.Get(proxy.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestVoDProxyMasterPlaylistDoesNotTriggerPrefetch(t *testing.T) {
	video := hls.Video{Name: "v", Duration: 20, SegmentDur: 10,
		Qualities: []hls.Quality{{Name: "q1", Bitrate: 100_000}}}
	origin := httptest.NewServer(hls.NewOrigin(video))
	defer origin.Close()
	proxy := startVoDProxy(t, origin.URL, nil)

	resp, err := http.Get(proxy.URL + "/v/master.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "EXT-X-STREAM-INF") {
		t.Fatalf("master playlist not forwarded: %q", body)
	}
	// A master playlist lists variants, not segments; the prefetch state
	// must stay empty until a media playlist passes through.
	resp, err = http.Get(proxy.URL + "/v/q1/seg0000.ts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, _ := io.Copy(io.Discard, resp.Body)
	if n != 100_000*10/8 {
		t.Errorf("segment passthrough moved %d bytes", n)
	}
}

func TestVoDProxyMediaPlaylistPrefetchesOnce(t *testing.T) {
	var segRequests atomic.Int32
	video := hls.Video{Name: "v", Duration: 20, SegmentDur: 10,
		Qualities: []hls.Quality{{Name: "q1", Bitrate: 100_000}}}
	inner := hls.NewOrigin(video)
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, ".ts") {
			segRequests.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	defer origin.Close()
	proxy := startVoDProxy(t, origin.URL, nil)

	// Fetch the media playlist twice: the prefetch must only run once.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(proxy.URL + "/v/q1/playlist.m3u8")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && segRequests.Load() < 2 {
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // would-be duplicate prefetch window
	if got := segRequests.Load(); got != 2 {
		t.Errorf("origin saw %d segment fetches, want exactly 2 (one prefetch)", got)
	}

	// The player's subsequent segment GET is served from the cache (no
	// third origin hit).
	resp, err := http.Get(proxy.URL + "/v/q1/seg0000.ts")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if n != 100_000*10/8 {
		t.Errorf("cached segment was %d bytes", n)
	}
	if got := segRequests.Load(); got != 2 {
		t.Errorf("cache miss: origin saw %d segment fetches", got)
	}
}

func TestVoDProxyUnreachableOrigin(t *testing.T) {
	proxy := startVoDProxy(t, "http://127.0.0.1:1", nil)
	resp, err := http.Get(proxy.URL + "/v/master.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

func TestBaselineVoDBadQuality(t *testing.T) {
	origin := httptest.NewServer(hls.NewOrigin(testVideo()))
	defer origin.Close()
	h := testHome(t)
	if _, err := h.BaselineVoD(context.Background(), origin.URL, "/clip/master.m3u8", 0.2, "q99"); err == nil {
		t.Error("unknown quality accepted")
	}
}
