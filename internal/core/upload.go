package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"threegol/internal/scheduler"
	"threegol/internal/stats"
	"threegol/internal/transfer"
)

// Photo is one item of an upload transaction.
type Photo struct {
	Name string
	Data []byte
}

// GeneratePhotos synthesises a photo set matching the paper's corpus:
// sizes are log-normal with mean 2.5 MB and standard deviation 0.74 MB
// (measured over 200 iPhone 4S/5 pictures).
func GeneratePhotos(n int, seed int64) []Photo {
	rng := rand.New(rand.NewSource(seed))
	dist := stats.LogNormalFromMoments(2.5*1024*1024, 0.74*1024*1024)
	photos := make([]Photo, n)
	for i := range photos {
		size := int(dist.Sample(rng))
		if size < 64*1024 {
			size = 64 * 1024
		}
		body := make([]byte, size)
		_, _ = rng.Read(body) // never fails per math/rand contract
		photos[i] = Photo{Name: fmt.Sprintf("IMG_%04d.jpg", i+1), Data: body}
	}
	return photos
}

// TotalBytes sums the photo payloads.
func TotalBytes(photos []Photo) int64 {
	var t int64
	for _, p := range photos {
		t += int64(len(p.Data))
	}
	return t
}

// UploadOptions configure a boosted upload transaction.
type UploadOptions struct {
	Algo scheduler.Algo
	// Phones is the admissible set Φ; empty degrades to ADSL-only.
	Phones []*Phone
	// TargetURL is the upload endpoint (multipart POST).
	TargetURL string
	// MinAlpha and DisableDuplication are the ablation knobs.
	MinAlpha           float64
	DisableDuplication bool
}

// UploadResult reports a finished upload transaction in emulated time.
type UploadResult struct {
	Elapsed         time.Duration
	Bytes           int64
	SchedulerReport *scheduler.Report
}

// UploadPhotos uploads the set over the ADSL uplink plus the admissible
// phones, mirroring the sequential native-client behaviour only in shape
// (multipart POST per photo) while parallelising across paths.
func (h *Home) UploadPhotos(ctx context.Context, photos []Photo, opts UploadOptions) (*UploadResult, error) {
	if opts.TargetURL == "" {
		return nil, fmt.Errorf("core: UploadPhotos requires a TargetURL")
	}
	items := make([]scheduler.Item, len(photos))
	byName := make(map[string][]byte, len(photos))
	for i, p := range photos {
		items[i] = scheduler.Item{ID: i, Name: p.Name, Size: int64(len(p.Data))}
		byName[p.Name] = p.Data
	}
	source := func(item scheduler.Item) (io.ReadCloser, error) {
		b, ok := byName[item.Name]
		if !ok {
			return nil, fmt.Errorf("core: unknown photo %q", item.Name)
		}
		return io.NopCloser(bytes.NewReader(b)), nil
	}

	paths := []scheduler.Path{
		&transfer.UploadPath{
			PathName: "adsl", Client: h.ADSLClient(), TargetURL: opts.TargetURL, Source: source,
		},
	}
	for _, ph := range opts.Phones {
		paths = append(paths, &transfer.UploadPath{
			PathName: ph.Name, Client: h.PhoneClient(ph), TargetURL: opts.TargetURL, Source: source,
		})
	}

	rep, err := scheduler.Run(ctx, opts.Algo, items, paths, scheduler.Options{
		MinAlpha:           opts.MinAlpha,
		DisableDuplication: opts.DisableDuplication,
	})
	if err != nil {
		return nil, fmt.Errorf("core: upload transaction: %w", err)
	}
	return &UploadResult{
		Elapsed:         h.ScaleDuration(rep.Elapsed),
		Bytes:           TotalBytes(photos),
		SchedulerReport: rep,
	}, nil
}

// BaselineUpload uploads the set sequentially over ADSL alone — the
// native-client baseline the paper compares against.
func (h *Home) BaselineUpload(ctx context.Context, photos []Photo, targetURL string) (*UploadResult, error) {
	res, err := h.UploadPhotos(ctx, photos, UploadOptions{
		Algo:      scheduler.RoundRobin, // single path: order-preserving
		TargetURL: targetURL,
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
