//go:build race

package core

// raceEnabled softens the test time scales: the race detector multiplies
// the CPU cost of moving every byte, and at high acceleration that
// per-byte overhead masquerades as link time and distorts margins.
const raceEnabled = true
