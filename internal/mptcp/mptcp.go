// Package mptcp models why the paper's MPTCP experiment showed "no
// benefit" (§5.2): MPTCP's coupled congestion control (LIA) deliberately
// shifts load away from lossy, variable paths to stay fair to single-path
// TCP at shared bottlenecks — exactly the wrong behaviour for a dedicated
// 3G subflow, whose random wireless losses are not congestion. The
// 3GOL application-layer scheduler has no such coupling and uses the
// wireless path at its full (varying) capacity.
//
// The model is a per-RTT AIMD window simulation of N subflows with
// per-path capacity and random (non-congestion) loss, comparing
// uncoupled Reno-per-subflow against LIA-coupled increase.
package mptcp

import (
	"fmt"
	"math/rand"
)

// CongestionControl selects the window-increase rule.
type CongestionControl int

// Congestion control variants.
const (
	// Uncoupled runs an independent Reno instance per subflow (what the
	// 3GOL scheduler effectively obtains from one TCP flow per path).
	Uncoupled CongestionControl = iota
	// Coupled applies MPTCP's Linked-Increases Algorithm across subflows.
	Coupled
)

// String implements fmt.Stringer.
func (c CongestionControl) String() string {
	if c == Coupled {
		return "coupled (LIA)"
	}
	return "uncoupled"
}

// PathModel describes one subflow's path.
type PathModel struct {
	Name string
	// CapacityPkts is the path's capacity in packets per base round
	// (one wired RTT).
	CapacityPkts float64
	// RandomLoss is the per-own-RTT probability of a non-congestion loss
	// (wireless link-layer residue) that still halves the window.
	RandomLoss float64
	// RTTMultiple is the path's RTT as a multiple of the base round
	// (HSPA RTTs are several times ADSL's); 0 means 1. A larger RTT
	// slows the subflow's AIMD loop and stretches each window over more
	// rounds.
	RTTMultiple int
}

func (p PathModel) rtt() int {
	if p.RTTMultiple <= 0 {
		return 1
	}
	return p.RTTMultiple
}

// Result reports simulated per-path and aggregate goodput.
type Result struct {
	CC CongestionControl
	// Goodput[i] is subflow i's mean delivered packets per RTT.
	Goodput []float64
	// Aggregate is the summed goodput (packets per RTT).
	Aggregate float64
	// Utilization[i] is Goodput[i]/Capacity[i].
	Utilization []float64
}

// Simulate runs the AIMD model for the given number of RTT rounds. It
// panics on an empty path list or non-positive capacities (configuration
// errors).
func Simulate(cc CongestionControl, paths []PathModel, rounds int, seed int64) Result {
	if len(paths) == 0 {
		panic("mptcp: no paths")
	}
	for _, p := range paths {
		if p.CapacityPkts <= 0 {
			panic(fmt.Sprintf("mptcp: path %q capacity %v", p.Name, p.CapacityPkts))
		}
	}
	if rounds <= 0 {
		rounds = 10000
	}
	rng := rand.New(rand.NewSource(seed))

	w := make([]float64, len(paths))
	for i := range w {
		w[i] = 1
	}
	delivered := make([]float64, len(paths))

	for r := 0; r < rounds; r++ {
		var total float64
		for _, wi := range w {
			total += wi
		}
		for i, p := range paths {
			rtt := p.rtt()
			// A window's worth of packets spreads over one of this
			// path's RTTs, i.e. w/rtt per base round, up to the path
			// capacity prorated the same way.
			d := w[i] / float64(rtt)
			if max := p.CapacityPkts / float64(rtt); d > max {
				d = max
			}
			delivered[i] += d

			// AIMD updates happen once per own RTT.
			if r%rtt != 0 {
				continue
			}
			// Loss: buffer overflow (window beyond capacity) or random
			// wireless loss.
			lost := w[i] > p.CapacityPkts || rng.Float64() < p.RandomLoss
			if lost {
				w[i] /= 2
				if w[i] < 1 {
					w[i] = 1
				}
				continue
			}
			switch cc {
			case Uncoupled:
				w[i]++ // Reno: +1 MSS per RTT
			case Coupled:
				// LIA with a=1: per-ACK increase min(1/w_total, 1/w_i),
				// ×w_i ACKs per RTT → min(w_i/w_total, 1).
				inc := w[i] / total
				if inc > 1 {
					inc = 1
				}
				w[i] += inc
			}
		}
	}

	res := Result{
		CC:          cc,
		Goodput:     make([]float64, len(paths)),
		Utilization: make([]float64, len(paths)),
	}
	for i, p := range paths {
		res.Goodput[i] = delivered[i] / float64(rounds)
		res.Aggregate += res.Goodput[i]
		res.Utilization[i] = res.Goodput[i] / (p.CapacityPkts / float64(p.rtt()))
	}
	return res
}

// ADSLPlus3G returns the paper's scenario: a clean wired path plus a
// lossy, comparably sized wireless path with a several-times-larger RTT
// (capacities in packets per base round).
func ADSLPlus3G() []PathModel {
	return []PathModel{
		{Name: "adsl", CapacityPkts: 20, RandomLoss: 0.001},
		{Name: "3g", CapacityPkts: 18, RandomLoss: 0.06, RTTMultiple: 4},
	}
}
