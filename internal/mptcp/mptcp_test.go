package mptcp

import "testing"

func TestCoupledUnderutilisesLossyPath(t *testing.T) {
	paths := ADSLPlus3G()
	coupled := Simulate(Coupled, paths, 20000, 1)
	uncoupled := Simulate(Uncoupled, paths, 20000, 1)

	// The paper's observation: coupled CC yields no benefit because the
	// wireless subflow is suppressed. Uncoupled must clearly beat it.
	if coupled.Aggregate >= uncoupled.Aggregate {
		t.Errorf("coupled aggregate %v not below uncoupled %v",
			coupled.Aggregate, uncoupled.Aggregate)
	}
	// The wireless path specifically is the one being starved.
	if coupled.Utilization[1] >= uncoupled.Utilization[1] {
		t.Errorf("coupled 3G utilisation %v not below uncoupled %v",
			coupled.Utilization[1], uncoupled.Utilization[1])
	}
}

func TestCoupledNoBenefitOverSinglePath(t *testing.T) {
	// MPTCP over ADSL+3G vs plain TCP over ADSL alone: the gain should be
	// marginal (the paper: "it provided no benefit").
	adslOnly := Simulate(Uncoupled, ADSLPlus3G()[:1], 20000, 2)
	mptcp := Simulate(Coupled, ADSLPlus3G(), 20000, 2)
	if mptcp.Aggregate > adslOnly.Aggregate*1.5 {
		t.Errorf("coupled MPTCP aggregate %v ≫ ADSL-only %v; the model should "+
			"show marginal benefit", mptcp.Aggregate, adslOnly.Aggregate)
	}
}

func TestUncoupledApproachesCleanPathCapacity(t *testing.T) {
	res := Simulate(Uncoupled, []PathModel{{Name: "clean", CapacityPkts: 20, RandomLoss: 0}}, 20000, 3)
	// AIMD between W/2 and W utilises ≈75% of a droptail path.
	if res.Utilization[0] < 0.6 || res.Utilization[0] > 1.0 {
		t.Errorf("clean-path utilisation = %v, want ≈0.75", res.Utilization[0])
	}
}

func TestGoodputNeverExceedsCapacity(t *testing.T) {
	for _, cc := range []CongestionControl{Uncoupled, Coupled} {
		res := Simulate(cc, ADSLPlus3G(), 5000, 4)
		for i, g := range res.Goodput {
			if g > ADSLPlus3G()[i].CapacityPkts {
				t.Errorf("%v: path %d goodput %v exceeds capacity", cc, i, g)
			}
		}
	}
}

func TestSimulatePanicsOnBadInput(t *testing.T) {
	assertPanics(t, func() { Simulate(Coupled, nil, 100, 1) })
	assertPanics(t, func() { Simulate(Coupled, []PathModel{{Name: "x", CapacityPkts: 0}}, 100, 1) })
}

func TestCongestionControlString(t *testing.T) {
	if Uncoupled.String() != "uncoupled" || Coupled.String() != "coupled (LIA)" {
		t.Error("String mismatch")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Simulate(Coupled, ADSLPlus3G(), 2000, 9)
	b := Simulate(Coupled, ADSLPlus3G(), 2000, 9)
	if a.Aggregate != b.Aggregate {
		t.Error("same seed produced different results")
	}
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}
