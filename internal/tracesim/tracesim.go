// Package tracesim runs the paper's §6 trace-driven analyses: what 3GOL
// delivers to DSLAM subscribers when cellular volume caps must be
// respected (Fig. 11a), the load the onloaded traffic puts on the
// cellular network with and without budgets (Fig. 11b), and the relative
// traffic increase as adoption grows (Fig. 11c) — plus the Fig. 10 cap
// usage CDF that motivates it all.
package tracesim

import (
	"math"
	"math/rand"
	"sort"

	"threegol/internal/diurnal"
	"threegol/internal/dsl"
	"threegol/internal/fleet"
	"threegol/internal/stats"
	"threegol/internal/traces"
)

// Config sets the §6 scenario parameters; zero values select the paper's.
type Config struct {
	// DSLBits is the subscribers' access speed (paper: 3 Mbps lines).
	DSLBits float64
	// PhoneBits is one device's usable 3G rate during a boost.
	PhoneBits float64
	// Devices is the number of 3G devices per household (paper: 2).
	Devices int
	// DailyBudgetBytes is the per-device daily allowance (paper: 20 MB,
	// the average free/unused capacity in the MNO dataset).
	DailyBudgetBytes float64
	// MinBoostBytes is the smallest video worth boosting (paper: 750 KB,
	// anything needing >2 s on DSL).
	MinBoostBytes float64
}

func (c Config) withDefaults() Config {
	if c.DSLBits <= 0 {
		c.DSLBits = 3e6
	}
	if c.PhoneBits <= 0 {
		// HSPA+ devices per the paper's §6 scenario; with two of them the
		// parallel ceiling is (3+4.8)/3 = 2.6 — the upper end of the
		// paper's Fig. 11(a) axis.
		c.PhoneBits = 2.4e6
	}
	if c.Devices <= 0 {
		c.Devices = 2
	}
	if c.DailyBudgetBytes <= 0 {
		c.DailyBudgetBytes = 20 * traces.MB
	}
	if c.MinBoostBytes <= 0 {
		c.MinBoostBytes = 750 * 1024
	}
	return c
}

// budget returns the household's daily onloading budget in bytes.
func (c Config) budget() float64 {
	return float64(c.Devices) * c.DailyBudgetBytes
}

// threeGBits returns the aggregate 3G rate of the household's devices.
func (c Config) threeGBits() float64 {
	return float64(c.Devices) * c.PhoneBits
}

// model builds the fleet boost model for a line running at dslBits —
// the single home of the shared per-transfer arithmetic (see
// fleet.BoostModel).
func (c Config) model(dslBits float64) fleet.BoostModel {
	return fleet.BoostModel{
		DSLBits:       dslBits,
		G3Bits:        c.threeGBits(),
		MinBoostBytes: c.MinBoostBytes,
	}
}

// UserOutcome is one subscriber's day under 3GOL with budgets.
type UserOutcome struct {
	UserID        int
	Videos        int
	DSLSeconds    float64 // total video latency over DSL alone
	BoostSeconds  float64 // total latency with budgeted 3GOL
	OnloadedBytes float64
	// Speedup is DSLSeconds/BoostSeconds (≥1).
	Speedup float64
}

// Fig11a simulates every subscriber's day: each video ≥ MinBoostBytes is
// boosted with whatever daily budget remains. During a boost the
// download runs at DSL+3G with the 3G share metered against the budget;
// once the budget runs dry the remainder goes over DSL alone. The
// returned outcomes feed the speedup CDF of Fig. 11(a). The arithmetic
// is fleet.BoostModel's — this is a thin adapter binding it to a DSLAM
// trace with one uniform line rate.
func Fig11a(tr *traces.DSLAMTrace, cfg Config) []UserOutcome {
	cfg = cfg.withDefaults()
	model := cfg.model(cfg.DSLBits)

	byUser := tr.SessionsByUser()
	outcomes := make([]UserOutcome, 0, len(byUser))
	for _, userID := range sortedUserIDs(byUser) {
		outcomes = append(outcomes, userDay(userID, byUser[userID], model, cfg.budget()))
	}
	return outcomes
}

// sortedUserIDs fixes the subscriber iteration order: the outcome slices
// feed CDFs and golden comparisons, so map order must not leak into
// them.
func sortedUserIDs(byUser map[int][]traces.VideoSession) []int {
	ids := make([]int, 0, len(byUser))
	for id := range byUser {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// userDay folds one subscriber's sessions through the boost model with a
// shared daily budget.
func userDay(userID int, sessions []traces.VideoSession, model fleet.BoostModel, budget float64) UserOutcome {
	out := UserOutcome{UserID: userID, Videos: len(sessions)}
	for _, s := range sessions {
		b := model.Apply(s.SizeBytes, budget)
		budget -= b.OnloadedBytes
		out.DSLSeconds += b.DSLSeconds
		out.BoostSeconds += b.BoostSeconds
		out.OnloadedBytes += b.OnloadedBytes
	}
	if out.BoostSeconds > 0 {
		out.Speedup = out.DSLSeconds / out.BoostSeconds
	} else {
		out.Speedup = 1
	}
	return out
}

// SpeedupCDF builds the Fig. 11(a) CDF over per-user speedups.
func SpeedupCDF(outcomes []UserOutcome) *stats.ECDF {
	xs := make([]float64, len(outcomes))
	for i, o := range outcomes {
		xs[i] = o.Speedup
	}
	return stats.NewECDF(xs)
}

// LoadSeries is the Fig. 11(b) result: onloaded cellular load over the
// day in fixed bins, budgeted and unlimited, against the area's backhaul.
type LoadSeries struct {
	BinSeconds    float64
	BudgetedMbps  []float64
	UnlimitedMbps []float64
	// BackhaulMbps is the covering towers' total backhaul (paper: 2
	// towers × 40 Mbps).
	BackhaulMbps float64
}

// Fig11b computes the onloaded traffic series, following the paper's
// §6 rule: the budgeted case accelerates each user's *first* video that
// could benefit (size ≥ 750 KB), metered against the two-device daily
// budget; the unlimited case onloads the 3G share of every boostable
// video. Onloaded bytes spread over the boosted transfer's duration —
// the cell carries them while the download runs, not at the instant of
// the request.
func Fig11b(tr *traces.DSLAMTrace, cfg Config, binSeconds float64) LoadSeries {
	cfg = cfg.withDefaults()
	budgeted := fleet.NewLoadBins(binSeconds)
	unlimited := fleet.NewLoadBins(binSeconds)
	dsl, g3 := cfg.DSLBits, cfg.threeGBits()
	shareg3 := g3 / (dsl + g3)

	boosted := make(map[int]bool) // users whose first video was boosted
	for _, s := range tr.Sessions {
		if s.SizeBytes < cfg.MinBoostBytes {
			continue
		}
		ideal := s.SizeBytes * shareg3
		// Unlimited: everything boosted; transfer runs at dsl+3G.
		unlimited.Spread(s.Time, s.SizeBytes*8/(dsl+g3), ideal)

		// Budgeted: only the user's first boostable video, capped by the
		// daily budget.
		if boosted[s.UserID] {
			continue
		}
		boosted[s.UserID] = true
		onload := math.Min(ideal, cfg.budget())
		dur := math.Max((s.SizeBytes-onload)*8/dsl, onload*8/g3)
		budgeted.Spread(s.Time, dur, onload)
	}
	return LoadSeries{
		BinSeconds:    budgeted.BinSeconds,
		BudgetedMbps:  budgeted.Mbps(1),
		UnlimitedMbps: unlimited.Mbps(1),
		BackhaulMbps:  2 * 40,
	}
}

// MeanOnloadedFirstVideoBytes reports the average bytes per user the
// Fig. 11(b) budgeted rule onloads (the paper: 29.78 MB/day with two
// devices).
func MeanOnloadedFirstVideoBytes(tr *traces.DSLAMTrace, cfg Config) float64 {
	cfg = cfg.withDefaults()
	shareg3 := cfg.threeGBits() / (cfg.DSLBits + cfg.threeGBits())
	boosted := make(map[int]float64)
	for _, s := range tr.Sessions {
		if s.SizeBytes < cfg.MinBoostBytes {
			continue
		}
		if _, ok := boosted[s.UserID]; ok {
			continue
		}
		boosted[s.UserID] = math.Min(s.SizeBytes*shareg3, cfg.budget())
	}
	if len(boosted) == 0 {
		return 0
	}
	var total float64
	for _, b := range boosted {
		total += b
	}
	return total / float64(len(boosted))
}

// PeakMbps returns the maximum of a series.
func PeakMbps(series []float64) float64 {
	return fleet.Peak(series)
}

// MeanOnloadedBytesPerUser reports the average bytes a user onloads per
// day under budgets (the paper finds ≈29.78 MB with two devices).
func MeanOnloadedBytesPerUser(outcomes []UserOutcome) float64 {
	if len(outcomes) == 0 {
		return 0
	}
	var t float64
	for _, o := range outcomes {
		t += o.OnloadedBytes
	}
	return t / float64(len(outcomes))
}

// AdoptionPoint is one Fig. 11(c) point.
type AdoptionPoint struct {
	Fraction      float64 // fraction of 3G users adopting 3GOL
	TotalIncrease float64 // relative increase in daily 3G traffic
	PeakIncrease  float64 // relative increase at the mobile peak hour
}

// Fig11c computes the relative 3G traffic increase as adoption grows.
// Base traffic is the MNO population's daily volume spread over the
// mobile diurnal profile; 3GOL demand adds perUserDaily bytes for each
// adopter spread over the *wired* profile — the peak misalignment of
// Fig. 1 is why the peak increase sits below the total increase.
func Fig11c(users []traces.MNOUser, fractions []float64, perUserDaily float64) []AdoptionPoint {
	if perUserDaily <= 0 {
		perUserDaily = 20 * traces.MB
	}
	var baseDaily float64
	for _, u := range users {
		baseDaily += u.CapBytes * u.UsedFrac / 30
	}
	// Hourly shapes normalised to unit mass.
	baseShape := fleet.HourlyMass(diurnal.Mobile)
	onloadShape := fleet.HourlyMass(diurnal.Wired)
	peakHour := diurnal.Mobile.PeakHour()

	var out []AdoptionPoint
	for _, f := range fractions {
		added := f * float64(len(users)) * perUserDaily
		pt := AdoptionPoint{Fraction: f}
		if baseDaily > 0 {
			pt.TotalIncrease = added / baseDaily
			basePeak := baseDaily * baseShape[peakHour]
			addedPeak := added * onloadShape[peakHour]
			pt.PeakIncrease = addedPeak / basePeak
		}
		out = append(out, pt)
	}
	return out
}

// Fig10 builds the cap-usage CDF from an MNO population.
func Fig10(users []traces.MNOUser) *stats.ECDF {
	return stats.NewECDF(traces.UsedFractions(users))
}

// AssignLineRates draws a per-subscriber ADSL downlink rate from a loop
// population — the heterogeneous-plant extension of the Fig. 11(a)
// analysis. The paper's DSLAM population was uniform 3 Mbps; real plants
// mix short urban loops with long rural ones, and the per-user speedup
// spread widens accordingly.
func AssignLineRates(tr *traces.DSLAMTrace, pop dsl.Population, seed int64) map[int]float64 {
	rng := rand.New(rand.NewSource(seed))
	users := make(map[int]bool)
	for _, s := range tr.Sessions {
		users[s.UserID] = true
	}
	ids := make([]int, 0, len(users))
	for id := range users {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic assignment order
	lines := pop.Sample(len(ids), rng)
	rates := make(map[int]float64, len(ids))
	for i, id := range ids {
		down, _ := lines[i].SyncRates()
		if down < 256e3 {
			down = 256e3 // a line below this would not carry video at all
		}
		rates[id] = down
	}
	return rates
}

// Fig11aHeterogeneous runs the budgeted speedup analysis with
// per-subscriber DSL rates (cfg.DSLBits is ignored for users present in
// rates; absent users fall back to it).
func Fig11aHeterogeneous(tr *traces.DSLAMTrace, rates map[int]float64, cfg Config) []UserOutcome {
	cfg = cfg.withDefaults()

	byUser := tr.SessionsByUser()
	outcomes := make([]UserOutcome, 0, len(byUser))
	for _, userID := range sortedUserIDs(byUser) {
		dslRate := cfg.DSLBits
		if r, ok := rates[userID]; ok && r > 0 {
			dslRate = r
		}
		outcomes = append(outcomes, userDay(userID, byUser[userID], cfg.model(dslRate), cfg.budget()))
	}
	return outcomes
}
