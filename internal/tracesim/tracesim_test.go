package tracesim

import (
	"math"
	"testing"

	"threegol/internal/dsl"
	"threegol/internal/traces"
)

func smallTrace(t *testing.T) *traces.DSLAMTrace {
	t.Helper()
	return traces.GenerateDSLAM(traces.DSLAMConfig{Users: 3000}, 42)
}

func TestFig11aSpeedupShape(t *testing.T) {
	outcomes := Fig11a(smallTrace(t), Config{})
	if len(outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	cdf := SpeedupCDF(outcomes)
	// Paper: ≥20% speedup for 50% of users, ≈2× for the top 5%.
	median := cdf.Quantile(0.5)
	if median < 1.15 {
		t.Errorf("median speedup = %.3f, want ≥1.15 (paper: ≥1.2 for 50%%)", median)
	}
	p95 := cdf.Quantile(0.95)
	if p95 < 1.6 {
		t.Errorf("95th percentile speedup = %.3f, want ≈2", p95)
	}
	// Speedups bounded by the no-budget parallel ceiling.
	cfg := Config{}.withDefaults()
	ceiling := (cfg.DSLBits + cfg.threeGBits()) / cfg.DSLBits
	for _, o := range outcomes {
		if o.Speedup < 1-1e-9 || o.Speedup > ceiling+1e-9 {
			t.Fatalf("speedup %.3f outside [1, %.3f]", o.Speedup, ceiling)
		}
	}
}

func TestFig11aBudgetCapsOnloading(t *testing.T) {
	tr := smallTrace(t)
	outcomes := Fig11a(tr, Config{})
	cfg := Config{}.withDefaults()
	for _, o := range outcomes {
		if o.OnloadedBytes > cfg.budget()+1 {
			t.Fatalf("user %d onloaded %.0f bytes, budget %.0f", o.UserID, o.OnloadedBytes, cfg.budget())
		}
	}
	// Under the boost-everything-within-budget rule most users exhaust
	// the 40 MB budget.
	mean := MeanOnloadedBytesPerUser(outcomes) / traces.MB
	if mean < 15 || mean > 41 {
		t.Errorf("mean onloaded = %.1f MB/user/day, want near the 40 MB budget", mean)
	}
}

func TestFig11aUnboostableVideosUntouched(t *testing.T) {
	tr := &traces.DSLAMTrace{NumUsers: 1, ADSLBits: 3e6, Sessions: []traces.VideoSession{
		{UserID: 0, Time: 100, SizeBytes: 100 * 1024}, // below 750 KB
	}}
	outcomes := Fig11a(tr, Config{})
	if len(outcomes) != 1 {
		t.Fatal("missing outcome")
	}
	if outcomes[0].Speedup != 1 || outcomes[0].OnloadedBytes != 0 {
		t.Errorf("small video boosted: %+v", outcomes[0])
	}
}

func TestFig11bBudgetedStaysUnderBackhaulUnlimitedCrosses(t *testing.T) {
	// The paper's Fig 11(b): without caps the onloaded load is guaranteed
	// to overload the cellular network; with caps it stays reasonable.
	tr := traces.GenerateDSLAM(traces.DSLAMConfig{Users: 18000}, 7)
	ls := Fig11b(tr, Config{}, 300)
	if len(ls.BudgetedMbps) != 288 {
		t.Fatalf("bins = %d, want 288 (5-min)", len(ls.BudgetedMbps))
	}
	unlimPeak := PeakMbps(ls.UnlimitedMbps)
	budgPeak := PeakMbps(ls.BudgetedMbps)
	if unlimPeak <= ls.BackhaulMbps {
		t.Errorf("unlimited peak %.1f Mbps should exceed backhaul %.1f", unlimPeak, ls.BackhaulMbps)
	}
	if budgPeak >= unlimPeak {
		t.Errorf("budgeted peak %.1f not below unlimited %.1f", budgPeak, unlimPeak)
	}
	// The paper's conclusion: with caps, "the additional load introduced
	// on the 3G network could be reasonable" — the budgeted curve stays
	// in the neighbourhood of the backhaul line (a small multiple at the
	// day-start bump where every user's first video lands) rather than
	// the order of magnitude the unlimited case reaches.
	if budgPeak > 5*ls.BackhaulMbps {
		t.Errorf("budgeted peak %.1f Mbps ≫ backhaul %.1f; caps not effective", budgPeak, ls.BackhaulMbps)
	}
	if unlimPeak < 3*budgPeak {
		t.Errorf("unlimited peak %.1f should dwarf budgeted %.1f", unlimPeak, budgPeak)
	}
	// Mean onloaded volume under the first-video rule ≈ paper's 29.78 MB.
	mean := MeanOnloadedFirstVideoBytes(tr, Config{}) / traces.MB
	if mean < 20 || mean > 40 {
		t.Errorf("first-video onload mean = %.1f MB/user/day, want ≈30", mean)
	}
	// Budgeted load is dramatically smaller in aggregate.
	var bSum, uSum float64
	for i := range ls.BudgetedMbps {
		bSum += ls.BudgetedMbps[i]
		uSum += ls.UnlimitedMbps[i]
	}
	if bSum >= uSum/2 {
		t.Errorf("budgeted volume %.1f not ≪ unlimited %.1f", bSum, uSum)
	}
}

func TestFig11cAdoptionCurve(t *testing.T) {
	users := traces.GenerateMNO(traces.MNOConfig{Users: 20000}, 3)
	fracs := []float64{0, 0.25, 0.5, 0.75, 1}
	pts := Fig11c(users, fracs, 20*traces.MB)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].TotalIncrease != 0 {
		t.Errorf("zero adoption increase = %v", pts[0].TotalIncrease)
	}
	// Monotone growth.
	for i := 1; i < len(pts); i++ {
		if pts[i].TotalIncrease <= pts[i-1].TotalIncrease {
			t.Errorf("total increase not monotone at %v", pts[i].Fraction)
		}
	}
	// Paper: ≈100% increase at full adoption (20 MB/day ≈ mean usage).
	full := pts[4].TotalIncrease
	if full < 0.5 || full > 2.5 {
		t.Errorf("full-adoption increase = %.2f, want ≈1", full)
	}
	// Peak increase below total increase (Fig 1 misalignment).
	for _, p := range pts[1:] {
		if p.PeakIncrease >= p.TotalIncrease {
			t.Errorf("peak increase %.3f not below total %.3f at adoption %.2f",
				p.PeakIncrease, p.TotalIncrease, p.Fraction)
		}
	}
}

func TestFig10AnchorsSurviveWrapper(t *testing.T) {
	users := traces.GenerateMNO(traces.MNOConfig{Users: 10000}, 5)
	cdf := Fig10(users)
	if got := cdf.At(0.1); math.Abs(got-0.40) > 0.03 {
		t.Errorf("P(≤0.1) = %.3f, want ≈0.40", got)
	}
	if got := cdf.At(0.5); math.Abs(got-0.75) > 0.03 {
		t.Errorf("P(≤0.5) = %.3f, want ≈0.75", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.DSLBits != 3e6 || c.Devices != 2 || c.DailyBudgetBytes != 20*traces.MB {
		t.Errorf("defaults = %+v", c)
	}
	if c.budget() != 40*traces.MB {
		t.Errorf("budget = %v, want 40 MB", c.budget())
	}
}

func TestFig11aMoreBudgetNeverSlower(t *testing.T) {
	tr := smallTrace(t)
	small := Fig11a(tr, Config{DailyBudgetBytes: 5 * traces.MB})
	big := Fig11a(tr, Config{DailyBudgetBytes: 100 * traces.MB})
	sMed := SpeedupCDF(small).Quantile(0.5)
	bMed := SpeedupCDF(big).Quantile(0.5)
	if bMed < sMed {
		t.Errorf("bigger budget median %.3f below smaller budget %.3f", bMed, sMed)
	}
}

func TestFig11aHeterogeneousRuralGainsMore(t *testing.T) {
	tr := smallTrace(t)
	urban := AssignLineRates(tr, dsl.Population{Technology: dsl.ADSL2Plus, MeanLoopMetres: 600}, 1)
	rural := AssignLineRates(tr, dsl.Population{Technology: dsl.ADSL1, MeanLoopMetres: 3000}, 1)

	// When the budget binds, speedup is rate-invariant (both baseline
	// and savings scale with 1/rate); the rural advantage shows in the
	// share-bound upper tail, where slow lines push the parallel ceiling
	// (dsl+3G)/dsl far higher.
	urbanP90 := SpeedupCDF(Fig11aHeterogeneous(tr, urban, Config{})).Quantile(0.9)
	ruralP90 := SpeedupCDF(Fig11aHeterogeneous(tr, rural, Config{})).Quantile(0.9)
	if ruralP90 <= urbanP90 {
		t.Errorf("rural p90 speedup %.3f not above urban %.3f (paper: rural gains more)",
			ruralP90, urbanP90)
	}
}

func TestAssignLineRatesDeterministicAndPositive(t *testing.T) {
	tr := smallTrace(t)
	pop := dsl.Population{Technology: dsl.ADSL2Plus, MeanLoopMetres: 1200}
	a := AssignLineRates(tr, pop, 9)
	b := AssignLineRates(tr, pop, 9)
	if len(a) != tr.Viewers() {
		t.Errorf("rates for %d users, want %d viewers", len(a), tr.Viewers())
	}
	for id, r := range a {
		if r < 256e3 {
			t.Fatalf("user %d rate %.0f below floor", id, r)
		}
		if b[id] != r {
			t.Fatal("assignment not deterministic")
		}
	}
}

func TestFig11aHeterogeneousFallback(t *testing.T) {
	tr := &traces.DSLAMTrace{NumUsers: 1, ADSLBits: 3e6, Sessions: []traces.VideoSession{
		{UserID: 7, Time: 100, SizeBytes: 10 * traces.MB},
	}}
	// No rate for user 7: falls back to cfg.DSLBits.
	with := Fig11aHeterogeneous(tr, nil, Config{})
	uniform := Fig11a(tr, Config{})
	if len(with) != 1 || len(uniform) != 1 {
		t.Fatal("missing outcomes")
	}
	if math.Abs(with[0].Speedup-uniform[0].Speedup) > 1e-9 {
		t.Errorf("fallback speedup %.4f != uniform %.4f", with[0].Speedup, uniform[0].Speedup)
	}
}
