package obs

import (
	"encoding/json"
	"net/http"
)

// Handler returns the /debug/metrics endpoint: a GET returns the
// registry snapshot as indented JSON. Mount it wherever the daemon
// serves debug traffic, e.g.
//
//	mux.Handle("/debug/metrics", obs.Handler(reg))
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w) // client disconnect; nothing to do
	})
}

// SpansHandler returns the /debug/spans endpoint: a GET returns the
// tracer's retained span ring (oldest first) as indented JSON — the
// previously ring-only spans become reachable from the debug mux.
func SpansHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Snapshot()) // client disconnect; nothing to do
	})
}
