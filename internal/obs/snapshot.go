package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// MetricSnapshot is one metric family's state at snapshot time: the
// descriptor plus every child in sorted label-value order.
type MetricSnapshot struct {
	Name   string   `json:"name"`
	Type   string   `json:"type"`
	Help   string   `json:"help"`
	Labels []string `json:"labels,omitempty"`
	// Values holds one entry per child, sorted by label values, so two
	// snapshots of identical registries serialise identically.
	Values []ValueSnapshot `json:"values"`
}

// ValueSnapshot is one child's value. Counters and gauges fill Value;
// histograms fill Count/Sum and, when non-empty, the envelope and
// quantiles.
type ValueSnapshot struct {
	LabelValues []string `json:"label_values,omitempty"`
	Value       float64  `json:"value,omitempty"`
	Count       int64    `json:"count,omitempty"`
	Sum         float64  `json:"sum,omitempty"`
	Min         float64  `json:"min,omitempty"`
	Max         float64  `json:"max,omitempty"`
	P50         float64  `json:"p50,omitempty"`
	P90         float64  `json:"p90,omitempty"`
	P99         float64  `json:"p99,omitempty"`
}

// Snapshot captures every metric sorted by name. The result depends
// only on the registry's logical contents — never on registration
// order, map iteration, or how a merged registry was sharded — which is
// what makes dumps comparable byte-for-byte in the determinism tests.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	metrics := make([]Metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		metrics = append(metrics, m)
	}
	r.mu.Unlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].Desc().Name < metrics[j].Desc().Name })
	out := make([]MetricSnapshot, len(metrics))
	for i, m := range metrics {
		out[i] = m.snapshot()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON — the /debug/metrics
// payload and the 3golfleet -metrics dump format.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
