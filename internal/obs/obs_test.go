package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "first registration")
	defer func() {
		if recover() == nil {
			t.Fatal("second registration of x_total did not panic")
		}
	}()
	r.NewGauge("x_total", "second registration, different type")
}

func TestEmptyNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("empty metric name did not panic")
		}
	}()
	r.NewCounter("", "nameless")
}

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("sched_items_total", "items", "path")
	c.With("adsl").Add(3)
	c.With("adsl").Inc()
	c.With("phone1").Inc()
	if got := c.With("adsl").Value(); got != 4 {
		t.Errorf("adsl = %d, want 4", got)
	}
	if got := c.With("phone1").Value(); got != 1 {
		t.Errorf("phone1 = %d, want 1", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c", "path")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	c.Inc() // zero values against one declared label
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("devices", "live devices")
	g.Set(3)
	g.Add(-1)
	if got := g.With().Value(); got != 2 {
		t.Errorf("gauge = %v, want 2", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", 0, 10, 100)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100 * 9)
	}
	snap := h.snapshot()
	v := snap.Values[0]
	if v.Count != 100 {
		t.Fatalf("count = %d, want 100", v.Count)
	}
	if v.P50 < 4 || v.P50 > 5 {
		t.Errorf("p50 = %v, want ≈4.5", v.P50)
	}
	if v.Min != 0.09 || v.Max != 9 {
		t.Errorf("min/max = %v/%v, want 0.09/9", v.Min, v.Max)
	}
}

// catalog builds one registry the way an instrumented shard would.
func catalog() *Registry {
	r := NewRegistry()
	r.NewCounter("a_items_total", "items", "path")
	r.NewGauge("a_level", "level")
	r.NewHistogram("a_seconds", "latency", 0, 10, 100, "path")
	return r
}

func TestMergeMatchesSingleRegistry(t *testing.T) {
	// One registry filled directly...
	whole := catalog()
	// ...versus the same observations split across two shards and merged.
	s1, s2 := catalog(), catalog()

	observe := func(r *Registry, path string, n int64, lvl, x float64) {
		r.metrics["a_items_total"].(*Counter).With(path).Add(n)
		r.metrics["a_level"].(*Gauge).Add(lvl)
		r.metrics["a_seconds"].(*Histogram).With(path).Observe(x)
	}
	type ob struct {
		path string
		n    int64
		lvl  float64
		x    float64
	}
	obs := []ob{{"adsl", 5, 1, 0.5}, {"adsl", 10, 2, 1.5}, {"phone1", 15, 3, 2.5}, {"phone1", 20, 4, 3.5}}
	for i, o := range obs {
		observe(whole, o.path, o.n, o.lvl, o.x)
		shard := s1
		if i >= 2 {
			shard = s2
		}
		observe(shard, o.path, o.n, o.lvl, o.x)
	}

	merged := catalog()
	merged.Merge(s1)
	merged.Merge(s2)

	var a, b bytes.Buffer
	if err := whole.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("merged dump differs from whole dump\n--- whole ---\n%s--- merged ---\n%s", a.String(), b.String())
	}
}

func TestMergeUnknownMetricPanics(t *testing.T) {
	dst := catalog()
	src := NewRegistry()
	src.NewCounter("not_in_dst_total", "stray")
	defer func() {
		if recover() == nil {
			t.Fatal("merging unknown metric did not panic")
		}
	}()
	dst.Merge(src)
}

func TestHandlerServesSnapshot(t *testing.T) {
	r := catalog()
	r.metrics["a_items_total"].(*Counter).With("adsl").Add(7)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{`"a_items_total"`, `"adsl"`, `"value": 7`} {
		if !strings.Contains(body, want) {
			t.Errorf("handler body missing %s:\n%s", want, body)
		}
	}
}

// fakeClock is a manually-advanced clock.Clock for tracer tests.
type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time                  { return f.now }
func (f *fakeClock) Since(t time.Time) time.Duration { return f.now.Sub(t) }
func (f *fakeClock) Sleep(d time.Duration)           { f.now = f.now.Add(d) }

func TestTracerRecordsSpans(t *testing.T) {
	r := NewRegistry()
	clk := &fakeClock{now: time.Unix(1000, 0)}
	tr := NewTracer(r, clk)

	sp := tr.Start("permit.decide")
	clk.Sleep(250 * time.Millisecond)
	if d := sp.End(); d != 250*time.Millisecond {
		t.Errorf("span duration = %v, want 250ms", d)
	}
	if got := tr.durs.With("permit.decide").Count(); got != 1 {
		t.Errorf("histogram count = %d, want 1", got)
	}
	rec := tr.Recent()
	if len(rec) != 1 || rec[0].Name != "permit.decide" {
		t.Errorf("Recent() = %+v, want one permit.decide span", rec)
	}

	// A zero Span is inert.
	var zero Span
	if d := zero.End(); d != 0 {
		t.Errorf("zero span End = %v, want 0", d)
	}
}

func TestTracerRingEviction(t *testing.T) {
	r := NewRegistry()
	clk := &fakeClock{now: time.Unix(0, 0)}
	tr := NewTracer(r, clk)
	for i := 0; i < SpanRingSize+10; i++ {
		tr.Start("s").End()
	}
	rec := tr.Recent()
	if len(rec) != SpanRingSize {
		t.Errorf("ring holds %d spans, want %d", len(rec), SpanRingSize)
	}
}

func TestRenderMarkdownGroupsAndSorts(t *testing.T) {
	r := catalog()
	md := RenderMarkdown(r)
	if !strings.HasPrefix(md, "# Metrics reference") {
		t.Error("markdown missing header")
	}
	if !strings.Contains(md, "## a\n") {
		t.Error("markdown missing subsystem section")
	}
	i1 := strings.Index(md, "`a_items_total`")
	i2 := strings.Index(md, "`a_level`")
	i3 := strings.Index(md, "`a_seconds`")
	if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
		t.Errorf("metrics not rendered in sorted order: %d %d %d", i1, i2, i3)
	}
}
